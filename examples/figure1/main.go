// Figure 1: the paper's motivating example. One small unbound netlist,
// two technology mappings — minimum cell area versus congestion
// minimization — showing the area/wirelength trade-off that motivates
// the whole methodology.
//
//	go run ./examples/figure1
package main

import (
	"fmt"
	"log"

	"casyn/internal/experiments"
)

func main() {
	log.SetFlags(0)
	minArea, congestion, err := experiments.Figure1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 1: minimum area vs congestion mapping")
	fmt.Println()
	for _, m := range []experiments.Figure1Mapping{minArea, congestion} {
		fmt.Printf("%s mapping:\n", m.Label)
		fmt.Printf("  cells:      %v\n", m.Cells)
		fmt.Printf("  cell area:  %.3f µm²\n", m.CellArea)
		fmt.Printf("  fanin wire: %.1f µm\n", m.Wire)
		fmt.Println()
	}
	fmt.Printf("the congestion mapping pays %.1f µm² of cell area to cut\n",
		congestion.CellArea-minArea.CellArea)
	fmt.Printf("the interconnection length by %.1f µm (%.0f%%)\n",
		minArea.Wire-congestion.Wire, (1-congestion.Wire/minArea.Wire)*100)
}

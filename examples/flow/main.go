// Flow: the paper's Figure 3 methodology. The technology-independent
// netlist is generated and placed once; technology mapping is repeated
// with increasing congestion factor K — evaluating the congestion map
// after each mapping — until the design routes in the fixed die.
//
//	go run ./examples/flow
package main

import (
	"context"
	"fmt"
	"log"

	"casyn/internal/bench"
	"casyn/internal/experiments"
)

func main() {
	log.SetFlags(0)
	// A half-scale SPLA-class circuit keeps this demo under a minute.
	// Tighten the die well beyond the standard floorplan so the first
	// iterations are congested and the flow has something to do.
	res, err := experiments.Figure3(context.Background(), bench.SPLA, 0.5, 1.17)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 3: modified ASIC design flow")
	fmt.Println("(mapping re-run with increasing K until the congestion map is clean)")
	fmt.Println()
	fmt.Printf("%-9s %-10s %-13s %-11s %-9s\n", "K", "cells", "utilization", "violations", "decision")
	for _, it := range res.Iterations {
		decision := "congestion NOT OK -> increase K"
		if it.FailedConnections == 0 {
			decision = "congestion OK -> place & route"
		}
		fmt.Printf("%-9g %-10d %-13.2f %-11d %s\n",
			it.K, it.NumCells, it.Utilization*100, it.FailedConnections, decision)
	}
	fmt.Println()
	if res.Routable {
		fmt.Printf("accepted mapping: K = %g\n", res.AcceptedK)
	} else {
		fmt.Println("no routable mapping found: relax the floorplan or resynthesize")
	}
}

// Timing: the paper's Table 3/5 experiment in miniature. Three
// syntheses of the same circuit — minimum area, congestion-aware, and
// the SIS baseline — compared on routed critical-path arrival time.
//
//	go run ./examples/timing
package main

import (
	"fmt"
	"log"

	"casyn"
	"casyn/internal/bench"
)

func main() {
	log.SetFlags(0)
	spec := bench.SPLA.ScaledSpec(0.15)
	pla, err := bench.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	type variant struct {
		label string
		opts  casyn.Options
	}
	base, err := casyn.Synthesize(pla, casyn.Options{K: 0, RunTiming: true})
	if err != nil {
		log.Fatal(err)
	}
	variants := []variant{
		{"K=0 (min area)", casyn.Options{K: 0, DieArea: base.Die.Area(), RunTiming: true}},
		{"K=0.001", casyn.Options{K: 0.001, DieArea: base.Die.Area(), RunTiming: true}},
		{"SIS baseline", casyn.Options{K: 0, DieArea: base.Die.Area(), OptimizeTechIndependent: true, RunTiming: true}},
	}
	fmt.Println("static timing comparison (same die for all variants)")
	fmt.Println()
	fmt.Printf("%-16s %-12s %-10s %-12s %-34s\n", "variant", "area (µm²)", "cells", "violations", "critical path")
	for _, v := range variants {
		res, err := casyn.Synthesize(pla, v.opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %-12.0f %-10d %-12d %s\n",
			v.label, res.CellArea, res.NumCells, res.Violations, res.CriticalPath)
	}
}

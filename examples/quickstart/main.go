// Quickstart: synthesize a small PLA with and without congestion
// awareness and compare the outcomes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"casyn"
)

// A small two-level design: a 4-bit prime detector plus two carry-ish
// side functions, written directly in Berkeley PLA format.
const design = `
.i 4
.o 3
.ilb x0 x1 x2 x3
.ob prime carry any
.p 9
0100 100
0110 100
1010 100
1110 100
1011 100
1101 100
11-- 010
--11 010
1--- 001
-1-- 001
`

func main() {
	log.SetFlags(0)
	pla, err := casyn.ReadPLA(strings.NewReader(design))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== minimum-area mapping (K = 0, the DAGON baseline) ===")
	minArea, err := casyn.Synthesize(pla, casyn.Options{K: 0, RunTiming: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(minArea.Report())

	fmt.Println()
	fmt.Println("=== congestion-aware mapping (K = 0.001) ===")
	aware, err := casyn.Synthesize(pla, casyn.Options{
		K:         0.001,
		DieArea:   minArea.Die.Area(), // same floorplan for a fair comparison
		RunTiming: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(aware.Report())

	fmt.Println()
	fmt.Printf("area penalty for congestion awareness: %+.1f%%\n",
		(aware.CellArea/minArea.CellArea-1)*100)
}

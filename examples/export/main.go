// Export: synthesize a small benchmark and write the hand-off
// artifacts — structural Verilog, a BLIF dump of the optimized Boolean
// network, a cell-usage report, and the slack report — to stdout.
//
//	go run ./examples/export
package main

import (
	"fmt"
	"log"
	"os"

	"casyn"
	"casyn/internal/bench"
	"casyn/internal/bnet"
)

func main() {
	log.SetFlags(0)
	spec := bench.SPLA.ScaledSpec(0.03)
	pla, err := bench.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}

	// The optimized Boolean network, in BLIF for interchange with
	// SIS/ABC-style tools.
	n, err := casyn.FromPLA(pla)
	if err != nil {
		log.Fatal(err)
	}
	bnet.FastExtract(n, bnet.FastExtractOptions{})
	n.Sweep()
	fmt.Println("=== optimized network (BLIF) ===")
	if err := n.WriteBLIF(os.Stdout, "spla_small"); err != nil {
		log.Fatal(err)
	}

	// The mapped design.
	res, err := casyn.Synthesize(pla, casyn.Options{K: 0.001, RunTiming: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("=== mapped netlist (structural Verilog) ===")
	if err := res.Mapped.WriteVerilog(os.Stdout, "spla_small"); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("=== cell usage ===")
	if err := res.Mapped.WriteCellReport(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("=== timing ===")
	if err := res.Timing.WritePath(os.Stdout); err != nil {
		log.Fatal(err)
	}
	rep := res.Timing.Slacks(res.CriticalPathNs * 1.02)
	if err := rep.Write(os.Stdout, 5); err != nil {
		log.Fatal(err)
	}
}

package casyn

import (
	"math/rand"
	"strings"
	"testing"

	"casyn/internal/bench"
	"casyn/internal/logic"
)

// smallPLA builds a modest synthetic PLA for API tests.
func smallPLA(t *testing.T) *logic.PLA {
	t.Helper()
	spec := bench.SPLA.ScaledSpec(0.05)
	p, err := bench.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSynthesizeEndToEnd(t *testing.T) {
	t.Parallel()
	p := smallPLA(t)
	res, err := Synthesize(p, Options{K: 0.001, RunTiming: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaseGates == 0 || res.NumCells == 0 || res.CellArea <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.Utilization <= 0 || res.Utilization > 1.1 {
		t.Errorf("utilization = %g", res.Utilization)
	}
	if res.CriticalPathNs <= 0 {
		t.Error("timing requested but no critical path")
	}
	rep := res.Report()
	for _, want := range []string{"base gates", "cell area", "routing violations", "critical path"} {
		if !strings.Contains(rep, want) {
			t.Errorf("Report lacks %q:\n%s", want, rep)
		}
	}
}

func TestSynthesizeKZeroVsMidK(t *testing.T) {
	t.Parallel()
	p := smallPLA(t)
	r0, err := Synthesize(p, Options{K: 0})
	if err != nil {
		t.Fatal(err)
	}
	rk, err := Synthesize(p, Options{K: 0.05, DieArea: r0.Die.Area()})
	if err != nil {
		t.Fatal(err)
	}
	if rk.CellArea < r0.CellArea-1e-9 {
		t.Errorf("K>0 area %g below min area %g", rk.CellArea, r0.CellArea)
	}
}

func TestSynthesizeSISPath(t *testing.T) {
	t.Parallel()
	p := smallPLA(t)
	direct, err := Synthesize(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sis, err := Synthesize(p, Options{OptimizeTechIndependent: true})
	if err != nil {
		t.Fatal(err)
	}
	if sis.BaseGates >= direct.BaseGates {
		t.Errorf("SIS path did not shrink base gates: %d vs %d", sis.BaseGates, direct.BaseGates)
	}
}

func TestReadPLARoundTrip(t *testing.T) {
	t.Parallel()
	src := ".i 2\n.o 1\n11 1\n0- 1\n.e\n"
	p, err := ReadPLA(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if p.NumInputs != 2 || p.NumOutputs != 1 {
		t.Fatalf("parsed %d/%d", p.NumInputs, p.NumOutputs)
	}
	res, err := Synthesize(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCells == 0 {
		t.Error("tiny PLA mapped to nothing")
	}
}

func TestSynthesizeDeterminism(t *testing.T) {
	t.Parallel()
	p := smallPLA(t)
	a, err := Synthesize(p, Options{K: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(p, Options{K: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if a.CellArea != b.CellArea || a.Violations != b.Violations || a.WireLength != b.WireLength {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestSynthesizeFunctionalEquivalenceViaNetwork(t *testing.T) {
	t.Parallel()
	// The mapped result is validated inside the pipeline; here check
	// the network entry point works and respects the SIS flag.
	rng := rand.New(rand.NewSource(5))
	p := logic.NewPLA(5, 2)
	for k := 0; k < 8; k++ {
		cb := logic.NewCube(5)
		for i := 0; i < 5; i++ {
			switch rng.Intn(3) {
			case 0:
				cb.SetPos(i)
			case 1:
				cb.SetNeg(i)
			}
		}
		row := []bool{rng.Intn(2) == 0, rng.Intn(2) == 0}
		if !row[0] && !row[1] {
			row[0] = true
		}
		if err := p.AddTerm(cb, row); err != nil {
			t.Fatal(err)
		}
	}
	n, err := bnetFromPLA(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SynthesizeNetwork(n, Options{OptimizeTechIndependent: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCells == 0 {
		t.Error("network path mapped to nothing")
	}
}

package bench

import (
	"math/rand"
	"testing"

	"casyn/internal/bnet"
)

func TestGenerateDeterminism(t *testing.T) {
	t.Parallel()
	spec := SPLA.ScaledSpec(0.05)
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Terms) != len(b.Terms) {
		t.Fatalf("term counts differ: %d vs %d", len(a.Terms), len(b.Terms))
	}
	for i := range a.Terms {
		if !a.Terms[i].Equal(b.Terms[i]) {
			t.Fatalf("term %d differs", i)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	t.Parallel()
	if _, err := Generate(Spec{}); err == nil {
		t.Error("zero spec accepted")
	}
	if _, err := Generate(Spec{Inputs: 4, Outputs: 1, Terms: 5, MotifWidth: 3, ExtraWidth: 3, MotifCount: 2}); err == nil {
		t.Error("cube wider than inputs accepted")
	}
}

func TestClassSpecs(t *testing.T) {
	t.Parallel()
	for _, c := range []Class{SPLA, PDC, TooLarge} {
		spec := c.Spec()
		if spec.Inputs == 0 || spec.Outputs == 0 || spec.Terms == 0 {
			t.Errorf("%v spec degenerate: %+v", c, spec)
		}
		if c.TargetBaseGates() == 0 {
			t.Errorf("%v target missing", c)
		}
		scaled := c.ScaledSpec(0.1)
		if scaled.Terms >= spec.Terms {
			t.Errorf("%v scaling did not shrink terms", c)
		}
	}
	if SPLA.String() != "spla" || PDC.String() != "pdc" || TooLarge.String() != "too_large" {
		t.Error("Class.String broken")
	}
}

func TestFullSizeBaseGateCalibration(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("full-size calibration skipped in short mode")
	}
	// The calibrated sizes documented in Spec(); spla/pdc deliberately
	// sit at 0.76× the paper (see the comment there), too_large at
	// -1.1% via the layered generator.
	wants := map[Class]int{SPLA: 17360, PDC: 17920}
	for class, want := range wants {
		p, err := Generate(class.Spec())
		if err != nil {
			t.Fatal(err)
		}
		d, err := BuildSubject(p, Direct, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := d.BaseGateCount()
		if got < want-want/20 || got > want+want/20 {
			t.Errorf("%v base gates = %d, want %d ±5%%", class, got, want)
		}
	}
	d, err := BuildLayeredSubject(TooLargeLayered(), Direct)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.BaseGateCount(); got < 26000 || got > 29000 {
		t.Errorf("too_large base gates = %d, want ≈27682", got)
	}
}

func TestBuildSubjectEquivalence(t *testing.T) {
	t.Parallel()
	spec := SPLA.ScaledSpec(0.02)
	p, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for _, style := range []SynthesisStyle{Direct, SISOptimized} {
		d, err := BuildSubject(p, style, 0)
		if err != nil {
			t.Fatal(err)
		}
		assign := make([]bool, p.NumInputs)
		for v := 0; v < 200; v++ {
			for i := range assign {
				assign[i] = rng.Intn(2) == 0
			}
			want := p.Eval(assign)
			got, err := d.EvalOutputs(assign)
			if err != nil {
				t.Fatal(err)
			}
			for o := range want {
				if want[o] != got[o] {
					t.Fatalf("%v: output %d differs at vector %d", style, o, v)
				}
			}
		}
	}
}

func TestSISShrinksButShares(t *testing.T) {
	t.Parallel()
	spec := SPLA.ScaledSpec(0.05)
	p, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := BuildSubject(p, Direct, 0)
	if err != nil {
		t.Fatal(err)
	}
	sis, err := BuildSubject(p, SISOptimized, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sis.BaseGateCount() >= direct.BaseGateCount() {
		t.Errorf("SIS base gates %d not below direct %d", sis.BaseGateCount(), direct.BaseGateCount())
	}
	if Direct.String() != "direct" || SISOptimized.String() != "sis" {
		t.Error("SynthesisStyle.String broken")
	}
}

func TestLayeredGeneratorDeterminismAndEquivalence(t *testing.T) {
	t.Parallel()
	spec := TooLargeLayered().Scaled(0.05)
	shared := spec
	shared.SharedControls = true
	dup := spec
	dup.SharedControls = false
	nShared, err := GenerateLayered(shared)
	if err != nil {
		t.Fatal(err)
	}
	nDup, err := GenerateLayered(dup)
	if err != nil {
		t.Fatal(err)
	}
	// The two variants implement the same function: shared vs
	// duplicated control logic is purely structural.
	rng := rand.New(rand.NewSource(7))
	if err := bnet.CheckEquivalence(nShared, nDup, 100, rng); err != nil {
		t.Fatalf("variants not equivalent: %v", err)
	}
	// The duplicated variant carries more logic.
	if nDup.NumLiterals() <= nShared.NumLiterals() {
		t.Errorf("duplicated variant not larger: %d vs %d literals",
			nDup.NumLiterals(), nShared.NumLiterals())
	}
	// Determinism.
	again, err := GenerateLayered(shared)
	if err != nil {
		t.Fatal(err)
	}
	if again.NumLiterals() != nShared.NumLiterals() || again.NumNodes() != nShared.NumNodes() {
		t.Error("layered generation not deterministic")
	}
}

func TestLayeredSubjectStyles(t *testing.T) {
	t.Parallel()
	spec := TooLargeLayered().Scaled(0.05)
	direct, err := BuildLayeredSubject(spec, Direct)
	if err != nil {
		t.Fatal(err)
	}
	sis, err := BuildLayeredSubject(spec, SISOptimized)
	if err != nil {
		t.Fatal(err)
	}
	if sis.BaseGateCount() >= direct.BaseGateCount() {
		t.Errorf("layered SIS %d not below direct %d", sis.BaseGateCount(), direct.BaseGateCount())
	}
	// Same function through both paths.
	rng := rand.New(rand.NewSource(11))
	assign := make([]bool, len(direct.PIs()))
	for v := 0; v < 100; v++ {
		for i := range assign {
			assign[i] = rng.Intn(2) == 0
		}
		a, err := direct.EvalOutputs(assign)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sis.EvalOutputs(assign)
		if err != nil {
			t.Fatal(err)
		}
		for o := range a {
			if a[o] != b[o] {
				t.Fatalf("styles differ at vector %d output %d", v, o)
			}
		}
	}
}

func TestLayeredValidation(t *testing.T) {
	t.Parallel()
	if _, err := GenerateLayered(LayeredSpec{}); err == nil {
		t.Error("zero layered spec accepted")
	}
	s := TooLargeLayered().Scaled(0.01)
	if s.Layers < 3 || s.Width < 4 {
		t.Error("scaling floor violated")
	}
}

// Package bench generates the synthetic benchmark circuits the
// experiments run on. The paper uses SPLA (22,834 base gates), PDC
// (23,058) and TOO_LARGE (27,977) from the IWLS93 suite; those files
// are not redistributable here, so this package regenerates
// PLA-structured circuits of the same class: the same input/output
// profile, comparable decomposed base-gate counts, and the heavy
// shared-subterm structure that makes SIS-style extraction productive
// (which is what drives the paper's congestion pathology).
//
// Generation is fully deterministic given the spec's seed.
package bench

import (
	"fmt"
	"math/rand"

	"casyn/internal/bnet"
	"casyn/internal/logic"
	"casyn/internal/subject"
)

// Class identifies a benchmark family.
type Class int

const (
	// SPLA mirrors the IWLS93 "spla" PLA (16 in, 46 out).
	SPLA Class = iota
	// PDC mirrors "pdc" (16 in, 40 out).
	PDC
	// TooLarge mirrors "too_large" (38 in, 3 out).
	TooLarge
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case SPLA:
		return "spla"
	case PDC:
		return "pdc"
	case TooLarge:
		return "too_large"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Spec parameterizes a synthetic PLA.
type Spec struct {
	Name    string
	Inputs  int
	Outputs int
	// Terms is the product-term count; the main size knob.
	Terms int
	// MotifCount is the size of the shared sub-cube pool; smaller
	// pools create more sharing.
	MotifCount int
	// MotifWidth / ExtraWidth control cube shapes: each term is a
	// random motif plus ExtraWidth-ish random literals.
	MotifWidth int
	ExtraWidth int
	// Locality in (0,1] is the fraction of the motif pool visible to
	// each output neighborhood; real PLA benchmarks have strong
	// product-term locality (related outputs share related products),
	// which is what lets a placer find a routable arrangement. 0 means
	// the default (0.18). GlobalFrac (default 0.08) is the fraction of
	// terms that ignore locality, modeling the long-range sharing that
	// stresses congestion.
	Locality   float64
	GlobalFrac float64
	Seed       int64
}

func (s *Spec) defaults() {
	if s.Locality == 0 {
		s.Locality = 0.18
	}
	if s.GlobalFrac == 0 {
		s.GlobalFrac = 0.08
	}
}

// TargetBaseGates returns the paper-reported base-gate count for the
// class (two-input NANDs + inverters after decomposition).
func (c Class) TargetBaseGates() int {
	switch c {
	case SPLA:
		return 22834
	case PDC:
		return 23058
	case TooLarge:
		return 27977
	default:
		return 0
	}
}

// Spec returns the full-size generation parameters for the class.
func (c Class) Spec() Spec {
	// The spla/pdc specs are calibrated for the sharing profile
	// (≈11-12 terms per motif) at which the congestion-window
	// behaviour of the paper's Tables 2/4 reproduces cleanly; that
	// puts their decomposed sizes at 17.4k/17.9k base gates, 0.76× the
	// counts the paper reports for the real IWLS93 circuits (22,834 /
	// 23,058). Pushing the synthetic circuits to the exact counts
	// densifies the sharing and buries the window in tie-break noise,
	// so the behavioural match is preferred over the size match (see
	// DESIGN.md). too_large lands at 27,539 vs the paper's 27,977
	// (-1.6%); with only 3 outputs its cones are inherently global, so
	// it uses full locality.
	switch c {
	case SPLA:
		return Spec{Name: "spla", Inputs: 16, Outputs: 46, Terms: 3400,
			MotifCount: 280, MotifWidth: 4, ExtraWidth: 7,
			Locality: 0.12, GlobalFrac: 0.04, Seed: 0x5917a}
	case PDC:
		return Spec{Name: "pdc", Inputs: 16, Outputs: 40, Terms: 3500,
			MotifCount: 300, MotifWidth: 4, ExtraWidth: 7,
			Locality: 0.12, GlobalFrac: 0.04, Seed: 0x9dc}
	case TooLarge:
		return Spec{Name: "too_large", Inputs: 38, Outputs: 3, Terms: 4798,
			MotifCount: 333, MotifWidth: 5, ExtraWidth: 10,
			Locality: 1.0, GlobalFrac: 0.04, Seed: 0x70014}
	default:
		return Spec{}
	}
}

// ScaledSpec shrinks the class spec to roughly scale× the full term
// count (for unit tests and Go benchmarks).
func (c Class) ScaledSpec(scale float64) Spec {
	s := c.Spec()
	s.Name = fmt.Sprintf("%s-x%.3g", s.Name, scale)
	s.Terms = int(float64(s.Terms)*scale + 0.5)
	if s.Terms < 8 {
		s.Terms = 8
	}
	mc := int(float64(s.MotifCount)*scale + 0.5)
	if mc < 4 {
		mc = 4
	}
	s.MotifCount = mc
	return s
}

// Generate builds the PLA for a spec.
func Generate(spec Spec) (*logic.PLA, error) {
	if spec.Inputs <= 0 || spec.Outputs <= 0 || spec.Terms <= 0 {
		return nil, fmt.Errorf("bench: non-positive spec dimension")
	}
	if spec.MotifWidth+spec.ExtraWidth > spec.Inputs {
		return nil, fmt.Errorf("bench: cube width %d exceeds %d inputs",
			spec.MotifWidth+spec.ExtraWidth, spec.Inputs)
	}
	spec.defaults()
	rng := rand.New(rand.NewSource(spec.Seed))
	// Motif pool: shared sub-cubes.
	motifs := make([]logic.Cube, spec.MotifCount)
	for m := range motifs {
		motifs[m] = randomSubCube(rng, spec.Inputs, spec.MotifWidth)
	}
	window := int(float64(spec.MotifCount)*spec.Locality + 0.5)
	if window < 1 {
		window = 1
	}
	p := logic.NewPLA(spec.Inputs, spec.Outputs)
	for t := 0; t < spec.Terms; t++ {
		// Output membership first: cluster terms onto neighboring
		// outputs so output cones overlap (the PLA-benchmark
		// signature).
		row := make([]bool, spec.Outputs)
		base := rng.Intn(spec.Outputs)
		row[base] = true
		if rng.Intn(3) != 0 {
			row[(base+1+rng.Intn(3))%spec.Outputs] = true
		}
		// Motif choice follows output locality: output neighborhoods
		// see a sliding window of the pool, with a small global
		// fraction sharing across the whole design.
		var mi int
		if rng.Float64() < spec.GlobalFrac {
			mi = rng.Intn(spec.MotifCount)
		} else {
			anchor := base * spec.MotifCount / spec.Outputs
			mi = (anchor + rng.Intn(window)) % spec.MotifCount
		}
		cb := motifs[mi].Clone()
		// Extend with extra literals on inputs the motif leaves free.
		extra := rng.Intn(spec.ExtraWidth + 1)
		for e := 0; e < extra; e++ {
			i := rng.Intn(spec.Inputs)
			if cb.Lit(i) != 0 {
				continue
			}
			if rng.Intn(2) == 0 {
				cb.SetPos(i)
			} else {
				cb.SetNeg(i)
			}
		}
		if err := p.AddTerm(cb, row); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func randomSubCube(rng *rand.Rand, n, width int) logic.Cube {
	cb := logic.NewCube(n)
	for placed := 0; placed < width; {
		i := rng.Intn(n)
		if cb.Lit(i) != 0 {
			continue
		}
		if rng.Intn(2) == 0 {
			cb.SetPos(i)
		} else {
			cb.SetNeg(i)
		}
		placed++
	}
	return cb
}

// SynthesisStyle selects the technology-independent path.
type SynthesisStyle int

const (
	// Direct decomposes the PLA as-is (the "technology independent
	// representation generated with SIS" that DAGON maps in the
	// paper's experiments — structure preserved, no restructuring).
	Direct SynthesisStyle = iota
	// SISOptimized runs two-level minimization plus kernel/cube
	// extraction before decomposition — the paper's "synthesized with
	// SIS and mapped for minimum area" baseline with its aggressive
	// literal sharing.
	SISOptimized
)

// String implements fmt.Stringer.
func (s SynthesisStyle) String() string {
	if s == SISOptimized {
		return "sis"
	}
	return "direct"
}

// BuildSubject turns a PLA into a subject DAG under the chosen
// synthesis style.
func BuildSubject(p *logic.PLA, style SynthesisStyle, extractIters int) (*subject.DAG, error) {
	work := p
	if style == SISOptimized {
		// Two-level minimization on a copy first (espresso step).
		cp := logic.NewPLA(p.NumInputs, p.NumOutputs)
		cp.InputNames = append([]string(nil), p.InputNames...)
		cp.OutputNames = append([]string(nil), p.OutputNames...)
		for t := range p.Terms {
			if err := cp.AddTerm(p.Terms[t].Clone(), p.Outputs[t]); err != nil {
				return nil, err
			}
		}
		work = cp
	}
	n, err := bnet.FromPLA(work)
	if err != nil {
		return nil, err
	}
	if style == SISOptimized {
		// The kernel-based Extract is exact but quadratic; full-size
		// benchmarks use the scalable FastExtract, whose term-sharing
		// and common-cube rounds produce the same structural signature
		// (literal-minimal, high-fanout shared nodes). extractIters
		// bounds the pair-extraction rounds.
		if extractIters == 0 {
			extractIters = 40
		}
		bnet.FastExtract(n, bnet.FastExtractOptions{MaxRounds: extractIters})
		n.Sweep()
	}
	return subject.Decompose(n)
}

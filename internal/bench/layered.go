package bench

import (
	"fmt"
	"math/rand"

	"casyn/internal/bnet"
	"casyn/internal/subject"
)

// LayeredSpec parameterizes the deep random-logic generator used for
// the TOO_LARGE-class circuit. The IWLS93 too_large is deep multilevel
// logic with 38 inputs and 3 outputs — not a flat PLA — and its
// defining property for Table 1 is *locality*: wiring between adjacent
// logic levels stays short, so the structure-preserving mapping routes
// even at 84% utilization, while SIS's extraction creates heavily
// shared nodes whose fanouts span the die.
type LayeredSpec struct {
	Name    string
	Inputs  int
	Outputs int
	// Layers × Width is the logic grid; each node is a small SOP over
	// nodes of the previous layer.
	Layers int
	Width  int
	// Window is the neighborhood radius (in node positions) a node
	// draws its fanins from; LongEdgeFrac is the fraction of fanins
	// that ignore it.
	Window       int
	LongEdgeFrac float64
	// Controls is the number of PI-derived control functions the
	// datapath consumes; ControlUse is the probability a layer node
	// references one. Under SharedControls a single instance of each
	// control drives every consumer (the SIS sharing signature); under
	// duplicated controls each layer band rebuilds its own copy — more
	// gates, but only local wiring. This is the Table 1 contrast.
	Controls   int
	ControlUse float64
	// SharedControls selects the sharing variant; GenerateLayered's
	// callers set it per synthesis style.
	SharedControls bool
	// ControlBands is the number of layer bands that get their own
	// control copies in the duplicated variant (default 8).
	ControlBands int
	Seed         int64
}

// TooLargeLayered returns the calibrated full-size spec.
func TooLargeLayered() LayeredSpec {
	// Width 82 calibrates the Direct decomposition to 27,682 base
	// gates (the paper's too_large: 27,977, -1.1%).
	return LayeredSpec{
		Name: "too_large", Inputs: 38, Outputs: 3,
		Layers: 44, Width: 82, Window: 7, LongEdgeFrac: 0.05,
		Controls: 36, ControlUse: 0.30, ControlBands: 8,
		Seed: 0x70014,
	}
}

// Scaled shrinks the spec to roughly scale× the node count.
func (s LayeredSpec) Scaled(scale float64) LayeredSpec {
	out := s
	out.Name = fmt.Sprintf("%s-x%.3g", s.Name, scale)
	f := 1.0
	for f*f > scale {
		f *= 0.9
	}
	out.Layers = int(float64(s.Layers)*f + 0.5)
	out.Width = int(float64(s.Width)*f + 0.5)
	if out.Layers < 3 {
		out.Layers = 3
	}
	if out.Width < 4 {
		out.Width = 4
	}
	return out
}

// GenerateLayered builds the deep random-logic network.
func GenerateLayered(spec LayeredSpec) (*bnet.Network, error) {
	if spec.Inputs < 2 || spec.Outputs < 1 || spec.Layers < 2 || spec.Width < 2 {
		return nil, fmt.Errorf("bench: degenerate layered spec")
	}
	if spec.ControlBands == 0 {
		spec.ControlBands = 8
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	n := bnet.New()
	pis := make([]bnet.NodeID, spec.Inputs)
	for i := range pis {
		pis[i] = n.AddPI(fmt.Sprintf("in%d", i))
	}
	// Control functions: small ANDs of PI literals. The shared variant
	// builds one instance of each; the duplicated variant builds one
	// per layer band, each with an independently drawn but functionally
	// identical cube (duplication the paper's "traditional" netlists
	// carry, and SIS's extraction removes).
	type controlDef struct {
		lits bnet.Cube
	}
	controls := make([]controlDef, spec.Controls)
	for ci := range controls {
		var lits []bnet.Lit
		k := 3 + rng.Intn(3)
		for len(lits) < k {
			lits = append(lits, bnet.Lit{Node: pis[rng.Intn(len(pis))], Neg: rng.Intn(2) == 0})
		}
		cube, ok := bnet.NewCube(lits...)
		if !ok || len(cube) < 2 {
			cube, _ = bnet.NewCube(bnet.Lit{Node: pis[ci%len(pis)]}, bnet.Lit{Node: pis[(ci+1)%len(pis)], Neg: true})
		}
		controls[ci] = controlDef{lits: cube}
	}
	bands := spec.ControlBands
	if spec.SharedControls {
		bands = 1
	}
	// ctlInst[band][ci] is the node providing control ci in that band.
	ctlInst := make([][]bnet.NodeID, bands)
	for b := range ctlInst {
		ctlInst[b] = make([]bnet.NodeID, spec.Controls)
		for ci, def := range controls {
			ctlInst[b][ci] = buildControlCopy(n, fmt.Sprintf("ctl%d_%d", ci, b), def.lits, b)
		}
	}
	consumed := make(map[bnet.NodeID]bool)
	var all []bnet.NodeID
	prev := pis
	for layer := 0; layer < spec.Layers; layer++ {
		band := layer * bands / spec.Layers
		cur := make([]bnet.NodeID, spec.Width)
		for w := 0; w < spec.Width; w++ {
			// Anchor position in the previous layer proportional to w.
			anchor := w * len(prev) / spec.Width
			pick := func() bnet.NodeID {
				if rng.Float64() < spec.LongEdgeFrac {
					return prev[rng.Intn(len(prev))]
				}
				lo := anchor - spec.Window
				if lo < 0 {
					lo = 0
				}
				hi := anchor + spec.Window
				if hi >= len(prev) {
					hi = len(prev) - 1
				}
				return prev[lo+rng.Intn(hi-lo+1)]
			}
			fn, ins := randomNodeFn(rng, pick)
			if spec.Controls > 0 && rng.Float64() < spec.ControlUse {
				// Attach a control literal to the node's first cube.
				ci := rng.Intn(spec.Controls)
				ctl := ctlInst[band][ci]
				cube, ok := fn[0].Merge(bnet.Cube{bnet.Lit{Node: ctl}})
				if ok {
					fn = append(bnet.Sop{cube}, fn[1:]...)
					fn = bnet.NewSop(fn...)
					ins = append(ins, ctl)
					consumed[ctl] = true
				}
			}
			id := n.AddInternal(fmt.Sprintf("l%dw%d", layer, w), fn)
			cur[w] = id
			for _, in := range ins {
				consumed[in] = true
			}
		}
		all = append(all, cur...)
		prev = cur
	}
	// Unused control instances are left dead and swept by the caller;
	// collecting them into the outputs would make the shared and
	// duplicated variants functionally different.
	// Collect dangling nodes (no consumer) into the output cones so
	// nothing is swept: each output ORs the dangling signals of its
	// region plus a handful of final-layer nodes.
	var dangling []bnet.NodeID
	for _, id := range all {
		if !consumed[id] {
			dangling = append(dangling, id)
		}
	}
	for o := 0; o < spec.Outputs; o++ {
		var lits []bnet.Cube
		for i := o; i < len(dangling); i += spec.Outputs {
			c, _ := bnet.NewCube(bnet.Lit{Node: dangling[i]})
			lits = append(lits, c)
		}
		if len(lits) == 0 {
			c, _ := bnet.NewCube(bnet.Lit{Node: prev[o%len(prev)]})
			lits = append(lits, c)
		}
		out := n.AddInternal(fmt.Sprintf("collect%d", o), bnet.NewSop(lits...))
		n.AddPO(fmt.Sprintf("out%d", o), out, false)
	}
	return n, nil
}

// buildControlCopy builds one instance of the AND-of-literals control
// function as a tree of two-input AND nodes. The variant index selects
// a literal rotation and an association shape (left-chain or balanced)
// so that distinct copies are structurally distinct — functionally
// equal duplicates that structural hashing cannot merge, exactly the
// redundancy SIS's restructuring eliminates.
func buildControlCopy(n *bnet.Network, name string, lits bnet.Cube, variant int) bnet.NodeID {
	k := len(lits)
	rot := variant % k
	order := make([]bnet.Lit, 0, k)
	for i := 0; i < k; i++ {
		order = append(order, lits[(i+rot)%k])
	}
	mkNode := func(sub string, a, b bnet.Lit) bnet.Lit {
		cube, ok := bnet.NewCube(a, b)
		if !ok {
			// Contradictory pair cannot happen: control cubes are
			// normalized, but stay safe.
			cube, _ = bnet.NewCube(a)
		}
		id := n.AddInternal(name+sub, bnet.Sop{cube})
		return bnet.Lit{Node: id}
	}
	if (variant/k)%2 == 0 {
		// Left-associated chain.
		acc := order[0]
		for i := 1; i < k; i++ {
			acc = mkNode(fmt.Sprintf("_c%d", i), acc, order[i])
		}
		return acc.Node
	}
	// Balanced tree.
	level := append([]bnet.Lit(nil), order...)
	step := 0
	for len(level) > 1 {
		var next []bnet.Lit
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, mkNode(fmt.Sprintf("_b%d_%d", step, i), level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
		step++
	}
	return level[0].Node
}

// randomNodeFn builds a small SOP (1-3 cubes of 2-3 literals) over
// picked fanins, returning the function and the distinct fanins used.
func randomNodeFn(rng *rand.Rand, pick func() bnet.NodeID) (bnet.Sop, []bnet.NodeID) {
	nCubes := 1 + rng.Intn(3)
	var cubes []bnet.Cube
	seen := map[bnet.NodeID]bool{}
	var ins []bnet.NodeID
	for c := 0; c < nCubes; c++ {
		nLits := 2 + rng.Intn(2)
		var lits []bnet.Lit
		for l := 0; l < nLits; l++ {
			id := pick()
			if !seen[id] {
				seen[id] = true
				ins = append(ins, id)
			}
			lits = append(lits, bnet.Lit{Node: id, Neg: rng.Intn(3) == 0})
		}
		if cube, ok := bnet.NewCube(lits...); ok {
			cubes = append(cubes, cube)
		}
	}
	if len(cubes) == 0 {
		// All cube draws were contradictory; fall back to a buffer.
		a := pick()
		cube, _ := bnet.NewCube(bnet.Lit{Node: a})
		cubes = append(cubes, cube)
		if !seen[a] {
			seen[a] = true
			ins = append(ins, a)
		}
	}
	return bnet.NewSop(cubes...), ins
}

// BuildLayeredSubject lowers the layered network to a subject DAG
// under the chosen synthesis style. Direct preserves the layered
// structure including its duplicated control copies; SISOptimized
// shares a single copy of every control (SIS's restructuring merges
// functionally redundant logic) and runs the scalable extraction, so
// its netlist is smaller but wires every control consumer to one hub.
func BuildLayeredSubject(spec LayeredSpec, style SynthesisStyle) (*subject.DAG, error) {
	spec.SharedControls = style == SISOptimized
	n, err := GenerateLayered(spec)
	if err != nil {
		return nil, err
	}
	if style == SISOptimized {
		bnet.FastExtract(n, bnet.FastExtractOptions{MinPairCount: 3})
	}
	n.Sweep()
	return subject.Decompose(n)
}

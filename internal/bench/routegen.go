package bench

import (
	"fmt"
	"math"
	"math/rand"

	"casyn/internal/geom"
	"casyn/internal/place"
)

// RouteSpec parameterizes the paper-scale routing benchmark generator:
// a synthetic *placed* netlist of 100k–1M cells with realistic net
// locality plus deliberate congestion hotspots. Running the full
// synthesis flow at these sizes would take hours per data point, so
// the generator emits the router's input directly — a legal row-based
// placement and a hypergraph whose wiring statistics (short local
// nets, a thin tail of die-spanning nets, hotspot pile-ups) reproduce
// the congestion profile the rip-up/reroute negotiation exists to
// clear. Generation is fully deterministic given the seed.
type RouteSpec struct {
	Name string
	// Gates is the placed-cell count; the main size knob.
	Gates int
	// NetsPerGate sets the hyperedge count (default 1.15, a typical
	// post-mapping net/cell ratio).
	NetsPerGate float64
	// Utilization is the row fill fraction (default 0.80, the paper's
	// densest working point).
	Utilization float64
	// LocalSpan sets net locality: the standard deviation of a sink's
	// offset from its anchor is LocalSpan×dieWidth (default 0.008 —
	// post-placement nets overwhelmingly connect near neighbors).
	LocalSpan float64
	// GlobalFrac is the fraction of nets whose sinks ignore locality
	// entirely (default 0.005); these are the die-crossing wires, and
	// each one carries ~50× the track demand of a local net, so the
	// default keeps them a Rent-style thin tail.
	GlobalFrac float64
	// Hotspots is the number of congestion hotspots (default 3);
	// HotspotFrac is the fraction of nets that anchor at one (default
	// 0.02). Hotspot nets pull wiring from a wide surround through a
	// small center region, which is what overloads its edges — the
	// default is calibrated so the initial routing overflows around
	// the hotspots but the negotiation can detour most of it away.
	Hotspots    int
	HotspotFrac float64
	Seed        int64
}

func (s *RouteSpec) defaults() {
	if s.NetsPerGate == 0 {
		s.NetsPerGate = 1.15
	}
	if s.Utilization == 0 {
		s.Utilization = 0.80
	}
	if s.LocalSpan == 0 {
		s.LocalSpan = 0.008
	}
	if s.GlobalFrac == 0 {
		s.GlobalFrac = 0.005
	}
	if s.Hotspots == 0 {
		s.Hotspots = 3
	}
	if s.HotspotFrac == 0 {
		s.HotspotFrac = 0.012
	}
}

// RouteSpecAt returns the calibrated routing benchmark for a target
// gate count.
func RouteSpecAt(gates int) RouteSpec {
	return RouteSpec{
		Name:  fmt.Sprintf("route-%dk", gates/1000),
		Gates: gates,
		Seed:  0x407e + int64(gates),
	}
}

// PaperRouteSpecs returns the standard ladder of paper-scale routing
// benchmarks (100k, 250k, 1M gates).
func PaperRouteSpecs() []RouteSpec {
	return []RouteSpec{
		RouteSpecAt(100_000),
		RouteSpecAt(250_000),
		RouteSpecAt(1_000_000),
	}
}

// routeRowHeight matches the layout convention of the rest of the
// flow (library cells are one 5 µm row tall).
const routeRowHeight = 5.0

// Generate builds the placed netlist: the layout, a legal row-based
// placement, and the hypergraph.
func (s RouteSpec) Generate() (*place.Netlist, *place.Placement, place.Layout, error) {
	s.defaults()
	if s.Gates < 16 {
		return nil, nil, place.Layout{}, fmt.Errorf("bench: route spec needs ≥16 gates, got %d", s.Gates)
	}
	rng := rand.New(rand.NewSource(s.Seed))

	// Cell widths: 3.5–6.5 µm, the mapped library's spread.
	nl := &place.Netlist{Widths: make([]float64, s.Gates)}
	total := 0.0
	for i := range nl.Widths {
		w := 3.5 + 3.0*rng.Float64()
		nl.Widths[i] = w
		total += w
	}
	layout, err := place.NewLayout(total*routeRowHeight/s.Utilization, 1.0, routeRowHeight)
	if err != nil {
		return nil, nil, place.Layout{}, err
	}

	// Legal placement: pack cells row-major, left to right, restarting
	// each row at the die edge. The per-row budget leaves the target
	// utilization's whitespace spread uniformly.
	pl := &place.Placement{
		Pos: make([]geom.Point, s.Gates),
		Row: make([]int, s.Gates),
	}
	rowW := layout.Die.W()
	gap := (rowW*float64(layout.NumRows) - total) / float64(s.Gates)
	if gap < 0 {
		gap = 0
	}
	row, cursor := 0, 0.0
	rowStart := []int{0} // first cell index of each row, for point→cell lookup
	for i, w := range nl.Widths {
		if cursor+w > rowW && row < layout.NumRows-1 {
			row++
			cursor = 0
			rowStart = append(rowStart, i)
		}
		pl.Pos[i] = geom.Pt(
			layout.Die.Min.X+cursor+w/2,
			layout.Die.Min.Y+(float64(row)+0.5)*routeRowHeight,
		)
		pl.Row[i] = row
		cursor += w + gap
	}
	rowStart = append(rowStart, s.Gates)

	// cellNear maps a die point to the placed cell closest to it in
	// the row-major order (approximate within a row; exact row).
	cellNear := func(p geom.Point) int {
		r := int((p.Y - layout.Die.Min.Y) / routeRowHeight)
		if r < 0 {
			r = 0
		}
		if r >= len(rowStart)-1 {
			r = len(rowStart) - 2
		}
		lo, hi := rowStart[r], rowStart[r+1]
		if hi <= lo {
			return lo
		}
		frac := (p.X - layout.Die.Min.X) / rowW
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		i := lo + int(frac*float64(hi-lo))
		if i >= hi {
			i = hi - 1
		}
		return i
	}
	clampPt := func(x, y float64) geom.Point {
		return geom.Pt(
			math.Min(math.Max(x, layout.Die.Min.X), layout.Die.Max.X),
			math.Min(math.Max(y, layout.Die.Min.Y), layout.Die.Max.Y),
		)
	}

	// Hotspot centers: well-separated interior points. Separation
	// matters — it is what lets the router's region partitioner give
	// each congested blob its own concurrent region, and it reflects
	// reality (distinct high-fanout structures congest distinct
	// neighborhoods, not one merged smear).
	hotFracs := [][2]float64{
		{0.24, 0.26}, {0.74, 0.32}, {0.36, 0.76}, {0.78, 0.78},
		{0.22, 0.52}, {0.55, 0.14}, {0.60, 0.55}, {0.14, 0.80},
	}
	hot := make([]geom.Point, s.Hotspots)
	for h := range hot {
		f := hotFracs[h%len(hotFracs)]
		hot[h] = geom.Pt(
			layout.Die.Min.X+f[0]*layout.Die.W(),
			layout.Die.Min.Y+f[1]*layout.Die.H(),
		)
	}

	sigma := s.LocalSpan * layout.Die.W()
	numNets := int(float64(s.Gates) * s.NetsPerGate)
	nl.Nets = make([]place.Net, 0, numNets)
	for n := 0; n < numNets; n++ {
		deg := 2 + rng.Intn(3) // 2–4 pins
		cells := make([]int, 0, deg)
		seen := map[int]bool{}
		add := func(c int) {
			if !seen[c] {
				seen[c] = true
				cells = append(cells, c)
			}
		}
		switch {
		case rng.Float64() < s.HotspotFrac:
			// Hotspot net: anchor near a center, sinks pulled from a
			// wide surround — the wiring funnels through the center.
			c := hot[rng.Intn(len(hot))]
			hs := 0.035 * layout.Die.W()
			add(cellNear(clampPt(c.X+rng.NormFloat64()*sigma, c.Y+rng.NormFloat64()*sigma)))
			for len(cells) < deg {
				add(cellNear(clampPt(c.X+rng.NormFloat64()*hs, c.Y+rng.NormFloat64()*hs)))
			}
		case rng.Float64() < s.GlobalFrac:
			// Global net: uniform pins across the die.
			for len(cells) < deg {
				add(rng.Intn(s.Gates))
			}
		default:
			// Local net: anchor anywhere, sinks a Gaussian hop away.
			a := rng.Intn(s.Gates)
			add(a)
			p := pl.Pos[a]
			for len(cells) < deg {
				add(cellNear(clampPt(p.X+rng.NormFloat64()*sigma, p.Y+rng.NormFloat64()*sigma)))
			}
		}
		if len(cells) < 2 {
			continue
		}
		nl.Nets = append(nl.Nets, place.Net{Cells: cells})
	}
	if err := nl.Validate(); err != nil {
		return nil, nil, place.Layout{}, err
	}
	return nl, pl, layout, nil
}

// Package match implements tree pattern matching: binding library-cell
// pattern trees (NAND2/INV trees with variable leaves) onto vertices of
// a subject tree.
//
// A match at a subject vertex identifies a set of subject gates the
// cell would replace (the covered gates) and the subject gates feeding
// the cell's input pins (the leaves, bound to the pattern variables).
// Matching honors the tree partition: an internal pattern node may only
// map onto a subject gate whose tree father is the pattern parent's
// gate — a match can never cross a tree edge that the partitioner cut.
package match

import (
	"casyn/internal/library"
	"casyn/internal/subject"
)

// Match is a successful binding of a cell pattern at a subject vertex.
type Match struct {
	Cell *library.Cell
	// PatternIndex identifies which of the cell's patterns matched.
	PatternIndex int
	// Root is the subject gate whose output the cell produces.
	Root int
	// Leaves are the subject gates bound to the pattern's variables,
	// ordered like Cell.Patterns[PatternIndex].Vars(). They are the
	// cell's input connections.
	Leaves []int
	// Covered lists the subject gates replaced by the cell, in the
	// pattern's pre-order; Covered[0] == Root.
	Covered []int
}

// NumCovered returns the number of base gates the match replaces.
func (m *Match) NumCovered() int { return len(m.Covered) }

// Matcher finds matches within one subject tree.
type Matcher struct {
	dag *subject.DAG
	lib *library.Library
	// father[g] is g's tree father, or -1; only gates of the current
	// tree may be covered, and only through their father edge.
	father []int
	inTree func(gate int) bool
}

// NewMatcher builds a matcher for the subject tree identified by the
// inTree membership test and the forest's father relation.
func NewMatcher(dag *subject.DAG, lib *library.Library, father []int, inTree func(gate int) bool) *Matcher {
	return &Matcher{dag: dag, lib: lib, father: father, inTree: inTree}
}

// MatchesAt returns every library match rooted at the given tree
// vertex. Every NAND2 or INV vertex has at least one match (the base
// cell itself), so tree covering is always feasible.
func (m *Matcher) MatchesAt(root int) []Match {
	var out []Match
	for _, cell := range m.lib.Cells() {
		for pi, pat := range cell.Patterns {
			binding := map[string]int{}
			var covered []int
			if m.matchPattern(pat, root, -1, binding, &covered) {
				vars := pat.Vars()
				leaves := make([]int, len(vars))
				for i, v := range vars {
					leaves[i] = binding[v]
				}
				out = append(out, Match{
					Cell:         cell,
					PatternIndex: pi,
					Root:         root,
					Leaves:       leaves,
					Covered:      covered,
				})
				break // one matching pattern per cell suffices
			}
		}
	}
	return out
}

// matchPattern recursively binds pattern p at subject gate g. parent
// is the subject gate of the enclosing pattern node, or -1 at the
// pattern root. Internal pattern nodes require:
//
//   - the gate type matches the pattern operator,
//   - the gate belongs to the current tree, and
//   - for non-root nodes, the gate's tree father is parent (the match
//     consumes the gate through its one uncut edge).
func (m *Matcher) matchPattern(p *library.Pattern, g, parent int, binding map[string]int, covered *[]int) bool {
	if p.Op == library.OpVar {
		if bound, ok := binding[p.Var]; ok {
			return bound == g // repeated variable: must bind same gate
		}
		binding[p.Var] = g
		return true
	}
	gate := m.dag.Gate(g)
	switch p.Op {
	case library.OpInv:
		if gate.Type != subject.Inv {
			return false
		}
	case library.OpNand2:
		if gate.Type != subject.Nand2 {
			return false
		}
	default:
		return false
	}
	if !m.inTree(g) {
		return false
	}
	if parent >= 0 && m.father[g] != parent {
		return false
	}
	if p.Op == library.OpInv {
		*covered = append(*covered, g)
		return m.matchPattern(p.Kids[0], gate.In[0], g, binding, covered)
	}
	mark := len(*covered)
	*covered = append(*covered, g)
	a, b := gate.In[0], gate.In[1]
	// Try both input orders; patterns are not canonicalized for
	// commutativity.
	save := snapshot(binding)
	if m.matchPattern(p.Kids[0], a, g, binding, covered) &&
		m.matchPattern(p.Kids[1], b, g, binding, covered) {
		return true
	}
	restore(binding, save)
	*covered = (*covered)[:mark+1]
	if m.matchPattern(p.Kids[0], b, g, binding, covered) &&
		m.matchPattern(p.Kids[1], a, g, binding, covered) {
		return true
	}
	restore(binding, save)
	*covered = (*covered)[:mark]
	return false
}

func snapshot(b map[string]int) map[string]int {
	s := make(map[string]int, len(b))
	for k, v := range b {
		s[k] = v
	}
	return s
}

func restore(b, s map[string]int) {
	for k := range b {
		if _, ok := s[k]; !ok {
			delete(b, k)
		}
	}
	for k, v := range s {
		b[k] = v
	}
}

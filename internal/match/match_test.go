package match

import (
	"testing"

	"casyn/internal/library"
	"casyn/internal/partition"
	"casyn/internal/subject"
)

// treeMatcher partitions d with DAGON and returns a matcher for the
// tree rooted at root.
func treeMatcher(t *testing.T, d *subject.DAG, root int) *Matcher {
	t.Helper()
	f, err := partition.Partition(partition.Input{DAG: d}, partition.Dagon)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range f.Trees(d) {
		if tr.Root == root {
			return NewMatcher(d, library.Default(), f.Father, tr.InTree())
		}
	}
	t.Fatalf("no tree rooted at %d", root)
	return nil
}

func cellNames(ms []Match) map[string]bool {
	out := map[string]bool{}
	for _, m := range ms {
		out[m.Cell.Name] = true
	}
	return out
}

func TestMatchNand2AndInv(t *testing.T) {
	t.Parallel()
	d := subject.New()
	a := d.AddPI("a")
	b := d.AddPI("b")
	n := d.AddNand2(a, b)
	d.AddOutput("o", n)
	ms := treeMatcher(t, d, n).MatchesAt(n)
	names := cellNames(ms)
	if !names["NAND2"] {
		t.Errorf("NAND2 not matched: %v", names)
	}
	for _, m := range ms {
		if m.Cell.Name == "NAND2" {
			if len(m.Leaves) != 2 || len(m.Covered) != 1 || m.Covered[0] != n {
				t.Errorf("NAND2 match malformed: %+v", m)
			}
		}
	}

	d2 := subject.New()
	x := d2.AddPI("x")
	i := d2.AddInv(x)
	d2.AddOutput("o", i)
	ms2 := treeMatcher(t, d2, i).MatchesAt(i)
	if !cellNames(ms2)["INV"] {
		t.Error("INV not matched")
	}
}

func TestMatchNand3BothShapes(t *testing.T) {
	t.Parallel()
	// NAND3 in "a NAND (b AND c)" shape.
	d := subject.New()
	a := d.AddPI("a")
	b := d.AddPI("b")
	c := d.AddPI("c")
	inner := d.AddNand2(b, c)
	mid := d.AddInv(inner)
	root := d.AddNand2(a, mid)
	d.AddOutput("o", root)
	ms := treeMatcher(t, d, root).MatchesAt(root)
	names := cellNames(ms)
	if !names["NAND3"] {
		t.Errorf("NAND3 not matched at root: %v", names)
	}
	if !names["NAND2"] {
		t.Error("NAND2 must also match at root")
	}
	var n3 Match
	for _, m := range ms {
		if m.Cell.Name == "NAND3" {
			n3 = m
		}
	}
	if len(n3.Covered) != 3 {
		t.Errorf("NAND3 covers %d gates, want 3", len(n3.Covered))
	}
	if len(n3.Leaves) != 3 {
		t.Errorf("NAND3 leaves = %v", n3.Leaves)
	}
	leafSet := map[int]bool{}
	for _, l := range n3.Leaves {
		leafSet[l] = true
	}
	if !leafSet[a] || !leafSet[b] || !leafSet[c] {
		t.Errorf("NAND3 leaves %v, want PIs {%d,%d,%d}", n3.Leaves, a, b, c)
	}
}

func TestMatchAoi21(t *testing.T) {
	t.Parallel()
	// AOI21 = INV(NAND(NAND(a,b), INV(c))).
	d := subject.New()
	a := d.AddPI("a")
	b := d.AddPI("b")
	c := d.AddPI("c")
	nab := d.AddNand2(a, b)
	ic := d.AddInv(c)
	mid := d.AddNand2(nab, ic)
	root := d.AddInv(mid)
	d.AddOutput("o", root)
	ms := treeMatcher(t, d, root).MatchesAt(root)
	names := cellNames(ms)
	if !names["AOI21"] {
		t.Errorf("AOI21 not matched: %v", names)
	}
	// Commuted construction must also match thanks to permutation.
	d2 := subject.New()
	a2 := d2.AddPI("a")
	b2 := d2.AddPI("b")
	c2 := d2.AddPI("c")
	ic2 := d2.AddInv(c2)
	nab2 := d2.AddNand2(b2, a2)
	mid2 := d2.AddNand2(ic2, nab2)
	root2 := d2.AddInv(mid2)
	d2.AddOutput("o", root2)
	ms2 := treeMatcher(t, d2, root2).MatchesAt(root2)
	if !cellNames(ms2)["AOI21"] {
		t.Error("AOI21 not matched under commuted inputs")
	}
}

func TestMatchStopsAtTreeBoundary(t *testing.T) {
	t.Parallel()
	// inner = NAND(a,b) is multi-fanout: DAGON cuts it, so NAND3 must
	// NOT match across it from the root tree.
	d := subject.New()
	a := d.AddPI("a")
	b := d.AddPI("b")
	c := d.AddPI("c")
	inner := d.AddNand2(a, b)
	mid := d.AddInv(inner)
	root := d.AddNand2(c, mid)
	other := d.AddInv(inner) // second consumer makes inner multi-fanout
	_ = other
	d.AddOutput("o", root)
	d.AddOutput("p", other)

	f, err := partition.Partition(partition.Input{DAG: d}, partition.Dagon)
	if err != nil {
		t.Fatal(err)
	}
	var rootTree *partition.Tree
	for i := range f.Trees(d) {
		trees := f.Trees(d)
		if trees[i].Root == root {
			rootTree = &trees[i]
		}
	}
	if rootTree == nil {
		t.Fatal("root tree missing")
	}
	m := NewMatcher(d, library.Default(), f.Father, rootTree.InTree())
	names := cellNames(m.MatchesAt(root))
	if names["NAND3"] {
		t.Error("NAND3 matched across a tree boundary")
	}
	if !names["NAND2"] {
		t.Error("NAND2 must match at root")
	}
}

func TestMatchRespectsFatherEdge(t *testing.T) {
	t.Parallel()
	// Both consumers of the multi-fanout gate w live in the same tree.
	// The matcher may cover w only through its father edge.
	d := subject.New()
	a := d.AddPI("a")
	b := d.AddPI("b")
	w := d.AddNand2(a, b)     // multi-fanout inside the tree
	iw := d.AddInv(w)         // consumer 1
	root := d.AddNand2(iw, w) // consumer 2 (and tree root)
	d.AddOutput("o", root)

	// Hand-build a forest where father(w) = iw (not root).
	father := make([]int, d.NumGates())
	for i := range father {
		father[i] = -1
	}
	father[w] = iw
	father[iw] = root
	inTree := func(g int) bool { return g == w || g == iw || g == root }
	m := NewMatcher(d, library.Default(), father, inTree)
	for _, mt := range m.MatchesAt(root) {
		for _, cov := range mt.Covered {
			if cov == w {
				// w may be covered only if reached via iw.
				via := false
				for _, l := range mt.Covered {
					if l == iw {
						via = true
					}
				}
				if !via {
					t.Errorf("%s covered w through a cut edge", mt.Cell.Name)
				}
			}
		}
	}
}

func TestMatchXorRequiresSharedLeaf(t *testing.T) {
	t.Parallel()
	// XOR pattern has repeated variables; it only matches when the
	// repeated leaves bind the same gate. Build the XOR shape with
	// distinct duplicated inputs — must NOT match XOR2.
	d := subject.New()
	a1 := d.AddPI("a1")
	a2 := d.AddPI("a2")
	b1 := d.AddPI("b1")
	b2 := d.AddPI("b2")
	l := d.AddNand2(a1, d.AddInv(b1))
	r := d.AddNand2(d.AddInv(a2), b2)
	root := d.AddNand2(l, r)
	d.AddOutput("o", root)
	ms := treeMatcher(t, d, root).MatchesAt(root)
	if cellNames(ms)["XOR2"] {
		t.Error("XOR2 matched with unequal repeated leaves")
	}
}

func TestEveryTreeVertexHasAMatch(t *testing.T) {
	t.Parallel()
	// Covering feasibility: every NAND2/INV vertex must match at least
	// its base cell.
	d := subject.New()
	a := d.AddPI("a")
	b := d.AddPI("b")
	c := d.AddPI("c")
	x := d.AddNand2(a, b)
	y := d.AddInv(x)
	z := d.AddNand2(y, c)
	d.AddOutput("o", z)
	f, err := partition.Partition(partition.Input{DAG: d}, partition.Dagon)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range f.Trees(d) {
		m := NewMatcher(d, library.Default(), f.Father, tr.InTree())
		for _, g := range tr.Gates {
			if len(m.MatchesAt(g)) == 0 {
				t.Errorf("no match at gate %d (%s)", g, d.Gate(g).Type)
			}
		}
	}
}

// TestMatchFunctionalCorrectness simulates: for every match found, the
// cell's pattern evaluated on the leaf values must equal the subject
// gate's value, over all PI assignments.
func TestMatchFunctionalCorrectness(t *testing.T) {
	t.Parallel()
	d := subject.New()
	a := d.AddPI("a")
	b := d.AddPI("b")
	c := d.AddPI("c")
	e := d.AddPI("e")
	n1 := d.AddNand2(a, b)
	i1 := d.AddInv(n1)
	n2 := d.AddNand2(i1, c)
	i2 := d.AddInv(n2)
	n3 := d.AddNand2(i2, e)
	d.AddOutput("o", n3)
	f, err := partition.Partition(partition.Input{DAG: d}, partition.Dagon)
	if err != nil {
		t.Fatal(err)
	}
	lib := library.Default()
	for _, tr := range f.Trees(d) {
		m := NewMatcher(d, lib, f.Father, tr.InTree())
		for _, g := range tr.Gates {
			for _, mt := range m.MatchesAt(g) {
				pat := mt.Cell.Patterns[mt.PatternIndex]
				vars := pat.Vars()
				for mint := 0; mint < 16; mint++ {
					pis := []bool{mint&1 == 1, mint&2 == 2, mint&4 == 4, mint&8 == 8}
					val, err := d.Eval(pis)
					if err != nil {
						t.Fatal(err)
					}
					assign := map[string]bool{}
					for i, v := range vars {
						assign[v] = val[mt.Leaves[i]]
					}
					if got := pat.Eval(assign); got != val[g] {
						t.Fatalf("match %s at gate %d wrong at minterm %d", mt.Cell.Name, g, mint)
					}
				}
			}
		}
	}
}

package match

import (
	"math/rand"
	"testing"

	"casyn/internal/bnet"
	"casyn/internal/library"
	"casyn/internal/logic"
	"casyn/internal/partition"
	"casyn/internal/subject"
)

// randomDAG synthesizes a random PLA down to a NAND2/INV subject DAG.
func randomDAG(t *testing.T, rng *rand.Rand, ni, no, terms int) *subject.DAG {
	t.Helper()
	p := logic.NewPLA(ni, no)
	for i := 0; i < terms; i++ {
		cb := logic.NewCube(ni)
		for j := 0; j < ni; j++ {
			switch rng.Intn(3) {
			case 0:
				cb.SetPos(j)
			case 1:
				cb.SetNeg(j)
			}
		}
		outs := make([]bool, no)
		outs[rng.Intn(no)] = true
		if err := p.AddTerm(cb, outs); err != nil {
			t.Fatal(err)
		}
	}
	n, err := bnet.FromPLA(p)
	if err != nil {
		t.Fatal(err)
	}
	d, err := subject.Decompose(n)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestMatchesAreFunctionCompatibleRandom: over random decomposed DAGs,
// every match the matcher reports pairs a cell pattern that is
// function-compatible with the subject subtree — for every PI
// assignment, the pattern evaluated on the leaf values equals the root
// gate's value. This is the semantic contract the mapper relies on:
// substituting the cell for the covered gates cannot change the
// circuit.
func TestMatchesAreFunctionCompatibleRandom(t *testing.T) {
	t.Parallel()
	lib := library.Default()
	rng := rand.New(rand.NewSource(41))
	matches := 0
	for trial := 0; trial < 25; trial++ {
		ni := 2 + rng.Intn(5) // 2..6 PIs keeps 2^ni enumeration cheap
		d := randomDAG(t, rng, ni, 1+rng.Intn(2), 2+rng.Intn(6))
		f, err := partition.Partition(partition.Input{DAG: d}, partition.Dagon)
		if err != nil {
			t.Fatal(err)
		}
		// Precompute gate values for every minterm once per DAG.
		vals := make([][]bool, 1<<ni)
		for m := range vals {
			pis := make([]bool, ni)
			for i := range pis {
				pis[i] = m>>i&1 == 1
			}
			if vals[m], err = d.Eval(pis); err != nil {
				t.Fatal(err)
			}
		}
		for _, tr := range f.Trees(d) {
			mr := NewMatcher(d, lib, f.Father, tr.InTree())
			for _, g := range tr.Gates {
				for _, mt := range mr.MatchesAt(g) {
					matches++
					pat := mt.Cell.Patterns[mt.PatternIndex]
					vars := pat.Vars()
					if len(vars) != len(mt.Leaves) {
						t.Fatalf("trial %d: %s leaves/vars mismatch: %d vs %d",
							trial, mt.Cell.Name, len(mt.Leaves), len(vars))
					}
					assign := map[string]bool{}
					for m := range vals {
						for i, v := range vars {
							assign[v] = vals[m][mt.Leaves[i]]
						}
						if pat.Eval(assign) != vals[m][mt.Root] {
							t.Fatalf("trial %d: %s at gate %d is not function-compatible (minterm %d)",
								trial, mt.Cell.Name, g, m)
						}
					}
				}
			}
		}
	}
	if matches < 100 {
		t.Errorf("only %d matches exercised; generator too weak", matches)
	}
}

// TestMatchCoveredSetIsConsistentRandom: structural sanity of every
// reported match — the root leads the covered list, covered gates are
// tree members and unique, and leaves are never covered.
func TestMatchCoveredSetIsConsistentRandom(t *testing.T) {
	t.Parallel()
	lib := library.Default()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		d := randomDAG(t, rng, 2+rng.Intn(5), 1, 2+rng.Intn(6))
		f, err := partition.Partition(partition.Input{DAG: d}, partition.Dagon)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range f.Trees(d) {
			inTree := tr.InTree()
			mr := NewMatcher(d, lib, f.Father, inTree)
			for _, g := range tr.Gates {
				for _, mt := range mr.MatchesAt(g) {
					if len(mt.Covered) == 0 || mt.Covered[0] != mt.Root || mt.Root != g {
						t.Fatalf("trial %d: %s covered list malformed: %+v", trial, mt.Cell.Name, mt)
					}
					seen := map[int]bool{}
					for _, c := range mt.Covered {
						if seen[c] {
							t.Fatalf("trial %d: %s covers gate %d twice", trial, mt.Cell.Name, c)
						}
						seen[c] = true
						if !inTree(c) {
							t.Fatalf("trial %d: %s covers gate %d outside the tree", trial, mt.Cell.Name, c)
						}
					}
					for _, l := range mt.Leaves {
						if seen[l] {
							t.Fatalf("trial %d: %s gate %d is both leaf and covered", trial, mt.Cell.Name, l)
						}
					}
				}
			}
		}
	}
}

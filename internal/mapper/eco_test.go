package mapper

import (
	"context"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"casyn/internal/library"
	"casyn/internal/subject"
)

// exampleCircuits globs the example PLA suite the ECO properties run
// over.
func exampleCircuits(t *testing.T) []string {
	t.Helper()
	plas, err := filepath.Glob("../../examples/circuits/*.pla")
	if err != nil || len(plas) == 0 {
		t.Fatalf("no example circuits found: %v", err)
	}
	return plas
}

// TestMapECOMatchesFresh is the incremental-mapping determinism
// property: on every example circuit, applying a random edit set via
// Invalidate + MapECO (both the delta-cover path and the full-cover
// fallback) is byte-identical to a from-scratch Prepare + MapPrepared
// of the edited design in the same placement context — including when
// a second edit set chains off the first ECO.
func TestMapECOMatchesFresh(t *testing.T) {
	t.Parallel()
	for _, pla := range exampleCircuits(t) {
		pla := pla
		t.Run(strings.TrimSuffix(filepath.Base(pla), ".pla"), func(t *testing.T) {
			t.Parallel()
			d, in := placedCircuit(t, pla)
			ctx := context.Background()
			lib := library.Default()
			prep, err := Prepare(ctx, d, in, Options{Lib: lib})
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []float64{0, 1} {
				for seed := int64(1); seed <= 2; seed++ {
					rng := rand.New(rand.NewSource(seed))
					base, cov, err := MapStateful(ctx, prep, k)
					if err != nil {
						t.Fatal(err)
					}
					direct, err := MapPrepared(ctx, prep, k)
					if err != nil {
						t.Fatal(err)
					}
					if resultKey(base) != resultKey(direct) {
						t.Fatalf("K=%g: MapStateful differs from MapPrepared", k)
					}

					edits := RandomEdits(prep, rng, 4)
					if len(edits.Edits) == 0 {
						t.Fatal("RandomEdits returned an empty set")
					}
					eco, err := prep.Invalidate(ctx, edits)
					if err != nil {
						t.Fatalf("K=%g seed=%d: Invalidate: %v", k, seed, err)
					}
					inc, incCov, err := MapECO(ctx, eco, cov, k)
					if err != nil {
						t.Fatal(err)
					}
					ref, err := Prepare(ctx, eco.Prep.DAG(),
						Input{Pos: eco.Prep.Pos(), POPads: eco.Prep.POPads()}, Options{Lib: lib})
					if err != nil {
						t.Fatal(err)
					}
					refRes, err := MapPrepared(ctx, ref, k)
					if err != nil {
						t.Fatal(err)
					}
					if resultKey(inc) != resultKey(refRes) {
						t.Errorf("K=%g seed=%d: delta-cover ECO differs from fresh synthesis of the edited design", k, seed)
					}
					full, _, err := MapECO(ctx, eco, nil, k)
					if err != nil {
						t.Fatal(err)
					}
					if resultKey(full) != resultKey(refRes) {
						t.Errorf("K=%g seed=%d: full-fallback ECO differs from fresh synthesis", k, seed)
					}

					// Chain a second edit set off the successor.
					edits2 := RandomEdits(&eco.Prep.Prepared, rng, 3)
					if len(edits2.Edits) == 0 {
						continue
					}
					eco2, err := eco.Prep.Invalidate(ctx, edits2)
					if err != nil {
						t.Fatalf("K=%g seed=%d: chained Invalidate: %v", k, seed, err)
					}
					inc2, _, err := MapECO(ctx, eco2, incCov, k)
					if err != nil {
						t.Fatal(err)
					}
					ref2, err := Prepare(ctx, eco2.Prep.DAG(),
						Input{Pos: eco2.Prep.Pos(), POPads: eco2.Prep.POPads()}, Options{Lib: lib})
					if err != nil {
						t.Fatal(err)
					}
					ref2Res, err := MapPrepared(ctx, ref2, k)
					if err != nil {
						t.Fatal(err)
					}
					if resultKey(inc2) != resultKey(ref2Res) {
						t.Errorf("K=%g seed=%d: chained ECO differs from fresh synthesis", k, seed)
					}
				}
			}
		})
	}
}

// TestInvalidateDirtySetExact is the dirty-set minimality/soundness
// property: Invalidate's per-tree reuse decision must match an
// independent reimplementation of the clean-tree criterion (identical
// membership, no structurally edited member, unchanged father
// pointers, no member or member-fanin moved), and every clean tree
// must share its members' match slices with the parent by pointer
// identity (copy-on-write, no reallocation). The whole property runs
// under 8 concurrent readers mapping against the parent, so -race
// additionally proves Invalidate never writes the shared Prepared.
func TestInvalidateDirtySetExact(t *testing.T) {
	t.Parallel()
	for _, pla := range exampleCircuits(t) {
		pla := pla
		t.Run(strings.TrimSuffix(filepath.Base(pla), ".pla"), func(t *testing.T) {
			t.Parallel()
			d, in := placedCircuit(t, pla)
			ctx := context.Background()
			lib := library.Default()
			prep, err := Prepare(ctx, d, in, Options{Lib: lib})
			if err != nil {
				t.Fatal(err)
			}
			baseRes, err := MapPrepared(ctx, prep, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			baseKey := resultKey(baseRes)

			// 8 concurrent readers of the parent Prepared.
			stop := make(chan struct{})
			var wg sync.WaitGroup
			errs := make(chan string, 8)
			for r := 0; r < 8; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						res, err := MapPrepared(ctx, prep, 0.5)
						if err != nil {
							errs <- err.Error()
							return
						}
						if resultKey(res) != baseKey {
							errs <- "concurrent MapPrepared result changed during Invalidate"
							return
						}
					}
				}()
			}

			rng := rand.New(rand.NewSource(7))
			for round := 0; round < 4; round++ {
				edits := RandomEdits(prep, rng, 3)
				if len(edits.Edits) == 0 {
					t.Fatal("RandomEdits returned an empty set")
				}
				eco, err := prep.Invalidate(ctx, edits)
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				checkDirtySet(t, prep, eco)
			}
			close(stop)
			wg.Wait()
			select {
			case msg := <-errs:
				t.Fatal(msg)
			default:
			}
		})
	}
}

// checkDirtySet verifies one Invalidate outcome against the
// independent clean-tree criterion.
func checkDirtySet(t *testing.T, parent *Prepared, eco *ECO) {
	t.Helper()
	succ := &eco.Prep.Prepared
	oldForest, newForest := parent.forest, succ.forest
	oldRootOf := oldForest.RootOf(parent.dag)
	oldSize := make(map[int]int)
	for _, tr := range oldForest.Trees(parent.dag) {
		oldSize[tr.Root] = len(tr.Gates)
	}
	structEdited := make(map[int]bool)
	for _, g := range eco.EditedGates {
		structEdited[g] = true
	}
	posChanged := make([]bool, succ.dag.NumGates())
	for _, g := range eco.MovedGates {
		posChanged[g] = true
	}
	newTrees := newForest.Trees(succ.dag)
	if len(eco.Prep.rebuild.Reused) != len(newTrees) {
		t.Fatalf("reuse map has %d entries for %d trees", len(eco.Prep.rebuild.Reused), len(newTrees))
	}
	dirtyRoots := make(map[int]bool)
	for _, r := range eco.DirtyRoots {
		dirtyRoots[r] = true
	}
	reused := 0
	for ti, tr := range newTrees {
		clean := oldSize[tr.Root] == len(tr.Gates)
		for _, v := range tr.Gates {
			if !clean {
				break
			}
			if oldRootOf[v] != tr.Root || structEdited[v] ||
				newForest.Father[v] != oldForest.Father[v] || posChanged[v] {
				clean = false
				break
			}
			g := succ.dag.Gate(v)
			for p := 0; p < g.Type.NumInputs(); p++ {
				if posChanged[g.In[p]] {
					clean = false
					break
				}
			}
		}
		if got := eco.Prep.rebuild.Reused[ti]; got != clean {
			t.Errorf("tree %d (root %d): Reused=%v, independent criterion says clean=%v", ti, tr.Root, got, clean)
		}
		if clean {
			reused++
			for _, v := range tr.Gates {
				if !eco.Prep.SharesMatches(v) {
					t.Errorf("clean tree root %d: gate %d's match slice was reallocated", tr.Root, v)
				}
			}
			if dirtyRoots[tr.Root] {
				t.Errorf("root %d is both reused and listed dirty", tr.Root)
			}
		} else if !dirtyRoots[tr.Root] {
			t.Errorf("dirty tree root %d missing from DirtyRoots", tr.Root)
		}
	}
	if reused != eco.ReusedTrees {
		t.Errorf("ReusedTrees=%d, counted %d", eco.ReusedTrees, reused)
	}
	if eco.Trees != len(newTrees) {
		t.Errorf("Trees=%d, forest has %d", eco.Trees, len(newTrees))
	}
}

// TestInvalidateRejectsInvalid checks that malformed edit sets error
// out without touching the shared Prepared.
func TestInvalidateRejectsInvalid(t *testing.T) {
	t.Parallel()
	plas := exampleCircuits(t)
	d, in := placedCircuit(t, plas[0])
	ctx := context.Background()
	lib := library.Default()
	prep, err := Prepare(ctx, d, in, Options{Lib: lib})
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := MapPrepared(ctx, prep, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	baseKey := resultKey(baseRes)

	live := d.LiveGates()
	var g int
	for _, v := range live {
		if tp := d.Gate(v).Type; tp == subject.Nand2 || tp == subject.Inv {
			g = v
			break
		}
	}
	if g == 0 {
		t.Fatal("no editable base gate in circuit")
	}
	cases := []struct {
		name  string
		edits EditSet
	}{
		{"empty", EditSet{}},
		{"out_of_range", EditSet{Edits: []Edit{{Kind: EditNudge, Gate: d.NumGates() + 5, DX: 1, DY: 1}}}},
		{"negative_gate", EditSet{Edits: []Edit{{Kind: EditNudge, Gate: -1, DX: 1, DY: 1}}}},
		{"pi_target", EditSet{Edits: []Edit{{Kind: EditNudge, Gate: d.PIs()[0], DX: 1, DY: 1}}}},
		{"duplicate_move", EditSet{Edits: []Edit{
			{Kind: EditNudge, Gate: g, DX: 1, DY: 1},
			{Kind: EditNudge, Gate: g, DX: 2, DY: 2}}}},
		{"swap_self", EditSet{Edits: []Edit{{Kind: EditSwap, Gate: g, Other: g}}}},
		{"fanin_not_topological", EditSet{Edits: []Edit{
			{Kind: EditReconnect, Gate: g, Pin: 0, NewFanin: g}}}},
		{"nand_identical_fanins", EditSet{Edits: []Edit{
			{Kind: EditGateFunc, Gate: g, NewType: subject.Nand2, NewIn: [2]int{0, 0}}}}},
		{"nonfinite_nudge", EditSet{Edits: []Edit{
			{Kind: EditNudge, Gate: g, DX: inf(), DY: 0}}}},
	}
	for _, tc := range cases {
		if _, err := prep.Invalidate(ctx, tc.edits); err == nil {
			t.Errorf("%s: Invalidate accepted an invalid edit set", tc.name)
		}
	}
	res, err := MapPrepared(ctx, prep, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if resultKey(res) != baseKey {
		t.Fatal("shared Prepared changed after rejected edit sets")
	}
}

func inf() float64 {
	f := 1.0
	for i := 0; i < 2000; i++ {
		f *= 2
	}
	return f
}

package mapper

// This file implements incremental (ECO) mapping: after a local edit —
// a gate-function change, a net reconnect, a placement nudge or swap —
// Invalidate builds a successor Prepared that recomputes only the
// dirtied partition trees' match enumerations (copy-on-write of
// everything clean, see cover/eco.go), and MapECO re-covers just those
// trees against a previous same-K cover. The original Prepared is
// never mutated: concurrent readers keep mapping against it while its
// successor is built.

import (
	"context"
	"fmt"

	"casyn/internal/cover"
	"casyn/internal/geom"
	"casyn/internal/obs"
	"casyn/internal/partition"
)

// ECO is the outcome of Prepared.Invalidate: the successor Prepared
// for the edited design plus the dirty-set bookkeeping the delta cover
// and the incremental router consume.
type ECO struct {
	// Prep is the successor prepared context: edited DAG, edited
	// placement, fresh partition, copy-on-write covering prefix. It is
	// a full Prepared — MapPrepared works against it directly, and a
	// further Invalidate chains off it.
	Prep *ECOPrepared
	// DirtyRoots lists the roots (edited-forest gate IDs) of the trees
	// whose enumeration was recomputed, ascending.
	DirtyRoots []int
	// EditedGates / MovedGates list the structurally edited and the
	// repositioned gate IDs.
	EditedGates []int
	MovedGates  []int
	// Trees / ReusedTrees count the partition trees of the edited
	// design and how many kept their cached enumeration.
	Trees       int
	ReusedTrees int
}

// ECOPrepared is a Prepared carrying its ECO lineage: the parent it
// was invalidated from and the per-tree reuse map, which is what lets
// MapECO re-cover only the dirty trees. It embeds Prepared, so every
// Prepared consumer (MapPrepared, Compatible, a further Invalidate)
// accepts it unchanged.
type ECOPrepared struct {
	Prepared
	parent  *Prepared
	rebuild *cover.Rebuild
}

// Invalidate applies an edit set to the prepared design and returns
// the successor context, recomputing only what the edits dirtied. The
// receiver is read-only throughout — on any error (invalid edits
// included) it is returned to the caller exactly as it was, and even
// on success it remains valid for concurrent use.
//
// Dirty-set granularity is the partition tree: a tree is recomputed
// iff its membership changed, a member was edited or moved, a member's
// father pointer changed, or a fanin of a member moved — the exact
// set of inputs its cached match enumeration and geometry read.
// Partitioning itself is recomputed in full (it is a cheap O(E) pass;
// the expensive match enumeration is what the copy-on-write avoids).
//
// The work is recorded under an "eco.invalidate" span; dirty/reused
// tree counts land on "eco.dirty_trees" / "eco.reused_trees".
func (p *Prepared) Invalidate(ctx context.Context, edits EditSet) (*ECO, error) {
	if p == nil {
		return nil, fmt.Errorf("eco: nil Prepared")
	}
	rec := obs.From(ctx)
	ectx, span := rec.StartSpan(ctx, "eco.invalidate")
	e, err := p.invalidate(ectx, edits)
	span.End(err)
	if err != nil {
		return nil, err
	}
	rec.Add("eco.edits", int64(len(edits.Edits)))
	rec.Add("eco.dirty_trees", int64(len(e.DirtyRoots)))
	rec.Add("eco.reused_trees", int64(e.ReusedTrees))
	return e, nil
}

func (p *Prepared) invalidate(ctx context.Context, edits EditSet) (*ECO, error) {
	if err := edits.validate(p.dag, p.in.Pos); err != nil {
		return nil, err
	}
	// Private clones: the parent's DAG and placement stay untouched no
	// matter what happens past this point.
	dag := p.dag.Clone()
	pos := append([]geom.Point(nil), p.in.Pos...)
	structEdited, moved, err := edits.apply(dag, pos)
	if err != nil {
		return nil, err
	}
	// Re-partition the edited design in full. PDP fathers are
	// nearest-consumer selections, so one moved gate can flip fathers
	// anywhere along its nets; recomputing the whole forest (linear in
	// the DAG) and diffing per tree is both simpler and sound.
	forest, err := partition.Partition(partition.Input{
		DAG:    dag,
		Pos:    pos,
		POPads: p.in.POPads,
		Metric: p.opts.Metric,
	}, p.opts.Method)
	if err != nil {
		return nil, err
	}
	rb, err := cover.RebuildPrefix(ctx, dag, forest, p.opts.Lib, pos, p.opts.Metric, p.opts.Workers,
		p.forest, p.prefix, structEdited)
	if err != nil {
		return nil, err
	}
	succ := &ECOPrepared{
		Prepared: Prepared{
			dag:    dag,
			forest: forest,
			prefix: rb.Prefix,
			opts:   p.opts,
			in:     Input{Pos: pos, POPads: p.in.POPads},
		},
		parent:  p,
		rebuild: rb,
	}
	return &ECO{
		Prep:        succ,
		DirtyRoots:  rb.DirtyRoots,
		EditedGates: structEdited,
		MovedGates:  moved,
		Trees:       len(rb.Reused),
		ReusedTrees: rb.ReusedTrees(),
	}, nil
}

// SharesMatches reports whether the successor shares gate g's cached
// match slice with its parent (pointer identity). Test hook for the
// copy-on-write contract.
func (e *ECOPrepared) SharesMatches(g int) bool {
	return cover.SharesMatches(e.parent.prefix, e.prefix, g)
}

// Parent returns the Prepared this context was invalidated from.
func (e *ECOPrepared) Parent() *Prepared { return e.parent }

// CoverState is one K rung's covering result together with its
// lineage: the Prepared it covered and the K it covered at. MapECO
// consumes it to re-cover only dirty trees; MapStateful produces the
// initial one.
type CoverState struct {
	prep *Prepared
	k    float64
	cov  *cover.Result
	// field is the K-field the cover ran with: nil for the classic
	// global-K path (equivalent to a uniform field), non-nil for a
	// MapWithField/MapFieldDelta cover. The adaptive controller chains
	// field deltas off it (adaptive.go).
	field *cover.KField
}

// K returns the congestion factor the state was covered at.
func (s *CoverState) K() float64 { return s.k }

// coverOptions assembles the covering options of a Prepared at K.
func (p *Prepared) coverOptions(k float64) cover.Options {
	return cover.Options{
		K:              k,
		Metric:         p.opts.Metric,
		WireUnit:       p.opts.WireUnit,
		Objective:      p.opts.Objective,
		TransitiveWire: p.opts.TransitiveWire,
		NoWire2:        p.opts.NoWire2,
		Workers:        p.opts.Workers,
	}
}

// MapStateful is MapPrepared plus the covering state an ECO delta can
// later start from. The Result is byte-identical to MapPrepared's.
func MapStateful(ctx context.Context, prep *Prepared, k float64) (*Result, *CoverState, error) {
	if prep == nil {
		return nil, nil, fmt.Errorf("mapper: nil Prepared")
	}
	rec := obs.From(ctx)
	cctx, cSpan := rec.StartSpan(ctx, "map.cover_only")
	cov, err := cover.CoverWithPrefix(cctx, prep.dag, prep.forest, prep.prefix, prep.coverOptions(k))
	cSpan.End(err)
	if err != nil {
		return nil, nil, err
	}
	res, err := finishMap(ctx, rec, prep, cov)
	if err != nil {
		return nil, nil, err
	}
	return res, &CoverState{prep: prep, k: k, cov: cov}, nil
}

// MapECO maps the invalidated context at K. When prev carries a cover
// of the parent Prepared at the same K, only the dirty trees run the
// covering DP (cover.CoverDelta) — the clean trees' solutions carry
// over — and the result is byte-identical to a full MapPrepared
// against the successor. With no usable prev (nil, different K, or
// different lineage) it falls back to the full prepared cover. Either
// way the returned CoverState chains further ECOs.
func MapECO(ctx context.Context, e *ECO, prev *CoverState, k float64) (*Result, *CoverState, error) {
	if e == nil || e.Prep == nil {
		return nil, nil, fmt.Errorf("mapper: nil ECO")
	}
	prep := &e.Prep.Prepared
	rec := obs.From(ctx)
	// A previous cover under a non-uniform K-field cannot seed a
	// structural delta here: CoverDelta would re-cover dirty trees at
	// the classic cost while clean trees keep field-weighted solutions.
	if prev == nil || prev.k != k || prev.prep != e.Prep.parent || prev.field != nil {
		rec.Add("eco.cover_full", 1)
		return MapStateful(ctx, prep, k)
	}
	cctx, cSpan := rec.StartSpan(ctx, "eco.cover_delta")
	cov, err := cover.CoverDelta(cctx, prep.dag, prep.forest, e.Prep.rebuild, prev.cov, prep.coverOptions(k))
	cSpan.End(err)
	if err != nil {
		return nil, nil, err
	}
	rec.Add("eco.cover_delta", 1)
	res, err := finishMap(ctx, rec, prep, cov)
	if err != nil {
		return nil, nil, err
	}
	return res, &CoverState{prep: prep, k: k, cov: cov}, nil
}

// finishMap reconstructs the mapped netlist from a covering result and
// records the mapping counters (the tail MapPrepared and MapECO
// share).
func finishMap(ctx context.Context, rec *obs.Recorder, prep *Prepared, cov *cover.Result) (*Result, error) {
	_, rSpan := rec.StartSpan(ctx, "map.reconstruct")
	res, err := reconstruct(prep.dag, prep.forest, cov)
	rSpan.End(err)
	if err != nil {
		return nil, err
	}
	rec.Add("map.cells", int64(res.NumCells))
	rec.Add("map.duplicated_cells", int64(res.DuplicatedCells))
	return res, nil
}

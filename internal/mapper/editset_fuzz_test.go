package mapper

import (
	"context"
	"encoding/json"
	"os"
	"sync"
	"testing"

	"casyn/internal/bench"
	"casyn/internal/geom"
	"casyn/internal/library"
	"casyn/internal/logic"
	"casyn/internal/place"
	"casyn/internal/subject"
)

// fuzzTarget lazily builds the shared Prepared every fuzz execution
// attacks, plus an immutable snapshot of the design it must never
// corrupt.
var fuzzTarget struct {
	once sync.Once
	err  error
	prep *Prepared
	// gates / pos snapshot what the shared context looked like before
	// any fuzz input ran.
	gates []subject.Gate
	pos   []geom.Point
}

func fuzzPrepared(f *testing.F) *Prepared {
	fuzzTarget.once.Do(func() {
		fh, err := os.Open("../../examples/circuits/dec24.pla")
		if err != nil {
			fuzzTarget.err = err
			return
		}
		p, err := logic.ReadPLA(fh)
		fh.Close()
		if err != nil {
			fuzzTarget.err = err
			return
		}
		d, err := bench.BuildSubject(p, bench.Direct, 0)
		if err != nil {
			fuzzTarget.err = err
			return
		}
		area := float64(d.BaseGateCount()) * 4.6 / 0.58
		layout, err := place.NewLayout(area, 1.0, library.RowHeight)
		if err != nil {
			fuzzTarget.err = err
			return
		}
		pos, poPads, _, _, err := SubjectPlacement(context.Background(), d, layout,
			place.Options{Seed: 1, RefinePasses: 8})
		if err != nil {
			fuzzTarget.err = err
			return
		}
		prep, err := Prepare(context.Background(), d, Input{Pos: pos, POPads: poPads},
			Options{Lib: library.Default()})
		if err != nil {
			fuzzTarget.err = err
			return
		}
		fuzzTarget.prep = prep
		for g := 0; g < d.NumGates(); g++ {
			fuzzTarget.gates = append(fuzzTarget.gates, *d.Gate(g))
		}
		fuzzTarget.pos = append([]geom.Point(nil), pos...)
	})
	if fuzzTarget.err != nil {
		f.Fatal(fuzzTarget.err)
	}
	return fuzzTarget.prep
}

// FuzzEditSet fuzzes the edit-set decoder and Invalidate together:
// arbitrary bytes must either fail to parse, fail validation with an
// error, or produce a coherent successor — and in every case the
// shared Prepared (its DAG and placement) must come through
// bit-identical. Out-of-range gate IDs, edits to dead or non-base
// gates, duplicate and overlapping edits, and empty sets are all
// reachable from the seed corpus.
func FuzzEditSet(f *testing.F) {
	seeds := []string{
		`{"edits":[{"op":"nudge","gate":12,"dx":1.5,"dy":-2}]}`,
		`{"edits":[{"op":"gate_func","gate":20,"new_type":"inv","new_in":[3]}]}`,
		`{"edits":[{"op":"gate_func","gate":20,"new_type":"nand2","new_in":[3,4]}]}`,
		`{"edits":[{"op":"reconnect","gate":20,"pin":1,"new_fanin":7}]}`,
		`{"edits":[{"op":"swap","gate":12,"other":13}]}`,
		`{"edits":[]}`,
		`{"edits":[{"op":"nudge","gate":-1,"dx":0,"dy":0}]}`,
		`{"edits":[{"op":"nudge","gate":999999,"dx":0,"dy":0}]}`,
		`{"edits":[{"op":"nudge","gate":12,"dx":1,"dy":1},{"op":"nudge","gate":12,"dx":2,"dy":2}]}`,
		`{"edits":[{"op":"swap","gate":12,"other":12}]}`,
		`{"edits":[{"op":"reconnect","gate":12,"pin":5,"new_fanin":0}]}`,
		`{"edits":[{"op":"gate_func","gate":12,"new_type":"nand2","new_in":[0,0]}]}`,
		`{"edits":[{"op":"nudge","gate":12}]}`,
		`{"edits":[{"op":"warp","gate":12}]}`,
		`not json`,
		`{"edits":[{"op":"nudge","gate":12,"dx":1,"dy":2}]}trailing`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	prep := fuzzPrepared(f)
	ctx := context.Background()
	f.Fuzz(func(t *testing.T, data []byte) {
		es, err := ParseEditSet(data)
		if err == nil {
			// The wire form must round-trip through the canonical
			// marshaler.
			canon, merr := json.Marshal(es)
			if merr != nil {
				t.Fatalf("marshal of parsed set failed: %v", merr)
			}
			es2, perr := ParseEditSet(canon)
			if perr != nil {
				t.Fatalf("canonical form does not re-parse: %v\n%s", perr, canon)
			}
			if len(es2.Edits) != len(es.Edits) {
				t.Fatalf("round trip changed edit count: %d != %d", len(es2.Edits), len(es.Edits))
			}
			eco, ierr := prep.Invalidate(ctx, es)
			if ierr == nil {
				if eco.Prep == nil {
					t.Fatal("successful Invalidate returned nil successor")
				}
				if eco.Trees != eco.ReusedTrees+len(eco.DirtyRoots) {
					t.Fatalf("tree bookkeeping inconsistent: %d trees, %d reused, %d dirty",
						eco.Trees, eco.ReusedTrees, len(eco.DirtyRoots))
				}
			}
		}
		// Whatever happened, the shared Prepared is untouched.
		d := prep.DAG()
		for g := range fuzzTarget.gates {
			if *d.Gate(g) != fuzzTarget.gates[g] {
				t.Fatalf("shared DAG corrupted at gate %d", g)
			}
		}
		pos := prep.Pos()
		for i := range fuzzTarget.pos {
			if pos[i] != fuzzTarget.pos[i] {
				t.Fatalf("shared placement corrupted at gate %d", i)
			}
		}
	})
}

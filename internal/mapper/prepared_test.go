package mapper

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"casyn/internal/bench"
	"casyn/internal/library"
	"casyn/internal/logic"
	"casyn/internal/place"
	"casyn/internal/subject"
)

// preparedKs is the ladder the prepared-vs-fresh property is checked
// over: the DAGON baseline, two mid rungs, and a high-K rung where the
// wire term dominates the covering cost.
var preparedKs = []float64{0, 0.5, 1, 2}

// placedCircuit loads one examples/circuits PLA and runs the standard
// subject placement (the golden suite's operating point: seed 1, 58%
// utilization).
func placedCircuit(t *testing.T, plaPath string) (*subject.DAG, Input) {
	t.Helper()
	f, err := os.Open(plaPath)
	if err != nil {
		t.Fatal(err)
	}
	p, err := logic.ReadPLA(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	d, err := bench.BuildSubject(p, bench.Direct, 0)
	if err != nil {
		t.Fatal(err)
	}
	area := float64(d.BaseGateCount()) * 4.6 / 0.58
	layout, err := place.NewLayout(area, 1.0, library.RowHeight)
	if err != nil {
		t.Fatal(err)
	}
	pos, poPads, _, _, err := SubjectPlacement(context.Background(), d, layout, place.Options{Seed: 1, RefinePasses: 8})
	if err != nil {
		t.Fatal(err)
	}
	return d, Input{Pos: pos, POPads: poPads}
}

// resultKey condenses a mapping result into the byte-exact identity
// the property compares: the structural Verilog plus every scalar.
// Errors fold into the key (this also keeps it goroutine-safe — no
// t.Fatal off the test goroutine in the race test).
func resultKey(r *Result) string {
	var sb strings.Builder
	if err := r.Netlist.WriteVerilog(&sb, "dut"); err != nil {
		return "verilog error: " + err.Error()
	}
	fmt.Fprintf(&sb, "\narea=%v cells=%d dup=%d wire=%v inst=%v",
		r.CellArea, r.NumCells, r.DuplicatedCells, r.WireEstimate, r.InstGate)
	return sb.String()
}

// TestMapPreparedMatchesMap is the shared-prefix determinism property:
// on every example circuit, MapPrepared over the K ladder is
// byte-identical — netlist Verilog, cell area, instance bookkeeping —
// to a fresh mapper.Map call at the same K.
func TestMapPreparedMatchesMap(t *testing.T) {
	t.Parallel()
	plas, err := filepath.Glob("../../examples/circuits/*.pla")
	if err != nil || len(plas) == 0 {
		t.Fatalf("no example circuits found: %v", err)
	}
	for _, pla := range plas {
		pla := pla
		t.Run(strings.TrimSuffix(filepath.Base(pla), ".pla"), func(t *testing.T) {
			t.Parallel()
			d, in := placedCircuit(t, pla)
			ctx := context.Background()
			lib := library.Default()
			prep, err := Prepare(ctx, d, in, Options{Lib: lib})
			if err != nil {
				t.Fatal(err)
			}
			if !prep.Compatible(0, lib) {
				t.Fatal("Prepared incompatible with its own method/library")
			}
			if prep.Compatible(0, library.Default()) {
				t.Error("Compatible must be library pointer identity, not structural")
			}
			for _, k := range preparedKs {
				fresh, err := Map(ctx, d, in, Options{K: k, Lib: lib})
				if err != nil {
					t.Fatalf("Map K=%g: %v", k, err)
				}
				pr, err := MapPrepared(ctx, prep, k)
				if err != nil {
					t.Fatalf("MapPrepared K=%g: %v", k, err)
				}
				if fk, pk := resultKey(fresh), resultKey(pr); fk != pk {
					t.Errorf("K=%g: prepared mapping differs from fresh Map\n--- fresh\n%.400s\n--- prepared\n%.400s", k, fk, pk)
				}
			}
		})
	}
}

// TestMapPreparedSharedRace shares one Prepared across 8 goroutines
// mapping at interleaved K values, proving the artifact is immutable
// and safe for the concurrent ladder (run under -race in CI) and that
// concurrent use stays byte-identical to serial use.
func TestMapPreparedSharedRace(t *testing.T) {
	t.Parallel()
	d, in := placedCircuit(t, "../../examples/circuits/add2.pla")
	ctx := context.Background()
	lib := library.Default()
	prep, err := Prepare(ctx, d, in, Options{Lib: lib})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[float64]string, len(preparedKs))
	for _, k := range preparedKs {
		r, err := MapPrepared(ctx, prep, k)
		if err != nil {
			t.Fatal(err)
		}
		want[k] = resultKey(r)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < len(preparedKs)*2; i++ {
				k := preparedKs[(g+i)%len(preparedKs)]
				r, err := MapPrepared(ctx, prep, k)
				if err != nil {
					errs[g] = fmt.Errorf("goroutine %d K=%g: %w", g, k, err)
					return
				}
				if got := resultKey(r); got != want[k] {
					errs[g] = fmt.Errorf("goroutine %d K=%g: shared-Prepared result diverged", g, k)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

package mapper

import (
	"math/rand"

	"casyn/internal/subject"
)

// RandomEdits draws up to n random, validity-guaranteed edit
// operations against the prepared design: gate-function rewrites,
// fanin reconnects, placement nudges, and cell swaps, mixed uniformly.
// Deterministic per rng state — the differential ECO harness, the
// invalidation property tests, and BenchmarkECO all draw their edit
// streams from it. It returns fewer than n operations only when the
// design is too small to host them without violating the
// one-structural-edit / one-move per gate rules (a caller that needs a
// non-empty set should check, since an empty EditSet fails Validate by
// design).
func RandomEdits(p *Prepared, rng *rand.Rand, n int) EditSet {
	d := p.dag
	var base []int
	for _, g := range d.LiveGates() {
		if t := d.Gate(g).Type; t == subject.Nand2 || t == subject.Inv {
			base = append(base, g)
		}
	}
	es := EditSet{}
	if len(base) == 0 {
		return es
	}
	usedStruct := make(map[int]bool)
	usedPos := make(map[int]bool)
	// fanin samples a routable driver with ID below g (the topological
	// invariant), avoiding `not`; -1 when none was found.
	fanin := func(g, not int) int {
		if g == 0 {
			return -1
		}
		for try := 0; try < 64; try++ {
			f := rng.Intn(g)
			if f == not {
				continue
			}
			switch d.Gate(f).Type {
			case subject.PI, subject.Nand2, subject.Inv, subject.Const0, subject.Const1:
				return f
			}
		}
		return -1
	}
	for attempts := 0; len(es.Edits) < n && attempts < 20*n+100; attempts++ {
		g := base[rng.Intn(len(base))]
		switch rng.Intn(4) {
		case 0: // gate_func
			if usedStruct[g] {
				continue
			}
			e := Edit{Kind: EditGateFunc, Gate: g, NewIn: [2]int{-1, -1}}
			if rng.Intn(2) == 0 {
				f := fanin(g, -1)
				if f < 0 {
					continue
				}
				e.NewType = subject.Inv
				e.NewIn[0] = f
			} else {
				f0 := fanin(g, -1)
				if f0 < 0 {
					continue
				}
				f1 := fanin(g, f0)
				if f1 < 0 {
					continue
				}
				e.NewType = subject.Nand2
				e.NewIn = [2]int{f0, f1}
			}
			usedStruct[g] = true
			es.Edits = append(es.Edits, e)
		case 1: // reconnect
			if usedStruct[g] {
				continue
			}
			gt := d.Gate(g)
			pin := rng.Intn(gt.Type.NumInputs())
			not := -1
			if gt.Type == subject.Nand2 {
				not = gt.In[1-pin]
			}
			f := fanin(g, not)
			if f < 0 {
				continue
			}
			usedStruct[g] = true
			es.Edits = append(es.Edits, Edit{Kind: EditReconnect, Gate: g, Pin: pin, NewFanin: f})
		case 2: // nudge
			if usedPos[g] {
				continue
			}
			usedPos[g] = true
			es.Edits = append(es.Edits, Edit{Kind: EditNudge, Gate: g,
				DX: (rng.Float64()*2 - 1) * 25, DY: (rng.Float64()*2 - 1) * 25})
		case 3: // swap
			o := base[rng.Intn(len(base))]
			if o == g || usedPos[g] || usedPos[o] {
				continue
			}
			usedPos[g], usedPos[o] = true, true
			es.Edits = append(es.Edits, Edit{Kind: EditSwap, Gate: g, Other: o})
		}
	}
	return es
}

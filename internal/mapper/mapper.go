// Package mapper implements the paper's primary contribution: the
// congestion-aware technology-mapping pipeline of Section 3.
//
// The pipeline is:
//
//  1. place the technology-independent netlist (base gates) on the
//     chip layout image (SubjectPlacement);
//  2. partition the subject DAG into trees — placement-driven (PDP) by
//     default (package partition);
//  3. match library patterns on each tree (package match);
//  4. cover each tree by dynamic programming with
//     COST = AREA + K·WIRE (package cover);
//  5. reconstruct the mapped gate-level netlist, duplicating logic
//     where a multi-fanout vertex was covered inside another tree.
//
// K = 0 reproduces DAGON-style minimum-area mapping — the baseline the
// paper compares against in every table.
package mapper

import (
	"context"
	"fmt"

	"casyn/internal/cover"
	"casyn/internal/geom"
	"casyn/internal/library"
	"casyn/internal/netlist"
	"casyn/internal/partition"
	"casyn/internal/place"
	"casyn/internal/subject"
)

// Options configures a mapping run.
type Options struct {
	// K is the congestion minimization factor (Eq. 5); 0 = min area.
	K float64
	// Method is the DAG partitioning scheme (default PDP).
	Method partition.Method
	// Lib is the cell library (default library.Default()).
	Lib *library.Library
	// Metric is the layout distance function (default Manhattan).
	Metric geom.Metric
	// WireUnit is the covering cost's length unit in µm (default 0.5);
	// forwarded to the coverer.
	WireUnit float64
	// Objective selects area- or delay-oriented covering.
	Objective cover.Objective
	// TransitiveWire / NoWire2 are the ablation switches forwarded to
	// the coverer.
	TransitiveWire bool
	NoWire2        bool
}

func (o *Options) defaults() {
	if o.Lib == nil {
		o.Lib = library.Default()
	}
}

// Input is the placement context for mapping.
type Input struct {
	// Pos is the position of every subject gate on the layout image
	// (PIs at their pad locations).
	Pos []geom.Point
	// POPads optionally maps a gate ID to the pad locations of the POs
	// it drives (consumed by PDP partitioning).
	POPads map[int][]geom.Point
}

// Result is a completed mapping.
type Result struct {
	Netlist *netlist.Netlist
	// CellArea is the total mapped cell area (µm²), including
	// duplicated logic.
	CellArea float64
	// NumCells is the mapped instance count.
	NumCells int
	// DuplicatedCells counts instances created by cross-tree logic
	// duplication.
	DuplicatedCells int
	// WireEstimate is the covering's Eq. 4 total over tree roots.
	WireEstimate float64
	// InstGate maps each instance index to the subject gate whose
	// signal it produces.
	InstGate []int
	// Forest is the partition used.
	Forest *partition.Forest
}

// Map runs the full pipeline on an already-placed subject DAG. The
// expensive covering DP checks ctx cooperatively; a canceled ctx
// returns promptly with a wrapped ctx error.
func Map(ctx context.Context, d *subject.DAG, in Input, opts Options) (*Result, error) {
	opts.defaults()
	method := opts.Method
	forest, err := partition.Partition(partition.Input{
		DAG:    d,
		Pos:    in.Pos,
		POPads: in.POPads,
		Metric: opts.Metric,
	}, method)
	if err != nil {
		return nil, err
	}
	cov, err := cover.Cover(ctx, d, forest, opts.Lib, in.Pos, cover.Options{
		K:              opts.K,
		Metric:         opts.Metric,
		WireUnit:       opts.WireUnit,
		Objective:      opts.Objective,
		TransitiveWire: opts.TransitiveWire,
		NoWire2:        opts.NoWire2,
	})
	if err != nil {
		return nil, err
	}
	return reconstruct(d, forest, cov)
}

// reconstruct builds the mapped netlist from the covering solutions,
// instantiating duplicated logic for cross-tree references to gates
// that the chosen covers swallowed.
func reconstruct(d *subject.DAG, forest *partition.Forest, cov *cover.Result) (*Result, error) {
	nl := netlist.New()
	res := &Result{Netlist: nl, Forest: forest, WireEstimate: cov.RootWire}

	// Visible gates: match roots of every tree's chosen cover. Their
	// signals exist without duplication.
	visible := make(map[int]bool)
	inTreeOf := make(map[int]func(int) bool)
	for _, t := range forest.Trees(d) {
		inTree := t.InTree()
		for _, g := range t.Gates {
			inTreeOf[g] = inTree
		}
		var walk func(v int)
		walk = func(v int) {
			visible[v] = true
			for _, l := range cover.SelectedLeafSubtrees(forest, inTree, cov.Best[v]) {
				walk(l)
			}
		}
		walk(t.Root)
	}

	sigOf := make(map[int]netlist.SigID)
	// Primary inputs and constants first.
	for _, pi := range d.PIs() {
		sigOf[pi] = nl.AddSignal(d.Gate(pi).Name, netlist.SigPI)
	}
	for g := 0; g < d.NumGates(); g++ {
		switch d.Gate(g).Type {
		case subject.Const0:
			sigOf[g] = nl.AddSignal("const0", netlist.SigConst0)
		case subject.Const1:
			sigOf[g] = nl.AddSignal("const1", netlist.SigConst1)
		}
	}

	var instantiate func(g int, dup bool) (netlist.SigID, error)
	instantiate = func(g int, dup bool) (netlist.SigID, error) {
		if sig, ok := sigOf[g]; ok {
			return sig, nil
		}
		sol := cov.Best[g]
		if sol == nil {
			return 0, fmt.Errorf("mapper: no covering solution for gate %d (%s)", g, d.Gate(g).Type)
		}
		inTree := inTreeOf[g]
		subtree := map[int]bool{}
		for _, l := range cover.SelectedLeafSubtrees(forest, inTree, sol) {
			subtree[l] = true
		}
		inputs := make([]netlist.SigID, len(sol.Match.Leaves))
		for i, l := range sol.Match.Leaves {
			// A leaf heading an in-tree subtree inherits this gate's
			// duplication status; a cross reference is a duplicate only
			// if its signal is not already visible.
			leafDup := dup
			if !subtree[l] {
				leafDup = !visible[l] && d.Gate(l).Type != subject.PI &&
					d.Gate(l).Type != subject.Const0 && d.Gate(l).Type != subject.Const1
			}
			sig, err := instantiate(l, leafDup)
			if err != nil {
				return 0, err
			}
			inputs[i] = sig
		}
		name := fmt.Sprintf("u%d", nl.NumCells())
		_, out := nl.AddInstance(name, sol.Match.Cell, sol.Match.PatternIndex, inputs, sol.Pos)
		res.InstGate = append(res.InstGate, g)
		if dup {
			res.DuplicatedCells++
		}
		sigOf[g] = out
		return out, nil
	}

	// Instantiate all visible gates in ascending (topological) gate-ID
	// order, then resolve the primary outputs.
	for g := 0; g < d.NumGates(); g++ {
		if visible[g] {
			if _, err := instantiate(g, false); err != nil {
				return nil, err
			}
		}
	}
	for _, o := range d.Outputs() {
		sig, ok := sigOf[o.Gate]
		if !ok {
			var err error
			sig, err = instantiate(o.Gate, true)
			if err != nil {
				return nil, err
			}
		}
		nl.AddPO(o.Name, sig)
	}

	res.CellArea = nl.CellArea()
	res.NumCells = nl.NumCells()
	if err := nl.Check(); err != nil {
		return nil, err
	}
	return res, nil
}

// SubjectPlacement places the technology-independent netlist on the
// layout image and returns the per-gate positions plus the pad
// bookkeeping mapping needs. PI gates take their pad positions; every
// live base gate is placed by recursive bisection. The returned
// piPads/poPads are perimeter pad assignments in PI/PO declaration
// order.
func SubjectPlacement(ctx context.Context, d *subject.DAG, layout place.Layout, popts place.Options) (pos []geom.Point, poPads map[int][]geom.Point, piPads, poPadList []geom.Point, err error) {
	live := d.LiveGates()
	cellOf := make(map[int]int)
	var widths []float64
	baseW := library.Default().Nand2().Width()
	for _, g := range live {
		t := d.Gate(g).Type
		if t == subject.Nand2 || t == subject.Inv {
			cellOf[g] = len(widths)
			widths = append(widths, baseW)
		}
	}
	// Perimeter pads: PIs then POs, evenly interleaved.
	nPI, nPO := len(d.PIs()), len(d.Outputs())
	pads := layout.PerimeterPads(nPI + nPO)
	piPads = pads[:nPI]
	poPadList = pads[nPI:]

	nl := &place.Netlist{Widths: widths}
	// One net per driving gate with at least one consumer.
	for _, g := range live {
		var cells []int
		var padPts []geom.Point
		if c, ok := cellOf[g]; ok {
			cells = append(cells, c)
		} else if t := d.Gate(g).Type; t == subject.PI {
			for i, pi := range d.PIs() {
				if pi == g {
					padPts = append(padPts, piPads[i])
				}
			}
		}
		for _, fo := range d.Fanouts(g) {
			if c, ok := cellOf[fo]; ok {
				cells = append(cells, c)
			}
		}
		for i, o := range d.Outputs() {
			if o.Gate == g {
				padPts = append(padPts, poPadList[i])
			}
		}
		if len(cells)+len(padPts) >= 2 {
			nl.Nets = append(nl.Nets, place.Net{Cells: cells, Pads: padPts})
		}
	}
	pl, err := place.PlaceNetlist(ctx, nl, layout, popts)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	pos = make([]geom.Point, d.NumGates())
	center := layout.Die.Center()
	for i := range pos {
		pos[i] = center
	}
	for g, c := range cellOf {
		pos[g] = pl.Pos[c]
	}
	for i, pi := range d.PIs() {
		pos[pi] = piPads[i]
	}
	poPads = make(map[int][]geom.Point)
	for i, o := range d.Outputs() {
		poPads[o.Gate] = append(poPads[o.Gate], poPadList[i])
	}
	return pos, poPads, piPads, poPadList, nil
}

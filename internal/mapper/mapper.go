// Package mapper implements the paper's primary contribution: the
// congestion-aware technology-mapping pipeline of Section 3.
//
// The pipeline is:
//
//  1. place the technology-independent netlist (base gates) on the
//     chip layout image (SubjectPlacement);
//  2. partition the subject DAG into trees — placement-driven (PDP) by
//     default (package partition);
//  3. match library patterns on each tree (package match);
//  4. cover each tree by dynamic programming with
//     COST = AREA + K·WIRE (package cover);
//  5. reconstruct the mapped gate-level netlist, duplicating logic
//     where a multi-fanout vertex was covered inside another tree.
//
// K = 0 reproduces DAGON-style minimum-area mapping — the baseline the
// paper compares against in every table.
package mapper

import (
	"context"
	"fmt"

	"casyn/internal/cover"
	"casyn/internal/geom"
	"casyn/internal/library"
	"casyn/internal/netlist"
	"casyn/internal/obs"
	"casyn/internal/partition"
	"casyn/internal/place"
	"casyn/internal/subject"
)

// Options configures a mapping run.
type Options struct {
	// K is the congestion minimization factor (Eq. 5); 0 = min area.
	K float64
	// Method is the DAG partitioning scheme (default PDP).
	Method partition.Method
	// Lib is the cell library (default library.Default()).
	Lib *library.Library
	// Metric is the layout distance function (default Manhattan).
	Metric geom.Metric
	// WireUnit is the covering cost's length unit in µm (default 0.5);
	// forwarded to the coverer.
	WireUnit float64
	// Objective selects area- or delay-oriented covering.
	Objective cover.Objective
	// TransitiveWire / NoWire2 are the ablation switches forwarded to
	// the coverer.
	TransitiveWire bool
	NoWire2        bool
	// Workers bounds the goroutines of the per-tree covering fan-out
	// (0 = runtime.GOMAXPROCS, 1 = serial); forwarded to the coverer.
	// The mapped result is identical for every value.
	Workers int
}

func (o *Options) defaults() {
	if o.Lib == nil {
		o.Lib = library.Default()
	}
}

// Input is the placement context for mapping.
type Input struct {
	// Pos is the position of every subject gate on the layout image
	// (PIs at their pad locations).
	Pos []geom.Point
	// POPads optionally maps a gate ID to the pad locations of the POs
	// it drives (consumed by PDP partitioning).
	POPads map[int][]geom.Point
}

// Result is a completed mapping.
type Result struct {
	Netlist *netlist.Netlist
	// CellArea is the total mapped cell area (µm²), including
	// duplicated logic.
	CellArea float64
	// NumCells is the mapped instance count.
	NumCells int
	// DuplicatedCells counts instances created by cross-tree logic
	// duplication.
	DuplicatedCells int
	// WireEstimate is the covering's Eq. 4 total over tree roots.
	WireEstimate float64
	// InstGate maps each instance index to the subject gate whose
	// signal it produces.
	InstGate []int
	// Forest is the partition used.
	Forest *partition.Forest
}

// Map runs the full pipeline on an already-placed subject DAG. The
// expensive covering DP checks ctx cooperatively; a canceled ctx
// returns promptly with a wrapped ctx error.
func Map(ctx context.Context, d *subject.DAG, in Input, opts Options) (*Result, error) {
	opts.defaults()
	method := opts.Method
	rec := obs.From(ctx)
	_, pSpan := rec.StartSpan(ctx, "map.partition")
	forest, err := partition.Partition(partition.Input{
		DAG:    d,
		Pos:    in.Pos,
		POPads: in.POPads,
		Metric: opts.Metric,
	}, method)
	pSpan.End(err)
	if err != nil {
		return nil, err
	}
	cctx, cSpan := rec.StartSpan(ctx, "map.cover")
	cov, err := cover.Cover(cctx, d, forest, opts.Lib, in.Pos, cover.Options{
		K:              opts.K,
		Metric:         opts.Metric,
		WireUnit:       opts.WireUnit,
		Objective:      opts.Objective,
		TransitiveWire: opts.TransitiveWire,
		NoWire2:        opts.NoWire2,
		Workers:        opts.Workers,
	})
	cSpan.End(err)
	if err != nil {
		return nil, err
	}
	_, rSpan := rec.StartSpan(ctx, "map.reconstruct")
	res, err := reconstruct(d, forest, cov)
	rSpan.End(err)
	if err != nil {
		return nil, err
	}
	rec.Add("map.cells", int64(res.NumCells))
	rec.Add("map.duplicated_cells", int64(res.DuplicatedCells))
	return res, nil
}

// reconstruct builds the mapped netlist from the covering solutions,
// instantiating duplicated logic for cross-tree references to gates
// that the chosen covers swallowed. All bookkeeping is dense slices
// indexed by gate ID, and the cover walks use explicit stacks — tree
// depth is unbounded on the full-size circuits.
func reconstruct(d *subject.DAG, forest *partition.Forest, cov *cover.Result) (*Result, error) {
	nl := netlist.New()
	res := &Result{Netlist: nl, Forest: forest, WireEstimate: cov.RootWire}

	// rootOf[g] is the root of the tree g belongs to (-1 for PIs and
	// constants); sameTree(g) tests membership in g's tree, the shape
	// cover.SelectedLeafSubtrees expects.
	rootOf := forest.RootOf(d)
	sameTree := func(g int) func(int) bool {
		tr := rootOf[g]
		return func(x int) bool { return tr >= 0 && rootOf[x] == tr }
	}

	// Visible gates: match roots of every tree's chosen cover. Their
	// signals exist without duplication.
	visible := make([]bool, d.NumGates())
	var walk []int
	for _, root := range forest.Roots {
		walk = append(walk[:0], root)
		for len(walk) > 0 {
			v := walk[len(walk)-1]
			walk = walk[:len(walk)-1]
			visible[v] = true
			walk = append(walk, cover.SelectedLeafSubtrees(forest, sameTree(v), cov.Best[v])...)
		}
	}

	sigOf := make([]netlist.SigID, d.NumGates())
	haveSig := make([]bool, d.NumGates())
	setSig := func(g int, s netlist.SigID) {
		sigOf[g] = s
		haveSig[g] = true
	}
	// Primary inputs and constants first.
	for _, pi := range d.PIs() {
		setSig(pi, nl.AddSignal(d.Gate(pi).Name, netlist.SigPI))
	}
	for g := 0; g < d.NumGates(); g++ {
		switch d.Gate(g).Type {
		case subject.Const0:
			setSig(g, nl.AddSignal("const0", netlist.SigConst0))
		case subject.Const1:
			setSig(g, nl.AddSignal("const1", netlist.SigConst1))
		}
	}

	// instantiate emits the instance producing g's signal, first
	// emitting its match leaves. The recursion is a two-phase stack:
	// a frame's first visit pushes its leaf frames (reversed, so they
	// complete in leaf order and instance names match the recursive
	// formulation); the revisit finds every leaf signal present and
	// creates the instance.
	type frame struct {
		g        int
		dup      bool
		expanded bool
	}
	var stack []frame
	instantiate := func(g int, dup bool) error {
		stack = append(stack[:0], frame{g: g, dup: dup})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if haveSig[f.g] {
				stack = stack[:len(stack)-1]
				continue
			}
			sol := cov.Best[f.g]
			if sol == nil {
				return fmt.Errorf("mapper: no covering solution for gate %d (%s)", f.g, d.Gate(f.g).Type)
			}
			if !f.expanded {
				f.expanded = true
				subtree := map[int]bool{}
				for _, l := range cover.SelectedLeafSubtrees(forest, sameTree(f.g), sol) {
					subtree[l] = true
				}
				leaves := sol.Match.Leaves
				for i := len(leaves) - 1; i >= 0; i-- {
					l := leaves[i]
					if haveSig[l] {
						continue
					}
					// A leaf heading an in-tree subtree inherits this
					// gate's duplication status; a cross reference is a
					// duplicate only if its signal is not already
					// visible.
					leafDup := f.dup
					if !subtree[l] {
						leafDup = !visible[l] && d.Gate(l).Type != subject.PI &&
							d.Gate(l).Type != subject.Const0 && d.Gate(l).Type != subject.Const1
					}
					// f may be invalidated by the append; re-read nothing
					// from it after this point in the loop.
					stack = append(stack, frame{g: l, dup: leafDup})
				}
				continue
			}
			inputs := make([]netlist.SigID, len(sol.Match.Leaves))
			for i, l := range sol.Match.Leaves {
				inputs[i] = sigOf[l]
			}
			name := fmt.Sprintf("u%d", nl.NumCells())
			_, out := nl.AddInstance(name, sol.Match.Cell, sol.Match.PatternIndex, inputs, sol.Pos)
			res.InstGate = append(res.InstGate, f.g)
			if f.dup {
				res.DuplicatedCells++
			}
			setSig(f.g, out)
			stack = stack[:len(stack)-1]
		}
		return nil
	}

	// Instantiate all visible gates in ascending (topological) gate-ID
	// order, then resolve the primary outputs.
	for g := 0; g < d.NumGates(); g++ {
		if visible[g] {
			if err := instantiate(g, false); err != nil {
				return nil, err
			}
		}
	}
	for _, o := range d.Outputs() {
		if !haveSig[o.Gate] {
			if err := instantiate(o.Gate, true); err != nil {
				return nil, err
			}
		}
		nl.AddPO(o.Name, sigOf[o.Gate])
	}

	res.CellArea = nl.CellArea()
	res.NumCells = nl.NumCells()
	if err := nl.Check(); err != nil {
		return nil, err
	}
	return res, nil
}

// SubjectPlacement places the technology-independent netlist on the
// layout image and returns the per-gate positions plus the pad
// bookkeeping mapping needs. PI gates take their pad positions; every
// live base gate is placed by recursive bisection. The returned
// piPads/poPads are perimeter pad assignments in PI/PO declaration
// order.
func SubjectPlacement(ctx context.Context, d *subject.DAG, layout place.Layout, popts place.Options) (pos []geom.Point, poPads map[int][]geom.Point, piPads, poPadList []geom.Point, err error) {
	live := d.LiveGates()
	cellOf := make(map[int]int)
	var widths []float64
	baseW := library.Default().Nand2().Width()
	for _, g := range live {
		t := d.Gate(g).Type
		if t == subject.Nand2 || t == subject.Inv {
			cellOf[g] = len(widths)
			widths = append(widths, baseW)
		}
	}
	// Perimeter pads: PIs then POs, evenly interleaved.
	nPI, nPO := len(d.PIs()), len(d.Outputs())
	pads := layout.PerimeterPads(nPI + nPO)
	piPads = pads[:nPI]
	poPadList = pads[nPI:]
	// Gate → pad index maps, built once; the per-live-gate loop below
	// must not rescan the PI and output lists (that was quadratic on
	// the PLA-style benchmarks, whose output counts are large).
	piIdx := make(map[int]int, nPI)
	for i, pi := range d.PIs() {
		piIdx[pi] = i
	}
	poIdx := make(map[int][]int, nPO)
	for i, o := range d.Outputs() {
		poIdx[o.Gate] = append(poIdx[o.Gate], i)
	}

	nl := &place.Netlist{Widths: widths}
	// One net per driving gate with at least one consumer.
	for _, g := range live {
		var cells []int
		var padPts []geom.Point
		if c, ok := cellOf[g]; ok {
			cells = append(cells, c)
		} else if i, ok := piIdx[g]; ok && d.Gate(g).Type == subject.PI {
			padPts = append(padPts, piPads[i])
		}
		for _, fo := range d.Fanouts(g) {
			if c, ok := cellOf[fo]; ok {
				cells = append(cells, c)
			}
		}
		for _, i := range poIdx[g] {
			padPts = append(padPts, poPadList[i])
		}
		if len(cells)+len(padPts) >= 2 {
			nl.Nets = append(nl.Nets, place.Net{Cells: cells, Pads: padPts})
		}
	}
	pl, err := place.PlaceNetlist(ctx, nl, layout, popts)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	pos = make([]geom.Point, d.NumGates())
	center := layout.Die.Center()
	for i := range pos {
		pos[i] = center
	}
	for g, c := range cellOf {
		pos[g] = pl.Pos[c]
	}
	for i, pi := range d.PIs() {
		pos[pi] = piPads[i]
	}
	poPads = make(map[int][]geom.Point)
	for i, o := range d.Outputs() {
		poPads[o.Gate] = append(poPads[o.Gate], poPadList[i])
	}
	return pos, poPads, piPads, poPadList, nil
}

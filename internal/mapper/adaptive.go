package mapper

// This file is the mapping side of the closed-loop congestion
// controller (flow.RunAdaptive): covering under a spatial K-field and
// re-covering only the trees an inflation step can affect. The
// structural ECO path (eco.go) re-covers trees dirtied by netlist
// edits; this path re-covers trees dirtied by field changes — same
// prefix, same DAG, different dirty dimension.

import (
	"context"
	"fmt"

	"casyn/internal/cover"
	"casyn/internal/geom"
	"casyn/internal/obs"
)

// TreeTerritories exposes the per-tree territory boxes of the prepared
// covering prefix: the bounding box of every layout position each
// tree's DP reads (see cover.Prefix.TreeTerritory). The adaptive
// controller intersects them with each iteration's changed gcells to
// decide which trees to re-cover.
func (p *Prepared) TreeTerritories() []geom.Rect { return p.prefix.TreeTerritories() }

// Field returns the K-field the state was covered with (nil for the
// classic global-K path).
func (s *CoverState) Field() *cover.KField { return s.field }

// MapWithField maps the prepared DAG at congestion factor K under a
// spatial K-field: every wire term of the covering cost is scaled by
// the field multiplier sampled along its span (cover/kfield.go). A nil
// field falls back to MapStateful; a uniform field (all multipliers
// exactly 1.0) is byte-identical to it — the property the uniform-
// field tests in the differential harness pin. The work is recorded
// under a "map.cover_field" span.
func MapWithField(ctx context.Context, prep *Prepared, k float64, field *cover.KField) (*Result, *CoverState, error) {
	if prep == nil {
		return nil, nil, fmt.Errorf("mapper: nil Prepared")
	}
	if field == nil {
		return MapStateful(ctx, prep, k)
	}
	opts := prep.coverOptions(k)
	opts.KField = field
	rec := obs.From(ctx)
	cctx, cSpan := rec.StartSpan(ctx, "map.cover_field")
	cov, err := cover.CoverWithPrefix(cctx, prep.dag, prep.forest, prep.prefix, opts)
	cSpan.End(err)
	if err != nil {
		return nil, nil, err
	}
	res, err := finishMap(ctx, rec, prep, cov)
	if err != nil {
		return nil, nil, err
	}
	return res, &CoverState{prep: prep, k: k, cov: cov, field: field}, nil
}

// MapFieldDelta re-maps after a K-field update, re-covering only the
// dirty trees against prev and copying everything else. prev must come
// from MapStateful, MapWithField, or a previous MapFieldDelta over the
// same Prepared at the same K; dirty must mark every tree whose
// territory intersects a gcell where prev's field and the new field
// differ (cover.DirtyTreesForField over TreeTerritories) — the
// controller's inflation step produces exactly that set. The result is
// byte-identical to MapWithField(prep, k, field). Recorded under a
// "map.cover_field_delta" span with "map.field_dirty_trees" /
// "map.field_reused_trees" counters.
func MapFieldDelta(ctx context.Context, prev *CoverState, k float64, field *cover.KField, dirty []bool) (*Result, *CoverState, error) {
	if prev == nil || prev.prep == nil || prev.cov == nil {
		return nil, nil, fmt.Errorf("mapper: MapFieldDelta needs a previous cover state")
	}
	if field == nil {
		return nil, nil, fmt.Errorf("mapper: MapFieldDelta needs a K-field")
	}
	if prev.k != k {
		return nil, nil, fmt.Errorf("mapper: field delta at K=%g against a K=%g cover", k, prev.k)
	}
	prep := prev.prep
	opts := prep.coverOptions(k)
	opts.KField = field
	rec := obs.From(ctx)
	nDirty := 0
	for _, d := range dirty {
		if d {
			nDirty++
		}
	}
	rec.Add("map.field_dirty_trees", int64(nDirty))
	rec.Add("map.field_reused_trees", int64(len(dirty)-nDirty))
	cctx, cSpan := rec.StartSpan(ctx, "map.cover_field_delta")
	cov, err := cover.CoverFieldDelta(cctx, prep.dag, prep.forest, prep.prefix, prev.cov, opts, dirty)
	cSpan.End(err)
	if err != nil {
		return nil, nil, err
	}
	res, err := finishMap(ctx, rec, prep, cov)
	if err != nil {
		return nil, nil, err
	}
	return res, &CoverState{prep: prep, k: k, cov: cov, field: field}, nil
}

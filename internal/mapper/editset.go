package mapper

// EditSet is the ECO edit vocabulary: the local netlist and placement
// changes the incremental pipeline (Prepared.Invalidate → CoverDelta →
// territory-scoped rerouting) absorbs without a resynthesis. Edits are
// validated as a set against the Prepared they will be applied to and
// then applied to private clones of its DAG and placement — an invalid
// set errors before anything is touched, so a shared Prepared can
// never be corrupted by a bad edit.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"casyn/internal/geom"
	"casyn/internal/subject"
)

// EditKind identifies one ECO edit operation.
type EditKind int

const (
	// EditGateFunc rewrites a gate's base function (NAND2 ↔ INV) with
	// explicit new fanins.
	EditGateFunc EditKind = iota
	// EditReconnect replaces one fanin pin of a gate with a different
	// driver (a net reconnect).
	EditReconnect
	// EditNudge moves a gate's placement by a delta.
	EditNudge
	// EditSwap exchanges the placement positions of two gates.
	EditSwap
)

// String implements fmt.Stringer (also the JSON "op" vocabulary).
func (k EditKind) String() string {
	switch k {
	case EditGateFunc:
		return "gate_func"
	case EditReconnect:
		return "reconnect"
	case EditNudge:
		return "nudge"
	case EditSwap:
		return "swap"
	default:
		return fmt.Sprintf("edit(%d)", int(k))
	}
}

// Edit is one ECO edit. Gate always names the target; the remaining
// fields depend on Kind.
type Edit struct {
	Kind EditKind
	Gate int
	// NewType / NewIn parameterize EditGateFunc: the replacement base
	// function and its fanin IDs (NewIn[0] for INV, NewIn[0:2] for
	// NAND2).
	NewType subject.GateType
	NewIn   [2]int
	// Pin / NewFanin parameterize EditReconnect: the fanin position to
	// rewrite and the new driver gate.
	Pin      int
	NewFanin int
	// DX / DY parameterize EditNudge (placement units, µm).
	DX, DY float64
	// Other parameterizes EditSwap: the gate to exchange positions with.
	Other int
}

// EditSet is an ordered batch of edits applied atomically.
type EditSet struct {
	Edits []Edit
}

// editJSON is the wire form of one edit.
type editJSON struct {
	Op       string    `json:"op"`
	Gate     int       `json:"gate"`
	NewType  string    `json:"new_type,omitempty"`
	NewIn    []int     `json:"new_in,omitempty"`
	Pin      *int      `json:"pin,omitempty"`
	NewFanin *int      `json:"new_fanin,omitempty"`
	DX       *float64  `json:"dx,omitempty"`
	DY       *float64  `json:"dy,omitempty"`
	Other    *int      `json:"other,omitempty"`
}

// editSetJSON is the wire form of an edit set.
type editSetJSON struct {
	Edits []editJSON `json:"edits"`
}

// MaxEditSetBytes bounds an inline edit-set document.
const MaxEditSetBytes = 1 << 20

// ParseEditSet decodes the JSON edit-set form:
//
//	{"edits": [
//	  {"op": "gate_func", "gate": 12, "new_type": "inv", "new_in": [3]},
//	  {"op": "reconnect", "gate": 12, "pin": 1, "new_fanin": 7},
//	  {"op": "nudge", "gate": 12, "dx": 1.5, "dy": -2},
//	  {"op": "swap", "gate": 12, "other": 40}]}
//
// Unknown fields and trailing garbage are rejected; size is bounded by
// MaxEditSetBytes. Decoding checks only the document's shape —
// Validate (against a concrete Prepared) checks gate IDs and set
// coherence.
func ParseEditSet(data []byte) (EditSet, error) {
	if len(data) > MaxEditSetBytes {
		return EditSet{}, fmt.Errorf("eco: edit set exceeds %d bytes", MaxEditSetBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var raw editSetJSON
	if err := dec.Decode(&raw); err != nil {
		return EditSet{}, fmt.Errorf("eco: bad edit set: %w", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return EditSet{}, fmt.Errorf("eco: trailing data after edit set")
	}
	es := EditSet{Edits: make([]Edit, 0, len(raw.Edits))}
	for i, ej := range raw.Edits {
		e := Edit{Gate: ej.Gate}
		switch ej.Op {
		case "gate_func":
			e.Kind = EditGateFunc
			switch ej.NewType {
			case "nand2":
				e.NewType = subject.Nand2
			case "inv":
				e.NewType = subject.Inv
			default:
				return EditSet{}, fmt.Errorf("eco: edit %d: new_type %q is not a base gate", i, ej.NewType)
			}
			if len(ej.NewIn) != e.NewType.NumInputs() {
				return EditSet{}, fmt.Errorf("eco: edit %d: %s takes %d fanins, got %d",
					i, ej.NewType, e.NewType.NumInputs(), len(ej.NewIn))
			}
			e.NewIn = [2]int{-1, -1}
			copy(e.NewIn[:], ej.NewIn)
		case "reconnect":
			if ej.Pin == nil || ej.NewFanin == nil {
				return EditSet{}, fmt.Errorf("eco: edit %d: reconnect needs pin and new_fanin", i)
			}
			e.Kind = EditReconnect
			e.Pin = *ej.Pin
			e.NewFanin = *ej.NewFanin
		case "nudge":
			if ej.DX == nil || ej.DY == nil {
				return EditSet{}, fmt.Errorf("eco: edit %d: nudge needs dx and dy", i)
			}
			e.Kind = EditNudge
			e.DX, e.DY = *ej.DX, *ej.DY
		case "swap":
			if ej.Other == nil {
				return EditSet{}, fmt.Errorf("eco: edit %d: swap needs other", i)
			}
			e.Kind = EditSwap
			e.Other = *ej.Other
		default:
			return EditSet{}, fmt.Errorf("eco: edit %d: unknown op %q", i, ej.Op)
		}
		es.Edits = append(es.Edits, e)
	}
	return es, nil
}

// MarshalJSON emits the wire form ParseEditSet reads.
func (es EditSet) MarshalJSON() ([]byte, error) {
	raw := editSetJSON{Edits: make([]editJSON, 0, len(es.Edits))}
	for _, e := range es.Edits {
		ej := editJSON{Op: e.Kind.String(), Gate: e.Gate}
		switch e.Kind {
		case EditGateFunc:
			ej.NewType = e.NewType.String()
			ej.NewIn = append([]int(nil), e.NewIn[:e.NewType.NumInputs()]...)
		case EditReconnect:
			pin, nf := e.Pin, e.NewFanin
			ej.Pin, ej.NewFanin = &pin, &nf
		case EditNudge:
			dx, dy := e.DX, e.DY
			ej.DX, ej.DY = &dx, &dy
		case EditSwap:
			other := e.Other
			ej.Other = &other
		default:
			return nil, fmt.Errorf("eco: unknown edit kind %d", int(e.Kind))
		}
		raw.Edits = append(raw.Edits, ej)
	}
	return json.Marshal(raw)
}

// validate checks the edit set against a concrete subject DAG and
// placement without modifying anything: every target must be a live
// base gate, structural rewrites must preserve the topological-ID
// invariant, placement deltas must be finite, and no gate may be the
// target of two structural edits or of two placement edits (a swap
// claims both of its gates). An empty set is an error — ECO semantics
// are "apply this change", and an empty change is a caller bug worth
// surfacing.
func (es EditSet) validate(d *subject.DAG, pos []geom.Point) error {
	if len(es.Edits) == 0 {
		return fmt.Errorf("eco: empty edit set")
	}
	live := make([]bool, d.NumGates())
	for _, g := range d.LiveGates() {
		live[g] = true
	}
	baseTarget := func(i, g int) error {
		if g < 0 || g >= d.NumGates() {
			return fmt.Errorf("eco: edit %d: gate %d out of range [0,%d)", i, g, d.NumGates())
		}
		if t := d.Gate(g).Type; t != subject.Nand2 && t != subject.Inv {
			return fmt.Errorf("eco: edit %d: gate %d is a %s, not an editable base gate", i, g, t)
		}
		if !live[g] {
			return fmt.Errorf("eco: edit %d: gate %d is dead (drives no output)", i, g)
		}
		return nil
	}
	structTarget := make(map[int]int) // gate → edit index
	posTarget := make(map[int]int)
	claimStruct := func(i, g int) error {
		if j, dup := structTarget[g]; dup {
			return fmt.Errorf("eco: edit %d: gate %d already structurally edited by edit %d", i, g, j)
		}
		structTarget[g] = i
		return nil
	}
	claimPos := func(i, g int) error {
		if j, dup := posTarget[g]; dup {
			return fmt.Errorf("eco: edit %d: gate %d already moved by edit %d", i, g, j)
		}
		posTarget[g] = i
		return nil
	}
	for i, e := range es.Edits {
		switch e.Kind {
		case EditGateFunc:
			if err := baseTarget(i, e.Gate); err != nil {
				return err
			}
			if err := claimStruct(i, e.Gate); err != nil {
				return err
			}
			switch e.NewType {
			case subject.Nand2, subject.Inv:
			default:
				return fmt.Errorf("eco: edit %d: new type %s is not a base gate", i, e.NewType)
			}
			for p := 0; p < e.NewType.NumInputs(); p++ {
				if err := checkFanin(d, i, e.Gate, e.NewIn[p]); err != nil {
					return err
				}
			}
			if e.NewType == subject.Nand2 && e.NewIn[0] == e.NewIn[1] {
				return fmt.Errorf("eco: edit %d: NAND2 with identical fanins %d", i, e.NewIn[0])
			}
		case EditReconnect:
			if err := baseTarget(i, e.Gate); err != nil {
				return err
			}
			if err := claimStruct(i, e.Gate); err != nil {
				return err
			}
			nin := d.Gate(e.Gate).Type.NumInputs()
			if e.Pin < 0 || e.Pin >= nin {
				return fmt.Errorf("eco: edit %d: pin %d out of range for %s", i, e.Pin, d.Gate(e.Gate).Type)
			}
			if err := checkFanin(d, i, e.Gate, e.NewFanin); err != nil {
				return err
			}
			in := d.Gate(e.Gate).In
			in[e.Pin] = e.NewFanin
			if nin == 2 && in[0] == in[1] {
				return fmt.Errorf("eco: edit %d: reconnect makes NAND2 %d fanins identical", i, e.Gate)
			}
		case EditNudge:
			if err := baseTarget(i, e.Gate); err != nil {
				return err
			}
			if err := claimPos(i, e.Gate); err != nil {
				return err
			}
			if !finite(e.DX) || !finite(e.DY) {
				return fmt.Errorf("eco: edit %d: non-finite nudge (%g, %g)", i, e.DX, e.DY)
			}
		case EditSwap:
			if err := baseTarget(i, e.Gate); err != nil {
				return err
			}
			if err := baseTarget(i, e.Other); err != nil {
				return err
			}
			if e.Gate == e.Other {
				return fmt.Errorf("eco: edit %d: swap of gate %d with itself", i, e.Gate)
			}
			if err := claimPos(i, e.Gate); err != nil {
				return err
			}
			if err := claimPos(i, e.Other); err != nil {
				return err
			}
		default:
			return fmt.Errorf("eco: edit %d: unknown kind %d", i, int(e.Kind))
		}
	}
	_ = pos
	return nil
}

// checkFanin validates one new fanin reference of gate g.
func checkFanin(d *subject.DAG, i, g, fanin int) error {
	if fanin < 0 || fanin >= d.NumGates() {
		return fmt.Errorf("eco: edit %d: fanin %d out of range [0,%d)", i, fanin, d.NumGates())
	}
	if fanin >= g {
		return fmt.Errorf("eco: edit %d: fanin %d not before gate %d (IDs must stay topological)", i, fanin, g)
	}
	switch d.Gate(fanin).Type {
	case subject.PI, subject.Nand2, subject.Inv, subject.Const0, subject.Const1:
		return nil
	default:
		return fmt.Errorf("eco: edit %d: fanin %d has unroutable type %s", i, fanin, d.Gate(fanin).Type)
	}
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// apply mutates the (already cloned) DAG and position slice, returning
// the structurally edited gate IDs and the moved gate IDs. The set
// must have passed validate against the originals.
func (es EditSet) apply(d *subject.DAG, pos []geom.Point) (structEdited, moved []int, err error) {
	for i, e := range es.Edits {
		switch e.Kind {
		case EditGateFunc:
			if err := d.SetGate(e.Gate, e.NewType, e.NewIn); err != nil {
				return nil, nil, fmt.Errorf("eco: edit %d: %w", i, err)
			}
			structEdited = append(structEdited, e.Gate)
		case EditReconnect:
			g := d.Gate(e.Gate)
			in := g.In
			in[e.Pin] = e.NewFanin
			if err := d.SetGate(e.Gate, g.Type, in); err != nil {
				return nil, nil, fmt.Errorf("eco: edit %d: %w", i, err)
			}
			structEdited = append(structEdited, e.Gate)
		case EditNudge:
			pos[e.Gate] = geom.Pt(pos[e.Gate].X+e.DX, pos[e.Gate].Y+e.DY)
			moved = append(moved, e.Gate)
		case EditSwap:
			pos[e.Gate], pos[e.Other] = pos[e.Other], pos[e.Gate]
			moved = append(moved, e.Gate, e.Other)
		}
	}
	return structEdited, moved, nil
}

package mapper

// This file implements the shared K-sweep prefix: only the covering
// DP's cost (Eqs. 1–5) depends on the congestion factor K — the
// partition forest, the per-tree topological orders, and the complete
// per-vertex match enumeration with pattern/leaf bindings and cached
// geometry are all functions of (DAG, placement, partition method,
// library) alone. Prepared computes that prefix once; MapPrepared
// replays only the K-dependent covering and reconstruction against
// it, which is what makes a K ladder sweep cheap.

import (
	"context"
	"fmt"

	"casyn/internal/cover"
	"casyn/internal/geom"
	"casyn/internal/library"
	"casyn/internal/obs"
	"casyn/internal/partition"
	"casyn/internal/subject"
)

// Prepared is the K-invariant prefix of mapping one placed subject
// DAG: the partition forest plus the covering prefix (trees, match
// enumeration, cached centers of mass and cross-leaf distances). It is
// immutable after Prepare and safe to share across goroutines — a
// concurrent K ladder maps every rung against one Prepared.
//
// A Prepared is valid for exactly the (DAG, placement, Method, Lib,
// Metric, WireUnit) it was built from; remapping after any of those
// change requires a fresh Prepare. Compatible guards the method and
// library identity for callers that thread a Prepared alongside a
// config.
type Prepared struct {
	dag    *subject.DAG
	forest *partition.Forest
	prefix *cover.Prefix
	opts   Options
	// in is the placement context the prefix was built against; the
	// incremental path (Invalidate) re-partitions edited clones of it.
	in Input
}

// DAG exposes the subject DAG the prefix was built for (read-only).
func (p *Prepared) DAG() *subject.DAG { return p.dag }

// Pos exposes the placement the prefix was built against (read-only).
// After an Invalidate, the successor Prepared's Pos carries the edited
// positions — downstream placement and routing read them from here.
func (p *Prepared) Pos() []geom.Point { return p.in.Pos }

// POPads exposes the PO pad map of the placement context (read-only).
func (p *Prepared) POPads() map[int][]geom.Point { return p.in.POPads }

// Forest exposes the partition the prefix was built on.
func (p *Prepared) Forest() *partition.Forest { return p.forest }

// Lib exposes the cell library the prefix's matches were enumerated
// against. Compatible is pointer identity and library.Default()
// allocates per call, so callers holding only the Prepared (an ECO
// state, a cached prefix) read the exact pointer from here instead of
// defaulting a fresh — and incompatible — library.
func (p *Prepared) Lib() *library.Library { return p.opts.Lib }

// NumMatches returns the total cached match count (reporting only).
func (p *Prepared) NumMatches() int { return p.prefix.NumMatches() }

// Compatible reports whether the Prepared can serve a mapping request
// with the given partition method and library. Library compatibility
// is pointer identity — library.Default() allocates per call, so
// callers sharing a Prepared must thread the same *Library they
// prepared with.
func (p *Prepared) Compatible(method partition.Method, lib *library.Library) bool {
	return p != nil && p.opts.Method == method && p.opts.Lib == lib
}

// Prepare runs the K-invariant mapping prefix: partitioning and the
// complete match enumeration. opts.K is ignored — K enters only at
// MapPrepared time. The work is recorded under a "map.prepare" span
// with nested "map.partition"; the cached match total lands on the
// "map.prepare.matches" counter.
func Prepare(ctx context.Context, d *subject.DAG, in Input, opts Options) (*Prepared, error) {
	opts.defaults()
	rec := obs.From(ctx)
	pctx, span := rec.StartSpan(ctx, "map.prepare")
	prep, err := prepare(pctx, d, in, opts)
	span.End(err)
	if err != nil {
		return nil, err
	}
	rec.Add("map.prepare.matches", int64(prep.prefix.NumMatches()))
	return prep, nil
}

// PrepareForest builds the K-invariant prefix over a prebuilt
// partition forest — the direct k-way partitioner's output, possibly
// carrying replica gates — instead of running the partition stage.
// The DAG, placement, and forest must be mutually consistent (the
// k-way result's DAG/Pos/Forest triple is, by construction).
func PrepareForest(ctx context.Context, d *subject.DAG, forest *partition.Forest, in Input, opts Options) (*Prepared, error) {
	if forest == nil {
		return nil, fmt.Errorf("mapper: PrepareForest needs a forest")
	}
	opts.defaults()
	rec := obs.From(ctx)
	pctx, span := rec.StartSpan(ctx, "map.prepare")
	prefix, err := cover.BuildPrefix(pctx, d, forest, opts.Lib, in.Pos, opts.Metric, opts.Workers)
	span.End(err)
	if err != nil {
		return nil, err
	}
	prep := &Prepared{dag: d, forest: forest, prefix: prefix, opts: opts, in: in}
	rec.Add("map.prepare.matches", int64(prep.prefix.NumMatches()))
	return prep, nil
}

func prepare(ctx context.Context, d *subject.DAG, in Input, opts Options) (*Prepared, error) {
	rec := obs.From(ctx)
	_, pSpan := rec.StartSpan(ctx, "map.partition")
	forest, err := partition.Partition(partition.Input{
		DAG:    d,
		Pos:    in.Pos,
		POPads: in.POPads,
		Metric: opts.Metric,
	}, opts.Method)
	pSpan.End(err)
	if err != nil {
		return nil, err
	}
	prefix, err := cover.BuildPrefix(ctx, d, forest, opts.Lib, in.Pos, opts.Metric, opts.Workers)
	if err != nil {
		return nil, err
	}
	return &Prepared{dag: d, forest: forest, prefix: prefix, opts: opts, in: in}, nil
}

// MapPrepared maps the prepared DAG at one congestion factor K. The
// covering DP consumes the cached matches and re-evaluates only the
// K-weighted cost combination, recorded under a "map.cover_only" span;
// reconstruction is identical to Map's. The result is byte-identical
// to mapper.Map with the Prepared's options at the same K.
func MapPrepared(ctx context.Context, prep *Prepared, k float64) (*Result, error) {
	if prep == nil {
		return nil, fmt.Errorf("mapper: nil Prepared")
	}
	opts := prep.opts
	opts.K = k
	rec := obs.From(ctx)
	cctx, cSpan := rec.StartSpan(ctx, "map.cover_only")
	cov, err := cover.CoverWithPrefix(cctx, prep.dag, prep.forest, prep.prefix, cover.Options{
		K:              opts.K,
		Metric:         opts.Metric,
		WireUnit:       opts.WireUnit,
		Objective:      opts.Objective,
		TransitiveWire: opts.TransitiveWire,
		NoWire2:        opts.NoWire2,
		Workers:        opts.Workers,
	})
	cSpan.End(err)
	if err != nil {
		return nil, err
	}
	_, rSpan := rec.StartSpan(ctx, "map.reconstruct")
	res, err := reconstruct(prep.dag, prep.forest, cov)
	rSpan.End(err)
	if err != nil {
		return nil, err
	}
	rec.Add("map.cells", int64(res.NumCells))
	rec.Add("map.duplicated_cells", int64(res.DuplicatedCells))
	return res, nil
}

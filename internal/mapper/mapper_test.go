package mapper

import (
	"context"

	"math/rand"
	"strings"
	"testing"

	"casyn/internal/bnet"
	"casyn/internal/geom"
	"casyn/internal/library"
	"casyn/internal/logic"
	"casyn/internal/partition"
	"casyn/internal/place"
	"casyn/internal/subject"
)

// samplePLA builds a random multi-output PLA with sharing.
func samplePLA(rng *rand.Rand, ni, no, terms int) *logic.PLA {
	p := logic.NewPLA(ni, no)
	for k := 0; k < terms; k++ {
		cb := logic.NewCube(ni)
		for i := 0; i < ni; i++ {
			switch rng.Intn(3) {
			case 0:
				cb.SetPos(i)
			case 1:
				cb.SetNeg(i)
			}
		}
		row := make([]bool, no)
		row[rng.Intn(no)] = true
		if rng.Intn(3) == 0 {
			row[rng.Intn(no)] = true
		}
		if err := p.AddTerm(cb, row); err != nil {
			panic(err)
		}
	}
	return p
}

// preparedDAG decomposes a PLA into a placed subject DAG.
func preparedDAG(t *testing.T, rng *rand.Rand, ni, no, terms int) (*subject.DAG, Input, *logic.PLA) {
	t.Helper()
	p := samplePLA(rng, ni, no, terms)
	n, err := bnet.FromPLA(p)
	if err != nil {
		t.Fatal(err)
	}
	bnet.Extract(n, bnet.ExtractOptions{MaxIterations: 40})
	d, err := subject.Decompose(n)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := place.LayoutWithRows(12, 120, library.RowHeight)
	if err != nil {
		t.Fatal(err)
	}
	pos, poPads, _, _, err := SubjectPlacement(context.Background(), d, layout, place.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return d, Input{Pos: pos, POPads: poPads}, p
}

// checkEquivalent compares the mapped netlist to the PLA behaviour.
func checkEquivalent(t *testing.T, res *Result, p *logic.PLA, rng *rand.Rand, vectors int) {
	t.Helper()
	assign := make([]bool, p.NumInputs)
	for v := 0; v < vectors; v++ {
		for i := range assign {
			assign[i] = rng.Intn(2) == 0
		}
		want := p.Eval(assign)
		got, err := res.Netlist.Eval(assign)
		if err != nil {
			t.Fatal(err)
		}
		for o := range want {
			if want[o] != got[o] {
				t.Fatalf("output %d differs at vector %d", o, v)
			}
		}
	}
}

func TestMapMinAreaEquivalence(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(41))
	d, in, p := preparedDAG(t, rng, 7, 3, 16)
	for _, method := range []partition.Method{partition.Dagon, partition.Cone, partition.PDP} {
		res, err := Map(context.Background(), d, in, Options{K: 0, Method: method})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if err := res.Netlist.Check(); err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		checkEquivalent(t, res, p, rng, 200)
	}
}

func TestMapCongestionEquivalence(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(43))
	d, in, p := preparedDAG(t, rng, 8, 4, 20)
	for _, k := range []float64{0, 0.0005, 0.01, 0.5, 5} {
		res, err := Map(context.Background(), d, in, Options{K: k})
		if err != nil {
			t.Fatalf("K=%g: %v", k, err)
		}
		checkEquivalent(t, res, p, rng, 150)
	}
}

func TestMapAreaGrowsWithK(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(47))
	d, in, _ := preparedDAG(t, rng, 8, 4, 24)
	area0, err := Map(context.Background(), d, in, Options{K: 0})
	if err != nil {
		t.Fatal(err)
	}
	areaBig, err := Map(context.Background(), d, in, Options{K: 100})
	if err != nil {
		t.Fatal(err)
	}
	if areaBig.CellArea < area0.CellArea-1e-9 {
		t.Errorf("area at huge K (%g) below min area (%g)", areaBig.CellArea, area0.CellArea)
	}
	if area0.WireEstimate < areaBig.WireEstimate-1e-9 {
		t.Logf("wire estimate: K=0 %g, K=100 %g", area0.WireEstimate, areaBig.WireEstimate)
	}
}

func TestMapWireShrinksWithK(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(53))
	d, in, _ := preparedDAG(t, rng, 8, 4, 24)
	res0, err := Map(context.Background(), d, in, Options{K: 0})
	if err != nil {
		t.Fatal(err)
	}
	resK, err := Map(context.Background(), d, in, Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if resK.WireEstimate > res0.WireEstimate+1e-9 {
		t.Errorf("wire estimate rose with K: %g -> %g", res0.WireEstimate, resK.WireEstimate)
	}
}

func TestDuplicationAccounting(t *testing.T) {
	t.Parallel()
	// Force duplication: multi-fanout gate covered inside its father's
	// tree under PDP while another tree references it.
	d := subject.New()
	a := d.AddPI("a")
	b := d.AddPI("b")
	c := d.AddPI("c")
	shared := d.AddNand2(a, b) // multi-fanout
	i1 := d.AddInv(shared)     // consumer 1 (near)
	far := d.AddNand2(shared, c)
	d.AddOutput("o1", i1)
	d.AddOutput("o2", far)
	pos := make([]geom.Point, d.NumGates())
	pos[shared] = geom.Pt(0, 0)
	pos[i1] = geom.Pt(1, 0) // nearest consumer: father
	pos[far] = geom.Pt(50, 0)
	res, err := Map(context.Background(), d, Input{Pos: pos}, Options{K: 0, Method: partition.PDP})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Netlist.Check(); err != nil {
		t.Fatal(err)
	}
	// Behaviour check over all 8 assignments.
	for m := 0; m < 8; m++ {
		in := []bool{m&1 == 1, m&2 == 2, m&4 == 4}
		want, _ := d.EvalOutputs(in)
		got, err := res.Netlist.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		for o := range want {
			if want[o] != got[o] {
				t.Fatalf("output %d wrong at minterm %d", o, m)
			}
		}
	}
	// DAGON on the same input never duplicates.
	resD, err := Map(context.Background(), d, Input{Pos: pos}, Options{K: 0, Method: partition.Dagon})
	if err != nil {
		t.Fatal(err)
	}
	if resD.DuplicatedCells != 0 {
		t.Errorf("DAGON duplicated %d cells", resD.DuplicatedCells)
	}
}

func TestSubjectPlacement(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(59))
	p := samplePLA(rng, 6, 3, 12)
	n, err := bnet.FromPLA(p)
	if err != nil {
		t.Fatal(err)
	}
	d, err := subject.Decompose(n)
	if err != nil {
		t.Fatal(err)
	}
	layout, _ := place.LayoutWithRows(8, 80, library.RowHeight)
	pos, poPads, piPads, poList, err := SubjectPlacement(context.Background(), d, layout, place.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pos) != d.NumGates() {
		t.Fatalf("pos length %d", len(pos))
	}
	if len(piPads) != len(d.PIs()) || len(poList) != len(d.Outputs()) {
		t.Fatal("pad counts wrong")
	}
	// All base gates inside the die.
	for _, g := range d.LiveGates() {
		gt := d.Gate(g).Type
		if gt == subject.Nand2 || gt == subject.Inv {
			if !layout.Die.Expand(1e-6).Contains(pos[g]) {
				t.Errorf("gate %d outside die at %v", g, pos[g])
			}
		}
	}
	// PO pads recorded for PO-driving gates.
	for _, o := range d.Outputs() {
		if len(poPads[o.Gate]) == 0 {
			t.Errorf("no pad for PO %s", o.Name)
		}
	}
	// PIs sit on their pads.
	for i, pi := range d.PIs() {
		if pos[pi] != piPads[i] {
			t.Errorf("PI %d not at its pad", i)
		}
	}
}

func TestMapSummaryMentionsCells(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(61))
	d, in, _ := preparedDAG(t, rng, 6, 2, 10)
	res, err := Map(context.Background(), d, in, Options{K: 0})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Netlist.Summary()
	if !strings.Contains(s, "cells") {
		t.Errorf("Summary = %q", s)
	}
	if res.NumCells != res.Netlist.NumCells() {
		t.Error("NumCells mismatch")
	}
	if len(res.InstGate) != res.NumCells {
		t.Error("InstGate length mismatch")
	}
}

package logic

import (
	"bytes"
	"testing"
)

// FuzzReadPLA drives the espresso-format parser with arbitrary bytes:
// any input must either parse or return an error — never panic or
// allocate absurdly — and every accepted PLA must survive a
// write/re-read round trip.
func FuzzReadPLA(f *testing.F) {
	f.Add([]byte(".i 2\n.o 1\n11 1\n0- 1\n.e\n"))
	f.Add([]byte(".i 3\n.o 2\n.ilb a b c\n.ob x y\n1-0 10\n011 01\n.e\n"))
	f.Add([]byte(".i 0\n.o 1\n 1\n.e\n"))
	f.Add([]byte("# comment only\n"))
	// Regression seeds: historical hardening targets.
	f.Add([]byte(".i -1\n.o 1\n.e\n"))               // negative plane width
	f.Add([]byte(".i 2000000000\n.o 2000000000\n1")) // absurd plane width
	f.Add([]byte(".i 2\n.o 1\n11\n.e\n"))            // truncated product term
	f.Add([]byte(".i 2\n.o 1\n11 1"))                // missing .e
	f.Add([]byte(".i 2\n.i 3\n.o 1\n111 1\n.e\n"))   // redefined .i
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadPLA(bytes.NewReader(data))
		if err != nil {
			return
		}
		if p.NumInputs < 0 || p.NumOutputs < 0 ||
			p.NumInputs > maxPlaneWidth || p.NumOutputs > maxPlaneWidth {
			t.Fatalf("accepted PLA with plane widths %d/%d", p.NumInputs, p.NumOutputs)
		}
		if len(p.Terms) != len(p.Outputs) {
			t.Fatalf("terms/output rows out of sync: %d vs %d", len(p.Terms), len(p.Outputs))
		}
		var buf bytes.Buffer
		if err := p.Write(&buf); err != nil {
			t.Fatalf("write of accepted PLA failed: %v", err)
		}
		if _, err := ReadPLA(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("round trip of accepted PLA failed: %v\n%s", err, buf.Bytes())
		}
	})
}

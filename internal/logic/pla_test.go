package logic

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

const samplePLA = `# tiny two-output example
.i 3
.o 2
.ilb a b c
.ob f g
.p 3
1-0 10
-11 11
0-- 01
.e
`

func TestReadPLA(t *testing.T) {
	t.Parallel()
	p, err := ReadPLA(strings.NewReader(samplePLA))
	if err != nil {
		t.Fatal(err)
	}
	if p.NumInputs != 3 || p.NumOutputs != 2 || len(p.Terms) != 3 {
		t.Fatalf("parsed %d/%d/%d", p.NumInputs, p.NumOutputs, len(p.Terms))
	}
	if p.InputNames[0] != "a" || p.OutputNames[1] != "g" {
		t.Error("names not parsed")
	}
	if !p.Outputs[1][0] || !p.Outputs[1][1] {
		t.Error("output membership of term 1 wrong")
	}
	if p.Outputs[0][1] {
		t.Error("term 0 must not drive output g")
	}
}

func TestReadPLAJoinedPlanes(t *testing.T) {
	t.Parallel()
	// Some writers emit input and output planes without a separator.
	src := ".i 2\n.o 1\n111\n.e\n"
	p, err := ReadPLA(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Terms) != 1 || p.Terms[0].String() != "11" || !p.Outputs[0][0] {
		t.Error("joined-plane term parsed wrong")
	}
}

func TestReadPLAErrors(t *testing.T) {
	t.Parallel()
	bad := []string{
		"1-0 1\n",              // term before .i/.o
		".i 2\n.o 1\n1-0 1\n",  // wrong input width
		".i 3\n.o 1\n1-0 11\n", // wrong output width
		".i x\n",               // bad .i
		".i 2\n.o 1\n.q\n",     // unknown directive
		".i 2\n.o 1\n1x 1\n",   // bad cube char
		".i 2\n.o 1\n10 x\n",   // bad output char
	}
	for _, src := range bad {
		if _, err := ReadPLA(strings.NewReader(src)); err == nil {
			t.Errorf("ReadPLA accepted %q", src)
		}
	}
}

func TestPLAWriteReadRoundTrip(t *testing.T) {
	t.Parallel()
	p, err := ReadPLA(strings.NewReader(samplePLA))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadPLA(&buf)
	if err != nil {
		t.Fatalf("re-read failed: %v\n%s", err, buf.String())
	}
	if q.NumInputs != p.NumInputs || q.NumOutputs != p.NumOutputs || len(q.Terms) != len(p.Terms) {
		t.Fatal("round trip changed shape")
	}
	// Behavioural equality over all assignments.
	assign := make([]bool, p.NumInputs)
	for m := 0; m < 1<<p.NumInputs; m++ {
		for i := range assign {
			assign[i] = m>>i&1 == 1
		}
		a, b := p.Eval(assign), q.Eval(assign)
		for o := range a {
			if a[o] != b[o] {
				t.Fatalf("round trip changed output %d at minterm %d", o, m)
			}
		}
	}
}

func TestOutputCoverAndSetOutputCover(t *testing.T) {
	t.Parallel()
	p, _ := ReadPLA(strings.NewReader(samplePLA))
	cov := p.OutputCover(0)
	if cov.Len() != 2 {
		t.Fatalf("output 0 cover has %d cubes, want 2", cov.Len())
	}
	// Replacing with the same cover must preserve behaviour and share
	// terms with output 1.
	p.SetOutputCover(0, cov)
	q, _ := ReadPLA(strings.NewReader(samplePLA))
	assign := make([]bool, p.NumInputs)
	for m := 0; m < 1<<p.NumInputs; m++ {
		for i := range assign {
			assign[i] = m>>i&1 == 1
		}
		a, b := p.Eval(assign), q.Eval(assign)
		if a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("SetOutputCover changed behaviour at %d", m)
		}
	}
	// The -11 term should still be shared.
	shared := 0
	for t2, cb := range p.Terms {
		if cb.String() == "-11" && p.Outputs[t2][0] && p.Outputs[t2][1] {
			shared++
		}
	}
	if shared != 1 {
		t.Errorf("term -11 shared %d times, want 1", shared)
	}
}

func TestPLAMinimizePreservesBehaviour(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		ni := rng.Intn(5) + 2
		no := rng.Intn(3) + 1
		p := NewPLA(ni, no)
		for k := rng.Intn(12) + 3; k > 0; k-- {
			row := make([]bool, no)
			any := false
			for o := range row {
				row[o] = rng.Intn(2) == 0
				any = any || row[o]
			}
			if !any {
				row[rng.Intn(no)] = true
			}
			if err := p.AddTerm(randomCube(rng, ni), row); err != nil {
				t.Fatal(err)
			}
		}
		truth := func(pp *PLA) [][]bool {
			out := make([][]bool, 1<<ni)
			assign := make([]bool, ni)
			for m := range out {
				for i := range assign {
					assign[i] = m>>i&1 == 1
				}
				out[m] = pp.Eval(assign)
			}
			return out
		}
		before := truth(p)
		termsBefore := len(p.Terms)
		p.Minimize()
		after := truth(p)
		for m := range before {
			for o := range before[m] {
				if before[m][o] != after[m][o] {
					t.Fatalf("Minimize changed output %d at minterm %d (trial %d)", o, m, trial)
				}
			}
		}
		if len(p.Terms) > termsBefore+no {
			t.Fatalf("Minimize grew PLA unreasonably: %d -> %d", termsBefore, len(p.Terms))
		}
	}
}

func TestAddTermValidation(t *testing.T) {
	t.Parallel()
	p := NewPLA(3, 2)
	if err := p.AddTerm(MustParseCube("1-"), []bool{true, false}); err == nil {
		t.Error("wrong input width accepted")
	}
	if err := p.AddTerm(MustParseCube("1-0"), []bool{true}); err == nil {
		t.Error("wrong output width accepted")
	}
	if err := p.AddTerm(MustParseCube("1-0"), []bool{true, false}); err != nil {
		t.Errorf("valid term rejected: %v", err)
	}
}

func TestPLAStatsAndSort(t *testing.T) {
	t.Parallel()
	p, _ := ReadPLA(strings.NewReader(samplePLA))
	s := p.Stats()
	if s.Inputs != 3 || s.Outputs != 2 || s.Terms != 3 {
		t.Errorf("Stats = %+v", s)
	}
	if s.Literals != 2+2+1 {
		t.Errorf("Literals = %d, want 5", s.Literals)
	}
	p.SortTerms()
	for i := 1; i < len(p.Terms); i++ {
		if p.Terms[i-1].String() > p.Terms[i].String() {
			t.Fatal("SortTerms did not sort")
		}
	}
}

func TestDefaultNames(t *testing.T) {
	t.Parallel()
	p := NewPLA(2, 1)
	_ = p.AddTerm(MustParseCube("11"), []bool{true})
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "in0 in1") || !strings.Contains(out, "out0") {
		t.Errorf("default names missing:\n%s", out)
	}
}

package logic

import (
	"math/rand"
	"strings"
	"testing"
)

// evalAll returns the truth vector of a cover over all 2^n assignments.
func evalAll(c *Cover) []bool {
	n := c.Inputs()
	out := make([]bool, 1<<n)
	assign := make([]bool, n)
	for m := range out {
		for i := 0; i < n; i++ {
			assign[i] = m>>i&1 == 1
		}
		out[m] = c.Eval(assign)
	}
	return out
}

func vecEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestParseCover(t *testing.T) {
	t.Parallel()
	c := MustParseCover("1-0 01-")
	if c.Inputs() != 3 || c.Len() != 2 {
		t.Fatalf("Inputs=%d Len=%d", c.Inputs(), c.Len())
	}
	if _, err := ParseCover("1-0 01"); err == nil {
		t.Error("mixed widths must fail")
	}
	empty, err := ParseCover("  ")
	if err != nil || empty.Len() != 0 {
		t.Error("blank cover must parse to empty")
	}
}

func TestCoverEval(t *testing.T) {
	t.Parallel()
	// f = a·b' + c  over (a,b,c)
	c := MustParseCover("10- --1")
	cases := []struct {
		in   []bool
		want bool
	}{
		{[]bool{true, false, false}, true},
		{[]bool{true, true, false}, false},
		{[]bool{false, false, true}, true},
		{[]bool{false, false, false}, false},
	}
	for _, cs := range cases {
		if got := c.Eval(cs.in); got != cs.want {
			t.Errorf("Eval(%v) = %v, want %v", cs.in, got, cs.want)
		}
	}
}

func TestCofactorLit(t *testing.T) {
	t.Parallel()
	c := MustParseCover("1-0 01- 0-1")
	pc := c.CofactorLit(0, true)
	// Cubes with literal a': dropped. Cubes with a or don't-care kept,
	// a-column cleared.
	if pc.Len() != 1 || pc.Cubes[0].String() != "--0" {
		t.Errorf("positive cofactor = %q", pc.String())
	}
	nc := c.CofactorLit(0, false)
	if nc.Len() != 2 {
		t.Errorf("negative cofactor has %d cubes, want 2", nc.Len())
	}
}

func TestTautology(t *testing.T) {
	t.Parallel()
	cases := []struct {
		cover string
		n     int
		want  bool
	}{
		{"---", 3, true},         // universal cube
		{"1-- 0--", 3, true},     // a + a' = 1
		{"1-- 00- 01-", 3, true}, // a + a'b' + a'b
		{"1-- 0-1", 3, false},    // misses 000
		{"11 10 01", 2, false},   // misses 00
		{"11 10 01 00", 2, true}, // all minterms
		{"1- -1 00", 2, true},    // a + b + a'b'
		{"", 1, false},           // empty cover
	}
	for _, cs := range cases {
		var c *Cover
		if cs.cover == "" {
			c = NewCover(cs.n)
		} else {
			c = MustParseCover(cs.cover)
		}
		if got := c.Tautology(); got != cs.want {
			t.Errorf("Tautology(%q) = %v, want %v", cs.cover, got, cs.want)
		}
	}
}

func TestContainsCube(t *testing.T) {
	t.Parallel()
	c := MustParseCover("1-- 01-")
	if !c.ContainsCube(MustParseCube("11-")) {
		t.Error("cover must contain 11-")
	}
	if !c.ContainsCube(MustParseCube("010")) {
		t.Error("cover must contain 010")
	}
	if c.ContainsCube(MustParseCube("00-")) {
		t.Error("cover must not contain 00-")
	}
	// Containment that needs the union of both cubes.
	u := MustParseCover("1- 0-")
	if !u.ContainsCube(MustParseCube("--")) {
		t.Error("a + a' must contain the universal cube")
	}
}

func TestSingleCubeContainment(t *testing.T) {
	t.Parallel()
	c := MustParseCover("1-- 110 10- ---")
	c.SingleCubeContainment()
	if c.Len() != 1 || !c.Cubes[0].IsUniversal() {
		t.Errorf("SCC left %q", c.String())
	}
}

func TestIrredundant(t *testing.T) {
	t.Parallel()
	// ab + a'c + bc: bc is the classic redundant consensus term.
	c := MustParseCover("11- 0-1 -11")
	before := evalAll(c)
	c.Irredundant()
	if !vecEqual(before, evalAll(c)) {
		t.Fatal("Irredundant changed the function")
	}
	if c.Len() != 2 {
		t.Errorf("Irredundant left %d cubes, want 2: %q", c.Len(), c.String())
	}
}

func TestComplement(t *testing.T) {
	t.Parallel()
	cases := []string{
		"1-0 01-",
		"11- -11 0-1",
		"1--- -1-- --1- ---1",
		"101",
	}
	for _, s := range cases {
		c := MustParseCover(s)
		comp := c.Complement()
		cv, nv := evalAll(c), evalAll(comp)
		for i := range cv {
			if cv[i] == nv[i] {
				t.Errorf("Complement(%q) wrong at minterm %d", s, i)
				break
			}
		}
	}
	// Complement of empty is tautology and vice versa.
	empty := NewCover(2)
	if !empty.Complement().Tautology() {
		t.Error("complement of empty must be tautology")
	}
	taut := MustParseCover("--")
	if !taut.Complement().IsEmpty() {
		t.Error("complement of tautology must be empty")
	}
}

func TestEquivalent(t *testing.T) {
	t.Parallel()
	a := MustParseCover("11- -11 0-1")
	b := MustParseCover("11- 0-1") // same function, consensus removed
	if !a.Equivalent(b) {
		t.Error("consensus-reduced cover must stay equivalent")
	}
	c := MustParseCover("11-")
	if a.Equivalent(c) {
		t.Error("different functions must not be equivalent")
	}
}

func TestMinimizePreservesFunction(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(6) + 2
		c := NewCover(n)
		for k := rng.Intn(10) + 1; k > 0; k-- {
			c.Add(randomCube(rng, n))
		}
		before := evalAll(c)
		sizeBefore := c.Len()
		c.Minimize(nil)
		if !vecEqual(before, evalAll(c)) {
			t.Fatalf("Minimize changed function of trial %d", trial)
		}
		if c.Len() > sizeBefore {
			t.Fatalf("Minimize grew cover from %d to %d cubes", sizeBefore, c.Len())
		}
	}
}

func TestMinimizeWithDontCares(t *testing.T) {
	t.Parallel()
	// ON = 11, DC = 10: minimizer may expand to 1-.
	on := MustParseCover("11")
	dc := MustParseCover("10")
	on.Minimize(dc)
	if on.Len() != 1 || on.Cubes[0].String() != "1-" {
		t.Errorf("Minimize with DC left %q, want 1-", on.String())
	}
}

func TestMergeDistanceOne(t *testing.T) {
	t.Parallel()
	c := MustParseCover("110 111")
	c.MergeDistanceOne()
	if c.Len() != 1 || c.Cubes[0].String() != "11-" {
		t.Errorf("merge left %q, want 11-", c.String())
	}
	// Not mergeable: distance one but differing support.
	c = MustParseCover("1-0 011")
	before := evalAll(c)
	c.MergeDistanceOne()
	if !vecEqual(before, evalAll(c)) {
		t.Error("MergeDistanceOne changed the function")
	}
}

func TestMinimizeIsIrredundantAndPrime(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(5) + 2
		c := NewCover(n)
		for k := rng.Intn(8) + 2; k > 0; k-- {
			c.Add(randomCube(rng, n))
		}
		c.Minimize(nil)
		// Irredundant: removing any cube changes the function.
		for i := range c.Cubes {
			rest := NewCover(n)
			rest.Cubes = append(rest.Cubes, c.Cubes[:i]...)
			rest.Cubes = append(rest.Cubes, c.Cubes[i+1:]...)
			if rest.ContainsCube(c.Cubes[i]) {
				t.Fatalf("cube %d redundant after Minimize: %q", i, c.String())
			}
		}
		// Prime: no literal can be raised.
		for i := range c.Cubes {
			for v := 0; v < n; v++ {
				if c.Cubes[i].Lit(v) == 0 {
					continue
				}
				trialCube := c.Cubes[i].Clone()
				trialCube.ClearLit(v)
				if c.ContainsCube(trialCube) {
					t.Fatalf("cube %d not prime after Minimize: %q", i, c.String())
				}
			}
		}
	}
}

func TestCoverString(t *testing.T) {
	t.Parallel()
	c := MustParseCover("1-0 01-")
	if got := c.String(); got != "1-0\n01-" {
		t.Errorf("String = %q", got)
	}
	if !strings.Contains(c.String(), "\n") {
		t.Error("multi-cube String must be multi-line")
	}
}

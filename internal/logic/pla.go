package logic

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PLA is a multi-output programmable-logic-array description in the
// Berkeley espresso format: a shared input plane and, per product
// term, an output plane telling which outputs include that term.
// It is the interchange form of the IWLS93-class benchmarks this
// repository regenerates synthetically.
type PLA struct {
	NumInputs  int
	NumOutputs int
	// InputNames and OutputNames are optional (.ilb/.ob); when absent
	// they default to in<i>/out<i> on write.
	InputNames  []string
	OutputNames []string
	// Terms is the input plane, one cube per product term.
	Terms []Cube
	// Outputs[t][o] is true when product term t drives output o.
	Outputs [][]bool
}

// NewPLA returns an empty PLA with ni inputs and no outputs yet.
func NewPLA(ni, no int) *PLA {
	return &PLA{NumInputs: ni, NumOutputs: no}
}

// AddTerm appends a product term with its output membership row.
func (p *PLA) AddTerm(in Cube, outs []bool) error {
	if in.Inputs() != p.NumInputs {
		return fmt.Errorf("logic: term width %d, PLA has %d inputs", in.Inputs(), p.NumInputs)
	}
	if len(outs) != p.NumOutputs {
		return fmt.Errorf("logic: output row width %d, PLA has %d outputs", len(outs), p.NumOutputs)
	}
	p.Terms = append(p.Terms, in)
	row := make([]bool, len(outs))
	copy(row, outs)
	p.Outputs = append(p.Outputs, row)
	return nil
}

// OutputCover extracts the single-output ON-set cover of output o.
func (p *PLA) OutputCover(o int) *Cover {
	cov := NewCover(p.NumInputs)
	for t, cb := range p.Terms {
		if p.Outputs[t][o] {
			cov.Cubes = append(cov.Cubes, cb.Clone())
		}
	}
	return cov
}

// SetOutputCover replaces the product terms of output o with the cubes
// of cov, resharing identical input cubes already present in the PLA.
func (p *PLA) SetOutputCover(o int, cov *Cover) {
	// Drop o from all existing rows; remove terms that become unused.
	for t := range p.Outputs {
		p.Outputs[t][o] = false
	}
	p.compact()
	index := make(map[string]int, len(p.Terms))
	for t, cb := range p.Terms {
		index[cb.String()] = t
	}
	for _, cb := range cov.Cubes {
		key := cb.String()
		if t, ok := index[key]; ok {
			p.Outputs[t][o] = true
			continue
		}
		row := make([]bool, p.NumOutputs)
		row[o] = true
		p.Terms = append(p.Terms, cb.Clone())
		p.Outputs = append(p.Outputs, row)
		index[key] = len(p.Terms) - 1
	}
}

// compact removes product terms that drive no output.
func (p *PLA) compact() {
	terms := p.Terms[:0]
	rows := p.Outputs[:0]
	for t, row := range p.Outputs {
		used := false
		for _, b := range row {
			if b {
				used = true
				break
			}
		}
		if used {
			terms = append(terms, p.Terms[t])
			rows = append(rows, row)
		}
	}
	p.Terms = terms
	p.Outputs = rows
}

// Minimize runs the two-level minimizer on every output cover and
// rebuilds the shared input plane.
func (p *PLA) Minimize() {
	for o := 0; o < p.NumOutputs; o++ {
		cov := p.OutputCover(o)
		cov.Minimize(nil)
		p.SetOutputCover(o, cov)
	}
}

// Eval evaluates every output under a full input assignment.
func (p *PLA) Eval(assign []bool) []bool {
	out := make([]bool, p.NumOutputs)
	for t, cb := range p.Terms {
		if !cb.EvalAssignment(assign) {
			continue
		}
		for o, b := range p.Outputs[t] {
			if b {
				out[o] = true
			}
		}
	}
	return out
}

// inputName returns the name of input i, defaulting to in<i>.
func (p *PLA) inputName(i int) string {
	if i < len(p.InputNames) && p.InputNames[i] != "" {
		return p.InputNames[i]
	}
	return "in" + strconv.Itoa(i)
}

// outputName returns the name of output o, defaulting to out<o>.
func (p *PLA) outputName(o int) string {
	if o < len(p.OutputNames) && p.OutputNames[o] != "" {
		return p.OutputNames[o]
	}
	return "out" + strconv.Itoa(o)
}

// Write emits the PLA in espresso format.
func (p *PLA) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".i %d\n.o %d\n", p.NumInputs, p.NumOutputs)
	names := make([]string, p.NumInputs)
	for i := range names {
		names[i] = p.inputName(i)
	}
	fmt.Fprintf(bw, ".ilb %s\n", strings.Join(names, " "))
	names = make([]string, p.NumOutputs)
	for o := range names {
		names[o] = p.outputName(o)
	}
	fmt.Fprintf(bw, ".ob %s\n", strings.Join(names, " "))
	fmt.Fprintf(bw, ".p %d\n", len(p.Terms))
	for t, cb := range p.Terms {
		var out strings.Builder
		for o := 0; o < p.NumOutputs; o++ {
			if p.Outputs[t][o] {
				out.WriteByte('1')
			} else {
				out.WriteByte('0')
			}
		}
		fmt.Fprintf(bw, "%s %s\n", cb.String(), out.String())
	}
	fmt.Fprintln(bw, ".e")
	return bw.Flush()
}

// maxPlaneWidth bounds the .i/.o values ReadPLA accepts. Real
// benchmark PLAs are orders of magnitude below it; the cap keeps a
// malicious or corrupt header from driving per-term allocations (one
// output row per product line) to absurd sizes.
const maxPlaneWidth = 1 << 20

// ReadPLA parses an espresso-format PLA. It understands the directives
// .i .o .ilb .ob .p .e and ignores comments (#) and the type
// directives espresso emits. Output-plane characters accepted: 1
// (member), 0/~/- (not a member / don't care treated as 0).
// Plane widths are capped at maxPlaneWidth.
func ReadPLA(r io.Reader) (*PLA, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	p := &PLA{NumInputs: -1, NumOutputs: -1}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, ".") {
			fields := strings.Fields(text)
			switch fields[0] {
			case ".i":
				if len(fields) != 2 {
					return nil, fmt.Errorf("logic: line %d: malformed .i", line)
				}
				n, err := strconv.Atoi(fields[1])
				if err != nil || n < 0 || n > maxPlaneWidth {
					return nil, fmt.Errorf("logic: line %d: bad .i value %q", line, fields[1])
				}
				p.NumInputs = n
			case ".o":
				if len(fields) != 2 {
					return nil, fmt.Errorf("logic: line %d: malformed .o", line)
				}
				n, err := strconv.Atoi(fields[1])
				if err != nil || n < 0 || n > maxPlaneWidth {
					return nil, fmt.Errorf("logic: line %d: bad .o value %q", line, fields[1])
				}
				p.NumOutputs = n
			case ".ilb":
				p.InputNames = append([]string(nil), fields[1:]...)
			case ".ob":
				p.OutputNames = append([]string(nil), fields[1:]...)
			case ".p", ".type", ".phase", ".pair", ".symbolic":
				// .p is advisory; others are espresso extensions we skip.
			case ".e", ".end":
				return finishPLA(p)
			default:
				return nil, fmt.Errorf("logic: line %d: unsupported directive %s", line, fields[0])
			}
			continue
		}
		if p.NumInputs < 0 || p.NumOutputs < 0 {
			return nil, fmt.Errorf("logic: line %d: product term before .i/.o", line)
		}
		fields := strings.Fields(text)
		var inPart, outPart string
		switch len(fields) {
		case 2:
			inPart, outPart = fields[0], fields[1]
		case 1:
			if len(fields[0]) != p.NumInputs+p.NumOutputs {
				return nil, fmt.Errorf("logic: line %d: term %q has wrong width", line, fields[0])
			}
			inPart, outPart = fields[0][:p.NumInputs], fields[0][p.NumInputs:]
		default:
			return nil, fmt.Errorf("logic: line %d: malformed product term", line)
		}
		if len(inPart) != p.NumInputs || len(outPart) != p.NumOutputs {
			return nil, fmt.Errorf("logic: line %d: term planes have width %d/%d, want %d/%d",
				line, len(inPart), len(outPart), p.NumInputs, p.NumOutputs)
		}
		cb, err := ParseCube(inPart)
		if err != nil {
			return nil, fmt.Errorf("logic: line %d: %v", line, err)
		}
		row := make([]bool, p.NumOutputs)
		for o, ch := range outPart {
			switch ch {
			case '1', '4':
				row[o] = true
			case '0', '~', '-', '2', '3':
				// not a member of this output's ON-set
			default:
				return nil, fmt.Errorf("logic: line %d: invalid output character %q", line, ch)
			}
		}
		p.Terms = append(p.Terms, cb)
		p.Outputs = append(p.Outputs, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return finishPLA(p)
}

func finishPLA(p *PLA) (*PLA, error) {
	if p.NumInputs < 0 || p.NumOutputs < 0 {
		return nil, fmt.Errorf("logic: PLA missing .i/.o directives")
	}
	return p, nil
}

// Stats summarizes a PLA for reporting.
type Stats struct {
	Inputs, Outputs, Terms, Literals int
}

// Stats returns summary statistics of the PLA.
func (p *PLA) Stats() Stats {
	s := Stats{Inputs: p.NumInputs, Outputs: p.NumOutputs, Terms: len(p.Terms)}
	for _, cb := range p.Terms {
		s.Literals += cb.NumLiterals()
	}
	return s
}

// SortTerms orders product terms lexicographically for deterministic
// output, keeping output rows aligned.
func (p *PLA) SortTerms() {
	idx := make([]int, len(p.Terms))
	for i := range idx {
		idx[i] = i
	}
	keys := make([]string, len(p.Terms))
	for i, cb := range p.Terms {
		keys[i] = cb.String()
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	terms := make([]Cube, len(p.Terms))
	rows := make([][]bool, len(p.Outputs))
	for i, j := range idx {
		terms[i] = p.Terms[j]
		rows[i] = p.Outputs[j]
	}
	p.Terms = terms
	p.Outputs = rows
}

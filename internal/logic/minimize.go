package logic

// Minimize performs an espresso-style heuristic two-level minimization
// of the cover in place: EXPAND each cube to a prime against the
// function, remove single-cube containments, then make the cover
// IRREDUNDANT. The function (ON-set) is preserved exactly; the result
// is a prime and irredundant cover, though not guaranteed minimum.
//
// dc is an optional don't-care set that expansion may absorb; pass nil
// when the function is completely specified.
func (c *Cover) Minimize(dc *Cover) {
	if len(c.Cubes) == 0 {
		return
	}
	full := c
	if dc != nil && len(dc.Cubes) > 0 {
		full = c.Clone()
		for _, cb := range dc.Cubes {
			full.Add(cb.Clone())
		}
	}
	c.expand(full)
	c.SingleCubeContainment()
	c.Irredundant()
}

// expand raises literals of each cube to don't-care while the enlarged
// cube stays inside full (ON ∪ DC). Literal raising order is densest
// literal first, a cheap stand-in for espresso's column covering.
func (c *Cover) expand(full *Cover) {
	// Count literal occurrences so we try to raise the rarest literals
	// first (raising them frees the most merging opportunities).
	occur := make([]int, c.n)
	for _, cb := range c.Cubes {
		for i := 0; i < c.n; i++ {
			if cb.Lit(i) != 0 {
				occur[i]++
			}
		}
	}
	order := make([]int, c.n)
	for i := range order {
		order[i] = i
	}
	// Simple insertion sort by ascending occurrence (n is small).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && occur[order[j]] < occur[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for idx := range c.Cubes {
		cb := &c.Cubes[idx]
		for _, i := range order {
			if cb.Lit(i) == 0 {
				continue
			}
			trial := cb.Clone()
			trial.ClearLit(i)
			if full.ContainsCube(trial) {
				*cb = trial
			}
		}
	}
}

// MergeDistanceOne repeatedly merges cube pairs at distance one that
// differ in exactly the conflicting input (the Quine consensus merge
// a·x + a·x' = a). It is a cheap pre-pass that shrinks covers built
// from minterm lists before the full Minimize.
func (c *Cover) MergeDistanceOne() {
	changed := true
	for changed {
		changed = false
	outer:
		for i := 0; i < len(c.Cubes); i++ {
			for j := i + 1; j < len(c.Cubes); j++ {
				a, b := c.Cubes[i], c.Cubes[j]
				if a.Distance(b) != 1 {
					continue
				}
				// Mergeable only when the cubes agree everywhere else.
				merged, ok := mergeOpposite(a, b)
				if !ok {
					continue
				}
				c.Cubes[i] = merged
				c.Cubes = append(c.Cubes[:j], c.Cubes[j+1:]...)
				changed = true
				continue outer
			}
		}
	}
}

// mergeOpposite merges two cubes that differ in phase on exactly one
// input and are identical elsewhere.
func mergeOpposite(a, b Cube) (Cube, bool) {
	conflict := -1
	for i := 0; i < a.n; i++ {
		la, lb := a.Lit(i), b.Lit(i)
		switch {
		case la == lb:
			continue
		case la != 0 && lb != 0 && la != lb:
			if conflict >= 0 {
				return Cube{}, false
			}
			conflict = i
		default:
			// One has a literal the other lacks: not an opposite merge.
			return Cube{}, false
		}
	}
	if conflict < 0 {
		return Cube{}, false
	}
	out := a.Clone()
	out.ClearLit(conflict)
	return out, true
}

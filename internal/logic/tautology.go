package logic

// Tautology reports whether the cover is identically true, using the
// classic unate-recursive paradigm: unate reductions plus Shannon
// expansion on the most-binate input.
func (c *Cover) Tautology() bool {
	return tautRec(c)
}

func tautRec(c *Cover) bool {
	// A universal cube anywhere makes the cover a tautology.
	for _, cb := range c.Cubes {
		if cb.IsUniversal() {
			return true
		}
	}
	if len(c.Cubes) == 0 {
		return false
	}
	// Unate test: if some input appears in only one phase across all
	// cubes, the cover is a tautology iff the sub-cover of cubes not
	// depending on that input is. (Unate reduction.)
	split := -1
	bestBalance := -1
	for i := 0; i < c.n; i++ {
		posCnt, negCnt := 0, 0
		for _, cb := range c.Cubes {
			switch cb.Lit(i) {
			case 1:
				posCnt++
			case -1:
				negCnt++
			}
		}
		switch {
		case posCnt == 0 && negCnt == 0:
			continue
		case posCnt == 0 || negCnt == 0:
			// Unate in input i: drop cubes that depend on i.
			sub := NewCover(c.n)
			for _, cb := range c.Cubes {
				if cb.Lit(i) == 0 {
					sub.Cubes = append(sub.Cubes, cb)
				}
			}
			return tautRec(sub)
		default:
			// Binate: remember the most balanced input as the Shannon
			// split variable.
			bal := posCnt
			if negCnt < bal {
				bal = negCnt
			}
			if bal > bestBalance {
				bestBalance = bal
				split = i
			}
		}
	}
	if split < 0 {
		// No input appears at all, and no universal cube: not a
		// tautology (covers over zero effective inputs).
		return false
	}
	return tautRec(c.CofactorLit(split, true)) && tautRec(c.CofactorLit(split, false))
}

// Complement returns a cover of the complement of c, computed by
// Shannon recursion. The result is reduced by single-cube containment
// but is not guaranteed minimal.
func (c *Cover) Complement() *Cover {
	out := complRec(c)
	out.SingleCubeContainment()
	return out
}

func complRec(c *Cover) *Cover {
	// Terminal cases.
	if len(c.Cubes) == 0 {
		u := NewCover(c.n)
		u.Cubes = append(u.Cubes, NewCube(c.n))
		return u
	}
	for _, cb := range c.Cubes {
		if cb.IsUniversal() {
			return NewCover(c.n)
		}
	}
	if len(c.Cubes) == 1 {
		// De Morgan on a single cube: one cube per literal.
		out := NewCover(c.n)
		cb := c.Cubes[0]
		for i := 0; i < c.n; i++ {
			switch cb.Lit(i) {
			case 1:
				d := NewCube(c.n)
				d.SetNeg(i)
				out.Cubes = append(out.Cubes, d)
			case -1:
				d := NewCube(c.n)
				d.SetPos(i)
				out.Cubes = append(out.Cubes, d)
			}
		}
		return out
	}
	// Shannon expansion on the most binate input.
	split := mostBinate(c)
	if split < 0 {
		// All cubes unate and none universal; still need a split —
		// choose the first input with any literal.
		for i := 0; i < c.n && split < 0; i++ {
			for _, cb := range c.Cubes {
				if cb.Lit(i) != 0 {
					split = i
					break
				}
			}
		}
		if split < 0 {
			// No literals at all but no universal cube: impossible for a
			// non-empty cover; treat as tautology complemented.
			return NewCover(c.n)
		}
	}
	pc := complRec(c.CofactorLit(split, true))
	nc := complRec(c.CofactorLit(split, false))
	out := NewCover(c.n)
	for _, cb := range pc.Cubes {
		d := cb.Clone()
		d.SetPos(split)
		out.Cubes = append(out.Cubes, d)
	}
	for _, cb := range nc.Cubes {
		d := cb.Clone()
		d.SetNeg(split)
		out.Cubes = append(out.Cubes, d)
	}
	return out
}

// mostBinate returns the input with the most balanced positive and
// negative literal counts, or -1 when every input is unate.
func mostBinate(c *Cover) int {
	split, best := -1, -1
	for i := 0; i < c.n; i++ {
		posCnt, negCnt := 0, 0
		for _, cb := range c.Cubes {
			switch cb.Lit(i) {
			case 1:
				posCnt++
			case -1:
				negCnt++
			}
		}
		if posCnt > 0 && negCnt > 0 {
			bal := posCnt
			if negCnt < bal {
				bal = negCnt
			}
			if bal > best {
				best = bal
				split = i
			}
		}
	}
	return split
}

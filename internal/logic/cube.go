// Package logic implements the two-level (sum-of-products) logic
// substrate: cubes, covers, tautology and containment checking, an
// espresso-style minimizer, and Berkeley PLA file I/O.
//
// The package exists because the paper's benchmarks (SPLA, PDC,
// TOO_LARGE from IWLS93) are PLA-born circuits and its "SIS" baseline
// performs two-level minimization before multi-level restructuring.
//
// A Cube over n inputs assigns each input one of three values: 0
// (complemented literal), 1 (positive literal), or - (don't care /
// absent). Cubes are stored in positional notation as two bitsets:
// bit i of pos is set when input i appears as a positive literal and
// bit i of neg when it appears complemented. A cube with both bits set
// for some input is contradictory (represents the empty set) and is
// never produced by this package's operations.
package logic

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Cube is a product term over a fixed number of inputs. Create cubes
// with NewCube or a Cover's parser; the zero Cube is the universal
// cube over zero inputs.
type Cube struct {
	n   int // number of inputs
	pos []uint64
	neg []uint64
}

// NewCube returns the universal cube (all don't-cares) over n inputs.
func NewCube(n int) Cube {
	if n < 0 {
		panic("logic: negative input count")
	}
	w := (n + wordBits - 1) / wordBits
	return Cube{n: n, pos: make([]uint64, w), neg: make([]uint64, w)}
}

// ParseCube parses a string of '0', '1', and '-' characters, one per
// input, in input order.
func ParseCube(s string) (Cube, error) {
	c := NewCube(len(s))
	for i, ch := range s {
		switch ch {
		case '0':
			c.SetNeg(i)
		case '1':
			c.SetPos(i)
		case '-', '2':
			// don't care
		default:
			return Cube{}, fmt.Errorf("logic: invalid cube character %q at position %d", ch, i)
		}
	}
	return c, nil
}

// MustParseCube is ParseCube that panics on error; for tests and
// package-internal literals.
func MustParseCube(s string) Cube {
	c, err := ParseCube(s)
	if err != nil {
		panic(err)
	}
	return c
}

// Inputs returns the number of inputs the cube is defined over.
func (c Cube) Inputs() int { return c.n }

// Clone returns an independent copy of c.
func (c Cube) Clone() Cube {
	out := Cube{n: c.n, pos: make([]uint64, len(c.pos)), neg: make([]uint64, len(c.neg))}
	copy(out.pos, c.pos)
	copy(out.neg, c.neg)
	return out
}

// SetPos sets input i to the positive literal, clearing any negative
// literal.
func (c Cube) SetPos(i int) {
	c.pos[i/wordBits] |= 1 << (i % wordBits)
	c.neg[i/wordBits] &^= 1 << (i % wordBits)
}

// SetNeg sets input i to the complemented literal, clearing any
// positive literal.
func (c Cube) SetNeg(i int) {
	c.neg[i/wordBits] |= 1 << (i % wordBits)
	c.pos[i/wordBits] &^= 1 << (i % wordBits)
}

// ClearLit removes input i from the cube (sets it to don't-care).
func (c Cube) ClearLit(i int) {
	c.pos[i/wordBits] &^= 1 << (i % wordBits)
	c.neg[i/wordBits] &^= 1 << (i % wordBits)
}

// Lit returns the value of input i: +1 for a positive literal, -1 for
// a complemented literal, 0 for don't-care.
func (c Cube) Lit(i int) int {
	w, b := i/wordBits, uint(i%wordBits)
	if c.pos[w]>>b&1 == 1 {
		return 1
	}
	if c.neg[w]>>b&1 == 1 {
		return -1
	}
	return 0
}

// NumLiterals returns the number of inputs that appear as literals.
func (c Cube) NumLiterals() int {
	n := 0
	for i := range c.pos {
		n += bits.OnesCount64(c.pos[i]) + bits.OnesCount64(c.neg[i])
	}
	return n
}

// IsUniversal reports whether the cube has no literals (covers the
// whole Boolean space).
func (c Cube) IsUniversal() bool {
	for i := range c.pos {
		if c.pos[i] != 0 || c.neg[i] != 0 {
			return false
		}
	}
	return true
}

// Contains reports whether c covers d, i.e. every minterm of d is a
// minterm of c. c covers d iff every literal of c appears in d with
// the same phase.
func (c Cube) Contains(d Cube) bool {
	if c.n != d.n {
		return false
	}
	for i := range c.pos {
		if c.pos[i]&^d.pos[i] != 0 || c.neg[i]&^d.neg[i] != 0 {
			return false
		}
	}
	return true
}

// Intersect returns the product c·d and whether it is non-empty. The
// product is empty when some input appears with opposite phases.
func (c Cube) Intersect(d Cube) (Cube, bool) {
	if c.n != d.n {
		return Cube{}, false
	}
	out := NewCube(c.n)
	for i := range c.pos {
		out.pos[i] = c.pos[i] | d.pos[i]
		out.neg[i] = c.neg[i] | d.neg[i]
		if out.pos[i]&out.neg[i] != 0 {
			return Cube{}, false
		}
	}
	return out, true
}

// Distance returns the number of inputs in which c and d have opposite
// phases. Distance 0 means the cubes intersect; distance 1 means they
// are mergeable by the consensus rule.
func (c Cube) Distance(d Cube) int {
	n := 0
	for i := range c.pos {
		n += bits.OnesCount64(c.pos[i]&d.neg[i] | c.neg[i]&d.pos[i])
	}
	return n
}

// Cofactor returns the Shannon cofactor of c with respect to literal
// (input i, phase pos). The second result is false when the cofactor
// is empty (c contains the opposite literal).
func (c Cube) Cofactor(i int, positive bool) (Cube, bool) {
	switch lit := c.Lit(i); {
	case lit == 0:
		return c, true
	case (lit == 1) == positive:
		out := c.Clone()
		out.ClearLit(i)
		return out, true
	default:
		return Cube{}, false
	}
}

// Supercube returns the smallest cube containing both c and d.
func (c Cube) Supercube(d Cube) Cube {
	out := NewCube(c.n)
	for i := range c.pos {
		out.pos[i] = c.pos[i] & d.pos[i]
		out.neg[i] = c.neg[i] & d.neg[i]
	}
	return out
}

// EvalAssignment evaluates the cube under a full input assignment.
// assign[i] is the value of input i.
func (c Cube) EvalAssignment(assign []bool) bool {
	for i := 0; i < c.n; i++ {
		switch c.Lit(i) {
		case 1:
			if !assign[i] {
				return false
			}
		case -1:
			if assign[i] {
				return false
			}
		}
	}
	return true
}

// Equal reports whether c and d are the same cube.
func (c Cube) Equal(d Cube) bool {
	if c.n != d.n {
		return false
	}
	for i := range c.pos {
		if c.pos[i] != d.pos[i] || c.neg[i] != d.neg[i] {
			return false
		}
	}
	return true
}

// String renders the cube in PLA input-plane notation.
func (c Cube) String() string {
	var b strings.Builder
	b.Grow(c.n)
	for i := 0; i < c.n; i++ {
		switch c.Lit(i) {
		case 1:
			b.WriteByte('1')
		case -1:
			b.WriteByte('0')
		default:
			b.WriteByte('-')
		}
	}
	return b.String()
}

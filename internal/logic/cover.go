package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Cover is a sum of cubes over a fixed number of inputs: the ON-set of
// a single-output Boolean function in sum-of-products form.
type Cover struct {
	n     int
	Cubes []Cube
}

// NewCover returns an empty (constant-false) cover over n inputs.
func NewCover(n int) *Cover {
	if n < 0 {
		panic("logic: negative input count")
	}
	return &Cover{n: n}
}

// ParseCover parses a whitespace-separated list of cube strings, all
// of the same width.
func ParseCover(s string) (*Cover, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return NewCover(0), nil
	}
	cov := NewCover(len(fields[0]))
	for _, f := range fields {
		if len(f) != cov.n {
			return nil, fmt.Errorf("logic: cube %q width %d differs from %d", f, len(f), cov.n)
		}
		c, err := ParseCube(f)
		if err != nil {
			return nil, err
		}
		cov.Cubes = append(cov.Cubes, c)
	}
	return cov, nil
}

// MustParseCover is ParseCover that panics on error.
func MustParseCover(s string) *Cover {
	c, err := ParseCover(s)
	if err != nil {
		panic(err)
	}
	return c
}

// Inputs returns the number of inputs of the cover.
func (c *Cover) Inputs() int { return c.n }

// Len returns the number of cubes.
func (c *Cover) Len() int { return len(c.Cubes) }

// Clone returns a deep copy of c.
func (c *Cover) Clone() *Cover {
	out := NewCover(c.n)
	out.Cubes = make([]Cube, len(c.Cubes))
	for i, cb := range c.Cubes {
		out.Cubes[i] = cb.Clone()
	}
	return out
}

// Add appends a cube, which must have the cover's width.
func (c *Cover) Add(cb Cube) {
	if cb.n != c.n {
		panic(fmt.Sprintf("logic: adding %d-input cube to %d-input cover", cb.n, c.n))
	}
	c.Cubes = append(c.Cubes, cb)
}

// NumLiterals returns the total literal count, the classic proxy for
// multi-level area after decomposition ([2],[3] in the paper).
func (c *Cover) NumLiterals() int {
	n := 0
	for _, cb := range c.Cubes {
		n += cb.NumLiterals()
	}
	return n
}

// Eval evaluates the cover under a full input assignment.
func (c *Cover) Eval(assign []bool) bool {
	for _, cb := range c.Cubes {
		if cb.EvalAssignment(assign) {
			return true
		}
	}
	return false
}

// IsEmpty reports whether the cover has no cubes (constant false).
func (c *Cover) IsEmpty() bool { return len(c.Cubes) == 0 }

// Cofactor returns the cofactor of the cover with respect to a cube:
// the cubes of c that intersect d, with d's literals removed. This is
// the generalized (Shannon) cofactor used by the tautology and
// containment algorithms.
func (c *Cover) Cofactor(d Cube) *Cover {
	out := NewCover(c.n)
	for _, cb := range c.Cubes {
		if cb.Distance(d) > 0 {
			continue
		}
		r := cb.Clone()
		for i := 0; i < c.n; i++ {
			if d.Lit(i) != 0 {
				r.ClearLit(i)
			}
		}
		out.Cubes = append(out.Cubes, r)
	}
	return out
}

// CofactorLit returns the Shannon cofactor with respect to a single
// literal.
func (c *Cover) CofactorLit(i int, positive bool) *Cover {
	d := NewCube(c.n)
	if positive {
		d.SetPos(i)
	} else {
		d.SetNeg(i)
	}
	return c.Cofactor(d)
}

// ContainsCube reports whether the cover covers every minterm of cube
// d, decided by checking that the cofactor of c with respect to d is a
// tautology.
func (c *Cover) ContainsCube(d Cube) bool {
	return c.Cofactor(d).Tautology()
}

// SingleCubeContainment removes every cube that is contained in
// another single cube of the cover. It runs in O(k²) cube pairs, which
// is fine for the cover sizes this package sees.
func (c *Cover) SingleCubeContainment() {
	// Wider cubes (fewer literals) first, so each cube only needs to be
	// tested against already-kept, at-least-as-wide cubes.
	sort.SliceStable(c.Cubes, func(i, j int) bool {
		return c.Cubes[i].NumLiterals() < c.Cubes[j].NumLiterals()
	})
	var kept []Cube
	for _, cb := range c.Cubes {
		contained := false
		for _, k := range kept {
			if k.Contains(cb) {
				contained = true
				break
			}
		}
		if !contained {
			kept = append(kept, cb)
		}
	}
	c.Cubes = kept
}

// Irredundant removes cubes that are covered by the union of the
// remaining cubes, producing an irredundant cover.
func (c *Cover) Irredundant() {
	for i := 0; i < len(c.Cubes); {
		rest := NewCover(c.n)
		rest.Cubes = append(rest.Cubes, c.Cubes[:i]...)
		rest.Cubes = append(rest.Cubes, c.Cubes[i+1:]...)
		if rest.ContainsCube(c.Cubes[i]) {
			c.Cubes = append(c.Cubes[:i], c.Cubes[i+1:]...)
		} else {
			i++
		}
	}
}

// Equivalent reports whether c and d represent the same Boolean
// function, decided by mutual cube containment.
func (c *Cover) Equivalent(d *Cover) bool {
	if c.n != d.n {
		return false
	}
	for _, cb := range c.Cubes {
		if !d.ContainsCube(cb) {
			return false
		}
	}
	for _, cb := range d.Cubes {
		if !c.ContainsCube(cb) {
			return false
		}
	}
	return true
}

// String renders the cover one cube per line.
func (c *Cover) String() string {
	lines := make([]string, len(c.Cubes))
	for i, cb := range c.Cubes {
		lines[i] = cb.String()
	}
	return strings.Join(lines, "\n")
}

package logic

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// quickCube adapts the package's random cube builder to testing/quick:
// Cube has unexported fields, so register a generator.
type quickCube struct{ C Cube }

// Generate implements quick.Generator.
func (quickCube) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(16) + 1
	return reflect.ValueOf(quickCube{C: randomCube(r, n)})
}

// widen returns a copy of c re-expressed over n inputs (padding with
// don't-cares) so two generated cubes can be compared.
func widen(c Cube, n int) Cube {
	out := NewCube(n)
	for i := 0; i < c.Inputs() && i < n; i++ {
		switch c.Lit(i) {
		case 1:
			out.SetPos(i)
		case -1:
			out.SetNeg(i)
		}
	}
	return out
}

// Property: containment is a partial order — reflexive and
// antisymmetric (mutual containment implies equality).
func TestQuickCubeContainmentPartialOrder(t *testing.T) {
	t.Parallel()
	f := func(a, b quickCube) bool {
		n := a.C.Inputs()
		if b.C.Inputs() > n {
			n = b.C.Inputs()
		}
		x, y := widen(a.C, n), widen(b.C, n)
		if !x.Contains(x) {
			return false
		}
		if x.Contains(y) && y.Contains(x) && !x.Equal(y) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: intersection is the greatest lower bound — contained in
// both operands, and any cube contained in both is contained in it.
func TestQuickCubeIntersectionGLB(t *testing.T) {
	t.Parallel()
	f := func(a, b, c quickCube) bool {
		n := 12
		x, y, z := widen(a.C, n), widen(b.C, n), widen(c.C, n)
		in, ok := x.Intersect(y)
		if ok {
			if !x.Contains(in) || !y.Contains(in) {
				return false
			}
		}
		if x.Contains(z) && y.Contains(z) {
			if !ok {
				return false // z witnesses a non-empty intersection
			}
			if !in.Contains(z) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the supercube is the least upper bound with respect to
// containment of the operands.
func TestQuickSupercubeLUB(t *testing.T) {
	t.Parallel()
	f := func(a, b quickCube) bool {
		n := 12
		x, y := widen(a.C, n), widen(b.C, n)
		sc := x.Supercube(y)
		return sc.Contains(x) && sc.Contains(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: cover complement is an involution on the function —
// complementing twice gives an equivalent cover.
func TestQuickComplementInvolution(t *testing.T) {
	t.Parallel()
	cfg := &quick.Config{MaxCount: 40}
	f := func(a, b, c quickCube) bool {
		n := 6
		cov := NewCover(n)
		cov.Add(widen(a.C, n))
		cov.Add(widen(b.C, n))
		cov.Add(widen(c.C, n))
		double := cov.Complement().Complement()
		return cov.Equivalent(double)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Minimize never changes the function (checked by
// Equivalent, which is exact) and never grows the cube count.
func TestQuickMinimizeSoundness(t *testing.T) {
	t.Parallel()
	cfg := &quick.Config{MaxCount: 40}
	f := func(a, b, c, d quickCube) bool {
		n := 6
		cov := NewCover(n)
		for _, q := range []quickCube{a, b, c, d} {
			cov.Add(widen(q.C, n))
		}
		orig := cov.Clone()
		cov.Minimize(nil)
		return cov.Len() <= orig.Len() && cov.Equivalent(orig)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

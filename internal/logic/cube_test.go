package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseCube(t *testing.T) {
	t.Parallel()
	c, err := ParseCube("10-1")
	if err != nil {
		t.Fatal(err)
	}
	if c.Inputs() != 4 {
		t.Fatalf("Inputs = %d, want 4", c.Inputs())
	}
	want := []int{1, -1, 0, 1}
	for i, w := range want {
		if got := c.Lit(i); got != w {
			t.Errorf("Lit(%d) = %d, want %d", i, got, w)
		}
	}
	if c.String() != "10-1" {
		t.Errorf("String = %q, want 10-1", c.String())
	}
	if _, err := ParseCube("10x"); err == nil {
		t.Error("ParseCube accepted invalid character")
	}
}

func TestCubeSettersAndLiteralCount(t *testing.T) {
	t.Parallel()
	c := NewCube(70) // spans two words
	if !c.IsUniversal() {
		t.Fatal("new cube must be universal")
	}
	c.SetPos(0)
	c.SetNeg(69)
	if c.NumLiterals() != 2 {
		t.Errorf("NumLiterals = %d, want 2", c.NumLiterals())
	}
	if c.Lit(0) != 1 || c.Lit(69) != -1 {
		t.Error("literal values wrong after set")
	}
	// Setting opposite phase overwrites.
	c.SetNeg(0)
	if c.Lit(0) != -1 || c.NumLiterals() != 2 {
		t.Error("SetNeg must overwrite SetPos")
	}
	c.ClearLit(0)
	c.ClearLit(69)
	if !c.IsUniversal() {
		t.Error("clearing all literals must yield universal cube")
	}
}

func TestCubeContains(t *testing.T) {
	t.Parallel()
	wide := MustParseCube("1---")
	narrow := MustParseCube("10-1")
	if !wide.Contains(narrow) {
		t.Error("1--- must contain 10-1")
	}
	if narrow.Contains(wide) {
		t.Error("10-1 must not contain 1---")
	}
	if !wide.Contains(wide) {
		t.Error("containment must be reflexive")
	}
	other := MustParseCube("0---")
	if wide.Contains(other) || other.Contains(wide) {
		t.Error("disjoint cubes must not contain each other")
	}
	if wide.Contains(MustParseCube("1--")) {
		t.Error("different widths must not contain")
	}
}

func TestCubeIntersect(t *testing.T) {
	t.Parallel()
	a := MustParseCube("1--")
	b := MustParseCube("-0-")
	got, ok := a.Intersect(b)
	if !ok || got.String() != "10-" {
		t.Errorf("Intersect = %v,%v, want 10-,true", got, ok)
	}
	c := MustParseCube("0--")
	if _, ok := a.Intersect(c); ok {
		t.Error("opposite-phase cubes must have empty intersection")
	}
}

func TestCubeDistance(t *testing.T) {
	t.Parallel()
	cases := []struct {
		a, b string
		want int
	}{
		{"1-0", "1-0", 0},
		{"1-0", "0-0", 1},
		{"1-0", "0-1", 2},
		{"---", "010", 0},
	}
	for _, c := range cases {
		if got := MustParseCube(c.a).Distance(MustParseCube(c.b)); got != c.want {
			t.Errorf("Distance(%s,%s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCubeCofactor(t *testing.T) {
	t.Parallel()
	c := MustParseCube("1-0")
	got, ok := c.Cofactor(0, true)
	if !ok || got.String() != "--0" {
		t.Errorf("Cofactor pos = %v,%v", got, ok)
	}
	if _, ok := c.Cofactor(0, false); ok {
		t.Error("cofactor against opposite phase must be empty")
	}
	got, ok = c.Cofactor(1, true)
	if !ok || !got.Equal(c) {
		t.Error("cofactor on don't-care input must return the cube unchanged")
	}
}

func TestCubeSupercube(t *testing.T) {
	t.Parallel()
	a := MustParseCube("10-")
	b := MustParseCube("11-")
	sc := a.Supercube(b)
	if sc.String() != "1--" {
		t.Errorf("Supercube = %s, want 1--", sc)
	}
	if !sc.Contains(a) || !sc.Contains(b) {
		t.Error("supercube must contain both operands")
	}
}

func TestCubeEval(t *testing.T) {
	t.Parallel()
	c := MustParseCube("1-0")
	if !c.EvalAssignment([]bool{true, false, false}) {
		t.Error("1-0 must accept 1x0")
	}
	if !c.EvalAssignment([]bool{true, true, false}) {
		t.Error("1-0 must accept 110")
	}
	if c.EvalAssignment([]bool{true, true, true}) {
		t.Error("1-0 must reject 111")
	}
	if c.EvalAssignment([]bool{false, false, false}) {
		t.Error("1-0 must reject 000")
	}
}

// randomCube builds a random cube over n inputs from the rng.
func randomCube(rng *rand.Rand, n int) Cube {
	c := NewCube(n)
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			c.SetPos(i)
		case 1:
			c.SetNeg(i)
		}
	}
	return c
}

// Property: parse(String(c)) == c round-trips.
func TestCubeStringRoundTrip(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(80) + 1
		c := randomCube(rng, n)
		got := MustParseCube(c.String())
		if !got.Equal(c) {
			t.Fatalf("round trip failed for %s", c)
		}
	}
}

// Property: a.Contains(b) iff the intersection of a and b equals b.
func TestCubeContainsMatchesIntersection(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(20) + 1
		a, b := randomCube(rng, n), randomCube(rng, n)
		inter, ok := a.Intersect(b)
		want := ok && inter.Equal(b)
		if got := a.Contains(b); got != want {
			t.Fatalf("Contains(%s,%s) = %v, intersection says %v", a, b, got, want)
		}
	}
}

// Property: distance-0 cubes intersect, distance>0 cubes do not.
func TestCubeDistanceIntersectionAgreement(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 1
		a, b := randomCube(rng, n), randomCube(rng, n)
		_, ok := a.Intersect(b)
		return ok == (a.Distance(b) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: supercube contains both operands and evaluation agrees on
// all assignments of small cubes.
func TestCubeSupercubeProperty(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(8) + 1
		a, b := randomCube(rng, n), randomCube(rng, n)
		sc := a.Supercube(b)
		if !sc.Contains(a) || !sc.Contains(b) {
			t.Fatalf("supercube(%s,%s)=%s does not contain operands", a, b, sc)
		}
		// Every assignment accepted by a or b is accepted by sc.
		assign := make([]bool, n)
		for m := 0; m < 1<<n; m++ {
			for i := 0; i < n; i++ {
				assign[i] = m>>i&1 == 1
			}
			if (a.EvalAssignment(assign) || b.EvalAssignment(assign)) && !sc.EvalAssignment(assign) {
				t.Fatalf("supercube misses minterm %0*b", n, m)
			}
		}
	}
}

package logic

import (
	"math/rand"
	"testing"
)

// Property tests for the two-level engine. Every property is checked
// by exhaustive truth-table enumeration against an independent
// reference implementation, over seeded random covers — the seeds make
// failures reproducible and -shuffle-proof.

// refCubeEval is an independent reference for cube semantics, written
// against the Lit interface rather than the bit-plane internals.
func refCubeEval(c Cube, assign []bool) bool {
	for i := 0; i < c.Inputs(); i++ {
		switch c.Lit(i) {
		case 1:
			if !assign[i] {
				return false
			}
		case -1:
			if assign[i] {
				return false
			}
		}
	}
	return true
}

// refCoverEval is the reference OR-of-cubes semantics.
func refCoverEval(c *Cover, assign []bool) bool {
	for _, cb := range c.Cubes {
		if refCubeEval(cb, assign) {
			return true
		}
	}
	return false
}

// randomCover builds a seeded random cover over n inputs.
func randomCover(rng *rand.Rand, n, cubes int) *Cover {
	c := NewCover(n)
	for i := 0; i < cubes; i++ {
		c.Add(randomCube(rng, n))
	}
	return c
}

// assignFor expands minterm m into an assignment vector.
func assignFor(m, n int) []bool {
	a := make([]bool, n)
	for i := range a {
		a[i] = m>>i&1 == 1
	}
	return a
}

// TestPropertyCoverEvalMatchesEnumeration: Cover.Eval agrees with the
// reference semantics on every assignment of every random cover.
func TestPropertyCoverEvalMatchesEnumeration(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		c := randomCover(rng, n, rng.Intn(6))
		for m := 0; m < 1<<n; m++ {
			a := assignFor(m, n)
			if c.Eval(a) != refCoverEval(c, a) {
				t.Fatalf("trial %d: Eval diverges from reference at minterm %d of %s", trial, m, c)
			}
		}
	}
}

// TestPropertyComplementPartitions: Complement is the pointwise
// negation — for every assignment exactly one of cover and complement
// is true.
func TestPropertyComplementPartitions(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(7)
		c := randomCover(rng, n, rng.Intn(5))
		comp := c.Complement()
		for m := 0; m < 1<<n; m++ {
			a := assignFor(m, n)
			if c.Eval(a) == comp.Eval(a) {
				t.Fatalf("trial %d: cover and complement agree at minterm %d", trial, m)
			}
		}
	}
}

// TestPropertyCofactorShannon: the Shannon identity — a cover agrees
// with its cofactor on every assignment consistent with the cofactor
// literal.
func TestPropertyCofactorShannon(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(7)
		c := randomCover(rng, n, 1+rng.Intn(5))
		for i := 0; i < n; i++ {
			pos := c.CofactorLit(i, true)
			neg := c.CofactorLit(i, false)
			for m := 0; m < 1<<n; m++ {
				a := assignFor(m, n)
				co := neg
				if a[i] {
					co = pos
				}
				if c.Eval(a) != co.Eval(a) {
					t.Fatalf("trial %d: Shannon violated at input %d, minterm %d", trial, i, m)
				}
			}
		}
	}
}

// TestPropertyReductionsPreserveFunction: every in-place cover
// transformation — single-cube containment, irredundant, distance-one
// merge, full minimization — preserves the function pointwise.
func TestPropertyReductionsPreserveFunction(t *testing.T) {
	t.Parallel()
	steps := []struct {
		name  string
		apply func(*Cover)
	}{
		{"SingleCubeContainment", func(c *Cover) { c.SingleCubeContainment() }},
		{"Irredundant", func(c *Cover) { c.Irredundant() }},
		{"MergeDistanceOne", func(c *Cover) { c.MergeDistanceOne() }},
		{"Minimize", func(c *Cover) { c.Minimize(nil) }},
	}
	for _, step := range steps {
		step := step
		t.Run(step.name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(14))
			for trial := 0; trial < 100; trial++ {
				n := 1 + rng.Intn(7)
				c := randomCover(rng, n, rng.Intn(8))
				orig := c.Clone()
				step.apply(c)
				if c.Len() > orig.Len() {
					t.Fatalf("trial %d: %s grew the cover %d -> %d", trial, step.name, orig.Len(), c.Len())
				}
				for m := 0; m < 1<<n; m++ {
					a := assignFor(m, n)
					if c.Eval(a) != orig.Eval(a) {
						t.Fatalf("trial %d: %s changed the function at minterm %d\nbefore: %snow: %s",
							trial, step.name, m, orig, c)
					}
				}
			}
		})
	}
}

// TestPropertyTautologyMatchesEnumeration: the recursive tautology
// check agrees with brute force. Half the trials are nudged toward
// tautology by adding wide cubes so both verdicts are exercised.
func TestPropertyTautologyMatchesEnumeration(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(15))
	sawTaut, sawNot := false, false
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(6)
		c := NewCover(n)
		for i := 0; i < 1+rng.Intn(6); i++ {
			cb := NewCube(n)
			// Sparse literals make wide cubes (and tautologies) likely.
			for j := 0; j < n; j++ {
				switch rng.Intn(4) {
				case 0:
					cb.SetPos(j)
				case 1:
					cb.SetNeg(j)
				}
			}
			c.Add(cb)
		}
		want := true
		for m := 0; m < 1<<n; m++ {
			if !c.Eval(assignFor(m, n)) {
				want = false
				break
			}
		}
		if got := c.Tautology(); got != want {
			t.Fatalf("trial %d: Tautology() = %v, enumeration says %v for %s", trial, got, want, c)
		}
		if want {
			sawTaut = true
		} else {
			sawNot = true
		}
	}
	if !sawTaut || !sawNot {
		t.Errorf("generator one-sided: tautologies=%v non-tautologies=%v", sawTaut, sawNot)
	}
}

// TestPropertyPLAMinimizePreserves: whole-PLA minimization preserves
// every output on every assignment.
func TestPropertyPLAMinimizePreserves(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 60; trial++ {
		ni := 1 + rng.Intn(6)
		no := 1 + rng.Intn(3)
		p := NewPLA(ni, no)
		for i := 0; i < 2+rng.Intn(8); i++ {
			outs := make([]bool, no)
			any := false
			for o := range outs {
				outs[o] = rng.Intn(2) == 0
				any = any || outs[o]
			}
			if !any {
				outs[rng.Intn(no)] = true
			}
			if err := p.AddTerm(randomCube(rng, ni), outs); err != nil {
				t.Fatal(err)
			}
		}
		want := make([][]bool, 1<<ni)
		for m := range want {
			want[m] = p.Eval(assignFor(m, ni))
		}
		p.Minimize()
		for m := range want {
			got := p.Eval(assignFor(m, ni))
			for o := range got {
				if got[o] != want[m][o] {
					t.Fatalf("trial %d: Minimize changed output %d at minterm %d", trial, o, m)
				}
			}
		}
	}
}

package geom

import (
	"math/rand"
	"testing"
)

func TestSteinerLengthSmall(t *testing.T) {
	t.Parallel()
	if l := SteinerLength(nil); l != 0 {
		t.Errorf("empty = %g", l)
	}
	if l := SteinerLength([]Point{Pt(3, 4)}); l != 0 {
		t.Errorf("single = %g", l)
	}
	if l := SteinerLength([]Point{Pt(0, 0), Pt(3, 4)}); l != 7 {
		t.Errorf("two points = %g, want 7", l)
	}
	// Three terminals: exact RSMT is the bounding-box half-perimeter.
	if l := SteinerLength([]Point{Pt(0, 0), Pt(10, 0), Pt(5, 5)}); l != 15 {
		t.Errorf("three points = %g, want 15", l)
	}
	// Duplicates collapse.
	if l := SteinerLength([]Point{Pt(0, 0), Pt(0, 0), Pt(3, 4)}); l != 7 {
		t.Errorf("dup = %g, want 7", l)
	}
}

func TestSteinerLengthBeatsMSTOnCross(t *testing.T) {
	t.Parallel()
	// Four corner terminals: the MST needs 3 sides (30); one Steiner
	// point in the middle gives the exact RSMT of 20... for a plus
	// shape. Use the classic 4-corner square: RSMT = 3 sides via Hanan
	// points collapses to 30 too, so use a cross instead.
	cross := []Point{Pt(5, 0), Pt(5, 10), Pt(0, 5), Pt(10, 5)}
	l := SteinerLength(cross)
	m := mstLength(cross)
	if l > m+1e-9 {
		t.Fatalf("steiner %g > mst %g", l, m)
	}
	// The cross has RSMT 20 (a plus through the center Hanan point
	// (5,5)); the terminal-only MST is 30.
	if l != 20 {
		t.Errorf("cross = %g, want 20", l)
	}
	if m != 30 {
		t.Errorf("cross mst = %g, want 30", m)
	}
}

func TestSteinerLengthBounds(t *testing.T) {
	t.Parallel()
	// HPWL <= RSMT estimate <= MST for random point sets, and the
	// estimate is deterministic for a fixed input order.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(8)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(float64(rng.Intn(100)), float64(rng.Intn(100)))
		}
		l := SteinerLength(pts)
		if h := HPWL(dedupPoints(pts)); l < h-1e-9 {
			t.Fatalf("steiner %g below HPWL %g for %v", l, h, pts)
		}
		if m := mstLength(dedupPoints(pts)); l > m+1e-9 {
			t.Fatalf("steiner %g above MST %g for %v", l, m, pts)
		}
		if l2 := SteinerLength(pts); l2 != l {
			t.Fatalf("non-deterministic: %g vs %g", l, l2)
		}
	}
}

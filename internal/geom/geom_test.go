package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointArithmetic(t *testing.T) {
	t.Parallel()
	p := Pt(1, 2)
	q := Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add = %v, want (4,-2)", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub = %v, want (-2,6)", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v, want (2,4)", got)
	}
}

func TestManhattanDistance(t *testing.T) {
	t.Parallel()
	cases := []struct {
		p, q Point
		want float64
	}{
		{Pt(0, 0), Pt(0, 0), 0},
		{Pt(0, 0), Pt(3, 4), 7},
		{Pt(-1, -1), Pt(1, 1), 4},
		{Pt(2, 5), Pt(2, 5), 0},
	}
	for _, c := range cases {
		if got := c.p.Manhattan(c.q); !almostEq(got, c.want) {
			t.Errorf("Manhattan(%v,%v) = %g, want %g", c.p, c.q, got, c.want)
		}
	}
}

func TestEuclideanDistance(t *testing.T) {
	t.Parallel()
	if got := Pt(0, 0).Euclidean(Pt(3, 4)); !almostEq(got, 5) {
		t.Errorf("Euclidean = %g, want 5", got)
	}
}

func TestMetricDispatch(t *testing.T) {
	t.Parallel()
	p, q := Pt(0, 0), Pt(3, 4)
	if got := ManhattanMetric.Distance(p, q); !almostEq(got, 7) {
		t.Errorf("ManhattanMetric = %g, want 7", got)
	}
	if got := EuclideanMetric.Distance(p, q); !almostEq(got, 5) {
		t.Errorf("EuclideanMetric = %g, want 5", got)
	}
	if ManhattanMetric.String() != "manhattan" || EuclideanMetric.String() != "euclidean" {
		t.Errorf("Metric.String broken: %q %q", ManhattanMetric, EuclideanMetric)
	}
}

func TestRectConstruction(t *testing.T) {
	t.Parallel()
	// R normalizes swapped corners.
	r := R(5, 7, 1, 2)
	if r.Min != Pt(1, 2) || r.Max != Pt(5, 7) {
		t.Fatalf("R did not normalize: %v", r)
	}
	if !almostEq(r.W(), 4) || !almostEq(r.H(), 5) {
		t.Errorf("W,H = %g,%g, want 4,5", r.W(), r.H())
	}
	if !almostEq(r.Area(), 20) {
		t.Errorf("Area = %g, want 20", r.Area())
	}
	if r.Center() != Pt(3, 4.5) {
		t.Errorf("Center = %v, want (3,4.5)", r.Center())
	}
	if !almostEq(r.HalfPerimeter(), 9) {
		t.Errorf("HalfPerimeter = %g, want 9", r.HalfPerimeter())
	}
}

func TestRectContains(t *testing.T) {
	t.Parallel()
	r := R(0, 0, 10, 10)
	for _, p := range []Point{Pt(0, 0), Pt(10, 10), Pt(5, 5), Pt(0, 10)} {
		if !r.Contains(p) {
			t.Errorf("Contains(%v) = false, want true", p)
		}
	}
	for _, p := range []Point{Pt(-0.001, 5), Pt(10.001, 5), Pt(5, -1), Pt(5, 11)} {
		if r.Contains(p) {
			t.Errorf("Contains(%v) = true, want false", p)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	t.Parallel()
	a := R(0, 0, 10, 10)
	cases := []struct {
		b    Rect
		want bool
	}{
		{R(5, 5, 15, 15), true},
		{R(10, 10, 20, 20), true}, // touching corner counts
		{R(11, 11, 20, 20), false},
		{R(-5, -5, -1, -1), false},
		{R(2, 2, 3, 3), true}, // fully inside
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("Intersects(%v) = %v, want %v", c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("Intersects symmetric (%v) = %v, want %v", c.b, got, c.want)
		}
	}
}

func TestRectUnion(t *testing.T) {
	t.Parallel()
	got := R(0, 0, 1, 1).Union(R(5, -2, 6, 3))
	want := R(0, -2, 6, 3)
	if got != want {
		t.Errorf("Union = %v, want %v", got, want)
	}
}

func TestRectExpand(t *testing.T) {
	t.Parallel()
	r := R(2, 2, 4, 4)
	if got := r.Expand(1); got != R(1, 1, 5, 5) {
		t.Errorf("Expand(1) = %v", got)
	}
	// Shrinking past the center collapses to a point, never inverts.
	got := r.Expand(-5)
	if got.W() < 0 || got.H() < 0 {
		t.Errorf("Expand(-5) inverted: %v", got)
	}
	if got.Center() != r.Center() {
		t.Errorf("Expand(-5) moved center: %v", got.Center())
	}
}

func TestBoundingBoxAndHPWL(t *testing.T) {
	t.Parallel()
	pts := []Point{Pt(1, 1), Pt(4, 0), Pt(2, 6)}
	bb := BoundingBox(pts)
	if bb != R(1, 0, 4, 6) {
		t.Errorf("BoundingBox = %v", bb)
	}
	if !almostEq(HPWL(pts), 9) {
		t.Errorf("HPWL = %g, want 9", HPWL(pts))
	}
	if HPWL(nil) != 0 || HPWL([]Point{Pt(3, 3)}) != 0 {
		t.Error("HPWL of degenerate nets must be 0")
	}
	if (BoundingBox(nil) != Rect{}) {
		t.Error("BoundingBox(nil) must be zero Rect")
	}
}

func TestCenterOfMass(t *testing.T) {
	t.Parallel()
	pts := []Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	if got := CenterOfMass(pts); got != Pt(1, 1) {
		t.Errorf("CenterOfMass = %v, want (1,1)", got)
	}
	if got := CenterOfMass(nil); got != Pt(0, 0) {
		t.Errorf("CenterOfMass(nil) = %v, want origin", got)
	}
}

func TestWeightedCenterOfMass(t *testing.T) {
	t.Parallel()
	pts := []Point{Pt(0, 0), Pt(4, 0)}
	got := WeightedCenterOfMass(pts, []float64{1, 3})
	if got != Pt(3, 0) {
		t.Errorf("WeightedCenterOfMass = %v, want (3,0)", got)
	}
	// All-zero weights fall back to the unweighted centroid.
	got = WeightedCenterOfMass(pts, []float64{0, 0})
	if got != Pt(2, 0) {
		t.Errorf("fallback = %v, want (2,0)", got)
	}
	// Missing weights are treated as zero.
	got = WeightedCenterOfMass(pts, []float64{2})
	if got != Pt(0, 0) {
		t.Errorf("short weights = %v, want (0,0)", got)
	}
}

// Property: the Manhattan distance is a metric — symmetric,
// non-negative, zero iff equal points, and satisfies the triangle
// inequality.
func TestManhattanMetricProperties(t *testing.T) {
	t.Parallel()
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		// Constrain to a sane range to avoid inf/overflow noise.
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		a := Pt(clamp(ax), clamp(ay))
		b := Pt(clamp(bx), clamp(by))
		c := Pt(clamp(cx), clamp(cy))
		dab, dba := a.Manhattan(b), b.Manhattan(a)
		if dab != dba || dab < 0 {
			return false
		}
		if a == b && dab != 0 {
			return false
		}
		// Triangle inequality with a small epsilon for FP noise.
		return a.Manhattan(c) <= dab+b.Manhattan(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: HPWL is invariant under permutation of the pin list and
// never decreases when a point is added.
func TestHPWLProperties(t *testing.T) {
	t.Parallel()
	f := func(xs, ys []float64, extraX, extraY float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		if n < 2 {
			return true
		}
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		pts := make([]Point, n)
		for i := 0; i < n; i++ {
			pts[i] = Pt(clamp(xs[i]), clamp(ys[i]))
		}
		base := HPWL(pts)
		// Reverse is a permutation.
		rev := make([]Point, n)
		for i := range pts {
			rev[n-1-i] = pts[i]
		}
		if !almostEq(HPWL(rev), base) {
			return false
		}
		grown := append(append([]Point{}, pts...), Pt(clamp(extraX), clamp(extraY)))
		return HPWL(grown) >= base-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CenterOfMass lies inside the bounding box of its points.
func TestCenterOfMassInsideBBox(t *testing.T) {
	t.Parallel()
	f := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		if n == 0 {
			return true
		}
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		pts := make([]Point, n)
		for i := 0; i < n; i++ {
			pts[i] = Pt(clamp(xs[i]), clamp(ys[i]))
		}
		return BoundingBox(pts).Expand(1e-6).Contains(CenterOfMass(pts))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

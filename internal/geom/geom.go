// Package geom provides the planar geometry primitives shared by the
// placement, routing, and technology-mapping packages: points,
// rectangles, distance metrics, and wirelength estimators.
//
// All coordinates are float64 values in micrometers (µm), matching the
// units the paper reports die and cell areas in. The zero value of
// every type is usable.
package geom

import (
	"fmt"
	"math"
)

// Point is a location on the chip layout image.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p translated by -q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p with both coordinates multiplied by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Manhattan returns the L1 (rectilinear) distance between p and q.
// Routed wires on a Manhattan grid have exactly this length when the
// route is detour-free, so it is the metric used by the covering cost
// function of the paper (Eq. 2).
func (p Point) Manhattan(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// Euclidean returns the L2 distance between p and q.
func (p Point) Euclidean(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f,%.3f)", p.X, p.Y) }

// Metric identifies a distance function usable by the mapper's wire
// cost. The paper's distance() is left abstract; Manhattan is the
// default because global routing is rectilinear.
type Metric int

const (
	// ManhattanMetric selects the L1 distance.
	ManhattanMetric Metric = iota
	// EuclideanMetric selects the L2 distance.
	EuclideanMetric
)

// Distance returns the distance between p and q under metric m.
func (m Metric) Distance(p, q Point) float64 {
	if m == EuclideanMetric {
		return p.Euclidean(q)
	}
	return p.Manhattan(q)
}

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case ManhattanMetric:
		return "manhattan"
	case EuclideanMetric:
		return "euclidean"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// Rect is an axis-aligned rectangle. Min is the lower-left corner and
// Max the upper-right; a well-formed Rect has Min.X <= Max.X and
// Min.Y <= Max.Y.
type Rect struct {
	Min, Max Point
}

// R builds a well-formed rectangle from two arbitrary corners.
func R(x0, y0, x1, y1 float64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Min: Point{x0, y0}, Max: Point{x1, y1}}
}

// W returns the width of r.
func (r Rect) W() float64 { return r.Max.X - r.Min.X }

// H returns the height of r.
func (r Rect) H() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.W() * r.H() }

// Center returns the geometric center of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// HalfPerimeter returns the half-perimeter of r, the classic HPWL
// wirelength estimate for a net whose pin bounding box is r.
func (r Rect) HalfPerimeter() float64 { return r.W() + r.H() }

// Contains reports whether p lies inside r (inclusive of edges).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Intersects reports whether r and s share any area or edge.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Expand returns r grown by d on every side. A negative d shrinks r;
// the result is clamped so it never inverts.
func (r Rect) Expand(d float64) Rect {
	out := Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
	if out.Min.X > out.Max.X {
		c := (out.Min.X + out.Max.X) / 2
		out.Min.X, out.Max.X = c, c
	}
	if out.Min.Y > out.Max.Y {
		c := (out.Min.Y + out.Max.Y) / 2
		out.Min.Y, out.Max.Y = c, c
	}
	return out
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%s %s]", r.Min, r.Max)
}

// BoundingBox returns the smallest rectangle containing all points.
// It returns a zero Rect when pts is empty.
func BoundingBox(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r.Min.X = math.Min(r.Min.X, p.X)
		r.Min.Y = math.Min(r.Min.Y, p.Y)
		r.Max.X = math.Max(r.Max.X, p.X)
		r.Max.Y = math.Max(r.Max.Y, p.Y)
	}
	return r
}

// HPWL returns the half-perimeter wirelength of the bounding box of
// pts, the standard pre-route estimate of a net's wirelength.
func HPWL(pts []Point) float64 {
	if len(pts) < 2 {
		return 0
	}
	return BoundingBox(pts).HalfPerimeter()
}

// SteinerLength estimates the rectilinear Steiner minimal tree length
// of pts. For up to three terminals the bounding-box half-perimeter is
// the exact RSMT length; above that it builds the rectilinear minimum
// spanning tree (Prim) and greedily inserts Hanan grid points while
// any single insertion shortens the tree — the classic 1-Steiner
// heuristic, deterministic for a fixed point order. Duplicate points
// are ignored.
func SteinerLength(pts []Point) float64 {
	pts = dedupPoints(pts)
	if len(pts) < 2 {
		return 0
	}
	if len(pts) <= 3 {
		return BoundingBox(pts).HalfPerimeter()
	}
	best := mstLength(pts)
	// Bounded 1-Steiner improvement: try every Hanan point, keep the
	// single best insertion, repeat until no insertion helps. The pin
	// counts here are small (net terminals, die regions), so the
	// O(n³ log n) worst case stays trivial.
	work := append([]Point(nil), pts...)
	for iter := 0; iter < len(pts); iter++ {
		bestGain := 0.0
		var bestPt Point
		for _, hx := range pts {
			for _, hy := range pts {
				h := Point{X: hx.X, Y: hy.Y}
				if containsPoint(work, h) {
					continue
				}
				l := mstLength(append(work, h))
				if g := best - l; g > bestGain+1e-9 {
					bestGain = g
					bestPt = h
				}
			}
		}
		if bestGain <= 0 {
			break
		}
		work = append(work, bestPt)
		best -= bestGain
	}
	return best
}

func dedupPoints(pts []Point) []Point {
	out := pts[:0:0]
	for _, p := range pts {
		if !containsPoint(out, p) {
			out = append(out, p)
		}
	}
	return out
}

func containsPoint(pts []Point, q Point) bool {
	for _, p := range pts {
		if p == q {
			return true
		}
	}
	return false
}

// mstLength returns the length of the Manhattan-distance minimum
// spanning tree of pts (Prim's algorithm). A tree spanning terminals
// plus any extra Steiner points is itself a Steiner tree of the
// terminals, so the value is always a valid RSMT upper bound.
func mstLength(pts []Point) float64 {
	n := len(pts)
	if n < 2 {
		return 0
	}
	inTree := make([]bool, n)
	dist := make([]float64, n)
	for i := 1; i < n; i++ {
		dist[i] = pts[0].Manhattan(pts[i])
	}
	inTree[0] = true
	total := 0.0
	for added := 1; added < n; added++ {
		best := -1
		for i := 1; i < n; i++ {
			if !inTree[i] && (best < 0 || dist[i] < dist[best]) {
				best = i
			}
		}
		inTree[best] = true
		total += dist[best]
		for i := 1; i < n; i++ {
			if !inTree[i] {
				if d := pts[best].Manhattan(pts[i]); d < dist[i] {
					dist[i] = d
				}
			}
		}
	}
	return total
}

// CenterOfMass returns the unweighted centroid of pts. It returns the
// origin when pts is empty. The paper's covering algorithm replaces
// the positions of all base gates covered by a selected match with
// their center of mass (Section 3.2).
func CenterOfMass(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var c Point
	for _, p := range pts {
		c.X += p.X
		c.Y += p.Y
	}
	return c.Scale(1 / float64(len(pts)))
}

// WeightedCenterOfMass returns the centroid of pts weighted by w.
// Entries with non-positive weight are ignored; if every weight is
// non-positive it falls back to the unweighted centroid.
func WeightedCenterOfMass(pts []Point, w []float64) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var c Point
	var tot float64
	for i, p := range pts {
		if i >= len(w) || w[i] <= 0 {
			continue
		}
		c.X += p.X * w[i]
		c.Y += p.Y * w[i]
		tot += w[i]
	}
	if tot == 0 {
		return CenterOfMass(pts)
	}
	return c.Scale(1 / tot)
}

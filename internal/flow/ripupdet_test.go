package flow

import (
	"context"
	"testing"

	"casyn/internal/bench"
	"casyn/internal/obs"
)

// TestRipupWorkersDeterminism runs scaled SPLA and PDC at a congested
// capacity — tight enough that the rip-up/reroute negotiation actually
// fires — and checks that every RouteOpts.Workers value produces a
// byte-identical iteration: same result fields, same mapped netlist,
// and the same metrics fingerprint (counters, histogram buckets, hot
// spots — which pins the router's event stream, not just its summary).
func TestRipupWorkersDeterminism(t *testing.T) {
	for _, class := range []bench.Class{bench.SPLA, bench.PDC} {
		t.Run(class.String(), func(t *testing.T) {
			t.Parallel()
			pc, cfg := preparedClass(t, class, 0.75)
			// Starve capacity so the initial pattern routing overflows
			// and the negotiation has rounds to run.
			cfg.RouteOpts.CapacityScale = 0.55
			cfg.RouteOpts.RipupIterations = 5

			run := func(workers int) (Iteration, string) {
				t.Helper()
				cfg.RouteOpts.Workers = workers
				ctx := obs.WithRecorder(context.Background(), obs.New())
				it, err := RunOnce(ctx, pc, 0, cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return it, it.Metrics.Fingerprint()
			}

			ref, want := run(1)
			if ref.Metrics.Events.Counters["route.ripup_iterations"] == 0 {
				t.Fatal("capacity not tight enough: rip-up never ran, determinism unexercised")
			}
			t.Logf("%s: ripup_iterations=%d reroutes=%d regions=%d boundary=%d violations=%d",
				class,
				ref.Metrics.Events.Counters["route.ripup_iterations"],
				ref.Metrics.Events.Counters["route.reroutes"],
				ref.Metrics.Events.Counters["route.regions"],
				ref.Metrics.Events.Counters["route.boundary_nets"],
				ref.Violations)
			for _, w := range []int{2, 8} {
				it, got := run(w)
				sameIteration(t, class.String(), ref, it)
				if got != want {
					t.Errorf("workers=%d metrics fingerprint diverged from workers=1", w)
				}
			}
		})
	}
}

package flow

import (
	"context"

	"testing"

	"casyn/internal/bench"
	"casyn/internal/place"
	"casyn/internal/route"
)

// prepared returns a small subject DAG context on a fixed layout.
func prepared(t *testing.T, tightness float64) (*Context, Config) {
	t.Helper()
	spec := bench.SPLA.ScaledSpec(0.05)
	p, err := bench.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	d, err := bench.BuildSubject(p, bench.Direct, 0)
	if err != nil {
		t.Fatal(err)
	}
	area := float64(d.BaseGateCount()) * 4.6 / tightness
	layout, err := place.NewLayout(area, 1.0, 6.656)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Layout:         layout,
		PlaceOpts:      place.Options{Seed: 1},
		RouteOpts:      route.Options{CapacityScale: 1.98},
		FreshPlacement: true,
	}
	pc, err := Prepare(context.Background(), d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pc, cfg
}

func TestRunOnceProducesConsistentIteration(t *testing.T) {
	pc, cfg := prepared(t, 0.55)
	cfg.RunSTA = true
	it, err := RunOnce(context.Background(), pc, 0.001, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if it.NumCells == 0 || it.CellArea <= 0 {
		t.Fatalf("degenerate iteration: %+v", it)
	}
	if it.Utilization <= 0 || it.Utilization > 1.2 {
		t.Errorf("utilization = %g", it.Utilization)
	}
	if it.Netlist == nil || it.Netlist.NumCells() != it.NumCells {
		t.Error("netlist inconsistent with cell count")
	}
	if it.Timing == nil || it.Timing.MaxArrival <= 0 {
		t.Error("STA requested but missing")
	}
	if it.Routable != (it.FailedConnections == 0 && it.Violations == 0) {
		t.Error("Routable flag inconsistent")
	}
}

func TestRunLadderAndBest(t *testing.T) {
	pc, cfg := prepared(t, 0.55)
	cfg.KSchedule = []float64{0, 0.001, 0.5}
	res, err := Run(context.Background(), pc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) != 3 {
		t.Fatalf("iterations = %d, want 3", len(res.Iterations))
	}
	// Areas essentially never shrink along the ladder. (K = 0 is
	// area-optimal per tree but not across trees: cross-tree logic
	// duplication can differ by a hair between covers, so allow 2%.)
	for i := 1; i < len(res.Iterations); i++ {
		if res.Iterations[i].CellArea < res.Iterations[0].CellArea*0.98 {
			t.Errorf("K=%g area %.0f far below min area %.0f",
				res.Iterations[i].K, res.Iterations[i].CellArea, res.Iterations[0].CellArea)
		}
	}
	best := res.Best()
	if best == nil {
		t.Fatal("no best iteration")
	}
	// Best is routable if any iteration is, else min-violation.
	anyRoutable := false
	for _, it := range res.Iterations {
		if it.Routable {
			anyRoutable = true
		}
	}
	if anyRoutable != res.FoundRoutable() {
		t.Error("FoundRoutable inconsistent")
	}
}

func TestStopAtFirstRoutable(t *testing.T) {
	pc, cfg := prepared(t, 0.40) // roomy die: K=0 should route
	cfg.KSchedule = []float64{0, 0.001, 0.5}
	cfg.StopAtFirstRoutable = true
	res, err := Run(context.Background(), pc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) == 3 && res.Iterations[0].Routable {
		t.Error("flow did not stop at first routable iteration")
	}
}

func TestSeededVsFreshPlacement(t *testing.T) {
	pc, cfg := prepared(t, 0.55)
	fresh, err := RunOnce(context.Background(), pc, 0.001, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FreshPlacement = false
	seeded, err := RunOnce(context.Background(), pc, 0.001, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Identical netlists, different placements.
	if fresh.NumCells != seeded.NumCells || fresh.CellArea != seeded.CellArea {
		t.Error("placement mode changed the mapping")
	}
	if fresh.WireLength == seeded.WireLength {
		t.Log("fresh and seeded placements coincide (possible on tiny designs)")
	}
}

func TestDefaultKSchedule(t *testing.T) {
	ks := DefaultKSchedule()
	if len(ks) != 14 || ks[0] != 0 || ks[len(ks)-1] != 1.0 {
		t.Errorf("DefaultKSchedule = %v", ks)
	}
	for i := 1; i < len(ks); i++ {
		if ks[i] <= ks[i-1] {
			t.Error("K ladder not increasing")
		}
	}
}

func TestFlowDeterminism(t *testing.T) {
	pc, cfg := prepared(t, 0.55)
	a, err := RunOnce(context.Background(), pc, 0.0025, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOnce(context.Background(), pc, 0.0025, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.CellArea != b.CellArea || a.WireLength != b.WireLength ||
		a.Violations != b.Violations || a.FailedConnections != b.FailedConnections {
		t.Errorf("flow not deterministic: %+v vs %+v", a, b)
	}
}

func TestRunWithRelaxation(t *testing.T) {
	// A die so tight that no K routes; relaxation must grow the
	// floorplan until one does (or exhaust the budget gracefully).
	spec := bench.SPLA.ScaledSpec(0.05)
	p, err := bench.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	d, err := bench.BuildSubject(p, bench.Direct, 0)
	if err != nil {
		t.Fatal(err)
	}
	area := float64(d.BaseGateCount()) * 4.6 / 0.80 // very tight
	layout, err := place.NewLayout(area, 1.0, 6.656)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Layout:         layout,
		PlaceOpts:      place.Options{Seed: 1},
		RouteOpts:      route.Options{CapacityScale: 1.98},
		FreshPlacement: true,
		KSchedule:      []float64{0, 0.001},
	}
	res, err := RunWithRelaxation(context.Background(), d, cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Attempts) == 0 {
		t.Fatal("no attempts")
	}
	it, accepted := res.Accepted()
	if it == nil {
		t.Fatal("no accepted iteration")
	}
	// Floorplans grow monotonically across attempts.
	for i := 1; i < len(res.Layouts); i++ {
		if res.Layouts[i].NumRows != res.Layouts[i-1].NumRows+1 {
			t.Error("relaxation must add one row per attempt")
		}
	}
	if res.Attempts[res.Final].FoundRoutable() && accepted.NumRows < layout.NumRows {
		t.Error("accepted layout smaller than the starting one")
	}
}

package flow

import (
	"context"
	"math/rand"
	"testing"

	"casyn/internal/mapper"
)

// TestECOChainDefaultLibrary pins the nil-Lib contract: a caller that
// never sets Config.Lib (meaning "the default library") must be able
// to chain RunStateful → RunECO → RunECO. Library compatibility is
// pointer identity and library.Default() allocates per call, so both
// entry points adopt the prepared state's library rather than
// defaulting a fresh — and never-compatible — one.
func TestECOChainDefaultLibrary(t *testing.T) {
	pc, cfg := prepared(t, 0.55)
	cfg.FreshPlacement = false
	ctx := context.Background()
	_, st, err := RunStateful(ctx, pc, 0.001, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// A second stateful run with the same nil-Lib config must reuse
	// the prefix already on pc, not rebuild it.
	prep := pc.Prep
	if _, _, err := RunStateful(ctx, pc, 0.001, cfg); err != nil {
		t.Fatal(err)
	}
	if pc.Prep != prep {
		t.Error("nil-Lib RunStateful rebuilt a compatible prefix")
	}

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2; i++ {
		edits := mapper.RandomEdits(st.Prep, rng, 1)
		it, next, err := RunECO(ctx, pc, st, edits, cfg)
		if err != nil {
			t.Fatalf("edit %d: %v", i, err)
		}
		if it.NumCells == 0 {
			t.Fatalf("edit %d: degenerate iteration", i)
		}
		st = next
	}

	// Fast mode rides the same adopted library.
	cfg.FastECORoute = true
	if _, _, err := RunECO(ctx, pc, st, mapper.RandomEdits(st.Prep, rng, 1), cfg); err != nil {
		t.Fatal(err)
	}
}

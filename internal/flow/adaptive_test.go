package flow

// Convergence regression for the closed-loop congestion controller
// (adaptive.go) and its differential guarantees. The flagship
// configurations are congested operating points (seeded placement,
// reduced routing capacity) where the baseline K is unroutable; the
// regression pins that the controller converges within its 3-routed-
// iteration budget and ends no worse than the best rung of the full
// 14-rung open-loop ladder — at a fraction of the covering work.

import (
	"context"
	"testing"

	"casyn/internal/bench"
)

// adaptiveCase is one congested operating point. The expectations were
// calibrated once and are pinned as regressions: these are exactly the
// regimes where closed-loop control pays for itself.
type adaptiveCase struct {
	class     bench.Class
	tightness float64
	capScale  float64
	// wantReuse asserts the first inflation re-covers only a strict
	// subset of the trees. False where the calibrated hot window spans
	// every territory (PDC is small and congests wall to wall).
	wantReuse bool
}

func (c adaptiveCase) name() string {
	if c.capScale == 1.1 {
		return c.class.String() + "-t55-cs11"
	}
	if c.tightness == 0.45 {
		return c.class.String() + "-t45-cs13"
	}
	return c.class.String() + "-t55-cs13"
}

// adaptiveCases are the flagship convergence configs. Seeded placement
// (FreshPlacement=false) is essential: the controller's feedback is
// region-local, and a fresh anneal per iteration would reshuffle the
// whole placement out from under the inflated windows.
var adaptiveCases = []adaptiveCase{
	{bench.SPLA, 0.45, 1.3, true},
	{bench.SPLA, 0.55, 1.3, true},
	{bench.PDC, 0.55, 1.1, false},
}

func (c adaptiveCase) prepare(t *testing.T) (*Context, Config) {
	t.Helper()
	pc, cfg := preparedClass(t, c.class, c.tightness)
	cfg.RouteOpts.CapacityScale = c.capScale
	cfg.FreshPlacement = false
	cfg.Workers = 4
	return pc, cfg
}

// TestAdaptiveConvergence is the satellite-3 regression: on each
// congested config the closed loop must converge within its routed
// budget and end with overflow no worse than the best rung the full
// open-loop ladder finds — while re-covering a fraction of the trees.
func TestAdaptiveConvergence(t *testing.T) {
	for _, tc := range adaptiveCases {
		tc := tc
		t.Run(tc.name(), func(t *testing.T) {
			t.Parallel()
			pc, cfg := tc.prepare(t)

			lcfg := cfg
			lcfg.KSchedule = DefaultKSchedule()
			ladder, err := Run(context.Background(), pc, lcfg)
			if err != nil {
				t.Fatal(err)
			}
			lbest := ladder.Best()
			if lbest == nil {
				t.Fatal("ladder produced no iterations")
			}

			res, err := RunAdaptive(context.Background(), pc, cfg, AdaptiveConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if res.RoutedIterations() > 3 {
				t.Errorf("adaptive used %d routed iterations, budget is 3", res.RoutedIterations())
			}
			if !res.Converged {
				t.Error("adaptive did not converge within its budget")
			}
			abest := res.Best()
			if abest == nil {
				t.Fatal("adaptive produced no iterations")
			}
			t.Logf("ladder best K=%g viol=%d routable=%v over %d rungs; adaptive viol=%d routable=%v in %d iterations",
				lbest.K, lbest.Violations, lbest.Routable, len(ladder.Iterations),
				abest.Violations, abest.Routable, res.RoutedIterations())
			if lbest.Routable && !abest.Routable {
				t.Errorf("ladder routed (K=%g) but adaptive did not (viol=%d)", lbest.K, abest.Violations)
			}
			if !abest.Routable && abest.Violations > lbest.Violations {
				t.Errorf("adaptive final overflow %d worse than best ladder rung %d",
					abest.Violations, lbest.Violations)
			}
			// ≥3× fewer covering iterations than the 14-rung ladder.
			if got := res.RoutedIterations() * 3; got > len(ladder.Iterations) {
				t.Errorf("adaptive used %d covering iterations, not ≥3× fewer than the %d-rung ladder",
					res.RoutedIterations(), len(ladder.Iterations))
			}
			// The controller must actually act on these congested configs
			// (the first inflation step exists and re-covers only a
			// fraction of the trees).
			if len(res.Iterations) > 1 {
				it1 := res.Iterations[1]
				if it1.ChangedCells == 0 || it1.InflatedCells == 0 {
					t.Error("controller inflated nothing on a congested config")
				}
				if it1.DirtyTrees == 0 {
					t.Error("inflation dirtied no trees")
				}
				if tc.wantReuse && it1.ReusedTrees == 0 {
					t.Errorf("field delta reused no trees (%d dirty): the re-cover was not local",
						it1.DirtyTrees)
				}
				if it1.MaxMult <= 1 {
					t.Errorf("field MaxMult %g after inflation", it1.MaxMult)
				}
			}
		})
	}
}

// TestAdaptiveBeatsLadderOnFlagship pins the headline result: on
// SPLA tightness 0.55 / capacity 1.3 the closed loop reaches a
// routable design while the entire 14-rung ladder never does.
func TestAdaptiveBeatsLadderOnFlagship(t *testing.T) {
	t.Parallel()
	pc, cfg := adaptiveCase{bench.SPLA, 0.55, 1.3, true}.prepare(t)
	res, err := RunAdaptive(context.Background(), pc, cfg, AdaptiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FoundRoutable() {
		t.Fatalf("adaptive failed to route the flagship config (best viol=%d over %d iterations)",
			res.Best().Violations, res.RoutedIterations())
	}
	if res.RoutedIterations() > 2 {
		t.Errorf("flagship config routed in %d iterations, regression baseline is 2", res.RoutedIterations())
	}
}

// TestAdaptiveDeterministic: repeat runs are byte-identical, including
// every controller decision — the loop is a pure function of its
// inputs (satellite 3's seeded-determinism clause).
func TestAdaptiveDeterministic(t *testing.T) {
	t.Parallel()
	pc, cfg := adaptiveCase{bench.SPLA, 0.55, 1.3, true}.prepare(t)
	a, err := RunAdaptive(context.Background(), pc, cfg, AdaptiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAdaptive(context.Background(), pc, cfg, AdaptiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sameAdaptive(t, "repeat", a, b)
}

// TestAdaptiveWorkerIndependence: the whole closed loop — controller
// decisions included — is byte-identical at 1 and 8 workers.
func TestAdaptiveWorkerIndependence(t *testing.T) {
	t.Parallel()
	pc, cfg := adaptiveCase{bench.SPLA, 0.55, 1.3, true}.prepare(t)
	serial := cfg
	serial.Workers = 1
	a, err := RunAdaptive(context.Background(), pc, serial, AdaptiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	wide := cfg
	wide.Workers = 8
	b, err := RunAdaptive(context.Background(), pc, wide, AdaptiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sameAdaptive(t, "workers-1-vs-8", a, b)
}

// sameAdaptive asserts two adaptive runs are identical: per-iteration
// flow results, controller decisions, convergence verdicts, and final
// fields.
func sameAdaptive(t *testing.T, tag string, a, b *AdaptiveResult) {
	t.Helper()
	if len(a.Iterations) != len(b.Iterations) {
		t.Fatalf("%s: %d vs %d iterations", tag, len(a.Iterations), len(b.Iterations))
	}
	for i := range a.Iterations {
		ai, bi := a.Iterations[i], b.Iterations[i]
		sameIteration(t, tag, ai.Iteration, bi.Iteration)
		if ai.ChangedCells != bi.ChangedCells || ai.InflatedCells != bi.InflatedCells ||
			ai.MaxMult != bi.MaxMult || ai.DirtyTrees != bi.DirtyTrees ||
			ai.ReusedTrees != bi.ReusedTrees {
			t.Errorf("%s: iteration %d controller state diverged:\n%+v\n%+v", tag, i, ai, bi)
		}
	}
	if a.BestIndex != b.BestIndex || a.Converged != b.Converged {
		t.Errorf("%s: verdicts diverged: best %d/%d converged %v/%v",
			tag, a.BestIndex, b.BestIndex, a.Converged, b.Converged)
	}
	if (a.Field == nil) != (b.Field == nil) {
		t.Fatalf("%s: field presence differs", tag)
	}
	if a.Field != nil {
		if len(a.Field.Mult) != len(b.Field.Mult) {
			t.Fatalf("%s: field shapes differ", tag)
		}
		for i := range a.Field.Mult {
			if a.Field.Mult[i] != b.Field.Mult[i] {
				t.Fatalf("%s: field cell %d: %g vs %g", tag, i, a.Field.Mult[i], b.Field.Mult[i])
			}
		}
	}
}

// TestAdaptiveBaselineMatchesStateful: the loop's first iteration is
// the plain uniform cover at BaseK — byte-identical to RunStateful —
// so the controller's deltas chain off the classic path.
func TestAdaptiveBaselineMatchesStateful(t *testing.T) {
	t.Parallel()
	pc, cfg := adaptiveCase{bench.SPLA, 0.55, 1.3, true}.prepare(t)
	acfg := AdaptiveConfig{}
	acfg.defaults()
	it, _, err := RunStateful(context.Background(), pc, acfg.BaseK, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAdaptive(context.Background(), pc, cfg, AdaptiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sameIteration(t, "baseline", it, res.Iterations[0].Iteration)
}

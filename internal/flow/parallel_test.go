package flow

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"casyn/internal/bench"
	"casyn/internal/library"
	"casyn/internal/place"
	"casyn/internal/route"
	"casyn/internal/runstage"
)

// preparedClass is prepared() for an arbitrary benchmark class. The
// library is created once and shared by every Run under comparison so
// that netlist cell pointers are comparable.
func preparedClass(t *testing.T, class bench.Class, tightness float64) (*Context, Config) {
	t.Helper()
	spec := class.ScaledSpec(0.05)
	p, err := bench.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	d, err := bench.BuildSubject(p, bench.Direct, 0)
	if err != nil {
		t.Fatal(err)
	}
	area := float64(d.BaseGateCount()) * 4.6 / tightness
	layout, err := place.NewLayout(area, 1.0, 6.656)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Layout:         layout,
		Lib:            library.Default(),
		PlaceOpts:      place.Options{Seed: 1},
		RouteOpts:      route.Options{CapacityScale: 1.98},
		FreshPlacement: true,
	}
	pc, err := Prepare(context.Background(), d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pc, cfg
}

// sameIteration compares every deterministic field of two iterations,
// including the mapped netlist (cell pointers come from the shared
// library, so DeepEqual is exact).
func sameIteration(t *testing.T, tag string, a, b Iteration) {
	t.Helper()
	if a.K != b.K || a.CellArea != b.CellArea || a.NumCells != b.NumCells ||
		a.DuplicatedCells != b.DuplicatedCells || a.Utilization != b.Utilization ||
		a.Violations != b.Violations || a.FailedConnections != b.FailedConnections ||
		a.MaxCongestion != b.MaxCongestion || a.WireLength != b.WireLength ||
		a.Routable != b.Routable || a.Skipped != b.Skipped {
		t.Errorf("%s: K=%g iterations diverged:\nserial   %+v\nparallel %+v", tag, a.K, a, b)
	}
	if !reflect.DeepEqual(a.Netlist, b.Netlist) {
		t.Errorf("%s: K=%g mapped netlists diverged", tag, a.K)
	}
}

// TestRunWorkersDeterminism is the tentpole acceptance check: the
// parallel sweep must produce a Result identical to the serial one on
// scaled SPLA and PDC.
func TestRunWorkersDeterminism(t *testing.T) {
	for _, class := range []bench.Class{bench.SPLA, bench.PDC} {
		t.Run(class.String(), func(t *testing.T) {
			pc, cfg := preparedClass(t, class, 0.55)
			cfg.KSchedule = []float64{0, 0.001, 0.01, 0.5}

			cfg.Workers = 1
			serial, err := Run(context.Background(), pc, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Workers = 8
			parallel, err := Run(context.Background(), pc, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(serial.Iterations) != len(parallel.Iterations) {
				t.Fatalf("iteration counts diverged: %d vs %d",
					len(serial.Iterations), len(parallel.Iterations))
			}
			if serial.BestIndex != parallel.BestIndex {
				t.Errorf("BestIndex diverged: %d vs %d", serial.BestIndex, parallel.BestIndex)
			}
			for i := range serial.Iterations {
				sameIteration(t, class.String(), serial.Iterations[i], parallel.Iterations[i])
			}
		})
	}
}

// TestParallelSweepDegradesOnInjectedFailure re-runs the PR 1 degrade
// contract under the parallel sweep: a failed K is recorded in ladder
// order with its typed error while the other workers' iterations
// survive.
func TestParallelSweepDegradesOnInjectedFailure(t *testing.T) {
	pc, cfg := prepared(t, 0.55)
	injected := errors.New("injected route failure")
	cfg.KSchedule = []float64{0, 0.001, 0.5}
	cfg.Workers = 4
	cfg.Hooks = &runstage.Hooks{Faults: []runstage.Fault{
		{Stage: runstage.StageRoute, K: 0.001, Err: injected},
	}}
	res, err := Run(context.Background(), pc, cfg)
	if err != nil {
		t.Fatalf("parallel Run must degrade, not fail: %v", err)
	}
	if len(res.Iterations) != 3 {
		t.Fatalf("iterations = %d, want 3", len(res.Iterations))
	}
	bad := res.Iterations[1]
	if !bad.Skipped || !errors.Is(bad.Err, injected) {
		t.Fatalf("K=0.001 not recorded as the injected failure: %+v", bad.Err)
	}
	se := runstage.AsStage(bad.Err)
	if se == nil || se.Stage != runstage.StageRoute || se.K != 0.001 {
		t.Errorf("StageError = %+v, want route/0.001", se)
	}
	if res.Iterations[0].Skipped || res.Iterations[2].Skipped {
		t.Error("healthy iterations must survive a sibling worker's failure")
	}
	if best := res.Best(); best == nil || best.Skipped {
		t.Error("Best() must come from the survivors")
	}
}

// TestParallelSweepIsolatesPanic: a panic inside one worker's stage
// must not take down the pool.
func TestParallelSweepIsolatesPanic(t *testing.T) {
	pc, cfg := prepared(t, 0.55)
	cfg.KSchedule = []float64{0, 0.001, 0.5}
	cfg.Workers = 4
	cfg.Hooks = &runstage.Hooks{Faults: []runstage.Fault{
		{Stage: runstage.StagePlace, K: 0.5, Panic: "injected placer panic"},
	}}
	res, err := Run(context.Background(), pc, cfg)
	if err != nil {
		t.Fatalf("parallel Run must isolate the panic: %v", err)
	}
	se := runstage.AsStage(res.Iterations[2].Err)
	if se == nil || !se.Panicked || se.PanicValue != "injected placer panic" {
		t.Fatalf("panic not preserved through the pool: %+v", res.Iterations[2].Err)
	}
	if res.Best() == nil || res.Best().Skipped {
		t.Error("Best() must come from the surviving iterations")
	}
}

// TestParallelEveryKFailingErrors: the all-failed contract holds when
// the failures happen on different workers.
func TestParallelEveryKFailingErrors(t *testing.T) {
	pc, cfg := prepared(t, 0.55)
	injected := errors.New("map always fails")
	cfg.KSchedule = []float64{0, 0.001}
	cfg.Workers = 2
	cfg.Hooks = &runstage.Hooks{Faults: []runstage.Fault{
		{Stage: runstage.StageMap, AllK: true, Err: injected},
	}}
	res, err := Run(context.Background(), pc, cfg)
	if err == nil {
		t.Fatal("parallel Run must error when every K fails")
	}
	if !errors.Is(err, injected) {
		t.Errorf("error chain lost the cause: %v", err)
	}
	if res == nil || len(res.Iterations) != 2 || res.BestIndex != -1 {
		t.Fatalf("full skipped record expected, got %+v", res)
	}
}

// TestParallelStopAtFirstRoutable: under speculation the sweep must
// still truncate the result at the first routable K and cancel the
// higher-K workers instead of waiting for them.
func TestParallelStopAtFirstRoutable(t *testing.T) {
	pc, cfg := prepared(t, 0.40) // roomy die: K=0 should route
	cfg.KSchedule = []float64{0, 0.001, 0.5}
	cfg.StopAtFirstRoutable = true
	cfg.Workers = 4
	// A stalled highest-K iteration proves the cancellation: without
	// it the sweep would block a minute on the speculative worker.
	cfg.Hooks = &runstage.Hooks{Faults: []runstage.Fault{
		{Stage: runstage.StageMap, K: 0.5, Delay: time.Minute},
	}}
	start := time.Now()
	res, err := Run(context.Background(), pc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("speculative workers not canceled: sweep took %v", elapsed)
	}
	if !res.FoundRoutable() {
		t.Skip("scaled benchmark did not route on this die; nothing to truncate")
	}
	last := res.Iterations[len(res.Iterations)-1]
	if !last.Routable {
		t.Errorf("result must be truncated at the first routable K, ends with %+v", last)
	}
	for _, it := range res.Iterations[:len(res.Iterations)-1] {
		if it.Routable {
			t.Errorf("iteration K=%g before the stop point is routable", it.K)
		}
	}
}

// TestParallelRunCanceledReturnsPartial: parent cancellation stops the
// pool promptly and reports the ctx cause with the partial result.
func TestParallelRunCanceledReturnsPartial(t *testing.T) {
	pc, cfg := prepared(t, 0.55)
	cfg.KSchedule = []float64{0, 0.001, 0.5}
	cfg.Workers = 2
	cfg.Hooks = &runstage.Hooks{Faults: []runstage.Fault{
		{Stage: runstage.StageMap, AllK: true, Delay: time.Minute},
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := Run(ctx, pc, cfg)
	if err == nil {
		t.Fatal("canceled parallel Run must return an error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error must wrap the ctx cause: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancellation not prompt: %v", elapsed)
	}
	if res == nil {
		t.Fatal("partial result must be returned on cancellation")
	}
	if len(res.Iterations) != 0 {
		t.Errorf("every iteration was stalled past the deadline, none may complete; got %d", len(res.Iterations))
	}
}

package flow

// Closed-loop congestion control. The open-loop methodology sweeps a
// global 14-rung K ladder and picks the best rung; RunAdaptive instead
// closes the loop on the routed congestion map: map once at a low
// uniform baseline K, route, and inflate a spatial K-field (per-gcell
// multipliers, cover/kfield.go) only where the smoothed congestion map
// is over capacity — then re-cover just the partition trees whose
// territory intersects the inflated windows (mapper.MapFieldDelta) and
// re-route, iterating until the design routes, the overflow stops
// improving, or the routed-iteration budget is spent.
//
// Controller law (inflateField): the congestion map is smoothed with a
// 3×3 box filter (one inflation step reaches one gcell beyond the hot
// window — the dilation that lets wires detour around, not just out
// of, a hotspot); a gcell whose smoothed congestion exceeds Trigger
// has its multiplier scaled by 1 + Gain·excess, capped at MaxMult.
// Hysteresis: once hot, a cell keeps inflating while its smoothed
// congestion stays above Trigger − Hysteresis, so a cell oscillating
// around the trigger cannot stall the loop. Multipliers only ever
// grow (monotone), and every step is a pure function of the previous
// routed congestion map, so the whole loop is deterministic — the
// differential harness proves byte-identical results across worker
// counts.

import (
	"context"
	"fmt"

	"casyn/internal/cover"
	"casyn/internal/obs"
)

// adaptiveOverflowBounds buckets the per-iteration routed overflow for
// the "flow.adaptive.overflow" histogram.
var adaptiveOverflowBounds = []float64{0, 1, 10, 100, 1000, 10000}

// AdaptiveConfig tunes the closed-loop controller. The zero value of
// every knob means "use the default".
type AdaptiveConfig struct {
	// BaseK is the uniform baseline congestion factor the loop starts
	// from (default 0.001, the low end of the paper ladder). It must be
	// positive for the field to have any effect — the field multiplies
	// the K·WIRE term — so 0 takes the default.
	BaseK float64
	// MaxIterations bounds the routed iterations, each a full
	// map → place → route pass (default 3, the paper-motivated budget:
	// one baseline plus two controller steps).
	MaxIterations int
	// Trigger is the smoothed-congestion level at which a gcell's
	// multiplier starts inflating (default 0.9: react just before
	// edges overflow, since the 3×3 smoothing dilutes peaks).
	Trigger float64
	// Hysteresis widens the trigger downward for cells that have
	// already inflated (default 0.1): a hot cell keeps inflating while
	// its smoothed congestion stays above Trigger − Hysteresis.
	Hysteresis float64
	// Gain scales each inflation step: mult ← mult·(1 + Gain·excess)
	// where excess is the congestion signal above the (hysteresis-
	// adjusted) trigger. Default 24, calibrated on the congested
	// benchmark suite: strong enough to carry a hot window across the
	// K ladder's decades in two compounding steps, gentle enough not
	// to overshoot into area-driven congestion.
	Gain float64
	// MaxMult caps multipliers (default 1000: at the default BaseK the
	// local effective K tops out at 1.0, the top of the paper ladder).
	MaxMult float64
}

func (c *AdaptiveConfig) defaults() {
	if c.BaseK <= 0 {
		c.BaseK = 0.001
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 3
	}
	if c.Trigger <= 0 {
		c.Trigger = 0.9
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 0.1
	}
	if c.Gain <= 0 {
		c.Gain = 24
	}
	if c.MaxMult <= 0 {
		c.MaxMult = 1000
	}
}

// AdaptiveIteration is one routed iteration of the closed loop: the
// flow iteration plus the controller state that produced it.
type AdaptiveIteration struct {
	Iteration
	// ChangedCells counts the gcells the controller inflated to
	// produce this iteration's field (0 for the baseline iteration).
	ChangedCells int
	// InflatedCells counts the field cells with multiplier > 1;
	// MaxMult is the largest multiplier (1s for the baseline).
	InflatedCells int
	MaxMult       float64
	// DirtyTrees / ReusedTrees count the partition trees re-covered
	// vs carried over by the field delta (baseline covers all trees).
	DirtyTrees  int
	ReusedTrees int
}

// AdaptiveResult is the outcome of the closed loop.
type AdaptiveResult struct {
	Iterations []AdaptiveIteration
	// BestIndex points at the accepted iteration under the sweep's
	// rules: first routable, else minimum violations. -1 when none
	// completed.
	BestIndex int
	// Converged reports the loop stopped on its own — routable,
	// overflow no longer improving, or nothing left above the trigger
	// — rather than exhausting MaxIterations.
	Converged bool
	// Field is the final K-field (reporting; nil if the baseline
	// iteration failed before routing).
	Field *cover.KField
}

// Best returns the accepted iteration, nil when none completed.
func (r *AdaptiveResult) Best() *Iteration {
	if r.BestIndex < 0 {
		return nil
	}
	return &r.Iterations[r.BestIndex].Iteration
}

// FoundRoutable reports whether any iteration routed cleanly.
func (r *AdaptiveResult) FoundRoutable() bool {
	return r.BestIndex >= 0 && r.Iterations[r.BestIndex].Routable
}

// RoutedIterations counts completed routed iterations (reporting; the
// convergence tests assert ≤ MaxIterations).
func (r *AdaptiveResult) RoutedIterations() int { return len(r.Iterations) }

// RunAdaptive runs the closed-loop congestion controller (see the
// file comment for the loop and the controller law). pc must be
// Prepare'd; the mapping prefix is built here if missing, landing on
// pc for reuse. cfg.KSchedule is ignored — the loop fixes K at
// acfg.BaseK and steers the spatial field instead.
//
// The loop is recorded under a "flow.adaptive" span: each routed
// iteration bumps the "flow.adaptive_iterations" counter and lands its
// overflow on the "flow.adaptive.overflow" histogram; each controller
// step runs under a "flow.adaptive.controller" span with
// "flow.adaptive.changed_cells" / "flow.adaptive.dirty_trees"
// counters.
//
// Determinism: with a fixed placement seed the whole loop is a pure
// function of its inputs for any cfg.Workers value — every stage it
// drives is deterministic, and the controller reads only routed state.
func RunAdaptive(ctx context.Context, pc *Context, cfg Config, acfg AdaptiveConfig) (res *AdaptiveResult, err error) {
	acfg.defaults()
	// A nil Lib means "the default library"; adopt the prefix's exact
	// pointer as RunStateful does (library compatibility is pointer
	// identity).
	if cfg.Lib == nil && pc.Prep != nil {
		cfg.Lib = pc.Prep.Lib()
	}
	cfg.defaults()
	if !pc.Prep.Compatible(cfg.Method, cfg.Lib) {
		if err := PrepareMapping(ctx, pc, cfg); err != nil {
			return nil, err
		}
	}
	rec := obs.From(ctx)
	var span *obs.Span
	ctx, span = rec.StartSpan(ctx, "flow.adaptive")
	span.SetK(acfg.BaseK)
	defer func() { span.End(err) }()
	overflowHist := rec.Histogram("flow.adaptive.overflow", adaptiveOverflowBounds)

	res = &AdaptiveResult{BestIndex: -1}
	record := func(ai AdaptiveIteration) {
		MergeMetrics(ctx, ai.Metrics)
		res.Iterations = append(res.Iterations, ai)
		rec.Add("flow.adaptive_iterations", 1)
		overflowHist.Observe(float64(ai.Violations))
		i := len(res.Iterations) - 1
		if res.BestIndex < 0 ||
			(ai.Routable && !res.Iterations[res.BestIndex].Routable) ||
			(ai.Routable == res.Iterations[res.BestIndex].Routable &&
				ai.Violations < res.Iterations[res.BestIndex].Violations) {
			res.BestIndex = i
		}
	}

	// Baseline iteration: classic uniform cover at BaseK.
	it, st, err := runECOIteration(ctx, pc, cfg, acfg.BaseK, ecoIn{prep: pc.Prep})
	if err != nil {
		MergeMetrics(ctx, it.Metrics)
		return res, fmt.Errorf("flow: adaptive baseline: %w", err)
	}
	record(AdaptiveIteration{Iteration: it, MaxMult: 1})

	grid := st.Route.Result().Grid
	field, err := cover.NewKField(grid.Origin, grid.CellW, grid.CellH, grid.NX, grid.NY)
	if err != nil {
		return res, err
	}
	res.Field = field
	// hot is the hysteresis memory: cells that have inflated at least
	// once. terr is computed once — the prefix (and so every tree's
	// territory) is fixed across the loop; only the field moves.
	hot := make([]bool, len(field.Mult))
	terr := pc.Prep.TreeTerritories()

	for len(res.Iterations) < acfg.MaxIterations {
		last := &res.Iterations[len(res.Iterations)-1]
		if last.Routable {
			res.Converged = true
			break
		}
		// Controller step: pure function of the routed congestion map.
		_, cSpan := rec.StartSpan(ctx, "flow.adaptive.controller")
		cong := grid.CongestionMap()
		next := field.Clone()
		changed, nChanged := inflateField(next, cong, hot, acfg)
		rec.Add("flow.adaptive.changed_cells", int64(nChanged))
		cSpan.End(nil)
		if nChanged == 0 {
			// Nothing above the trigger (smoothing can dilute isolated
			// overflow below it) or everything at MaxMult: the
			// controller has no lever left.
			res.Converged = true
			break
		}
		dirty := cover.DirtyTreesForField(terr, next, changed)
		nDirty := 0
		for _, d := range dirty {
			if d {
				nDirty++
			}
		}
		rec.Add("flow.adaptive.dirty_trees", int64(nDirty))

		prevViolations := last.Violations
		it, stN, err := runECOIteration(ctx, pc, cfg, acfg.BaseK,
			ecoIn{prep: pc.Prep, field: next, fieldPrev: st.Cover, fieldDirty: dirty})
		if err != nil {
			MergeMetrics(ctx, it.Metrics)
			return res, fmt.Errorf("flow: adaptive iteration %d: %w", len(res.Iterations), err)
		}
		record(AdaptiveIteration{
			Iteration:     it,
			ChangedCells:  nChanged,
			InflatedCells: next.InflatedCells(),
			MaxMult:       next.MaxMult(),
			DirtyTrees:    nDirty,
			ReusedTrees:   len(dirty) - nDirty,
		})
		field, st = next, stN
		grid = stN.Route.Result().Grid
		res.Field = field
		if !it.Routable && it.Violations >= prevViolations {
			// Overflow stopped improving: stop and keep the best seen.
			res.Converged = true
			break
		}
	}
	if last := &res.Iterations[len(res.Iterations)-1]; last.Routable {
		res.Converged = true
	}
	return res, nil
}

// inflateField applies one controller step to f in place: smooth the
// congestion map, inflate every cell whose smoothed congestion exceeds
// its (hysteresis-adjusted) trigger, and mark which cells changed.
// cong is indexed [y][x] with f's exact dimensions (both come from the
// same routing-grid geometry). hot is the persistent hysteresis
// memory, updated in place. Returns the row-major changed mask and the
// changed-cell count. Multipliers never decrease, so iterating this
// step yields a monotone non-decreasing field.
func inflateField(f *cover.KField, cong [][]float64, hot []bool, acfg AdaptiveConfig) ([]bool, int) {
	sm := smooth3x3(cong, f.NX, f.NY)
	changed := make([]bool, f.NX*f.NY)
	n := 0
	for y := 0; y < f.NY; y++ {
		for x := 0; x < f.NX; x++ {
			i := y*f.NX + x
			trig := acfg.Trigger
			if hot[i] {
				trig -= acfg.Hysteresis
			}
			// The signal is the larger of the cell's own congestion and
			// its smoothed neighborhood: smoothing dilates hot windows
			// outward, the raw term guarantees an isolated over-capacity
			// cell can never be averaged below the trigger (the
			// controller must always have a lever while overflow > 0).
			sig := sm[i]
			if cong[y][x] > sig {
				sig = cong[y][x]
			}
			excess := sig - trig
			if excess <= 0 {
				continue
			}
			hot[i] = true
			nm := f.Mult[i] * (1 + acfg.Gain*excess)
			if nm > acfg.MaxMult {
				nm = acfg.MaxMult
			}
			if nm > f.Mult[i] {
				f.Mult[i] = nm
				changed[i] = true
				n++
			}
		}
	}
	return changed, n
}

// smooth3x3 box-filters the congestion map (border cells average their
// in-bounds neighborhood), returning a row-major nx*ny slice.
func smooth3x3(cong [][]float64, nx, ny int) []float64 {
	out := make([]float64, nx*ny)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			sum, cnt := 0.0, 0
			for dy := -1; dy <= 1; dy++ {
				yy := y + dy
				if yy < 0 || yy >= ny {
					continue
				}
				for dx := -1; dx <= 1; dx++ {
					xx := x + dx
					if xx < 0 || xx >= nx {
						continue
					}
					sum += cong[yy][xx]
					cnt++
				}
			}
			out[y*nx+x] = sum / float64(cnt)
		}
	}
	return out
}

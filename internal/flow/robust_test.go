package flow

import (
	"context"
	"errors"
	"testing"
	"time"

	"casyn/internal/bench"
	"casyn/internal/place"
	"casyn/internal/route"
	"casyn/internal/runstage"
)

// TestSweepDegradesOnInjectedFailure injects a router failure at one K
// of a three-step ladder and checks the degrade contract: the failed
// iteration is recorded with its typed error, the other Ks still run,
// and Best() picks among the survivors.
func TestSweepDegradesOnInjectedFailure(t *testing.T) {
	pc, cfg := prepared(t, 0.55)
	injected := errors.New("injected route failure")
	cfg.KSchedule = []float64{0, 0.001, 0.5}
	cfg.Hooks = &runstage.Hooks{Faults: []runstage.Fault{
		{Stage: runstage.StageRoute, K: 0.001, Err: injected},
	}}
	res, err := Run(context.Background(), pc, cfg)
	if err != nil {
		t.Fatalf("Run must degrade, not fail: %v", err)
	}
	if len(res.Iterations) != 3 {
		t.Fatalf("iterations = %d, want 3 (ladder must continue past the failure)", len(res.Iterations))
	}
	bad := res.Iterations[1]
	if !bad.Skipped || bad.Err == nil {
		t.Fatalf("K=0.001 iteration not recorded as failed: %+v", bad)
	}
	se := runstage.AsStage(bad.Err)
	if se == nil {
		t.Fatalf("iteration error is not a StageError: %v", bad.Err)
	}
	if se.Stage != runstage.StageRoute || se.K != 0.001 {
		t.Errorf("StageError = stage %q K %g, want route/0.001", se.Stage, se.K)
	}
	if !errors.Is(bad.Err, injected) {
		t.Error("injected cause lost from the error chain")
	}
	for _, i := range []int{0, 2} {
		if res.Iterations[i].Skipped || res.Iterations[i].NumCells == 0 {
			t.Errorf("K=%g iteration should have completed: %+v", res.Iterations[i].K, res.Iterations[i])
		}
	}
	best := res.Best()
	if best == nil {
		t.Fatal("no best iteration among the survivors")
	}
	if best.Skipped {
		t.Error("Best() selected a skipped iteration")
	}
	if failed := res.FailedIterations(); len(failed) != 1 || failed[0].K != 0.001 {
		t.Errorf("FailedIterations = %+v, want exactly the K=0.001 row", failed)
	}
}

// TestSweepIsolatesInjectedPanic panics inside the place stage at one
// K and checks the panic surfaces as a typed StageError with the
// recovered value and stack, while the rest of the ladder completes.
func TestSweepIsolatesInjectedPanic(t *testing.T) {
	pc, cfg := prepared(t, 0.55)
	cfg.KSchedule = []float64{0, 0.001, 0.5}
	cfg.Hooks = &runstage.Hooks{Faults: []runstage.Fault{
		{Stage: runstage.StagePlace, K: 0.5, Panic: "injected placer panic"},
	}}
	res, err := Run(context.Background(), pc, cfg)
	if err != nil {
		t.Fatalf("Run must isolate the panic: %v", err)
	}
	if len(res.Iterations) != 3 {
		t.Fatalf("iterations = %d, want 3", len(res.Iterations))
	}
	bad := res.Iterations[2]
	se := runstage.AsStage(bad.Err)
	if se == nil {
		t.Fatalf("panicked iteration error = %v, want StageError", bad.Err)
	}
	if !se.Panicked || se.PanicValue != "injected placer panic" {
		t.Errorf("panic not preserved: %+v", se)
	}
	if se.Stage != runstage.StagePlace || len(se.Stack) == 0 {
		t.Errorf("stage/stack not recorded: stage=%q stack=%d bytes", se.Stage, len(se.Stack))
	}
	if res.Best() == nil || res.Best().Skipped {
		t.Error("Best() must come from the surviving iterations")
	}
}

// TestEveryKFailingErrors: when the whole ladder fails, Run reports an
// error (joining the per-K causes) alongside the full skipped record.
func TestEveryKFailingErrors(t *testing.T) {
	pc, cfg := prepared(t, 0.55)
	injected := errors.New("map always fails")
	cfg.KSchedule = []float64{0, 0.001}
	cfg.Hooks = &runstage.Hooks{Faults: []runstage.Fault{
		{Stage: runstage.StageMap, AllK: true, Err: injected},
	}}
	res, err := Run(context.Background(), pc, cfg)
	if err == nil {
		t.Fatal("Run must error when every K fails")
	}
	if !errors.Is(err, injected) {
		t.Errorf("error chain lost the cause: %v", err)
	}
	if res == nil || len(res.Iterations) != 2 {
		t.Fatalf("full skipped record expected, got %+v", res)
	}
	if res.BestIndex != -1 || res.Best() != nil {
		t.Error("no iteration completed, Best must be nil")
	}
}

// TestStageTimeoutDegrades stalls the route stage past the per-stage
// budget at one K; the iteration must fail with Timeout() true and the
// ladder must continue.
func TestStageTimeoutDegrades(t *testing.T) {
	pc, cfg := prepared(t, 0.55)
	cfg.KSchedule = []float64{0, 0.001}
	// The budget must hold healthy stages even with -race
	// instrumentation overhead on a loaded single-CPU machine, while
	// the stalled stage still proves enforcement: without it the run
	// would block the full 30 s delay.
	cfg.StageTimeout = 2 * time.Second
	cfg.Hooks = &runstage.Hooks{Faults: []runstage.Fault{
		{Stage: runstage.StageRoute, K: 0.001, Delay: 30 * time.Second},
	}}
	start := time.Now()
	res, err := Run(context.Background(), pc, cfg)
	if err != nil {
		t.Fatalf("Run must degrade on a stage timeout: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Errorf("stage budget not enforced: run took %v", elapsed)
	}
	bad := res.Iterations[1]
	se := runstage.AsStage(bad.Err)
	if se == nil || !se.Timeout() {
		t.Fatalf("want a timeout StageError, got %v", bad.Err)
	}
	if !errors.Is(bad.Err, context.DeadlineExceeded) {
		t.Error("timeout must satisfy errors.Is(err, context.DeadlineExceeded)")
	}
	if res.Iterations[0].Skipped {
		t.Error("K=0 iteration should be untouched by the K=0.001 stall")
	}
}

// TestIterationTimeoutDegrades stalls one iteration past the
// per-iteration budget; it must be skipped while the rest of the
// ladder — under the same budget — completes.
func TestIterationTimeoutDegrades(t *testing.T) {
	pc, cfg := prepared(t, 0.55)
	cfg.KSchedule = []float64{0, 0.001, 0.5}
	cfg.IterationTimeout = 30 * time.Second
	cfg.Hooks = &runstage.Hooks{Faults: []runstage.Fault{
		{Stage: runstage.StageMap, K: 0.001, Delay: time.Minute},
	}}
	// Shrink only the faulted iteration's budget window by using a
	// short global budget; healthy iterations finish well inside it.
	cfg.IterationTimeout = 2 * time.Second
	res, err := Run(context.Background(), pc, cfg)
	if err != nil {
		t.Fatalf("Run must degrade on an iteration timeout: %v", err)
	}
	if len(res.Iterations) != 3 {
		t.Fatalf("iterations = %d, want 3", len(res.Iterations))
	}
	bad := res.Iterations[1]
	if !bad.Skipped || !errors.Is(bad.Err, context.DeadlineExceeded) {
		t.Fatalf("stalled iteration not recorded as timeout: %+v", bad.Err)
	}
	if res.Iterations[0].Skipped || res.Iterations[2].Skipped {
		t.Error("healthy iterations must complete under the same budget")
	}
}

// TestRunCanceledReturnsPartial: when the parent context dies mid-
// sweep, Run stops the ladder, returns the iterations completed so
// far, and reports the cancellation.
func TestRunCanceledReturnsPartial(t *testing.T) {
	pc, cfg := prepared(t, 0.55)
	cfg.KSchedule = []float64{0, 0.001, 0.5}
	cfg.Hooks = &runstage.Hooks{Faults: []runstage.Fault{
		{Stage: runstage.StageMap, K: 0.001, Delay: time.Minute},
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := Run(ctx, pc, cfg)
	if err == nil {
		t.Fatal("canceled Run must return an error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error must wrap the ctx cause: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancellation not prompt: %v", elapsed)
	}
	if res == nil {
		t.Fatal("partial result must be returned on cancellation")
	}
	if len(res.Iterations) >= 3 {
		t.Errorf("ladder must stop early on parent cancellation, ran %d iterations", len(res.Iterations))
	}
}

// TestRunOnceDeadlineStopsMidIteration is the acceptance check for
// cooperative cancellation: a short deadline on a large layered
// benchmark must stop RunOnce mid-iteration within one check interval
// of the inner loops, not after the iteration finishes.
func TestRunOnceDeadlineStopsMidIteration(t *testing.T) {
	spec := bench.TooLargeLayered().Scaled(0.5)
	d, err := bench.BuildLayeredSubject(spec, bench.Direct)
	if err != nil {
		t.Fatal(err)
	}
	area := float64(d.BaseGateCount()) * 4.6 / 0.58
	layout, err := place.NewLayout(area, 1.0, 6.656)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Layout:         layout,
		PlaceOpts:      place.Options{Seed: 1},
		RouteOpts:      route.Options{CapacityScale: 1.98},
		FreshPlacement: true,
	}
	pc, err := Prepare(context.Background(), d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = RunOnce(ctx, pc, 0.001, cfg)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("RunOnce must fail under an expired deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error must wrap context.DeadlineExceeded: %v", err)
	}
	se := runstage.AsStage(err)
	if se == nil || !se.Timeout() {
		t.Errorf("want a timeout StageError, got %v", err)
	}
	// Generous bound: far below a full iteration on this design, far
	// above any single cooperative check interval.
	if elapsed > 5*time.Second {
		t.Errorf("RunOnce took %v after a 30ms deadline; cancellation not cooperative", elapsed)
	}
}

// TestPrepareCanceled: the once-per-design preparation is itself
// cancelable and reports the prepare stage.
func TestPrepareCanceled(t *testing.T) {
	spec := bench.SPLA.ScaledSpec(0.05)
	p, err := bench.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	d, err := bench.BuildSubject(p, bench.Direct, 0)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := place.NewLayout(float64(d.BaseGateCount())*4.6/0.58, 1.0, 6.656)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = Prepare(ctx, d, Config{Layout: layout, FreshPlacement: true})
	if err == nil {
		t.Fatal("Prepare must fail under a canceled ctx")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error must wrap context.Canceled: %v", err)
	}
	se := runstage.AsStage(err)
	if se == nil || se.Stage != runstage.StagePrepare || !se.Canceled() {
		t.Errorf("want a canceled prepare StageError, got %v", err)
	}
}

package flow

import (
	"context"
	"errors"
	"testing"
	"time"

	"casyn/internal/obs"
	"casyn/internal/runstage"
)

// TestRunOnceMetricsSnapshot checks the shape of one iteration's
// Metrics: nil without a recorder, and with one — a span per pipeline
// stage, the congestion histogram, the coverer's DP counters, and
// stage timings surfaced from inside runstage.Run.
func TestRunOnceMetricsSnapshot(t *testing.T) {
	pc, cfg := prepared(t, 0.55)

	it, err := RunOnce(context.Background(), pc, 0.001, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if it.Metrics != nil {
		t.Fatal("Metrics set without a recorder on ctx")
	}

	ctx := obs.WithRecorder(context.Background(), obs.New())
	it, err = RunOnce(ctx, pc, 0.001, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := it.Metrics
	if m == nil {
		t.Fatal("Metrics missing with a recorder on ctx")
	}
	counts := m.Events.SpanCounts()
	for _, name := range []string{
		"flow.iteration", "stage.map", "stage.place", "stage.route",
		"map.partition", "map.cover", "map.reconstruct", "route.first_pass",
	} {
		if counts[name] == 0 {
			t.Errorf("no %q span in iteration metrics", name)
		}
	}
	if _, ok := m.Events.Histograms["route.congestion"]; !ok {
		t.Error("congestion histogram missing")
	}
	if _, ok := m.Events.Histograms["route.net_hpwl_um"]; !ok {
		t.Error("net HPWL histogram missing")
	}
	if m.Events.Counters["cover.solutions"] == 0 {
		t.Error("cover.solutions counter missing or zero")
	}
	if int(m.Events.Counters["map.cells"]) != it.NumCells {
		t.Errorf("map.cells = %d, want %d", m.Events.Counters["map.cells"], it.NumCells)
	}
	wantStages := []runstage.Stage{runstage.StageMap, runstage.StagePlace, runstage.StageRoute}
	if len(m.Stages) != len(wantStages) {
		t.Fatalf("stages = %v, want %v", m.Stages, wantStages)
	}
	for i, st := range m.Stages {
		if st.Stage != wantStages[i] {
			t.Errorf("stage %d = %s, want %s", i, st.Stage, wantStages[i])
		}
		if st.Wall <= 0 {
			t.Errorf("stage %s wall = %v, want > 0", st.Stage, st.Wall)
		}
		if st.Err != "" {
			t.Errorf("stage %s err = %q", st.Stage, st.Err)
		}
	}
	if w, ok := m.StageWall(runstage.StageMap); !ok || w <= 0 {
		t.Errorf("StageWall(map) = %v, %v", w, ok)
	}
	if _, ok := m.StageWall(runstage.StageSTA); ok {
		t.Error("StageWall(sta) reported for a stage that never ran")
	}
}

// TestMetricsWorkerIndependence is the determinism contract: the
// deterministic fields of every iteration's Metrics — and of the
// run-level merged recorder — are byte-identical between a serial
// sweep and a 4-worker sweep.
func TestMetricsWorkerIndependence(t *testing.T) {
	pc, cfg := prepared(t, 0.55)
	cfg.KSchedule = []float64{0, 0.001, 0.5}

	type sweep struct {
		iters []string
		run   string
	}
	runSweep := func(workers int) sweep {
		c := cfg
		c.Workers = workers
		rec := obs.New()
		ctx := obs.WithRecorder(context.Background(), rec)
		res, err := Run(ctx, pc, c)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var s sweep
		for _, it := range res.Iterations {
			if it.Metrics == nil {
				t.Fatalf("workers=%d: iteration K=%g has no metrics", workers, it.K)
			}
			s.iters = append(s.iters, it.Metrics.Fingerprint())
		}
		s.run = rec.Snapshot().Fingerprint()
		return s
	}

	serial := runSweep(1)
	parallel := runSweep(4)
	if len(serial.iters) != len(parallel.iters) {
		t.Fatalf("iteration count differs: %d vs %d", len(serial.iters), len(parallel.iters))
	}
	for i := range serial.iters {
		if serial.iters[i] != parallel.iters[i] {
			t.Errorf("iteration %d (K=%g) fingerprint differs between 1 and 4 workers:\n--- serial\n%s\n--- parallel\n%s",
				i, cfg.KSchedule[i], serial.iters[i], parallel.iters[i])
		}
	}
	if serial.run != parallel.run {
		t.Errorf("run-level fingerprint differs between 1 and 4 workers:\n--- serial\n%s\n--- parallel\n%s",
			serial.run, parallel.run)
	}
}

// TestMetricsOnBudgetTimeout is the satellite fix's regression test: an
// iteration killed by the per-stage budget still reports the timings of
// the stages that completed, plus the failing stage with its partial
// elapsed time and error — surfaced from inside runstage.Run, not
// re-measured.
func TestMetricsOnBudgetTimeout(t *testing.T) {
	pc, cfg := prepared(t, 0.55)
	// Same budget discipline as TestStageTimeoutDegrades: wide enough
	// that the healthy map/place stages finish under -race on a loaded
	// machine, while the stalled route stage still hits the deadline.
	cfg.StageTimeout = 2 * time.Second
	cfg.Hooks = &runstage.Hooks{Faults: []runstage.Fault{
		{Stage: runstage.StageRoute, AllK: true, Delay: 30 * time.Second},
	}}

	ctx := obs.WithRecorder(context.Background(), obs.New())
	it, err := RunOnce(ctx, pc, 0.001, cfg)
	if err == nil {
		t.Fatal("expected a route-stage timeout")
	}
	se := runstage.AsStage(err)
	if se == nil || se.Stage != runstage.StageRoute || !se.Timeout() {
		t.Fatalf("err = %v, want route-stage timeout", err)
	}

	m := it.Metrics
	if m == nil {
		t.Fatal("failed iteration lost its metrics")
	}
	wantStages := []runstage.Stage{runstage.StageMap, runstage.StagePlace, runstage.StageRoute}
	if len(m.Stages) != len(wantStages) {
		t.Fatalf("stages = %+v, want %v", m.Stages, wantStages)
	}
	for i, st := range m.Stages {
		if st.Stage != wantStages[i] {
			t.Fatalf("stage %d = %s, want %s", i, st.Stage, wantStages[i])
		}
	}
	for _, stage := range []runstage.Stage{runstage.StageMap, runstage.StagePlace} {
		w, ok := m.StageWall(stage)
		if !ok || w <= 0 {
			t.Errorf("completed stage %s lost its wall time (%v, %v)", stage, w, ok)
		}
	}
	route := m.Stages[2]
	if route.Err == "" {
		t.Error("failing stage recorded no error")
	}
	// The route stage stalled on the fault's delay until the 2s budget
	// expired; its measured wall time must reflect that partial run.
	if route.Wall < time.Second {
		t.Errorf("route wall = %v, want >= ~2s (the budget it burned)", route.Wall)
	}
	// The flow.iteration span carries the iteration error too.
	var itSpan *obs.SpanRecord
	for i := range m.Events.Spans {
		if m.Events.Spans[i].Name == "flow.iteration" {
			itSpan = &m.Events.Spans[i]
		}
	}
	if itSpan == nil {
		t.Fatal("no flow.iteration span")
	}
	if itSpan.Err == "" {
		t.Error("flow.iteration span has no error")
	}
	if !errors.Is(se, context.DeadlineExceeded) {
		t.Errorf("stage error does not unwrap to DeadlineExceeded: %v", se)
	}
}

// TestRunMergesIterationEvents checks that Run folds every completed
// iteration's events into the run-level recorder in ladder order.
func TestRunMergesIterationEvents(t *testing.T) {
	pc, cfg := prepared(t, 0.55)
	cfg.KSchedule = []float64{0, 0.001}
	rec := obs.New()
	ctx := obs.WithRecorder(context.Background(), rec)
	res, err := Run(ctx, pc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	counts := snap.SpanCounts()
	if got := counts["flow.iteration"]; got != int64(len(res.Iterations)) {
		t.Errorf("flow.iteration spans = %d, want %d", got, len(res.Iterations))
	}
	if got := counts["stage.map"]; got != int64(len(res.Iterations)) {
		t.Errorf("stage.map spans = %d, want %d", got, len(res.Iterations))
	}
	// Iteration spans must appear in ladder order: the K tags of the
	// flow.iteration spans ascend.
	var ks []float64
	for _, sp := range snap.Spans {
		if sp.Name == "flow.iteration" {
			ks = append(ks, sp.K)
		}
	}
	for i := 1; i < len(ks); i++ {
		if ks[i] < ks[i-1] {
			t.Errorf("iteration spans out of ladder order: %v", ks)
		}
	}
}

package flow

import (
	"fmt"

	"casyn/internal/place"
	"casyn/internal/subject"
)

// RelaxResult is the outcome of RunWithRelaxation: the flow result
// that finally routed (or the last attempt), plus the floorplan
// history.
type RelaxResult struct {
	// Attempts records one flow Result per floorplan tried.
	Attempts []*Result
	// Layouts is the floorplan used by each attempt.
	Layouts []place.Layout
	// Final indexes the accepted attempt (the first routable one, or
	// the last if none routed).
	Final int
}

// Accepted returns the accepted attempt's best iteration and layout.
func (r *RelaxResult) Accepted() (*Iteration, place.Layout) {
	return r.Attempts[r.Final].Best(), r.Layouts[r.Final]
}

// RunWithRelaxation implements the full Figure 3 decision: run the K
// ladder on the given floorplan; if no mapping routes, relax the
// floorplan by adding rows (introducing more wiring resources) and try
// again — re-placing the technology-independent netlist on each new
// floorplan, since the layout image defines the wire costs. maxExtra
// bounds the added rows.
func RunWithRelaxation(d *subject.DAG, cfg Config, maxExtraRows int) (*RelaxResult, error) {
	cfg.defaults()
	cfg.StopAtFirstRoutable = true
	res := &RelaxResult{Final: -1}
	base := cfg.Layout
	for extra := 0; extra <= maxExtraRows; extra++ {
		layout, err := place.LayoutWithRows(base.NumRows+extra, base.Die.W(), base.RowHeight)
		if err != nil {
			return nil, err
		}
		attempt := cfg
		attempt.Layout = layout
		ctx, err := Prepare(d, attempt)
		if err != nil {
			return nil, fmt.Errorf("flow: relax +%d rows: %w", extra, err)
		}
		fres, err := Run(ctx, attempt)
		if err != nil {
			return nil, fmt.Errorf("flow: relax +%d rows: %w", extra, err)
		}
		res.Attempts = append(res.Attempts, fres)
		res.Layouts = append(res.Layouts, layout)
		if fres.FoundRoutable() {
			res.Final = len(res.Attempts) - 1
			return res, nil
		}
	}
	res.Final = len(res.Attempts) - 1
	return res, nil
}

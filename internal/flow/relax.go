package flow

import (
	"context"
	"fmt"

	"casyn/internal/place"
	"casyn/internal/subject"
)

// RelaxResult is the outcome of RunWithRelaxation: the flow result
// that finally routed (or the last attempt), plus the floorplan
// history.
type RelaxResult struct {
	// Attempts records one flow Result per floorplan tried.
	Attempts []*Result
	// Layouts is the floorplan used by each attempt.
	Layouts []place.Layout
	// Final indexes the accepted attempt (the first routable one, or
	// the last if none routed).
	Final int
}

// Accepted returns the accepted attempt's best iteration and layout.
func (r *RelaxResult) Accepted() (*Iteration, place.Layout) {
	return r.Attempts[r.Final].Best(), r.Layouts[r.Final]
}

// RunWithRelaxation implements the full Figure 3 decision: run the K
// ladder on the given floorplan; if no mapping routes, relax the
// floorplan by adding rows (introducing more wiring resources) and try
// again — re-placing the technology-independent netlist on each new
// floorplan, since the layout image defines the wire costs. maxExtra
// bounds the added rows.
//
// Like Run, relaxation degrades rather than aborting: an attempt whose
// ladder failed entirely is still recorded and the next floorplan is
// tried. A canceled ctx stops the relaxation loop promptly, returning
// the attempts completed so far together with the ctx error.
func RunWithRelaxation(ctx context.Context, d *subject.DAG, cfg Config, maxExtraRows int) (*RelaxResult, error) {
	cfg.defaults()
	cfg.StopAtFirstRoutable = true
	res := &RelaxResult{Final: -1}
	base := cfg.Layout
	var lastErr error
	for extra := 0; extra <= maxExtraRows; extra++ {
		if cerr := ctx.Err(); cerr != nil {
			res.Final = len(res.Attempts) - 1
			return res, fmt.Errorf("flow: relax canceled at +%d rows: %w", extra, cerr)
		}
		layout, err := place.LayoutWithRows(base.NumRows+extra, base.Die.W(), base.RowHeight)
		if err != nil {
			return nil, err
		}
		attempt := cfg
		attempt.Layout = layout
		pc, err := Prepare(ctx, d, attempt)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				res.Final = len(res.Attempts) - 1
				return res, fmt.Errorf("flow: relax canceled at +%d rows: %w", extra, cerr)
			}
			lastErr = fmt.Errorf("flow: relax +%d rows: %w", extra, err)
			continue
		}
		fres, err := Run(ctx, pc, attempt)
		if fres != nil {
			res.Attempts = append(res.Attempts, fres)
			res.Layouts = append(res.Layouts, layout)
		}
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				res.Final = len(res.Attempts) - 1
				return res, fmt.Errorf("flow: relax canceled at +%d rows: %w", extra, cerr)
			}
			lastErr = fmt.Errorf("flow: relax +%d rows: %w", extra, err)
			continue
		}
		if fres.FoundRoutable() {
			res.Final = len(res.Attempts) - 1
			return res, nil
		}
	}
	res.Final = len(res.Attempts) - 1
	if len(res.Attempts) == 0 && lastErr != nil {
		return nil, lastErr
	}
	return res, nil
}

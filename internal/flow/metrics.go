package flow

import (
	"context"
	"fmt"
	"strings"
	"time"

	"casyn/internal/obs"
	"casyn/internal/route"
	"casyn/internal/runstage"
)

// Metrics is the observability snapshot of one K iteration, populated
// whenever the context given to RunOnce (or Run) carries an
// *obs.Recorder. It is built from the iteration's own child recorder,
// so concurrent iterations of a parallel sweep never interleave, and a
// speculative iteration that is discarded leaves no trace.
//
// The deterministic fields — counters, histogram bucket counts, span
// multiset, hot spots — are byte-identical for every Config.Workers
// value (see Fingerprint); only durations vary run to run.
type Metrics struct {
	// Stages lists the pipeline stages that actually ran, in execution
	// order, with the wall/CPU time measured inside runstage.Run — the
	// single measurement point, surfaced rather than re-measured. A
	// failed or budget-blown iteration still carries the stages that
	// completed plus the failing stage with its partial elapsed time
	// and error.
	Stages []StageTiming
	// HotSpots are the worst over-capacity routing edges of the
	// iteration's congestion map (empty when routing never ran or
	// nothing overflowed).
	HotSpots []route.HotSpot
	// Events is the full event stream: every span, counter, and
	// histogram the pipeline recorded during this iteration, including
	// the congestion and net-HPWL histograms from the router and the
	// match/DP counters from the coverer.
	Events obs.Snapshot
}

// StageTiming is one executed stage's measured cost.
type StageTiming struct {
	Stage runstage.Stage
	Wall  time.Duration
	CPU   time.Duration
	// Err is the failure the stage ended with ("" on success).
	Err string
}

// StageWall returns the measured wall time of a stage and whether the
// stage ran at all.
func (m *Metrics) StageWall(stage runstage.Stage) (time.Duration, bool) {
	if m == nil {
		return 0, false
	}
	for _, st := range m.Stages {
		if st.Stage == stage {
			return st.Wall, true
		}
	}
	return 0, false
}

// Fingerprint renders the deterministic subset of the metrics as a
// stable string: the event-stream fingerprint (counters, histogram
// buckets, span counts), the hot-spot list, and the stage sequence
// without its durations. Two iterations that did the same work — for
// any worker count — produce identical fingerprints.
func (m *Metrics) Fingerprint() string {
	if m == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString(m.Events.Fingerprint())
	for _, st := range m.Stages {
		fmt.Fprintf(&b, "stage %s err=%q\n", st.Stage, st.Err)
	}
	for _, h := range m.HotSpots {
		fmt.Fprintf(&b, "hotspot (%d,%d) horizontal=%v overflow=%g congestion=%g\n",
			h.X, h.Y, h.Horizontal, h.Overflow, h.Congestion)
	}
	return b.String()
}

// MergeMetrics folds an iteration's event stream into the recorder
// carried by ctx (no-op when either is absent). Run does this
// automatically in ladder order; callers driving RunOnce directly
// (casyn, experiments) use it to surface iteration events in their
// run-level recorder.
func MergeMetrics(ctx context.Context, m *Metrics) {
	if m == nil {
		return
	}
	obs.From(ctx).Merge(m.Events)
}

// buildMetrics assembles the Metrics snapshot from an iteration's
// child recorder. Stage timings come from the "stage.*" spans recorded
// inside runstage.Run — end order is execution order, because the
// stages of one iteration run sequentially.
func buildMetrics(rec *obs.Recorder, hotspots []route.HotSpot) *Metrics {
	if rec == nil {
		return nil
	}
	snap := rec.Snapshot()
	m := &Metrics{Events: snap, HotSpots: hotspots}
	for _, sp := range snap.Spans {
		if name, ok := strings.CutPrefix(sp.Name, "stage."); ok {
			m.Stages = append(m.Stages, StageTiming{
				Stage: runstage.Stage(name),
				Wall:  sp.Wall,
				CPU:   sp.CPU,
				Err:   sp.Err,
			})
		}
	}
	return m
}

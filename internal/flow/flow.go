// Package flow implements the paper's modified ASIC design flow
// (Figure 3): the technology-independent netlist is placed once, then
// technology mapping is repeated with increasing congestion factor K —
// each iteration placing and globally routing the mapped netlist and
// evaluating its congestion map — until the design is routable within
// the fixed die, or the growing cell-area penalty makes congestion
// worse again.
package flow

import (
	"fmt"

	"casyn/internal/geom"
	"casyn/internal/library"
	"casyn/internal/mapper"
	"casyn/internal/netlist"
	"casyn/internal/partition"
	"casyn/internal/place"
	"casyn/internal/route"
	"casyn/internal/sta"
	"casyn/internal/subject"
)

// Config parameterizes the flow.
type Config struct {
	// Layout is the fixed floorplan (die size, rows).
	Layout place.Layout
	// Lib is the cell library (default library.Default()).
	Lib *library.Library
	// KSchedule is the ladder of congestion factors to try in order;
	// the default is the paper's Table 2/4 ladder.
	KSchedule []float64
	// Method is the partitioning scheme (default PDP).
	Method partition.Method
	// PlaceOpts / RouteOpts forward to the placer and router.
	PlaceOpts place.Options
	RouteOpts route.Options
	// FreshPlacement re-places the mapped netlist from scratch instead
	// of legalizing the mapper's center-of-mass seeds. The seeded path
	// (default) is the paper's methodology: the companion placement is
	// generated once and carried through mapping; use fresh placement
	// for the ablation that discards it.
	FreshPlacement bool
	// RunSTA enables timing analysis per iteration.
	RunSTA bool
	// STAOpts forwards to the timing analyzer.
	STAOpts sta.Options
	// StopAtFirstRoutable ends the sweep at the first clean iteration
	// (the methodology's normal exit); when false the whole ladder
	// runs, which is how the K-sweep tables are produced.
	StopAtFirstRoutable bool
}

func (c *Config) defaults() {
	if c.Lib == nil {
		c.Lib = library.Default()
	}
	if len(c.KSchedule) == 0 {
		c.KSchedule = DefaultKSchedule()
	}
}

// DefaultKSchedule returns the K ladder of the paper's Tables 2 and 4.
func DefaultKSchedule() []float64 {
	return []float64{0, 0.0001, 0.00025, 0.0005, 0.00075, 0.001,
		0.0025, 0.005, 0.0075, 0.01, 0.05, 0.1, 0.5, 1.0}
}

// Context is the once-per-design preparation: the placed technology-
// independent netlist (paper: "the technology independent netlist and
// its placement are generated only once").
type Context struct {
	DAG    *subject.DAG
	Pos    []geom.Point
	POPads map[int][]geom.Point
	PIPads []geom.Point
	POList []geom.Point
}

// Prepare places the subject DAG on the layout image.
func Prepare(d *subject.DAG, cfg Config) (*Context, error) {
	cfg.defaults()
	pos, poPads, piPads, poList, err := mapper.SubjectPlacement(d, cfg.Layout, cfg.PlaceOpts)
	if err != nil {
		return nil, err
	}
	return &Context{DAG: d, Pos: pos, POPads: poPads, PIPads: piPads, POList: poList}, nil
}

// Iteration is the outcome of one K value: the columns of the paper's
// Tables 2 and 4, plus timing when enabled.
type Iteration struct {
	K               float64
	CellArea        float64 // µm²
	NumCells        int
	DuplicatedCells int
	Utilization     float64 // fraction of die area
	Violations      int
	// FailedConnections counts two-pin route segments through
	// over-capacity edges — the detailed-router-violation analogue.
	FailedConnections int
	MaxCongestion     float64
	WireLength        float64 // routed, µm
	Routable          bool
	Timing            *sta.Result
	Netlist           *netlist.Netlist
}

// Result is the full flow outcome.
type Result struct {
	Iterations []Iteration
	// BestIndex points at the accepted iteration: the first routable
	// one, else the minimum-violation one. -1 when no iterations ran.
	BestIndex int
}

// Best returns the accepted iteration.
func (r *Result) Best() *Iteration {
	if r.BestIndex < 0 {
		return nil
	}
	return &r.Iterations[r.BestIndex]
}

// FoundRoutable reports whether any iteration routed cleanly.
func (r *Result) FoundRoutable() bool {
	return r.BestIndex >= 0 && r.Iterations[r.BestIndex].Routable
}

// Run executes the flow on a prepared context.
func Run(ctx *Context, cfg Config) (*Result, error) {
	cfg.defaults()
	res := &Result{BestIndex: -1}
	for _, k := range cfg.KSchedule {
		it, err := RunOnce(ctx, k, cfg)
		if err != nil {
			return nil, fmt.Errorf("flow: K=%g: %w", k, err)
		}
		res.Iterations = append(res.Iterations, it)
		i := len(res.Iterations) - 1
		if res.BestIndex < 0 ||
			(it.Routable && !res.Iterations[res.BestIndex].Routable) ||
			(it.Routable == res.Iterations[res.BestIndex].Routable &&
				it.Violations < res.Iterations[res.BestIndex].Violations) {
			res.BestIndex = i
		}
		if cfg.StopAtFirstRoutable && it.Routable {
			break
		}
	}
	return res, nil
}

// RunOnce maps, places, and routes for a single K.
func RunOnce(ctx *Context, k float64, cfg Config) (Iteration, error) {
	cfg.defaults()
	it := Iteration{K: k}
	mres, err := mapper.Map(ctx.DAG, mapper.Input{Pos: ctx.Pos, POPads: ctx.POPads}, mapper.Options{
		K:      k,
		Method: cfg.Method,
		Lib:    cfg.Lib,
	})
	if err != nil {
		return it, err
	}
	it.Netlist = mres.Netlist
	it.CellArea = mres.CellArea
	it.NumCells = mres.NumCells
	it.DuplicatedCells = mres.DuplicatedCells
	it.Utilization = cfg.Layout.Utilization(mres.CellArea)

	pn := mres.Netlist.ToPlacement(ctx.PIPads, ctx.POList)
	var pl *place.Placement
	if cfg.FreshPlacement {
		pl, err = place.PlaceNetlist(pn.Cells, cfg.Layout, cfg.PlaceOpts)
	} else {
		seeds := make([]geom.Point, len(mres.Netlist.Instances))
		for i := range mres.Netlist.Instances {
			seeds[i] = mres.Netlist.Instances[i].Pos
		}
		pl, err = place.PlaceSeeded(pn.Cells, cfg.Layout, seeds, cfg.PlaceOpts)
	}
	if err != nil {
		return it, err
	}
	rres, err := route.RouteNetlist(pn.Cells, pl, cfg.Layout, cfg.RouteOpts)
	if err != nil {
		return it, err
	}
	it.Violations = rres.Violations
	it.FailedConnections = rres.FailedConnections
	it.MaxCongestion = rres.MaxCongestion
	it.WireLength = rres.WireLength
	it.Routable = rres.Routable()

	if cfg.RunSTA {
		lens := sta.NetLengths(pn.SigNet, rres.NetLength)
		timing, err := sta.Analyze(mres.Netlist, lens, cfg.STAOpts)
		if err != nil {
			return it, err
		}
		it.Timing = timing
	}
	return it, nil
}

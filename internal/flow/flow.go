// Package flow implements the paper's modified ASIC design flow
// (Figure 3): the technology-independent netlist is placed once, then
// technology mapping is repeated with increasing congestion factor K —
// each iteration placing and globally routing the mapped netlist and
// evaluating its congestion map — until the design is routable within
// the fixed die, or the growing cell-area penalty makes congestion
// worse again.
//
// # Robustness
//
// Every entry point takes a context.Context and stops promptly (within
// one cooperative check interval of the inner loops) when it is
// canceled. Each pipeline stage of an iteration — map, place, route,
// sta — runs under runstage.Run, which recovers panics into typed
// *runstage.StageError values and enforces the per-stage wall-clock
// budget. The K sweep degrades instead of aborting: a failed, panicked
// or timed-out iteration is recorded in Result.Iterations with its Err
// set and Skipped=true, the ladder moves on to the next K, and Best()
// only considers iterations that completed. Run returns an error only
// when the parent context is canceled (partial results are still
// returned) or when every K in the schedule failed.
package flow

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"casyn/internal/geom"
	"casyn/internal/library"
	"casyn/internal/mapper"
	"casyn/internal/netlist"
	"casyn/internal/obs"
	"casyn/internal/par"
	"casyn/internal/partition"
	"casyn/internal/place"
	"casyn/internal/route"
	"casyn/internal/runstage"
	"casyn/internal/sta"
	"casyn/internal/subject"
	"casyn/internal/verify"
)

// Config parameterizes the flow.
type Config struct {
	// Layout is the fixed floorplan (die size, rows).
	Layout place.Layout
	// Lib is the cell library (default library.Default()).
	Lib *library.Library
	// KSchedule is the ladder of congestion factors to try in order;
	// the default is the paper's Table 2/4 ladder.
	KSchedule []float64
	// Method is the partitioning scheme (default PDP).
	Method partition.Method
	// Dies turns the run into a multi-die workload when > 1: the
	// mapping prefix is built over a direct k-way partition of the die
	// into Dies regions (partition.KWay, seeded from the Method
	// forest) with cut-driver replication, and routing derates
	// region-boundary edges and enforces the inter-die pin budget at
	// admission. 0 or 1 is the classic single-die flow, byte-identical
	// to before the field existed.
	Dies int
	// InterDiePinBudget caps boundary-crossing nets at route admission
	// when Dies > 1: 0 derives the budget from the derated boundary
	// capacity, negative disables the check. Forwarded to
	// route.Options.RegionPinBudget unless RouteOpts sets its own.
	InterDiePinBudget int
	// PlaceOpts / RouteOpts forward to the placer and router.
	PlaceOpts place.Options
	RouteOpts route.Options
	// FreshPlacement re-places the mapped netlist from scratch instead
	// of legalizing the mapper's center-of-mass seeds. The seeded path
	// (default) is the paper's methodology: the companion placement is
	// generated once and carried through mapping; use fresh placement
	// for the ablation that discards it.
	FreshPlacement bool
	// FastECORoute makes RunECO place and route incrementally: cells
	// whose mapper seeds are unchanged keep the previous iteration's
	// legalized positions (place.PlaceECO), and the router rips up only
	// the nets whose territories intersect the dirtied region, against
	// the persisted congestion history (route.RouteECO). Off by default
	// because the from-scratch placement and route are what make
	// RunECO's result byte-identical to a full synthesis of the edited
	// design.
	FastECORoute bool
	// RunSTA enables timing analysis per iteration.
	RunSTA bool
	// STAOpts forwards to the timing analyzer.
	STAOpts sta.Options
	// StopAtFirstRoutable ends the sweep at the first clean iteration
	// (the methodology's normal exit); when false the whole ladder
	// runs, which is how the K-sweep tables are produced.
	StopAtFirstRoutable bool
	// IterationTimeout bounds the wall-clock time of one K iteration
	// (map+place+route+sta together); zero means no bound. An
	// iteration that exceeds it is recorded as failed and the sweep
	// continues with the next K.
	IterationTimeout time.Duration
	// StageTimeout bounds each individual stage of an iteration; zero
	// means no bound. It composes with IterationTimeout (whichever
	// expires first wins).
	StageTimeout time.Duration
	// Hooks injects failures, panics, or delays into specific stages
	// for testing; nil disables injection.
	Hooks *runstage.Hooks
	// Verify enables the post-mapping equivalence check: every mapped
	// netlist is verified against the subject DAG (verify.Equivalent)
	// before placement. An inequivalent netlist fails its iteration
	// with a StageVerify error — functional corruption never degrades
	// silently into a metrics row. The report (including unproven
	// verdicts on designs too wide for the exact engines) lands in
	// Iteration.Verify.
	Verify bool
	// VerifyOpts forwards to the equivalence checker when Verify is
	// set (zero value = library defaults).
	VerifyOpts verify.Options
	// Workers bounds the goroutines of the K sweep (0 =
	// runtime.GOMAXPROCS, 1 = the serial loop). Iterations for
	// different K values are independent, so the ladder fans out across
	// the pool and the merged Result — iteration order, Best()
	// selection, degrade records, truncation at the first routable K —
	// is identical to the serial sweep. Workers is also forwarded to
	// the per-tree covering fan-out and, when RouteOpts.Workers is
	// unset, to the router — both its first pass and the parallel
	// region-partitioned rip-up/reroute negotiation.
	Workers int
}

func (c *Config) defaults() {
	if c.Lib == nil {
		c.Lib = library.Default()
	}
	if len(c.KSchedule) == 0 {
		c.KSchedule = DefaultKSchedule()
	}
}

// maxHotSpots bounds the per-iteration overflow hot-spot list carried
// in Metrics: enough to localize the congested region, small enough to
// keep iteration snapshots light.
const maxHotSpots = 10

// DefaultKSchedule returns the K ladder of the paper's Tables 2 and 4.
func DefaultKSchedule() []float64 {
	return []float64{0, 0.0001, 0.00025, 0.0005, 0.00075, 0.001,
		0.0025, 0.005, 0.0075, 0.01, 0.05, 0.1, 0.5, 1.0}
}

// Context is the once-per-design preparation: the placed technology-
// independent netlist (paper: "the technology independent netlist and
// its placement are generated only once").
type Context struct {
	DAG    *subject.DAG
	Pos    []geom.Point
	POPads map[int][]geom.Point
	PIPads []geom.Point
	POList []geom.Point
	// Prep is the shared K-invariant mapping prefix (partition forest +
	// complete match enumeration), set by PrepareMapping. When present
	// and compatible with the run's Method/Lib, every iteration maps
	// via mapper.MapPrepared instead of re-partitioning and re-matching
	// per K; results are byte-identical either way. Nil is always valid
	// (the classic per-K path).
	Prep *mapper.Prepared
	// Regions are the die regions of a multi-die run, set by
	// PrepareMapping when Config.Dies > 1 (nil otherwise). RunOnce
	// forwards them to route admission.
	Regions []geom.Rect
	// KWay is the k-way partitioning outcome of a multi-die run
	// (replica counts, cut metrics); nil for single-die. When it
	// carries replicas, DAG and Pos have been swapped to the
	// replicated clone and its extended placement.
	KWay *partition.KWayResult
}

// Prepare places the subject DAG on the layout image. Cancellation of
// ctx stops the placement promptly; failures (including panics in the
// placer) surface as a *runstage.StageError with Stage
// runstage.StagePrepare.
func Prepare(ctx context.Context, d *subject.DAG, cfg Config) (*Context, error) {
	cfg.defaults()
	type prep struct {
		pos            []geom.Point
		poPads         map[int][]geom.Point
		piPads, poList []geom.Point
	}
	p, err := runstage.Run(ctx, runstage.StagePrepare, 0, cfg.StageTimeout, cfg.Hooks,
		func(ctx context.Context) (prep, error) {
			pos, poPads, piPads, poList, err := mapper.SubjectPlacement(ctx, d, cfg.Layout, cfg.PlaceOpts)
			return prep{pos, poPads, piPads, poList}, err
		})
	if err != nil {
		return nil, err
	}
	return &Context{DAG: d, Pos: p.pos, POPads: p.poPads, PIPads: p.piPads, POList: p.poList}, nil
}

// PrepareMapping computes the shared K-invariant mapping prefix
// (partition forest + complete match enumeration with cached covering
// geometry) and stores it in pc.Prep, where Run and RunOnce pick it up
// for every K of the sweep. The prefix is immutable and safe to share
// across the concurrent ladder. Callers threading one prefix across
// multiple Run calls must pass the same cfg.Lib pointer each time
// (library.Default() allocates per call); a Prep that does not match
// the run's Method/Lib is ignored, never misused.
//
// Run calls this automatically for multi-K schedules, so explicit use
// is only needed to share the prefix across several Run/RunOnce calls
// (e.g. repeated sweeps over one placed design). Failures (including
// panics) surface as a *runstage.StageError with Stage
// runstage.StageMapPrepare.
func PrepareMapping(ctx context.Context, pc *Context, cfg Config) error {
	cfg.defaults()
	mopts := mapper.Options{
		Method:  cfg.Method,
		Lib:     cfg.Lib,
		Workers: cfg.Workers,
	}
	type mprep struct {
		prep *mapper.Prepared
		kway *partition.KWayResult
	}
	p, err := runstage.Run(ctx, runstage.StageMapPrepare, 0, cfg.StageTimeout, cfg.Hooks,
		func(ctx context.Context) (mprep, error) {
			if cfg.Dies > 1 {
				// Multi-die: seed forest from the configured method, then
				// direct k-way moves + replication over the die regions.
				forest, err := partition.Partition(partition.Input{
					DAG:    pc.DAG,
					Pos:    pc.Pos,
					POPads: pc.POPads,
				}, cfg.Method)
				if err != nil {
					return mprep{}, err
				}
				kres, err := partition.KWay(pc.DAG, forest, partition.KWayOptions{
					K:         cfg.Dies,
					Die:       cfg.Layout.Die,
					Pos:       pc.Pos,
					POPads:    pc.POPads,
					Replicate: true,
				})
				if err != nil {
					return mprep{}, err
				}
				if cfg.Verify && kres.Replicas > 0 {
					// Replication edits the subject itself, so prove the
					// replicated DAG equivalent to the original before any
					// mapping happens on it.
					rep, err := verify.Equivalent(ctx, pc.DAG, kres.DAG, cfg.VerifyOpts)
					if err != nil {
						return mprep{}, err
					}
					if !rep.Equivalent {
						return mprep{}, fmt.Errorf("replicated subject differs from original: %s", rep)
					}
				}
				prep, err := mapper.PrepareForest(ctx, kres.DAG, kres.Forest,
					mapper.Input{Pos: kres.Pos, POPads: pc.POPads}, mopts)
				return mprep{prep: prep, kway: kres}, err
			}
			prep, err := mapper.Prepare(ctx, pc.DAG, mapper.Input{Pos: pc.Pos, POPads: pc.POPads}, mopts)
			return mprep{prep: prep}, err
		})
	if err != nil {
		return err
	}
	pc.Prep = p.prep
	if p.kway != nil {
		pc.DAG = p.kway.DAG
		pc.Pos = p.kway.Pos
		pc.Regions = p.kway.Regions
		pc.KWay = p.kway
	}
	return nil
}

// Iteration is the outcome of one K value: the columns of the paper's
// Tables 2 and 4, plus timing when enabled.
type Iteration struct {
	K               float64
	CellArea        float64 // µm²
	NumCells        int
	DuplicatedCells int
	Utilization     float64 // fraction of die area
	Violations      int
	// FailedConnections counts two-pin route segments through
	// over-capacity edges — the detailed-router-violation analogue.
	FailedConnections int
	MaxCongestion     float64
	WireLength        float64 // routed, µm
	// CrossRegionNets counts nets spanning more than one die region
	// (multi-die runs only; 0 otherwise).
	CrossRegionNets int
	// Routable is the flow's single routability definition: the global
	// route completed with FailedConnections == 0 AND Violations == 0
	// (route.Result.Routable). All consumers — the sweep's Best()
	// selection, StopAtFirstRoutable, and the casyn package — share
	// this definition.
	Routable bool
	Timing   *sta.Result
	Netlist  *netlist.Netlist
	// Verify is the mapped-netlist equivalence report (only when
	// Config.Verify is set; always Equivalent when non-nil, because an
	// inequivalent netlist fails the iteration instead).
	Verify *verify.Report
	// Metrics is the iteration's observability snapshot — stage
	// timings, congestion histogram, overflow hot spots, pipeline
	// counters — populated whenever the context carries an
	// *obs.Recorder (nil otherwise). Failed iterations keep the
	// metrics of the stages that ran.
	Metrics *Metrics
	// Err is non-nil when this iteration failed (stage error, panic,
	// or per-iteration timeout); typically a *runstage.StageError.
	Err error
	// Skipped marks an iteration whose metrics are invalid because it
	// failed before completing. Best() never selects it.
	Skipped bool
}

// Result is the full flow outcome.
type Result struct {
	Iterations []Iteration
	// BestIndex points at the accepted iteration: the first routable
	// one, else the minimum-violation one, considering only iterations
	// that completed (Skipped == false). -1 when none completed.
	BestIndex int
}

// Best returns the accepted iteration.
func (r *Result) Best() *Iteration {
	if r.BestIndex < 0 {
		return nil
	}
	return &r.Iterations[r.BestIndex]
}

// FoundRoutable reports whether any iteration routed cleanly.
func (r *Result) FoundRoutable() bool {
	return r.BestIndex >= 0 && r.Iterations[r.BestIndex].Routable
}

// FailedIterations returns the iterations that were skipped due to
// errors, in ladder order.
func (r *Result) FailedIterations() []Iteration {
	var out []Iteration
	for _, it := range r.Iterations {
		if it.Skipped {
			out = append(out, it)
		}
	}
	return out
}

// Run executes the flow on a prepared context, degrading rather than
// aborting: an iteration that errors, panics, or exceeds
// cfg.IterationTimeout is recorded with Err/Skipped set and the ladder
// continues at the next K. Run itself returns a non-nil error in two
// cases only: the parent ctx was canceled (the partial Result built so
// far is still returned), or every K in the schedule failed (the
// joined per-K errors are returned alongside the full Result).
//
// With cfg.Workers > 1 the ladder executes concurrently: workers claim
// K values in ascending order and completed iterations are merged back
// in ladder order, so the Result is identical to the serial sweep.
// StopAtFirstRoutable becomes speculative — higher-K iterations may
// start before a lower K proves routable and are canceled (and
// discarded, exactly as if never run) once it does.
func Run(ctx context.Context, pc *Context, cfg Config) (*Result, error) {
	cfg.defaults()
	// Multi-K sweeps share one K-invariant mapping prefix; it is built
	// here — before the ladder, on the run-level recorder — so serial
	// and concurrent sweeps observe identical event streams. The prefix
	// lands on a private copy of pc (explicit cross-Run reuse is opt-in
	// via PrepareMapping). A non-cancellation prep failure degrades to
	// the classic per-K path, whose iterations surface the same error
	// under the sweep's usual degrade rules.
	if (len(cfg.KSchedule) > 1 || cfg.Dies > 1) && !dieAwarePrep(pc, cfg) {
		run := *pc
		if err := PrepareMapping(ctx, &run, cfg); err == nil {
			pc = &run
		} else if cfg.Dies > 1 {
			// A multi-die run cannot degrade to the classic path: that
			// would silently synthesize a single-die design.
			return &Result{BestIndex: -1}, fmt.Errorf("flow: multi-die prepare failed: %w", err)
		} else if cerr := ctx.Err(); cerr != nil {
			return &Result{BestIndex: -1}, fmt.Errorf("flow: canceled at K=%g: %w", cfg.KSchedule[0], cerr)
		}
	}
	if par.Workers(cfg.Workers) > 1 && len(cfg.KSchedule) > 1 {
		return runParallel(ctx, pc, cfg)
	}
	res := &Result{BestIndex: -1}
	var failures []error
	for _, k := range cfg.KSchedule {
		itCtx, cancel := ctx, context.CancelFunc(func() {})
		if cfg.IterationTimeout > 0 {
			itCtx, cancel = context.WithTimeout(ctx, cfg.IterationTimeout)
		}
		it, err := RunOnce(itCtx, pc, k, cfg)
		cancel()
		// Iteration events surface in the run-level recorder in ladder
		// order — the same order the parallel sweep merges in.
		MergeMetrics(ctx, it.Metrics)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				// Parent canceled: stop the whole ladder, keep the
				// partial result.
				return res, fmt.Errorf("flow: canceled at K=%g: %w", k, cerr)
			}
			// Degrade: record the failure and move on to the next K.
			it.K = k
			it.Err = err
			it.Skipped = true
			res.Iterations = append(res.Iterations, it)
			failures = append(failures, fmt.Errorf("K=%g: %w", k, err))
			continue
		}
		res.Iterations = append(res.Iterations, it)
		i := len(res.Iterations) - 1
		if res.BestIndex < 0 ||
			(it.Routable && !res.Iterations[res.BestIndex].Routable) ||
			(it.Routable == res.Iterations[res.BestIndex].Routable &&
				it.Violations < res.Iterations[res.BestIndex].Violations) {
			res.BestIndex = i
		}
		if cfg.StopAtFirstRoutable && it.Routable {
			break
		}
	}
	if res.BestIndex < 0 && len(failures) > 0 {
		return res, fmt.Errorf("flow: every K failed: %w", errors.Join(failures...))
	}
	return res, nil
}

// runParallel is the concurrent K sweep. Workers claim schedule
// indices in ascending order into per-index slots; a serial assembly
// pass then replays the slots with exactly the serial loop's
// semantics, so callers cannot distinguish the two beyond wall-clock
// time. Speculation: under StopAtFirstRoutable, a completed routable
// iteration lowers the claim cutoff and cancels every higher-K
// iteration already in flight; their slots are never examined, because
// assembly stops at the routable K first — matching the serial sweep,
// which would not have started them at all.
func runParallel(ctx context.Context, pc *Context, cfg Config) (*Result, error) {
	n := len(cfg.KSchedule)
	type slot struct {
		it   Iteration
		err  error
		done bool
	}
	slots := make([]slot, n)
	ctxs := make([]context.Context, n)
	cancels := make([]context.CancelFunc, n)
	for i := range ctxs {
		ctxs[i], cancels[i] = context.WithCancel(ctx)
	}
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	// The workers share the DAG read-only; warm the lazy fanout cache
	// so they cannot race on its rebuild.
	pc.DAG.PrecomputeFanouts()

	var mu sync.Mutex
	next, cutoff := 0, n
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= cutoff || ctx.Err() != nil {
			return -1
		}
		i := next
		next++
		return i
	}
	complete := func(i int, it Iteration, err error) {
		mu.Lock()
		defer mu.Unlock()
		slots[i] = slot{it: it, err: err, done: true}
		if cfg.StopAtFirstRoutable && err == nil && it.Routable && i+1 < cutoff {
			cutoff = i + 1
			for j := i + 1; j < n; j++ {
				cancels[j]()
			}
		}
	}
	var wg sync.WaitGroup
	for w := par.Workers(cfg.Workers); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i < 0 {
					return
				}
				itCtx, cancel := ctxs[i], context.CancelFunc(func() {})
				if cfg.IterationTimeout > 0 {
					itCtx, cancel = context.WithTimeout(itCtx, cfg.IterationTimeout)
				}
				it, err := RunOnce(itCtx, pc, cfg.KSchedule[i], cfg)
				cancel()
				complete(i, it, err)
			}
		}()
	}
	wg.Wait()

	// Assembly: replay the slots in ladder order under the serial
	// loop's exact rules.
	res := &Result{BestIndex: -1}
	var failures []error
	for i := 0; i < n; i++ {
		s, k := slots[i], cfg.KSchedule[i]
		if !s.done {
			// Never ran: the claim cutoff stopped at a lower routable K
			// (assembly broke out before reaching here unless the
			// parent died), or the parent was canceled.
			if cerr := ctx.Err(); cerr != nil {
				return res, fmt.Errorf("flow: canceled at K=%g: %w", k, cerr)
			}
			break
		}
		// Ladder-order merge keeps the run-level event stream identical
		// to the serial sweep's; slots past the routable cutoff are
		// never examined, so discarded speculative work leaves no trace.
		MergeMetrics(ctx, s.it.Metrics)
		if s.err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return res, fmt.Errorf("flow: canceled at K=%g: %w", k, cerr)
			}
			it := s.it
			it.K = k
			it.Err = s.err
			it.Skipped = true
			res.Iterations = append(res.Iterations, it)
			failures = append(failures, fmt.Errorf("K=%g: %w", k, s.err))
			continue
		}
		res.Iterations = append(res.Iterations, s.it)
		idx := len(res.Iterations) - 1
		if res.BestIndex < 0 ||
			(s.it.Routable && !res.Iterations[res.BestIndex].Routable) ||
			(s.it.Routable == res.Iterations[res.BestIndex].Routable &&
				s.it.Violations < res.Iterations[res.BestIndex].Violations) {
			res.BestIndex = idx
		}
		if cfg.StopAtFirstRoutable && s.it.Routable {
			break
		}
	}
	if res.BestIndex < 0 && len(failures) > 0 {
		return res, fmt.Errorf("flow: every K failed: %w", errors.Join(failures...))
	}
	return res, nil
}

// RunOnce maps, places, and routes for a single K. Each stage runs
// under runstage.Run: panics become *runstage.StageError values,
// cfg.StageTimeout bounds each stage, and the returned error
// identifies the failing stage and K. The partially-filled Iteration
// is returned even on error (metrics up to the failing stage are
// valid).
//
// When ctx carries an *obs.Recorder, the iteration runs against its
// own child recorder under a "flow.iteration" span; the snapshot lands
// in Iteration.Metrics on every exit path, so even a stage failure or
// budget timeout reports the stage timings measured up to that point.
// The child's events are not merged into the parent recorder here —
// Run does that in ladder order (and direct callers use MergeMetrics)
// so the parent stream is deterministic for any worker count.
// dieAwarePrep reports whether pc already carries a mapping prefix
// usable for this config: Method/Lib compatible, and — for a
// multi-die run — built by the multi-die path (a single-die prefix
// partitions the wrong hypergraph).
func dieAwarePrep(pc *Context, cfg Config) bool {
	if !pc.Prep.Compatible(cfg.Method, cfg.Lib) {
		return false
	}
	return cfg.Dies <= 1 || pc.KWay != nil
}

func RunOnce(ctx context.Context, pc *Context, k float64, cfg Config) (it Iteration, err error) {
	cfg.defaults()
	it = Iteration{K: k}
	if cfg.Dies > 1 && !dieAwarePrep(pc, cfg) {
		// Direct RunOnce on a multi-die config: build the k-way prefix
		// on a private copy so the caller's context is untouched.
		run := *pc
		if err := PrepareMapping(ctx, &run, cfg); err != nil {
			return it, err
		}
		pc = &run
	}
	var hotspots []route.HotSpot
	rec := obs.From(ctx).Child()
	if rec != nil {
		ctx = obs.WithRecorder(ctx, rec)
		var span *obs.Span
		ctx, span = rec.StartSpan(ctx, "flow.iteration")
		span.SetK(k)
		defer func() {
			span.End(err)
			it.Metrics = buildMetrics(rec, hotspots)
		}()
	}

	mres, err := runstage.Run(ctx, runstage.StageMap, k, cfg.StageTimeout, cfg.Hooks,
		func(ctx context.Context) (*mapper.Result, error) {
			// A compatible shared prefix skips re-partitioning and
			// re-matching; the covering result is byte-identical to the
			// classic path (the prepared determinism suite proves it).
			if pc.Prep.Compatible(cfg.Method, cfg.Lib) {
				return mapper.MapPrepared(ctx, pc.Prep, k)
			}
			return mapper.Map(ctx, pc.DAG, mapper.Input{Pos: pc.Pos, POPads: pc.POPads}, mapper.Options{
				K:       k,
				Method:  cfg.Method,
				Lib:     cfg.Lib,
				Workers: cfg.Workers,
			})
		})
	if err != nil {
		return it, err
	}
	it.Netlist = mres.Netlist
	it.CellArea = mres.CellArea
	it.NumCells = mres.NumCells
	it.DuplicatedCells = mres.DuplicatedCells
	it.Utilization = cfg.Layout.Utilization(mres.CellArea)

	if cfg.Verify {
		rep, err := runstage.Run(ctx, runstage.StageVerify, k, cfg.StageTimeout, cfg.Hooks,
			func(ctx context.Context) (*verify.Report, error) {
				rep, err := verify.Equivalent(ctx, pc.DAG, mres.Netlist, cfg.VerifyOpts)
				if err != nil {
					return nil, err
				}
				if !rep.Equivalent {
					return rep, fmt.Errorf("mapped netlist differs from subject DAG: %s", rep)
				}
				return rep, nil
			})
		if err != nil {
			return it, err
		}
		it.Verify = rep
	}

	pn := mres.Netlist.ToPlacement(pc.PIPads, pc.POList)
	pl, err := runstage.Run(ctx, runstage.StagePlace, k, cfg.StageTimeout, cfg.Hooks,
		func(ctx context.Context) (*place.Placement, error) {
			if cfg.FreshPlacement {
				return place.PlaceNetlist(ctx, pn.Cells, cfg.Layout, cfg.PlaceOpts)
			}
			seeds := make([]geom.Point, len(mres.Netlist.Instances))
			for i := range mres.Netlist.Instances {
				seeds[i] = mres.Netlist.Instances[i].Pos
			}
			return place.PlaceSeeded(ctx, pn.Cells, cfg.Layout, seeds, cfg.PlaceOpts)
		})
	if err != nil {
		return it, err
	}

	ropts := cfg.RouteOpts
	if ropts.Workers == 0 {
		ropts.Workers = cfg.Workers
	}
	if cfg.Dies > 1 && len(pc.Regions) > 1 {
		ropts.Regions = pc.Regions
		if ropts.RegionPinBudget == 0 {
			ropts.RegionPinBudget = cfg.InterDiePinBudget
		}
	}
	rres, err := runstage.Run(ctx, runstage.StageRoute, k, cfg.StageTimeout, cfg.Hooks,
		func(ctx context.Context) (*route.Result, error) {
			return route.RouteNetlist(ctx, pn.Cells, pl, cfg.Layout, ropts)
		})
	if err != nil {
		return it, err
	}
	it.Violations = rres.Violations
	it.FailedConnections = rres.FailedConnections
	it.MaxCongestion = rres.MaxCongestion
	it.WireLength = rres.WireLength
	it.CrossRegionNets = rres.CrossRegionNets
	it.Routable = rres.Routable()
	if rec != nil {
		hotspots = rres.Grid.HotSpots(maxHotSpots)
	}

	if cfg.RunSTA {
		timing, err := runstage.Run(ctx, runstage.StageSTA, k, cfg.StageTimeout, cfg.Hooks,
			func(ctx context.Context) (*sta.Result, error) {
				lens := sta.NetLengths(pn.SigNet, rres.NetLength)
				return sta.Analyze(mres.Netlist, lens, cfg.STAOpts)
			})
		if err != nil {
			return it, err
		}
		it.Timing = timing
	}
	return it, nil
}

package flow

// This file wires incremental ECO synthesis end to end: RunStateful
// runs one K iteration while capturing the state an edit can later be
// applied against (prepared mapping context, covering state, routing
// state), and RunECO applies a mapper.EditSet to that state —
// re-preparing only the dirtied partition trees, re-covering only
// those trees, and (in fast mode) re-ripping only the nets whose
// territories intersect the dirtied region. Both reuse the sweep's
// runstage machinery, so stage budgets, panic recovery, and
// cancellation behave exactly as in Run/RunOnce.

import (
	"context"
	"fmt"

	"casyn/internal/cover"
	"casyn/internal/geom"
	"casyn/internal/mapper"
	"casyn/internal/obs"
	"casyn/internal/place"
	"casyn/internal/route"
	"casyn/internal/runstage"
	"casyn/internal/sta"
	"casyn/internal/verify"
)

// ECOState is the reusable residue of one synthesized iteration: what
// the next edit is diffed against. Prep/Cover chain the mapping side
// (copy-on-write invalidation and delta covering); Route carries the
// settled routing (paths, usage, negotiation history) for the fast
// incremental reroute. States chain: each RunECO returns the successor
// state for the next edit.
type ECOState struct {
	Prep  *mapper.Prepared
	Cover *mapper.CoverState
	Route *route.State
	K     float64
	// Seeds and Place are the mapper seed positions and the legalized
	// placement of this iteration's netlist. Fast-mode ECO reuses them:
	// cells whose seeds are unchanged keep their legalized position
	// verbatim (place.PlaceECO), which keeps the dirtied routing region
	// genuinely local. Nil when the iteration ran with FreshPlacement.
	Seeds []geom.Point
	Place *place.Placement
}

// RunStateful is RunOnce at a fixed K that additionally returns the
// ECOState subsequent edits are applied against. The Iteration is
// byte-identical to RunOnce's at the same K (the state capture is
// passive). pc.Prep must be set and compatible (PrepareMapping);
// otherwise it is built here, landing on pc for reuse.
func RunStateful(ctx context.Context, pc *Context, k float64, cfg Config) (Iteration, *ECOState, error) {
	// A nil Lib means "the default library". Library compatibility is
	// pointer identity and library.Default() allocates per call, so a
	// prefix already on pc (built from another defaulted config) would
	// never match a fresh default — adopt its library instead of
	// rebuilding the whole prefix.
	if cfg.Lib == nil && pc.Prep != nil {
		cfg.Lib = pc.Prep.Lib()
	}
	cfg.defaults()
	if !pc.Prep.Compatible(cfg.Method, cfg.Lib) {
		if err := PrepareMapping(ctx, pc, cfg); err != nil {
			return Iteration{K: k, Err: err, Skipped: true}, nil, err
		}
	}
	return runECOIteration(ctx, pc, cfg, k, ecoIn{prep: pc.Prep})
}

// RunECO applies an edit set against a previous iteration's state and
// re-synthesizes incrementally: Invalidate recomputes only the dirtied
// partition trees' match enumerations (StageECO), MapECO re-covers
// only those trees against the previous same-K cover (StageMap), and
// the mapped netlist is verified, placed, routed, and timed exactly as
// a RunOnce iteration. The returned Iteration and the mapped netlist
// are byte-identical to a from-scratch synthesis of the edited design
// in the same placement context (the differential ECO harness proves
// this across circuits, edit streams, K values, and worker counts).
//
// Placement and routing run from scratch by default, which is what
// makes the byte-identity exact. With cfg.FastECORoute set, both go
// incremental: cells whose mapper seeds are unchanged keep st.Place's
// legalized positions verbatim (place.PlaceECO), and the router reuses
// st.Route — only nets whose territories intersect the dirtied region
// are ripped up and rerouted against the persisted congestion history.
// Milliseconds instead of a full legalize/negotiate, at the cost of
// exact placement and path identity (the route/eco invariant tests pin
// what fast mode does guarantee).
//
// st is read-only: on error the caller's state is still valid, and on
// success it remains usable (e.g. to try a different edit set against
// the same baseline).
func RunECO(ctx context.Context, pc *Context, st *ECOState, edits mapper.EditSet, cfg Config) (Iteration, *ECOState, error) {
	if st == nil || st.Prep == nil || st.Cover == nil {
		err := fmt.Errorf("flow: RunECO needs the state of a previous RunStateful/RunECO")
		return Iteration{Err: err, Skipped: true}, nil, err
	}
	// A nil Lib means "the default library", but the delta cover's
	// matches reference the exact library the state was prepared with
	// (Compatible is pointer identity; library.Default() allocates per
	// call) — so the state's own library is the only correct choice.
	if cfg.Lib == nil {
		cfg.Lib = st.Prep.Lib()
	}
	cfg.defaults()
	if !st.Prep.Compatible(cfg.Method, cfg.Lib) {
		err := fmt.Errorf("flow: ECO state was prepared with a different method or library")
		return Iteration{K: st.K, Err: err, Skipped: true}, nil, err
	}
	return runECOIteration(ctx, pc, cfg, st.K, ecoIn{prev: st, edits: edits})
}

// ecoIn selects runECOIteration's mapping mode: prep set = full
// stateful iteration; prev set = incremental iteration against it;
// field set = K-field covering (adaptive.go) — with fieldPrev also
// set, a field delta that re-covers only fieldDirty trees.
type ecoIn struct {
	prep  *mapper.Prepared
	prev  *ECOState
	edits mapper.EditSet

	field      *cover.KField
	fieldPrev  *mapper.CoverState
	fieldDirty []bool
}

func runECOIteration(ctx context.Context, pc *Context, cfg Config, k float64, in ecoIn) (it Iteration, _ *ECOState, err error) {
	it = Iteration{K: k}
	var hotspots []route.HotSpot
	rec := obs.From(ctx).Child()
	if rec != nil {
		ctx = obs.WithRecorder(ctx, rec)
		var span *obs.Span
		ctx, span = rec.StartSpan(ctx, "flow.iteration")
		span.SetK(k)
		defer func() {
			span.End(err)
			it.Metrics = buildMetrics(rec, hotspots)
		}()
	}

	// Mapping side: full stateful cover, or invalidate + delta cover.
	prep := in.prep
	var eco *mapper.ECO
	if in.prev != nil {
		eco, err = runstage.Run(ctx, runstage.StageECO, k, cfg.StageTimeout, cfg.Hooks,
			func(ctx context.Context) (*mapper.ECO, error) {
				return in.prev.Prep.Invalidate(ctx, in.edits)
			})
		if err != nil {
			return it, nil, err
		}
		prep = &eco.Prep.Prepared
	}
	type mapOut struct {
		res *mapper.Result
		cov *mapper.CoverState
	}
	mo, err := runstage.Run(ctx, runstage.StageMap, k, cfg.StageTimeout, cfg.Hooks,
		func(ctx context.Context) (mapOut, error) {
			if eco != nil {
				res, cov, err := mapper.MapECO(ctx, eco, in.prev.Cover, k)
				return mapOut{res, cov}, err
			}
			if in.field != nil {
				if in.fieldPrev != nil {
					res, cov, err := mapper.MapFieldDelta(ctx, in.fieldPrev, k, in.field, in.fieldDirty)
					return mapOut{res, cov}, err
				}
				res, cov, err := mapper.MapWithField(ctx, prep, k, in.field)
				return mapOut{res, cov}, err
			}
			res, cov, err := mapper.MapStateful(ctx, prep, k)
			return mapOut{res, cov}, err
		})
	if err != nil {
		return it, nil, err
	}
	mres := mo.res
	it.Netlist = mres.Netlist
	it.CellArea = mres.CellArea
	it.NumCells = mres.NumCells
	it.DuplicatedCells = mres.DuplicatedCells
	it.Utilization = cfg.Layout.Utilization(mres.CellArea)

	if cfg.Verify {
		rep, err := runstage.Run(ctx, runstage.StageVerify, k, cfg.StageTimeout, cfg.Hooks,
			func(ctx context.Context) (*verify.Report, error) {
				rep, err := verify.Equivalent(ctx, prep.DAG(), mres.Netlist, cfg.VerifyOpts)
				if err != nil {
					return nil, err
				}
				if !rep.Equivalent {
					return rep, fmt.Errorf("mapped netlist differs from subject DAG: %s", rep)
				}
				return rep, nil
			})
		if err != nil {
			return it, nil, err
		}
		it.Verify = rep
	}

	pn := mres.Netlist.ToPlacement(pc.PIPads, pc.POList)
	var seeds []geom.Point
	if !cfg.FreshPlacement {
		seeds = make([]geom.Point, len(mres.Netlist.Instances))
		for i := range mres.Netlist.Instances {
			seeds[i] = mres.Netlist.Instances[i].Pos
		}
	}
	pl, err := runstage.Run(ctx, runstage.StagePlace, k, cfg.StageTimeout, cfg.Hooks,
		func(ctx context.Context) (*place.Placement, error) {
			if cfg.FreshPlacement {
				return place.PlaceNetlist(ctx, pn.Cells, cfg.Layout, cfg.PlaceOpts)
			}
			// Fast-mode ECO: reuse the previous legalized placement for
			// every cell whose seed is unchanged, snapping only moved
			// cells. Keeps the routing dirty region local, at the cost of
			// exact placement identity (fast mode is already non-exact).
			if eco != nil && cfg.FastECORoute && in.prev.Place != nil {
				if p, moved, ok := place.PlaceECO(pn.Cells, cfg.Layout, in.prev.Place, in.prev.Seeds, seeds); ok {
					if rec != nil {
						rec.Add("eco.place_incremental", 1)
						rec.Add("eco.place_moved_cells", int64(moved))
					}
					return p, nil
				}
				if rec != nil {
					rec.Add("eco.place_full", 1)
				}
			}
			return place.PlaceSeeded(ctx, pn.Cells, cfg.Layout, seeds, cfg.PlaceOpts)
		})
	if err != nil {
		return it, nil, err
	}

	ropts := cfg.RouteOpts
	if ropts.Workers == 0 {
		ropts.Workers = cfg.Workers
	}
	type routeOut struct {
		res *route.Result
		st  *route.State
	}
	ro, err := runstage.Run(ctx, runstage.StageRoute, k, cfg.StageTimeout, cfg.Hooks,
		func(ctx context.Context) (routeOut, error) {
			if eco != nil && cfg.FastECORoute && in.prev.Route != nil {
				res, rst, err := route.RouteECO(ctx, in.prev.Route, pn.Cells, pl)
				return routeOut{res, rst}, err
			}
			res, rst, err := route.RouteNetlistState(ctx, pn.Cells, pl, cfg.Layout, ropts)
			return routeOut{res, rst}, err
		})
	if err != nil {
		return it, nil, err
	}
	rres := ro.res
	it.Violations = rres.Violations
	it.FailedConnections = rres.FailedConnections
	it.MaxCongestion = rres.MaxCongestion
	it.WireLength = rres.WireLength
	it.Routable = rres.Routable()
	if rec != nil {
		hotspots = rres.Grid.HotSpots(maxHotSpots)
	}

	if cfg.RunSTA {
		timing, err := runstage.Run(ctx, runstage.StageSTA, k, cfg.StageTimeout, cfg.Hooks,
			func(ctx context.Context) (*sta.Result, error) {
				lens := sta.NetLengths(pn.SigNet, rres.NetLength)
				return sta.Analyze(mres.Netlist, lens, cfg.STAOpts)
			})
		if err != nil {
			return it, nil, err
		}
		it.Timing = timing
	}
	return it, &ECOState{Prep: prep, Cover: mo.cov, Route: ro.st, K: k, Seeds: seeds, Place: pl}, nil
}

package flow

import (
	"context"
	"errors"
	"testing"

	"casyn/internal/runstage"
	"casyn/internal/verify"
)

// TestConfigVerifyProvesIterations: with Config.Verify set, every
// iteration carries a proof that the mapped netlist matches the
// subject DAG.
func TestConfigVerifyProvesIterations(t *testing.T) {
	pc, cfg := prepared(t, 0.55)
	cfg.Verify = true
	cfg.KSchedule = []float64{0, 0.5}
	res, err := Run(context.Background(), pc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) != 2 {
		t.Fatalf("iterations = %d, want 2", len(res.Iterations))
	}
	for _, it := range res.Iterations {
		if it.Verify == nil {
			t.Fatalf("K=%g: no verification report", it.K)
		}
		if !it.Verify.Equivalent || !it.Verify.Proven {
			t.Errorf("K=%g: mapped netlist not proven equivalent: %s", it.K, it.Verify)
		}
	}
}

// TestConfigVerifyParallelMatchesSerial: the verification reports are
// identical whether the K-sweep runs serially or across workers.
func TestConfigVerifyParallelMatchesSerial(t *testing.T) {
	pc, cfg := prepared(t, 0.55)
	cfg.Verify = true
	cfg.KSchedule = []float64{0, 0.5}
	serial, err := Run(context.Background(), pc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := Run(context.Background(), pc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Iterations {
		a, b := serial.Iterations[i].Verify, par.Iterations[i].Verify
		if a == nil || b == nil {
			t.Fatalf("iteration %d: missing report (serial=%v parallel=%v)", i, a, b)
		}
		if a.Method != b.Method || a.Equivalent != b.Equivalent || a.Proven != b.Proven ||
			a.VectorsSimulated != b.VectorsSimulated {
			t.Errorf("iteration %d: reports differ: serial %s vs parallel %s", i, a, b)
		}
	}
}

// TestVerifyStageFaultDegrades: an injected verify-stage failure on one
// K degrades that iteration without losing the sweep, like any other
// stage.
func TestVerifyStageFaultDegrades(t *testing.T) {
	pc, cfg := prepared(t, 0.55)
	cfg.Verify = true
	cfg.KSchedule = []float64{0, 0.5}
	boom := errors.New("injected verify failure")
	cfg.Hooks = &runstage.Hooks{Faults: []runstage.Fault{
		{Stage: runstage.StageVerify, K: 0.5, Err: boom},
	}}
	res, err := Run(context.Background(), pc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ok, failed int
	for _, it := range res.Iterations {
		if it.Err != nil {
			failed++
			se := runstage.AsStage(it.Err)
			if se == nil || se.Stage != runstage.StageVerify || !errors.Is(it.Err, boom) {
				t.Errorf("K=%g: wrong failure: %v", it.K, it.Err)
			}
		} else {
			ok++
			if it.Verify == nil || !it.Verify.Proven {
				t.Errorf("K=%g: surviving iteration unverified", it.K)
			}
		}
	}
	if ok != 1 || failed != 1 {
		t.Errorf("ok=%d failed=%d, want 1/1", ok, failed)
	}
}

// TestVerifyOptsFlowThrough: VerifyOpts reach the checker (a SimOnly
// run can never prove equivalence).
func TestVerifyOptsFlowThrough(t *testing.T) {
	pc, cfg := prepared(t, 0.55)
	cfg.Verify = true
	cfg.VerifyOpts = verify.Options{SimOnly: true}
	it, err := RunOnce(context.Background(), pc, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if it.Verify == nil {
		t.Fatal("no verification report")
	}
	if !it.Verify.Equivalent {
		t.Fatalf("simulation found a mismatch: %s", it.Verify)
	}
	if it.Verify.Proven {
		t.Error("SimOnly run claims a proof")
	}
}

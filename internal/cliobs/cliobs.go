// Package cliobs wires the observability flags shared by the casyn
// command-line tools: -metrics (JSONL event stream), -trace (span tree
// to stderr), -prom (Prometheus-style text dump), and -pprof /
// -pprof-out (runtime profiles). Each CLI registers the flags before
// flag.Parse, then brackets its run between Start and the returned
// finish function:
//
//	ob := cliobs.Register()
//	flag.Parse()
//	ctx, finish, err := ob.Start(ctx)
//	// ... run the flow with ctx ...
//	err = finish() // writes every requested output
//
// finish must be called even when the run fails so the partial trace
// of a failed run still lands on disk.
package cliobs

import (
	"context"
	"flag"
	"io"
	"os"

	"casyn/internal/obs"
)

// Flags holds the parsed observability flag values.
type Flags struct {
	// Metrics is the JSONL output path; "-" writes to stdout.
	Metrics string
	// Trace prints the span tree to stderr when the run ends.
	Trace bool
	// Prom is the Prometheus-style text dump path; "-" writes to stdout.
	Prom string
	// Pprof selects a runtime profile: "", "cpu", "heap", or "mutex".
	Pprof string
	// PprofOut is the profile output path (default "<mode>.pprof").
	PprofOut string
}

// Register declares the observability flags on fs (nil = the process
// flag set) and returns the destination they parse into.
func Register(fs *flag.FlagSet) *Flags {
	if fs == nil {
		fs = flag.CommandLine
	}
	f := &Flags{}
	fs.StringVar(&f.Metrics, "metrics", "", "write metrics and span events as JSONL to `FILE` (\"-\" = stdout)")
	fs.BoolVar(&f.Trace, "trace", false, "print the span tree to stderr when the run ends")
	fs.StringVar(&f.Prom, "prom", "", "write a Prometheus-style text metrics dump to `FILE` (\"-\" = stdout)")
	fs.StringVar(&f.Pprof, "pprof", "", "capture a runtime `profile`: cpu, heap, or mutex")
	fs.StringVar(&f.PprofOut, "pprof-out", "", "profile output `FILE` (default <mode>.pprof)")
	return f
}

// Enabled reports whether any observability output was requested.
func (f *Flags) Enabled() bool {
	return f.Metrics != "" || f.Trace || f.Prom != "" || f.Pprof != ""
}

// Start attaches an obs.Recorder to ctx when any recording output was
// requested and starts the requested profile. The returned finish
// function stops the profile and writes every requested output; call
// it exactly once. When nothing was requested it returns ctx unchanged
// and a no-op finish, so callers need no conditional.
func (f *Flags) Start(ctx context.Context) (context.Context, func() error, error) {
	var rec *obs.Recorder
	if f.Metrics != "" || f.Trace || f.Prom != "" {
		rec = obs.New()
		ctx = obs.WithRecorder(ctx, rec)
	}
	stopProf := func() error { return nil }
	if f.Pprof != "" {
		out := f.PprofOut
		if out == "" {
			out = f.Pprof + ".pprof"
		}
		var err error
		stopProf, err = obs.StartProfile(f.Pprof, out)
		if err != nil {
			return ctx, func() error { return nil }, err
		}
	}
	finish := func() error {
		var firstErr error
		keep := func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		keep(stopProf())
		if rec == nil {
			return firstErr
		}
		snap := rec.Snapshot()
		if f.Metrics != "" {
			keep(writeTo(f.Metrics, func(w io.Writer) error { return obs.WriteJSONL(w, snap) }))
		}
		if f.Prom != "" {
			keep(writeTo(f.Prom, func(w io.Writer) error { return obs.WriteProm(w, snap) }))
		}
		if f.Trace {
			keep(obs.WriteSpanTree(os.Stderr, snap))
		}
		return firstErr
	}
	return ctx, finish, nil
}

// writeTo streams write into path, with "-" meaning stdout.
func writeTo(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(fh); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}

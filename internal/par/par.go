// Package par is the repository's parallel-execution substrate: a
// bounded worker pool with ordered fan-out/fan-in, built on the
// standard library only.
//
// The synthesis pipeline has three independent sources of parallelism
// — the K ladder of the flow (each congestion factor is an independent
// map/place/route run over a read-only prepared placement), the
// partition forest of the coverer (each tree is an independent
// dynamic program), and the two-pin segment batches of the router —
// and all three need the same discipline:
//
//   - bounded concurrency (Workers caps the goroutines, 0 means
//     runtime.GOMAXPROCS);
//   - deterministic reduction (results are collected by task index, so
//     the output is byte-identical no matter how the scheduler
//     interleaves the workers);
//   - context awareness (a canceled ctx stops dispatching new tasks;
//     in-flight tasks observe it through their own cooperative
//     checks);
//   - error discipline (the reported error is the one from the
//     lowest-indexed failing task — the same error a serial loop would
//     have returned first).
//
// Tasks are dispatched in ascending index order. That ordering is what
// makes speculative sweeps (flow.Run's StopAtFirstRoutable) sensible:
// lower-K iterations, which the methodology prefers, are started
// first, and higher-K work is the part that gets canceled.
package par

import (
	"context"
	"runtime"
	"sync"
)

// Workers normalizes a worker-count setting: values <= 0 mean
// runtime.GOMAXPROCS(0); anything else is returned unchanged. The
// whole repository shares this convention (0 = all cores, 1 = serial).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on at most workers
// goroutines (normalized through Workers). Tasks are dispatched in
// ascending index order. When a task fails or ctx is canceled, no new
// tasks are dispatched; tasks already running finish (they are
// expected to watch ctx themselves). The returned error is the
// lowest-indexed task error, or the ctx error when cancellation struck
// before any task failed — exactly what the equivalent serial loop
// would have returned.
//
// workers == 1 runs the plain serial loop on the calling goroutine: no
// goroutines, no channels, bit-for-bit the traditional path.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		mu       sync.Mutex
		next     int
		firstIdx = n // lowest failing index seen
		firstErr error
		stopped  bool
	)
	// claim hands out the next index, or -1 when dispatch must stop.
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if stopped || next >= n {
			return -1
		}
		i := next
		next++
		return i
	}
	fail := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		stopped = true
		if i < firstIdx {
			firstIdx = i
			firstErr = err
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if err := ctx.Err(); err != nil {
					fail(n, err) // ctx error ranks below any task error
					return
				}
				i := claim()
				if i < 0 {
					return
				}
				if err := fn(i); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstIdx < n {
		return firstErr
	}
	if stopped {
		// Only cancellation stopped dispatch; surface the ctx error.
		if err := ctx.Err(); err != nil {
			return err
		}
		return firstErr
	}
	return nil
}

// Map runs fn over [0, n) with ForEach's dispatch rules and returns
// the results in index order. On error the partial slice is returned:
// entries for tasks that completed are filled, the rest are zero
// values.
func Map[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}

package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersNormalization(t *testing.T) {
	t.Parallel()
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Errorf("Workers(1) = %d", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestForEachRunsEveryTaskOnce(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 57
		counts := make([]int32, n)
		err := ForEach(context.Background(), workers, n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroTasks(t *testing.T) {
	t.Parallel()
	if err := ForEach(context.Background(), 4, 0, func(int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	t.Parallel()
	const workers = 3
	var cur, peak int32
	err := ForEach(context.Background(), workers, 40, func(i int) error {
		c := atomic.AddInt32(&cur, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt32(&cur, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Errorf("peak concurrency %d exceeds workers %d", peak, workers)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	t.Parallel()
	// Several tasks fail; the reported error must be the one a serial
	// loop would have hit first (lowest index among failures actually
	// dispatched).
	errAt := func(i int) error { return fmt.Errorf("task %d failed", i) }
	for _, workers := range []int{1, 4} {
		err := ForEach(context.Background(), workers, 20, func(i int) error {
			if i == 3 || i == 5 {
				return errAt(i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 3 failed" {
			t.Errorf("workers=%d: err = %v, want task 3's error", workers, err)
		}
	}
}

func TestForEachStopsDispatchAfterError(t *testing.T) {
	t.Parallel()
	var ran int32
	injected := errors.New("boom")
	err := ForEach(context.Background(), 2, 1000, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 0 {
			return injected
		}
		return nil
	})
	if !errors.Is(err, injected) {
		t.Fatalf("err = %v", err)
	}
	if n := atomic.LoadInt32(&ran); n > 10 {
		t.Errorf("%d tasks ran after an immediate failure; dispatch did not stop", n)
	}
}

func TestForEachContextCancel(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	var once sync.Once
	err := ForEach(ctx, 2, 1000, func(i int) error {
		atomic.AddInt32(&ran, 1)
		once.Do(cancel)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt32(&ran); n > 100 {
		t.Errorf("%d tasks ran after cancellation", n)
	}
	// Pre-canceled ctx: serial path too.
	if err := ForEach(ctx, 1, 5, func(int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Errorf("serial pre-canceled err = %v", err)
	}
}

func TestForEachTaskErrorBeatsCtxError(t *testing.T) {
	t.Parallel()
	// A task failure and a cancellation race: the task error wins when
	// its index is a real task (ctx errors rank below all task errors).
	ctx, cancel := context.WithCancel(context.Background())
	injected := errors.New("task failure")
	err := ForEach(ctx, 2, 50, func(i int) error {
		if i == 0 {
			cancel()
			return injected
		}
		return nil
	})
	if !errors.Is(err, injected) {
		t.Errorf("err = %v, want the task error to win", err)
	}
}

func TestMapOrderedResults(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{1, 8} {
		out, err := Map(context.Background(), workers, 100, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapPartialOnError(t *testing.T) {
	t.Parallel()
	out, err := Map(context.Background(), 1, 10, func(i int) (int, error) {
		if i == 4 {
			return 0, errors.New("stop")
		}
		return i + 1, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if len(out) != 10 || out[3] != 4 || out[4] != 0 {
		t.Errorf("partial results wrong: %v", out)
	}
}

func TestForEachDeterministicReduction(t *testing.T) {
	t.Parallel()
	// The same computation under different worker counts must reduce to
	// identical results.
	run := func(workers int) []int {
		out, err := Map(context.Background(), workers, 64, func(i int) (int, error) {
			return i*31 + 7, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b, c := run(1), run(4), run(16)
	for i := range a {
		if a[i] != b[i] || a[i] != c[i] {
			t.Fatalf("results differ at %d: %d %d %d", i, a[i], b[i], c[i])
		}
	}
}

// Package library implements the standard-cell library used by
// technology mapping: cells with areas and delay parameters, and
// pattern trees over the NAND2/INV base functions that the matcher
// binds onto subject trees.
//
// The default library (see Default) is a synthetic stand-in for the
// proprietary CORELIB8DHS 2.0 the paper uses. Its areas are chosen so
// the paper's Figure 1 arithmetic holds exactly: the min-area mapping
// NAND3 + AOI21 + 2·INV totals 53.248 µm² and the congestion-aware
// mapping 2·OR2 + 2·NAND2 + INV totals 65.536 µm².
package library

import (
	"fmt"
	"strings"
)

// PatternOp is the operator of a pattern-tree node.
type PatternOp uint8

const (
	// OpVar is a pattern leaf binding a subject subtree to a variable.
	OpVar PatternOp = iota
	// OpInv is an inverter pattern node.
	OpInv
	// OpNand2 is a two-input NAND pattern node.
	OpNand2
)

// Pattern is a tree over NAND2/INV whose leaves are named variables.
// A variable may appear more than once (e.g. in XOR patterns); the
// matcher then requires the repeated leaves to bind the same subject
// gate.
type Pattern struct {
	Op   PatternOp
	Var  string     // for OpVar
	Kids []*Pattern // 1 for OpInv, 2 for OpNand2
}

// Var returns a leaf pattern.
func Var(name string) *Pattern { return &Pattern{Op: OpVar, Var: name} }

// Inv returns an inverter pattern.
func Inv(k *Pattern) *Pattern { return &Pattern{Op: OpInv, Kids: []*Pattern{k}} }

// Nand returns a NAND2 pattern.
func Nand(a, b *Pattern) *Pattern { return &Pattern{Op: OpNand2, Kids: []*Pattern{a, b}} }

// Vars returns the distinct variable names of the pattern in first-
// appearance order.
func (p *Pattern) Vars() []string {
	var out []string
	seen := map[string]bool{}
	var walk func(*Pattern)
	walk = func(q *Pattern) {
		switch q.Op {
		case OpVar:
			if !seen[q.Var] {
				seen[q.Var] = true
				out = append(out, q.Var)
			}
		default:
			for _, k := range q.Kids {
				walk(k)
			}
		}
	}
	walk(p)
	return out
}

// NumGates returns the number of internal (NAND2/INV) nodes.
func (p *Pattern) NumGates() int {
	switch p.Op {
	case OpVar:
		return 0
	default:
		n := 1
		for _, k := range p.Kids {
			n += k.NumGates()
		}
		return n
	}
}

// Eval evaluates the pattern under a variable assignment.
func (p *Pattern) Eval(assign map[string]bool) bool {
	switch p.Op {
	case OpVar:
		return assign[p.Var]
	case OpInv:
		return !p.Kids[0].Eval(assign)
	case OpNand2:
		return !(p.Kids[0].Eval(assign) && p.Kids[1].Eval(assign))
	default:
		panic("library: invalid pattern op")
	}
}

// String renders the pattern in the expression syntax accepted by
// ParsePattern.
func (p *Pattern) String() string {
	switch p.Op {
	case OpVar:
		return p.Var
	case OpInv:
		return "INV(" + p.Kids[0].String() + ")"
	case OpNand2:
		return "NAND(" + p.Kids[0].String() + "," + p.Kids[1].String() + ")"
	default:
		return "?"
	}
}

// ParsePattern parses expressions like "NAND(a,INV(NAND(b,c)))".
// Variable names are lowercase identifiers.
func ParsePattern(s string) (*Pattern, error) {
	p := &patternParser{src: s}
	pat, err := p.parse()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("library: trailing input %q", p.src[p.pos:])
	}
	return pat, nil
}

// MustParsePattern is ParsePattern that panics on error; for the
// built-in library tables.
func MustParsePattern(s string) *Pattern {
	p, err := ParsePattern(s)
	if err != nil {
		panic(err)
	}
	return p
}

type patternParser struct {
	src string
	pos int
}

func (p *patternParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *patternParser) parse() (*Pattern, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isIdentChar(p.src[p.pos]) {
		p.pos++
	}
	ident := p.src[start:p.pos]
	if ident == "" {
		return nil, fmt.Errorf("library: expected identifier at %d in %q", start, p.src)
	}
	p.skipSpace()
	switch strings.ToUpper(ident) {
	case "INV", "NAND":
		if p.pos >= len(p.src) || p.src[p.pos] != '(' {
			return nil, fmt.Errorf("library: expected ( after %s", ident)
		}
		p.pos++
		first, err := p.parse()
		if err != nil {
			return nil, err
		}
		kids := []*Pattern{first}
		p.skipSpace()
		for p.pos < len(p.src) && p.src[p.pos] == ',' {
			p.pos++
			k, err := p.parse()
			if err != nil {
				return nil, err
			}
			kids = append(kids, k)
			p.skipSpace()
		}
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, fmt.Errorf("library: expected ) in %q", p.src)
		}
		p.pos++
		if strings.ToUpper(ident) == "INV" {
			if len(kids) != 1 {
				return nil, fmt.Errorf("library: INV takes 1 argument, got %d", len(kids))
			}
			return Inv(kids[0]), nil
		}
		if len(kids) != 2 {
			return nil, fmt.Errorf("library: NAND takes 2 arguments, got %d", len(kids))
		}
		return Nand(kids[0], kids[1]), nil
	default:
		if ident != strings.ToLower(ident) {
			return nil, fmt.Errorf("library: unknown operator %q", ident)
		}
		return Var(ident), nil
	}
}

func isIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

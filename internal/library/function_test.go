package library

import (
	"testing"
)

// cellReference is the complete table of CORELIB cell semantics: one
// reference function per cell, evaluated over the pattern's variable
// order. TestEveryCellFunctionAgainstTruthTable asserts the table
// covers every cell in the default library, so adding a cell without a
// reference here fails the suite.
var cellReference = map[string]func(v []bool) bool{
	"INV":    func(v []bool) bool { return !v[0] },
	"NAND2":  func(v []bool) bool { return !(v[0] && v[1]) },
	"NAND3":  func(v []bool) bool { return !(v[0] && v[1] && v[2]) },
	"NAND4":  func(v []bool) bool { return !(v[0] && v[1] && v[2] && v[3]) },
	"NAND5":  func(v []bool) bool { return !(v[0] && v[1] && v[2] && v[3] && v[4]) },
	"NAND6":  func(v []bool) bool { return !(v[0] && v[1] && v[2] && v[3] && v[4] && v[5]) },
	"NOR2":   func(v []bool) bool { return !(v[0] || v[1]) },
	"NOR3":   func(v []bool) bool { return !(v[0] || v[1] || v[2]) },
	"NOR4":   func(v []bool) bool { return !(v[0] || v[1] || v[2] || v[3]) },
	"AND2":   func(v []bool) bool { return v[0] && v[1] },
	"AND3":   func(v []bool) bool { return v[0] && v[1] && v[2] },
	"AND4":   func(v []bool) bool { return v[0] && v[1] && v[2] && v[3] },
	"OR2":    func(v []bool) bool { return v[0] || v[1] },
	"OR3":    func(v []bool) bool { return v[0] || v[1] || v[2] },
	"AOI21":  func(v []bool) bool { return !(v[0] && v[1] || v[2]) },
	"AOI22":  func(v []bool) bool { return !(v[0] && v[1] || v[2] && v[3]) },
	"AOI211": func(v []bool) bool { return !(v[0] && v[1] || v[2] || v[3]) },
	"AOI222": func(v []bool) bool { return !(v[0] && v[1] || v[2] && v[3] || v[4] && v[5]) },
	"OAI21":  func(v []bool) bool { return !((v[0] || v[1]) && v[2]) },
	"OAI22":  func(v []bool) bool { return !((v[0] || v[1]) && (v[2] || v[3])) },
	"OAI211": func(v []bool) bool { return !((v[0] || v[1]) && v[2] && v[3]) },
	"OAI222": func(v []bool) bool { return !((v[0] || v[1]) && (v[2] || v[3]) && (v[4] || v[5])) },
	"XOR2":   func(v []bool) bool { return v[0] != v[1] },
	"XNOR2":  func(v []bool) bool { return v[0] == v[1] },
}

// TestEveryCellFunctionAgainstTruthTable checks every pattern of every
// CORELIB cell against its reference function over the full truth
// table, and that the reference table and the library agree on the
// cell set in both directions.
func TestEveryCellFunctionAgainstTruthTable(t *testing.T) {
	t.Parallel()
	l := Default()
	for _, cell := range l.Cells() {
		ref, ok := cellReference[cell.Name]
		if !ok {
			t.Errorf("cell %s has no reference function", cell.Name)
			continue
		}
		vars := cell.Patterns[0].Vars()
		for m := 0; m < 1<<len(vars); m++ {
			vals := make([]bool, len(vars))
			assign := map[string]bool{}
			for i, v := range vars {
				vals[i] = m>>i&1 == 1
				assign[v] = vals[i]
			}
			want := ref(vals)
			for pi, p := range cell.Patterns {
				if got := p.Eval(assign); got != want {
					t.Errorf("%s pattern %d (%s) minterm %d: got %v want %v",
						cell.Name, pi, p, m, got, want)
				}
			}
		}
	}
	for name := range cellReference {
		if l.Cell(name) == nil {
			t.Errorf("reference names cell %s that the library lacks", name)
		}
	}
}

// TestCellPatternsShareVariableOrder: every pattern of a cell exposes
// the same variable list in the same order — the contract the mapper's
// leaf binding and the netlist's pin assignment both rely on.
func TestCellPatternsShareVariableOrder(t *testing.T) {
	t.Parallel()
	for _, cell := range Default().Cells() {
		base := cell.Patterns[0].Vars()
		for pi, p := range cell.Patterns {
			vars := p.Vars()
			if len(vars) != len(base) {
				t.Errorf("%s pattern %d has %d vars, pattern 0 has %d", cell.Name, pi, len(vars), len(base))
				continue
			}
			for i := range vars {
				if vars[i] != base[i] {
					t.Errorf("%s pattern %d variable order %v differs from %v", cell.Name, pi, vars, base)
					break
				}
			}
		}
	}
}

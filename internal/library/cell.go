package library

import (
	"fmt"
	"sort"
)

// Cell is one standard cell: its silicon area, a linear delay model,
// and one or more pattern trees describing its function in NAND2/INV
// base gates. Multiple patterns encode the distinct tree
// decompositions a cell admits (e.g. NAND4 has a balanced and a linear
// form).
type Cell struct {
	// Name is the cell's library name, e.g. "NAND2".
	Name string
	// Area is the cell area in µm².
	Area float64
	// Patterns are the tree decompositions; every pattern of a cell
	// must compute the same function over the same variable set.
	Patterns []*Pattern
	// Intrinsic is the fixed delay component in ns.
	Intrinsic float64
	// Drive is the output drive resistance in kΩ; gate delay is
	// Intrinsic + Drive·Cload with Cload in pF.
	Drive float64
	// InputCap is the capacitance of each input pin in pF.
	InputCap float64
}

// NumInputs returns the number of distinct pattern variables.
func (c *Cell) NumInputs() int {
	if len(c.Patterns) == 0 {
		return 0
	}
	return len(c.Patterns[0].Vars())
}

// Validate checks the cell's internal consistency: positive area,
// at least one pattern, and functional equality of all patterns over
// a common variable set (exhaustive up to 10 inputs).
func (c *Cell) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("library: cell with empty name")
	}
	if c.Area <= 0 {
		return fmt.Errorf("library: cell %s has non-positive area", c.Name)
	}
	if len(c.Patterns) == 0 {
		return fmt.Errorf("library: cell %s has no patterns", c.Name)
	}
	if c.Intrinsic < 0 || c.Drive < 0 || c.InputCap < 0 {
		return fmt.Errorf("library: cell %s has negative delay parameters", c.Name)
	}
	ref := c.Patterns[0]
	refVars := append([]string(nil), ref.Vars()...)
	sort.Strings(refVars)
	if len(refVars) > 10 {
		return fmt.Errorf("library: cell %s has %d inputs; validation supports <= 10", c.Name, len(refVars))
	}
	for pi, p := range c.Patterns[1:] {
		vars := append([]string(nil), p.Vars()...)
		sort.Strings(vars)
		if len(vars) != len(refVars) {
			return fmt.Errorf("library: cell %s pattern %d has %d vars, want %d", c.Name, pi+1, len(vars), len(refVars))
		}
		for i := range vars {
			if vars[i] != refVars[i] {
				return fmt.Errorf("library: cell %s pattern %d variable set differs", c.Name, pi+1)
			}
		}
	}
	assign := map[string]bool{}
	for m := 0; m < 1<<len(refVars); m++ {
		for i, v := range refVars {
			assign[v] = m>>i&1 == 1
		}
		want := ref.Eval(assign)
		for pi, p := range c.Patterns[1:] {
			if p.Eval(assign) != want {
				return fmt.Errorf("library: cell %s pattern %d functionally differs at minterm %d", c.Name, pi+1, m)
			}
		}
	}
	return nil
}

// Library is a named collection of cells.
type Library struct {
	Name  string
	cells []*Cell
	index map[string]*Cell
}

// NewLibrary builds a library from cells, validating each.
func NewLibrary(name string, cells []*Cell) (*Library, error) {
	l := &Library{Name: name, index: make(map[string]*Cell, len(cells))}
	for _, c := range cells {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		if _, dup := l.index[c.Name]; dup {
			return nil, fmt.Errorf("library: duplicate cell %s", c.Name)
		}
		l.cells = append(l.cells, c)
		l.index[c.Name] = c
	}
	if _, ok := l.index["INV"]; !ok {
		return nil, fmt.Errorf("library: %s lacks the mandatory INV cell", name)
	}
	if _, ok := l.index["NAND2"]; !ok {
		return nil, fmt.Errorf("library: %s lacks the mandatory NAND2 cell", name)
	}
	return l, nil
}

// Cells returns the cells in declaration order.
func (l *Library) Cells() []*Cell { return l.cells }

// Cell returns the named cell, or nil.
func (l *Library) Cell(name string) *Cell { return l.index[name] }

// Inv returns the inverter cell (guaranteed present).
func (l *Library) Inv() *Cell { return l.index["INV"] }

// Nand2 returns the two-input NAND cell (guaranteed present).
func (l *Library) Nand2() *Cell { return l.index["NAND2"] }

// Default returns the synthetic CORELIB-style library. Areas are in
// µm² with a row (cell) height of 6.656 µm; see the package comment
// for the Figure 1 calibration. Delay parameters follow a generic
// 0.18 µm flavor: intrinsic delays of tens of picoseconds, drive
// resistances of a few kΩ, input capacitances of a few fF.
func Default() *Library {
	cells := []*Cell{
		{
			Name: "INV", Area: 8.320,
			Patterns:  []*Pattern{MustParsePattern("INV(a)")},
			Intrinsic: 0.022, Drive: 1.80, InputCap: 0.0042,
		},
		{
			Name: "NAND2", Area: 11.648,
			Patterns:  []*Pattern{MustParsePattern("NAND(a,b)")},
			Intrinsic: 0.031, Drive: 2.10, InputCap: 0.0047,
		},
		{
			Name: "NAND3", Area: 16.640,
			Patterns: []*Pattern{
				MustParsePattern("NAND(a,INV(NAND(b,c)))"),
				MustParsePattern("NAND(INV(NAND(a,b)),c)"),
			},
			Intrinsic: 0.046, Drive: 2.60, InputCap: 0.0051,
		},
		{
			Name: "NAND4", Area: 21.632,
			Patterns: []*Pattern{
				MustParsePattern("NAND(INV(NAND(a,b)),INV(NAND(c,d)))"),
				MustParsePattern("NAND(a,INV(NAND(b,INV(NAND(c,d)))))"),
				MustParsePattern("NAND(INV(NAND(a,INV(NAND(b,c)))),d)"),
			},
			Intrinsic: 0.062, Drive: 3.10, InputCap: 0.0055,
		},
		{
			Name: "NOR2", Area: 13.312,
			Patterns:  []*Pattern{MustParsePattern("INV(NAND(INV(a),INV(b)))")},
			Intrinsic: 0.038, Drive: 2.80, InputCap: 0.0047,
		},
		{
			Name: "NOR3", Area: 19.968,
			Patterns: []*Pattern{
				MustParsePattern("INV(NAND(INV(a),INV(NAND(INV(b),INV(c)))))"),
				MustParsePattern("INV(NAND(INV(NAND(INV(a),INV(b))),INV(c)))"),
			},
			Intrinsic: 0.058, Drive: 3.60, InputCap: 0.0051,
		},
		{
			Name: "AND2", Area: 13.312,
			Patterns:  []*Pattern{MustParsePattern("INV(NAND(a,b))")},
			Intrinsic: 0.043, Drive: 2.00, InputCap: 0.0045,
		},
		{
			Name: "OR2", Area: 16.960,
			Patterns:  []*Pattern{MustParsePattern("NAND(INV(a),INV(b))")},
			Intrinsic: 0.047, Drive: 2.20, InputCap: 0.0045,
		},
		{
			Name: "AOI21", Area: 19.968,
			Patterns:  []*Pattern{MustParsePattern("INV(NAND(NAND(a,b),INV(c)))")},
			Intrinsic: 0.052, Drive: 2.90, InputCap: 0.0049,
		},
		{
			Name: "AOI22", Area: 24.960,
			Patterns:  []*Pattern{MustParsePattern("INV(NAND(NAND(a,b),NAND(c,d)))")},
			Intrinsic: 0.064, Drive: 3.30, InputCap: 0.0052,
		},
		{
			Name: "OAI21", Area: 19.968,
			Patterns:  []*Pattern{MustParsePattern("NAND(NAND(INV(a),INV(b)),c)")},
			Intrinsic: 0.050, Drive: 2.90, InputCap: 0.0049,
		},
		{
			Name: "OAI22", Area: 24.960,
			Patterns:  []*Pattern{MustParsePattern("NAND(NAND(INV(a),INV(b)),NAND(INV(c),INV(d)))")},
			Intrinsic: 0.061, Drive: 3.30, InputCap: 0.0052,
		},
		{
			// Wide cells: the area per input keeps falling with size,
			// which is exactly why unconstrained minimum-area covering
			// reaches for them — and why the paper blames high-fanin
			// cells for congestion (their many fanins cannot all be
			// placed adjacent to the cell).
			Name: "NAND5", Area: 24.960,
			Patterns: []*Pattern{
				MustParsePattern("NAND(a,INV(NAND(INV(NAND(b,c)),INV(NAND(d,e)))))"),
				MustParsePattern("NAND(INV(NAND(a,b)),INV(NAND(c,INV(NAND(d,e)))))"),
			},
			Intrinsic: 0.078, Drive: 3.60, InputCap: 0.0058,
		},
		{
			Name: "NAND6", Area: 28.288,
			Patterns: []*Pattern{
				MustParsePattern("NAND(INV(NAND(a,INV(NAND(b,c)))),INV(NAND(d,INV(NAND(e,f)))))"),
				MustParsePattern("NAND(INV(NAND(INV(NAND(a,b)),INV(NAND(c,d)))),INV(NAND(e,f)))"),
			},
			Intrinsic: 0.095, Drive: 4.10, InputCap: 0.0060,
		},
		{
			Name: "AND3", Area: 18.304,
			Patterns:  []*Pattern{MustParsePattern("INV(NAND(a,INV(NAND(b,c))))")},
			Intrinsic: 0.058, Drive: 2.30, InputCap: 0.0048,
		},
		{
			Name: "AND4", Area: 23.296,
			Patterns:  []*Pattern{MustParsePattern("INV(NAND(INV(NAND(a,b)),INV(NAND(c,d))))")},
			Intrinsic: 0.071, Drive: 2.50, InputCap: 0.0050,
		},
		{
			Name: "OR3", Area: 21.632,
			Patterns:  []*Pattern{MustParsePattern("NAND(INV(a),INV(NAND(INV(b),INV(c))))")},
			Intrinsic: 0.064, Drive: 2.60, InputCap: 0.0048,
		},
		{
			Name: "NOR4", Area: 26.624,
			Patterns: []*Pattern{
				MustParsePattern("INV(NAND(INV(NAND(INV(a),INV(b))),INV(NAND(INV(c),INV(d)))))"),
			},
			Intrinsic: 0.082, Drive: 4.40, InputCap: 0.0053,
		},
		{
			Name: "AOI211", Area: 23.296,
			Patterns: []*Pattern{
				MustParsePattern("INV(NAND(NAND(a,b),INV(NAND(INV(c),INV(d)))))"),
			},
			Intrinsic: 0.066, Drive: 3.40, InputCap: 0.0051,
		},
		{
			Name: "OAI211", Area: 23.296,
			Patterns: []*Pattern{
				MustParsePattern("NAND(NAND(INV(a),INV(b)),INV(NAND(c,d)))"),
			},
			Intrinsic: 0.064, Drive: 3.40, InputCap: 0.0051,
		},
		{
			Name: "AOI222", Area: 33.280,
			Patterns: []*Pattern{
				MustParsePattern("INV(NAND(INV(NAND(NAND(a,b),NAND(c,d))),NAND(e,f)))"),
			},
			Intrinsic: 0.092, Drive: 4.00, InputCap: 0.0056,
		},
		{
			Name: "OAI222", Area: 33.280,
			Patterns: []*Pattern{
				MustParsePattern("NAND(INV(NAND(NAND(INV(a),INV(b)),NAND(INV(c),INV(d)))),NAND(INV(e),INV(f)))"),
			},
			Intrinsic: 0.090, Drive: 4.00, InputCap: 0.0056,
		},
		{
			Name: "XOR2", Area: 24.960,
			Patterns:  []*Pattern{MustParsePattern("NAND(NAND(a,INV(b)),NAND(INV(a),b))")},
			Intrinsic: 0.074, Drive: 3.00, InputCap: 0.0090,
		},
		{
			Name: "XNOR2", Area: 24.960,
			Patterns:  []*Pattern{MustParsePattern("NAND(NAND(a,b),NAND(INV(a),INV(b)))")},
			Intrinsic: 0.074, Drive: 3.00, InputCap: 0.0090,
		},
	}
	l, err := NewLibrary("CORELIB-SYN", cells)
	if err != nil {
		panic(err) // built-in table must be valid
	}
	return l
}

// RowHeight is the standard-cell row height of the default library in
// µm; cell widths are Area / RowHeight.
const RowHeight = 6.656

// Width returns the placement width of the cell in µm assuming the
// default row height.
func (c *Cell) Width() float64 { return c.Area / RowHeight }

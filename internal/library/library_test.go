package library

import (
	"math"
	"strings"
	"testing"
)

func TestParsePattern(t *testing.T) {
	t.Parallel()
	p, err := ParsePattern("NAND(a,INV(NAND(b,c)))")
	if err != nil {
		t.Fatal(err)
	}
	if p.Op != OpNand2 || p.Kids[1].Op != OpInv {
		t.Errorf("structure wrong: %s", p)
	}
	vars := p.Vars()
	if len(vars) != 3 || vars[0] != "a" || vars[1] != "b" || vars[2] != "c" {
		t.Errorf("Vars = %v", vars)
	}
	if p.NumGates() != 3 {
		t.Errorf("NumGates = %d, want 3", p.NumGates())
	}
	// Round trip.
	q, err := ParsePattern(p.String())
	if err != nil || q.String() != p.String() {
		t.Errorf("round trip failed: %v %q", err, q)
	}
}

func TestParsePatternErrors(t *testing.T) {
	t.Parallel()
	bad := []string{
		"",
		"NAND(a)",
		"INV(a,b)",
		"NAND(a,b",
		"FOO(a)",
		"NAND(a,b))",
		"NAND(,b)",
	}
	for _, s := range bad {
		if _, err := ParsePattern(s); err == nil {
			t.Errorf("ParsePattern(%q) accepted", s)
		}
	}
}

func TestPatternEval(t *testing.T) {
	t.Parallel()
	// NAND3 pattern = (abc)'.
	p := MustParsePattern("NAND(a,INV(NAND(b,c)))")
	for m := 0; m < 8; m++ {
		assign := map[string]bool{
			"a": m&1 == 1, "b": m&2 == 2, "c": m&4 == 4,
		}
		want := !(assign["a"] && assign["b"] && assign["c"])
		if got := p.Eval(assign); got != want {
			t.Errorf("minterm %d: got %v want %v", m, got, want)
		}
	}
}

func TestDefaultLibraryValidates(t *testing.T) {
	t.Parallel()
	l := Default()
	for _, c := range l.Cells() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
	if l.Inv() == nil || l.Nand2() == nil {
		t.Fatal("mandatory cells missing")
	}
}

func TestDefaultLibraryFunctions(t *testing.T) {
	t.Parallel()
	l := Default()
	// Spot-check cell functions against their intended semantics.
	checks := map[string]func(a, b, c, d bool) bool{
		"INV":   func(a, _, _, _ bool) bool { return !a },
		"NAND2": func(a, b, _, _ bool) bool { return !(a && b) },
		"NAND3": func(a, b, c, _ bool) bool { return !(a && b && c) },
		"NAND4": func(a, b, c, d bool) bool { return !(a && b && c && d) },
		"NOR2":  func(a, b, _, _ bool) bool { return !(a || b) },
		"NOR3":  func(a, b, c, _ bool) bool { return !(a || b || c) },
		"AND2":  func(a, b, _, _ bool) bool { return a && b },
		"OR2":   func(a, b, _, _ bool) bool { return a || b },
		"AOI21": func(a, b, c, _ bool) bool { return !(a && b || c) },
		"AOI22": func(a, b, c, d bool) bool { return !(a && b || c && d) },
		"OAI21": func(a, b, c, _ bool) bool { return !((a || b) && c) },
		"OAI22": func(a, b, c, d bool) bool { return !((a || b) && (c || d)) },
		"XOR2":  func(a, b, _, _ bool) bool { return a != b },
		"XNOR2": func(a, b, _, _ bool) bool { return a == b },
	}
	for name, fn := range checks {
		cell := l.Cell(name)
		if cell == nil {
			t.Errorf("cell %s missing", name)
			continue
		}
		vars := cell.Patterns[0].Vars()
		for m := 0; m < 1<<len(vars); m++ {
			assign := map[string]bool{}
			vals := [4]bool{}
			for i, v := range vars {
				assign[v] = m>>i&1 == 1
				vals[i] = assign[v]
			}
			want := fn(vals[0], vals[1], vals[2], vals[3])
			for pi, p := range cell.Patterns {
				if got := p.Eval(assign); got != want {
					t.Errorf("%s pattern %d minterm %d: got %v want %v", name, pi, m, got, want)
				}
			}
		}
	}
}

func TestFigure1AreaCalibration(t *testing.T) {
	t.Parallel()
	l := Default()
	minArea := l.Cell("NAND3").Area + l.Cell("AOI21").Area + 2*l.Cell("INV").Area
	if math.Abs(minArea-53.248) > 1e-9 {
		t.Errorf("min-area mapping total = %.3f, want 53.248", minArea)
	}
	congArea := 2*l.Cell("OR2").Area + 2*l.Cell("NAND2").Area + l.Cell("INV").Area
	if math.Abs(congArea-65.536) > 1e-9 {
		t.Errorf("congestion mapping total = %.3f, want 65.536", congArea)
	}
}

func TestCellValidateCatchesBadCells(t *testing.T) {
	t.Parallel()
	bad := []*Cell{
		{Name: "", Area: 1, Patterns: []*Pattern{Var("a")}},
		{Name: "X", Area: 0, Patterns: []*Pattern{Var("a")}},
		{Name: "X", Area: 1},
		{Name: "X", Area: 1, Patterns: []*Pattern{Var("a")}, Intrinsic: -1},
		{ // patterns with different variable sets
			Name: "X", Area: 1,
			Patterns: []*Pattern{MustParsePattern("NAND(a,b)"), MustParsePattern("NAND(a,c)")},
		},
		{ // functionally different patterns
			Name: "X", Area: 1,
			Patterns: []*Pattern{MustParsePattern("NAND(a,b)"), MustParsePattern("INV(NAND(a,b))")},
		},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad cell %d validated", i)
		}
	}
}

func TestNewLibraryRejectsDuplicatesAndMissingBase(t *testing.T) {
	t.Parallel()
	inv := &Cell{Name: "INV", Area: 1, Patterns: []*Pattern{MustParsePattern("INV(a)")}}
	nd := &Cell{Name: "NAND2", Area: 1, Patterns: []*Pattern{MustParsePattern("NAND(a,b)")}}
	if _, err := NewLibrary("t", []*Cell{inv, nd, inv}); err == nil {
		t.Error("duplicate cell accepted")
	}
	if _, err := NewLibrary("t", []*Cell{inv}); err == nil {
		t.Error("library without NAND2 accepted")
	}
	if _, err := NewLibrary("t", []*Cell{nd}); err == nil {
		t.Error("library without INV accepted")
	}
	if _, err := NewLibrary("t", []*Cell{inv, nd}); err != nil {
		t.Errorf("minimal library rejected: %v", err)
	}
}

func TestCellWidth(t *testing.T) {
	t.Parallel()
	l := Default()
	inv := l.Inv()
	if math.Abs(inv.Width()*RowHeight-inv.Area) > 1e-9 {
		t.Error("Width × RowHeight must equal Area")
	}
}

func TestNumInputs(t *testing.T) {
	t.Parallel()
	l := Default()
	wants := map[string]int{"INV": 1, "NAND2": 2, "NAND3": 3, "NAND4": 4, "AOI21": 3, "XOR2": 2}
	for name, want := range wants {
		if got := l.Cell(name).NumInputs(); got != want {
			t.Errorf("%s NumInputs = %d, want %d", name, got, want)
		}
	}
}

func TestPatternStringGrammar(t *testing.T) {
	t.Parallel()
	for _, c := range Default().Cells() {
		for _, p := range c.Patterns {
			s := p.String()
			if !strings.ContainsAny(s, "abcd") {
				t.Errorf("%s pattern %q lost variables", c.Name, s)
			}
			if _, err := ParsePattern(s); err != nil {
				t.Errorf("%s pattern %q does not reparse: %v", c.Name, s, err)
			}
		}
	}
}

func TestWideCellFunctions(t *testing.T) {
	t.Parallel()
	l := Default()
	checks := map[string]func(v []bool) bool{
		"NAND5":  func(v []bool) bool { return !(v[0] && v[1] && v[2] && v[3] && v[4]) },
		"NAND6":  func(v []bool) bool { return !(v[0] && v[1] && v[2] && v[3] && v[4] && v[5]) },
		"AND3":   func(v []bool) bool { return v[0] && v[1] && v[2] },
		"AND4":   func(v []bool) bool { return v[0] && v[1] && v[2] && v[3] },
		"OR3":    func(v []bool) bool { return v[0] || v[1] || v[2] },
		"NOR4":   func(v []bool) bool { return !(v[0] || v[1] || v[2] || v[3]) },
		"AOI211": func(v []bool) bool { return !(v[0] && v[1] || v[2] || v[3]) },
		"OAI211": func(v []bool) bool { return !((v[0] || v[1]) && v[2] && v[3]) },
		"AOI222": func(v []bool) bool { return !(v[0] && v[1] || v[2] && v[3] || v[4] && v[5]) },
		"OAI222": func(v []bool) bool { return !((v[0] || v[1]) && (v[2] || v[3]) && (v[4] || v[5])) },
	}
	for name, fn := range checks {
		cell := l.Cell(name)
		if cell == nil {
			t.Errorf("cell %s missing", name)
			continue
		}
		vars := cell.Patterns[0].Vars()
		for m := 0; m < 1<<len(vars); m++ {
			assign := map[string]bool{}
			vals := make([]bool, len(vars))
			for i, v := range vars {
				assign[v] = m>>i&1 == 1
				vals[i] = assign[v]
			}
			want := fn(vals)
			for pi, p := range cell.Patterns {
				if got := p.Eval(assign); got != want {
					t.Errorf("%s pattern %d minterm %d: got %v want %v", name, pi, m, got, want)
				}
			}
		}
	}
}

func TestWideCellsAreaPerInputFalls(t *testing.T) {
	t.Parallel()
	// The min-area incentive: bigger NANDs must be cheaper per input.
	l := Default()
	chain := []string{"NAND2", "NAND3", "NAND4", "NAND5", "NAND6"}
	prev := 1e18
	for _, name := range chain {
		c := l.Cell(name)
		per := c.Area / float64(c.NumInputs())
		if per >= prev {
			t.Errorf("%s area/input %.3f not below predecessor %.3f", name, per, prev)
		}
		prev = per
	}
}

package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Snapshot is an immutable copy of a recorder's state: counter totals,
// gauge values, histogram states, and completed spans in end order.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
	Spans      []SpanRecord
}

// Snapshot copies the recorder's current state. Safe to call while
// other goroutines are still recording; returns the zero Snapshot on a
// nil recorder.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	hists := make([]struct {
		name string
		h    *Histogram
	}, 0, len(r.hists))
	for name, h := range r.hists {
		hists = append(hists, struct {
			name string
			h    *Histogram
		}{name, h})
	}
	spans := append([]SpanRecord(nil), r.spans...)
	r.mu.Unlock()

	// Histogram snapshots take each histogram's own lock; do it outside
	// the recorder lock to keep the lock order flat.
	hsnaps := make(map[string]HistogramSnapshot, len(hists))
	for _, nh := range hists {
		hsnaps[nh.name] = nh.h.snapshot()
	}
	return Snapshot{Counters: counters, Gauges: gauges, Histograms: hsnaps, Spans: spans}
}

// Merge folds a snapshot (typically a child recorder's) into r:
// counters add, histograms merge bucket-wise, and spans are appended
// with their IDs remapped into r's ID space (parent links inside the
// batch are preserved; parents outside it become roots). Merging
// children in a fixed order — the flow merges iterations in ladder
// order — keeps the combined event stream deterministic regardless of
// how many workers produced it. No-op on a nil recorder.
func (r *Recorder) Merge(s Snapshot) {
	if r == nil {
		return
	}
	for _, name := range sortedKeys(s.Counters) {
		r.Counter(name).Add(s.Counters[name])
	}
	// Gauges are instantaneous values, not totals: merging a child's
	// gauge folds it in additively (a parent aggregating per-worker
	// depths sums them); scopes that want last-write-wins set the
	// parent gauge directly instead of merging.
	for _, name := range sortedKeys(s.Gauges) {
		r.Gauge(name).Add(s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		hs := s.Histograms[name]
		if r.Histogram(name, hs.Bounds).merge(hs) {
			// Foreign bounds folded into the overflow bucket: count the
			// fidelity loss instead of hiding it (exported as
			// casyn_histogram_merge_mismatch_total).
			r.Add("histogram.merge_mismatch", 1)
		}
	}
	if len(s.Spans) == 0 {
		return
	}
	idMap := make(map[int64]int64, len(s.Spans))
	for _, sp := range s.Spans {
		idMap[sp.ID] = r.nextID.Add(1)
	}
	r.mu.Lock()
	for _, sp := range s.Spans {
		sp.ID = idMap[sp.ID]
		if p, ok := idMap[sp.Parent]; ok {
			sp.Parent = p
		} else {
			sp.Parent = 0
		}
		r.spans = append(r.spans, sp)
	}
	r.mu.Unlock()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SpanCounts returns how many spans completed per name — the "stage
// event counts" of the golden fingerprints.
func (s Snapshot) SpanCounts() map[string]int64 {
	out := make(map[string]int64, 8)
	for _, sp := range s.Spans {
		out[sp.Name]++
	}
	return out
}

// Fingerprint renders the deterministic subset of the snapshot as a
// stable string: counter totals, histogram bounds/bucket counts/
// count/min/max, and the span-name multiset — everything the pipeline
// promises is byte-identical for any worker count. Wall/CPU durations,
// timestamps, span IDs, and histogram float sums (whose accumulation
// order varies across workers) are excluded.
func (s Snapshot) Fingerprint() string {
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "counter %s=%d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "gauge %s=%d\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "hist %s bounds=%v counts=%v count=%d", name, h.Bounds, h.Counts, h.Count)
		if h.Count > 0 {
			fmt.Fprintf(&b, " min=%g max=%g", h.Min, h.Max)
		}
		b.WriteByte('\n')
	}
	counts := s.SpanCounts()
	for _, name := range sortedKeys(counts) {
		fmt.Fprintf(&b, "span %s×%d\n", name, counts[name])
	}
	return b.String()
}

package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonic (or at least additive) counter handle. The
// zero value is ready to use; a nil *Counter is a valid no-op handle.
// Increments are atomic, so one handle may be shared by all workers of
// a fan-out — the total is deterministic for every worker count.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Value returns the current total (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins instantaneous value handle (queue depth,
// running jobs, cache occupancy). The zero value is ready to use; a
// nil *Gauge is a valid no-op handle. Set/Add are atomic, so one
// handle may be shared across goroutines.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram handle: bounds are bucket
// upper limits (values land in the first bucket whose bound is >= v;
// larger values land in the implicit +Inf overflow bucket). A nil
// *Histogram is a valid no-op handle. Observations are mutex-guarded,
// so a handle may be shared across goroutines; bucket counts, the
// observation count, and min/max are deterministic for every worker
// interleaving (Sum is a float accumulation and is excluded from
// deterministic fingerprints).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1; last is the +Inf bucket
	count  int64
	sum    float64
	min    float64
	max    float64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// snapshot copies the histogram state (caller need not hold the lock).
func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
	}
	if h.count > 0 {
		// The ±Inf seed sentinels must never escape the histogram: a
		// registered-but-unobserved histogram snapshots Min=Max=0, so
		// JSON marshaling (which rejects ±Inf) stays safe. Non-finite
		// *observed* values are handled at the WriteJSONL boundary.
		s.Min, s.Max = h.min, h.max
	}
	return s
}

// merge adds another snapshot's observations into h. Bucket-by-bucket
// when the bounds agree (the normal case: every instrumentation site
// registers fixed bounds); otherwise only the scalar aggregates are
// folded in, with the foreign observations landing in the overflow
// bucket so no count is silently dropped — that fidelity loss is
// reported via the returned mismatch flag, which Recorder.Merge
// surfaces on the "histogram.merge_mismatch" counter.
func (h *Histogram) merge(s HistogramSnapshot) (mismatch bool) {
	if h == nil || s.Count == 0 {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(s.Counts) == len(h.counts) {
		for i, c := range s.Counts {
			h.counts[i] += c
		}
	} else {
		h.counts[len(h.counts)-1] += s.Count
		mismatch = true
	}
	h.count += s.Count
	h.sum += s.Sum
	if s.Min < h.min {
		h.min = s.Min
	}
	if s.Max > h.max {
		h.max = s.Max
	}
	return mismatch
}

// HistogramSnapshot is an immutable copy of a histogram's state.
type HistogramSnapshot struct {
	// Bounds are the bucket upper limits; Counts has one extra entry
	// for the +Inf overflow bucket.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
}

package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestEmptyHistogramExport is the Inf-poisoning regression: a
// histogram that is registered but never observed must round-trip
// through every export format. The internal ±Inf min/max seed
// sentinels must not reach JSONL (encoding/json rejects Inf), Prom
// text, the fingerprint, or the snapshot itself.
func TestEmptyHistogramExport(t *testing.T) {
	t.Parallel()
	rec := New()
	rec.Histogram("never.observed", []float64{1, 2, 4})
	rec.Add("some.counter", 3) // exports must carry unrelated data through
	snap := rec.Snapshot()

	h, ok := snap.Histograms["never.observed"]
	if !ok {
		t.Fatal("registered histogram missing from snapshot")
	}
	if h.Count != 0 || h.Min != 0 || h.Max != 0 || h.Sum != 0 {
		t.Fatalf("empty histogram snapshot leaked aggregates: %+v", h)
	}

	var jl bytes.Buffer
	if err := WriteJSONL(&jl, snap); err != nil {
		t.Fatalf("WriteJSONL with empty histogram: %v", err)
	}
	back, err := ReadJSONL(&jl)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	rh, ok := back.Histograms["never.observed"]
	if !ok {
		t.Fatal("empty histogram dropped by JSONL round-trip")
	}
	if rh.Count != 0 || rh.Min != 0 || rh.Max != 0 || rh.Sum != 0 {
		t.Fatalf("JSONL round-trip resurrected aggregates: %+v", rh)
	}
	if back.Counters["some.counter"] != 3 {
		t.Errorf("counter lost in round-trip: %v", back.Counters)
	}

	var prom bytes.Buffer
	if err := WriteProm(&prom, snap); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	if s := prom.String(); strings.Contains(s, "Inf") && !strings.Contains(s, `le="+Inf"`) {
		// The only legitimate Inf in the exposition is the +Inf bucket
		// label; scrub it and anything left is a leaked sentinel.
		t.Errorf("Prom export leaked an Inf sentinel:\n%s", s)
	}
	if !strings.Contains(prom.String(), "casyn_never_observed_count 0") {
		t.Errorf("Prom export missing the empty histogram:\n%s", prom.String())
	}

	if fp := snap.Fingerprint(); strings.Contains(fp, "Inf") {
		t.Errorf("fingerprint leaked an Inf sentinel:\n%s", fp)
	}
	var tree bytes.Buffer
	if err := WriteSpanTree(&tree, snap); err != nil {
		t.Fatalf("WriteSpanTree: %v", err)
	}
}

// TestPoisonedHistogramExport covers the other Inf path: an actually
// observed non-finite value. The JSONL export must survive (dropping
// only the unencodable aggregates, keeping the bucket counts), because
// one bad observation must not cost the whole -metrics artifact.
func TestPoisonedHistogramExport(t *testing.T) {
	t.Parallel()
	rec := New()
	rec.Observe("poisoned", []float64{1, 2}, math.Inf(1))
	rec.Observe("poisoned", []float64{1, 2}, 1.5)
	snap := rec.Snapshot()

	var jl bytes.Buffer
	if err := WriteJSONL(&jl, snap); err != nil {
		t.Fatalf("WriteJSONL with a +Inf observation: %v", err)
	}
	back, err := ReadJSONL(&jl)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	h := back.Histograms["poisoned"]
	if h.Count != 2 {
		t.Fatalf("count = %d, want 2", h.Count)
	}
	if got := h.Counts[len(h.Counts)-1]; got != 1 {
		t.Errorf("overflow bucket = %d, want the +Inf observation", got)
	}
	// Sum and Max were +Inf and must have been omitted, not emitted.
	if !isFinite(h.Sum) || !isFinite(h.Max) {
		t.Errorf("non-finite aggregates crossed the JSONL boundary: %+v", h)
	}
	// Min was the finite 1.5 and must have survived.
	if h.Min != 1.5 {
		t.Errorf("finite min lost: %+v", h)
	}

	var prom bytes.Buffer
	if err := WriteProm(&prom, snap); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
}

// TestHistogramMergeMismatchCounter checks that folding a snapshot
// whose histogram bounds disagree with the registered ones is counted
// on histogram.merge_mismatch instead of passing silently, and that
// agreeing bounds never bump it.
func TestHistogramMergeMismatchCounter(t *testing.T) {
	t.Parallel()
	rec := New()
	rec.Observe("h", []float64{1, 2}, 1)

	good := New()
	good.Observe("h", []float64{1, 2}, 2)
	rec.Merge(good.Snapshot())
	if got := rec.Snapshot().Counters["histogram.merge_mismatch"]; got != 0 {
		t.Fatalf("matching-bounds merge bumped the mismatch counter: %d", got)
	}

	bad := New()
	bad.Observe("h", []float64{1, 2, 4}, 3)
	bad.Observe("h", []float64{1, 2, 4}, 0.5)
	rec.Merge(bad.Snapshot())
	snap := rec.Snapshot()
	if got := snap.Counters["histogram.merge_mismatch"]; got != 1 {
		t.Fatalf("histogram.merge_mismatch = %d, want 1", got)
	}
	h := snap.Histograms["h"]
	if h.Count != 4 {
		t.Errorf("merged count = %d, want 4", h.Count)
	}
	if got := h.Counts[len(h.Counts)-1]; got != 2 {
		t.Errorf("overflow bucket = %d, want both foreign observations", got)
	}
	// An empty foreign histogram has nothing to fold, mismatched bounds
	// or not — no count, no counter.
	empty := New()
	empty.Histogram("h", []float64{9})
	rec.Merge(empty.Snapshot())
	if got := rec.Snapshot().Counters["histogram.merge_mismatch"]; got != 1 {
		t.Errorf("empty mismatched merge bumped the counter: %d", got)
	}
	// The counter name renders to the documented Prometheus metric.
	var prom bytes.Buffer
	if err := WriteProm(&prom, snap); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "casyn_histogram_merge_mismatch_total 1") {
		t.Errorf("Prom export missing casyn_histogram_merge_mismatch_total:\n%s", prom.String())
	}
}

package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WriteProm renders the snapshot in the Prometheus text exposition
// format: counters as <name>_total, histograms with cumulative
// le-labeled buckets, and spans aggregated per name into
// casyn_span_seconds_sum/_count. Metric names are sanitized
// ('.' and '-' become '_') and prefixed with "casyn_".
func WriteProm(w io.Writer, s Snapshot) error {
	bw := bufio.NewWriter(w)
	for _, name := range sortedKeys(s.Counters) {
		m := promName(name) + "_total"
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", m, m, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		m := promName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", m, m, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		m := promName(name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", m)
		cum := int64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(bw, "%s_bucket{le=\"%g\"} %d\n", m, b, cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", m, h.Count)
		// Unlike JSON, the Prometheus text format accepts +Inf/-Inf/NaN
		// sample values (rendered by %g), so an unobserved or poisoned
		// histogram cannot break this export; snapshot() already zeroes
		// Min/Max when Count==0, and Sum of no observations is 0.
		fmt.Fprintf(bw, "%s_sum %g\n%s_count %d\n", m, h.Sum, m, h.Count)
	}
	type agg struct {
		wall, cpu time.Duration
		count     int64
	}
	byName := map[string]*agg{}
	for _, sp := range s.Spans {
		a := byName[sp.Name]
		if a == nil {
			a = &agg{}
			byName[sp.Name] = a
		}
		a.wall += sp.Wall
		a.cpu += sp.CPU
		a.count++
	}
	if len(byName) > 0 {
		fmt.Fprintf(bw, "# TYPE casyn_span_seconds summary\n")
		for _, name := range sortedKeys(byName) {
			a := byName[name]
			fmt.Fprintf(bw, "casyn_span_seconds_sum{name=%q} %g\n", name, a.wall.Seconds())
			fmt.Fprintf(bw, "casyn_span_cpu_seconds_sum{name=%q} %g\n", name, a.cpu.Seconds())
			fmt.Fprintf(bw, "casyn_span_count{name=%q} %d\n", name, a.count)
		}
	}
	return bw.Flush()
}

func promName(name string) string {
	r := strings.NewReplacer(".", "_", "-", "_", " ", "_")
	return "casyn_" + r.Replace(name)
}

// WriteSpanTree prints the snapshot's spans as an indented tree
// (children under their parent, siblings in start order), one line per
// span with wall/CPU durations — the -trace output of the CLIs.
func WriteSpanTree(w io.Writer, s Snapshot) error {
	bw := bufio.NewWriter(w)
	children := map[int64][]SpanRecord{}
	ids := map[int64]bool{}
	for _, sp := range s.Spans {
		ids[sp.ID] = true
	}
	for _, sp := range s.Spans {
		parent := sp.Parent
		if !ids[parent] {
			parent = 0 // orphan (parent merged away): promote to root
		}
		children[parent] = append(children[parent], sp)
	}
	for _, sibs := range children {
		sort.SliceStable(sibs, func(i, j int) bool {
			if !sibs[i].Start.Equal(sibs[j].Start) {
				return sibs[i].Start.Before(sibs[j].Start)
			}
			return sibs[i].ID < sibs[j].ID
		})
	}
	var walk func(id int64, depth int)
	walk = func(id int64, depth int) {
		for _, sp := range children[id] {
			fmt.Fprintf(bw, "%s%s", strings.Repeat("  ", depth), sp.Name)
			if sp.KSet {
				fmt.Fprintf(bw, " k=%g", sp.K)
			}
			fmt.Fprintf(bw, " wall=%s cpu=%s", sp.Wall.Round(time.Microsecond), sp.CPU.Round(time.Microsecond))
			if sp.Err != "" {
				fmt.Fprintf(bw, " err=%q", sp.Err)
			}
			fmt.Fprintln(bw)
			walk(sp.ID, depth+1)
		}
	}
	walk(0, 0)
	return bw.Flush()
}

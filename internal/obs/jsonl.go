package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"
)

// isFinite reports whether v is a value encoding/json can marshal
// (it rejects ±Inf and NaN with an UnsupportedValueError).
func isFinite(v float64) bool {
	return !math.IsInf(v, 0) && !math.IsNaN(v)
}

// Event is one JSONL line of a serialized snapshot. Ev discriminates
// the payload: "span" carries the span fields, "counter" a single
// total, "gauge" an instantaneous value, "hist" a histogram state.
type Event struct {
	Ev   string `json:"ev"`
	Name string `json:"name"`

	// Span fields.
	ID      int64    `json:"id,omitempty"`
	Parent  int64    `json:"parent,omitempty"`
	K       *float64 `json:"k,omitempty"`
	StartUS int64    `json:"start_us,omitempty"` // unix microseconds
	WallUS  int64    `json:"wall_us,omitempty"`
	CPUUS   int64    `json:"cpu_us,omitempty"`
	Err     string   `json:"err,omitempty"`

	// Counter field.
	Value int64 `json:"value,omitempty"`

	// Histogram fields.
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts,omitempty"`
	Count  int64     `json:"count,omitempty"`
	Sum    *float64  `json:"sum,omitempty"`
	Min    *float64  `json:"min,omitempty"`
	Max    *float64  `json:"max,omitempty"`
}

// WriteJSONL serializes the snapshot as one JSON event per line: spans
// first (in end order — execution order for sequential stages), then
// counters and histograms sorted by name. The stream round-trips
// through ReadJSONL.
func WriteJSONL(w io.Writer, s Snapshot) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, sp := range s.Spans {
		ev := Event{
			Ev:      "span",
			Name:    sp.Name,
			ID:      sp.ID,
			Parent:  sp.Parent,
			StartUS: sp.Start.UnixMicro(),
			WallUS:  sp.Wall.Microseconds(),
			CPUUS:   sp.CPU.Microseconds(),
			Err:     sp.Err,
		}
		if sp.KSet {
			k := sp.K
			ev.K = &k
		}
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Counters) {
		if err := enc.Encode(Event{Ev: "counter", Name: name, Value: s.Counters[name]}); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if err := enc.Encode(Event{Ev: "gauge", Name: name, Value: s.Gauges[name]}); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		ev := Event{
			Ev:     "hist",
			Name:   name,
			Bounds: h.Bounds,
			Counts: h.Counts,
			Count:  h.Count,
		}
		// Sum/Min/Max are emitted only for observed histograms AND only
		// when finite: a registered-but-unobserved histogram has no
		// aggregates to report, and a poisoned one (Observe(±Inf/NaN))
		// must not take the whole export down with json's
		// "unsupported value" error — its bucket counts still survive.
		if h.Count > 0 {
			if sum := h.Sum; isFinite(sum) {
				ev.Sum = &sum
			}
			if mn := h.Min; isFinite(mn) {
				ev.Min = &mn
			}
			if mx := h.Max; isFinite(mx) {
				ev.Max = &mx
			}
		}
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a WriteJSONL stream back into a Snapshot. Unknown
// event kinds are an error — the schema is versioned by construction
// (the golden suite and the CLI tests both parse what they emit).
func ReadJSONL(r io.Reader) (Snapshot, error) {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	dec := json.NewDecoder(r)
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			return s, fmt.Errorf("obs: bad JSONL event: %w", err)
		}
		switch ev.Ev {
		case "span":
			sp := SpanRecord{
				ID:     ev.ID,
				Parent: ev.Parent,
				Name:   ev.Name,
				Start:  time.UnixMicro(ev.StartUS),
				Wall:   time.Duration(ev.WallUS) * time.Microsecond,
				CPU:    time.Duration(ev.CPUUS) * time.Microsecond,
				Err:    ev.Err,
			}
			if ev.K != nil {
				sp.K, sp.KSet = *ev.K, true
			}
			s.Spans = append(s.Spans, sp)
		case "counter":
			s.Counters[ev.Name] = ev.Value
		case "gauge":
			s.Gauges[ev.Name] = ev.Value
		case "hist":
			h := HistogramSnapshot{
				Bounds: ev.Bounds,
				Counts: ev.Counts,
				Count:  ev.Count,
			}
			if ev.Sum != nil {
				h.Sum = *ev.Sum
			}
			if ev.Min != nil {
				h.Min = *ev.Min
			}
			if ev.Max != nil {
				h.Max = *ev.Max
			}
			s.Histograms[ev.Name] = h
		default:
			return s, fmt.Errorf("obs: unknown event kind %q", ev.Ev)
		}
	}
	return s, nil
}

// Package obs is the observability substrate of the synthesis
// pipeline: monotonic counters, bucketed histograms, and stage-scoped
// spans with wall- and CPU-time, recorded into a *Recorder carried on
// the context.
//
// The paper's methodology (Figure 3) is judged by inspecting the
// post-mapping congestion map per K iteration; a production flow needs
// that signal — and where the wall-clock goes — as first-class data
// rather than println archaeology. Every pipeline layer (runstage,
// flow, mapper, cover, place, route) therefore records into the
// Recorder it finds on its context:
//
//	rec := obs.New()
//	ctx = obs.WithRecorder(ctx, rec)
//	res, err := casyn.SynthesizeContext(ctx, pla, opts)
//	obs.WriteJSONL(os.Stdout, rec.Snapshot())
//
// # Design rules
//
//   - Zero dependencies: standard library only.
//   - Nil-safe no-op: every method works on a nil *Recorder, nil
//     *Counter, nil *Histogram, and nil *Span, so instrumented code
//     carries no "is observability on?" branches. obs.From on a
//     context without a recorder returns nil, and the whole
//     instrumentation collapses to a few nil checks.
//   - Safe under internal/par concurrency: counters are atomic,
//     histograms and the span list are mutex-protected, and handles
//     (Counter, Histogram) may be shared freely across goroutines.
//   - Deterministic where it matters: counter totals, histogram bucket
//     counts, and span-name multisets are identical for every worker
//     count; only wall/CPU durations and float sums vary run to run.
//     Snapshot.Fingerprint covers exactly the deterministic subset.
//
// # Span naming convention
//
// Spans are dot-separated, lowercase, prefixed by the layer that opens
// them: "stage.<name>" for runstage-managed pipeline stages (prepare,
// map, verify, place, route, sta), "flow.iteration" for one K
// iteration, and "<pkg>.<phase>" for intra-stage phases
// ("map.partition", "map.cover", "map.reconstruct",
// "route.first_pass", "route.ripup", "place.bisect", "place.refine").
// Counter and histogram names follow the same "<pkg>.<metric>" shape.
package obs

import (
	"context"
	"sync"
	"sync/atomic"
)

// Recorder accumulates counters, histograms, and completed spans for
// one observed scope (a whole run, or one flow iteration). A nil
// *Recorder is a valid no-op recorder: every method returns promptly
// and records nothing.
type Recorder struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    []SpanRecord
	nextID   atomic.Int64
}

// New returns an empty, enabled recorder.
func New() *Recorder {
	return &Recorder{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Child returns a fresh recorder scoped under r — an independent
// accumulator whose snapshot is merged back with r.Merge — or nil when
// r is nil. The flow engine gives each K iteration its own child so
// concurrent iterations never interleave events, and discarded
// speculative iterations never pollute the parent.
func (r *Recorder) Child() *Recorder {
	if r == nil {
		return nil
	}
	return New()
}

// Counter returns the named monotonic counter, creating it on first
// use. Returns nil (a valid no-op handle) when r is nil.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Add increments the named counter by delta (no-op on nil r).
func (r *Recorder) Add(name string, delta int64) { r.Counter(name).Add(delta) }

// Gauge returns the named gauge, creating it on first use. Returns nil
// (a valid no-op handle) when r is nil.
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// SetGauge sets the named gauge to v (no-op on nil r).
func (r *Recorder) SetGauge(name string, v int64) { r.Gauge(name).Set(v) }

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use; later calls reuse the existing
// bounds. Returns nil (a valid no-op handle) when r is nil.
func (r *Recorder) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Observe records v into the named histogram (no-op on nil r).
func (r *Recorder) Observe(name string, bounds []float64, v float64) {
	r.Histogram(name, bounds).Observe(v)
}

// ctxKey keys the recorder and the current span on a context.
type ctxKey int

const (
	recorderKey ctxKey = iota
	spanKey
)

// WithRecorder returns a context carrying r. A nil r returns ctx
// unchanged, so callers can thread an optional recorder without
// branching.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, recorderKey, r)
}

// From returns the recorder carried by ctx, or nil. The nil result is
// itself usable: every *Recorder method is a no-op on nil.
func From(ctx context.Context) *Recorder {
	r, _ := ctx.Value(recorderKey).(*Recorder)
	return r
}

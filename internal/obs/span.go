package obs

import (
	"context"
	"time"
)

// SpanRecord is one completed span: a named scope with wall-clock and
// process-CPU durations, linked to its parent by ID. Records are
// appended when the span ends, so within one goroutine's sequential
// stages the record order is execution order.
type SpanRecord struct {
	ID     int64
	Parent int64 // 0 = root (no parent in this recorder)
	Name   string
	// K is the congestion factor the span is tagged with (flow
	// iterations and pipeline stages); KSet distinguishes K=0 from
	// "no K".
	K    float64
	KSet bool
	// Start is the span's wall-clock start time.
	Start time.Time
	// Wall is the elapsed wall-clock time. CPU is the process CPU time
	// (user+system) consumed while the span was open; concurrent spans
	// each see the whole process's burn, so CPU is an attribution hint,
	// not an exact per-span cost. Zero on platforms without rusage.
	Wall time.Duration
	CPU  time.Duration
	// Err is the failure the span ended with ("" on success). Stage
	// spans carry the stage error, including panics and timeouts.
	Err string
}

// Span is an open span. End completes it into the recorder. A nil
// *Span (from a nil recorder) is a valid no-op.
type Span struct {
	r        *Recorder
	rec      SpanRecord
	startCPU time.Duration
}

// StartSpan opens a span named name under the span currently on ctx
// and returns a derived context carrying the new span as parent for
// its callees. On a nil recorder it returns ctx unchanged and a nil
// span.
func (r *Recorder) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if r == nil {
		return ctx, nil
	}
	s := &Span{
		r: r,
		rec: SpanRecord{
			ID:    r.nextID.Add(1),
			Name:  name,
			Start: time.Now(),
		},
		startCPU: processCPUTime(),
	}
	if parent, ok := ctx.Value(spanKey).(*Span); ok && parent != nil {
		s.rec.Parent = parent.rec.ID
	}
	return context.WithValue(ctx, spanKey, s), s
}

// SetK tags the span with a congestion factor.
func (s *Span) SetK(k float64) {
	if s == nil {
		return
	}
	s.rec.K, s.rec.KSet = k, true
}

// End completes the span, recording its wall and CPU durations and the
// error it finished with (nil for success). End is idempotent-unsafe
// by design — call it exactly once, typically via defer.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	s.rec.Wall = time.Since(s.rec.Start)
	if cpu := processCPUTime(); cpu > 0 && s.startCPU > 0 {
		s.rec.CPU = cpu - s.startCPU
	}
	if err != nil {
		s.rec.Err = err.Error()
	}
	s.r.mu.Lock()
	s.r.spans = append(s.r.spans, s.rec)
	s.r.mu.Unlock()
}

//go:build unix

package obs

import (
	"syscall"
	"time"
)

// processCPUTime returns the process's cumulative CPU time
// (user+system) via getrusage, or 0 when unavailable.
func processCPUTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfile begins flag-gated profile capture for the CLIs. mode is
// "cpu", "heap", or "mutex"; the returned stop function finishes the
// capture and writes the profile to path. "" disables profiling and
// returns a no-op stop.
func StartProfile(mode, path string) (stop func() error, err error) {
	switch mode {
	case "":
		return func() error { return nil }, nil
	case "cpu":
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		return func() error {
			pprof.StopCPUProfile()
			return f.Close()
		}, nil
	case "heap":
		return func() error {
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live data
			return pprof.WriteHeapProfile(f)
		}, nil
	case "mutex":
		runtime.SetMutexProfileFraction(5)
		return func() error {
			defer runtime.SetMutexProfileFraction(0)
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			defer f.Close()
			return pprof.Lookup("mutex").WriteTo(f, 0)
		}, nil
	default:
		return nil, fmt.Errorf("obs: unknown profile mode %q (want cpu, heap, or mutex)", mode)
	}
}

//go:build !unix

package obs

import "time"

// processCPUTime is unavailable on this platform; spans report zero
// CPU time and rely on wall-clock only.
func processCPUTime() time.Duration { return 0 }

package obs

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety drives every public method through a nil recorder (and
// the nil handles it hands out): the whole package must collapse to
// no-ops, because instrumented code carries no "is observability on?"
// branches.
func TestNilSafety(t *testing.T) {
	var r *Recorder

	if r.Child() != nil {
		t.Error("nil.Child() != nil")
	}
	c := r.Counter("x")
	if c != nil {
		t.Error("nil.Counter() != nil")
	}
	c.Add(5)
	if got := c.Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	r.Add("x", 1)
	h := r.Histogram("h", []float64{1, 2})
	if h != nil {
		t.Error("nil.Histogram() != nil")
	}
	h.Observe(1.5)
	r.Observe("h", []float64{1, 2}, 1.5)

	ctx := context.Background()
	ctx2, span := r.StartSpan(ctx, "s")
	if ctx2 != ctx {
		t.Error("nil.StartSpan changed ctx")
	}
	if span != nil {
		t.Error("nil.StartSpan returned a span")
	}
	span.SetK(1)
	span.End(errors.New("boom"))

	if got := WithRecorder(ctx, nil); got != ctx {
		t.Error("WithRecorder(nil) changed ctx")
	}
	if From(ctx) != nil {
		t.Error("From(empty ctx) != nil")
	}

	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Histograms) != 0 || len(snap.Spans) != 0 {
		t.Errorf("nil snapshot not empty: %+v", snap)
	}
	r.Merge(snap)
	if snap.Fingerprint() != "" {
		t.Errorf("empty fingerprint = %q", snap.Fingerprint())
	}
}

// TestContextRoundTrip checks WithRecorder/From carry the recorder.
func TestContextRoundTrip(t *testing.T) {
	r := New()
	ctx := WithRecorder(context.Background(), r)
	if From(ctx) != r {
		t.Fatal("From did not return the recorder put on ctx")
	}
}

// TestConcurrentCounters hammers shared counter and histogram handles
// from many goroutines; run under -race this is the data-race proof,
// and the totals prove no increment is lost.
func TestConcurrentCounters(t *testing.T) {
	r := New()
	const workers = 8
	const perWorker = 1000
	bounds := []float64{250, 500, 750}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Mix shared handles with by-name lookups.
			c := r.Counter("ops")
			h := r.Histogram("vals", bounds)
			for i := 0; i < perWorker; i++ {
				c.Add(1)
				r.Add("ops2", 2)
				h.Observe(float64(i))
				r.Observe("vals", bounds, float64(i))
			}
		}()
	}
	wg.Wait()

	snap := r.Snapshot()
	if got := snap.Counters["ops"]; got != workers*perWorker {
		t.Errorf("ops = %d, want %d", got, workers*perWorker)
	}
	if got := snap.Counters["ops2"]; got != 2*workers*perWorker {
		t.Errorf("ops2 = %d, want %d", got, 2*workers*perWorker)
	}
	h := snap.Histograms["vals"]
	if h.Count != 2*workers*perWorker {
		t.Errorf("hist count = %d, want %d", h.Count, 2*workers*perWorker)
	}
	var inBuckets int64
	for _, c := range h.Counts {
		inBuckets += c
	}
	if inBuckets != h.Count {
		t.Errorf("bucket sum %d != count %d", inBuckets, h.Count)
	}
	if h.Min != 0 || h.Max != perWorker-1 {
		t.Errorf("min/max = %g/%g, want 0/%d", h.Min, h.Max, perWorker-1)
	}
}

// TestHistogramBuckets pins the bucketing rule: a value lands in the
// first bucket whose upper bound is >= v, with an overflow bucket past
// the last bound.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v      float64
		bucket int
	}{
		{0.5, 0}, {1, 0}, {1.0001, 1}, {2, 1}, {2.5, 2}, {4, 2}, {4.5, 3}, {100, 3},
	}
	for _, tc := range cases {
		r := New()
		r.Observe("h", []float64{1, 2, 4}, tc.v)
		h := r.Snapshot().Histograms["h"]
		if len(h.Counts) != 4 {
			t.Fatalf("counts len = %d, want 4", len(h.Counts))
		}
		for i, c := range h.Counts {
			want := int64(0)
			if i == tc.bucket {
				want = 1
			}
			if c != want {
				t.Errorf("Observe(%g): bucket %d = %d, want %d", tc.v, i, c, want)
			}
		}
	}
}

// TestSpanNesting checks parent links follow the context chain, and
// that sibling spans of the same parent don't nest under each other.
func TestSpanNesting(t *testing.T) {
	r := New()
	ctx := WithRecorder(context.Background(), r)

	ctx1, root := r.StartSpan(ctx, "root")
	ctx2, child := r.StartSpan(ctx1, "child")
	_, grand := r.StartSpan(ctx2, "grand")
	grand.End(nil)
	child.End(nil)
	// A sibling started from the root's ctx, after child ended.
	_, sib := r.StartSpan(ctx1, "sib")
	sib.SetK(0.001)
	sib.End(errors.New("boom"))
	root.End(nil)

	spans := r.Snapshot().Spans
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	// End order: grand, child, sib, root.
	byName := map[string]SpanRecord{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	if got, want := []string{spans[0].Name, spans[1].Name, spans[2].Name, spans[3].Name},
		[]string{"grand", "child", "sib", "root"}; !reflect.DeepEqual(got, want) {
		t.Errorf("end order = %v, want %v", got, want)
	}
	if byName["root"].Parent != 0 {
		t.Errorf("root parent = %d, want 0", byName["root"].Parent)
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Errorf("child parent = %d, want root %d", byName["child"].Parent, byName["root"].ID)
	}
	if byName["grand"].Parent != byName["child"].ID {
		t.Errorf("grand parent = %d, want child %d", byName["grand"].Parent, byName["child"].ID)
	}
	if byName["sib"].Parent != byName["root"].ID {
		t.Errorf("sib parent = %d, want root %d", byName["sib"].Parent, byName["root"].ID)
	}
	if !byName["sib"].KSet || byName["sib"].K != 0.001 {
		t.Errorf("sib K = %v/%v, want 0.001/set", byName["sib"].K, byName["sib"].KSet)
	}
	if byName["sib"].Err != "boom" {
		t.Errorf("sib err = %q, want boom", byName["sib"].Err)
	}
	if byName["grand"].KSet {
		t.Error("grand K set without SetK")
	}
}

// TestMerge checks child snapshots fold into a parent with counters
// added, histograms merged bucket-wise, and span IDs remapped with
// intra-batch parent links preserved.
func TestMerge(t *testing.T) {
	parent := New()
	parent.Add("shared", 1)
	_, ps := parent.StartSpan(context.Background(), "parent.span")
	ps.End(nil)

	child := parent.Child()
	if child == parent {
		t.Fatal("child is the parent")
	}
	child.Add("shared", 2)
	child.Add("child.only", 5)
	child.Observe("h", []float64{1, 2}, 1.5)
	cctx := WithRecorder(context.Background(), child)
	cctx, outer := child.StartSpan(cctx, "outer")
	_, inner := child.StartSpan(cctx, "inner")
	inner.End(nil)
	outer.End(nil)

	parent.Merge(child.Snapshot())
	snap := parent.Snapshot()

	if got := snap.Counters["shared"]; got != 3 {
		t.Errorf("shared = %d, want 3", got)
	}
	if got := snap.Counters["child.only"]; got != 5 {
		t.Errorf("child.only = %d, want 5", got)
	}
	if got := snap.Histograms["h"].Count; got != 1 {
		t.Errorf("hist count = %d, want 1", got)
	}
	byName := map[string]SpanRecord{}
	ids := map[int64]bool{}
	for _, sp := range snap.Spans {
		byName[sp.Name] = sp
		if ids[sp.ID] {
			t.Errorf("duplicate span ID %d after merge", sp.ID)
		}
		ids[sp.ID] = true
	}
	if len(snap.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(snap.Spans))
	}
	if byName["inner"].Parent != byName["outer"].ID {
		t.Errorf("inner parent = %d, want outer %d (intra-batch link lost)",
			byName["inner"].Parent, byName["outer"].ID)
	}
	if byName["outer"].Parent != 0 {
		t.Errorf("outer parent = %d, want 0 (extra-batch parent must clear)", byName["outer"].Parent)
	}
}

// TestMergeDeterministic checks that merging the same children in the
// same order yields identical fingerprints regardless of how the
// children were produced (the flow's worker-count independence).
func TestMergeDeterministic(t *testing.T) {
	build := func() string {
		parent := New()
		kids := make([]*Recorder, 3)
		for i := range kids {
			kids[i] = parent.Child()
		}
		var wg sync.WaitGroup
		for i, kid := range kids {
			wg.Add(1)
			go func(i int, kid *Recorder) {
				defer wg.Done()
				kid.Add("n", int64(i+1))
				kid.Observe("h", []float64{1, 10}, float64(i))
				_, sp := kid.StartSpan(context.Background(), "work")
				sp.End(nil)
			}(i, kid)
		}
		wg.Wait()
		// Merge in fixed (ladder) order, whatever order the work ran in.
		for _, kid := range kids {
			parent.Merge(kid.Snapshot())
		}
		return parent.Snapshot().Fingerprint()
	}
	want := build()
	for i := 0; i < 10; i++ {
		if got := build(); got != want {
			t.Fatalf("fingerprint varies across runs:\n%s\nvs\n%s", got, want)
		}
	}
}

// TestJSONLRoundTrip serializes a populated snapshot and parses it
// back; the deterministic content must survive unchanged.
func TestJSONLRoundTrip(t *testing.T) {
	r := New()
	r.Add("a.count", 7)
	r.Add("zero", 0)
	r.Observe("h", []float64{1, 2, 4}, 0.5)
	r.Observe("h", []float64{1, 2, 4}, 3)
	ctx := WithRecorder(context.Background(), r)
	ctx, outer := r.StartSpan(ctx, "outer")
	outer.SetK(0.002)
	_, inner := r.StartSpan(ctx, "inner")
	inner.End(errors.New("inner failed"))
	outer.End(nil)

	snap := r.Snapshot()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, snap); err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, `{"ev":"`) {
			t.Errorf("line %d is not an event object: %s", i, line)
		}
	}

	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Counters, snap.Counters) {
		t.Errorf("counters: got %v, want %v", got.Counters, snap.Counters)
	}
	if len(got.Spans) != len(snap.Spans) {
		t.Fatalf("spans: got %d, want %d", len(got.Spans), len(snap.Spans))
	}
	for i := range got.Spans {
		g, w := got.Spans[i], snap.Spans[i]
		if g.Name != w.Name || g.ID != w.ID || g.Parent != w.Parent ||
			g.K != w.K || g.KSet != w.KSet || g.Err != w.Err {
			t.Errorf("span %d: got %+v, want %+v", i, g, w)
		}
		// Times round to microseconds in transit.
		if d := g.Wall - w.Wall.Truncate(time.Microsecond); d != 0 {
			t.Errorf("span %d wall drift %v", i, d)
		}
	}
	gh, wh := got.Histograms["h"], snap.Histograms["h"]
	if !reflect.DeepEqual(gh.Bounds, wh.Bounds) || !reflect.DeepEqual(gh.Counts, wh.Counts) ||
		gh.Count != wh.Count || gh.Sum != wh.Sum || gh.Min != wh.Min || gh.Max != wh.Max {
		t.Errorf("hist: got %+v, want %+v", gh, wh)
	}
	if got.Fingerprint() != snap.Fingerprint() {
		t.Errorf("fingerprint changed across round-trip:\n%s\nvs\n%s",
			got.Fingerprint(), snap.Fingerprint())
	}
}

// TestReadJSONLRejectsUnknown pins the versioning rule: unknown event
// kinds are an error, not silently dropped.
func TestReadJSONLRejectsUnknown(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader(`{"ev":"summary","name":"x"}` + "\n"))
	if err == nil {
		t.Fatal("unknown event kind accepted")
	}
}

// TestWriteProm smoke-checks the text exposition: counter totals,
// cumulative buckets, and the +Inf bucket equaling the count.
func TestWriteProm(t *testing.T) {
	r := New()
	r.Add("route.nets", 42)
	r.Observe("route.congestion", []float64{0.5, 1}, 0.25)
	r.Observe("route.congestion", []float64{0.5, 1}, 2)
	_, sp := r.StartSpan(context.Background(), "stage.route")
	sp.End(nil)

	var buf bytes.Buffer
	if err := WriteProm(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"casyn_route_nets_total 42",
		`casyn_route_congestion_bucket{le="0.5"} 1`,
		`casyn_route_congestion_bucket{le="1"} 1`,
		`casyn_route_congestion_bucket{le="+Inf"} 2`,
		"casyn_route_congestion_count 2",
		`casyn_span_count{name="stage.route"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
}

// TestWriteSpanTree smoke-checks the indented tree rendering.
func TestWriteSpanTree(t *testing.T) {
	r := New()
	ctx := WithRecorder(context.Background(), r)
	ctx, outer := r.StartSpan(ctx, "outer")
	_, inner := r.StartSpan(ctx, "inner")
	inner.End(nil)
	outer.End(nil)

	var buf bytes.Buffer
	if err := WriteSpanTree(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "outer") {
		t.Errorf("first line = %q, want outer at root", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  inner") {
		t.Errorf("second line = %q, want indented inner", lines[1])
	}
}

// TestStartProfile exercises the flag-gated profile capture end to end
// for each mode, plus the disabled and invalid cases.
func TestStartProfile(t *testing.T) {
	stop, err := StartProfile("", "ignored")
	if err != nil {
		t.Fatalf("disabled profile: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("disabled stop: %v", err)
	}
	if _, err := StartProfile("flames", "x"); err == nil {
		t.Fatal("invalid mode accepted")
	}
	for _, mode := range []string{"cpu", "heap", "mutex"} {
		t.Run(mode, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), mode+".pprof")
			stop, err := StartProfile(mode, path)
			if err != nil {
				t.Fatal(err)
			}
			if err := stop(); err != nil {
				t.Fatal(err)
			}
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if st.Size() == 0 && mode != "cpu" {
				t.Errorf("%s profile is empty", mode)
			}
		})
	}
}

func TestGauges(t *testing.T) {
	rec := New()
	rec.SetGauge("serve.queue_depth", 7)
	rec.Gauge("serve.queue_depth").Add(-2)
	rec.Gauge("serve.running").Set(3)

	// Nil safety mirrors counters/histograms.
	var nilRec *Recorder
	nilRec.SetGauge("x", 1)
	nilRec.Gauge("x").Add(1)
	if nilRec.Gauge("x").Value() != 0 {
		t.Error("nil recorder gauge not a no-op")
	}

	snap := rec.Snapshot()
	if snap.Gauges["serve.queue_depth"] != 5 || snap.Gauges["serve.running"] != 3 {
		t.Fatalf("gauges = %v", snap.Gauges)
	}

	// JSONL round trip.
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, snap); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Gauges["serve.queue_depth"] != 5 || back.Gauges["serve.running"] != 3 {
		t.Errorf("round-tripped gauges = %v", back.Gauges)
	}

	// Prometheus export renders a gauge type with the casyn_ prefix.
	var prom strings.Builder
	if err := WriteProm(&prom, snap); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "# TYPE casyn_serve_queue_depth gauge\ncasyn_serve_queue_depth 5\n") {
		t.Errorf("prom output missing gauge:\n%s", prom.String())
	}

	// Fingerprint covers gauges; merge folds them additively.
	if !strings.Contains(snap.Fingerprint(), "gauge serve.queue_depth=5\n") {
		t.Errorf("fingerprint missing gauge:\n%s", snap.Fingerprint())
	}
	parent := New()
	parent.SetGauge("serve.queue_depth", 1)
	parent.Merge(snap)
	if got := parent.Gauge("serve.queue_depth").Value(); got != 6 {
		t.Errorf("merged gauge = %d, want 6", got)
	}
}

// Package netlist implements the technology-mapped gate-level netlist:
// library-cell instances connected by signals, with the reports the
// experiments need (cell area, cell counts, utilization) and the
// conversion to a placement hypergraph.
package netlist

import (
	"fmt"
	"sort"

	"casyn/internal/geom"
	"casyn/internal/library"
	"casyn/internal/place"
)

// SigID identifies a signal (net) in the netlist.
type SigID int

// SigKind classifies signal drivers.
type SigKind uint8

const (
	// SigGate is driven by a cell instance.
	SigGate SigKind = iota
	// SigPI is a primary input.
	SigPI
	// SigConst0 is the constant-false net.
	SigConst0
	// SigConst1 is the constant-true net.
	SigConst1
)

// Signal is one net of the mapped netlist.
type Signal struct {
	ID   SigID
	Name string
	Kind SigKind
	// Driver is the driving instance index for SigGate signals, -1
	// otherwise.
	Driver int
}

// Instance is one placed library cell.
type Instance struct {
	ID   int
	Name string
	Cell *library.Cell
	// PatternIndex selects the cell pattern whose variable order the
	// Inputs follow.
	PatternIndex int
	// Inputs are the input signals in pattern-variable order.
	Inputs []SigID
	// Output is the driven signal.
	Output SigID
	// Pos is the seed position from mapping (the match's center of
	// mass on the layout image).
	Pos geom.Point
}

// PO is a named primary output.
type PO struct {
	Name string
	Sig  SigID
}

// Netlist is a mapped design.
type Netlist struct {
	Signals   []Signal
	Instances []Instance
	PIs       []SigID
	POs       []PO
}

// New returns an empty netlist.
func New() *Netlist { return &Netlist{} }

// AddSignal appends a non-gate signal of the given kind.
func (n *Netlist) AddSignal(name string, kind SigKind) SigID {
	id := SigID(len(n.Signals))
	n.Signals = append(n.Signals, Signal{ID: id, Name: name, Kind: kind, Driver: -1})
	if kind == SigPI {
		n.PIs = append(n.PIs, id)
	}
	return id
}

// AddInstance appends a cell instance driving a fresh signal and
// returns the instance index and output signal.
func (n *Netlist) AddInstance(name string, cell *library.Cell, patternIndex int, inputs []SigID, pos geom.Point) (int, SigID) {
	out := SigID(len(n.Signals))
	inst := len(n.Instances)
	n.Signals = append(n.Signals, Signal{ID: out, Name: name, Kind: SigGate, Driver: inst})
	n.Instances = append(n.Instances, Instance{
		ID: inst, Name: name, Cell: cell, PatternIndex: patternIndex,
		Inputs: append([]SigID(nil), inputs...), Output: out, Pos: pos,
	})
	return inst, out
}

// AddPO marks a signal as the named primary output.
func (n *Netlist) AddPO(name string, sig SigID) {
	n.POs = append(n.POs, PO{Name: name, Sig: sig})
}

// NumCells returns the instance count.
func (n *Netlist) NumCells() int { return len(n.Instances) }

// CellArea returns the total cell area in µm².
func (n *Netlist) CellArea() float64 {
	a := 0.0
	for i := range n.Instances {
		a += n.Instances[i].Cell.Area
	}
	return a
}

// CellCounts returns instance counts per cell name.
func (n *Netlist) CellCounts() map[string]int {
	out := map[string]int{}
	for i := range n.Instances {
		out[n.Instances[i].Cell.Name]++
	}
	return out
}

// Check validates structural sanity: every instance input in range and
// with arity matching the cell, every signal driven consistently, and
// acyclicity of the instance graph.
func (n *Netlist) Check() error {
	for i := range n.Instances {
		inst := &n.Instances[i]
		want := len(inst.Cell.Patterns[inst.PatternIndex].Vars())
		if len(inst.Inputs) != want {
			return fmt.Errorf("netlist: instance %s has %d inputs, cell %s wants %d",
				inst.Name, len(inst.Inputs), inst.Cell.Name, want)
		}
		for _, s := range inst.Inputs {
			if s < 0 || int(s) >= len(n.Signals) {
				return fmt.Errorf("netlist: instance %s input signal %d out of range", inst.Name, s)
			}
		}
		if inst.Output < 0 || int(inst.Output) >= len(n.Signals) {
			return fmt.Errorf("netlist: instance %s output out of range", inst.Name)
		}
		if n.Signals[inst.Output].Driver != i {
			return fmt.Errorf("netlist: signal %d driver mismatch for instance %s", inst.Output, inst.Name)
		}
	}
	for si := range n.Signals {
		s := &n.Signals[si]
		if s.Kind == SigGate {
			if s.Driver < 0 || s.Driver >= len(n.Instances) {
				return fmt.Errorf("netlist: gate signal %d has no driver", si)
			}
			if n.Instances[s.Driver].Output != s.ID {
				return fmt.Errorf("netlist: signal %d driver does not drive it", si)
			}
		} else if s.Driver != -1 {
			return fmt.Errorf("netlist: non-gate signal %d has a driver", si)
		}
	}
	if _, err := n.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns instance indices with every instance after the
// drivers of its inputs. Returns an error on a combinational cycle.
func (n *Netlist) TopoOrder() ([]int, error) {
	const (
		unvisited = 0
		active    = 1
		done      = 2
	)
	state := make([]byte, len(n.Instances))
	order := make([]int, 0, len(n.Instances))
	type frame struct {
		inst int
		next int
	}
	var stack []frame
	for root := range n.Instances {
		if state[root] != unvisited {
			continue
		}
		stack = append(stack[:0], frame{inst: root})
		state[root] = active
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			inst := &n.Instances[f.inst]
			if f.next < len(inst.Inputs) {
				sig := inst.Inputs[f.next]
				f.next++
				if n.Signals[sig].Kind != SigGate {
					continue
				}
				drv := n.Signals[sig].Driver
				switch state[drv] {
				case unvisited:
					state[drv] = active
					stack = append(stack, frame{inst: drv})
				case active:
					return nil, fmt.Errorf("netlist: combinational cycle through %s", n.Instances[drv].Name)
				}
				continue
			}
			state[f.inst] = done
			order = append(order, f.inst)
			stack = stack[:len(stack)-1]
		}
	}
	return order, nil
}

// Eval evaluates the netlist outputs for a PI assignment (indexed by
// position in PIs).
func (n *Netlist) Eval(piValues []bool) ([]bool, error) {
	if len(piValues) != len(n.PIs) {
		return nil, fmt.Errorf("netlist: %d PI values for %d PIs", len(piValues), len(n.PIs))
	}
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	val := make([]bool, len(n.Signals))
	for i, sig := range n.PIs {
		val[sig] = piValues[i]
	}
	for si := range n.Signals {
		if n.Signals[si].Kind == SigConst1 {
			val[si] = true
		}
	}
	assign := map[string]bool{}
	for _, ii := range order {
		inst := &n.Instances[ii]
		pat := inst.Cell.Patterns[inst.PatternIndex]
		vars := pat.Vars()
		for k := range assign {
			delete(assign, k)
		}
		for vi, v := range vars {
			assign[v] = val[inst.Inputs[vi]]
		}
		val[inst.Output] = pat.Eval(assign)
	}
	out := make([]bool, len(n.POs))
	for i, po := range n.POs {
		out[i] = val[po.Sig]
	}
	return out, nil
}

// PlacementNetlist converts the mapped netlist into the placer's
// hypergraph: one placeable cell per instance, one net per signal with
// at least two endpoints. piPads/poPads optionally pin I/O signals to
// pad locations (by PI position / PO index).
type PlacementNetlist struct {
	Cells *place.Netlist
	// SigNet maps each signal to its net index in Cells.Nets, or -1.
	SigNet []int
}

// ToPlacement builds the placement hypergraph. piPads maps PI ordinal
// to a pad point; poPads maps PO ordinal to a pad point. Either may be
// nil.
func (n *Netlist) ToPlacement(piPads, poPads []geom.Point) *PlacementNetlist {
	pn := &PlacementNetlist{
		Cells:  &place.Netlist{Widths: make([]float64, len(n.Instances))},
		SigNet: make([]int, len(n.Signals)),
	}
	for i := range n.Instances {
		pn.Cells.Widths[i] = n.Instances[i].Cell.Width()
	}
	type netAccum struct {
		cells []int
		pads  []geom.Point
	}
	acc := make([]netAccum, len(n.Signals))
	for i := range n.Instances {
		inst := &n.Instances[i]
		acc[inst.Output].cells = append(acc[inst.Output].cells, i)
		seen := map[SigID]bool{}
		for _, s := range inst.Inputs {
			if seen[s] {
				continue // one pin per distinct signal for placement
			}
			seen[s] = true
			acc[s].cells = append(acc[s].cells, i)
		}
	}
	for pi, sig := range n.PIs {
		if piPads != nil && pi < len(piPads) {
			acc[sig].pads = append(acc[sig].pads, piPads[pi])
		}
	}
	for po, p := range n.POs {
		if poPads != nil && po < len(poPads) {
			acc[p.Sig].pads = append(acc[p.Sig].pads, poPads[po])
		}
	}
	for si := range acc {
		pn.SigNet[si] = -1
		if len(acc[si].cells)+len(acc[si].pads) >= 2 {
			pn.SigNet[si] = len(pn.Cells.Nets)
			pn.Cells.Nets = append(pn.Cells.Nets, place.Net{
				Cells: acc[si].cells,
				Pads:  acc[si].pads,
			})
		}
	}
	return pn
}

// Summary is a one-line report of the netlist.
func (n *Netlist) Summary() string {
	counts := n.CellCounts()
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	s := fmt.Sprintf("%d cells, %.3f µm²:", n.NumCells(), n.CellArea())
	for _, name := range names {
		s += fmt.Sprintf(" %s×%d", name, counts[name])
	}
	return s
}

package netlist

import (
	"bytes"
	"strings"
	"testing"

	"casyn/internal/geom"
	"casyn/internal/library"
)

func TestWriteVerilogStructure(t *testing.T) {
	t.Parallel()
	n, _ := buildSmall()
	var buf bytes.Buffer
	if err := n.WriteVerilog(&buf, "demo"); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	for _, want := range []string{
		"module demo (",
		"input a;",
		"input b;",
		"input c;",
		"output out;",
		"AND2 ",
		"NAND2 ",
		".Y(",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("Verilog lacks %q:\n%s", want, v)
		}
	}
	// Every instance pin is ordered .A, .B, ...
	if !strings.Contains(v, ".A(") || !strings.Contains(v, ".B(") {
		t.Error("pin naming missing")
	}
}

func TestWriteVerilogConstants(t *testing.T) {
	t.Parallel()
	lib := library.Default()
	n := New()
	c1 := n.AddSignal("one", SigConst1)
	a := n.AddSignal("a", SigPI)
	_, out := n.AddInstance("u0", lib.Cell("NAND2"), 0, []SigID{c1, a}, geom.Point{})
	n.AddPO("o", out)
	var buf bytes.Buffer
	if err := n.WriteVerilog(&buf, ""); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	if !strings.Contains(v, "assign const1_w = 1'b1;") {
		t.Errorf("constant tie missing:\n%s", v)
	}
	if !strings.Contains(v, "module casyn_top") {
		t.Error("default module name missing")
	}
}

func TestSanitizeVerilogName(t *testing.T) {
	t.Parallel()
	cases := []struct {
		in   string
		id   int
		want string
	}{
		{"abc", 3, "abc"},
		{"a.b", 3, "a_b_3"},
		{"9lives", -1, "_lives"},
		{"", 7, "s__7"},
	}
	for _, c := range cases {
		if got := sanitizeVerilogName(c.in, c.id); got != c.want {
			t.Errorf("sanitize(%q,%d) = %q, want %q", c.in, c.id, got, c.want)
		}
	}
}

func TestWriteCellReport(t *testing.T) {
	t.Parallel()
	n, lib := buildSmall()
	var buf bytes.Buffer
	if err := n.WriteCellReport(&buf); err != nil {
		t.Fatal(err)
	}
	rep := buf.String()
	if !strings.Contains(rep, "AND2") || !strings.Contains(rep, "total") {
		t.Errorf("report malformed:\n%s", rep)
	}
	wantTotal := lib.Cell("AND2").Area + lib.Cell("NAND2").Area
	if !strings.Contains(rep, "2") {
		t.Error("total count missing")
	}
	_ = wantTotal
}

package netlist

import (
	"strings"
	"testing"

	"casyn/internal/geom"
	"casyn/internal/library"
)

// buildSmall constructs: out = NAND2(AND2(a,b), c).
func buildSmall() (*Netlist, *library.Library) {
	lib := library.Default()
	n := New()
	a := n.AddSignal("a", SigPI)
	b := n.AddSignal("b", SigPI)
	c := n.AddSignal("c", SigPI)
	_, and := n.AddInstance("u0", lib.Cell("AND2"), 0, []SigID{a, b}, geom.Pt(1, 1))
	_, out := n.AddInstance("u1", lib.Cell("NAND2"), 0, []SigID{and, c}, geom.Pt(2, 1))
	n.AddPO("out", out)
	return n, lib
}

func TestNetlistBasics(t *testing.T) {
	t.Parallel()
	n, lib := buildSmall()
	if n.NumCells() != 2 {
		t.Fatalf("NumCells = %d", n.NumCells())
	}
	want := lib.Cell("AND2").Area + lib.Cell("NAND2").Area
	if got := n.CellArea(); got != want {
		t.Errorf("CellArea = %g, want %g", got, want)
	}
	counts := n.CellCounts()
	if counts["AND2"] != 1 || counts["NAND2"] != 1 {
		t.Errorf("CellCounts = %v", counts)
	}
	if err := n.Check(); err != nil {
		t.Errorf("Check: %v", err)
	}
	if !strings.Contains(n.Summary(), "2 cells") {
		t.Errorf("Summary = %q", n.Summary())
	}
}

func TestNetlistEval(t *testing.T) {
	t.Parallel()
	n, _ := buildSmall()
	cases := []struct {
		in   []bool
		want bool
	}{
		{[]bool{true, true, true}, false}, // NAND(1,1)
		{[]bool{true, true, false}, true}, // NAND(1,0)
		{[]bool{false, true, true}, true}, // NAND(0,1)
		{[]bool{false, false, false}, true},
	}
	for _, cs := range cases {
		out, err := n.Eval(cs.in)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != cs.want {
			t.Errorf("Eval(%v) = %v, want %v", cs.in, out[0], cs.want)
		}
	}
	if _, err := n.Eval([]bool{true}); err == nil {
		t.Error("wrong PI count accepted")
	}
}

func TestNetlistConstSignals(t *testing.T) {
	t.Parallel()
	lib := library.Default()
	n := New()
	c1 := n.AddSignal("const1", SigConst1)
	c0 := n.AddSignal("const0", SigConst0)
	_, out := n.AddInstance("u0", lib.Cell("NAND2"), 0, []SigID{c1, c0}, geom.Point{})
	n.AddPO("o", out)
	v, err := n.Eval(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v[0] {
		t.Error("NAND(1,0) must be 1")
	}
}

func TestTopoOrder(t *testing.T) {
	t.Parallel()
	n, _ := buildSmall()
	order, err := n.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[int]int{}
	for i, ii := range order {
		pos[ii] = i
	}
	// u1 consumes u0's output.
	if pos[1] < pos[0] {
		t.Error("topological order violated")
	}
}

func TestCheckCatchesCorruption(t *testing.T) {
	t.Parallel()
	n, _ := buildSmall()
	// Arity violation.
	n.Instances[0].Inputs = n.Instances[0].Inputs[:1]
	if err := n.Check(); err == nil {
		t.Error("arity violation not caught")
	}
	n, _ = buildSmall()
	// Driver mismatch.
	n.Signals[n.Instances[0].Output].Driver = 1
	if err := n.Check(); err == nil {
		t.Error("driver mismatch not caught")
	}
	n, _ = buildSmall()
	// Combinational cycle.
	n.Instances[0].Inputs[0] = n.Instances[1].Output
	if err := n.Check(); err == nil {
		t.Error("cycle not caught")
	}
}

func TestToPlacement(t *testing.T) {
	t.Parallel()
	n, _ := buildSmall()
	piPads := []geom.Point{geom.Pt(0, 0), geom.Pt(0, 5), geom.Pt(0, 10)}
	poPads := []geom.Point{geom.Pt(50, 5)}
	pn := n.ToPlacement(piPads, poPads)
	if len(pn.Cells.Widths) != 2 {
		t.Fatalf("placeable cells = %d", len(pn.Cells.Widths))
	}
	if err := pn.Cells.Validate(); err != nil {
		t.Fatal(err)
	}
	// Nets: a, b, c (PI pad + sink), and (u0->u1), out (u1 + PO pad).
	if len(pn.Cells.Nets) != 5 {
		t.Errorf("nets = %d, want 5", len(pn.Cells.Nets))
	}
	// The internal net connects both instances.
	andSig := n.Instances[1].Inputs[0]
	ni := pn.SigNet[andSig]
	if ni < 0 || len(pn.Cells.Nets[ni].Cells) != 2 {
		t.Errorf("internal net malformed: %v", pn.Cells.Nets[ni])
	}
	// Signals with a single endpoint have no net.
	single := n.AddSignal("dangling", SigPI)
	pn = n.ToPlacement(nil, nil)
	if pn.SigNet[single] != -1 {
		t.Error("dangling signal must have no net")
	}
}

func TestToPlacementDedupesPins(t *testing.T) {
	t.Parallel()
	// An instance using the same signal on two pins contributes one
	// placement pin.
	lib := library.Default()
	n := New()
	a := n.AddSignal("a", SigPI)
	_, out := n.AddInstance("u0", lib.Cell("NAND2"), 0, []SigID{a, a}, geom.Point{})
	n.AddPO("o", out)
	pn := n.ToPlacement([]geom.Point{geom.Pt(0, 0)}, []geom.Point{geom.Pt(9, 9)})
	ni := pn.SigNet[a]
	if ni < 0 {
		t.Fatal("net for a missing")
	}
	if got := len(pn.Cells.Nets[ni].Cells); got != 1 {
		t.Errorf("net for a has %d cell pins, want 1", got)
	}
}

package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteVerilog emits the mapped netlist as structural Verilog: one
// module with the library cells instantiated by name, inputs in
// pattern-variable order as .A/.B/... pins and the output as .Y. This
// is the hand-off format to downstream sign-off flows.
func (n *Netlist) WriteVerilog(w io.Writer, module string) error {
	if module == "" {
		module = "casyn_top"
	}
	bw := bufio.NewWriter(w)

	sig := func(id SigID) string { return sanitizeVerilogName(n.Signals[id].Name, int(id)) }

	var ports []string
	for _, pi := range n.PIs {
		ports = append(ports, sig(pi))
	}
	for _, po := range n.POs {
		ports = append(ports, sanitizeVerilogName(po.Name, -1))
	}
	fmt.Fprintf(bw, "module %s (%s);\n", module, strings.Join(ports, ", "))
	for _, pi := range n.PIs {
		fmt.Fprintf(bw, "  input %s;\n", sig(pi))
	}
	for _, po := range n.POs {
		fmt.Fprintf(bw, "  output %s;\n", sanitizeVerilogName(po.Name, -1))
	}

	// Wires: every gate-driven signal plus the constants if used.
	usesConst0, usesConst1 := false, false
	for si := range n.Signals {
		switch n.Signals[si].Kind {
		case SigGate:
			fmt.Fprintf(bw, "  wire %s;\n", sig(SigID(si)))
		case SigConst0:
			usesConst0 = true
		case SigConst1:
			usesConst1 = true
		}
	}
	if usesConst0 {
		fmt.Fprintln(bw, "  wire const0_w;")
		fmt.Fprintln(bw, "  assign const0_w = 1'b0;")
	}
	if usesConst1 {
		fmt.Fprintln(bw, "  wire const1_w;")
		fmt.Fprintln(bw, "  assign const1_w = 1'b1;")
	}
	wireOf := func(id SigID) string {
		switch n.Signals[id].Kind {
		case SigConst0:
			return "const0_w"
		case SigConst1:
			return "const1_w"
		default:
			return sig(id)
		}
	}

	for i := range n.Instances {
		inst := &n.Instances[i]
		pins := make([]string, 0, len(inst.Inputs)+1)
		for k, in := range inst.Inputs {
			pins = append(pins, fmt.Sprintf(".%c(%s)", 'A'+k, wireOf(in)))
		}
		pins = append(pins, fmt.Sprintf(".Y(%s)", wireOf(inst.Output)))
		fmt.Fprintf(bw, "  %s %s (%s);\n", inst.Cell.Name, sanitizeVerilogName(inst.Name, i), strings.Join(pins, ", "))
	}
	for _, po := range n.POs {
		fmt.Fprintf(bw, "  assign %s = %s;\n", sanitizeVerilogName(po.Name, -1), wireOf(po.Sig))
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

// sanitizeVerilogName maps arbitrary signal names to legal Verilog
// identifiers, appending the id when sanitization would collide.
func sanitizeVerilogName(name string, id int) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || (i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	s := b.String()
	if s == "" || s[0] >= '0' && s[0] <= '9' {
		s = "s_" + s
	}
	if s != name && id >= 0 {
		s = fmt.Sprintf("%s_%d", s, id)
	}
	return s
}

// WriteCellReport emits a per-cell usage summary sorted by area
// contribution, a common library-QoR report.
func (n *Netlist) WriteCellReport(w io.Writer) error {
	type rowT struct {
		name  string
		count int
		area  float64
	}
	counts := n.CellCounts()
	var rows []rowT
	areaOf := map[string]float64{}
	for i := range n.Instances {
		areaOf[n.Instances[i].Cell.Name] = n.Instances[i].Cell.Area
	}
	for name, cnt := range counts {
		rows = append(rows, rowT{name: name, count: cnt, area: float64(cnt) * areaOf[name]})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].area != rows[j].area {
			return rows[i].area > rows[j].area
		}
		return rows[i].name < rows[j].name
	})
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%-8s %8s %12s\n", "cell", "count", "area (µm²)")
	total := 0.0
	for _, r := range rows {
		fmt.Fprintf(bw, "%-8s %8d %12.3f\n", r.name, r.count, r.area)
		total += r.area
	}
	fmt.Fprintf(bw, "%-8s %8d %12.3f\n", "total", n.NumCells(), total)
	return bw.Flush()
}

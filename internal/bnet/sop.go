package bnet

import (
	"sort"
	"strings"
)

// Lit is a literal in a node's SOP: another node's output, possibly
// complemented. For the algebraic model a literal and its complement
// are treated as independent variables.
type Lit struct {
	Node NodeID
	Neg  bool
}

// Less orders literals by (Node, phase) with the positive phase first.
func (l Lit) Less(m Lit) bool {
	if l.Node != m.Node {
		return l.Node < m.Node
	}
	return !l.Neg && m.Neg
}

// Cube is a product of literals, kept sorted and duplicate-free.
type Cube []Lit

// NewCube returns a normalized cube: literals sorted, duplicates
// removed. It returns ok=false if the cube contains a literal and its
// complement (algebraically null product).
func NewCube(lits ...Lit) (Cube, bool) {
	c := append(Cube(nil), lits...)
	sort.Slice(c, func(i, j int) bool { return c[i].Less(c[j]) })
	out := c[:0]
	for i, l := range c {
		if i > 0 && l == c[i-1] {
			continue
		}
		if i > 0 && l.Node == c[i-1].Node && l.Neg != c[i-1].Neg {
			return nil, false
		}
		out = append(out, l)
	}
	return out, true
}

// Contains reports whether the cube includes literal l.
func (c Cube) Contains(l Lit) bool {
	i := sort.Search(len(c), func(i int) bool { return !c[i].Less(l) })
	return i < len(c) && c[i] == l
}

// ContainsAll reports whether every literal of d appears in c.
func (c Cube) ContainsAll(d Cube) bool {
	i := 0
	for _, l := range d {
		for i < len(c) && c[i].Less(l) {
			i++
		}
		if i >= len(c) || c[i] != l {
			return false
		}
		i++
	}
	return true
}

// Remove returns c with the literals of d removed. The caller must
// ensure d ⊆ c.
func (c Cube) Remove(d Cube) Cube {
	out := make(Cube, 0, len(c)-len(d))
	i := 0
	for _, l := range c {
		if i < len(d) && d[i] == l {
			i++
			continue
		}
		out = append(out, l)
	}
	return out
}

// Intersect returns the literals common to c and d.
func (c Cube) Intersect(d Cube) Cube {
	var out Cube
	i, j := 0, 0
	for i < len(c) && j < len(d) {
		switch {
		case c[i] == d[j]:
			out = append(out, c[i])
			i++
			j++
		case c[i].Less(d[j]):
			i++
		default:
			j++
		}
	}
	return out
}

// Merge returns the normalized union of c and d.
func (c Cube) Merge(d Cube) (Cube, bool) {
	return NewCube(append(append(Cube(nil), c...), d...)...)
}

// Equal reports whether c and d have identical literals.
func (c Cube) Equal(d Cube) bool {
	if len(c) != len(d) {
		return false
	}
	for i := range c {
		if c[i] != d[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of c.
func (c Cube) Clone() Cube { return append(Cube(nil), c...) }

// key returns a canonical string key for maps.
func (c Cube) key() string {
	var b strings.Builder
	for _, l := range c {
		if l.Neg {
			b.WriteByte('!')
		}
		b.WriteString(nodeIDString(l.Node))
		b.WriteByte('.')
	}
	return b.String()
}

// Sop is a sum of cubes: the algebraic expression form used by the
// technology-independent optimizer.
type Sop []Cube

// NewSop normalizes a cube list: each cube normalized, null cubes
// dropped, duplicate cubes removed, single-cube containment applied
// (a + ab = a), cubes sorted canonically.
func NewSop(cubes ...Cube) Sop {
	var s Sop
	for _, c := range cubes {
		nc, ok := NewCube(c...)
		if !ok {
			continue
		}
		s = append(s, nc)
	}
	s.normalize()
	return s
}

func (s *Sop) normalize() {
	in := *s
	sort.Slice(in, func(i, j int) bool {
		if len(in[i]) != len(in[j]) {
			return len(in[i]) < len(in[j])
		}
		return in[i].key() < in[j].key()
	})
	var out Sop
	for _, c := range in {
		dup := false
		for _, k := range out {
			if c.ContainsAll(k) { // k ⊆ c means k absorbs c
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	*s = out
}

// Clone returns a deep copy of s.
func (s Sop) Clone() Sop {
	out := make(Sop, len(s))
	for i, c := range s {
		out[i] = c.Clone()
	}
	return out
}

// NumLiterals returns the total literal count.
func (s Sop) NumLiterals() int {
	n := 0
	for _, c := range s {
		n += len(c)
	}
	return n
}

// Support returns the sorted distinct node IDs referenced by s.
func (s Sop) Support() []NodeID {
	seen := map[NodeID]bool{}
	for _, c := range s {
		for _, l := range c {
			seen[l.Node] = true
		}
	}
	out := make([]NodeID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Eval evaluates s given the value of every node.
func (s Sop) Eval(val []bool) bool {
	for _, c := range s {
		ok := true
		for _, l := range c {
			if val[l.Node] == l.Neg {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// Rename substitutes every reference to old with new, renormalizing.
func (s Sop) Rename(old, new NodeID) Sop {
	out := make([]Cube, 0, len(s))
	for _, c := range s {
		nc := c.Clone()
		for i, l := range nc {
			if l.Node == old {
				nc[i].Node = new
			}
		}
		out = append(out, nc)
	}
	return NewSop(out...)
}

// DivideByCube computes the algebraic quotient and remainder of s
// divided by cube d: s = d·Q + R where no cube of R contains d.
func (s Sop) DivideByCube(d Cube) (q, r Sop) {
	for _, c := range s {
		if c.ContainsAll(d) {
			q = append(q, c.Remove(d))
		} else {
			r = append(r, c.Clone())
		}
	}
	return q, r
}

// WeakDivide computes the algebraic (weak) division of s by divisor d:
// s = d·Q + R. Q is the intersection of the cube-quotients of s by
// each cube of d; R is what remains. Returns empty Q when d does not
// divide s.
func (s Sop) WeakDivide(d Sop) (q, r Sop) {
	if len(d) == 0 {
		return nil, s.Clone()
	}
	// Quotient = ∩_{cube di ∈ d} (s / di).
	q0, _ := s.DivideByCube(d[0])
	qset := map[string]Cube{}
	for _, c := range q0 {
		qset[c.key()] = c
	}
	for _, di := range d[1:] {
		qi, _ := s.DivideByCube(di)
		next := map[string]Cube{}
		for _, c := range qi {
			if k := c.key(); qset[k] != nil {
				next[k] = c
			}
		}
		qset = next
		if len(qset) == 0 {
			return nil, s.Clone()
		}
	}
	for _, c := range qset {
		q = append(q, c)
	}
	sort.Slice(q, func(i, j int) bool { return q[i].key() < q[j].key() })
	// R = s minus the cubes generated by d·Q.
	used := map[string]bool{}
	for _, qc := range q {
		for _, dc := range d {
			m, ok := qc.Merge(dc)
			if ok {
				used[m.key()] = true
			}
		}
	}
	for _, c := range s {
		if !used[c.key()] {
			r = append(r, c.Clone())
		}
	}
	return q, r
}

// CommonCube returns the largest cube common to every cube of s (the
// "biggest common divisor" cube). Empty when s has fewer than two
// cubes or no shared literal.
func (s Sop) CommonCube() Cube {
	if len(s) == 0 {
		return nil
	}
	common := s[0].Clone()
	for _, c := range s[1:] {
		common = common.Intersect(c)
		if len(common) == 0 {
			return nil
		}
	}
	return common
}

// IsCubeFree reports whether no single literal divides every cube.
func (s Sop) IsCubeFree() bool {
	return len(s) >= 2 && len(s.CommonCube()) == 0
}

// MakeCubeFree divides out the common cube, returning the cube-free
// SOP and the extracted co-kernel cube.
func (s Sop) MakeCubeFree() (Sop, Cube) {
	cc := s.CommonCube()
	if len(cc) == 0 {
		return s.Clone(), nil
	}
	out := make(Sop, len(s))
	for i, c := range s {
		out[i] = c.Remove(cc)
	}
	return out, cc
}

// key returns a canonical representation of the whole SOP.
func (s Sop) key() string {
	cp := s.Clone()
	cp.normalize()
	parts := make([]string, len(cp))
	for i, c := range cp {
		parts[i] = c.key()
	}
	return strings.Join(parts, "+")
}

// Equal reports whether s and t normalize to the same SOP.
func (s Sop) Equal(t Sop) bool { return s.key() == t.key() }

func nodeIDString(id NodeID) string {
	// Small fast positive-int formatter to keep key() cheap.
	if id == 0 {
		return "0"
	}
	neg := id < 0
	if neg {
		id = -id
	}
	var buf [20]byte
	i := len(buf)
	for id > 0 {
		i--
		buf[i] = byte('0' + id%10)
		id /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

package bnet

import (
	"bytes"
	"testing"
)

// FuzzReadBLIF drives the BLIF parser with arbitrary bytes: any input
// must either parse or return an error — never panic (the Network
// builder panics on duplicate node names, so the parser must validate
// before constructing) — and every accepted network must re-emit.
func FuzzReadBLIF(f *testing.F) {
	f.Add([]byte(".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n"))
	f.Add([]byte(".model m\n.inputs a\n.outputs y\n.names a n_y\n0 1\n.names n_y y\n1 1\n.end\n"))
	f.Add([]byte(".inputs a b \\\nc\n.outputs y\n.names a b c y\n1-1 1\n.end\n"))
	// Regression seeds: each once drove a panic in the Network builder
	// or an unhandled parse state.
	f.Add([]byte(".inputs a a\n.outputs y\n.names a y\n1 1\n.end\n")) // duplicate input
	f.Add([]byte(".inputs a\n.outputs y y\n.names a y\n1 1\n.end\n")) // duplicate output
	f.Add([]byte(".inputs a\n.outputs a\n.end\n"))                    // output == input
	f.Add([]byte(".inputs a\n.outputs y\n.names a a\n1 1\n.end\n"))   // .names redefines an input
	f.Add([]byte(".inputs a\n.outputs y\n.names a y\n1"))             // truncated cover
	f.Add([]byte(".names y\n"))                                       // constant block, no model
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := ReadBLIF(bytes.NewReader(data))
		if err != nil {
			return
		}
		// An accepted network must be internally consistent enough to
		// re-emit (TopoOrder succeeds on everything ReadBLIF builds).
		var buf bytes.Buffer
		if err := n.WriteBLIF(&buf, "fuzz"); err != nil {
			t.Fatalf("write of accepted network failed: %v", err)
		}
	})
}

package bnet

import (
	"math/rand"
	"testing"

	"casyn/internal/logic"
)

// Property tests for the multi-level restructuring passes: every pass
// must preserve the network function exactly, checked by exhaustive
// enumeration over all PI assignments of seeded random networks.

// randomNetwork builds a network from a seeded random PLA with ni
// inputs, no outputs, and the given number of product terms.
func randomNetwork(t *testing.T, rng *rand.Rand, ni, no, terms int) *Network {
	t.Helper()
	p := logic.NewPLA(ni, no)
	for i := 0; i < terms; i++ {
		cb := logic.NewCube(ni)
		for j := 0; j < ni; j++ {
			switch rng.Intn(3) {
			case 0:
				cb.SetPos(j)
			case 1:
				cb.SetNeg(j)
			}
		}
		outs := make([]bool, no)
		outs[rng.Intn(no)] = true
		for o := range outs {
			if rng.Intn(3) == 0 {
				outs[o] = true
			}
		}
		if err := p.AddTerm(cb, outs); err != nil {
			t.Fatal(err)
		}
	}
	n, err := FromPLA(p)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// truthTable snapshots every PO over every PI assignment.
func truthTable(t *testing.T, n *Network, ni int) [][]bool {
	t.Helper()
	tt := make([][]bool, 1<<ni)
	for m := range tt {
		pis := make([]bool, ni)
		for i := range pis {
			pis[i] = m>>i&1 == 1
		}
		out, err := n.EvalOutputs(pis)
		if err != nil {
			t.Fatal(err)
		}
		tt[m] = out
	}
	return tt
}

// requireSameFunction compares two snapshots minterm by minterm.
func requireSameFunction(t *testing.T, pass string, trial int, want, got [][]bool) {
	t.Helper()
	for m := range want {
		for o := range want[m] {
			if got[m][o] != want[m][o] {
				t.Fatalf("trial %d: %s changed output %d at minterm %d", trial, pass, o, m)
			}
		}
	}
}

// TestPropertyPassesPreserveFunction runs each restructuring pass over
// seeded random networks and proves the function unchanged by
// exhaustive enumeration (the networks stay at ≤8 PIs so 2^n is
// cheap). This complements the vector-sampling checks in the pass
// tests: enumeration cannot miss a divergent minterm.
func TestPropertyPassesPreserveFunction(t *testing.T) {
	t.Parallel()
	passes := []struct {
		name  string
		seed  int64
		apply func(*Network)
	}{
		{"FastExtract", 21, func(n *Network) { FastExtract(n, FastExtractOptions{}) }},
		{"FastExtractAggressive", 22, func(n *Network) {
			FastExtract(n, FastExtractOptions{MinPairCount: 2, MaxRounds: 100})
		}},
		{"Extract", 23, func(n *Network) { Extract(n, ExtractOptions{}) }},
		{"ExtractGreedy", 24, func(n *Network) {
			Extract(n, ExtractOptions{MinSaving: 1, MaxKernelsPerNode: 100})
		}},
		{"SimplifyNodes", 25, func(n *Network) { SimplifyNodes(n, 0) }},
		{"Sweep", 26, func(n *Network) { n.Sweep() }},
		{"ExtractThenSweep", 27, func(n *Network) {
			Extract(n, ExtractOptions{})
			n.Sweep()
		}},
		{"FullPipeline", 28, func(n *Network) {
			FastExtract(n, FastExtractOptions{MinPairCount: 2})
			Extract(n, ExtractOptions{})
			SimplifyNodes(n, 0)
			n.Sweep()
		}},
	}
	for _, pass := range passes {
		pass := pass
		t.Run(pass.name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(pass.seed))
			for trial := 0; trial < 40; trial++ {
				ni := 2 + rng.Intn(7) // 2..8 PIs
				no := 1 + rng.Intn(3)
				terms := 2 + rng.Intn(10)
				n := randomNetwork(t, rng, ni, no, terms)
				want := truthTable(t, n, ni)
				pass.apply(n)
				requireSameFunction(t, pass.name, trial, want, truthTable(t, n, ni))
			}
		})
	}
}

// TestPropertyFromPLAMatchesPLAEval: network construction itself is a
// hand-off worth checking — FromPLA must compute exactly PLA.Eval.
func TestPropertyFromPLAMatchesPLAEval(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 60; trial++ {
		ni := 1 + rng.Intn(8)
		no := 1 + rng.Intn(4)
		p := logic.NewPLA(ni, no)
		for i := 0; i < 1+rng.Intn(10); i++ {
			cb := logic.NewCube(ni)
			for j := 0; j < ni; j++ {
				switch rng.Intn(3) {
				case 0:
					cb.SetPos(j)
				case 1:
					cb.SetNeg(j)
				}
			}
			outs := make([]bool, no)
			outs[rng.Intn(no)] = true
			if err := p.AddTerm(cb, outs); err != nil {
				t.Fatal(err)
			}
		}
		n, err := FromPLA(p)
		if err != nil {
			t.Fatal(err)
		}
		for m := 0; m < 1<<ni; m++ {
			pis := make([]bool, ni)
			for i := range pis {
				pis[i] = m>>i&1 == 1
			}
			want := p.Eval(pis)
			got, err := n.EvalOutputs(pis)
			if err != nil {
				t.Fatal(err)
			}
			for o := range want {
				if got[o] != want[o] {
					t.Fatalf("trial %d: FromPLA output %d differs at minterm %d", trial, o, m)
				}
			}
		}
	}
}

// TestPropertyCheckEquivalenceAgrees: the package's own sampling
// checker must never contradict exhaustive enumeration on equivalent
// networks, and must catch a seeded corruption when given enough
// vectors (here: exhaustively many).
func TestPropertyCheckEquivalenceAgrees(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 20; trial++ {
		ni := 2 + rng.Intn(5)
		n := randomNetwork(t, rng, ni, 1+rng.Intn(2), 2+rng.Intn(8))
		m := n.Clone()
		Extract(m, ExtractOptions{})
		m.Sweep()
		if err := CheckEquivalence(n, m, 1<<uint(ni), rand.New(rand.NewSource(31))); err != nil {
			t.Fatalf("trial %d: extracted clone reported inequivalent: %v", trial, err)
		}
	}
}

package bnet

import (
	"math/rand"
	"strings"
	"testing"

	"casyn/internal/logic"
)

// buildXorNet builds f = a·b' + a'·b.
func buildXorNet() (*Network, NodeID, NodeID) {
	n := New()
	a := n.AddPI("a")
	b := n.AddPI("b")
	f := n.AddInternal("f", NewSop(
		mkCube(Lit{a, false}, Lit{b, true}),
		mkCube(Lit{a, true}, Lit{b, false}),
	))
	n.AddPO("out", f, false)
	return n, a, b
}

func TestNetworkBasics(t *testing.T) {
	t.Parallel()
	n, a, b := buildXorNet()
	if n.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d", n.NumNodes())
	}
	if len(n.PIs()) != 2 || len(n.POs()) != 1 {
		t.Fatal("PI/PO counts wrong")
	}
	f, ok := n.Lookup("f")
	if !ok {
		t.Fatal("Lookup failed")
	}
	fi := n.Fanins(f)
	if len(fi) != 2 || fi[0] != a || fi[1] != b {
		t.Errorf("Fanins = %v", fi)
	}
	fo := n.Fanouts(a)
	if len(fo) != 1 || fo[0] != f {
		t.Errorf("Fanouts = %v", fo)
	}
}

func TestNetworkEval(t *testing.T) {
	t.Parallel()
	n, _, _ := buildXorNet()
	cases := []struct {
		in   []bool
		want bool
	}{
		{[]bool{false, false}, false},
		{[]bool{true, false}, true},
		{[]bool{false, true}, true},
		{[]bool{true, true}, false},
	}
	for _, c := range cases {
		out, err := n.EvalOutputs(c.in)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != c.want {
			t.Errorf("Eval(%v) = %v, want %v", c.in, out[0], c.want)
		}
	}
	if _, err := n.EvalOutputs([]bool{true}); err == nil {
		t.Error("wrong PI count must error")
	}
}

func TestNegatedPO(t *testing.T) {
	t.Parallel()
	n := New()
	a := n.AddPI("a")
	buf := n.AddInternal("buf", NewSop(mkCube(Lit{a, false})))
	n.AddPO("nout", buf, true)
	out, err := n.EvalOutputs([]bool{true})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] {
		t.Error("negated PO of true input must be false")
	}
}

func TestTopoOrder(t *testing.T) {
	t.Parallel()
	n, _, _ := buildXorNet()
	order, err := n.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[NodeID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, node := range []string{"f"} {
		id, _ := n.Lookup(node)
		for _, fi := range n.Fanins(id) {
			if pos[fi] > pos[id] {
				t.Errorf("fanin %d after node %d", fi, id)
			}
		}
	}
}

func TestTopoOrderCycle(t *testing.T) {
	t.Parallel()
	n := New()
	a := n.AddPI("a")
	x := n.AddInternal("x", nil)
	y := n.AddInternal("y", NewSop(mkCube(Lit{x, false}, Lit{a, false})))
	n.SetFn(x, NewSop(mkCube(Lit{y, false})))
	if _, err := n.TopoOrder(); err == nil {
		t.Error("cycle not detected")
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("duplicate name must panic")
		}
	}()
	n := New()
	n.AddPI("a")
	n.AddPI("a")
}

func TestSweep(t *testing.T) {
	t.Parallel()
	n := New()
	a := n.AddPI("a")
	b := n.AddPI("b")
	dead := n.AddInternal("dead", NewSop(mkCube(Lit{a, false})))
	buf := n.AddInternal("buf", NewSop(mkCube(Lit{b, false})))
	f := n.AddInternal("f", NewSop(mkCube(Lit{buf, false}, Lit{a, false})))
	n.AddPO("out", f, false)
	_ = dead
	removed := n.Sweep()
	if removed < 2 {
		t.Errorf("Sweep removed %d, want >= 2 (dead node + buffer)", removed)
	}
	// The buffer must have been bypassed.
	fi := n.Fanins(f)
	for _, id := range fi {
		if id == buf {
			t.Error("buffer not collapsed")
		}
	}
	out, err := n.EvalOutputs([]bool{true, true})
	if err != nil || !out[0] {
		t.Errorf("function changed by sweep: %v %v", out, err)
	}
}

func TestCloneIndependence(t *testing.T) {
	t.Parallel()
	n, a, _ := buildXorNet()
	c := n.Clone()
	f, _ := n.Lookup("f")
	n.SetFn(f, NewSop(mkCube(Lit{a, false})))
	outN, _ := n.EvalOutputs([]bool{true, true})
	outC, _ := c.EvalOutputs([]bool{true, true})
	if outN[0] == outC[0] {
		t.Error("clone shares function storage with original")
	}
}

func TestFromPLA(t *testing.T) {
	t.Parallel()
	src := ".i 3\n.o 2\n.ilb a b c\n.ob f g\n1-0 10\n-11 11\n0-- 01\n.e\n"
	p, err := logic.ReadPLA(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	n, err := FromPLA(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.PIs()) != 3 || len(n.POs()) != 2 {
		t.Fatalf("interface %d/%d", len(n.PIs()), len(n.POs()))
	}
	assign := make([]bool, 3)
	for m := 0; m < 8; m++ {
		for i := range assign {
			assign[i] = m>>i&1 == 1
		}
		want := p.Eval(assign)
		got, err := n.EvalOutputs(assign)
		if err != nil {
			t.Fatal(err)
		}
		for o := range want {
			if want[o] != got[o] {
				t.Errorf("minterm %d output %d: PLA=%v net=%v", m, o, want[o], got[o])
			}
		}
	}
}

func TestExtractSharesKernel(t *testing.T) {
	t.Parallel()
	// f = ac + bc, g = ad + bd: the divisor (a+b) is shared.
	n := New()
	a := n.AddPI("a")
	b := n.AddPI("b")
	c := n.AddPI("c")
	d := n.AddPI("d")
	f := n.AddInternal("f", NewSop(
		mkCube(Lit{a, false}, Lit{c, false}),
		mkCube(Lit{b, false}, Lit{c, false}),
	))
	g := n.AddInternal("g", NewSop(
		mkCube(Lit{a, false}, Lit{d, false}),
		mkCube(Lit{b, false}, Lit{d, false}),
	))
	n.AddPO("of", f, false)
	n.AddPO("og", g, false)
	before := n.Clone()
	rep := Extract(n, ExtractOptions{})
	if rep.NewNodes < 1 {
		t.Fatalf("no divisor extracted: %+v", rep)
	}
	if rep.LiteralsAfter >= rep.LiteralsBefore {
		t.Errorf("literals did not decrease: %+v", rep)
	}
	if err := CheckEquivalence(before, n, 64, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
}

func TestExtractPreservesFunctionRandom(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		ni, no := 6, 3
		p := logic.NewPLA(ni, no)
		for k := 0; k < 14; k++ {
			cb := logic.NewCube(ni)
			for i := 0; i < ni; i++ {
				switch rng.Intn(3) {
				case 0:
					cb.SetPos(i)
				case 1:
					cb.SetNeg(i)
				}
			}
			row := make([]bool, no)
			row[rng.Intn(no)] = true
			if rng.Intn(2) == 0 {
				row[rng.Intn(no)] = true
			}
			if err := p.AddTerm(cb, row); err != nil {
				t.Fatal(err)
			}
		}
		n, err := FromPLA(p)
		if err != nil {
			t.Fatal(err)
		}
		before := n.Clone()
		Extract(n, ExtractOptions{MaxIterations: 50})
		if err := CheckEquivalence(before, n, 128, rng); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestExtractIncreasesSharing(t *testing.T) {
	t.Parallel()
	// A PLA with many shared subterms must end with higher max fanout
	// after extraction — the SIS signature the experiments rely on.
	rng := rand.New(rand.NewSource(13))
	ni, no := 8, 6
	p := logic.NewPLA(ni, no)
	for k := 0; k < 30; k++ {
		cb := logic.NewCube(ni)
		// Bias literals to a small pool so sharing exists.
		for i := 0; i < 4; i++ {
			if rng.Intn(2) == 0 {
				cb.SetPos(i)
			}
		}
		cb.SetPos(4 + rng.Intn(4))
		row := make([]bool, no)
		row[rng.Intn(no)] = true
		if err := p.AddTerm(cb, row); err != nil {
			t.Fatal(err)
		}
	}
	n, err := FromPLA(p)
	if err != nil {
		t.Fatal(err)
	}
	maxBefore, _ := n.MaxFanout()
	rep := Extract(n, ExtractOptions{})
	maxAfter, _ := n.MaxFanout()
	if rep.NewNodes > 0 && maxAfter < maxBefore {
		t.Errorf("extraction reduced max fanout: %d -> %d", maxBefore, maxAfter)
	}
}

func TestKindString(t *testing.T) {
	t.Parallel()
	if KindPI.String() != "pi" || KindInternal.String() != "internal" || KindPO.String() != "po" {
		t.Error("Kind.String broken")
	}
}

package bnet

import (
	"math/rand"
	"testing"

	"casyn/internal/logic"
)

func TestFastExtractPreservesFunction(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 8; trial++ {
		ni, no := 8, 4
		p := logic.NewPLA(ni, no)
		for k := 0; k < 30; k++ {
			cb := logic.NewCube(ni)
			for i := 0; i < ni; i++ {
				switch rng.Intn(3) {
				case 0:
					cb.SetPos(i)
				case 1:
					cb.SetNeg(i)
				}
			}
			row := make([]bool, no)
			row[rng.Intn(no)] = true
			if rng.Intn(2) == 0 {
				row[rng.Intn(no)] = true
			}
			if err := p.AddTerm(cb, row); err != nil {
				t.Fatal(err)
			}
		}
		n, err := FromPLA(p)
		if err != nil {
			t.Fatal(err)
		}
		before := n.Clone()
		rep := FastExtract(n, FastExtractOptions{MinPairCount: 2})
		if err := CheckEquivalence(before, n, 256, rng); err != nil {
			t.Fatalf("trial %d: %v (report %+v)", trial, err, rep)
		}
	}
}

func TestFastExtractReducesLiterals(t *testing.T) {
	t.Parallel()
	// Heavy shared-motif structure: extraction must shrink literals.
	rng := rand.New(rand.NewSource(73))
	ni, no := 10, 6
	p := logic.NewPLA(ni, no)
	motif := logic.NewCube(ni)
	motif.SetPos(0)
	motif.SetPos(1)
	motif.SetNeg(2)
	for k := 0; k < 40; k++ {
		cb := motif.Clone()
		i := 3 + rng.Intn(ni-3)
		cb.SetPos(i)
		row := make([]bool, no)
		row[rng.Intn(no)] = true
		if err := p.AddTerm(cb, row); err != nil {
			t.Fatal(err)
		}
	}
	n, err := FromPLA(p)
	if err != nil {
		t.Fatal(err)
	}
	rep := FastExtract(n, FastExtractOptions{})
	if rep.LiteralsAfter >= rep.LiteralsBefore {
		t.Errorf("literals did not shrink: %+v", rep)
	}
	if rep.NewNodes == 0 {
		t.Error("no divisors extracted from motif-heavy PLA")
	}
	maxFO, _ := n.MaxFanout()
	if maxFO < 3 {
		t.Errorf("expected heavily shared nodes, max fanout %d", maxFO)
	}
}

func TestShareIdenticalCubes(t *testing.T) {
	t.Parallel()
	// The same cube in two outputs is extracted once and shared.
	n := New()
	a := n.AddPI("a")
	b := n.AddPI("b")
	c := n.AddPI("c")
	cube1 := mkCube(Lit{a, false}, Lit{b, false})
	cube2 := mkCube(Lit{a, false}, Lit{b, false})
	f := n.AddInternal("f", NewSop(cube1, mkCube(Lit{c, false})))
	g := n.AddInternal("g", NewSop(cube2))
	n.AddPO("of", f, false)
	n.AddPO("og", g, false)
	before := n.Clone()
	made := shareIdenticalCubes(n)
	if made != 1 {
		t.Fatalf("made %d nodes, want 1", made)
	}
	if err := CheckEquivalence(before, n, 64, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
}

func TestSimplifyNodesPreservesFunction(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 10; trial++ {
		ni, no := 6, 3
		p := logic.NewPLA(ni, no)
		for k := 0; k < 20; k++ {
			cb := logic.NewCube(ni)
			for i := 0; i < ni; i++ {
				switch rng.Intn(3) {
				case 0:
					cb.SetPos(i)
				case 1:
					cb.SetNeg(i)
				}
			}
			row := make([]bool, no)
			row[rng.Intn(no)] = true
			if err := p.AddTerm(cb, row); err != nil {
				t.Fatal(err)
			}
		}
		n, err := FromPLA(p)
		if err != nil {
			t.Fatal(err)
		}
		before := n.Clone()
		rep := SimplifyNodes(n, 0)
		if rep.LiteralsAfter > rep.LiteralsBefore {
			t.Errorf("trial %d: simplify grew literals %d -> %d", trial, rep.LiteralsBefore, rep.LiteralsAfter)
		}
		if err := CheckEquivalence(before, n, 256, rng); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSimplifyNodesRemovesRedundancy(t *testing.T) {
	t.Parallel()
	// f = ab + a'c + bc: the consensus term bc is redundant.
	n := New()
	a := n.AddPI("a")
	b := n.AddPI("b")
	c := n.AddPI("c")
	f := n.AddInternal("f", NewSop(
		mkCube(Lit{a, false}, Lit{b, false}),
		mkCube(Lit{a, true}, Lit{c, false}),
		mkCube(Lit{b, false}, Lit{c, false}),
	))
	n.AddPO("o", f, false)
	rep := SimplifyNodes(n, 0)
	if rep.NodesSimplified != 1 {
		t.Errorf("simplified %d nodes, want 1", rep.NodesSimplified)
	}
	if got := n.Node(f).Fn.NumLiterals(); got != 4 {
		t.Errorf("literals = %d, want 4 (ab + a'c)", got)
	}
}

func TestSimplifyRespectsSupportBound(t *testing.T) {
	t.Parallel()
	n := New()
	var lits []Lit
	for i := 0; i < 6; i++ {
		id := n.AddPI(string(rune('a' + i)))
		lits = append(lits, Lit{Node: id, Neg: i%2 == 0})
	}
	cube1, _ := NewCube(lits[:3]...)
	cube2, _ := NewCube(lits[3:]...)
	f := n.AddInternal("wide", NewSop(cube1, cube2))
	n.AddPO("o", f, false)
	rep := SimplifyNodes(n, 2) // support 6 > bound 2: untouched
	if rep.NodesSimplified != 0 {
		t.Error("support bound ignored")
	}
}

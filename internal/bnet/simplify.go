package bnet

import (
	"casyn/internal/logic"
)

// SimplifyReport summarizes a SimplifyNodes run.
type SimplifyReport struct {
	NodesSimplified int
	LiteralsBefore  int
	LiteralsAfter   int
}

// SimplifyNodes runs two-level minimization on every internal node's
// SOP — SIS's `simplify` step: each node function is re-expressed over
// its own support as a PLA cover, minimized with the espresso-style
// EXPAND/IRREDUNDANT pass, and written back when that saves literals.
// The node's Boolean function is preserved exactly.
//
// maxSupport bounds the per-node support size the minimizer will touch
// (the cover operations are exponential in the worst case); 0 means
// the default of 12.
func SimplifyNodes(n *Network, maxSupport int) SimplifyReport {
	if maxSupport == 0 {
		maxSupport = 12
	}
	rep := SimplifyReport{LiteralsBefore: n.NumLiterals()}
	for _, id := range n.InternalIDs() {
		fn := n.Node(id).Fn
		if len(fn) < 2 {
			continue
		}
		supp := fn.Support()
		if len(supp) > maxSupport {
			continue
		}
		cov, ok := coverFromSop(fn, supp)
		if !ok {
			continue
		}
		before := fn.NumLiterals()
		cov.Minimize(nil)
		after := cov.NumLiterals()
		if after >= before {
			continue
		}
		n.SetFn(id, sopFromCoverLocal(cov, supp))
		rep.NodesSimplified++
	}
	rep.LiteralsAfter = n.NumLiterals()
	return rep
}

// coverFromSop re-expresses an algebraic SOP as a two-level cover over
// its support columns. Returns ok=false for SOPs the cover
// representation cannot hold (none currently, but kept for safety).
func coverFromSop(fn Sop, supp []NodeID) (*logic.Cover, bool) {
	col := make(map[NodeID]int, len(supp))
	for i, id := range supp {
		col[id] = i
	}
	cov := logic.NewCover(len(supp))
	for _, c := range fn {
		cb := logic.NewCube(len(supp))
		for _, l := range c {
			if l.Neg {
				cb.SetNeg(col[l.Node])
			} else {
				cb.SetPos(col[l.Node])
			}
		}
		cov.Add(cb)
	}
	return cov, true
}

// sopFromCoverLocal converts a minimized cover back to an algebraic
// SOP over the same support.
func sopFromCoverLocal(cov *logic.Cover, supp []NodeID) Sop {
	var cubes []Cube
	for _, cb := range cov.Cubes {
		var lits []Lit
		for i := 0; i < cov.Inputs(); i++ {
			switch cb.Lit(i) {
			case 1:
				lits = append(lits, Lit{Node: supp[i]})
			case -1:
				lits = append(lits, Lit{Node: supp[i], Neg: true})
			}
		}
		c, ok := NewCube(lits...)
		if !ok {
			continue
		}
		cubes = append(cubes, c)
	}
	return NewSop(cubes...)
}

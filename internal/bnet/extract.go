package bnet

import (
	"fmt"
	"sort"
)

// ExtractOptions tunes the greedy shared-divisor extraction pass.
type ExtractOptions struct {
	// MaxIterations bounds the number of divisors extracted.
	// 0 means the package default (1000).
	MaxIterations int
	// MaxKernelsPerNode bounds kernel enumeration per node per round.
	// 0 means the default (30).
	MaxKernelsPerNode int
	// MinSaving is the minimum literal saving for a divisor to be
	// extracted. The default 1 extracts every profitable divisor.
	MinSaving int
}

func (o *ExtractOptions) defaults() {
	if o.MaxIterations == 0 {
		o.MaxIterations = 1000
	}
	if o.MaxKernelsPerNode == 0 {
		o.MaxKernelsPerNode = 30
	}
	if o.MinSaving == 0 {
		o.MinSaving = 1
	}
}

// ExtractReport summarizes an extraction run.
type ExtractReport struct {
	Iterations     int
	LiteralsBefore int
	LiteralsAfter  int
	NewNodes       int
}

// String implements fmt.Stringer.
func (r ExtractReport) String() string {
	return fmt.Sprintf("extract: %d divisors, literals %d -> %d",
		r.NewNodes, r.LiteralsBefore, r.LiteralsAfter)
}

// Extract performs SIS-style greedy shared-divisor extraction on the
// network: in each round it enumerates kernel and common-cube divisor
// candidates over all internal nodes, scores each by total literal
// saving across the network, extracts the best one as a new node, and
// substitutes it everywhere it divides. The loop stops when no
// candidate saves at least opts.MinSaving literals.
//
// This is the behaviour the paper attributes to SIS's technology-
// independent phase: it minimizes literals aggressively and creates
// heavily shared (high-fanout) nodes.
func Extract(n *Network, opts ExtractOptions) ExtractReport {
	opts.defaults()
	rep := ExtractReport{LiteralsBefore: n.NumLiterals()}
	for rep.Iterations < opts.MaxIterations {
		div, saving := bestDivisor(n, opts)
		if saving < opts.MinSaving || len(div) == 0 {
			break
		}
		applyDivisor(n, div)
		rep.Iterations++
		rep.NewNodes++
	}
	rep.LiteralsAfter = n.NumLiterals()
	return rep
}

// candidate is a divisor with its accumulated saving.
type candidate struct {
	div    Sop
	saving int
}

// bestDivisor scores all candidate divisors and returns the best.
func bestDivisor(n *Network, opts ExtractOptions) (Sop, int) {
	ids := n.InternalIDs()
	// Gather candidates, deduplicated by canonical key.
	cands := map[string]Sop{}
	for _, id := range ids {
		fn := n.Node(id).Fn
		if len(fn) < 2 {
			continue
		}
		for _, kp := range fn.Kernels(opts.MaxKernelsPerNode) {
			// A kernel with many cubes is rarely shared; keep divisors
			// small (double-cube divisors dominate in fast_extract).
			if len(kp.Kernel) > 4 {
				continue
			}
			cands[kp.Kernel.key()] = kp.Kernel
		}
		for _, c := range fn.CubeDivisors() {
			s := Sop{c}
			cands[s.key()] = s
		}
	}
	if len(cands) == 0 {
		return nil, 0
	}
	// Deterministic iteration order.
	keys := make([]string, 0, len(cands))
	for k := range cands {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	best := candidate{}
	for _, k := range keys {
		div := cands[k]
		s := divisorSaving(n, ids, div)
		if s > best.saving {
			best = candidate{div: div, saving: s}
		}
	}
	return best.div, best.saving
}

// divisorSaving computes the network-wide literal saving of extracting
// div as a new node: for each node where div divides with a non-empty
// quotient, before = lits(F), after = lits(Q) + |Q| + lits(R); the
// divisor itself costs lits(div) once. Single-cube divisors use the
// cube-quotient.
func divisorSaving(n *Network, ids []NodeID, div Sop) int {
	saving := 0
	uses := 0
	for _, id := range ids {
		fn := n.Node(id).Fn
		q, r := divide(fn, div)
		if len(q) == 0 {
			continue
		}
		before := fn.NumLiterals()
		after := q.NumLiterals() + len(q) + r.NumLiterals()
		if after < before {
			saving += before - after
			uses++
		}
	}
	if uses < 2 && len(div) > 1 {
		// A multi-cube divisor used once only moves literals around.
		return 0
	}
	if uses < 2 && len(div) == 1 {
		// A common cube inside a single node is still profitable if it
		// appears in several cubes of that node, which the per-node
		// saving above already captured — but extracting it adds a
		// level for no sharing; require sharing.
		return 0
	}
	return saving - div.NumLiterals()
}

// divide dispatches to cube or weak division.
func divide(fn, div Sop) (q, r Sop) {
	if len(div) == 1 {
		q, r = fn.DivideByCube(div[0])
		return q, r
	}
	return fn.WeakDivide(div)
}

// applyDivisor creates a node for div and substitutes it into every
// node it profitably divides.
func applyDivisor(n *Network, div Sop) NodeID {
	name := fmt.Sprintf("ext%d", n.NumNodes())
	newID := n.AddInternal(name, div.Clone())
	for _, id := range n.InternalIDs() {
		if id == newID {
			continue
		}
		fn := n.Node(id).Fn
		q, r := divide(fn, div)
		if len(q) == 0 {
			continue
		}
		before := fn.NumLiterals()
		after := q.NumLiterals() + len(q) + r.NumLiterals()
		if after >= before {
			continue
		}
		// F = Q·d + R.
		var cubes []Cube
		for _, qc := range q {
			nc, ok := qc.Merge(Cube{Lit{Node: newID}})
			if !ok {
				continue
			}
			cubes = append(cubes, nc)
		}
		cubes = append(cubes, r...)
		n.SetFn(id, NewSop(cubes...))
	}
	return newID
}

// Package bnet implements the multi-level Boolean network substrate:
// nodes holding sum-of-products expressions over other nodes, algebraic
// division, kernel extraction, and the greedy shared-divisor extraction
// that stands in for SIS's technology-independent optimization.
//
// The network is the input to technology-independent decomposition
// (package subject) and, through the extraction pass, the "SIS"
// baseline of the paper's Tables 1, 3 and 5: aggressive sharing that
// minimizes literals but creates high-fanout nodes whose placement
// spreads fanins far apart — the congestion pathology the paper
// measures.
package bnet

import (
	"fmt"
	"math/rand"
	"sort"
)

// NodeID identifies a node within one Network. IDs are dense indices
// into the network's node table and are never reused.
type NodeID int

// Invalid is the zero-value-adjacent sentinel for "no node".
const Invalid NodeID = -1

// Kind classifies network nodes.
type Kind int

const (
	// KindPI is a primary input.
	KindPI Kind = iota
	// KindInternal is a logic node with a SOP function.
	KindInternal
	// KindPO is a primary output; its function is a single literal
	// referencing the driving node.
	KindPO
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindPI:
		return "pi"
	case KindInternal:
		return "internal"
	case KindPO:
		return "po"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Node is one vertex of the Boolean network.
type Node struct {
	ID   NodeID
	Name string
	Kind Kind
	// Fn is the node's sum-of-products over other nodes' outputs.
	// Empty for PIs. For POs it is a single one-literal cube.
	Fn Sop
}

// Network is a DAG of Boolean nodes.
type Network struct {
	nodes  []*Node
	byName map[string]NodeID
	pis    []NodeID
	pos    []NodeID
	// fanouts is rebuilt lazily; nil means stale.
	fanouts [][]NodeID
}

// New returns an empty network.
func New() *Network {
	return &Network{byName: make(map[string]NodeID)}
}

// AddPI adds a primary input with the given name.
func (n *Network) AddPI(name string) NodeID {
	return n.add(&Node{Name: name, Kind: KindPI})
}

// AddInternal adds a logic node with function fn.
func (n *Network) AddInternal(name string, fn Sop) NodeID {
	return n.add(&Node{Name: name, Kind: KindInternal, Fn: fn})
}

// AddPO adds a primary output named name driven by driver with the
// given phase (neg true means the output is the complement of driver;
// decomposition later inserts the inverter).
func (n *Network) AddPO(name string, driver NodeID, neg bool) NodeID {
	return n.add(&Node{Name: name, Kind: KindPO, Fn: Sop{{Lit{Node: driver, Neg: neg}}}})
}

func (n *Network) add(node *Node) NodeID {
	if _, dup := n.byName[node.Name]; dup {
		panic(fmt.Sprintf("bnet: duplicate node name %q", node.Name))
	}
	node.ID = NodeID(len(n.nodes))
	n.nodes = append(n.nodes, node)
	n.byName[node.Name] = node.ID
	switch node.Kind {
	case KindPI:
		n.pis = append(n.pis, node.ID)
	case KindPO:
		n.pos = append(n.pos, node.ID)
	}
	n.fanouts = nil
	return node.ID
}

// Node returns the node with the given ID.
func (n *Network) Node(id NodeID) *Node { return n.nodes[id] }

// Lookup returns the node ID for a name.
func (n *Network) Lookup(name string) (NodeID, bool) {
	id, ok := n.byName[name]
	return id, ok
}

// NumNodes returns the total node count including PIs and POs.
func (n *Network) NumNodes() int { return len(n.nodes) }

// PIs returns the primary input IDs in creation order.
func (n *Network) PIs() []NodeID { return n.pis }

// POs returns the primary output IDs in creation order.
func (n *Network) POs() []NodeID { return n.pos }

// SetFn replaces the function of an internal node and invalidates the
// fanout cache.
func (n *Network) SetFn(id NodeID, fn Sop) {
	node := n.nodes[id]
	if node.Kind != KindInternal && node.Kind != KindPO {
		panic("bnet: SetFn on a primary input")
	}
	node.Fn = fn
	n.fanouts = nil
}

// Fanins returns the sorted support of node id (the distinct nodes its
// function references).
func (n *Network) Fanins(id NodeID) []NodeID {
	return n.nodes[id].Fn.Support()
}

// Fanouts returns the nodes whose functions reference id. The result
// is cached until the network is mutated.
func (n *Network) Fanouts(id NodeID) []NodeID {
	if n.fanouts == nil {
		n.rebuildFanouts()
	}
	return n.fanouts[id]
}

func (n *Network) rebuildFanouts() {
	n.fanouts = make([][]NodeID, len(n.nodes))
	for _, node := range n.nodes {
		for _, fi := range node.Fn.Support() {
			n.fanouts[fi] = append(n.fanouts[fi], node.ID)
		}
	}
}

// TopoOrder returns all node IDs in topological order (fanins before
// fanouts). It returns an error if the network contains a cycle.
func (n *Network) TopoOrder() ([]NodeID, error) {
	const (
		unvisited = 0
		active    = 1
		done      = 2
	)
	state := make([]byte, len(n.nodes))
	order := make([]NodeID, 0, len(n.nodes))
	// Iterative DFS to survive deep networks.
	type frame struct {
		id   NodeID
		next int
	}
	var stack []frame
	var fanins [][]NodeID // memoized per call
	fanins = make([][]NodeID, len(n.nodes))
	supp := func(id NodeID) []NodeID {
		if fanins[id] == nil {
			fanins[id] = n.Fanins(id)
			if fanins[id] == nil {
				fanins[id] = []NodeID{}
			}
		}
		return fanins[id]
	}
	for root := range n.nodes {
		if state[root] != unvisited {
			continue
		}
		stack = append(stack[:0], frame{id: NodeID(root)})
		state[root] = active
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			deps := supp(f.id)
			if f.next < len(deps) {
				child := deps[f.next]
				f.next++
				switch state[child] {
				case unvisited:
					state[child] = active
					stack = append(stack, frame{id: child})
				case active:
					return nil, fmt.Errorf("bnet: cycle through node %q", n.nodes[child].Name)
				}
				continue
			}
			state[f.id] = done
			order = append(order, f.id)
			stack = stack[:len(stack)-1]
		}
	}
	return order, nil
}

// NumLiterals returns the total literal count over all internal nodes,
// the SIS area proxy.
func (n *Network) NumLiterals() int {
	total := 0
	for _, node := range n.nodes {
		if node.Kind == KindInternal {
			total += node.Fn.NumLiterals()
		}
	}
	return total
}

// Eval evaluates the network for a full PI assignment, returning the
// value of every node. piValues is indexed by position in PIs().
func (n *Network) Eval(piValues []bool) ([]bool, error) {
	if len(piValues) != len(n.pis) {
		return nil, fmt.Errorf("bnet: %d PI values for %d PIs", len(piValues), len(n.pis))
	}
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	val := make([]bool, len(n.nodes))
	piIndex := make(map[NodeID]int, len(n.pis))
	for i, id := range n.pis {
		piIndex[id] = i
	}
	for _, id := range order {
		node := n.nodes[id]
		switch node.Kind {
		case KindPI:
			val[id] = piValues[piIndex[id]]
		default:
			val[id] = node.Fn.Eval(val)
		}
	}
	return val, nil
}

// EvalOutputs evaluates the network and returns only the PO values in
// PO order.
func (n *Network) EvalOutputs(piValues []bool) ([]bool, error) {
	val, err := n.Eval(piValues)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(n.pos))
	for i, id := range n.pos {
		out[i] = val[id]
	}
	return out, nil
}

// Sweep removes internal nodes that no PO transitively depends on and
// collapses internal nodes whose function is a single positive literal
// (pure buffers) into their fanouts. It returns the number of nodes
// removed or collapsed.
func (n *Network) Sweep() int {
	removed := 0
	// Collapse single-positive-literal internal nodes.
	for _, node := range n.nodes {
		if node.Kind != KindInternal || len(node.Fn) != 1 || len(node.Fn[0]) != 1 || node.Fn[0][0].Neg {
			continue
		}
		target := node.Fn[0][0].Node
		for _, fo := range n.Fanouts(node.ID) {
			n.nodes[fo].Fn = n.nodes[fo].Fn.Rename(node.ID, target)
		}
		n.fanouts = nil
		node.Fn = nil // now dangling; dead-node pass removes it
		removed++
	}
	// Mark liveness from POs.
	live := make([]bool, len(n.nodes))
	var mark func(NodeID)
	mark = func(id NodeID) {
		if live[id] {
			return
		}
		live[id] = true
		for _, fi := range n.Fanins(id) {
			mark(fi)
		}
	}
	for _, po := range n.pos {
		mark(po)
	}
	for _, node := range n.nodes {
		if node.Kind == KindInternal && !live[node.ID] && node.Fn != nil {
			node.Fn = nil
			removed++
		}
	}
	return removed
}

// InternalIDs returns the IDs of live internal nodes in ascending
// order.
func (n *Network) InternalIDs() []NodeID {
	var out []NodeID
	for _, node := range n.nodes {
		if node.Kind == KindInternal && node.Fn != nil {
			out = append(out, node.ID)
		}
	}
	return out
}

// MaxFanout returns the largest fanout count over live nodes and the
// average fanout of nodes with at least one fanout. SIS-style sharing
// drives the maximum up, which is the structural congestion signature
// the paper measures.
func (n *Network) MaxFanout() (maxFO int, avgFO float64) {
	cnt, sum := 0, 0
	for _, node := range n.nodes {
		fo := len(n.Fanouts(node.ID))
		if fo > maxFO {
			maxFO = fo
		}
		if fo > 0 {
			cnt++
			sum += fo
		}
	}
	if cnt > 0 {
		avgFO = float64(sum) / float64(cnt)
	}
	return maxFO, avgFO
}

// CheckEquivalence compares two networks with identical PI/PO counts
// on vectors random assignments drawn from rng, returning an error on
// the first mismatch. It is the light-weight verification used by the
// optimization tests.
func CheckEquivalence(a, b *Network, vectors int, rng *rand.Rand) error {
	if len(a.pis) != len(b.pis) || len(a.pos) != len(b.pos) {
		return fmt.Errorf("bnet: interface mismatch %d/%d vs %d/%d",
			len(a.pis), len(a.pos), len(b.pis), len(b.pos))
	}
	assign := make([]bool, len(a.pis))
	for v := 0; v < vectors; v++ {
		for i := range assign {
			assign[i] = rng.Intn(2) == 0
		}
		av, err := a.EvalOutputs(assign)
		if err != nil {
			return err
		}
		bv, err := b.EvalOutputs(assign)
		if err != nil {
			return err
		}
		for o := range av {
			if av[o] != bv[o] {
				return fmt.Errorf("bnet: outputs differ at vector %d output %d", v, o)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	out := New()
	out.nodes = make([]*Node, len(n.nodes))
	for i, node := range n.nodes {
		cp := &Node{ID: node.ID, Name: node.Name, Kind: node.Kind, Fn: node.Fn.Clone()}
		out.nodes[i] = cp
		out.byName[cp.Name] = cp.ID
	}
	out.pis = append([]NodeID(nil), n.pis...)
	out.pos = append([]NodeID(nil), n.pos...)
	return out
}

// Names returns a deterministic listing of node names, for debugging.
func (n *Network) Names() []string {
	out := make([]string, 0, len(n.nodes))
	for _, node := range n.nodes {
		out = append(out, node.Name)
	}
	sort.Strings(out)
	return out
}

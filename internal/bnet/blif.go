package bnet

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteBLIF emits the network in Berkeley Logic Interchange Format:
// one .names block per internal node with its SOP in PLA notation.
// Primary outputs that are complements of their driver get an explicit
// inverter block. The result is readable by SIS, ABC, and ReadBLIF.
func (n *Network) WriteBLIF(w io.Writer, model string) error {
	if model == "" {
		model = "casyn"
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".model %s\n", model)

	names := make([]string, 0, len(n.pis))
	for _, pi := range n.pis {
		names = append(names, n.Node(pi).Name)
	}
	fmt.Fprintf(bw, ".inputs %s\n", strings.Join(names, " "))
	names = names[:0]
	for _, po := range n.pos {
		names = append(names, n.Node(po).Name)
	}
	fmt.Fprintf(bw, ".outputs %s\n", strings.Join(names, " "))

	order, err := n.TopoOrder()
	if err != nil {
		return err
	}
	for _, id := range order {
		node := n.Node(id)
		switch node.Kind {
		case KindInternal:
			// A nil Fn is a constant-false function (possibly a swept
			// node; emitting those too is harmless).
			if err := writeNames(bw, n, node.Name, node.Fn); err != nil {
				return err
			}
		case KindPO:
			l := node.Fn[0][0]
			drv := n.Node(l.Node).Name
			if l.Neg {
				fmt.Fprintf(bw, ".names %s %s\n0 1\n", drv, node.Name)
			} else {
				fmt.Fprintf(bw, ".names %s %s\n1 1\n", drv, node.Name)
			}
		}
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// writeNames emits one .names block for fn.
func writeNames(w io.Writer, n *Network, name string, fn Sop) error {
	supp := fn.Support()
	col := make(map[NodeID]int, len(supp))
	hdr := make([]string, 0, len(supp)+1)
	for i, id := range supp {
		col[id] = i
		hdr = append(hdr, n.Node(id).Name)
	}
	hdr = append(hdr, name)
	if _, err := fmt.Fprintf(w, ".names %s\n", strings.Join(hdr, " ")); err != nil {
		return err
	}
	if len(fn) == 0 {
		// Constant false: a .names block with no cubes.
		return nil
	}
	for _, c := range fn {
		row := make([]byte, len(supp))
		for i := range row {
			row[i] = '-'
		}
		for _, l := range c {
			if l.Neg {
				row[col[l.Node]] = '0'
			} else {
				row[col[l.Node]] = '1'
			}
		}
		if len(supp) == 0 {
			// Constant true: an empty input plane.
			if _, err := fmt.Fprintln(w, "1"); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s 1\n", row); err != nil {
			return err
		}
	}
	return nil
}

// ReadBLIF parses the single-model subset of BLIF this package writes:
// .model/.inputs/.outputs/.names/.end with 1-terminated single-output
// cover rows (the SIS default). Don't-care output rows and multiple
// models are rejected. Line continuations with '\' are handled.
func ReadBLIF(r io.Reader) (*Network, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	var lines []string
	var cont strings.Builder
	for sc.Scan() {
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if strings.HasSuffix(text, "\\") {
			cont.WriteString(strings.TrimSuffix(text, "\\"))
			cont.WriteByte(' ')
			continue
		}
		cont.WriteString(text)
		line := strings.TrimSpace(cont.String())
		cont.Reset()
		if line != "" {
			lines = append(lines, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	var (
		inputs, outputs []string
		blocks          []namesBlock
		sawModel        bool
	)
	for li := 0; li < len(lines); li++ {
		fields := strings.Fields(lines[li])
		switch fields[0] {
		case ".model":
			if sawModel {
				return nil, fmt.Errorf("bnet: multiple .model blocks unsupported")
			}
			sawModel = true
		case ".inputs":
			inputs = append(inputs, fields[1:]...)
		case ".outputs":
			outputs = append(outputs, fields[1:]...)
		case ".names":
			if len(fields) < 2 {
				return nil, fmt.Errorf("bnet: .names with no signals")
			}
			b := namesBlock{signals: fields[1:]}
			for li+1 < len(lines) && !strings.HasPrefix(lines[li+1], ".") {
				li++
				row := strings.Fields(lines[li])
				nIn := len(b.signals) - 1
				switch {
				case nIn == 0 && len(row) == 1 && row[0] == "1":
					b.rows = append(b.rows, "")
				case len(row) == 2 && len(row[0]) == nIn:
					if row[1] != "1" {
						return nil, fmt.Errorf("bnet: only 1-terminated covers supported, got %q", row[1])
					}
					b.rows = append(b.rows, row[0])
				default:
					return nil, fmt.Errorf("bnet: malformed cover row %q", lines[li])
				}
			}
			blocks = append(blocks, b)
		case ".end":
			// done
		case ".latch", ".subckt", ".gate":
			return nil, fmt.Errorf("bnet: %s unsupported (combinational .names only)", fields[0])
		default:
			return nil, fmt.Errorf("bnet: unsupported directive %s", fields[0])
		}
	}
	if len(inputs) == 0 && len(blocks) == 0 {
		return nil, fmt.Errorf("bnet: empty BLIF")
	}

	n := New()
	sig := map[string]NodeID{}
	isInput := map[string]bool{}
	for _, name := range inputs {
		// The network panics on duplicate node names; validate here so
		// malformed BLIF degrades to an error instead.
		if isInput[name] {
			return nil, fmt.Errorf("bnet: duplicate input %q", name)
		}
		isInput[name] = true
		sig[name] = n.AddPI(name)
	}
	// Blocks may be out of order; resolve iteratively.
	isOutput := map[string]bool{}
	for _, o := range outputs {
		if isOutput[o] {
			return nil, fmt.Errorf("bnet: duplicate output %q", o)
		}
		if isInput[o] {
			return nil, fmt.Errorf("bnet: output %q collides with an input (pass-through POs unsupported)", o)
		}
		isOutput[o] = true
	}
	pending := blocks
	for len(pending) > 0 {
		progress := false
		var next []namesBlock
		for _, b := range pending {
			ready := true
			for _, s := range b.signals[:len(b.signals)-1] {
				if _, ok := sig[s]; !ok {
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, b)
				continue
			}
			progress = true
			outName := b.signals[len(b.signals)-1]
			if isInput[outName] {
				return nil, fmt.Errorf("bnet: .names redefines input %q", outName)
			}
			fn, err := sopFromRows(b, sig)
			if err != nil {
				return nil, err
			}
			internalName := outName
			if isOutput[outName] {
				internalName = "n_" + outName
			}
			for {
				if _, taken := n.Lookup(internalName); !taken {
					break
				}
				internalName += "_"
			}
			id := n.AddInternal(internalName, fn)
			sig[outName] = id
		}
		if !progress {
			missing := map[string]bool{}
			for _, b := range next {
				for _, s := range b.signals[:len(b.signals)-1] {
					if _, ok := sig[s]; !ok {
						missing[s] = true
					}
				}
			}
			var names []string
			for s := range missing {
				names = append(names, s)
			}
			sort.Strings(names)
			return nil, fmt.Errorf("bnet: undriven signals %v (cyclic or incomplete BLIF)", names)
		}
		pending = next
	}
	for _, o := range outputs {
		drv, ok := sig[o]
		if !ok {
			return nil, fmt.Errorf("bnet: output %s has no driver", o)
		}
		if _, taken := n.Lookup(o); taken {
			return nil, fmt.Errorf("bnet: output name %q collides with an existing node", o)
		}
		n.AddPO(o, drv, false)
	}
	return n, nil
}

// namesBlock is one parsed .names cover.
type namesBlock struct {
	signals []string // inputs... output
	rows    []string // input-plane rows (output column must be 1)
}

// sopFromRows converts a .names cover to an algebraic SOP.
func sopFromRows(b namesBlock, sig map[string]NodeID) (Sop, error) {
	nIn := len(b.signals) - 1
	var cubes []Cube
	for _, row := range b.rows {
		var lits []Lit
		for i := 0; i < nIn && i < len(row); i++ {
			switch row[i] {
			case '1':
				lits = append(lits, Lit{Node: sig[b.signals[i]]})
			case '0':
				lits = append(lits, Lit{Node: sig[b.signals[i]], Neg: true})
			case '-':
			default:
				return nil, fmt.Errorf("bnet: invalid cover character %q", row[i])
			}
		}
		c, ok := NewCube(lits...)
		if !ok {
			continue // contradictory row contributes nothing
		}
		cubes = append(cubes, c)
	}
	return NewSop(cubes...), nil
}

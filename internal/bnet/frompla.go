package bnet

import (
	"fmt"

	"casyn/internal/logic"
)

// FromPLA builds a Boolean network from a two-level PLA description:
// one primary input per PLA input, one internal node per output
// holding that output's cover as a SOP over the PIs, and one PO per
// output.
func FromPLA(p *logic.PLA) (*Network, error) {
	n := New()
	piIDs := make([]NodeID, p.NumInputs)
	for i := 0; i < p.NumInputs; i++ {
		name := fmt.Sprintf("in%d", i)
		if i < len(p.InputNames) && p.InputNames[i] != "" {
			name = p.InputNames[i]
		}
		piIDs[i] = n.AddPI(name)
	}
	for o := 0; o < p.NumOutputs; o++ {
		cov := p.OutputCover(o)
		sop, err := sopFromCover(cov, piIDs)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("out%d", o)
		if o < len(p.OutputNames) && p.OutputNames[o] != "" {
			name = p.OutputNames[o]
		}
		fnID := n.AddInternal("n_"+name, sop)
		n.AddPO(name, fnID, false)
	}
	return n, nil
}

// sopFromCover converts a two-level cover into an algebraic SOP whose
// literals reference the given PI node IDs.
func sopFromCover(cov *logic.Cover, piIDs []NodeID) (Sop, error) {
	if cov.Inputs() != len(piIDs) {
		return nil, fmt.Errorf("bnet: cover width %d vs %d PIs", cov.Inputs(), len(piIDs))
	}
	var cubes []Cube
	for _, cb := range cov.Cubes {
		var lits []Lit
		for i := 0; i < cov.Inputs(); i++ {
			switch cb.Lit(i) {
			case 1:
				lits = append(lits, Lit{Node: piIDs[i]})
			case -1:
				lits = append(lits, Lit{Node: piIDs[i], Neg: true})
			}
		}
		c, ok := NewCube(lits...)
		if !ok {
			return nil, fmt.Errorf("bnet: contradictory cube %s", cb)
		}
		cubes = append(cubes, c)
	}
	return NewSop(cubes...), nil
}

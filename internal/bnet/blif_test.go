package bnet

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"casyn/internal/logic"
)

const sampleBLIF = `# a small combinational model
.model demo
.inputs a b c
.outputs f g
.names a b t1
11 1
.names t1 c f
1- 1
-1 1
.names a c g
10 1
.end
`

func TestReadBLIF(t *testing.T) {
	t.Parallel()
	n, err := ReadBLIF(strings.NewReader(sampleBLIF))
	if err != nil {
		t.Fatal(err)
	}
	if len(n.PIs()) != 3 || len(n.POs()) != 2 {
		t.Fatalf("interface %d/%d", len(n.PIs()), len(n.POs()))
	}
	// f = ab + c, g = a·c'.
	cases := []struct {
		in    []bool
		wantF bool
		wantG bool
	}{
		{[]bool{true, true, false}, true, true},
		{[]bool{false, false, true}, true, false},
		{[]bool{true, false, false}, false, true},
		{[]bool{false, false, false}, false, false},
	}
	for _, cs := range cases {
		out, err := n.EvalOutputs(cs.in)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != cs.wantF || out[1] != cs.wantG {
			t.Errorf("in=%v: f=%v g=%v, want %v %v", cs.in, out[0], out[1], cs.wantF, cs.wantG)
		}
	}
}

func TestReadBLIFOutOfOrderBlocks(t *testing.T) {
	t.Parallel()
	// t1 is used before its .names block appears.
	src := ".model x\n.inputs a b\n.outputs f\n.names t1 f\n1 1\n.names a b t1\n11 1\n.end\n"
	n, err := ReadBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	out, err := n.EvalOutputs([]bool{true, true})
	if err != nil {
		t.Fatal(err)
	}
	if !out[0] {
		t.Error("f(1,1) must be 1")
	}
}

func TestReadBLIFLineContinuation(t *testing.T) {
	t.Parallel()
	src := ".model x\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n"
	n, err := ReadBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(n.PIs()) != 2 {
		t.Errorf("PIs = %d, want 2 (continuation broken)", len(n.PIs()))
	}
}

func TestReadBLIFErrors(t *testing.T) {
	t.Parallel()
	bad := []string{
		"",
		".model a\n.model b\n.end\n",
		".inputs a\n.outputs f\n.names a f\n1 0\n.end\n",  // 0-terminated
		".inputs a\n.outputs f\n.latch a f\n.end\n",       // latch
		".inputs a\n.outputs f\n.names x f\n1 1\n.end\n",  // undriven x
		".inputs a\n.outputs f\n.names a f\nxx 1\n.end\n", // bad row
	}
	for _, src := range bad {
		if _, err := ReadBLIF(strings.NewReader(src)); err == nil {
			t.Errorf("ReadBLIF accepted %q", src)
		}
	}
}

func TestBLIFWriteReadRoundTrip(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 8; trial++ {
		ni, no := 6, 3
		p := logic.NewPLA(ni, no)
		for k := 0; k < 14; k++ {
			cb := logic.NewCube(ni)
			for i := 0; i < ni; i++ {
				switch rng.Intn(3) {
				case 0:
					cb.SetPos(i)
				case 1:
					cb.SetNeg(i)
				}
			}
			row := make([]bool, no)
			row[rng.Intn(no)] = true
			if err := p.AddTerm(cb, row); err != nil {
				t.Fatal(err)
			}
		}
		orig, err := FromPLA(p)
		if err != nil {
			t.Fatal(err)
		}
		// Optimize so the network has interesting internal structure.
		Extract(orig, ExtractOptions{MaxIterations: 20})
		var buf bytes.Buffer
		if err := orig.WriteBLIF(&buf, "roundtrip"); err != nil {
			t.Fatal(err)
		}
		back, err := ReadBLIF(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if err := CheckEquivalence(orig, back, 200, rng); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestBLIFConstantNodes(t *testing.T) {
	t.Parallel()
	n := New()
	n.AddPI("a")
	zero := n.AddInternal("zero", nil)
	one := n.AddInternal("one", NewSop(Cube{}))
	n.AddPO("z", zero, false)
	n.AddPO("o", one, false)
	var buf bytes.Buffer
	if err := n.WriteBLIF(&buf, "consts"); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBLIF(&buf)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	out, err := back.EvalOutputs([]bool{true})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != false || out[1] != true {
		t.Errorf("constants = %v, want [false true]", out)
	}
}

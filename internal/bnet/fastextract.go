package bnet

import (
	"sort"
)

// FastExtractOptions tunes the scalable extraction pass.
type FastExtractOptions struct {
	// MaxRounds bounds the pair-extraction rounds (default 40).
	MaxRounds int
	// MinPairCount is the minimum occurrence count for a literal pair
	// to be extracted (default 4).
	MinPairCount int
	// MaxPairsPerRound bounds how many disjoint pairs are extracted
	// per round (default 256).
	MaxPairsPerRound int
}

func (o *FastExtractOptions) defaults() {
	if o.MaxRounds == 0 {
		o.MaxRounds = 40
	}
	if o.MinPairCount == 0 {
		o.MinPairCount = 4
	}
	if o.MaxPairsPerRound == 0 {
		o.MaxPairsPerRound = 256
	}
}

// FastExtract is the scalable shared-divisor extraction used for the
// full-size SIS baseline. It captures the two dominant sharing
// mechanisms of SIS on PLA-born networks while staying near-linear in
// network size:
//
//  1. identical product terms used by several node functions are
//     extracted once and shared (term sharing across output cones);
//  2. repeated rounds extract frequently co-occurring literal pairs
//     into new AND nodes (common-cube extraction), processing a batch
//     of disjoint pairs per round.
//
// Both rewrites are purely algebraic, so the network function is
// preserved exactly. Like SIS's fx, the result is a literal-minimized
// network whose shared nodes have high fanout — the structural
// signature whose congestion cost the paper measures.
func FastExtract(n *Network, opts FastExtractOptions) ExtractReport {
	opts.defaults()
	rep := ExtractReport{LiteralsBefore: n.NumLiterals()}

	rep.NewNodes += shareIdenticalCubes(n)

	for round := 0; round < opts.MaxRounds; round++ {
		extracted := extractPairBatch(n, opts)
		rep.NewNodes += extracted
		rep.Iterations++
		if extracted == 0 {
			break
		}
	}
	rep.LiteralsAfter = n.NumLiterals()
	return rep
}

// shareIdenticalCubes extracts every multi-literal cube that appears
// in two or more node functions (or twice in one) into a node of its
// own, replacing the occurrences with a single literal.
func shareIdenticalCubes(n *Network) int {
	type occ struct {
		count int
		width int
	}
	counts := map[string]*occ{}
	ids := n.InternalIDs()
	for _, id := range ids {
		for _, c := range n.Node(id).Fn {
			if len(c) < 2 {
				continue
			}
			k := c.key()
			o := counts[k]
			if o == nil {
				o = &occ{width: len(c)}
				counts[k] = o
			}
			o.count++
		}
	}
	made := 0
	nodeOf := map[string]NodeID{}
	for _, id := range ids {
		fn := n.Node(id).Fn
		changed := false
		out := make([]Cube, 0, len(fn))
		for _, c := range fn {
			if len(c) >= 2 {
				k := c.key()
				if o := counts[k]; o != nil && o.count >= 2 {
					nid, ok := nodeOf[k]
					if !ok {
						nid = n.AddInternal(autoName(n), Sop{c.Clone()})
						nodeOf[k] = nid
						made++
					}
					if nid != id { // never self-reference
						out = append(out, Cube{Lit{Node: nid}})
						changed = true
						continue
					}
				}
			}
			out = append(out, c)
		}
		if changed {
			n.SetFn(id, NewSop(out...))
		}
	}
	return made
}

// extractPairBatch counts literal-pair co-occurrence across the whole
// network, selects the best disjoint pairs, and extracts each as a new
// two-literal AND node.
func extractPairBatch(n *Network, opts FastExtractOptions) int {
	type pair struct{ a, b Lit }
	counts := map[pair]int{}
	ids := n.InternalIDs()
	for _, id := range ids {
		for _, c := range n.Node(id).Fn {
			for i := 0; i < len(c); i++ {
				for j := i + 1; j < len(c); j++ {
					counts[pair{c[i], c[j]}]++
				}
			}
		}
	}
	type scored struct {
		p pair
		n int
	}
	cands := make([]scored, 0, len(counts))
	for p, c := range counts {
		if c >= opts.MinPairCount {
			cands = append(cands, scored{p, c})
		}
	}
	if len(cands) == 0 {
		return 0
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].n != cands[j].n {
			return cands[i].n > cands[j].n
		}
		pi, pj := cands[i].p, cands[j].p
		if pi.a != pj.a {
			return pi.a.Less(pj.a)
		}
		return pi.b.Less(pj.b)
	})
	// Select disjoint pairs greedily so one batch application is
	// unambiguous.
	used := map[Lit]bool{}
	var chosen []pair
	for _, s := range cands {
		if len(chosen) >= opts.MaxPairsPerRound {
			break
		}
		if used[s.p.a] || used[s.p.b] {
			continue
		}
		used[s.p.a] = true
		used[s.p.b] = true
		chosen = append(chosen, s.p)
	}
	// Create the AND nodes and index both literals of each pair.
	// Pairs are literal-disjoint, so each literal keys at most one.
	byLit := make(map[Lit]pairRepl, 2*len(chosen))
	made := 0
	for _, p := range chosen {
		cube, ok := NewCube(p.a, p.b)
		if !ok {
			continue
		}
		id := n.AddInternal(autoName(n), Sop{cube})
		div := Lit{Node: id}
		byLit[p.a] = pairRepl{partner: p.b, div: div}
		byLit[p.b] = pairRepl{partner: p.a, div: div}
		made++
	}
	if made == 0 {
		return 0
	}
	newIDs := map[NodeID]bool{}
	for _, pr := range byLit {
		newIDs[pr.div.Node] = true
	}
	for _, id := range ids {
		if newIDs[id] {
			continue
		}
		fn := n.Node(id).Fn
		changed := false
		out := make([]Cube, 0, len(fn))
		for _, c := range fn {
			nc, rewritten := rewriteCube(c, byLit)
			changed = changed || rewritten
			out = append(out, nc)
		}
		if changed {
			n.SetFn(id, NewSop(out...))
		}
	}
	return made
}

// pairRepl records, for one literal of a chosen pair, its partner
// literal and the divisor node replacing the pair.
type pairRepl struct {
	partner Lit
	div     Lit
}

// rewriteCube replaces every chosen pair whose two literals both occur
// in the cube with the pair's divisor literal. It reports whether the
// cube changed.
func rewriteCube(c Cube, byLit map[Lit]pairRepl) (Cube, bool) {
	var lits []Lit
	changed := false
	for _, l := range c {
		pr, ok := byLit[l]
		if !ok || !c.Contains(pr.partner) {
			lits = append(lits, l)
			continue
		}
		changed = true
		if l.Less(pr.partner) {
			lits = append(lits, pr.div) // emit once per pair
		}
	}
	if !changed {
		return c, false
	}
	nc, ok := NewCube(lits...)
	if !ok {
		// Cannot happen: divisor literals are fresh positive nodes.
		return c, false
	}
	return nc, true
}

func autoName(n *Network) string {
	return "fx" + nodeIDString(NodeID(n.NumNodes()))
}

package bnet

import (
	"math/rand"
	"testing"
)

// lit builds a literal for tests.
func lit(id int, neg bool) Lit { return Lit{Node: NodeID(id), Neg: neg} }

// mkCube builds a cube from (id, neg) pairs, panicking on null cubes.
func mkCube(lits ...Lit) Cube {
	c, ok := NewCube(lits...)
	if !ok {
		panic("null cube in test")
	}
	return c
}

func TestNewCubeNormalization(t *testing.T) {
	t.Parallel()
	c := mkCube(lit(3, false), lit(1, true), lit(3, false))
	if len(c) != 2 {
		t.Fatalf("len = %d, want 2 (dup removed)", len(c))
	}
	if c[0] != lit(1, true) || c[1] != lit(3, false) {
		t.Errorf("cube not sorted: %v", c)
	}
	if _, ok := NewCube(lit(2, false), lit(2, true)); ok {
		t.Error("null cube (x·x') must be rejected")
	}
}

func TestCubeContainsAllAndRemove(t *testing.T) {
	t.Parallel()
	c := mkCube(lit(1, false), lit(2, true), lit(5, false))
	d := mkCube(lit(1, false), lit(5, false))
	if !c.ContainsAll(d) {
		t.Error("ContainsAll failed")
	}
	if d.ContainsAll(c) {
		t.Error("subset must not contain superset")
	}
	r := c.Remove(d)
	if len(r) != 1 || r[0] != lit(2, true) {
		t.Errorf("Remove = %v", r)
	}
}

func TestCubeIntersectMerge(t *testing.T) {
	t.Parallel()
	a := mkCube(lit(1, false), lit(2, false))
	b := mkCube(lit(2, false), lit(3, true))
	in := a.Intersect(b)
	if len(in) != 1 || in[0] != lit(2, false) {
		t.Errorf("Intersect = %v", in)
	}
	m, ok := a.Merge(b)
	if !ok || len(m) != 3 {
		t.Errorf("Merge = %v,%v", m, ok)
	}
	// Merging opposite phases is null.
	c := mkCube(lit(1, true))
	if _, ok := a.Merge(c); ok {
		t.Error("merge with opposite phase must fail")
	}
}

func TestSopNormalization(t *testing.T) {
	t.Parallel()
	// a + ab normalizes to a (absorption).
	s := NewSop(
		mkCube(lit(1, false)),
		mkCube(lit(1, false), lit(2, false)),
	)
	if len(s) != 1 || len(s[0]) != 1 {
		t.Errorf("absorption failed: %v", s)
	}
	// Duplicates removed.
	s = NewSop(mkCube(lit(1, false)), mkCube(lit(1, false)))
	if len(s) != 1 {
		t.Errorf("dup removal failed: %v", s)
	}
}

func TestSopSupportAndLiterals(t *testing.T) {
	t.Parallel()
	s := NewSop(
		mkCube(lit(4, false), lit(2, true)),
		mkCube(lit(2, false)),
	)
	supp := s.Support()
	if len(supp) != 2 || supp[0] != 2 || supp[1] != 4 {
		t.Errorf("Support = %v", supp)
	}
	if s.NumLiterals() != 3 {
		t.Errorf("NumLiterals = %d, want 3", s.NumLiterals())
	}
}

func TestSopEval(t *testing.T) {
	t.Parallel()
	// f = x1·x2' + x3
	s := NewSop(
		mkCube(lit(1, false), lit(2, true)),
		mkCube(lit(3, false)),
	)
	val := make([]bool, 5)
	val[1] = true
	if !s.Eval(val) {
		t.Error("x1 x2' must be true")
	}
	val[2] = true
	if s.Eval(val) {
		t.Error("x1 x2 must be false")
	}
	val[3] = true
	if !s.Eval(val) {
		t.Error("x3 must dominate")
	}
}

func TestDivideByCube(t *testing.T) {
	t.Parallel()
	// F = abc + abd + e ; F/ab = c + d, R = e.
	ab := mkCube(lit(1, false), lit(2, false))
	f := NewSop(
		mkCube(lit(1, false), lit(2, false), lit(3, false)),
		mkCube(lit(1, false), lit(2, false), lit(4, false)),
		mkCube(lit(5, false)),
	)
	q, r := f.DivideByCube(ab)
	if len(q) != 2 || len(r) != 1 {
		t.Fatalf("q=%v r=%v", q, r)
	}
}

func TestWeakDivide(t *testing.T) {
	t.Parallel()
	// F = ac + ad + bc + bd + e; D = a + b → Q = c + d, R = e.
	f := NewSop(
		mkCube(lit(1, false), lit(3, false)),
		mkCube(lit(1, false), lit(4, false)),
		mkCube(lit(2, false), lit(3, false)),
		mkCube(lit(2, false), lit(4, false)),
		mkCube(lit(5, false)),
	)
	d := NewSop(mkCube(lit(1, false)), mkCube(lit(2, false)))
	q, r := f.WeakDivide(d)
	if len(q) != 2 {
		t.Fatalf("quotient = %v, want c+d", q)
	}
	if len(r) != 1 || r[0][0] != lit(5, false) {
		t.Fatalf("remainder = %v, want e", r)
	}
	// Reconstruction D·Q + R must equal F.
	var rebuilt []Cube
	for _, qc := range q {
		for _, dc := range d {
			m, ok := qc.Merge(dc)
			if !ok {
				t.Fatal("null product in reconstruction")
			}
			rebuilt = append(rebuilt, m)
		}
	}
	rebuilt = append(rebuilt, r...)
	if !NewSop(rebuilt...).Equal(f) {
		t.Error("D·Q + R != F")
	}
	// Non-divisor returns empty quotient.
	nd := NewSop(mkCube(lit(1, false)), mkCube(lit(9, false)))
	q, r = f.WeakDivide(nd)
	if len(q) != 0 || len(r) != len(f) {
		t.Error("non-divisor must leave F intact")
	}
}

func TestCommonCubeAndCubeFree(t *testing.T) {
	t.Parallel()
	// F = abc + abd: common cube ab.
	f := NewSop(
		mkCube(lit(1, false), lit(2, false), lit(3, false)),
		mkCube(lit(1, false), lit(2, false), lit(4, false)),
	)
	cc := f.CommonCube()
	if len(cc) != 2 {
		t.Fatalf("CommonCube = %v", cc)
	}
	if f.IsCubeFree() {
		t.Error("F must not be cube-free")
	}
	cf, co := f.MakeCubeFree()
	if !cf.IsCubeFree() {
		t.Error("MakeCubeFree result must be cube-free")
	}
	if len(co) != 2 {
		t.Errorf("co-kernel = %v", co)
	}
}

func TestKernels(t *testing.T) {
	t.Parallel()
	// The textbook example F = adf + aef + bdf + bef + cdf + cef + g
	// has kernels {a+b+c, d+e, F itself}.
	a, b, c2, d, e, f2, g := lit(1, false), lit(2, false), lit(3, false), lit(4, false), lit(5, false), lit(6, false), lit(7, false)
	f := NewSop(
		mkCube(a, d, f2), mkCube(a, e, f2),
		mkCube(b, d, f2), mkCube(b, e, f2),
		mkCube(c2, d, f2), mkCube(c2, e, f2),
		mkCube(g),
	)
	ks := f.Kernels(0)
	var sawABC, sawDE bool
	abc := NewSop(mkCube(a), mkCube(b), mkCube(c2))
	de := NewSop(mkCube(d), mkCube(e))
	for _, kp := range ks {
		if kp.Kernel.Equal(abc) {
			sawABC = true
		}
		if kp.Kernel.Equal(de) {
			sawDE = true
		}
		if !kp.Kernel.IsCubeFree() {
			t.Errorf("kernel %v not cube-free", kp.Kernel)
		}
	}
	if !sawABC || !sawDE {
		t.Errorf("missing kernels: a+b+c=%v d+e=%v (got %d kernels)", sawABC, sawDE, len(ks))
	}
	// Bounded enumeration respects the cap.
	if got := f.Kernels(1); len(got) > 1 {
		t.Errorf("Kernels(1) returned %d", len(got))
	}
}

func TestCubeDivisors(t *testing.T) {
	t.Parallel()
	// F = abc + abd: pairwise intersection ab.
	f := NewSop(
		mkCube(lit(1, false), lit(2, false), lit(3, false)),
		mkCube(lit(1, false), lit(2, false), lit(4, false)),
	)
	divs := f.CubeDivisors()
	if len(divs) != 1 || len(divs[0]) != 2 {
		t.Errorf("CubeDivisors = %v", divs)
	}
}

func TestSopRename(t *testing.T) {
	t.Parallel()
	s := NewSop(mkCube(lit(1, false), lit(2, true)))
	r := s.Rename(2, 7)
	if r[0][1] != lit(7, true) && r[0][0] != lit(7, true) {
		t.Errorf("Rename = %v", r)
	}
}

// Property: weak division reconstruction D·Q + R == F on random SOPs
// whenever Q is non-empty.
func TestWeakDivideReconstructionProperty(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(5))
	randomSop := func(nvars, ncubes, maxw int) Sop {
		var cubes []Cube
		for i := 0; i < ncubes; i++ {
			var lits []Lit
			w := rng.Intn(maxw) + 1
			for j := 0; j < w; j++ {
				lits = append(lits, lit(rng.Intn(nvars)+1, rng.Intn(4) == 0))
			}
			if c, ok := NewCube(lits...); ok {
				cubes = append(cubes, c)
			}
		}
		return NewSop(cubes...)
	}
	for trial := 0; trial < 300; trial++ {
		f := randomSop(6, 8, 4)
		d := randomSop(6, 2, 2)
		if len(f) == 0 || len(d) == 0 {
			continue
		}
		q, r := f.WeakDivide(d)
		if len(q) == 0 {
			continue
		}
		var rebuilt []Cube
		valid := true
		for _, qc := range q {
			for _, dc := range d {
				m, ok := qc.Merge(dc)
				if !ok {
					valid = false
					break
				}
				rebuilt = append(rebuilt, m)
			}
		}
		if !valid {
			continue // algebraic reconstruction undefined with null products
		}
		rebuilt = append(rebuilt, r...)
		if !NewSop(rebuilt...).Equal(NewSop(f...)) {
			t.Fatalf("trial %d: D·Q+R != F\nF=%v\nD=%v\nQ=%v\nR=%v", trial, f, d, q, r)
		}
	}
}

package bnet

import "sort"

// KernelPair is a kernel of an SOP together with one of its
// co-kernels. A kernel is a cube-free quotient of the SOP by a cube;
// kernels are the algebraic divisors with more than one cube that can
// be shared between expressions (Brayton–McMullen theorem).
type KernelPair struct {
	Kernel   Sop
	CoKernel Cube
}

// Kernels enumerates the kernels of s (level-0 and higher) using the
// classic recursive co-kernel algorithm with literal-order pruning.
// The SOP itself is included when it is cube-free. maxKernels bounds
// the enumeration (0 means no bound); enumeration stops once the bound
// is reached.
func (s Sop) Kernels(maxKernels int) []KernelPair {
	lits := s.literalUniverse()
	var out []KernelPair
	seen := map[string]bool{}

	var rec func(cur Sop, coKernel Cube, minLitIdx int)
	rec = func(cur Sop, coKernel Cube, minLitIdx int) {
		if maxKernels > 0 && len(out) >= maxKernels {
			return
		}
		cf, extra := cur.MakeCubeFree()
		if len(extra) > 0 {
			merged, ok := coKernel.Merge(extra)
			if !ok {
				return
			}
			coKernel = merged
		}
		if len(cf) >= 2 {
			k := cf.key()
			if !seen[k] {
				seen[k] = true
				out = append(out, KernelPair{Kernel: cf, CoKernel: coKernel})
			}
		}
		for i := minLitIdx; i < len(lits); i++ {
			l := lits[i]
			// Count cubes containing l.
			cnt := 0
			for _, c := range cf {
				if c.Contains(l) {
					cnt++
				}
			}
			if cnt < 2 {
				continue
			}
			q, _ := cf.DivideByCube(Cube{l})
			merged, ok := coKernel.Merge(Cube{l})
			if !ok {
				continue
			}
			rec(NewSop(q...), merged, i+1)
			if maxKernels > 0 && len(out) >= maxKernels {
				return
			}
		}
	}
	rec(s.Clone(), Cube{}, 0)
	return out
}

// literalUniverse returns the distinct literals of s in canonical
// order.
func (s Sop) literalUniverse() []Lit {
	seen := map[Lit]bool{}
	for _, c := range s {
		for _, l := range c {
			seen[l] = true
		}
	}
	out := make([]Lit, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// CubeDivisors enumerates candidate single-cube divisors of s: every
// pairwise cube intersection with at least two literals. These feed
// the common-cube extraction step of the optimizer.
func (s Sop) CubeDivisors() []Cube {
	seen := map[string]Cube{}
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			in := s[i].Intersect(s[j])
			if len(in) >= 2 {
				seen[in.key()] = in
			}
		}
	}
	out := make([]Cube, 0, len(seen))
	for _, c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

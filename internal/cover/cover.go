// Package cover implements dynamic-programming tree covering with the
// paper's congestion-aware cost function (Section 3.2, Eqs. 1–5):
//
//	AREA(m,v)  = area(m) + Σ areaCost(v_i)                      (1)
//	WIRE1(m,v) = Σ dist(pos(m,v), pos(match(v_i), v_i))         (2)
//	WIRE2(m,v) = Σ wireCost(v_i)                                (3)
//	WIRE(m,v)  = WIRE1(m,v) + WIRE2(m,v)                        (4)
//	COST(m,v)  = AREA(m,v) + K · WIRE(m,v)                      (5)
//
// pos(m,v) is the center of mass, on the chip layout image, of the
// base gates covered by match m; when a match is selected the covered
// gates' positions are replaced by that center of mass, which is how
// the companion placement is incrementally updated. wireCost(v) is the
// WIRE1 of the match selected at v — the wire contribution between
// that match and its fanins — so WIRE totals the match's own fanin
// wires plus those of its immediate children, exactly the two-level
// scope the paper argues for (against the transitive-fanin cost of
// Pedram–Bhat [9], available here as an ablation option).
//
// K = 0 reduces COST to the classic minimum-area objective of DAGON.
//
// # Parallelism
//
// The trees of the partition forest are independent dynamic programs:
// they share only the read-only DAG, library, and the pre-cover
// placement snapshot. Every cross-tree distance (a match leaf that
// references a gate of another tree) is evaluated against that frozen
// snapshot, never against another tree's committed center-of-mass
// updates, so the cover of each tree is independent of tree processing
// order and Cover's result is byte-identical for any Options.Workers
// value. The incremental placement update remains visible where it
// matters: within a tree, parent matches see their input subtrees'
// centers of mass through the DP solutions, and Result.Pos carries
// every tree's committed positions for downstream consumers.
package cover

import (
	"context"
	"fmt"
	"math"

	"casyn/internal/geom"
	"casyn/internal/library"
	"casyn/internal/match"
	"casyn/internal/obs"
	"casyn/internal/par"
	"casyn/internal/partition"
	"casyn/internal/subject"
)

// matchesPerGateBounds buckets how many library patterns matched at
// each DP vertex — the solution-space width the covering explores.
var matchesPerGateBounds = []float64{1, 2, 4, 8, 16, 32, 64}

// instruments carries the shared observability handles of one Cover
// call. Counter and histogram handles are safe to share across the
// tree fan-out (atomic / mutex-guarded), and the zero value (nil
// handles, from a context without a recorder) is a complete no-op.
type instruments struct {
	solutions *obs.Counter   // DP vertices solved ("cover.solutions")
	matches   *obs.Counter   // candidate matches evaluated ("cover.matches")
	perGate   *obs.Histogram // matches per vertex ("cover.matches_per_gate")
}

// Objective selects the covering optimization target.
type Objective int

const (
	// MinArea is the paper's objective: COST = AREA + K·WIRE.
	MinArea Objective = iota
	// MinDelay is the Rudell/Touati extension the paper cites in
	// Section 3.2: the DP minimizes the load-aware arrival time at
	// each vertex (plus K·WIRE), breaking ties toward smaller area.
	MinDelay
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	if o == MinDelay {
		return "min-delay"
	}
	return "min-area"
}

// Options tunes the coverer.
type Options struct {
	// K is the congestion minimization factor of Eq. 5.
	K float64
	// Objective selects area- or delay-oriented covering.
	Objective Objective
	// Metric is the layout distance function (default Manhattan).
	Metric geom.Metric
	// WireUnit is the length unit, in µm, that WIRE is expressed in
	// (default 0.5, one routing half-pitch). It calibrates the K scale
	// so the paper's K ladder lands on the same regions.
	WireUnit float64
	// TransitiveWire switches WIRE2 to the full transitive
	// accumulation (the Pedram–Bhat-style cost the paper criticizes);
	// used by the ablation benchmarks.
	TransitiveWire bool
	// NoWire2 drops WIRE2 entirely (WIRE = WIRE1), the other ablation.
	NoWire2 bool
	// KField, when non-nil, spatially weights Eq. 5: each wire term is
	// scaled by the field multiplier sampled along its span (see
	// kfield.go) before K is applied. Nil runs the classic global-K
	// cost unchanged; a uniform field (all multipliers exactly 1.0)
	// produces a byte-identical result to nil. The reported WIRE
	// metrics (Solution.Wire, Result.RootWire) stay unweighted — the
	// field shifts the optimization, not the measurement.
	KField *KField
	// Workers bounds the goroutines covering trees concurrently:
	// 0 = runtime.GOMAXPROCS, 1 = serial. The result is identical for
	// every value (see the package comment on parallelism).
	Workers int
}

// Solution is the optimal cover decision at one tree vertex.
type Solution struct {
	Match match.Match
	// AreaCost is Eq. 1 evaluated for the selected match.
	AreaCost float64
	// WireCost is the stored wireCost(v): WIRE1 of the selected match
	// (or the transitive accumulation under Options.TransitiveWire).
	WireCost float64
	// WireCostW is the K-field-weighted analogue of WireCost: each
	// span's contribution scaled by the field multiplier. It is what a
	// parent's WIRE2 accumulates under a field. Equal to WireCost when
	// the cover ran with a nil or uniform field.
	WireCostW float64
	// Wire is Eq. 4 for the selected match (reporting only).
	Wire float64
	// Arrival is the estimated arrival time at the vertex under the
	// MinDelay objective (ns); zero under MinArea.
	Arrival float64
	// Pos is the selected match's center of mass.
	Pos geom.Point
}

// Result is the cover of the whole forest.
type Result struct {
	// Best holds the DP solution for every tree vertex, indexed by gate
	// ID (nil for PIs, constants, and dead gates); reconstruction reads
	// non-root entries when logic duplication is needed.
	Best []*Solution
	// Pos is the updated companion placement: covered gates moved to
	// their selected match's center of mass.
	Pos []geom.Point
	// RootArea sums Eq. 1 over tree roots: the cell area of the cover
	// before duplication.
	RootArea float64
	// RootWire sums Eq. 4 over tree roots.
	RootWire float64
}

// Cover runs the DP over every tree of the forest. pos gives the
// initial placement of all subject gates and is not modified; the
// updated positions are in Result.Pos. Trees fan out across
// opts.Workers goroutines — they share only read-only state, each tree
// writes its own disjoint Best/Pos entries, and the root reduction
// runs in ascending root order, so the result is deterministic and
// identical to the serial pass. Each tree is a cooperative
// cancellation point: a canceled ctx stops the DP promptly with a
// wrapped ctx error.
func Cover(ctx context.Context, dag *subject.DAG, forest *partition.Forest, lib *library.Library, pos []geom.Point, opts Options) (*Result, error) {
	prefix, err := BuildPrefix(ctx, dag, forest, lib, pos, opts.Metric, opts.Workers)
	if err != nil {
		return nil, err
	}
	return CoverWithPrefix(ctx, dag, forest, prefix, opts)
}

// CoverWithPrefix runs the K-dependent covering DP against a prefix
// built by BuildPrefix for the same (dag, forest). The prefix is read
// only, so one prefix can serve any number of concurrent
// CoverWithPrefix calls at different K values. opts.Metric and
// opts.WireUnit must match the geometry the prefix was built with
// (only the K-weighting of cached distances differs between calls).
// Trees fan out across opts.Workers goroutines — they share only
// read-only state, each tree writes its own disjoint Best/Pos entries,
// and the root reduction runs in ascending root order, so the result
// is deterministic and identical to the serial pass. Each tree is a
// cooperative cancellation point: a canceled ctx stops the DP promptly
// with a wrapped ctx error.
func CoverWithPrefix(ctx context.Context, dag *subject.DAG, forest *partition.Forest, prefix *Prefix, opts Options) (*Result, error) {
	if prefix == nil || prefix.dag != dag {
		return nil, fmt.Errorf("cover: prefix built for a different DAG")
	}
	if opts.WireUnit == 0 {
		opts.WireUnit = 0.5
	}
	res := &Result{
		Best: make([]*Solution, dag.NumGates()),
		// The prefix's frozen pre-cover snapshot seeds the companion
		// placement; res.Pos receives the committed center-of-mass
		// updates.
		Pos: append([]geom.Point(nil), prefix.pos...),
	}
	rec := obs.From(ctx)
	rec.Add("cover.trees", int64(len(prefix.trees)))
	ins := instruments{
		solutions: rec.Counter("cover.solutions"),
		matches:   rec.Counter("cover.matches"),
		perGate:   rec.Histogram("cover.matches_per_gate", matchesPerGateBounds),
	}
	err := par.ForEach(ctx, opts.Workers, len(prefix.trees), func(ti int) error {
		return coverTree(dag, forest, prefix, &prefix.trees[ti], res, opts, ins)
	})
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("cover: canceled with %d trees pending: %w", len(prefix.trees), cerr)
		}
		return nil, err
	}
	for _, root := range forest.Roots {
		sol := res.Best[root]
		res.RootArea += sol.AreaCost
		res.RootWire += sol.Wire
	}
	return res, nil
}

// coverTree runs the bottom-up DP on one tree over the prefix's cached
// matches and commits the chosen cover's placement updates. Every
// K-invariant term (match sets, centers of mass, leaf classification,
// cross-leaf distances) comes from the prefix; only Eq. 5's K-weighted
// combination and the child-solution terms are evaluated here. The
// only writes are to this tree's own res.Best and res.Pos entries,
// which no other tree touches.
func coverTree(dag *subject.DAG, forest *partition.Forest, prefix *Prefix, t *partition.Tree, res *Result, opts Options, ins instruments) error {
	inTree := prefix.inTreeFunc(t.Root)
	field := opts.KField
	for _, v := range t.Gates {
		matches := prefix.matches[v]
		if len(matches) == 0 {
			return fmt.Errorf("cover: no match at gate %d (%s)", v, dag.Gate(v).Type)
		}
		ins.solutions.Add(1)
		ins.matches.Add(int64(len(matches)))
		ins.perGate.Observe(float64(len(matches)))
		var best *Solution
		bestCost := math.Inf(1)
		bestTie := math.Inf(1)
		for i := range matches {
			pm := &matches[i]
			area := pm.m.Cell.Area
			wire1 := 0.0
			wire2 := 0.0
			// wire1W/wire2W are the K-field-weighted analogues: each
			// span's length scaled by the field multiplier sampled along
			// it. Accumulated in the same order as the unweighted terms,
			// so a uniform field (×1.0 is exact in IEEE 754) reproduces
			// wire1/wire2 bit-for-bit. Untouched when field is nil.
			wire1W := 0.0
			wire2W := 0.0
			arrival := 0.0
			for li, l := range pm.m.Leaves {
				if pm.subLeaf[li] {
					// The leaf heads an input subtree of this match:
					// accumulate its DP solution (Eqs. 1 and 3).
					sub := res.Best[l]
					area += sub.AreaCost
					wire2 += sub.WireCost
					wire1 += opts.Metric.Distance(pm.com, sub.Pos) / opts.WireUnit
					if sub.Arrival > arrival {
						arrival = sub.Arrival
					}
					if field != nil {
						wire2W += sub.WireCostW
						wire1W += field.SpanMult(pm.com, sub.Pos) * (opts.Metric.Distance(pm.com, sub.Pos) / opts.WireUnit)
					}
				} else {
					// Cross reference (PI, another tree, or a side
					// branch): its area and wire are paid elsewhere.
					// The cached distance reads the frozen snapshot,
					// keeping this tree independent of every other
					// tree's committed updates.
					wire1 += pm.crossDist[li] / opts.WireUnit
					if field != nil {
						wire1W += field.SpanMult(pm.com, prefix.pos[l]) * (pm.crossDist[li] / opts.WireUnit)
					}
				}
			}
			wire := wire1
			if !opts.NoWire2 {
				wire += wire2
			}
			// kw is the wire term K multiplies: the classic unweighted
			// accumulation, or the field-weighted one (Eq. 5').
			kw := wire
			if field != nil {
				kw = wire1W
				if !opts.NoWire2 {
					kw += wire2W
				}
			}
			var cost, tie float64
			if opts.Objective == MinDelay {
				// Load-aware stage delay with a nominal fanout-of-one
				// load; cross-tree arrival is handled by the final STA,
				// so the DP ranks matches by their in-tree depth cost.
				arrival += pm.m.Cell.Intrinsic + pm.m.Cell.Drive*pm.m.Cell.InputCap
				cost = arrival + opts.K*kw
				tie = area
			} else {
				cost = area + opts.K*kw
				tie = 0
			}
			if cost < bestCost || (cost == bestCost && tie < bestTie) {
				stored := wire1
				storedW := wire1W
				if opts.TransitiveWire {
					stored = wire // accumulates transitively via children
					storedW = kw
				}
				if field == nil {
					// Keep the "WireCostW mirrors WireCost when
					// unweighted" invariant so a later field-delta cover
					// can chain off a classic baseline.
					storedW = stored
				}
				best = &Solution{
					Match:     pm.m,
					AreaCost:  area,
					WireCost:  stored,
					WireCostW: storedW,
					Wire:      wire,
					Arrival:   arrival,
					Pos:       pm.com,
				}
				bestCost = cost
				bestTie = tie
			}
		}
		res.Best[v] = best
	}
	// Commit: walk the chosen cover from the root and replace covered
	// gates' positions with their match's center of mass. Explicit
	// stack — tree depth is unbounded on full-size circuits.
	stack := []int{t.Root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		sol := res.Best[v]
		for _, c := range sol.Match.Covered {
			res.Pos[c] = sol.Pos
		}
		stack = append(stack, SelectedLeafSubtrees(forest, inTree, sol)...)
	}
	return nil
}

// SelectedLeafSubtrees returns, for a solution in the forest, which of
// its match leaves head in-tree input subtrees (and therefore have
// their own committed solutions). Reconstruction uses this to walk the
// chosen cover.
func SelectedLeafSubtrees(forest *partition.Forest, inTree func(int) bool, sol *Solution) []int {
	covered := map[int]bool{}
	for _, c := range sol.Match.Covered {
		covered[c] = true
	}
	var out []int
	for _, l := range sol.Match.Leaves {
		if inTree(l) && covered[forest.Father[l]] {
			out = append(out, l)
		}
	}
	return out
}

// Package cover implements dynamic-programming tree covering with the
// paper's congestion-aware cost function (Section 3.2, Eqs. 1–5):
//
//	AREA(m,v)  = area(m) + Σ areaCost(v_i)                      (1)
//	WIRE1(m,v) = Σ dist(pos(m,v), pos(match(v_i), v_i))         (2)
//	WIRE2(m,v) = Σ wireCost(v_i)                                (3)
//	WIRE(m,v)  = WIRE1(m,v) + WIRE2(m,v)                        (4)
//	COST(m,v)  = AREA(m,v) + K · WIRE(m,v)                      (5)
//
// pos(m,v) is the center of mass, on the chip layout image, of the
// base gates covered by match m; when a match is selected the covered
// gates' positions are replaced by that center of mass, which is how
// the companion placement is incrementally updated. wireCost(v) is the
// WIRE1 of the match selected at v — the wire contribution between
// that match and its fanins — so WIRE totals the match's own fanin
// wires plus those of its immediate children, exactly the two-level
// scope the paper argues for (against the transitive-fanin cost of
// Pedram–Bhat [9], available here as an ablation option).
//
// K = 0 reduces COST to the classic minimum-area objective of DAGON.
package cover

import (
	"context"
	"fmt"
	"math"

	"casyn/internal/geom"
	"casyn/internal/library"
	"casyn/internal/match"
	"casyn/internal/partition"
	"casyn/internal/subject"
)

// Objective selects the covering optimization target.
type Objective int

const (
	// MinArea is the paper's objective: COST = AREA + K·WIRE.
	MinArea Objective = iota
	// MinDelay is the Rudell/Touati extension the paper cites in
	// Section 3.2: the DP minimizes the load-aware arrival time at
	// each vertex (plus K·WIRE), breaking ties toward smaller area.
	MinDelay
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	if o == MinDelay {
		return "min-delay"
	}
	return "min-area"
}

// Options tunes the coverer.
type Options struct {
	// K is the congestion minimization factor of Eq. 5.
	K float64
	// Objective selects area- or delay-oriented covering.
	Objective Objective
	// Metric is the layout distance function (default Manhattan).
	Metric geom.Metric
	// WireUnit is the length unit, in µm, that WIRE is expressed in
	// (default 0.5, one routing half-pitch). It calibrates the K scale
	// so the paper's K ladder lands on the same regions.
	WireUnit float64
	// TransitiveWire switches WIRE2 to the full transitive
	// accumulation (the Pedram–Bhat-style cost the paper criticizes);
	// used by the ablation benchmarks.
	TransitiveWire bool
	// NoWire2 drops WIRE2 entirely (WIRE = WIRE1), the other ablation.
	NoWire2 bool
}

// Solution is the optimal cover decision at one tree vertex.
type Solution struct {
	Match match.Match
	// AreaCost is Eq. 1 evaluated for the selected match.
	AreaCost float64
	// WireCost is the stored wireCost(v): WIRE1 of the selected match
	// (or the transitive accumulation under Options.TransitiveWire).
	WireCost float64
	// Wire is Eq. 4 for the selected match (reporting only).
	Wire float64
	// Arrival is the estimated arrival time at the vertex under the
	// MinDelay objective (ns); zero under MinArea.
	Arrival float64
	// Pos is the selected match's center of mass.
	Pos geom.Point
}

// Result is the cover of the whole forest.
type Result struct {
	// Best holds the DP solution for every tree vertex; reconstruction
	// reads non-root entries when logic duplication is needed.
	Best map[int]*Solution
	// Pos is the updated companion placement: covered gates moved to
	// their selected match's center of mass.
	Pos []geom.Point
	// RootArea sums Eq. 1 over tree roots: the cell area of the cover
	// before duplication.
	RootArea float64
	// RootWire sums Eq. 4 over tree roots.
	RootWire float64
}

// Cover runs the DP over every tree of the forest. pos gives the
// initial placement of all subject gates and is not modified; the
// updated positions are in Result.Pos. Each tree boundary is a
// cooperative cancellation point: a canceled ctx stops the DP promptly
// with a wrapped ctx error.
func Cover(ctx context.Context, dag *subject.DAG, forest *partition.Forest, lib *library.Library, pos []geom.Point, opts Options) (*Result, error) {
	if len(pos) < dag.NumGates() {
		return nil, fmt.Errorf("cover: %d positions for %d gates", len(pos), dag.NumGates())
	}
	if opts.WireUnit == 0 {
		opts.WireUnit = 0.5
	}
	res := &Result{
		Best: make(map[int]*Solution),
		Pos:  append([]geom.Point(nil), pos...),
	}
	trees := forest.Trees(dag)
	for ti := range trees {
		if ti%64 == 0 {
			if cerr := ctx.Err(); cerr != nil {
				return nil, fmt.Errorf("cover: canceled after %d/%d trees: %w", ti, len(trees), cerr)
			}
		}
		t := &trees[ti]
		if err := coverTree(dag, forest, lib, t, res, opts); err != nil {
			return nil, err
		}
	}
	for _, root := range forest.Roots {
		sol := res.Best[root]
		res.RootArea += sol.AreaCost
		res.RootWire += sol.Wire
	}
	return res, nil
}

// coverTree runs the bottom-up DP on one tree and commits the chosen
// cover's placement updates.
func coverTree(dag *subject.DAG, forest *partition.Forest, lib *library.Library, t *partition.Tree, res *Result, opts Options) error {
	inTree := t.InTree()
	m := match.NewMatcher(dag, lib, forest.Father, inTree)
	covered := map[int]bool{} // scratch per match
	for _, v := range t.Gates {
		matches := m.MatchesAt(v)
		if len(matches) == 0 {
			return fmt.Errorf("cover: no match at gate %d (%s)", v, dag.Gate(v).Type)
		}
		var best *Solution
		bestCost := math.Inf(1)
		bestTie := math.Inf(1)
		for i := range matches {
			mt := &matches[i]
			for k := range covered {
				delete(covered, k)
			}
			for _, c := range mt.Covered {
				covered[c] = true
			}
			// Center of mass of the covered base gates, from the
			// current (incrementally updated) companion placement.
			var com geom.Point
			for _, c := range mt.Covered {
				com = com.Add(res.Pos[c])
			}
			com = com.Scale(1 / float64(len(mt.Covered)))

			area := mt.Cell.Area
			wire1 := 0.0
			wire2 := 0.0
			arrival := 0.0
			for _, l := range mt.Leaves {
				if inTree(l) && covered[forest.Father[l]] {
					// The leaf heads an input subtree of this match:
					// accumulate its DP solution (Eqs. 1 and 3).
					sub := res.Best[l]
					area += sub.AreaCost
					wire2 += sub.WireCost
					wire1 += opts.Metric.Distance(com, sub.Pos) / opts.WireUnit
					if sub.Arrival > arrival {
						arrival = sub.Arrival
					}
				} else {
					// Cross reference (PI, another tree, or a side
					// branch): its area and wire are paid elsewhere.
					wire1 += opts.Metric.Distance(com, res.Pos[l]) / opts.WireUnit
				}
			}
			wire := wire1
			if !opts.NoWire2 {
				wire += wire2
			}
			var cost, tie float64
			if opts.Objective == MinDelay {
				// Load-aware stage delay with a nominal fanout-of-one
				// load; cross-tree arrival is handled by the final STA,
				// so the DP ranks matches by their in-tree depth cost.
				arrival += mt.Cell.Intrinsic + mt.Cell.Drive*mt.Cell.InputCap
				cost = arrival + opts.K*wire
				tie = area
			} else {
				cost = area + opts.K*wire
				tie = 0
			}
			if cost < bestCost || (cost == bestCost && tie < bestTie) {
				stored := wire1
				if opts.TransitiveWire {
					stored = wire // accumulates transitively via children
				}
				best = &Solution{
					Match:    *mt,
					AreaCost: area,
					WireCost: stored,
					Wire:     wire,
					Arrival:  arrival,
					Pos:      com,
				}
				bestCost = cost
				bestTie = tie
			}
		}
		res.Best[v] = best
	}
	// Commit: walk the chosen cover from the root and replace covered
	// gates' positions with their match's center of mass.
	var commit func(v int)
	commit = func(v int) {
		sol := res.Best[v]
		for _, c := range sol.Match.Covered {
			res.Pos[c] = sol.Pos
		}
		// Collect the input subtrees before recursing: the recursion
		// must not interleave with the membership tests.
		for _, l := range SelectedLeafSubtrees(forest, inTree, sol) {
			commit(l)
		}
	}
	commit(t.Root)
	return nil
}

// SelectedLeafSubtrees returns, for a solution in the forest, which of
// its match leaves head in-tree input subtrees (and therefore have
// their own committed solutions). Reconstruction uses this to walk the
// chosen cover.
func SelectedLeafSubtrees(forest *partition.Forest, inTree func(int) bool, sol *Solution) []int {
	covered := map[int]bool{}
	for _, c := range sol.Match.Covered {
		covered[c] = true
	}
	var out []int
	for _, l := range sol.Match.Leaves {
		if inTree(l) && covered[forest.Father[l]] {
			out = append(out, l)
		}
	}
	return out
}

package cover

// This file implements the incremental (ECO) side of the shared
// covering prefix: rebuilding a Prefix after a local edit by
// recomputing only the dirtied partition trees' match enumerations
// (copy-on-write of everything else), and re-running the covering DP
// on just those trees against a previous same-K cover.
//
// A new tree may reuse a previous tree's cached enumeration exactly
// when nothing the matcher or the cached geometry reads has changed.
// The matcher reads only the tree members' gate records (type and
// fanins), the father pointers of members, and tree membership; match
// leaves bind any gate without inspecting it. The cached geometry
// reads the positions of members (centers of mass) and of leaves
// (cross-reference distances), and the father pointers of in-tree
// leaves (which are members). Hence a tree rooted at r is clean iff:
//
//  1. its member set is identical to the old tree at r (every member's
//     old root is r, and the old tree had the same size);
//  2. no member was structurally edited, and every member's father
//     pointer is unchanged;
//  3. no member moved, and no fanin of any member moved (fanins are a
//     superset of the match leaves).
//
// Everything else — including every gate the edit touched, every gate
// whose father flipped because a nearest-consumer distance changed,
// and every tree whose membership shifted — is dirty and re-enumerated
// from scratch on the edited DAG.

import (
	"context"
	"fmt"

	"casyn/internal/geom"
	"casyn/internal/library"
	"casyn/internal/obs"
	"casyn/internal/par"
	"casyn/internal/partition"
	"casyn/internal/subject"
)

// Rebuild is the outcome of RebuildPrefix: the new prefix plus the
// per-tree reuse classification CoverDelta consumes.
type Rebuild struct {
	Prefix *Prefix
	// Reused[ti] reports whether tree ti of Prefix shares its cached
	// enumeration with the previous prefix (clean) or was re-enumerated
	// (dirty). Indexed like Prefix trees.
	Reused []bool
	// DirtyRoots lists the roots of re-enumerated trees in ascending
	// gate-ID order — the mapper's dirty region for downstream
	// incremental routing.
	DirtyRoots []int
}

// ReusedTrees counts clean trees.
func (r *Rebuild) ReusedTrees() int {
	n := 0
	for _, ok := range r.Reused {
		if ok {
			n++
		}
	}
	return n
}

// RebuildPrefix builds a Prefix for the edited (dag, forest, pos) by
// copy-on-write against prev: clean trees share prev's per-gate match
// slices (never reallocated, pointer-identical), dirty trees are
// re-enumerated on the edited DAG. editedGates lists the gate IDs
// whose type or fanins changed; position changes are detected by
// comparing pos against prev's frozen snapshot. prevForest must be the
// forest prev was built with (the father pointers feed the clean-tree
// test). The edited DAG must have the same vertex count as prev's —
// ECO edits rewrite gates in place, never add or remove them.
//
// prev is read-only throughout: a shared Prepared can keep serving
// concurrent covers while its successor is rebuilt.
func RebuildPrefix(ctx context.Context, dag *subject.DAG, forest *partition.Forest, lib *library.Library, pos []geom.Point, metric geom.Metric, workers int, prevForest *partition.Forest, prev *Prefix, editedGates []int) (*Rebuild, error) {
	if prev == nil || prevForest == nil {
		return nil, fmt.Errorf("cover: RebuildPrefix needs a previous prefix and forest")
	}
	if dag.NumGates() != prev.dag.NumGates() {
		return nil, fmt.Errorf("cover: edited DAG has %d gates, previous prefix was built for %d",
			dag.NumGates(), prev.dag.NumGates())
	}
	if len(pos) < dag.NumGates() {
		return nil, fmt.Errorf("cover: %d positions for %d gates", len(pos), dag.NumGates())
	}
	n := dag.NumGates()
	structEdited := make([]bool, n)
	for _, g := range editedGates {
		if g < 0 || g >= n {
			return nil, fmt.Errorf("cover: edited gate %d out of range [0,%d)", g, n)
		}
		structEdited[g] = true
	}
	posChanged := make([]bool, n)
	for i := 0; i < n; i++ {
		if pos[i] != prev.pos[i] {
			posChanged[i] = true
		}
	}
	// Old tree sizes by root: membership equality is "every member's
	// old root is r" plus a size match.
	oldSize := make(map[int]int, len(prev.trees))
	for ti := range prev.trees {
		oldSize[prev.trees[ti].Root] = len(prev.trees[ti].Gates)
	}

	p := &Prefix{
		dag:     dag,
		trees:   forest.Trees(dag),
		rootOf:  forest.RootOf(dag),
		pos:     append([]geom.Point(nil), pos...),
		matches: make([][]preparedMatch, n),
	}
	rb := &Rebuild{Prefix: p, Reused: make([]bool, len(p.trees))}
	var dirty []int
	for ti := range p.trees {
		t := &p.trees[ti]
		clean := oldSize[t.Root] == len(t.Gates)
		for _, v := range t.Gates {
			if !clean {
				break
			}
			if prev.rootOf[v] != t.Root || structEdited[v] ||
				forest.Father[v] != prevForest.Father[v] || posChanged[v] {
				clean = false
				break
			}
			for _, l := range dag.Fanins(v) {
				if posChanged[l] {
					clean = false
					break
				}
			}
		}
		if clean {
			// Copy-on-write: share the previous enumeration. The outer
			// slice is fresh per prefix; the per-gate match slices are
			// the immutable payload and are never reallocated.
			for _, v := range t.Gates {
				p.matches[v] = prev.matches[v]
			}
			rb.Reused[ti] = true
			continue
		}
		dirty = append(dirty, ti)
		rb.DirtyRoots = append(rb.DirtyRoots, t.Root)
	}
	dag.PrecomputeFanouts() // no lazy rebuild race under the fan-out
	err := par.ForEach(ctx, workers, len(dirty), func(di int) error {
		p.enumerateTree(dag, forest, lib, metric, dirty[di])
		return nil
	})
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("cover: canceled re-enumerating %d dirty trees: %w", len(dirty), cerr)
		}
		return nil, err
	}
	return rb, nil
}

// SharesMatches reports whether prefixes a and b hold the identical
// cached match slice for gate g (pointer identity, not value
// equality). Test hook for the copy-on-write contract: clean trees
// must share, dirty trees must not.
func SharesMatches(a, b *Prefix, g int) bool {
	if g < 0 || g >= len(a.matches) || g >= len(b.matches) {
		return false
	}
	ma, mb := a.matches[g], b.matches[g]
	if len(ma) != len(mb) || len(ma) == 0 {
		return len(ma) == len(mb) && ma == nil && mb == nil
	}
	return &ma[0] == &mb[0]
}

// CoverDelta re-runs the covering DP on only the dirty trees of a
// rebuilt prefix, copying the clean trees' solutions and committed
// positions from a previous same-K cover. prev must be the Result of
// CoverWithPrefix (or a previous CoverDelta) over the prefix that
// rebuild was diffed against, at the same opts — the caller owns that
// lineage (mapper.CoverState threads it). The result is byte-identical
// to CoverWithPrefix over the full rebuilt prefix: clean trees' DPs
// read only their own shared enumeration and the frozen snapshot, so
// recomputing them would reproduce prev's solutions exactly.
func CoverDelta(ctx context.Context, dag *subject.DAG, forest *partition.Forest, rebuild *Rebuild, prev *Result, opts Options) (*Result, error) {
	prefix := rebuild.Prefix
	if prefix == nil || prefix.dag != dag {
		return nil, fmt.Errorf("cover: rebuilt prefix is for a different DAG")
	}
	if prev == nil || len(prev.Best) != dag.NumGates() {
		return nil, fmt.Errorf("cover: previous cover does not match the DAG")
	}
	if opts.WireUnit == 0 {
		opts.WireUnit = 0.5
	}
	res := &Result{
		Best: make([]*Solution, dag.NumGates()),
		Pos:  append([]geom.Point(nil), prefix.pos...),
	}
	rec := obs.From(ctx)
	rec.Add("cover.trees", int64(len(prefix.trees)))
	rec.Add("cover.delta_reused_trees", int64(rebuild.ReusedTrees()))
	ins := instruments{
		solutions: rec.Counter("cover.solutions"),
		matches:   rec.Counter("cover.matches"),
		perGate:   rec.Histogram("cover.matches_per_gate", matchesPerGateBounds),
	}
	err := par.ForEach(ctx, opts.Workers, len(prefix.trees), func(ti int) error {
		t := &prefix.trees[ti]
		if rebuild.Reused[ti] {
			// Clean tree: solutions are immutable after covering, so the
			// pointers themselves carry over; the committed positions of
			// every member (covered gates moved to their match's center
			// of mass, the rest on the frozen snapshot) carry over too,
			// since neither the members nor their matches moved.
			for _, v := range t.Gates {
				res.Best[v] = prev.Best[v]
				res.Pos[v] = prev.Pos[v]
			}
			return nil
		}
		return coverTree(dag, forest, prefix, t, res, opts, ins)
	})
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("cover: canceled with %d trees pending: %w", len(prefix.trees), cerr)
		}
		return nil, err
	}
	for _, root := range forest.Roots {
		sol := res.Best[root]
		res.RootArea += sol.AreaCost
		res.RootWire += sol.Wire
	}
	return res, nil
}

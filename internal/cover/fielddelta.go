package cover

// This file implements the incremental side of K-field covering: when
// the adaptive controller inflates a few gcells of the field, only the
// trees whose DP can observe those cells need re-covering. The
// observable region of a tree — its territory — is the bounding box of
// every layout position its cost function reads:
//
//   - members' frozen positions (centers of mass are averages of
//     covered members' positions, so they lie inside the members' hull;
//     committed solution positions are such centers of mass);
//   - members' fanins' positions (every match leaf is an input of some
//     covered member, so the fanins are a superset of the cross- and
//     subtree-leaf endpoints).
//
// Every span the field samples (endpoints and midpoint, see
// KField.SpanMult) connects two points of this set, and a bounding box
// is convex, so all samples land inside the territory. Hence a field
// change strictly outside a tree's territory cannot alter any cost the
// tree's DP computes, and the tree's previous solutions carry over
// verbatim — the same copy-on-write argument CoverDelta makes for
// structural edits, applied to the field dimension.

import (
	"context"
	"fmt"

	"casyn/internal/geom"
	"casyn/internal/obs"
	"casyn/internal/par"
	"casyn/internal/partition"
	"casyn/internal/subject"
)

// TreeTerritory returns the bounding box of every layout position tree
// ti's covering DP reads: the members' frozen positions plus the
// positions of every member's fanins. A K-field whose multipliers are
// unchanged over this box leaves the tree's DP bit-identical (see the
// file comment for the argument).
func (p *Prefix) TreeTerritory(ti int) geom.Rect {
	t := &p.trees[ti]
	first := true
	var r geom.Rect
	grow := func(pt geom.Point) {
		if first {
			r = geom.Rect{Min: pt, Max: pt}
			first = false
			return
		}
		if pt.X < r.Min.X {
			r.Min.X = pt.X
		}
		if pt.Y < r.Min.Y {
			r.Min.Y = pt.Y
		}
		if pt.X > r.Max.X {
			r.Max.X = pt.X
		}
		if pt.Y > r.Max.Y {
			r.Max.Y = pt.Y
		}
	}
	for _, v := range t.Gates {
		grow(p.pos[v])
		for _, l := range p.dag.Fanins(v) {
			grow(p.pos[l])
		}
	}
	return r
}

// TreeTerritories returns every tree's territory, indexed like the
// prefix's trees. The adaptive controller computes these once per
// Prepared and intersects them with each iteration's changed gcells.
func (p *Prefix) TreeTerritories() []geom.Rect {
	out := make([]geom.Rect, len(p.trees))
	for ti := range p.trees {
		out[ti] = p.TreeTerritory(ti)
	}
	return out
}

// DirtyTreesForField classifies trees against a field update: tree ti
// is dirty iff its territory intersects at least one gcell whose
// multiplier changed. terr must be the prefix's TreeTerritories;
// changed is row-major like f.Mult. Positions outside the die clamp to
// border cells (KField.CellOf), so territories partially off-grid are
// classified against the clamped border cells — the same cells their
// spans actually sample.
func DirtyTreesForField(terr []geom.Rect, f *KField, changed []bool) []bool {
	dirty := make([]bool, len(terr))
	for ti, r := range terr {
		x0, y0 := f.CellOf(r.Min)
		x1, y1 := f.CellOf(r.Max)
	scan:
		for y := y0; y <= y1; y++ {
			row := y * f.NX
			for x := x0; x <= x1; x++ {
				if changed[row+x] {
					dirty[ti] = true
					break scan
				}
			}
		}
	}
	return dirty
}

// CoverFieldDelta re-runs the covering DP on only the dirty trees of a
// prefix after a K-field update, copying the clean trees' solutions
// and committed positions from a previous cover over the same prefix.
// prev must be the Result of CoverWithPrefix (or a previous
// CoverFieldDelta) over this exact prefix at the same opts except for
// the field, and dirty must mark (at least) every tree whose territory
// intersects a gcell where prev's field and opts.KField differ — the
// caller owns that lineage (mapper.CoverState threads it; a nil
// previous field counts as uniform, since the classic cover stores
// WireCostW = WireCost). The result is then byte-identical to
// CoverWithPrefix over the full prefix at opts: clean trees' DPs read
// only their own enumeration, the frozen snapshot, and field samples
// inside their territory, so recomputing them would reproduce prev's
// solutions exactly.
func CoverFieldDelta(ctx context.Context, dag *subject.DAG, forest *partition.Forest, prefix *Prefix, prev *Result, opts Options, dirty []bool) (*Result, error) {
	if prefix == nil || prefix.dag != dag {
		return nil, fmt.Errorf("cover: prefix built for a different DAG")
	}
	if prev == nil || len(prev.Best) != dag.NumGates() {
		return nil, fmt.Errorf("cover: previous cover does not match the DAG")
	}
	if len(dirty) != len(prefix.trees) {
		return nil, fmt.Errorf("cover: %d dirty flags for %d trees", len(dirty), len(prefix.trees))
	}
	if opts.KField == nil {
		return nil, fmt.Errorf("cover: CoverFieldDelta needs a K-field (use CoverWithPrefix)")
	}
	if opts.WireUnit == 0 {
		opts.WireUnit = 0.5
	}
	res := &Result{
		Best: make([]*Solution, dag.NumGates()),
		Pos:  append([]geom.Point(nil), prefix.pos...),
	}
	reused := 0
	for _, d := range dirty {
		if !d {
			reused++
		}
	}
	rec := obs.From(ctx)
	rec.Add("cover.trees", int64(len(prefix.trees)))
	rec.Add("cover.field_reused_trees", int64(reused))
	ins := instruments{
		solutions: rec.Counter("cover.solutions"),
		matches:   rec.Counter("cover.matches"),
		perGate:   rec.Histogram("cover.matches_per_gate", matchesPerGateBounds),
	}
	err := par.ForEach(ctx, opts.Workers, len(prefix.trees), func(ti int) error {
		t := &prefix.trees[ti]
		if !dirty[ti] {
			// Clean tree: solutions are immutable after covering and no
			// field sample the tree can observe changed, so the pointers
			// and committed positions carry over (see CoverDelta for the
			// structural analogue of this argument).
			for _, v := range t.Gates {
				res.Best[v] = prev.Best[v]
				res.Pos[v] = prev.Pos[v]
			}
			return nil
		}
		return coverTree(dag, forest, prefix, t, res, opts, ins)
	})
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("cover: canceled with %d trees pending: %w", len(prefix.trees), cerr)
		}
		return nil, err
	}
	for _, root := range forest.Roots {
		sol := res.Best[root]
		res.RootArea += sol.AreaCost
		res.RootWire += sol.Wire
	}
	return res, nil
}

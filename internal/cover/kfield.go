package cover

// K-field: the spatial generalization of Eq. 5's scalar congestion
// factor. The classic cost COST = AREA + K·WIRE weights every wire
// term identically; a KField instead assigns each gcell of the routing
// grid a multiplier, and every wire term of the DP is scaled by the
// maximum multiplier sampled along its span before the global K is
// applied:
//
//	COST(m,v) = AREA(m,v) + K · Σ mult(span_i) · wire_i        (5')
//
// The uniform field (every multiplier exactly 1.0) reduces to the
// classic path bit-for-bit: multiplying a float64 by 1.0 is exact in
// IEEE 754 and the weighted accumulation runs in the same order as the
// unweighted one, so every cost, tie-break, and committed solution is
// identical (the uniform-field property test in the differential
// harness proves this across the example corpus).
//
// The field's geometry deliberately mirrors route.Grid (origin, cell
// pitch, dimensions) without importing it — flow constructs the field
// from a routed grid's exported geometry, keeping cover free of a
// routing dependency.

import (
	"fmt"

	"casyn/internal/geom"
)

// KField is a per-gcell multiplier grid over the die. Multipliers are
// ≥ 1 in practice (the adaptive controller only inflates), but the
// type does not enforce that. The zero multiplier value is invalid;
// use NewKField, which initializes every cell to exactly 1.0.
type KField struct {
	// Origin is the die's minimum corner; CellW/CellH the gcell pitch.
	Origin       geom.Point
	CellW, CellH float64
	// NX, NY are the grid dimensions; Mult is row-major: Mult[y*NX+x].
	NX, NY int
	Mult   []float64
}

// NewKField returns a uniform field (every multiplier exactly 1.0)
// with the given geometry — typically copied from a routed
// route.Grid's exported Origin/CellW/CellH/NX/NY.
func NewKField(origin geom.Point, cellW, cellH float64, nx, ny int) (*KField, error) {
	if nx < 1 || ny < 1 || cellW <= 0 || cellH <= 0 {
		return nil, fmt.Errorf("cover: degenerate K-field %dx%d (cell %gx%g)", nx, ny, cellW, cellH)
	}
	f := &KField{Origin: origin, CellW: cellW, CellH: cellH, NX: nx, NY: ny,
		Mult: make([]float64, nx*ny)}
	for i := range f.Mult {
		f.Mult[i] = 1
	}
	return f, nil
}

// Clone returns a deep copy. The adaptive controller clones before
// each inflation step so every iteration's CoverState keeps the exact
// field snapshot it covered with.
func (f *KField) Clone() *KField {
	g := *f
	g.Mult = append([]float64(nil), f.Mult...)
	return &g
}

// CellOf returns the gcell containing p, clamped to the grid (points
// outside the die land on the border cells, matching Grid.GCellOf).
func (f *KField) CellOf(p geom.Point) (int, int) {
	x := int((p.X - f.Origin.X) / f.CellW)
	y := int((p.Y - f.Origin.Y) / f.CellH)
	if x < 0 {
		x = 0
	}
	if x >= f.NX {
		x = f.NX - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= f.NY {
		y = f.NY - 1
	}
	return x, y
}

// At returns the multiplier of gcell (x, y).
func (f *KField) At(x, y int) float64 { return f.Mult[y*f.NX+x] }

// MultAt returns the multiplier of the gcell containing p.
func (f *KField) MultAt(p geom.Point) float64 {
	x, y := f.CellOf(p)
	return f.Mult[y*f.NX+x]
}

// SpanMult returns the multiplier applied to a wire term spanning a–b:
// the maximum of the field sampled at both endpoints and the span's
// midpoint. Three samples keep the DP cost O(1) per term; the midpoint
// catches a hot window strictly between two cool endpoints. All three
// samples lie on the segment a–b, so they stay inside any convex
// region containing both endpoints — the tree-territory soundness
// argument in fielddelta.go depends on exactly this.
func (f *KField) SpanMult(a, b geom.Point) float64 {
	m := f.MultAt(a)
	if v := f.MultAt(b); v > m {
		m = v
	}
	mid := geom.Pt((a.X+b.X)/2, (a.Y+b.Y)/2)
	if v := f.MultAt(mid); v > m {
		m = v
	}
	return m
}

// Uniform reports whether every multiplier is exactly 1.0 — the field
// under which the weighted cover provably equals the classic one.
func (f *KField) Uniform() bool {
	for _, m := range f.Mult {
		if m != 1 {
			return false
		}
	}
	return true
}

// InflatedCells counts cells with multiplier > 1 (reporting).
func (f *KField) InflatedCells() int {
	n := 0
	for _, m := range f.Mult {
		if m > 1 {
			n++
		}
	}
	return n
}

// MaxMult returns the largest multiplier in the field (reporting).
func (f *KField) MaxMult() float64 {
	m := 1.0
	for _, v := range f.Mult {
		if v > m {
			m = v
		}
	}
	return m
}

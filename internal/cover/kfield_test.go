package cover

import (
	"context"
	"testing"

	"casyn/internal/bench"
	"casyn/internal/geom"
	"casyn/internal/library"
	"casyn/internal/partition"
	"casyn/internal/subject"
)

func TestKFieldGeometry(t *testing.T) {
	t.Parallel()
	f, err := NewKField(geom.Pt(10, 20), 5, 4, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Uniform() || f.InflatedCells() != 0 || f.MaxMult() != 1 {
		t.Fatal("fresh field must be uniform")
	}
	// Clamping: points outside the die land on border cells.
	for _, tc := range []struct {
		p    geom.Point
		x, y int
	}{
		{geom.Pt(10, 20), 0, 0},
		{geom.Pt(12, 27), 0, 1},
		{geom.Pt(-100, -100), 0, 0},
		{geom.Pt(1e6, 1e6), 3, 2},
		{geom.Pt(29.9, 31.9), 3, 2},
	} {
		if x, y := f.CellOf(tc.p); x != tc.x || y != tc.y {
			t.Errorf("CellOf(%v) = (%d,%d), want (%d,%d)", tc.p, x, y, tc.x, tc.y)
		}
	}
	// SpanMult takes the max over both endpoints and the midpoint.
	f.Mult[1*4+1] = 7 // cell (1,1): x in [15,20), y in [24,28)
	a, b := geom.Pt(11, 21), geom.Pt(27, 31)
	// Midpoint (19, 26) is inside the inflated cell; neither endpoint is.
	if got := f.SpanMult(a, b); got != 7 {
		t.Errorf("SpanMult via midpoint = %g, want 7", got)
	}
	if got := f.MultAt(a); got != 1 {
		t.Errorf("MultAt(a) = %g, want 1", got)
	}
	if f.Uniform() || f.InflatedCells() != 1 || f.MaxMult() != 7 {
		t.Error("inflation not reflected in Uniform/InflatedCells/MaxMult")
	}
	// Clone is deep.
	c := f.Clone()
	c.Mult[0] = 3
	if f.Mult[0] != 1 {
		t.Error("Clone shares Mult storage")
	}
	if _, err := NewKField(geom.Pt(0, 0), 0, 1, 4, 4); err == nil {
		t.Error("degenerate cell size must error")
	}
	if _, err := NewKField(geom.Pt(0, 0), 1, 1, 0, 4); err == nil {
		t.Error("degenerate dimensions must error")
	}
}

// benchPrefix builds a realistic prefix: a scaled benchmark circuit
// with deterministic pseudo-random positions over a die.
func benchPrefix(t *testing.T) (*subject.DAG, *partition.Forest, *Prefix, []geom.Point, geom.Rect) {
	t.Helper()
	p, err := bench.Generate(bench.SPLA.ScaledSpec(0.04))
	if err != nil {
		t.Fatal(err)
	}
	d, err := bench.BuildSubject(p, bench.Direct, 0)
	if err != nil {
		t.Fatal(err)
	}
	die := geom.R(0, 0, 200, 160)
	pos := make([]geom.Point, d.NumGates())
	rng := uint64(1)
	next := func() float64 {
		// xorshift64: deterministic positions, no test-order coupling.
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return float64(rng%10000) / 10000
	}
	for i := range pos {
		pos[i] = geom.Pt(die.Min.X+next()*die.W(), die.Min.Y+next()*die.H())
	}
	forest, err := partition.Partition(partition.Input{DAG: d, Pos: pos}, partition.Dagon)
	if err != nil {
		t.Fatal(err)
	}
	prefix, err := BuildPrefix(context.Background(), d, forest, library.Default(), pos, geom.ManhattanMetric, 1)
	if err != nil {
		t.Fatal(err)
	}
	return d, forest, prefix, pos, die
}

// sameCover asserts two covering results are bitwise identical:
// every solution's numeric fields, selected cells, committed
// positions, and root reductions.
func sameCover(t *testing.T, tag string, a, b *Result) {
	t.Helper()
	if len(a.Best) != len(b.Best) || len(a.Pos) != len(b.Pos) {
		t.Fatalf("%s: result shapes differ", tag)
	}
	for v := range a.Best {
		sa, sb := a.Best[v], b.Best[v]
		if (sa == nil) != (sb == nil) {
			t.Fatalf("%s: gate %d solution presence differs", tag, v)
		}
		if sa == nil {
			continue
		}
		if sa.Match.Cell != sb.Match.Cell {
			t.Fatalf("%s: gate %d selected %s vs %s", tag, v, sa.Match.Cell.Name, sb.Match.Cell.Name)
		}
		if sa.AreaCost != sb.AreaCost || sa.WireCost != sb.WireCost ||
			sa.WireCostW != sb.WireCostW || sa.Wire != sb.Wire ||
			sa.Arrival != sb.Arrival || sa.Pos != sb.Pos {
			t.Fatalf("%s: gate %d solutions diverge:\n%+v\n%+v", tag, v, sa, sb)
		}
	}
	for v := range a.Pos {
		if a.Pos[v] != b.Pos[v] {
			t.Fatalf("%s: committed position of gate %d differs", tag, v)
		}
	}
	if a.RootArea != b.RootArea || a.RootWire != b.RootWire {
		t.Fatalf("%s: root reductions differ: (%v,%v) vs (%v,%v)",
			tag, a.RootArea, a.RootWire, b.RootArea, b.RootWire)
	}
}

// TestUniformFieldBitIdentity is the covering half of the uniform-
// field reduction proof: for every K, CoverWithPrefix under a uniform
// K-field must equal the classic nil-field cover bit for bit —
// multiplying by exactly 1.0 is exact in IEEE 754 and the weighted
// accumulation runs in the classic order.
func TestUniformFieldBitIdentity(t *testing.T) {
	t.Parallel()
	d, forest, prefix, _, die := benchPrefix(t)
	field, err := NewKField(die.Min, die.W()/16, die.H()/16, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []float64{0, 0.5, 1, 2} {
		classic, err := CoverWithPrefix(context.Background(), d, forest, prefix, Options{K: k})
		if err != nil {
			t.Fatal(err)
		}
		uniform, err := CoverWithPrefix(context.Background(), d, forest, prefix, Options{K: k, KField: field})
		if err != nil {
			t.Fatal(err)
		}
		sameCover(t, "uniform", classic, uniform)
		// The classic cover must also carry the WireCostW invariant so
		// field deltas can chain off it.
		for v, sol := range classic.Best {
			if sol != nil && sol.WireCostW != sol.WireCost {
				t.Fatalf("classic cover gate %d: WireCostW %v != WireCost %v",
					v, sol.WireCostW, sol.WireCost)
			}
		}
	}
}

// TestNonUniformFieldChangesCover: inflating the field where the wire
// runs must be able to flip a selection toward less wire, exactly as a
// globally larger K would — the field is a lever, not a no-op.
func TestNonUniformFieldChangesCover(t *testing.T) {
	t.Parallel()
	d, forest, prefix, _, die := benchPrefix(t)
	const k = 0.001
	classic, err := CoverWithPrefix(context.Background(), d, forest, prefix, Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	// Inflate the entire die hard: every wire term now costs 1000× K,
	// the equivalent of the top of the paper ladder.
	field, err := NewKField(die.Min, die.W()/16, die.H()/16, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range field.Mult {
		field.Mult[i] = 1000
	}
	weighted, err := CoverWithPrefix(context.Background(), d, forest, prefix, Options{K: k, KField: field})
	if err != nil {
		t.Fatal(err)
	}
	if weighted.RootWire >= classic.RootWire {
		t.Errorf("inflated field did not reduce wire: %g vs classic %g",
			weighted.RootWire, classic.RootWire)
	}
	if weighted.RootArea <= classic.RootArea {
		t.Errorf("wire reduction came free: area %g vs classic %g (expected a trade)",
			weighted.RootArea, classic.RootArea)
	}
}

// TestTreeTerritoryContainsReads: every position a tree's DP can read
// (members, their fanins) lies inside its territory box.
func TestTreeTerritoryContainsReads(t *testing.T) {
	t.Parallel()
	d, _, prefix, pos, _ := benchPrefix(t)
	terr := prefix.TreeTerritories()
	if len(terr) != prefix.NumTrees() {
		t.Fatalf("%d territories for %d trees", len(terr), prefix.NumTrees())
	}
	for ti := range prefix.trees {
		r := terr[ti]
		for _, v := range prefix.trees[ti].Gates {
			if !r.Contains(pos[v]) {
				t.Fatalf("tree %d: member %d at %v outside territory %v", ti, v, pos[v], r)
			}
			for _, l := range d.Fanins(v) {
				if !r.Contains(pos[l]) {
					t.Fatalf("tree %d: fanin %d at %v outside territory %v", ti, l, pos[l], r)
				}
			}
		}
	}
}

// TestCoverFieldDelta: re-covering only the territory-dirty trees
// after a field inflation must be byte-identical to a full cover under
// the new field — chained twice to cover the delta-off-delta path.
func TestCoverFieldDelta(t *testing.T) {
	t.Parallel()
	d, forest, prefix, _, die := benchPrefix(t)
	const k = 0.001
	opts := Options{K: k}
	base, err := CoverWithPrefix(context.Background(), d, forest, prefix, opts)
	if err != nil {
		t.Fatal(err)
	}
	terr := prefix.TreeTerritories()

	// Step 1: inflate a 2×2 window in the middle of the die.
	field, err := NewKField(die.Min, die.W()/16, die.H()/16, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	changed := make([]bool, len(field.Mult))
	for _, i := range []int{8*16 + 8, 8*16 + 9, 9*16 + 8, 9*16 + 9} {
		field.Mult[i] = 50
		changed[i] = true
	}
	dirty := cover1(t, terr, field, changed)
	fopts := opts
	fopts.KField = field
	full, err := CoverWithPrefix(context.Background(), d, forest, prefix, fopts)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := CoverFieldDelta(context.Background(), d, forest, prefix, base, fopts, dirty)
	if err != nil {
		t.Fatal(err)
	}
	sameCover(t, "delta-1", full, delta)

	// Step 2: inflate a second, disjoint window; delta chains off the
	// previous delta result.
	field2 := field.Clone()
	changed2 := make([]bool, len(field2.Mult))
	for _, i := range []int{2*16 + 2, 2*16 + 3} {
		field2.Mult[i] = 20
		changed2[i] = true
	}
	dirty2 := cover1(t, terr, field2, changed2)
	fopts2 := opts
	fopts2.KField = field2
	full2, err := CoverWithPrefix(context.Background(), d, forest, prefix, fopts2)
	if err != nil {
		t.Fatal(err)
	}
	delta2, err := CoverFieldDelta(context.Background(), d, forest, prefix, delta, fopts2, dirty2)
	if err != nil {
		t.Fatal(err)
	}
	sameCover(t, "delta-2", full2, delta2)
}

// cover1 wraps DirtyTreesForField, failing the test if the
// classification is degenerate in either direction (all clean would
// make the equivalence vacuous, all dirty would not exercise reuse).
func cover1(t *testing.T, terr []geom.Rect, f *KField, changed []bool) []bool {
	t.Helper()
	dirty := DirtyTreesForField(terr, f, changed)
	nd := 0
	for _, d := range dirty {
		if d {
			nd++
		}
	}
	if nd == 0 {
		t.Fatal("no dirty trees: inflation missed every territory")
	}
	if nd == len(dirty) {
		t.Log("warning: every tree dirty (no reuse exercised)")
	}
	return dirty
}

// TestCoverFieldDeltaValidation pins the error contract.
func TestCoverFieldDeltaValidation(t *testing.T) {
	t.Parallel()
	d, forest, prefix, _, die := benchPrefix(t)
	base, err := CoverWithPrefix(context.Background(), d, forest, prefix, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	field, err := NewKField(die.Min, die.W()/16, die.H()/16, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	dirty := make([]bool, prefix.NumTrees())
	if _, err := CoverFieldDelta(context.Background(), d, forest, prefix, base, Options{K: 1}, dirty); err == nil {
		t.Error("nil field must error")
	}
	if _, err := CoverFieldDelta(context.Background(), d, forest, prefix, base, Options{K: 1, KField: field}, dirty[:1]); err == nil {
		t.Error("dirty length mismatch must error")
	}
	if _, err := CoverFieldDelta(context.Background(), d, forest, prefix, nil, Options{K: 1, KField: field}, dirty); err == nil {
		t.Error("nil previous cover must error")
	}
}

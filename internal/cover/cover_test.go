package cover

import (
	"context"

	"math"
	"testing"

	"casyn/internal/geom"
	"casyn/internal/library"
	"casyn/internal/partition"
	"casyn/internal/subject"
)

// nand3Chain builds NAND3-shaped logic: root = NAND(a, INV(NAND(b,c))).
func nand3Chain() (*subject.DAG, int) {
	d := subject.New()
	a := d.AddPI("a")
	b := d.AddPI("b")
	c := d.AddPI("c")
	inner := d.AddNand2(b, c)
	mid := d.AddInv(inner)
	root := d.AddNand2(a, mid)
	d.AddOutput("o", root)
	return d, root
}

func coverIt(t *testing.T, d *subject.DAG, pos []geom.Point, opts Options) (*Result, *partition.Forest) {
	t.Helper()
	method := partition.Dagon
	in := partition.Input{DAG: d, Pos: pos}
	if pos == nil {
		in.Pos = make([]geom.Point, d.NumGates())
	}
	f, err := partition.Partition(in, method)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Cover(context.Background(), d, f, library.Default(), in.Pos, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, f
}

func TestMinAreaPicksNand3(t *testing.T) {
	t.Parallel()
	d, root := nand3Chain()
	res, _ := coverIt(t, d, nil, Options{K: 0})
	sol := res.Best[root]
	if sol.Match.Cell.Name != "NAND3" {
		t.Errorf("root match = %s, want NAND3", sol.Match.Cell.Name)
	}
	lib := library.Default()
	if math.Abs(sol.AreaCost-lib.Cell("NAND3").Area) > 1e-9 {
		t.Errorf("area cost = %g, want %g", sol.AreaCost, lib.Cell("NAND3").Area)
	}
	if math.Abs(res.RootArea-lib.Cell("NAND3").Area) > 1e-9 {
		t.Errorf("RootArea = %g", res.RootArea)
	}
}

// TestMinAreaOptimality exhaustively checks DP optimality on a small
// tree against brute-force enumeration of covers.
func TestMinAreaOptimality(t *testing.T) {
	t.Parallel()
	// Tree: root = NAND(INV(NAND(a,b)), INV(NAND(c,e))) — the NAND4
	// shape; the DP must find NAND4's area if it is the cheapest.
	d := subject.New()
	a := d.AddPI("a")
	b := d.AddPI("b")
	c := d.AddPI("c")
	e := d.AddPI("e")
	l := d.AddInv(d.AddNand2(a, b))
	r := d.AddInv(d.AddNand2(c, e))
	root := d.AddNand2(l, r)
	d.AddOutput("o", root)
	res, _ := coverIt(t, d, nil, Options{K: 0})
	lib := library.Default()
	// Candidate covers: NAND4 (21.632); AND2+AND2+NAND2 (13.312*2 +
	// 11.648 = 38.272); NAND2+4×(INV/NAND2)... NAND4 must win.
	if res.Best[root].Match.Cell.Name != "NAND4" {
		t.Errorf("root match = %s, want NAND4", res.Best[root].Match.Cell.Name)
	}
	if math.Abs(res.RootArea-lib.Cell("NAND4").Area) > 1e-9 {
		t.Errorf("RootArea = %g, want %g", res.RootArea, lib.Cell("NAND4").Area)
	}
}

func TestCoverAlwaysFeasible(t *testing.T) {
	t.Parallel()
	// A shape no complex cell fully covers still maps via base cells.
	d := subject.New()
	a := d.AddPI("a")
	x := d.AddInv(a)
	b := d.AddPI("b")
	y := d.AddNand2(x, b)
	d.AddOutput("o", y)
	res, _ := coverIt(t, d, nil, Options{K: 0})
	if res.Best[y] == nil || res.Best[x] == nil {
		t.Fatal("missing solutions")
	}
}

// TestFigure1Tradeoff reproduces the paper's Figure 1 scenario: with
// fanins placed far from the min-area cell's location, a positive K
// must switch the cover to a higher-area, shorter-wire solution.
func TestFigure1Tradeoff(t *testing.T) {
	t.Parallel()
	d, root := nand3Chain()
	// Positions: put the NAND3's would-be location far from b,c.
	pos := make([]geom.Point, d.NumGates())
	aID := 0 // PIs were added first: a=0, b=1, c=2
	pos[aID] = geom.Pt(0, 0)
	pos[1] = geom.Pt(100, 0)
	pos[2] = geom.Pt(100, 10)
	pos[3] = geom.Pt(100, 5)   // inner NAND(b,c) sits near b,c
	pos[4] = geom.Pt(50, 5)    // mid INV in between
	pos[5] = geom.Pt(0, 5)     // root near a
	d.AddOutput("dummy", root) // keep root a root under Dagon
	resArea, _ := coverIt(t, d, pos, Options{K: 0})
	resCong, _ := coverIt(t, d, pos, Options{K: 10})
	areaA := resArea.RootArea
	areaC := resCong.RootArea
	wireA := resArea.RootWire
	wireC := resCong.RootWire
	if areaC < areaA {
		t.Errorf("congestion cover area %g < min area %g", areaC, areaA)
	}
	if wireC >= wireA {
		t.Errorf("congestion cover wire %g not below min-area wire %g", wireC, wireA)
	}
	if resArea.Best[root].Match.Cell.Name != "NAND3" {
		t.Errorf("K=0 root = %s, want NAND3", resArea.Best[root].Match.Cell.Name)
	}
	if resCong.Best[root].Match.Cell.Name == "NAND3" {
		t.Error("K=10 still picks NAND3 despite long wires")
	}
}

func TestKZeroMatchesDagonAreaInvariance(t *testing.T) {
	t.Parallel()
	// With K=0 the positions must not affect the chosen area.
	d, _ := nand3Chain()
	posA := make([]geom.Point, d.NumGates())
	posB := make([]geom.Point, d.NumGates())
	for i := range posB {
		posB[i] = geom.Pt(float64(i*37%11), float64(i*17%7))
	}
	r1, _ := coverIt(t, d, posA, Options{K: 0})
	r2, _ := coverIt(t, d, posB, Options{K: 0})
	if math.Abs(r1.RootArea-r2.RootArea) > 1e-9 {
		t.Errorf("K=0 area depends on placement: %g vs %g", r1.RootArea, r2.RootArea)
	}
}

func TestCenterOfMassAndIncrementalUpdate(t *testing.T) {
	t.Parallel()
	d, root := nand3Chain()
	pos := make([]geom.Point, d.NumGates())
	// Gates 3,4,5 are inner, mid, root.
	pos[3] = geom.Pt(0, 0)
	pos[4] = geom.Pt(3, 0)
	pos[5] = geom.Pt(6, 0)
	res, _ := coverIt(t, d, pos, Options{K: 0})
	sol := res.Best[root]
	if sol.Match.Cell.Name != "NAND3" {
		t.Skipf("library changed; root = %s", sol.Match.Cell.Name)
	}
	// CoM of gates {5,4,3} = (3,0).
	if sol.Pos != geom.Pt(3, 0) {
		t.Errorf("CoM = %v, want (3,0)", sol.Pos)
	}
	// Committed positions: covered gates moved to CoM.
	for _, g := range []int{3, 4, 5} {
		if res.Pos[g] != geom.Pt(3, 0) {
			t.Errorf("gate %d pos = %v, want CoM", g, res.Pos[g])
		}
	}
	// Input (original) positions slice untouched.
	if pos[3] != geom.Pt(0, 0) {
		t.Error("Cover mutated the caller's position slice")
	}
}

func TestWireCostTwoLevelScope(t *testing.T) {
	t.Parallel()
	// Chain of three INVs: x -> i1 -> i2 -> i3 (root). With default
	// options, WIRE at the root counts the root match's fanin wire
	// plus its child's WIRE1 — not the grandchild's.
	d := subject.New()
	x := d.AddPI("x")
	b := d.AddPI("b")
	n1 := d.AddNand2(x, b)
	n2 := d.AddNand2(n1, x) // forces n1 single-fanout chain? no: n1 feeds n2 only
	n3 := d.AddNand2(n2, b)
	d.AddOutput("o", n3)
	pos := make([]geom.Point, d.NumGates())
	pos[x] = geom.Pt(0, 0)
	pos[b] = geom.Pt(0, 10)
	pos[n1] = geom.Pt(10, 0)
	pos[n2] = geom.Pt(20, 0)
	pos[n3] = geom.Pt(30, 0)
	fullRes, _ := coverIt(t, d, pos, Options{K: 1e-6})
	noW2, _ := coverIt(t, d, pos, Options{K: 1e-6, NoWire2: true})
	trans, _ := coverIt(t, d, pos, Options{K: 1e-6, TransitiveWire: true})
	// Monotonicity of scope: WIRE1-only <= two-level <= transitive.
	if noW2.RootWire > fullRes.RootWire+1e-9 {
		t.Errorf("NoWire2 wire %g > default %g", noW2.RootWire, fullRes.RootWire)
	}
	if fullRes.RootWire > trans.RootWire+1e-9 {
		t.Errorf("two-level wire %g > transitive %g", fullRes.RootWire, trans.RootWire)
	}
}

func TestCoverErrorOnShortPositions(t *testing.T) {
	t.Parallel()
	d, _ := nand3Chain()
	f, err := partition.Partition(partition.Input{DAG: d}, partition.Dagon)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Cover(context.Background(), d, f, library.Default(), nil, Options{}); err == nil {
		t.Error("short position slice accepted")
	}
}

func TestSelectedLeafSubtrees(t *testing.T) {
	t.Parallel()
	d, root := nand3Chain()
	res, f := coverIt(t, d, nil, Options{K: 0})
	inTree := func(g int) bool { return f.Father[g] >= 0 || g == root }
	subs := SelectedLeafSubtrees(f, inTree, res.Best[root])
	// NAND3 covers the whole tree: all leaves are PIs → no subtrees.
	if len(subs) != 0 {
		t.Errorf("subtrees = %v, want none", subs)
	}
}

func TestMinDelayObjective(t *testing.T) {
	t.Parallel()
	// A deep chain: min-delay covering must not be worse in levels
	// than min-area, and must track arrival estimates.
	d := subject.New()
	a := d.AddPI("a")
	b := d.AddPI("b")
	c := d.AddPI("c")
	e := d.AddPI("e")
	l := d.AddInv(d.AddNand2(a, b))
	r := d.AddInv(d.AddNand2(c, e))
	root := d.AddNand2(l, r)
	d.AddOutput("o", root)
	f, err := partition.Partition(partition.Input{DAG: d, Pos: make([]geom.Point, d.NumGates())}, partition.Dagon)
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]geom.Point, d.NumGates())
	areaRes, err := Cover(context.Background(), d, f, library.Default(), pos, Options{})
	if err != nil {
		t.Fatal(err)
	}
	delayRes, err := Cover(context.Background(), d, f, library.Default(), pos, Options{Objective: MinDelay})
	if err != nil {
		t.Fatal(err)
	}
	if delayRes.Best[root].Arrival <= 0 {
		t.Error("min-delay solution lacks an arrival estimate")
	}
	if areaRes.Best[root].Arrival != 0 {
		t.Error("min-area solution must not carry arrivals")
	}
	// Min-delay never costs less area than min-area at the root.
	if delayRes.Best[root].AreaCost < areaRes.Best[root].AreaCost-1e-9 {
		t.Errorf("min-delay area %g below min-area %g",
			delayRes.Best[root].AreaCost, areaRes.Best[root].AreaCost)
	}
	if MinArea.String() != "min-area" || MinDelay.String() != "min-delay" {
		t.Error("Objective.String broken")
	}
}

func TestMinDelayPrefersShallowCover(t *testing.T) {
	t.Parallel()
	// NAND4 shape: balanced (2-level) vs linear patterns exist; the
	// delay objective must pick a cover whose estimated arrival is no
	// worse than the area objective's.
	d := subject.New()
	a := d.AddPI("a")
	b := d.AddPI("b")
	c := d.AddPI("c")
	e := d.AddPI("e")
	l := d.AddInv(d.AddNand2(a, b))
	r := d.AddInv(d.AddNand2(c, e))
	root := d.AddNand2(l, r)
	d.AddOutput("o", root)
	pos := make([]geom.Point, d.NumGates())
	f, err := partition.Partition(partition.Input{DAG: d, Pos: pos}, partition.Dagon)
	if err != nil {
		t.Fatal(err)
	}
	delayRes, err := Cover(context.Background(), d, f, library.Default(), pos, Options{Objective: MinDelay})
	if err != nil {
		t.Fatal(err)
	}
	// Compute the arrival the area cover would have had.
	areaRes, err := Cover(context.Background(), d, f, library.Default(), pos, Options{})
	if err != nil {
		t.Fatal(err)
	}
	areaArrival := arrivalOf(areaRes, f, root)
	if delayRes.Best[root].Arrival > areaArrival+1e-9 {
		t.Errorf("min-delay arrival %g worse than min-area cover's %g",
			delayRes.Best[root].Arrival, areaArrival)
	}
}

// TestCoverWorkersDeterminism: the per-tree fan-out must produce
// results identical to the serial pass — same solutions, same wire
// totals, same committed placement — on a multi-tree forest with
// cross-tree references.
func TestCoverWorkersDeterminism(t *testing.T) {
	t.Parallel()
	// A forest with several trees: a shared subexpression fans out to
	// three cones, so PDP/Dagon cut it into multiple trees with
	// cross-tree leaf references.
	d := subject.New()
	var pis []int
	for i := 0; i < 6; i++ {
		pis = append(pis, d.AddPI(string(rune('a'+i))))
	}
	shared := d.AddNand2(pis[0], pis[1])
	for i := 0; i < 3; i++ {
		c1 := d.AddNand2(shared, pis[2+i])
		c2 := d.AddInv(c1)
		c3 := d.AddNand2(c2, pis[5])
		d.AddOutput(string(rune('x'+i)), c3)
	}
	pos := make([]geom.Point, d.NumGates())
	for i := range pos {
		pos[i] = geom.Pt(float64(i*13%37), float64(i*7%23))
	}
	f, err := partition.Partition(partition.Input{DAG: d, Pos: pos}, partition.Dagon)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Roots) < 2 {
		t.Fatalf("want a multi-tree forest, got %d roots", len(f.Roots))
	}
	run := func(workers int) *Result {
		res, err := Cover(context.Background(), d, f, library.Default(), pos, Options{K: 0.01, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	for _, w := range []int{2, 8} {
		par := run(w)
		if serial.RootArea != par.RootArea || serial.RootWire != par.RootWire {
			t.Errorf("workers=%d: reduction differs: area %g/%g wire %g/%g",
				w, serial.RootArea, par.RootArea, serial.RootWire, par.RootWire)
		}
		for g := range serial.Best {
			a, b := serial.Best[g], par.Best[g]
			if (a == nil) != (b == nil) {
				t.Fatalf("workers=%d: solution presence differs at gate %d", w, g)
			}
			if a != nil && (a.Match.Cell.Name != b.Match.Cell.Name || a.Wire != b.Wire || a.Pos != b.Pos) {
				t.Errorf("workers=%d: gate %d solution differs: %s/%s", w, g, a.Match.Cell.Name, b.Match.Cell.Name)
			}
		}
		for g := range serial.Pos {
			if serial.Pos[g] != par.Pos[g] {
				t.Errorf("workers=%d: committed position differs at gate %d", w, g)
			}
		}
	}
}

// arrivalOf recomputes the stage-delay arrival of a chosen cover.
func arrivalOf(res *Result, f *partition.Forest, v int) float64 {
	sol := res.Best[v]
	worst := 0.0
	inTree := func(g int) bool { return res.Best[g] != nil }
	for _, l := range SelectedLeafSubtrees(f, inTree, sol) {
		if a := arrivalOf(res, f, l); a > worst {
			worst = a
		}
	}
	return worst + sol.Match.Cell.Intrinsic + sol.Match.Cell.Drive*sol.Match.Cell.InputCap
}

package cover

import (
	"context"
	"fmt"

	"casyn/internal/geom"
	"casyn/internal/library"
	"casyn/internal/match"
	"casyn/internal/par"
	"casyn/internal/partition"
	"casyn/internal/subject"
)

// preparedMatch is one cached match together with the K-invariant
// terms of its DP cost: every quantity of Eqs. 1–5 that depends only
// on the DAG, the partition, the library, and the frozen pre-cover
// placement — not on K and not on sibling DP decisions.
type preparedMatch struct {
	m match.Match
	// com is Eq. 2's pos(m,v): the center of mass of the covered base
	// gates on the frozen pre-cover placement snapshot.
	com geom.Point
	// subLeaf[i] reports whether m.Leaves[i] heads an in-tree input
	// subtree of this match (inTree(l) && covered[father[l]]) — the
	// leaf classification the DP otherwise recomputes per K with a
	// scratch map per match.
	subLeaf []bool
	// crossDist[i] is Metric.Distance(com, base[m.Leaves[i]]) for
	// cross-reference leaves; unused (zero) for subtree leaves, whose
	// distance depends on the K-dependent child solution.
	crossDist []float64
}

// Prefix is the K-invariant prefix of covering one partitioned DAG:
// the materialized trees, tree membership, the frozen pre-cover
// placement, and the complete per-vertex match enumeration with
// cached geometry. It is immutable after BuildPrefix and safe to
// share across goroutines; CoverWithPrefix runs the K-dependent DP
// against it without touching the matcher again.
//
// A Prefix is valid for exactly the (DAG, forest, library, placement,
// metric) it was built from — any of those changing invalidates the
// cached matches and distances, and the caller must build a new one.
type Prefix struct {
	dag *subject.DAG
	// trees/rootOf mirror forest.Trees(dag) / forest.RootOf(dag).
	trees  []partition.Tree
	rootOf []int
	// pos is the frozen pre-cover placement the geometry was cached
	// against; CoverWithPrefix seeds Result.Pos from it.
	pos []geom.Point
	// matches[g] holds every library match rooted at gate g (nil for
	// PIs, constants, and gates outside every tree).
	matches [][]preparedMatch
}

// NumTrees returns the number of partition trees.
func (p *Prefix) NumTrees() int { return len(p.trees) }

// NumMatches returns the total number of cached matches.
func (p *Prefix) NumMatches() int {
	n := 0
	for _, pms := range p.matches {
		n += len(pms)
	}
	return n
}

// inTreeFunc returns the membership test for the tree rooted at root,
// equivalent to partition.Tree.InTree but backed by the dense rootOf
// slice instead of a per-tree map.
func (p *Prefix) inTreeFunc(root int) func(int) bool {
	rootOf := p.rootOf
	return func(g int) bool { return g >= 0 && g < len(rootOf) && rootOf[g] == root }
}

// BuildPrefix enumerates every library match of every tree vertex and
// caches the K-invariant covering terms. pos gives the placement of
// all subject gates and is snapshotted (the Prefix keeps its own
// frozen copy, exactly the pre-cover snapshot Cover froze per call).
// Trees fan out across workers goroutines — each tree writes only its
// own vertices' match lists, so the result is identical for every
// worker count. A canceled ctx stops the enumeration promptly with a
// wrapped ctx error.
func BuildPrefix(ctx context.Context, dag *subject.DAG, forest *partition.Forest, lib *library.Library, pos []geom.Point, metric geom.Metric, workers int) (*Prefix, error) {
	if len(pos) < dag.NumGates() {
		return nil, fmt.Errorf("cover: %d positions for %d gates", len(pos), dag.NumGates())
	}
	p := &Prefix{
		dag:     dag,
		trees:   forest.Trees(dag),
		rootOf:  forest.RootOf(dag),
		pos:     append([]geom.Point(nil), pos...),
		matches: make([][]preparedMatch, dag.NumGates()),
	}
	dag.PrecomputeFanouts() // no lazy rebuild race under the fan-out
	err := par.ForEach(ctx, workers, len(p.trees), func(ti int) error {
		p.enumerateTree(dag, forest, lib, metric, ti)
		return nil
	})
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("cover: canceled enumerating matches: %w", cerr)
		}
		return nil, err
	}
	return p, nil
}

// enumerateTree fills p.matches for every vertex of tree ti: the
// complete match enumeration with cached K-invariant geometry. It
// writes only tree ti's own vertices' match lists, so disjoint trees
// enumerate concurrently. Shared by BuildPrefix (all trees) and
// RebuildPrefix (dirty trees only).
func (p *Prefix) enumerateTree(dag *subject.DAG, forest *partition.Forest, lib *library.Library, metric geom.Metric, ti int) {
	t := &p.trees[ti]
	inTree := p.inTreeFunc(t.Root)
	m := match.NewMatcher(dag, lib, forest.Father, inTree)
	covered := map[int]bool{} // scratch per match
	for _, v := range t.Gates {
		ms := m.MatchesAt(v)
		pms := make([]preparedMatch, len(ms))
		for i := range ms {
			mt := &ms[i]
			for k := range covered {
				delete(covered, k)
			}
			for _, c := range mt.Covered {
				covered[c] = true
			}
			var com geom.Point
			for _, c := range mt.Covered {
				com = com.Add(p.pos[c])
			}
			com = com.Scale(1 / float64(len(mt.Covered)))
			pm := preparedMatch{
				m:         *mt,
				com:       com,
				subLeaf:   make([]bool, len(mt.Leaves)),
				crossDist: make([]float64, len(mt.Leaves)),
			}
			for li, l := range mt.Leaves {
				if inTree(l) && covered[forest.Father[l]] {
					pm.subLeaf[li] = true
				} else {
					pm.crossDist[li] = metric.Distance(com, p.pos[l])
				}
			}
			pms[i] = pm
		}
		p.matches[v] = pms
	}
}

// Package verify implements combinational equivalence checking between
// the repository's circuit representations: the Boolean network
// (bnet.Network), the subject DAG of base gates (subject.DAG), the
// technology-mapped netlist (netlist.Netlist), and two-level PLA
// descriptions (logic.PLA).
//
// Every representation is first compiled into a common word-level IR
// (Circuit) of AND/OR/NOT/NAND operations with structural hashing.
// Equivalent then runs two engines over the shared IR:
//
//  1. a 64-way bit-parallel simulation pass — directed patterns
//     (all-zeros, all-ones, one-hot, one-cold, single-input
//     sensitization around random bases) plus seeded random words —
//     that refutes inequivalent pairs quickly with a concrete
//     counterexample vector;
//  2. an exact backend: a hash-consed ROBDD engine with an operation
//     cache and a hard node budget, falling back to exhaustive
//     bit-parallel enumeration when the input count permits. The exact
//     backend turns "no mismatch found" into "proven equivalent".
//
// The engines align inputs and outputs across representations by name,
// so the caller never has to reason about pin ordering differences
// between the pipeline stages.
package verify

import (
	"fmt"
)

// op is one IR operation.
type op uint8

const (
	opInput op = iota
	opConst0
	opConst1
	opNot
	opAnd
	opOr
	opNand
)

// node is one IR vertex. A holds the input ordinal for opInput and the
// single operand for opNot; A and B hold the operands of the binary
// ops.
type node struct {
	Op   op
	A, B int32
}

// output is a named root of the circuit.
type output struct {
	Name string
	Node int32
}

// Circuit is the compiled word-level IR of one circuit representation.
// Nodes are stored in topological order (operands always precede
// users), so a single forward pass evaluates the whole circuit.
type Circuit struct {
	// Name labels the circuit in reports ("bnet", "subject", ...).
	Name    string
	nodes   []node
	inputs  []string
	outputs []output
	// hash structurally dedupes nodes during construction.
	hash map[node]int32
}

// NewCircuit returns an empty circuit builder.
func NewCircuit(name string) *Circuit {
	return &Circuit{Name: name, hash: make(map[node]int32)}
}

// NumInputs returns the primary-input count.
func (c *Circuit) NumInputs() int { return len(c.inputs) }

// NumOutputs returns the primary-output count.
func (c *Circuit) NumOutputs() int { return len(c.outputs) }

// NumNodes returns the IR node count (inputs and constants included).
func (c *Circuit) NumNodes() int { return len(c.nodes) }

// InputNames returns the input names in input-ordinal order.
func (c *Circuit) InputNames() []string { return c.inputs }

// OutputNames returns the output names in output order.
func (c *Circuit) OutputNames() []string {
	out := make([]string, len(c.outputs))
	for i, o := range c.outputs {
		out[i] = o.Name
	}
	return out
}

func (c *Circuit) intern(n node) int32 {
	if id, ok := c.hash[n]; ok {
		return id
	}
	id := int32(len(c.nodes))
	c.nodes = append(c.nodes, n)
	c.hash[n] = id
	return id
}

// Input appends a primary input and returns its node.
func (c *Circuit) Input(name string) int32 {
	// Inputs are never deduped: each call is a distinct pin.
	id := int32(len(c.nodes))
	c.nodes = append(c.nodes, node{Op: opInput, A: int32(len(c.inputs))})
	c.inputs = append(c.inputs, name)
	return id
}

// Const returns the constant node for v.
func (c *Circuit) Const(v bool) int32 {
	if v {
		return c.intern(node{Op: opConst1})
	}
	return c.intern(node{Op: opConst0})
}

// Not returns NOT(a) with double-negation and constant folding.
func (c *Circuit) Not(a int32) int32 {
	switch n := c.nodes[a]; n.Op {
	case opNot:
		return n.A
	case opConst0:
		return c.Const(true)
	case opConst1:
		return c.Const(false)
	}
	return c.intern(node{Op: opNot, A: a})
}

func (c *Circuit) binary(o op, a, b int32) int32 {
	if a > b {
		a, b = b, a
	}
	return c.intern(node{Op: o, A: a, B: b})
}

// And returns AND(a, b) with constant folding and idempotence.
func (c *Circuit) And(a, b int32) int32 {
	ta, tb := c.nodes[a].Op, c.nodes[b].Op
	switch {
	case ta == opConst0 || tb == opConst0:
		return c.Const(false)
	case ta == opConst1:
		return b
	case tb == opConst1:
		return a
	case a == b:
		return a
	}
	return c.binary(opAnd, a, b)
}

// Or returns OR(a, b) with constant folding and idempotence.
func (c *Circuit) Or(a, b int32) int32 {
	ta, tb := c.nodes[a].Op, c.nodes[b].Op
	switch {
	case ta == opConst1 || tb == opConst1:
		return c.Const(true)
	case ta == opConst0:
		return b
	case tb == opConst0:
		return a
	case a == b:
		return a
	}
	return c.binary(opOr, a, b)
}

// Nand returns NAND(a, b) with constant folding.
func (c *Circuit) Nand(a, b int32) int32 {
	ta, tb := c.nodes[a].Op, c.nodes[b].Op
	switch {
	case ta == opConst0 || tb == opConst0:
		return c.Const(true)
	case ta == opConst1:
		return c.Not(b)
	case tb == opConst1:
		return c.Not(a)
	case a == b:
		return c.Not(a)
	}
	return c.binary(opNand, a, b)
}

// AddOutput names a node as a primary output.
func (c *Circuit) AddOutput(name string, n int32) {
	c.outputs = append(c.outputs, output{Name: name, Node: n})
}

// checkInterface validates that the circuit is well formed for
// verification: at least one output and unique output names (outputs
// are aligned across representations by name).
func (c *Circuit) checkInterface() error {
	if len(c.outputs) == 0 {
		return fmt.Errorf("verify: circuit %s has no outputs", c.Name)
	}
	seen := make(map[string]bool, len(c.outputs))
	for _, o := range c.outputs {
		if seen[o.Name] {
			return fmt.Errorf("verify: circuit %s has duplicate output %q", c.Name, o.Name)
		}
		seen[o.Name] = true
	}
	seenIn := make(map[string]bool, len(c.inputs))
	for _, in := range c.inputs {
		if seenIn[in] {
			return fmt.Errorf("verify: circuit %s has duplicate input %q", c.Name, in)
		}
		seenIn[in] = true
	}
	return nil
}

// WordEval is a reusable 64-way bit-parallel evaluator over one
// circuit. It holds the node-value scratch buffer so repeated
// evaluations do not allocate.
type WordEval struct {
	c    *Circuit
	vals []uint64
	out  []uint64
}

// NewWordEval returns an evaluator for c.
func NewWordEval(c *Circuit) *WordEval {
	return &WordEval{
		c:    c,
		vals: make([]uint64, len(c.nodes)),
		out:  make([]uint64, len(c.outputs)),
	}
}

// Eval evaluates 64 input vectors at once: bit b of in[i] is the value
// of input ordinal i in vector b. The returned slice (bit b of out[o]
// is output o in vector b) is reused by the next Eval call.
func (e *WordEval) Eval(in []uint64) ([]uint64, error) {
	c := e.c
	if len(in) != len(c.inputs) {
		return nil, fmt.Errorf("verify: %d input words for %d inputs of %s", len(in), len(c.inputs), c.Name)
	}
	vals := e.vals
	for i, n := range c.nodes {
		switch n.Op {
		case opInput:
			vals[i] = in[n.A]
		case opConst0:
			vals[i] = 0
		case opConst1:
			vals[i] = ^uint64(0)
		case opNot:
			vals[i] = ^vals[n.A]
		case opAnd:
			vals[i] = vals[n.A] & vals[n.B]
		case opOr:
			vals[i] = vals[n.A] | vals[n.B]
		case opNand:
			vals[i] = ^(vals[n.A] & vals[n.B])
		}
	}
	for o, root := range c.outputs {
		e.out[o] = vals[root.Node]
	}
	return e.out, nil
}

// EvalVector evaluates a single Boolean input vector (indexed by input
// ordinal) and returns the output values in output order.
func (c *Circuit) EvalVector(in []bool) ([]bool, error) {
	if len(in) != len(c.inputs) {
		return nil, fmt.Errorf("verify: %d input values for %d inputs of %s", len(in), len(c.inputs), c.Name)
	}
	words := make([]uint64, len(in))
	for i, v := range in {
		if v {
			words[i] = 1
		}
	}
	out, err := NewWordEval(c).Eval(words)
	if err != nil {
		return nil, err
	}
	bits := make([]bool, len(out))
	for i, w := range out {
		bits[i] = w&1 == 1
	}
	return bits, nil
}

package verify

import (
	"context"
	"math/bits"
	"math/rand"
)

// simPair drives the bit-parallel simulation of two circuits over a
// unified input ordering (circuit a's input order; bPerm[j] gives the
// unified ordinal feeding b's input j) and a unified output pairing
// (a's output order; bOut[o] is b's output index for a's output o).
type simPair struct {
	a, b       *Circuit
	ea, eb     *WordEval
	bPerm      []int
	bOut       []int
	bIn        []uint64 // scratch: b-order input words
	vectors    int      // total vectors simulated
	outNames   []string
	inputNames []string
}

func newSimPair(a, b *Circuit, bPerm, bOut []int) *simPair {
	return &simPair{
		a: a, b: b,
		ea: NewWordEval(a), eb: NewWordEval(b),
		bPerm: bPerm, bOut: bOut,
		bIn:        make([]uint64, b.NumInputs()),
		outNames:   a.OutputNames(),
		inputNames: a.InputNames(),
	}
}

// evalBatch evaluates one 64-vector batch on both circuits; valid
// masks the meaningful bits. It returns a counterexample for the first
// differing (output, bit) pair, or nil.
func (s *simPair) evalBatch(in []uint64, valid uint64) (*Counterexample, error) {
	av, err := s.ea.Eval(in)
	if err != nil {
		return nil, err
	}
	for j, u := range s.bPerm {
		s.bIn[j] = in[u]
	}
	bv, err := s.eb.Eval(s.bIn)
	if err != nil {
		return nil, err
	}
	s.vectors += bits.OnesCount64(valid)
	for o := range av {
		diff := (av[o] ^ bv[s.bOut[o]]) & valid
		if diff == 0 {
			continue
		}
		bit := uint(bits.TrailingZeros64(diff))
		cex := &Counterexample{
			InputNames: s.inputNames,
			Inputs:     make([]bool, len(in)),
			Output:     s.outNames[o],
			AValue:     av[o]>>bit&1 == 1,
			BValue:     bv[s.bOut[o]]>>bit&1 == 1,
		}
		for i, w := range in {
			cex.Inputs[i] = w>>bit&1 == 1
		}
		return cex, nil
	}
	return nil, nil
}

// batcher accumulates single vectors into 64-wide word batches.
type batcher struct {
	s     *simPair
	words []uint64
	fill  int
}

func newBatcher(s *simPair) *batcher {
	return &batcher{s: s, words: make([]uint64, s.a.NumInputs())}
}

// add queues one vector; when the batch fills it is evaluated.
func (b *batcher) add(vec []bool) (*Counterexample, error) {
	for i, v := range vec {
		if v {
			b.words[i] |= 1 << uint(b.fill)
		}
	}
	b.fill++
	if b.fill == 64 {
		return b.flush()
	}
	return nil, nil
}

// flush evaluates any queued vectors.
func (b *batcher) flush() (*Counterexample, error) {
	if b.fill == 0 {
		return nil, nil
	}
	valid := ^uint64(0)
	if b.fill < 64 {
		valid = 1<<uint(b.fill) - 1
	}
	cex, err := b.s.evalBatch(b.words, valid)
	for i := range b.words {
		b.words[i] = 0
	}
	b.fill = 0
	return cex, err
}

// runDirected simulates the structured patterns: all-zeros, all-ones,
// one-hot, one-cold, and single-input sensitization around random base
// vectors (each base plus its n single-bit neighbors — any function
// unate or sensitive in one input at that base point mismatches here).
func (s *simPair) runDirected(ctx context.Context, rng *rand.Rand, bases int) (*Counterexample, error) {
	n := s.a.NumInputs()
	bt := newBatcher(s)
	vec := make([]bool, n)
	emit := func() (*Counterexample, error) { return bt.add(vec) }

	set := func(v bool) {
		for i := range vec {
			vec[i] = v
		}
	}
	// All-zeros, all-ones.
	set(false)
	if cex, err := emit(); cex != nil || err != nil {
		return cex, err
	}
	set(true)
	if cex, err := emit(); cex != nil || err != nil {
		return cex, err
	}
	// One-hot and one-cold.
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		set(false)
		vec[i] = true
		if cex, err := emit(); cex != nil || err != nil {
			return cex, err
		}
		set(true)
		vec[i] = false
		if cex, err := emit(); cex != nil || err != nil {
			return cex, err
		}
	}
	// Sensitization: random base vectors and their single-bit flips.
	for b := 0; b < bases; b++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for i := range vec {
			vec[i] = rng.Intn(2) == 1
		}
		if cex, err := emit(); cex != nil || err != nil {
			return cex, err
		}
		for i := 0; i < n; i++ {
			vec[i] = !vec[i]
			if cex, err := emit(); cex != nil || err != nil {
				return cex, err
			}
			vec[i] = !vec[i]
		}
	}
	return bt.flush()
}

// runRandom simulates batches of 64 fully random vectors each.
func (s *simPair) runRandom(ctx context.Context, rng *rand.Rand, batches int) (*Counterexample, error) {
	n := s.a.NumInputs()
	words := make([]uint64, n)
	for b := 0; b < batches; b++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for i := range words {
			words[i] = rng.Uint64()
		}
		if cex, err := s.evalBatch(words, ^uint64(0)); cex != nil || err != nil {
			return cex, err
		}
	}
	return nil, nil
}

// basisWords are the classic exhaustive-simulation constants: word
// basisWords[i] enumerates input i over the 64 minterms of one block.
var basisWords = [6]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// runExhaustive enumerates all 2^n input vectors bit-parallel: inputs
// 0..5 take the basis words, higher inputs follow the bits of the
// block counter. Returns the first counterexample, or nil after a full
// (proving) pass.
func (s *simPair) runExhaustive(ctx context.Context) (*Counterexample, error) {
	n := s.a.NumInputs()
	words := make([]uint64, n)
	valid := ^uint64(0)
	if n < 6 {
		valid = 1<<(1<<uint(n)) - 1
	}
	for i := 0; i < n && i < 6; i++ {
		words[i] = basisWords[i]
	}
	blocks := uint64(1)
	if n > 6 {
		blocks = 1 << uint(n-6)
	}
	for blk := uint64(0); blk < blocks; blk++ {
		if blk%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for i := 6; i < n; i++ {
			if blk>>uint(i-6)&1 == 1 {
				words[i] = ^uint64(0)
			} else {
				words[i] = 0
			}
		}
		if cex, err := s.evalBatch(words, valid); cex != nil || err != nil {
			return cex, err
		}
	}
	return nil, nil
}

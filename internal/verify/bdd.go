package verify

import (
	"context"
	"errors"
	"fmt"
)

// errBDDBudget reports that the ROBDD engine exceeded its node budget;
// Equivalent then falls back to exhaustive enumeration when the input
// count permits, or reports an unproven (simulation-only) result.
var errBDDBudget = errors.New("verify: BDD node budget exceeded")

// bddRef is a node index into the manager's table. Refs 0 and 1 are
// the false/true terminals.
type bddRef = uint32

const (
	bddFalse bddRef = 0
	bddTrue  bddRef = 1
)

// bddNode is one ROBDD vertex: the decision variable (unified input
// ordinal) and the cofactor children. Terminals carry Var = maxVar.
type bddNode struct {
	Var    int32
	Lo, Hi bddRef
}

type bddOp uint8

const (
	bddAnd bddOp = iota
	bddOr
	bddXor
)

type bddAppKey struct {
	op   bddOp
	a, b bddRef
}

// bddManager is a hash-consed reduced-ordered BDD store with an
// operation cache and a hard node budget. Variable order is the
// unified input ordinal order (circuit a's input order).
type bddManager struct {
	nodes  []bddNode
	unique map[bddNode]bddRef
	cache  map[bddAppKey]bddRef
	budget int
	// steps counts apply calls for cooperative cancellation.
	steps int
	ctx   context.Context
}

func newBDDManager(ctx context.Context, numVars, budget int) *bddManager {
	m := &bddManager{
		unique: make(map[bddNode]bddRef),
		cache:  make(map[bddAppKey]bddRef),
		budget: budget,
		ctx:    ctx,
	}
	term := int32(numVars)
	m.nodes = append(m.nodes,
		bddNode{Var: term, Lo: bddFalse, Hi: bddFalse}, // 0: false
		bddNode{Var: term, Lo: bddTrue, Hi: bddTrue},   // 1: true
	)
	return m
}

// mk returns the canonical node (v, lo, hi), applying the reduction
// rule and hash-consing.
func (m *bddManager) mk(v int32, lo, hi bddRef) (bddRef, error) {
	if lo == hi {
		return lo, nil
	}
	key := bddNode{Var: v, Lo: lo, Hi: hi}
	if r, ok := m.unique[key]; ok {
		return r, nil
	}
	if len(m.nodes) >= m.budget {
		return 0, errBDDBudget
	}
	r := bddRef(len(m.nodes))
	m.nodes = append(m.nodes, key)
	m.unique[key] = r
	return r, nil
}

// variable returns the single-variable BDD for input ordinal v.
func (m *bddManager) variable(v int) (bddRef, error) {
	return m.mk(int32(v), bddFalse, bddTrue)
}

func terminalOf(op bddOp, a, b bddRef) (bddRef, bool) {
	switch op {
	case bddAnd:
		switch {
		case a == bddFalse || b == bddFalse:
			return bddFalse, true
		case a == bddTrue:
			return b, true
		case b == bddTrue:
			return a, true
		case a == b:
			return a, true
		}
	case bddOr:
		switch {
		case a == bddTrue || b == bddTrue:
			return bddTrue, true
		case a == bddFalse:
			return b, true
		case b == bddFalse:
			return a, true
		case a == b:
			return a, true
		}
	case bddXor:
		switch {
		case a == b:
			return bddFalse, true
		case a == bddFalse:
			return b, true
		case b == bddFalse:
			return a, true
		}
	}
	return 0, false
}

// apply computes op(a, b) with memoization.
func (m *bddManager) apply(op bddOp, a, b bddRef) (bddRef, error) {
	if r, ok := terminalOf(op, a, b); ok {
		return r, nil
	}
	m.steps++
	if m.steps%4096 == 0 {
		if err := m.ctx.Err(); err != nil {
			return 0, err
		}
	}
	// Commutative ops: canonicalize the cache key.
	if a > b {
		a, b = b, a
	}
	key := bddAppKey{op: op, a: a, b: b}
	if r, ok := m.cache[key]; ok {
		return r, nil
	}
	na, nb := m.nodes[a], m.nodes[b]
	v := na.Var
	if nb.Var < v {
		v = nb.Var
	}
	alo, ahi := a, a
	if na.Var == v {
		alo, ahi = na.Lo, na.Hi
	}
	blo, bhi := b, b
	if nb.Var == v {
		blo, bhi = nb.Lo, nb.Hi
	}
	lo, err := m.apply(op, alo, blo)
	if err != nil {
		return 0, err
	}
	hi, err := m.apply(op, ahi, bhi)
	if err != nil {
		return 0, err
	}
	r, err := m.mk(v, lo, hi)
	if err != nil {
		return 0, err
	}
	m.cache[key] = r
	return r, nil
}

// not complements f. With no complement edges this is XOR with true.
func (m *bddManager) not(f bddRef) (bddRef, error) {
	return m.apply(bddXor, f, bddTrue)
}

// buildCircuit constructs the output BDDs of a circuit, with perm
// mapping the circuit's own input ordinals to unified variable
// indices.
func (m *bddManager) buildCircuit(c *Circuit, perm []int) ([]bddRef, error) {
	vals := make([]bddRef, len(c.nodes))
	for i, n := range c.nodes {
		var r bddRef
		var err error
		switch n.Op {
		case opInput:
			r, err = m.variable(perm[n.A])
		case opConst0:
			r = bddFalse
		case opConst1:
			r = bddTrue
		case opNot:
			r, err = m.not(vals[n.A])
		case opAnd:
			r, err = m.apply(bddAnd, vals[n.A], vals[n.B])
		case opOr:
			r, err = m.apply(bddOr, vals[n.A], vals[n.B])
		case opNand:
			if r, err = m.apply(bddAnd, vals[n.A], vals[n.B]); err == nil {
				r, err = m.not(r)
			}
		default:
			err = fmt.Errorf("verify: invalid IR op %d", n.Op)
		}
		if err != nil {
			return nil, err
		}
		vals[i] = r
	}
	out := make([]bddRef, len(c.outputs))
	for o, root := range c.outputs {
		out[o] = vals[root.Node]
	}
	return out, nil
}

// satVector extracts one satisfying assignment of f (which must not be
// the false terminal) over numVars unified variables; unconstrained
// variables are false. In a reduced BDD the true terminal is reachable
// from every non-false node, so greedily descending into any non-false
// child terminates at the true terminal.
func (m *bddManager) satVector(f bddRef, numVars int) []bool {
	vec := make([]bool, numVars)
	for f != bddTrue {
		n := m.nodes[f]
		if n.Lo != bddFalse {
			f = n.Lo
		} else {
			vec[n.Var] = true
			f = n.Hi
		}
	}
	return vec
}

package diffharness

import (
	"context"
	"testing"

	"casyn/internal/flow"
)

// TestUniformFieldEveryExampleCircuit is the satellite acceptance for
// the uniform-field reduction: every example circuit, every K in the
// standard ladder — a uniform K-field maps byte-identically to the
// classic global K (RunUniformField errors on any divergence).
func TestUniformFieldEveryExampleCircuit(t *testing.T) {
	t.Parallel()
	for name, p := range corpus(t) {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			checks, err := RunUniformField(context.Background(), name, p, Default())
			if err != nil {
				t.Fatal(err)
			}
			if len(checks) != 4 {
				t.Fatalf("%d checks, want 4", len(checks))
			}
			for _, c := range checks {
				if c.Fingerprint == "" {
					t.Errorf("K=%g: empty fingerprint", c.K)
				}
			}
		})
	}
}

// TestAdaptiveSweepEveryExampleCircuit: the closed loop on every
// example circuit, workers 1 vs 4 — every iteration's netlist proven
// equivalent to the subject, the whole loop byte-identical across
// worker counts (RunAdaptiveSweep errors on any divergence).
func TestAdaptiveSweepEveryExampleCircuit(t *testing.T) {
	t.Parallel()
	for name, p := range corpus(t) {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res, err := RunAdaptiveSweep(context.Background(), name, p, Default(), flow.AdaptiveConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if res.RoutedIterations == 0 || res.RoutedIterations > 3 {
				t.Errorf("adaptive took %d routed iterations, budget is 3", res.RoutedIterations)
			}
			if !res.Converged {
				t.Error("adaptive did not converge on an example circuit")
			}
			for _, w := range []int{1, 4} {
				checks, ok := res.Runs[w]
				if !ok {
					t.Fatalf("no adaptive run for workers=%d", w)
				}
				for _, c := range checks {
					if !c.Report.Proven {
						t.Errorf("workers=%d iteration %d: unproven", w, c.Iteration)
					}
				}
			}
		})
	}
}

// TestUniformFieldRejectsEmptyConfig mirrors the classic harness's
// degenerate-config contract.
func TestUniformFieldRejectsEmptyConfig(t *testing.T) {
	t.Parallel()
	p := corpus(t)["dec24"]
	if p == nil {
		t.Skip("dec24 example missing")
	}
	if _, err := RunUniformField(context.Background(), "dec24", p, Config{Workers: []int{1}}); err == nil {
		t.Error("empty K schedule did not error")
	}
	if _, err := RunAdaptiveSweep(context.Background(), "dec24", p, Config{Ks: []float64{0}}, flow.AdaptiveConfig{}); err == nil {
		t.Error("empty worker list did not error")
	}
}

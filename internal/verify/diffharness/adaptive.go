package diffharness

// Adaptive-mode differential checks, the closed-loop counterpart of
// Run's open-loop K-ladder sweep:
//
//  1. Uniform-field reduction (RunUniformField). Mapping under a
//     K-field whose every multiplier is exactly 1.0 must be
//     byte-identical to the classic global-K mapping, per circuit and
//     per K — the property that makes the K-field a strict
//     generalization of the paper's Eq. 5 cost instead of a fork.
//
//  2. Adaptive sweep (RunAdaptiveSweep). Every netlist the closed
//     loop produces — baseline and each controller step — is proven
//     equivalent to the subject DAG, and the whole loop (iteration
//     count, controller decisions, routed results) is byte-identical
//     across worker counts.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"casyn/internal/bnet"
	"casyn/internal/cover"
	"casyn/internal/flow"
	"casyn/internal/library"
	"casyn/internal/logic"
	"casyn/internal/mapper"
	"casyn/internal/place"
	"casyn/internal/route"
	"casyn/internal/subject"
	"casyn/internal/verify"
)

// prepareFlow builds the shared front end of a differential run: the
// subject DAG, the calibrated flow config, and the prepared context
// (placement + mapping prefix) every comparison leg reuses.
func prepareFlow(ctx context.Context, name string, p *logic.PLA, cfg Config) (*subject.DAG, *flow.Context, flow.Config, error) {
	n, err := bnet.FromPLA(p)
	if err != nil {
		return nil, nil, flow.Config{}, fmt.Errorf("diffharness: %s: %w", name, err)
	}
	d, err := subject.Decompose(n)
	if err != nil {
		return nil, nil, flow.Config{}, fmt.Errorf("diffharness: %s: %w", name, err)
	}
	util := cfg.Utilization
	if util == 0 {
		util = 0.58
	}
	area := float64(d.BaseGateCount()) * 4.6 / util
	layout, err := place.NewLayout(area, 1.0, library.RowHeight)
	if err != nil {
		return nil, nil, flow.Config{}, fmt.Errorf("diffharness: %s: %w", name, err)
	}
	fcfg := flow.Config{
		Layout:         layout,
		PlaceOpts:      place.Options{Seed: 1, RefinePasses: 8},
		RouteOpts:      route.Options{GCellSize: 26.6, RipupIterations: 6, CapacityScale: 1.98},
		FreshPlacement: true,
	}
	pc, err := flow.Prepare(ctx, d, fcfg)
	if err != nil {
		return nil, nil, flow.Config{}, fmt.Errorf("diffharness: %s: %w", name, err)
	}
	if err := flow.PrepareMapping(ctx, pc, fcfg); err != nil {
		return nil, nil, flow.Config{}, fmt.Errorf("diffharness: %s: %w", name, err)
	}
	fcfg.Lib = pc.Prep.Lib()
	return d, pc, fcfg, nil
}

// UniformFieldCheck is the verdict for one K of the uniform-field
// reduction: the classic and uniform-field fingerprints (equal by
// construction — RunUniformField errors otherwise).
type UniformFieldCheck struct {
	K           float64
	Fingerprint string
}

// RunUniformField proves the uniform-field reduction on one circuit:
// for every K in cfg.Ks, mapping under an all-1.0 K-field produces a
// mapped netlist and covering metrics byte-identical to the classic
// global-K mapping. Any divergence is an error.
func RunUniformField(ctx context.Context, name string, p *logic.PLA, cfg Config) ([]UniformFieldCheck, error) {
	if len(cfg.Ks) == 0 {
		return nil, fmt.Errorf("diffharness: %s: empty K schedule", name)
	}
	_, pc, fcfg, err := prepareFlow(ctx, name, p, cfg)
	if err != nil {
		return nil, err
	}
	// The field geometry is arbitrary for a uniform field (every sample
	// returns 1.0 regardless of which cell a span lands in); a 16×16
	// grid over the die exercises the sampling anyway.
	die := fcfg.Layout.Die
	field, err := cover.NewKField(die.Min, die.W()/16, die.H()/16, 16, 16)
	if err != nil {
		return nil, fmt.Errorf("diffharness: %s: %w", name, err)
	}
	checks := make([]UniformFieldCheck, 0, len(cfg.Ks))
	for _, k := range cfg.Ks {
		classic, _, err := mapper.MapStateful(ctx, pc.Prep, k)
		if err != nil {
			return nil, fmt.Errorf("diffharness: %s K=%g: classic map: %w", name, k, err)
		}
		uniform, _, err := mapper.MapWithField(ctx, pc.Prep, k, field)
		if err != nil {
			return nil, fmt.Errorf("diffharness: %s K=%g: uniform-field map: %w", name, k, err)
		}
		cfp, err := mapFingerprint(classic)
		if err != nil {
			return nil, fmt.Errorf("diffharness: %s K=%g: %w", name, k, err)
		}
		ufp, err := mapFingerprint(uniform)
		if err != nil {
			return nil, fmt.Errorf("diffharness: %s K=%g: %w", name, k, err)
		}
		if cfp != ufp {
			return nil, fmt.Errorf(
				"diffharness: %s K=%g: uniform K-field diverges from classic global K (fingerprint %s vs %s)",
				name, k, ufp, cfp)
		}
		checks = append(checks, UniformFieldCheck{K: k, Fingerprint: cfp})
	}
	return checks, nil
}

// mapFingerprint hashes a mapping result: the exported Verilog, every
// instance's committed position, and the covering metrics. Equal
// fingerprints mean bitwise-equal mapped designs.
func mapFingerprint(res *mapper.Result) (string, error) {
	var sb strings.Builder
	if err := res.Netlist.WriteVerilog(&sb, "dut"); err != nil {
		return "", err
	}
	for i := range res.Netlist.Instances {
		fmt.Fprintf(&sb, "%d %v\n", i, res.Netlist.Instances[i].Pos)
	}
	fmt.Fprintf(&sb, "cells=%d area=%.9f dup=%d\n", res.NumCells, res.CellArea, res.DuplicatedCells)
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:]), nil
}

// AdaptiveCheck is the verdict for one routed iteration of one
// adaptive run.
type AdaptiveCheck struct {
	Iteration int
	// Report proves the iteration's netlist equivalent to the subject.
	Report *verify.Report
	// Fingerprint is the iteration fingerprint (Verilog + metrics row).
	Fingerprint string
}

// AdaptiveSweepResult is a completed adaptive differential run.
type AdaptiveSweepResult struct {
	Name string
	// Runs maps each worker count to its per-iteration checks.
	Runs map[int][]AdaptiveCheck
	// Converged / RoutedIterations describe the first worker count's
	// run (all counts are identical — the sweep errors otherwise).
	Converged        bool
	RoutedIterations int
}

// RunAdaptiveSweep drives one circuit through flow.RunAdaptive at
// every worker count: every iteration's netlist is proven equivalent
// to the subject DAG, and all counts must produce byte-identical
// loops — same iteration count, same per-iteration fingerprints. The
// loop runs with seeded placement (the controller's operating mode).
func RunAdaptiveSweep(ctx context.Context, name string, p *logic.PLA, cfg Config, acfg flow.AdaptiveConfig) (*AdaptiveSweepResult, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("diffharness: %s: empty worker list", name)
	}
	d, pc, fcfg, err := prepareFlow(ctx, name, p, cfg)
	if err != nil {
		return nil, err
	}
	fcfg.FreshPlacement = false
	res := &AdaptiveSweepResult{Name: name, Runs: make(map[int][]AdaptiveCheck)}
	for _, w := range cfg.Workers {
		wcfg := fcfg
		wcfg.Workers = w
		ares, err := flow.RunAdaptive(ctx, pc, wcfg, acfg)
		if err != nil {
			return nil, fmt.Errorf("diffharness: %s adaptive workers=%d: %w", name, w, err)
		}
		if len(ares.Iterations) == 0 {
			return nil, fmt.Errorf("diffharness: %s adaptive workers=%d: no iterations", name, w)
		}
		checks := make([]AdaptiveCheck, 0, len(ares.Iterations))
		for i := range ares.Iterations {
			it := &ares.Iterations[i].Iteration
			rep, err := prove(ctx, name, fmt.Sprintf("dag vs adaptive netlist (iteration %d, workers=%d)", i, w),
				d, it.Netlist, cfg.Verify)
			if err != nil {
				return nil, err
			}
			fp, err := fingerprint(it)
			if err != nil {
				return nil, fmt.Errorf("diffharness: %s adaptive workers=%d iteration %d: %w", name, w, i, err)
			}
			checks = append(checks, AdaptiveCheck{Iteration: i, Report: rep, Fingerprint: fp})
		}
		res.Runs[w] = checks
		if w == cfg.Workers[0] {
			res.Converged = ares.Converged
			res.RoutedIterations = ares.RoutedIterations()
		}
	}
	base := res.Runs[cfg.Workers[0]]
	for _, w := range cfg.Workers[1:] {
		if len(res.Runs[w]) != len(base) {
			return nil, fmt.Errorf("diffharness: %s adaptive: workers=%d took %d iterations, workers=%d took %d",
				name, w, len(res.Runs[w]), cfg.Workers[0], len(base))
		}
		for i, c := range res.Runs[w] {
			if c.Fingerprint != base[i].Fingerprint {
				return nil, fmt.Errorf(
					"diffharness: %s adaptive iteration %d: workers=%d diverges from workers=%d (fingerprint %s vs %s)",
					name, i, w, cfg.Workers[0], c.Fingerprint, base[i].Fingerprint)
			}
		}
	}
	return res, nil
}

// Package diffharness is the differential test harness for the
// synthesis pipeline: it drives a circuit through every representation
// the flow produces — two-level PLA, Boolean network, decomposed
// subject DAG, mapped netlist — and proves each hand-off preserved the
// function, across a ladder of congestion factors K and across worker
// counts.
//
// Two properties are checked:
//
//  1. Function preservation. The front end (network construction and
//     NAND2/INV decomposition) is verified once per circuit; every
//     mapped netlist of every (K, workers) combination is verified
//     against the subject DAG with verify.Equivalent.
//
//  2. Determinism. The flow engine promises serial-identical results
//     for any worker count. The harness fingerprints each iteration —
//     the exported Verilog bytes plus the metrics row — and requires
//     byte-identical fingerprints across all configured worker counts.
//
// The harness is a library so both tests and tools can run it; the
// package's own test sweeps every circuit in examples/circuits.
package diffharness

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"casyn/internal/bnet"
	"casyn/internal/flow"
	"casyn/internal/library"
	"casyn/internal/logic"
	"casyn/internal/place"
	"casyn/internal/route"
	"casyn/internal/subject"
	"casyn/internal/verify"
)

// Config parameterizes a harness run. The zero value is not useful;
// use Default for the standard sweep.
type Config struct {
	// Ks is the congestion-factor ladder each circuit is mapped at.
	Ks []float64
	// Workers lists the flow worker counts to run and cross-compare;
	// every count must produce byte-identical iterations.
	Workers []int
	// Verify tunes the equivalence checker (zero value = defaults).
	Verify verify.Options
	// Utilization sets the die sizing fraction (0 = the calibrated
	// 0.58 used by the top-level API).
	Utilization float64
}

// Default is the sweep the acceptance tests run: the paper-relevant K
// range and serial vs parallel execution.
func Default() Config {
	return Config{
		Ks:      []float64{0, 0.5, 1, 2},
		Workers: []int{1, 4},
	}
}

// IterationCheck is the verdict for one (K, workers) iteration.
type IterationCheck struct {
	K float64
	// Report proves the mapped netlist equivalent to the subject DAG.
	Report *verify.Report
	// Fingerprint is a hex SHA-256 over the iteration's exported
	// Verilog and its metrics row; equal fingerprints mean
	// byte-identical results.
	Fingerprint string
}

// Result is a completed harness run for one circuit.
type Result struct {
	Name string
	// Network and Decompose prove the front-end hand-offs: PLA to
	// Boolean network, network to subject DAG.
	Network   *verify.Report
	Decompose *verify.Report
	// Runs maps each worker count to its per-K checks, in Ks order.
	Runs map[int][]IterationCheck
}

// Run drives one circuit through the full differential sweep. Any
// inequivalence, unproven verdict, or cross-worker divergence is an
// error; the Result describes a fully verified sweep.
func Run(ctx context.Context, name string, p *logic.PLA, cfg Config) (*Result, error) {
	if len(cfg.Ks) == 0 || len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("diffharness: %s: empty K schedule or worker list", name)
	}
	res := &Result{Name: name, Runs: make(map[int][]IterationCheck)}

	// Front end: PLA → Boolean network → subject DAG, each hand-off
	// proven before any mapping happens.
	n, err := bnet.FromPLA(p)
	if err != nil {
		return nil, fmt.Errorf("diffharness: %s: %w", name, err)
	}
	if res.Network, err = prove(ctx, name, "pla vs network", p, n, cfg.Verify); err != nil {
		return nil, err
	}
	d, err := subject.Decompose(n)
	if err != nil {
		return nil, fmt.Errorf("diffharness: %s: %w", name, err)
	}
	if res.Decompose, err = prove(ctx, name, "network vs dag", n, d, cfg.Verify); err != nil {
		return nil, err
	}

	// Back end: the K ladder under every worker count. All counts
	// share one prepared context — the flow's determinism guarantee is
	// over the prepared placement, not a fresh one per run.
	util := cfg.Utilization
	if util == 0 {
		util = 0.58
	}
	area := float64(d.BaseGateCount()) * 4.6 / util
	layout, err := place.NewLayout(area, 1.0, library.RowHeight)
	if err != nil {
		return nil, fmt.Errorf("diffharness: %s: %w", name, err)
	}
	fcfg := flow.Config{
		Layout:         layout,
		PlaceOpts:      place.Options{Seed: 1, RefinePasses: 8},
		RouteOpts:      route.Options{GCellSize: 26.6, RipupIterations: 6, CapacityScale: 1.98},
		FreshPlacement: true,
		KSchedule:      cfg.Ks,
	}
	pc, err := flow.Prepare(ctx, d, fcfg)
	if err != nil {
		return nil, fmt.Errorf("diffharness: %s: %w", name, err)
	}
	for _, w := range cfg.Workers {
		wcfg := fcfg
		wcfg.Workers = w
		fres, err := flow.Run(ctx, pc, wcfg)
		if err != nil {
			return nil, fmt.Errorf("diffharness: %s workers=%d: %w", name, w, err)
		}
		if len(fres.Iterations) != len(cfg.Ks) {
			return nil, fmt.Errorf("diffharness: %s workers=%d: %d iterations, want %d",
				name, w, len(fres.Iterations), len(cfg.Ks))
		}
		checks := make([]IterationCheck, 0, len(fres.Iterations))
		for _, it := range fres.Iterations {
			if it.Err != nil {
				return nil, fmt.Errorf("diffharness: %s workers=%d K=%g: %w", name, w, it.K, it.Err)
			}
			rep, err := prove(ctx, name, fmt.Sprintf("dag vs netlist (K=%g, workers=%d)", it.K, w),
				d, it.Netlist, cfg.Verify)
			if err != nil {
				return nil, err
			}
			fp, err := fingerprint(&it)
			if err != nil {
				return nil, fmt.Errorf("diffharness: %s workers=%d K=%g: %w", name, w, it.K, err)
			}
			checks = append(checks, IterationCheck{K: it.K, Report: rep, Fingerprint: fp})
		}
		res.Runs[w] = checks
	}

	// Determinism: every worker count must reproduce the first one,
	// byte for byte.
	base := res.Runs[cfg.Workers[0]]
	for _, w := range cfg.Workers[1:] {
		for i, c := range res.Runs[w] {
			if c.Fingerprint != base[i].Fingerprint {
				return nil, fmt.Errorf(
					"diffharness: %s K=%g: workers=%d diverges from workers=%d (fingerprint %s vs %s)",
					name, c.K, w, cfg.Workers[0], c.Fingerprint, base[i].Fingerprint)
			}
		}
	}
	return res, nil
}

// prove runs the checker and converts "not equivalent" and "equivalent
// but unproven" into errors: the harness demands proofs.
func prove(ctx context.Context, name, step string, a, b any, opts verify.Options) (*verify.Report, error) {
	rep, err := verify.Equivalent(ctx, a, b, opts)
	if err != nil {
		return nil, fmt.Errorf("diffharness: %s: %s: %w", name, step, err)
	}
	if !rep.Equivalent {
		return nil, fmt.Errorf("diffharness: %s: %s: NOT equivalent: %s", name, step, rep)
	}
	if !rep.Proven {
		return nil, fmt.Errorf("diffharness: %s: %s: unproven: %s", name, step, rep)
	}
	return rep, nil
}

// fingerprint hashes everything an iteration produced: the exported
// Verilog (cells, connectivity, placement-independent) and the metrics
// row (area, wirelength, congestion — placement- and routing-
// dependent). Two iterations with equal fingerprints are the same
// result, byte for byte.
func fingerprint(it *flow.Iteration) (string, error) {
	var sb strings.Builder
	if err := it.Netlist.WriteVerilog(&sb, "dut"); err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "\nK=%g cells=%d area=%.6f util=%.6f wl=%.6f failed=%d viol=%d routable=%v\n",
		it.K, it.NumCells, it.CellArea, it.Utilization, it.WireLength,
		it.FailedConnections, it.Violations, it.Routable)
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:]), nil
}

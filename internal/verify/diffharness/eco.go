package diffharness

// This file is the differential ECO harness: the incremental path
// (flow.RunStateful then a chain of flow.RunECO calls) is run against a
// seeded stream of random edit sets and required to be SHA-256-
// identical — Verilog bytes and metrics row — to a from-scratch
// synthesis of each edited design in the same placement context,
// across the K ladder and across worker counts. It is the executable
// form of RunECO's byte-identity contract.

import (
	"context"
	"fmt"
	"math/rand"

	"casyn/internal/bnet"
	"casyn/internal/flow"
	"casyn/internal/library"
	"casyn/internal/logic"
	"casyn/internal/mapper"
	"casyn/internal/place"
	"casyn/internal/route"
	"casyn/internal/subject"
	"casyn/internal/verify"
)

// ECOConfig parameterizes the ECO differential sweep. The zero value
// is not useful; use ECODefault for the standard run.
type ECOConfig struct {
	// Ks is the congestion-factor ladder the edit streams run at.
	Ks []float64
	// Workers lists the flow worker counts; every count must produce
	// byte-identical incremental results.
	Workers []int
	// Seed roots the deterministic edit streams (one stream per K,
	// identical across worker counts).
	Seed int64
	// Sets is the number of chained edit sets applied per K — each set
	// applies against the previous set's state, exercising ECO-of-ECO.
	Sets int
	// EditsPerSet is the number of operations drawn per edit set.
	EditsPerSet int
	// Verify tunes the equivalence checker (zero value = defaults).
	Verify verify.Options
	// Utilization sets the die sizing fraction (0 = the calibrated
	// 0.58 used by the top-level API).
	Utilization float64
}

// ECODefault is the sweep the acceptance tests run: both ends of the
// paper-relevant K range, serial vs parallel execution, two chained
// edit sets of four operations each.
func ECODefault() ECOConfig {
	return ECOConfig{
		Ks:          []float64{0, 1},
		Workers:     []int{1, 4},
		Seed:        1,
		Sets:        2,
		EditsPerSet: 4,
	}
}

// ECOCheck is the verdict for one edit set at one (K, workers): the
// incremental fingerprint and the from-scratch reference it matched.
type ECOCheck struct {
	K     float64
	Set   int
	Edits int
	// Fingerprint hashes the incremental iteration; Reference hashes
	// the from-scratch synthesis of the same edited design. RunECOSweep
	// fails unless they are equal, so a returned check always has
	// Fingerprint == Reference.
	Fingerprint string
	Reference   string
}

// ECOResult is a completed ECO harness run for one circuit.
type ECOResult struct {
	Name string
	// Base proves RunStateful's passive state capture: the base
	// iteration's fingerprint per K, checked byte-identical to a plain
	// RunOnce at the same K.
	Base map[float64]string
	// Checks maps each worker count to its per-(K, set) verdicts in
	// K-major, set-minor order.
	Checks map[int][]ECOCheck
	// Proofs holds the equivalence reports proving each edited
	// netlist against its edited subject DAG (one per (K, set)).
	Proofs []*verify.Report
}

// RunECOSweep drives one circuit through the ECO differential sweep.
// Any divergence between the incremental and from-scratch results, any
// cross-worker divergence, or any failed equivalence proof is an
// error; the Result describes a fully verified sweep.
func RunECOSweep(ctx context.Context, name string, p *logic.PLA, cfg ECOConfig) (*ECOResult, error) {
	if len(cfg.Ks) == 0 || len(cfg.Workers) == 0 || cfg.Sets <= 0 || cfg.EditsPerSet <= 0 {
		return nil, fmt.Errorf("diffharness: %s: degenerate ECO config", name)
	}
	n, err := bnet.FromPLA(p)
	if err != nil {
		return nil, fmt.Errorf("diffharness: %s: %w", name, err)
	}
	d, err := subject.Decompose(n)
	if err != nil {
		return nil, fmt.Errorf("diffharness: %s: %w", name, err)
	}
	util := cfg.Utilization
	if util == 0 {
		util = 0.58
	}
	area := float64(d.BaseGateCount()) * 4.6 / util
	layout, err := place.NewLayout(area, 1.0, library.RowHeight)
	if err != nil {
		return nil, fmt.Errorf("diffharness: %s: %w", name, err)
	}
	// Seeded placement (the paper's methodology and the top-level API
	// default) so nudge and swap edits flow through legalization into
	// the routed result, not just the cover's wire estimates.
	// One explicit library pointer threads through every call: the ECO
	// state's Compatible check is by pointer, and library.Default()
	// allocates per call.
	fcfg := flow.Config{
		Layout:    layout,
		Lib:       library.Default(),
		PlaceOpts: place.Options{Seed: 1, RefinePasses: 8},
		RouteOpts: route.Options{GCellSize: 26.6, RipupIterations: 6, CapacityScale: 1.98},
		KSchedule: cfg.Ks,
	}
	pc, err := flow.Prepare(ctx, d, fcfg)
	if err != nil {
		return nil, fmt.Errorf("diffharness: %s: %w", name, err)
	}
	if err := flow.PrepareMapping(ctx, pc, fcfg); err != nil {
		return nil, fmt.Errorf("diffharness: %s: %w", name, err)
	}

	res := &ECOResult{Name: name, Base: make(map[float64]string), Checks: make(map[int][]ECOCheck)}
	// From-scratch reference fingerprints, computed once per (K, set)
	// on the first worker count and reused by the rest — which is
	// exactly what makes the cross-worker comparison transitive.
	type refKey struct{ ki, set int }
	refs := make(map[refKey]string)

	for wi, w := range cfg.Workers {
		wcfg := fcfg
		wcfg.Workers = w
		checks := make([]ECOCheck, 0, len(cfg.Ks)*cfg.Sets)
		for ki, k := range cfg.Ks {
			// One deterministic edit stream per K, replayed identically
			// for every worker count.
			rng := rand.New(rand.NewSource(cfg.Seed + int64(ki)))
			baseIt, st, err := flow.RunStateful(ctx, pc, k, wcfg)
			if err != nil {
				return nil, fmt.Errorf("diffharness: %s workers=%d K=%g: base: %w", name, w, k, err)
			}
			if wi == 0 {
				// State capture must be passive: the stateful base run
				// is byte-identical to a plain RunOnce.
				plain, err := flow.RunOnce(ctx, pc, k, wcfg)
				if err != nil {
					return nil, fmt.Errorf("diffharness: %s workers=%d K=%g: runonce: %w", name, w, k, err)
				}
				bfp, err := fingerprint(&baseIt)
				if err != nil {
					return nil, fmt.Errorf("diffharness: %s K=%g: %w", name, k, err)
				}
				pfp, err := fingerprint(&plain)
				if err != nil {
					return nil, fmt.Errorf("diffharness: %s K=%g: %w", name, k, err)
				}
				if bfp != pfp {
					return nil, fmt.Errorf("diffharness: %s K=%g: RunStateful diverges from RunOnce (%s vs %s)",
						name, k, bfp, pfp)
				}
				res.Base[k] = bfp
			}
			for set := 0; set < cfg.Sets; set++ {
				edits := mapper.RandomEdits(st.Prep, rng, cfg.EditsPerSet)
				if len(edits.Edits) == 0 {
					return nil, fmt.Errorf("diffharness: %s K=%g set=%d: design too small for random edits", name, k, set)
				}
				eit, st2, err := flow.RunECO(ctx, pc, st, edits, wcfg)
				if err != nil {
					return nil, fmt.Errorf("diffharness: %s workers=%d K=%g set=%d: eco: %w", name, w, k, set, err)
				}
				fp, err := fingerprint(&eit)
				if err != nil {
					return nil, fmt.Errorf("diffharness: %s K=%g set=%d: %w", name, k, set, err)
				}
				key := refKey{ki, set}
				want, ok := refs[key]
				if !ok {
					// From-scratch synthesis of the edited design in the
					// same placement context: a fresh flow context built
					// from the successor state's DAG and positions, run
					// through the ordinary (non-ECO) iteration.
					refPC := &flow.Context{
						DAG:    st2.Prep.DAG(),
						Pos:    st2.Prep.Pos(),
						POPads: st2.Prep.POPads(),
						PIPads: pc.PIPads,
						POList: pc.POList,
					}
					refIt, err := flow.RunOnce(ctx, refPC, k, wcfg)
					if err != nil {
						return nil, fmt.Errorf("diffharness: %s K=%g set=%d: reference: %w", name, k, set, err)
					}
					if want, err = fingerprint(&refIt); err != nil {
						return nil, fmt.Errorf("diffharness: %s K=%g set=%d: %w", name, k, set, err)
					}
					refs[key] = want
					// The edits changed the function on purpose; the
					// proof obligation is against the edited DAG.
					rep, err := prove(ctx, name, fmt.Sprintf("edited dag vs eco netlist (K=%g, set=%d)", k, set),
						st2.Prep.DAG(), eit.Netlist, cfg.Verify)
					if err != nil {
						return nil, err
					}
					res.Proofs = append(res.Proofs, rep)
				}
				if fp != want {
					return nil, fmt.Errorf(
						"diffharness: %s workers=%d K=%g set=%d (%d edits): incremental diverges from from-scratch (%s vs %s)",
						name, w, k, set, len(edits.Edits), fp, want)
				}
				checks = append(checks, ECOCheck{K: k, Set: set, Edits: len(edits.Edits), Fingerprint: fp, Reference: want})
				st = st2
			}
		}
		res.Checks[w] = checks
	}
	return res, nil
}

package diffharness

import (
	"context"
	"testing"
)

// TestECOSweepEveryExampleCircuit is the ECO acceptance sweep: every
// example circuit × a seeded stream of random edit sets × K ∈ {0, 1}
// × workers ∈ {1, 4}; every incremental result byte-identical to the
// from-scratch synthesis of the edited design, every edited netlist
// proven equivalent to its edited subject DAG.
func TestECOSweepEveryExampleCircuit(t *testing.T) {
	t.Parallel()
	cfg := ECODefault()
	for name, p := range corpus(t) {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res, err := RunECOSweep(context.Background(), name, p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Base) != len(cfg.Ks) {
				t.Fatalf("%d base fingerprints, want %d", len(res.Base), len(cfg.Ks))
			}
			want := len(cfg.Ks) * cfg.Sets
			for _, w := range cfg.Workers {
				checks, ok := res.Checks[w]
				if !ok {
					t.Fatalf("no checks for workers=%d", w)
				}
				if len(checks) != want {
					t.Fatalf("workers=%d: %d checks, want %d", w, len(checks), want)
				}
				for _, c := range checks {
					if c.Fingerprint == "" || c.Fingerprint != c.Reference {
						t.Errorf("workers=%d K=%g set=%d: fingerprint %q does not match reference %q",
							w, c.K, c.Set, c.Fingerprint, c.Reference)
					}
					if c.Edits == 0 {
						t.Errorf("workers=%d K=%g set=%d: empty edit set slipped through", w, c.K, c.Set)
					}
				}
			}
			if len(res.Proofs) != want {
				t.Fatalf("%d equivalence proofs, want %d", len(res.Proofs), want)
			}
			for i, rep := range res.Proofs {
				if !rep.Proven {
					t.Errorf("proof %d unproven", i)
				}
			}
		})
	}
}

// TestECOSweepRejectsDegenerateConfig: an empty ladder, worker list,
// or edit budget is an error, not a vacuous pass.
func TestECOSweepRejectsDegenerateConfig(t *testing.T) {
	t.Parallel()
	p := corpus(t)["dec24"]
	if p == nil {
		t.Skip("dec24 example missing")
	}
	for _, cfg := range []ECOConfig{
		{},
		{Ks: []float64{0}, Workers: []int{1}, Sets: 0, EditsPerSet: 4},
		{Ks: []float64{0}, Workers: []int{1}, Sets: 1, EditsPerSet: 0},
		{Ks: []float64{0}, Workers: nil, Sets: 1, EditsPerSet: 4},
	} {
		if _, err := RunECOSweep(context.Background(), "dec24", p, cfg); err == nil {
			t.Errorf("degenerate config %+v did not error", cfg)
		}
	}
}

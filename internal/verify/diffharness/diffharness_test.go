package diffharness

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"casyn/internal/logic"
	"casyn/internal/verify"
)

// circuitsDir is the shared example corpus, relative to this package.
const circuitsDir = "../../../examples/circuits"

// corpus loads every example circuit, failing the test if the corpus
// is missing or empty (a silent empty glob would vacuously pass).
func corpus(t *testing.T) map[string]*logic.PLA {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(circuitsDir, "*.pla"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no example circuits in %s", circuitsDir)
	}
	out := make(map[string]*logic.PLA, len(paths))
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		p, err := logic.ReadPLA(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		out[strings.TrimSuffix(filepath.Base(path), ".pla")] = p
	}
	return out
}

// TestSweepEveryExampleCircuit is the acceptance sweep: every example
// circuit, K ∈ {0, 0.5, 1, 2}, workers ∈ {1, 4}; every hand-off
// proven, every worker count byte-identical.
func TestSweepEveryExampleCircuit(t *testing.T) {
	t.Parallel()
	for name, p := range corpus(t) {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(context.Background(), name, p, Default())
			if err != nil {
				t.Fatal(err)
			}
			if res.Network == nil || res.Decompose == nil {
				t.Fatal("front-end reports missing")
			}
			for _, w := range []int{1, 4} {
				checks, ok := res.Runs[w]
				if !ok {
					t.Fatalf("no run for workers=%d", w)
				}
				if len(checks) != 4 {
					t.Fatalf("workers=%d: %d checks, want 4", w, len(checks))
				}
				for _, c := range checks {
					if !c.Report.Proven {
						t.Errorf("workers=%d K=%g: unproven", w, c.K)
					}
					if c.Fingerprint == "" {
						t.Errorf("workers=%d K=%g: empty fingerprint", w, c.K)
					}
				}
			}
		})
	}
}

// TestHarnessRejectsEmptyConfig: a degenerate sweep is an error, not a
// vacuous pass.
func TestHarnessRejectsEmptyConfig(t *testing.T) {
	t.Parallel()
	p := corpus(t)["dec24"]
	if p == nil {
		t.Skip("dec24 example missing")
	}
	if _, err := Run(context.Background(), "dec24", p, Config{}); err == nil {
		t.Error("empty config did not error")
	}
}

// TestHarnessHonorsVerifyOpts: forcing SimOnly makes every proof
// impossible, and the harness (which demands proofs) must say so
// rather than pass vacuously.
func TestHarnessHonorsVerifyOpts(t *testing.T) {
	t.Parallel()
	p := corpus(t)["dec24"]
	if p == nil {
		t.Skip("dec24 example missing")
	}
	cfg := Default()
	cfg.Ks = []float64{0}
	cfg.Workers = []int{1}
	cfg.Verify = verify.Options{SimOnly: true}
	_, err := Run(context.Background(), "dec24", p, cfg)
	if err == nil || !strings.Contains(err.Error(), "unproven") {
		t.Errorf("want unproven error, got %v", err)
	}
}

package verify

import (
	"context"
	"strings"
	"testing"
)

// TestCircuitFolding: the builder's structural simplifications — every
// identity must hold both structurally (node reuse) and semantically.
func TestCircuitFolding(t *testing.T) {
	t.Parallel()
	c := NewCircuit("fold")
	x := c.Input("x")
	y := c.Input("y")
	t0 := c.Const(false)
	t1 := c.Const(true)

	if c.Not(c.Not(x)) != x {
		t.Error("double negation not folded")
	}
	if c.Not(t0) != t1 || c.Not(t1) != t0 {
		t.Error("constant NOT not folded")
	}
	if c.And(x, t0) != t0 || c.And(t0, x) != t0 {
		t.Error("AND with 0 not folded")
	}
	if c.And(x, t1) != x || c.And(t1, x) != x {
		t.Error("AND with 1 not folded")
	}
	if c.And(x, x) != x {
		t.Error("AND idempotence not folded")
	}
	if c.Or(x, t1) != t1 || c.Or(t1, x) != t1 {
		t.Error("OR with 1 not folded")
	}
	if c.Or(x, t0) != x || c.Or(t0, x) != x {
		t.Error("OR with 0 not folded")
	}
	if c.Or(x, x) != x {
		t.Error("OR idempotence not folded")
	}
	if c.Nand(x, t0) != t1 || c.Nand(t0, x) != t1 {
		t.Error("NAND with 0 not folded")
	}
	if c.Nand(x, t1) != c.Not(x) || c.Nand(t1, x) != c.Not(x) {
		t.Error("NAND with 1 not folded to NOT")
	}
	if c.Nand(x, x) != c.Not(x) {
		t.Error("NAND idempotence not folded to NOT")
	}
	// Commutativity through operand canonicalization.
	if c.And(x, y) != c.And(y, x) || c.Or(x, y) != c.Or(y, x) || c.Nand(x, y) != c.Nand(y, x) {
		t.Error("binary ops not canonicalized for commutativity")
	}
	// Structural hashing: rebuilding the same expression adds nothing.
	before := c.NumNodes()
	c.And(x, y)
	c.Or(x, y)
	c.Nand(x, y)
	if c.NumNodes() != before {
		t.Errorf("structural hash missed: %d nodes, had %d", c.NumNodes(), before)
	}
}

// TestCircuitInterfaceValidation: the malformed interfaces Equivalent
// must reject.
func TestCircuitInterfaceValidation(t *testing.T) {
	t.Parallel()
	noOut := NewCircuit("noOut")
	noOut.Input("x")
	dupOut := NewCircuit("dupOut")
	x := dupOut.Input("x")
	dupOut.AddOutput("o", x)
	dupOut.AddOutput("o", dupOut.Not(x))
	dupIn := NewCircuit("dupIn")
	a := dupIn.Input("x")
	b := dupIn.Input("x")
	dupIn.AddOutput("o", dupIn.And(a, b))
	good := NewCircuit("good")
	g := good.Input("x")
	good.AddOutput("o", g)

	for _, tc := range []struct {
		name string
		c    *Circuit
		want string
	}{
		{"no outputs", noOut, "no outputs"},
		{"duplicate output", dupOut, "duplicate output"},
		{"duplicate input", dupIn, "duplicate input"},
	} {
		_, err := Equivalent(context.Background(), tc.c, good, Options{})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
		// Malformed circuits are rejected on either side.
		_, err = Equivalent(context.Background(), good, tc.c, Options{})
		if err == nil {
			t.Errorf("%s as second operand: accepted", tc.name)
		}
	}
}

// TestCircuitEvalArity: evaluating with the wrong input count is an
// error, not a silent truncation.
func TestCircuitEvalArity(t *testing.T) {
	t.Parallel()
	c := NewCircuit("arity")
	x := c.Input("x")
	c.AddOutput("o", x)
	if _, err := NewWordEval(c).Eval(nil); err == nil {
		t.Error("word eval accepted wrong arity")
	}
	if _, err := c.EvalVector([]bool{true, false}); err == nil {
		t.Error("vector eval accepted wrong arity")
	}
}

// TestReportAndCounterexampleStrings: the human-readable forms carry
// the verdict, the method, and the vector.
func TestReportAndCounterexampleStrings(t *testing.T) {
	t.Parallel()
	a := NewCircuit("lhs")
	x := a.Input("x")
	a.AddOutput("o", x)
	b := NewCircuit("rhs")
	y := b.Input("x")
	b.AddOutput("o", b.Not(y))

	rep, err := Equivalent(context.Background(), a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	if !strings.Contains(s, "NOT equivalent") || !strings.Contains(s, "lhs") || !strings.Contains(s, "rhs") {
		t.Errorf("inequivalent report %q lacks verdict or names", s)
	}
	if rep.Counterexample == nil {
		t.Fatal("no counterexample")
	}
	cs := rep.Counterexample.String()
	if !strings.Contains(cs, "x=") || !strings.Contains(cs, "o:") {
		t.Errorf("counterexample %q lacks assignment or output", cs)
	}

	rep, err = Equivalent(context.Background(), a, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := rep.String(); !strings.Contains(s, "equivalent") || strings.Contains(s, "NOT") {
		t.Errorf("equivalent report reads wrong: %q", s)
	}

	rep, err = Equivalent(context.Background(), a, a, Options{SimOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if s := rep.String(); !strings.Contains(s, "unproven") {
		t.Errorf("unproven report not marked: %q", s)
	}
}

package verify

import (
	"fmt"

	"casyn/internal/bnet"
	"casyn/internal/library"
	"casyn/internal/logic"
	"casyn/internal/netlist"
	"casyn/internal/subject"
)

// Compile lowers any supported circuit representation to the common
// IR. Supported types: *Circuit (returned as-is), *bnet.Network,
// *subject.DAG, *netlist.Netlist, and *logic.PLA.
func Compile(v any) (*Circuit, error) {
	switch x := v.(type) {
	case *Circuit:
		return x, nil
	case *bnet.Network:
		return FromNetwork(x)
	case *subject.DAG:
		return FromDAG(x)
	case *netlist.Netlist:
		return FromNetlist(x)
	case *logic.PLA:
		return FromPLA(x)
	default:
		return nil, fmt.Errorf("verify: unsupported circuit type %T", v)
	}
}

// FromNetwork compiles a Boolean network: each internal node's SOP
// becomes an OR of cube ANDs over its fanin nodes; POs take their
// driving literal's phase. An internal node with a nil function (a
// swept node or a constant-false function) compiles to constant false,
// matching subject.Decompose.
func FromNetwork(n *bnet.Network) (*Circuit, error) {
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	c := NewCircuit("bnet")
	sig := make([]int32, n.NumNodes())
	for i := range sig {
		sig[i] = -1
	}
	lit := func(l bnet.Lit) (int32, error) {
		g := sig[l.Node]
		if g < 0 {
			return 0, fmt.Errorf("verify: bnet literal references unbuilt node %d", l.Node)
		}
		if l.Neg {
			g = c.Not(g)
		}
		return g, nil
	}
	for _, id := range order {
		nd := n.Node(id)
		switch nd.Kind {
		case bnet.KindPI:
			sig[id] = c.Input(nd.Name)
		case bnet.KindInternal:
			root := c.Const(false)
			for _, cube := range nd.Fn {
				term := c.Const(true)
				for _, l := range cube {
					g, err := lit(l)
					if err != nil {
						return nil, err
					}
					term = c.And(term, g)
				}
				root = c.Or(root, term)
			}
			sig[id] = root
		case bnet.KindPO:
			if len(nd.Fn) != 1 || len(nd.Fn[0]) != 1 {
				return nil, fmt.Errorf("verify: PO %q has non-literal function", nd.Name)
			}
			g, err := lit(nd.Fn[0][0])
			if err != nil {
				return nil, err
			}
			c.AddOutput(nd.Name, g)
		}
	}
	return c, c.checkInterface()
}

// FromDAG compiles a subject DAG of NAND2/INV base gates.
func FromDAG(d *subject.DAG) (*Circuit, error) {
	c := NewCircuit("subject")
	sig := make([]int32, d.NumGates())
	// TopoOrder is ascending IDs on a replica-free DAG and a genuine
	// DFS order once the k-way partitioner has replicated gates.
	for _, id := range d.TopoOrder() {
		g := d.Gate(id)
		switch g.Type {
		case subject.PI:
			sig[id] = c.Input(g.Name)
		case subject.Const0:
			sig[id] = c.Const(false)
		case subject.Const1:
			sig[id] = c.Const(true)
		case subject.Inv:
			sig[id] = c.Not(sig[g.In[0]])
		case subject.Nand2:
			sig[id] = c.Nand(sig[g.In[0]], sig[g.In[1]])
		default:
			return nil, fmt.Errorf("verify: unknown gate type %v", g.Type)
		}
	}
	for _, o := range d.Outputs() {
		c.AddOutput(o.Name, sig[o.Gate])
	}
	return c, c.checkInterface()
}

// FromNetlist compiles a technology-mapped netlist by expanding every
// instance's selected cell pattern (a NAND2/INV tree) over its input
// signals, with the pattern variables bound in
// Cell.Patterns[PatternIndex].Vars() order — exactly the binding the
// mapper committed.
func FromNetlist(nl *netlist.Netlist) (*Circuit, error) {
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	c := NewCircuit("netlist")
	sig := make([]int32, len(nl.Signals))
	for i := range sig {
		sig[i] = -1
	}
	for _, s := range nl.Signals {
		switch s.Kind {
		case netlist.SigPI:
			sig[s.ID] = c.Input(s.Name)
		case netlist.SigConst0:
			sig[s.ID] = c.Const(false)
		case netlist.SigConst1:
			sig[s.ID] = c.Const(true)
		}
	}
	for _, ii := range order {
		inst := &nl.Instances[ii]
		pat := inst.Cell.Patterns[inst.PatternIndex]
		vars := pat.Vars()
		if len(vars) != len(inst.Inputs) {
			return nil, fmt.Errorf("verify: instance %s has %d inputs for %d pattern vars",
				inst.Name, len(inst.Inputs), len(vars))
		}
		binding := make(map[string]int32, len(vars))
		for vi, v := range vars {
			in := sig[inst.Inputs[vi]]
			if in < 0 {
				return nil, fmt.Errorf("verify: instance %s input signal %d has no driver node", inst.Name, inst.Inputs[vi])
			}
			binding[v] = in
		}
		root, err := compilePattern(c, pat, binding)
		if err != nil {
			return nil, fmt.Errorf("verify: instance %s: %w", inst.Name, err)
		}
		sig[inst.Output] = root
	}
	for _, po := range nl.POs {
		g := sig[po.Sig]
		if g < 0 {
			return nil, fmt.Errorf("verify: PO %q signal has no driver node", po.Name)
		}
		c.AddOutput(po.Name, g)
	}
	return c, c.checkInterface()
}

// compilePattern lowers a library pattern tree under a variable
// binding.
func compilePattern(c *Circuit, p *library.Pattern, binding map[string]int32) (int32, error) {
	switch p.Op {
	case library.OpVar:
		g, ok := binding[p.Var]
		if !ok {
			return 0, fmt.Errorf("unbound pattern variable %q", p.Var)
		}
		return g, nil
	case library.OpInv:
		k, err := compilePattern(c, p.Kids[0], binding)
		if err != nil {
			return 0, err
		}
		return c.Not(k), nil
	case library.OpNand2:
		a, err := compilePattern(c, p.Kids[0], binding)
		if err != nil {
			return 0, err
		}
		b, err := compilePattern(c, p.Kids[1], binding)
		if err != nil {
			return 0, err
		}
		return c.Nand(a, b), nil
	default:
		return 0, fmt.Errorf("invalid pattern op %d", p.Op)
	}
}

// FromPLA compiles a two-level PLA directly: each output is the OR of
// its product terms. Input/output names follow the PLA's .ilb/.ob
// declarations with the same in<i>/out<o> defaults bnet.FromPLA uses,
// so a PLA verifies against the network built from it.
func FromPLA(p *logic.PLA) (*Circuit, error) {
	c := NewCircuit("pla")
	ins := make([]int32, p.NumInputs)
	for i := range ins {
		name := fmt.Sprintf("in%d", i)
		if i < len(p.InputNames) && p.InputNames[i] != "" {
			name = p.InputNames[i]
		}
		ins[i] = c.Input(name)
	}
	for o := 0; o < p.NumOutputs; o++ {
		root := c.Const(false)
		for t, cube := range p.Terms {
			if !p.Outputs[t][o] {
				continue
			}
			term := c.Const(true)
			for i := 0; i < p.NumInputs; i++ {
				switch cube.Lit(i) {
				case 1:
					term = c.And(term, ins[i])
				case -1:
					term = c.And(term, c.Not(ins[i]))
				}
			}
			root = c.Or(root, term)
		}
		name := fmt.Sprintf("out%d", o)
		if o < len(p.OutputNames) && p.OutputNames[o] != "" {
			name = p.OutputNames[o]
		}
		c.AddOutput(name, root)
	}
	return c, c.checkInterface()
}

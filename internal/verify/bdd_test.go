package verify

import (
	"context"
	"testing"
)

// TestBDDCanonicity: structurally different but functionally equal
// builds reach the same node; different functions reach different
// nodes.
func TestBDDCanonicity(t *testing.T) {
	t.Parallel()
	m := newBDDManager(context.Background(), 3, 1<<16)
	x, _ := m.variable(0)
	y, _ := m.variable(1)
	z, _ := m.variable(2)
	// (x ∧ y) ∨ (x ∧ z) vs x ∧ (y ∨ z)
	xy, err := m.apply(bddAnd, x, y)
	if err != nil {
		t.Fatal(err)
	}
	xz, err := m.apply(bddAnd, x, z)
	if err != nil {
		t.Fatal(err)
	}
	lhs, err := m.apply(bddOr, xy, xz)
	if err != nil {
		t.Fatal(err)
	}
	yz, err := m.apply(bddOr, y, z)
	if err != nil {
		t.Fatal(err)
	}
	rhs, err := m.apply(bddAnd, x, yz)
	if err != nil {
		t.Fatal(err)
	}
	if lhs != rhs {
		t.Errorf("distributivity not canonical: %d vs %d", lhs, rhs)
	}
	other, err := m.apply(bddOr, x, yz)
	if err != nil {
		t.Fatal(err)
	}
	if other == lhs {
		t.Error("distinct functions share a node")
	}
}

// TestBDDNotInvolution: ¬¬f == f through the XOR-based complement.
func TestBDDNotInvolution(t *testing.T) {
	t.Parallel()
	m := newBDDManager(context.Background(), 2, 1<<16)
	x, _ := m.variable(0)
	y, _ := m.variable(1)
	f, err := m.apply(bddAnd, x, y)
	if err != nil {
		t.Fatal(err)
	}
	nf, err := m.not(f)
	if err != nil {
		t.Fatal(err)
	}
	nnf, err := m.not(nf)
	if err != nil {
		t.Fatal(err)
	}
	if nnf != f {
		t.Errorf("double complement not canonical: %d vs %d", nnf, f)
	}
}

// TestBDDSatVector: the extracted assignment satisfies the function it
// was extracted from.
func TestBDDSatVector(t *testing.T) {
	t.Parallel()
	m := newBDDManager(context.Background(), 4, 1<<16)
	// f = x0 ∧ ¬x2 ∧ x3
	x0, _ := m.variable(0)
	x2, _ := m.variable(2)
	x3, _ := m.variable(3)
	n2, err := m.not(x2)
	if err != nil {
		t.Fatal(err)
	}
	f, err := m.apply(bddAnd, x0, n2)
	if err != nil {
		t.Fatal(err)
	}
	f, err = m.apply(bddAnd, f, x3)
	if err != nil {
		t.Fatal(err)
	}
	vec := m.satVector(f, 4)
	if !vec[0] || vec[2] || !vec[3] {
		t.Errorf("satVector %v does not satisfy x0∧¬x2∧x3", vec)
	}
}

// TestBDDBudgetError: the node budget surfaces as errBDDBudget.
func TestBDDBudgetError(t *testing.T) {
	t.Parallel()
	m := newBDDManager(context.Background(), 8, 4)
	x, err := m.variable(0)
	if err != nil {
		t.Fatal(err)
	}
	y, err := m.variable(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.apply(bddAnd, x, y); err != errBDDBudget {
		t.Errorf("want errBDDBudget, got %v", err)
	}
}

package verify

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"casyn/internal/bnet"
	"casyn/internal/library"
	"casyn/internal/logic"
	"casyn/internal/mapper"
	"casyn/internal/place"
	"casyn/internal/subject"
)

// quickstartPLA is the README/quickstart design: a 4-bit prime
// detector plus two side functions.
const quickstartPLA = `
.i 4
.o 3
.ilb x0 x1 x2 x3
.ob prime carry any
.p 9
0100 100
0110 100
1010 100
1110 100
1011 100
1101 100
11-- 010
--11 010
1--- 001
-1-- 001
`

func mustPLA(t *testing.T, src string) *logic.PLA {
	t.Helper()
	p, err := logic.ReadPLA(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// randomPLA builds a random multi-output PLA for property-style tests.
func randomPLA(rng *rand.Rand, ni, no, terms int) *logic.PLA {
	p := logic.NewPLA(ni, no)
	for t := 0; t < terms; t++ {
		cb := logic.NewCube(ni)
		for i := 0; i < ni; i++ {
			switch rng.Intn(3) {
			case 0:
				cb.SetPos(i)
			case 1:
				cb.SetNeg(i)
			}
		}
		outs := make([]bool, no)
		outs[rng.Intn(no)] = true
		for o := range outs {
			if rng.Intn(4) == 0 {
				outs[o] = true
			}
		}
		if err := p.AddTerm(cb, outs); err != nil {
			panic(err)
		}
	}
	return p
}

// mapPLA runs the front half of the pipeline: PLA → network → subject
// DAG → placed → mapped netlist at the given K.
func mapPLA(t *testing.T, p *logic.PLA, k float64) (*bnet.Network, *subject.DAG, *mapper.Result) {
	t.Helper()
	n, err := bnet.FromPLA(p)
	if err != nil {
		t.Fatal(err)
	}
	d, err := subject.Decompose(n)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := place.NewLayout(float64(d.BaseGateCount())*4.6/0.58+200, 1.0, library.RowHeight)
	if err != nil {
		t.Fatal(err)
	}
	pos, poPads, _, _, err := mapper.SubjectPlacement(context.Background(), d, layout, place.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mres, err := mapper.Map(context.Background(), d, mapper.Input{Pos: pos, POPads: poPads}, mapper.Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	return n, d, mres
}

func TestEquivalentAcrossRepresentations(t *testing.T) {
	t.Parallel()
	p := mustPLA(t, quickstartPLA)
	n, d, mres := mapPLA(t, p, 0.001)
	pairs := []struct {
		name string
		a, b any
	}{
		{"pla-bnet", p, n},
		{"bnet-dag", n, d},
		{"dag-netlist", d, mres.Netlist},
		{"pla-netlist", p, mres.Netlist},
	}
	for _, pair := range pairs {
		rep, err := Equivalent(context.Background(), pair.a, pair.b, Options{})
		if err != nil {
			t.Fatalf("%s: %v", pair.name, err)
		}
		if !rep.Equivalent || !rep.Proven {
			t.Errorf("%s: want proven equivalent, got %s", pair.name, rep)
		}
	}
}

// TestCorruptedNetlistYieldsCounterexample swaps one gate's cell in
// the mapped netlist (NAND2 → NOR2, same arity, different function)
// and checks the checker refutes with a concrete vector — the
// acceptance demonstration of the issue.
func TestCorruptedNetlistYieldsCounterexample(t *testing.T) {
	t.Parallel()
	p := mustPLA(t, quickstartPLA)
	_, d, mres := mapPLA(t, p, 0)
	nl := mres.Netlist
	lib := library.Default()
	corrupted := false
	for i := range nl.Instances {
		if nl.Instances[i].Cell.Name == "NAND2" {
			nl.Instances[i].Cell = lib.Cell("NOR2")
			nl.Instances[i].PatternIndex = 0
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Fatal("mapped netlist contains no NAND2 to corrupt")
	}
	rep, err := Equivalent(context.Background(), d, nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Equivalent {
		t.Fatalf("corrupted netlist reported equivalent: %s", rep)
	}
	cex := rep.Counterexample
	if cex == nil {
		t.Fatal("no counterexample on inequivalence")
	}
	// The counterexample must actually distinguish the two circuits.
	cd, err := Compile(d)
	if err != nil {
		t.Fatal(err)
	}
	cn, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	av, err := cd.EvalVector(cex.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	// Re-order the vector for the netlist's own input ordering.
	nlIn := make([]bool, len(cex.Inputs))
	pos := map[string]int{}
	for i, name := range cd.InputNames() {
		pos[name] = i
	}
	for j, name := range cn.InputNames() {
		nlIn[j] = cex.Inputs[pos[name]]
	}
	bv, err := cn.EvalVector(nlIn)
	if err != nil {
		t.Fatal(err)
	}
	oa, ob := -1, -1
	for i, name := range cd.OutputNames() {
		if name == cex.Output {
			oa = i
		}
	}
	for i, name := range cn.OutputNames() {
		if name == cex.Output {
			ob = i
		}
	}
	if oa < 0 || ob < 0 {
		t.Fatalf("counterexample output %q not found", cex.Output)
	}
	if av[oa] == bv[ob] {
		t.Errorf("counterexample %s does not distinguish the circuits", cex)
	}
	if av[oa] != cex.AValue || bv[ob] != cex.BValue {
		t.Errorf("counterexample values disagree with report: %s", cex)
	}
}

func TestInterfaceMismatchIsError(t *testing.T) {
	t.Parallel()
	a := NewCircuit("a")
	a.AddOutput("f", a.Input("x"))
	b := NewCircuit("b")
	b.AddOutput("g", b.Input("x"))
	if _, err := Equivalent(context.Background(), a, b, Options{}); err == nil {
		t.Error("mismatched output names accepted")
	}
	c := NewCircuit("c")
	c.AddOutput("f", c.And(c.Input("x"), c.Input("y")))
	if _, err := Equivalent(context.Background(), a, c, Options{}); err == nil {
		t.Error("mismatched input counts accepted")
	}
}

func TestUnsupportedTypeIsError(t *testing.T) {
	t.Parallel()
	if _, err := Equivalent(context.Background(), 42, 43, Options{}); err == nil {
		t.Error("unsupported representation accepted")
	}
}

// TestSimulationRefutesWideCircuit checks that on a wide (>11 input)
// inequivalent pair, the directed/random simulation pass refutes
// before any exact engine is needed.
func TestSimulationRefutesWideCircuit(t *testing.T) {
	t.Parallel()
	const n = 24
	a := NewCircuit("a")
	b := NewCircuit("b")
	var ax, bx []int32
	for i := 0; i < n; i++ {
		name := "x" + string(rune('a'+i))
		ax = append(ax, a.Input(name))
		bx = append(bx, b.Input(name))
	}
	fa, fb := ax[0], bx[0]
	for i := 1; i < n; i++ {
		fa = a.And(fa, ax[i])
		fb = b.And(fb, bx[i])
	}
	a.AddOutput("f", fa)
	// b computes AND of all but the last input: differs only on
	// vectors where x[n-1]=0 and all others 1 — directed sensitization
	// from the all-ones base catches it.
	b.AddOutput("f", b.And(fb, b.Not(bx[n-1])))
	rep, err := Equivalent(context.Background(), a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Equivalent {
		t.Fatalf("inequivalent wide pair reported equivalent: %s", rep)
	}
	if rep.Counterexample == nil {
		t.Fatal("no counterexample")
	}
}

// TestBDDProvesWideEquivalence checks the BDD backend proves a >20
// input identity that neither exhaustive enumeration (too wide) nor
// simulation (not a proof) could.
func TestBDDProvesWideEquivalence(t *testing.T) {
	t.Parallel()
	const n = 24
	a := NewCircuit("a")
	b := NewCircuit("b")
	fa, fb := a.Const(false), b.Const(true)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = "v" + string(rune('a'+i))
	}
	for i := 0; i < n; i++ {
		fa = a.Or(fa, a.Input(names[i]))
	}
	// De Morgan: OR(x...) == NOT(AND(NOT(x)...)).
	for i := 0; i < n; i++ {
		fb = b.And(fb, b.Not(b.Input(names[i])))
	}
	a.AddOutput("f", fa)
	b.AddOutput("f", b.Not(fb))
	rep, err := Equivalent(context.Background(), a, b, Options{MaxExhaustiveInputs: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equivalent || !rep.Proven || rep.Method != MethodBDD {
		t.Errorf("want proven BDD equivalence, got %s", rep)
	}
}

// TestBDDBudgetFallsBackToExhaustive forces a tiny BDD budget on a
// 16-input pair and checks the exhaustive engine still proves it.
func TestBDDBudgetFallsBackToExhaustive(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	p := randomPLA(rng, 16, 4, 40)
	n, err := bnet.FromPLA(p)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Equivalent(context.Background(), p, n, Options{BDDNodeBudget: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equivalent || !rep.Proven || rep.Method != MethodExhaustive {
		t.Errorf("want exhaustive fallback proof, got %s", rep)
	}
}

// TestBudgetAndWidthUnprovenIsHonest: when both exact engines are out
// of reach the report must say unproven, not claim a proof.
func TestBudgetAndWidthUnprovenIsHonest(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(11))
	p := randomPLA(rng, 24, 3, 30)
	n, err := bnet.FromPLA(p)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Equivalent(context.Background(), p, n, Options{BDDNodeBudget: 8, MaxExhaustiveInputs: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equivalent || rep.Proven || rep.Method != MethodSimulation {
		t.Errorf("want unproven simulation verdict, got %s", rep)
	}
	rep, err = Equivalent(context.Background(), p, n, Options{SimOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Proven {
		t.Errorf("SimOnly reported a proof: %s", rep)
	}
}

func TestRandomPLARoundTrips(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		ni := 2 + rng.Intn(8)
		p := randomPLA(rng, ni, 1+rng.Intn(4), 1+rng.Intn(20))
		n, err := bnet.FromPLA(p)
		if err != nil {
			t.Fatal(err)
		}
		d, err := subject.Decompose(n)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Equivalent(context.Background(), p, d, Options{Seed: int64(trial + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Equivalent || !rep.Proven {
			t.Fatalf("trial %d: want proven equivalence, got %s", trial, rep)
		}
	}
}

func TestCancellationStopsChecker(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(5))
	p := randomPLA(rng, 18, 4, 60)
	n, err := bnet.FromPLA(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Equivalent(ctx, p, n, Options{}); err == nil {
		t.Error("canceled context did not stop the checker")
	}
}

package verify

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
)

// Method names the engine that produced a verdict.
type Method string

const (
	// MethodSimulation: only the bit-parallel simulation pass ran; a
	// mismatch is definitive, a clean pass is not a proof.
	MethodSimulation Method = "simulation"
	// MethodBDD: the ROBDD backend compared canonical forms — a proof
	// either way.
	MethodBDD Method = "bdd"
	// MethodExhaustive: every input vector was enumerated — a proof
	// either way.
	MethodExhaustive Method = "exhaustive"
)

// Options configures Equivalent.
type Options struct {
	// Seed drives the simulation's random patterns (default 1).
	Seed int64
	// RandomBatches is the number of 64-vector random simulation
	// batches (default 64, i.e. 4096 random vectors).
	RandomBatches int
	// SensitizeBases is the number of random base vectors expanded
	// into single-input-flip neighborhoods (default 8).
	SensitizeBases int
	// BDDNodeBudget caps the ROBDD node table (default 1<<20). On
	// overflow the checker falls back to exhaustive enumeration when
	// the input count permits.
	BDDNodeBudget int
	// MaxExhaustiveInputs bounds the exhaustive fallback (default 20:
	// 2^20 vectors, 16384 word evaluations per circuit).
	MaxExhaustiveInputs int
	// SimOnly skips the exact backend entirely; the report is then
	// never proven. For quick smoke checks on huge designs.
	SimOnly bool
}

func (o *Options) defaults() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.RandomBatches == 0 {
		o.RandomBatches = 64
	}
	if o.SensitizeBases == 0 {
		o.SensitizeBases = 8
	}
	if o.BDDNodeBudget == 0 {
		o.BDDNodeBudget = 1 << 20
	}
	if o.MaxExhaustiveInputs == 0 {
		o.MaxExhaustiveInputs = 20
	}
}

// Counterexample is a concrete input assignment on which the two
// circuits disagree.
type Counterexample struct {
	// Inputs is the assignment in InputNames order (circuit a's input
	// order).
	Inputs     []bool
	InputNames []string
	// Output is the name of a disagreeing output; AValue/BValue are
	// the two circuits' values there.
	Output string
	AValue bool
	BValue bool
}

// String renders the vector as name=0/1 pairs plus the disagreeing
// output.
func (c *Counterexample) String() string {
	var b strings.Builder
	for i, name := range c.InputNames {
		if i > 0 {
			b.WriteByte(' ')
		}
		v := '0'
		if c.Inputs[i] {
			v = '1'
		}
		fmt.Fprintf(&b, "%s=%c", name, v)
	}
	fmt.Fprintf(&b, " -> %s: %v vs %v", c.Output, c.AValue, c.BValue)
	return b.String()
}

// Report is the outcome of one equivalence check.
type Report struct {
	// A and B name the compared circuits.
	A, B string
	// Equivalent is the verdict: no difference found. It is definitive
	// only when Proven is also true.
	Equivalent bool
	// Proven is true when an exact engine (BDD or exhaustive) ran to
	// completion, or when a counterexample was found (inequivalence is
	// always definitive).
	Proven bool
	// Method is the engine that produced the verdict.
	Method Method
	// VectorsSimulated counts simulated input vectors across all
	// passes.
	VectorsSimulated int
	// BDDNodes is the final ROBDD table size (0 when the BDD engine
	// did not complete).
	BDDNodes int
	// Inputs and Outputs are the unified interface sizes.
	Inputs, Outputs int
	// Counterexample is non-nil iff Equivalent is false.
	Counterexample *Counterexample
}

// String is a one-line summary for logs and CLIs.
func (r *Report) String() string {
	verdict := "NOT equivalent"
	if r.Equivalent {
		verdict = "equivalent"
		if !r.Proven {
			verdict = "no mismatch found (unproven)"
		}
	}
	s := fmt.Sprintf("%s vs %s: %s [%s, %d vectors", r.A, r.B, verdict, r.Method, r.VectorsSimulated)
	if r.BDDNodes > 0 {
		s += fmt.Sprintf(", %d BDD nodes", r.BDDNodes)
	}
	s += "]"
	if r.Counterexample != nil {
		s += "\n  counterexample: " + r.Counterexample.String()
	}
	return s
}

// Equivalent checks whether two circuit representations compute the
// same functions. a and b may each be a *bnet.Network, *subject.DAG,
// *netlist.Netlist, *logic.PLA, or an already-compiled *Circuit;
// inputs and outputs are aligned by name. The returned Report carries
// the verdict, the engine used, and a minimal counterexample vector
// when the circuits differ. A non-nil error means the check itself
// could not run (interface mismatch, unsupported type, cancellation) —
// inequivalence is not an error.
func Equivalent(ctx context.Context, a, b any, opts Options) (*Report, error) {
	opts.defaults()
	ca, err := Compile(a)
	if err != nil {
		return nil, err
	}
	cb, err := Compile(b)
	if err != nil {
		return nil, err
	}
	if err := ca.checkInterface(); err != nil {
		return nil, err
	}
	if err := cb.checkInterface(); err != nil {
		return nil, err
	}
	bPerm, bOut, err := alignInterfaces(ca, cb)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		A: ca.Name, B: cb.Name,
		Inputs: ca.NumInputs(), Outputs: ca.NumOutputs(),
	}
	s := newSimPair(ca, cb, bPerm, bOut)
	rng := rand.New(rand.NewSource(opts.Seed))

	finishCex := func(m Method, cex *Counterexample) *Report {
		rep.Method = m
		rep.Equivalent = false
		rep.Proven = true
		rep.Counterexample = cex
		rep.VectorsSimulated = s.vectors
		return rep
	}

	// Phase 1: directed + random simulation (fast refutation). Small
	// input counts go straight to the exhaustive engine — it both
	// refutes and proves in one pass.
	n := ca.NumInputs()
	exhaustiveCheap := n <= 11 && !opts.SimOnly // ≤ 32 word evaluations
	if !exhaustiveCheap {
		cex, err := s.runDirected(ctx, rng, opts.SensitizeBases)
		if err != nil {
			return nil, err
		}
		if cex == nil {
			cex, err = s.runRandom(ctx, rng, opts.RandomBatches)
			if err != nil {
				return nil, err
			}
		}
		if cex != nil {
			return finishCex(MethodSimulation, cex), nil
		}
	}
	if opts.SimOnly {
		rep.Method = MethodSimulation
		rep.Equivalent = true
		rep.Proven = false
		rep.VectorsSimulated = s.vectors
		return rep, nil
	}

	// Phase 2: exact backend. BDD first; exhaustive enumeration when
	// the BDD blows its budget (or when it is trivially cheap).
	if !exhaustiveCheap {
		rep2, err := equivalentBDD(ctx, ca, cb, bPerm, bOut, opts, rep, s)
		if err == nil {
			return rep2, nil
		}
		if !errors.Is(err, errBDDBudget) {
			return nil, err
		}
		// Budget exceeded: fall through to exhaustive if feasible.
	}
	if n <= opts.MaxExhaustiveInputs {
		cex, err := s.runExhaustive(ctx)
		if err != nil {
			return nil, err
		}
		rep.Method = MethodExhaustive
		rep.VectorsSimulated = s.vectors
		if cex != nil {
			rep.Equivalent = false
			rep.Proven = true
			rep.Counterexample = cex
			return rep, nil
		}
		rep.Equivalent = true
		rep.Proven = true
		return rep, nil
	}
	// No exact engine could finish: report the simulation verdict.
	rep.Method = MethodSimulation
	rep.Equivalent = true
	rep.Proven = false
	rep.VectorsSimulated = s.vectors
	return rep, nil
}

// equivalentBDD runs the ROBDD comparison. It returns errBDDBudget
// when the node budget is exceeded.
func equivalentBDD(ctx context.Context, ca, cb *Circuit, bPerm, bOut []int, opts Options, rep *Report, s *simPair) (*Report, error) {
	m := newBDDManager(ctx, ca.NumInputs(), opts.BDDNodeBudget)
	aPerm := make([]int, ca.NumInputs())
	for i := range aPerm {
		aPerm[i] = i
	}
	aRoots, err := m.buildCircuit(ca, aPerm)
	if err != nil {
		return nil, err
	}
	bRoots, err := m.buildCircuit(cb, bPerm)
	if err != nil {
		return nil, err
	}
	rep.Method = MethodBDD
	rep.BDDNodes = len(m.nodes)
	rep.VectorsSimulated = s.vectors
	for o := range aRoots {
		ra, rb := aRoots[o], bRoots[bOut[o]]
		if ra == rb {
			continue
		}
		// Canonicity: different roots mean different functions. The
		// XOR of the two is satisfiable; any satisfying path is a
		// counterexample.
		diff, err := m.apply(bddXor, ra, rb)
		if err != nil {
			return nil, err
		}
		vec := m.satVector(diff, ca.NumInputs())
		av, err := ca.EvalVector(vec)
		if err != nil {
			return nil, err
		}
		rep.Equivalent = false
		rep.Proven = true
		rep.Counterexample = &Counterexample{
			Inputs:     vec,
			InputNames: ca.InputNames(),
			Output:     ca.outputs[o].Name,
			AValue:     av[o],
			BValue:     !av[o],
		}
		return rep, nil
	}
	rep.Equivalent = true
	rep.Proven = true
	return rep, nil
}

// alignInterfaces matches b's inputs and outputs to a's by name.
// bPerm[j] is the a-ordinal feeding b's input j; bOut[o] is b's output
// index for a's output o.
func alignInterfaces(a, b *Circuit) (bPerm, bOut []int, err error) {
	if a.NumInputs() != b.NumInputs() {
		return nil, nil, fmt.Errorf("verify: input count mismatch: %s has %d, %s has %d",
			a.Name, a.NumInputs(), b.Name, b.NumInputs())
	}
	if a.NumOutputs() != b.NumOutputs() {
		return nil, nil, fmt.Errorf("verify: output count mismatch: %s has %d, %s has %d",
			a.Name, a.NumOutputs(), b.Name, b.NumOutputs())
	}
	aIn := make(map[string]int, a.NumInputs())
	for i, name := range a.inputs {
		aIn[name] = i
	}
	bPerm = make([]int, b.NumInputs())
	for j, name := range b.inputs {
		i, ok := aIn[name]
		if !ok {
			return nil, nil, fmt.Errorf("verify: input %q of %s not present in %s", name, b.Name, a.Name)
		}
		bPerm[j] = i
	}
	bOutIdx := make(map[string]int, b.NumOutputs())
	for j, o := range b.outputs {
		bOutIdx[o.Name] = j
	}
	bOut = make([]int, a.NumOutputs())
	for o, ao := range a.outputs {
		j, ok := bOutIdx[ao.Name]
		if !ok {
			return nil, nil, fmt.Errorf("verify: output %q of %s not present in %s", ao.Name, a.Name, b.Name)
		}
		bOut[o] = j
	}
	return bPerm, bOut, nil
}

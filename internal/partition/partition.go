// Package partition implements the DAG-partitioning step of technology
// mapping: cutting the subject DAG into a forest of trees that the
// dynamic-programming tree coverer can solve optimally.
//
// Three schemes are provided, matching Section 3.1 of the paper:
//
//   - Dagon: the DAGON scheme — every multi-fanout vertex becomes a
//     tree root, so no optimization crosses multi-fanout boundaries.
//   - Cone: the MIS scheme — logic cones grown from the outputs in
//     processing order; a vertex joins the cone that reaches it first,
//     which makes the result depend on output order (the drawback the
//     paper points out).
//   - PDP: the paper's placement-driven partitioning (Figure 2) — each
//     vertex's father is its geometrically nearest consumer on the
//     chip layout image, so trees cluster vertices placed in the same
//     neighborhood and the result is order-independent.
//
// The partition is represented by a father pointer per gate: a gate's
// father is the consumer whose tree it belongs to; gates whose father
// is -1 are tree roots. Primary inputs and constants never join trees.
package partition

import (
	"fmt"
	"sort"

	"casyn/internal/geom"
	"casyn/internal/subject"
)

// Method selects the partitioning scheme.
type Method int

const (
	// PDP is the paper's placement-driven partitioning; it is the zero
	// value because it is the method the methodology defaults to.
	PDP Method = iota
	// Dagon cuts at every multi-fanout vertex.
	Dagon
	// Cone grows output cones in processing order.
	Cone
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case Dagon:
		return "dagon"
	case Cone:
		return "cone"
	case PDP:
		return "pdp"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Input bundles what the partitioners need.
type Input struct {
	DAG *subject.DAG
	// Pos holds the placement position of every gate (indexed by gate
	// ID). Required by PDP, ignored by the others.
	Pos []geom.Point
	// POPads optionally gives, per gate ID, fixed pad locations of the
	// primary outputs the gate drives. PDP considers a pad a candidate
	// father location; a gate whose nearest consumer is a pad becomes
	// a root.
	POPads map[int][]geom.Point
	// Metric is the distance metric for PDP (default Manhattan).
	Metric geom.Metric
}

// Forest is the partition result.
type Forest struct {
	// Father[g] is the consumer gate that g belongs to, or -1 when g
	// is a tree root or not a tree vertex (PI/constant).
	Father []int
	// Roots lists tree roots in ascending gate-ID order.
	Roots []int

	// Caches computed once at finish() time. Every partitioner funnels
	// through finish, so Trees/RootOf/Stats serve these instead of
	// re-deriving liveness and tree membership per call — the repeated
	// per-tree sweeps in mapper.Prepare were paying that recomputation
	// on every prefix build. The caches are populated eagerly (never
	// lazily) because a Forest is shared read-only across the
	// concurrent K ladder; a lazy memo would race.
	trees  []Tree
	rootOf []int
	stats  Stats
	cached bool
}

// Partition cuts the subject DAG with the chosen method.
func Partition(in Input, m Method) (*Forest, error) {
	d := in.DAG
	if d == nil {
		return nil, fmt.Errorf("partition: nil DAG")
	}
	switch m {
	case Dagon:
		return partitionDagon(d), nil
	case Cone:
		return partitionCone(d), nil
	case PDP:
		if len(in.Pos) < d.NumGates() {
			return nil, fmt.Errorf("partition: PDP needs positions for all %d gates, got %d",
				d.NumGates(), len(in.Pos))
		}
		return partitionPDP(in), nil
	default:
		return nil, fmt.Errorf("partition: unknown method %d", int(m))
	}
}

// isTreeGate reports whether the gate type participates in trees.
func isTreeGate(t subject.GateType) bool {
	return t == subject.Nand2 || t == subject.Inv
}

// poDrivers returns a dense gate-indexed set of primary-output
// drivers. The per-gate rescan of Outputs it replaces was quadratic
// on the PLA-style benchmarks (tens of thousands of gates times
// hundreds of outputs).
func poDrivers(d *subject.DAG) []bool {
	set := make([]bool, d.NumGates())
	for _, o := range d.Outputs() {
		set[o.Gate] = true
	}
	return set
}

// finish fills Roots from Father, precomputes the tree/root-of/stats
// caches, and returns the forest.
func finish(d *subject.DAG, father []int) *Forest {
	f := &Forest{Father: father}
	for _, g := range d.LiveGates() {
		if isTreeGate(d.Gate(g).Type) && father[g] == -1 {
			f.Roots = append(f.Roots, g)
		}
	}
	sort.Ints(f.Roots)
	f.trees = f.materializeTrees()
	f.rootOf = f.computeRootOf(len(father))
	f.stats = statsOf(f.trees)
	f.cached = true
	return f
}

// partitionDagon assigns every single-fanout gate to its unique
// consumer; multi-fanout gates and PO drivers become roots.
func partitionDagon(d *subject.DAG) *Forest {
	father := newFatherSlice(d)
	live := liveSet(d)
	isPODriver := poDrivers(d)
	for _, g := range d.LiveGates() {
		if !isTreeGate(d.Gate(g).Type) {
			continue
		}
		fos := liveFanouts(d, g, live)
		if len(fos) == 1 && !isPODriver[g] {
			father[g] = fos[0]
		}
	}
	return finish(d, father)
}

// partitionCone grows cones from the outputs in declaration order; a
// gate joins the cone of the consumer that reaches it first.
func partitionCone(d *subject.DAG) *Forest {
	father := newFatherSlice(d)
	assigned := make([]bool, d.NumGates())
	isPODriver := poDrivers(d)
	// Explicit-stack pre-order DFS, frame-for-frame equivalent to the
	// recursive closure it replaces: each frame resumes at the next
	// fanin, so sibling order (and therefore which cone reaches a
	// shared gate first) is unchanged. The recursion blew the
	// goroutine stack on deep million-gate chains.
	type coneFrame struct {
		g, next int
	}
	var stack []coneFrame
	grow := func(root int) {
		stack = append(stack[:0], coneFrame{g: root})
		for len(stack) > 0 {
			fr := &stack[len(stack)-1]
			fis := d.Fanins(fr.g)
			if fr.next >= len(fis) {
				stack = stack[:len(stack)-1]
				continue
			}
			fi := fis[fr.next]
			fr.next++
			if !isTreeGate(d.Gate(fi).Type) || assigned[fi] {
				continue
			}
			if isPODriver[fi] {
				continue // PO drivers stay roots of their own cones
			}
			assigned[fi] = true
			father[fi] = fr.g
			stack = append(stack, coneFrame{g: fi})
		}
	}
	for _, o := range d.Outputs() {
		root := o.Gate
		if !isTreeGate(d.Gate(root).Type) || assigned[root] {
			continue
		}
		assigned[root] = true // as a root
		grow(root)
	}
	// Any live tree gate not reached (possible with exotic output
	// sharing) becomes its own root; grow its cone too for coverage.
	for _, g := range d.LiveGates() {
		if isTreeGate(d.Gate(g).Type) && !assigned[g] {
			assigned[g] = true
			grow(g)
		}
	}
	return finish(d, father)
}

// partitionPDP implements the paper's Figure 2: the father of every
// vertex is its nearest consumer on the layout image. Consumers are
// the gate's fanout gates plus the pad locations of POs it drives;
// when a pad is nearest, the gate is a root. Ties break toward the
// lowest gate ID for determinism.
func partitionPDP(in Input) *Forest {
	d := in.DAG
	father := newFatherSlice(d)
	live := liveSet(d)
	isPODriver := poDrivers(d)
	for _, g := range d.LiveGates() {
		if !isTreeGate(d.Gate(g).Type) {
			continue
		}
		fos := liveFanouts(d, g, live)
		bestDist := -1.0
		bestFather := -1
		for _, fo := range fos {
			dist := in.Metric.Distance(in.Pos[g], in.Pos[fo])
			if bestDist < 0 || dist < bestDist || (dist == bestDist && fo < bestFather) {
				bestDist = dist
				bestFather = fo
			}
		}
		for _, pad := range in.POPads[g] {
			dist := in.Metric.Distance(in.Pos[g], pad)
			if bestDist < 0 || dist < bestDist {
				bestDist = dist
				bestFather = -1 // nearest consumer is an output pad: root
			}
		}
		if bestFather < 0 {
			continue // pad-nearest or no consumers: stays a root
		}
		if isPODriver[g] && len(in.POPads[g]) == 0 {
			// PO driver without pad information: keep it a root so the
			// output signal is always visible without duplication.
			continue
		}
		father[g] = bestFather
	}
	return finish(d, father)
}

func newFatherSlice(d *subject.DAG) []int {
	father := make([]int, d.NumGates())
	for i := range father {
		father[i] = -1
	}
	return father
}

// liveSet returns a bitmap of live gates.
func liveSet(d *subject.DAG) []bool {
	live := make([]bool, d.NumGates())
	for _, g := range d.LiveGates() {
		live[g] = true
	}
	return live
}

// liveFanouts filters a gate's fanouts to live consumers.
func liveFanouts(d *subject.DAG, g int, live []bool) []int {
	var out []int
	for _, fo := range d.Fanouts(g) {
		if live[fo] {
			out = append(out, fo)
		}
	}
	return out
}

// Tree is one subject tree of the forest, in covering-ready form.
type Tree struct {
	Root int
	// Gates lists the tree's internal vertices in topological order
	// (children before parents); Gates[len-1] == Root.
	Gates []int
	// Children[g] lists the fanins of g that are internal vertices of
	// this tree (i.e. whose father is g). Other fanins are leaf
	// references to gates outside the tree.
	Children map[int][]int
}

// Trees returns the forest's trees. The result is the finish()-time
// cache and must be treated read-only (it is shared by every caller,
// including the concurrent covering fan-out).
func (f *Forest) Trees(d *subject.DAG) []Tree {
	if f.cached {
		return f.trees
	}
	return f.materializeTrees()
}

// materializeTrees builds the tree list from Father/Roots with an
// explicit-stack post-order DFS (children before parents, sibling
// order by ascending gate ID — identical to the recursive visit it
// replaces, which could blow the stack on deep million-gate chains).
func (f *Forest) materializeTrees() []Tree {
	kids := make(map[int][]int)
	for g, fa := range f.Father {
		if fa >= 0 {
			kids[fa] = append(kids[fa], g)
		}
	}
	type treeFrame struct {
		g, next int
	}
	var stack []treeFrame
	trees := make([]Tree, 0, len(f.Roots))
	for _, root := range f.Roots {
		t := Tree{Root: root, Children: make(map[int][]int)}
		stack = append(stack[:0], treeFrame{g: root})
		for len(stack) > 0 {
			fr := &stack[len(stack)-1]
			ks := kids[fr.g]
			if fr.next < len(ks) {
				fr.next++
				stack = append(stack, treeFrame{g: ks[fr.next-1]})
				continue
			}
			t.Children[fr.g] = ks
			t.Gates = append(t.Gates, fr.g)
			stack = stack[:len(stack)-1]
		}
		trees = append(trees, t)
	}
	return trees
}

// RootOf returns, per gate ID, the root of the tree the gate belongs
// to (-1 for PIs, constants, and dead gates). The result is the
// finish()-time cache and must be treated read-only.
func (f *Forest) RootOf(d *subject.DAG) []int {
	if f.cached {
		return f.rootOf
	}
	return f.computeRootOf(d.NumGates())
}

// computeRootOf resolves every father chain by iterative path walking
// with memoization. It makes no assumption about ID ordering along a
// chain: gates are normally created fanins-first (father ID > child
// ID), but replicas appended by the k-way partitioner have IDs larger
// than every other vertex while their father — when attached into a
// sink's tree — is smaller.
func (f *Forest) computeRootOf(n int) []int {
	rootOf := make([]int, n)
	for g := range rootOf {
		rootOf[g] = -1
	}
	for _, r := range f.Roots {
		rootOf[r] = r
	}
	var path []int
	for g := 0; g < n; g++ {
		if rootOf[g] >= 0 || f.Father[g] < 0 {
			continue
		}
		path = path[:0]
		v := g
		for rootOf[v] < 0 && f.Father[v] >= 0 {
			path = append(path, v)
			v = f.Father[v]
		}
		r := rootOf[v] // -1 on a dead chain, matching the old pass
		for _, p := range path {
			rootOf[p] = r
		}
	}
	return rootOf
}

// InTree returns a membership test for the tree.
func (t *Tree) InTree() func(gate int) bool {
	set := make(map[int]bool, len(t.Gates))
	for _, g := range t.Gates {
		set[g] = true
	}
	return func(g int) bool { return set[g] }
}

// Stats summarizes a forest for reporting and tests.
type Stats struct {
	Trees        int
	TreeGates    int
	MaxTreeSize  int
	MeanTreeSize float64
}

// Stats returns forest statistics (the finish()-time cache when
// available).
func (f *Forest) Stats(d *subject.DAG) Stats {
	if f.cached {
		return f.stats
	}
	return statsOf(f.Trees(d))
}

func statsOf(trees []Tree) Stats {
	s := Stats{Trees: len(trees)}
	for _, t := range trees {
		s.TreeGates += len(t.Gates)
		if len(t.Gates) > s.MaxTreeSize {
			s.MaxTreeSize = len(t.Gates)
		}
	}
	if s.Trees > 0 {
		s.MeanTreeSize = float64(s.TreeGates) / float64(s.Trees)
	}
	return s
}

package partition

// Direct k-way partitioning of the tree forest with a Steiner-tree cut
// metric, plus driver replication across the cut.
//
// The paper's PDP forest is built for one die. For a multi-die (or
// multi-region) workload the forest's trees must additionally be
// assigned to k die regions so that few nets cross regions and the
// crossing nets are short. Rather than recursive bisection of the
// assignment, KWay performs direct k-way FM-style gain moves over the
// tree-forest hypergraph: every tree is a movable vertex, every
// driver's net is a hyperedge over the trees it touches (plus fixed
// PI/PO pad regions), and a cut net is scored by a rectilinear
// Steiner-tree estimate over the centers of the regions it spans —
// the routed-wire proxy the direct k-way literature optimizes, rather
// than raw cut count.
//
// On top of the moves, replication: when a multi-fanout driver's
// duplication into a second region removes at least one cut net,
// strictly lowers the Steiner estimate, and fits the area budget, the
// gate is cloned in the subject DAG (subject.AddReplicaOf), the
// second region's sinks are rewired onto the clone, and the clone
// becomes a new single-gate tree of the forest assigned to that
// region. Primary outputs always stay on the original gate.
//
// Determinism: vertices are visited in ascending root order, regions
// in ascending index, and every tie breaks toward the lower index, so
// the result is byte-identical across runs and worker counts. A run
// with MovePasses < 0 and Replicate false returns the input DAG,
// forest, and placement unchanged (pointer-identical) — the
// bit-identity anchor the regression suite pins.

import (
	"fmt"
	"sort"

	"casyn/internal/geom"
	"casyn/internal/subject"
)

// KWayOptions configures KWay.
type KWayOptions struct {
	// K is the number of die regions (>= 2).
	K int
	// Die is the die rectangle the regions tile.
	Die geom.Rect
	// Pos is the placement position per gate ID.
	Pos []geom.Point
	// POPads gives fixed output-pad locations per driver gate.
	POPads map[int][]geom.Point
	// Metric is the distance metric (default Manhattan).
	Metric geom.Metric
	// BalanceTol is the per-region area slack over perfect balance a
	// move may fill (default 0.15: no region exceeds
	// ceil(total/k)·1.15 tree gates).
	BalanceTol float64
	// MovePasses bounds the FM move passes (default 3). A negative
	// value runs zero passes — with Replicate false the input forest
	// is returned bit-identical.
	MovePasses int
	// Replicate enables driver replication across the cut.
	Replicate bool
	// ReplicaAreaBudget caps total replicated gates as a fraction of
	// the tree-gate count (default 0.05).
	ReplicaAreaBudget float64
}

func (o *KWayOptions) defaults() {
	if o.BalanceTol == 0 {
		o.BalanceTol = 0.15
	}
	if o.MovePasses == 0 {
		o.MovePasses = 3
	}
	if o.ReplicaAreaBudget == 0 {
		o.ReplicaAreaBudget = 0.05
	}
}

// KWayResult is the outcome of a direct k-way partitioning run.
type KWayResult struct {
	// DAG is the subject DAG the returned forest partitions: the input
	// DAG itself when no replication happened, else a private clone
	// carrying the replica gates (the input is never mutated).
	DAG *subject.DAG
	// Forest is the partition forest over DAG. Without replication it
	// is the input forest (pointer-identical on a zero-move run).
	Forest *Forest
	// Pos is the placement, extended with replica positions (each
	// replica sits at the center of mass of the sinks it absorbed).
	Pos []geom.Point
	// Regions are the k die regions, from recursive bisection of Die.
	Regions []geom.Rect
	// RegionOf maps every gate of DAG to its region (-1 for PIs,
	// constants, and dead gates).
	RegionOf []int
	// CutNetsSeed/SteinerSeed are the cut-net count and total Steiner
	// cost of the seed assignment (the recursive-bisection baseline);
	// CutNets/Steiner the same after moves and replication.
	CutNetsSeed, CutNets int
	SteinerSeed, Steiner float64
	// Moves counts applied vertex moves; Replicas counts replica gates.
	Moves, Replicas int
}

// DieRegions tiles the die into k rectangles by recursive bisection:
// the region count splits ceil/floor, the longer side splits
// proportionally. Deterministic; region order is the recursion's
// left-before-right (bottom-before-top) order.
func DieRegions(die geom.Rect, k int) []geom.Rect {
	if k <= 1 {
		return []geom.Rect{die}
	}
	k1 := (k + 1) / 2
	frac := float64(k1) / float64(k)
	var a, b geom.Rect
	if die.W() >= die.H() {
		cut := die.Min.X + frac*die.W()
		a = geom.Rect{Min: die.Min, Max: geom.Pt(cut, die.Max.Y)}
		b = geom.Rect{Min: geom.Pt(cut, die.Min.Y), Max: die.Max}
	} else {
		cut := die.Min.Y + frac*die.H()
		a = geom.Rect{Min: die.Min, Max: geom.Pt(die.Max.X, cut)}
		b = geom.Rect{Min: geom.Pt(die.Min.X, cut), Max: die.Max}
	}
	return append(DieRegions(a, k1), DieRegions(b, k-k1)...)
}

// kNet is one hyperedge of the tree-forest hypergraph: the net driven
// by one live tree gate. Pins are the movable tree vertices it touches
// (driver's tree plus every sink's tree) and the fixed regions of the
// driver's output pads.
type kNet struct {
	driver    int
	vertices  []int32 // movable tree-vertex pins, dedup ascending
	sinkGates []int32 // fanout sink gate IDs (for replication rewiring)
	fixed     []int32 // fixed region pins, dedup ascending
}

// kwayState is the mutable model a KWay run works on.
type kwayState struct {
	opt      KWayOptions
	regions  []geom.Rect
	centers  []geom.Point
	vertexOf []int // gate -> vertex (tree) index, -1
	area     []int // per vertex, in tree gates
	assign   []int // per vertex region
	roots    []int // per vertex root gate (visit order)
	nets     []kNet
	netOf    []int32   // driver gate -> net index, -1
	incident [][]int32 // vertex -> incident net indices
	regArea  []int
	areaCap  int
	seen     []bool // region scratch, len k
	spanBuf  []int32
	ptsBuf   []geom.Point
}

// KWay runs direct k-way partitioning (and optional replication) of
// the forest over the subject DAG. The inputs are never mutated; see
// KWayResult for what is shared vs. cloned.
func KWay(d *subject.DAG, f *Forest, opt KWayOptions) (*KWayResult, error) {
	opt.defaults()
	if d == nil || f == nil {
		return nil, fmt.Errorf("partition: KWay needs a DAG and a forest")
	}
	if opt.K < 2 {
		return nil, fmt.Errorf("partition: KWay needs K >= 2 regions (got %d)", opt.K)
	}
	if opt.Die.W() <= 0 || opt.Die.H() <= 0 {
		return nil, fmt.Errorf("partition: KWay needs a non-degenerate die, got %v", opt.Die)
	}
	if len(opt.Pos) < d.NumGates() {
		return nil, fmt.Errorf("partition: KWay needs positions for all %d gates, got %d",
			d.NumGates(), len(opt.Pos))
	}

	s := &kwayState{opt: opt, regions: DieRegions(opt.Die, opt.K)}
	s.centers = make([]geom.Point, len(s.regions))
	for i, r := range s.regions {
		s.centers[i] = r.Center()
	}
	s.seed(d, f)
	s.buildNets(d, f)

	res := &KWayResult{
		DAG:     d,
		Forest:  f,
		Pos:     opt.Pos,
		Regions: s.regions,
	}
	res.CutNetsSeed, res.SteinerSeed = s.totals()

	passes := opt.MovePasses
	if passes < 0 {
		passes = 0
	}
	for pass := 0; pass < passes; pass++ {
		if s.movePass(res) == 0 {
			break
		}
	}

	if opt.Replicate {
		if err := s.replicate(d, f, res); err != nil {
			return nil, err
		}
	}

	res.CutNets, res.Steiner = s.totals()
	res.RegionOf = s.regionOfGates(res.DAG, res.Forest)
	return res, nil
}

// regionOfPoint returns the first region containing p, falling back to
// the nearest region center for points outside every region (pads sit
// on the die boundary, which Contains covers; the fallback is for
// out-of-die coordinates).
func (s *kwayState) regionOfPoint(p geom.Point) int {
	for i, r := range s.regions {
		if r.Contains(p) {
			return i
		}
	}
	best, bestD := 0, -1.0
	for i, c := range s.centers {
		if dd := s.opt.Metric.Distance(p, c); bestD < 0 || dd < bestD {
			best, bestD = i, dd
		}
	}
	return best
}

// seed assigns every tree to the region containing its center of mass
// — the recursive-bisection baseline a zero-move run reproduces.
func (s *kwayState) seed(d *subject.DAG, f *Forest) {
	trees := f.Trees(d)
	s.vertexOf = make([]int, d.NumGates())
	for g := range s.vertexOf {
		s.vertexOf[g] = -1
	}
	s.area = make([]int, len(trees))
	s.assign = make([]int, len(trees))
	s.roots = make([]int, len(trees))
	s.regArea = make([]int, len(s.regions))
	total := 0
	for ti := range trees {
		t := &trees[ti]
		s.roots[ti] = t.Root
		s.area[ti] = len(t.Gates)
		total += len(t.Gates)
		pts := s.ptsBuf[:0]
		for _, g := range t.Gates {
			s.vertexOf[g] = ti
			pts = append(pts, s.opt.Pos[g])
		}
		s.ptsBuf = pts
		s.assign[ti] = s.regionOfPoint(geom.CenterOfMass(pts))
		s.regArea[s.assign[ti]] += len(t.Gates)
	}
	perRegion := (total + len(s.regions) - 1) / len(s.regions)
	s.areaCap = perRegion + int(float64(perRegion)*s.opt.BalanceTol)
	s.seen = make([]bool, len(s.regions))
}

// buildNets models one hyperedge per live tree-gate driver. Trivial
// (single-vertex, pad-free) nets are modeled too: replication extends
// a replica's fanin nets with a new pin, and that extension must be
// scored even when the net was uncut before.
func (s *kwayState) buildNets(d *subject.DAG, f *Forest) {
	live := liveSet(d)
	s.netOf = make([]int32, d.NumGates())
	for g := range s.netOf {
		s.netOf[g] = -1
	}
	s.incident = make([][]int32, len(s.area))
	for _, g := range d.LiveGates() {
		if s.vertexOf[g] < 0 {
			continue // PI/const drivers: pad-anchored, not movable
		}
		n := kNet{driver: g}
		n.vertices = append(n.vertices, int32(s.vertexOf[g]))
		for _, fo := range d.Fanouts(g) {
			if !live[fo] || s.vertexOf[fo] < 0 {
				continue
			}
			n.sinkGates = append(n.sinkGates, int32(fo))
			n.vertices = append(n.vertices, int32(s.vertexOf[fo]))
		}
		for _, pad := range s.opt.POPads[g] {
			n.fixed = append(n.fixed, int32(s.regionOfPoint(pad)))
		}
		n.vertices = dedupInt32(n.vertices)
		n.fixed = dedupInt32(n.fixed)
		ni := int32(len(s.nets))
		s.netOf[g] = ni
		s.nets = append(s.nets, n)
		for _, v := range s.nets[ni].vertices {
			s.incident[v] = append(s.incident[v], ni)
		}
	}
}

func dedupInt32(xs []int32) []int32 {
	if len(xs) < 2 {
		return xs
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// netCost returns the net's cut flag and Steiner cost under the
// current assignment, with vertex `movedV` (when >= 0) evaluated at
// region `movedR` instead.
func (s *kwayState) netCost(n *kNet, movedV, movedR int) (bool, float64) {
	span := s.spanBuf[:0]
	add := func(r int32) {
		if !s.seen[r] {
			s.seen[r] = true
			span = append(span, r)
		}
	}
	for _, v := range n.vertices {
		r := s.assign[v]
		if int(v) == movedV {
			r = movedR
		}
		add(int32(r))
	}
	for _, r := range n.fixed {
		add(r)
	}
	for _, r := range span {
		s.seen[r] = false
	}
	s.spanBuf = span
	if len(span) < 2 {
		return false, 0
	}
	pts := s.ptsBuf[:0]
	for _, r := range span {
		pts = append(pts, s.centers[r])
	}
	s.ptsBuf = pts
	return true, geom.SteinerLength(pts)
}

// totals sums cut nets and Steiner cost over all nets.
func (s *kwayState) totals() (int, float64) {
	cut, st := 0, 0.0
	for i := range s.nets {
		c, l := s.netCost(&s.nets[i], -1, -1)
		if c {
			cut++
			st += l
		}
	}
	return cut, st
}

// movePass runs one deterministic FM-style pass: vertices in ascending
// root order, each taking its best admissible improving move. A move
// is admissible when the target region has balance headroom and it
// never worsens either metric (Δcut <= 0, ΔSteiner <= 0) while
// strictly improving at least one — so the cut-net count and the
// Steiner cost are both monotone non-increasing from the seed.
func (s *kwayState) movePass(res *KWayResult) int {
	const eps = 1e-9
	moved := 0
	for v := range s.assign {
		cur := s.assign[v]
		curCut, curSt := 0, 0.0
		for _, ni := range s.incident[v] {
			c, l := s.netCost(&s.nets[ni], -1, -1)
			if c {
				curCut++
				curSt += l
			}
		}
		bestR, bestCut, bestSt := -1, 0, 0.0
		for r := range s.regions {
			if r == cur || s.regArea[r]+s.area[v] > s.areaCap {
				continue
			}
			dCut, dSt := -curCut, -curSt
			for _, ni := range s.incident[v] {
				c, l := s.netCost(&s.nets[ni], v, r)
				if c {
					dCut++
					dSt += l
				}
			}
			if dCut > 0 || dSt > eps || (dCut == 0 && dSt > -eps) {
				continue
			}
			if bestR < 0 || dCut < bestCut || (dCut == bestCut && dSt < bestSt-eps) {
				bestR, bestCut, bestSt = r, dCut, dSt
			}
		}
		if bestR >= 0 {
			s.regArea[cur] -= s.area[v]
			s.regArea[bestR] += s.area[v]
			s.assign[v] = bestR
			moved++
		}
	}
	res.Moves += moved
	return moved
}

// replicate clones cut-net drivers into the regions their sinks live
// in when doing so removes at least one cut net, strictly lowers the
// Steiner estimate, and fits the replica area budget. The DAG is
// cloned lazily on the first accepted replication; the forest is
// rebuilt once at the end when any replica exists.
func (s *kwayState) replicate(d *subject.DAG, f *Forest, res *KWayResult) error {
	const eps = 1e-9
	budget := int(s.opt.ReplicaAreaBudget * float64(totalArea(s.area)))
	if budget < 1 {
		budget = 1
	}
	work := d
	var father []int
	cloned := false
	numNets := len(s.nets) // replica nets appended past this are final

	for ni := 0; ni < numNets; ni++ {
		if res.Replicas >= budget {
			break
		}
		cut, _ := s.netCost(&s.nets[ni], -1, -1)
		if !cut {
			continue
		}
		driver := s.nets[ni].driver
		dv := s.vertexOf[driver]
		if dv < 0 {
			continue
		}
		// Candidate regions: every region with at least one gate sink,
		// other than the driver's, in ascending order.
		span := map[int]bool{}
		for _, sg := range s.nets[ni].sinkGates {
			span[s.assign[s.vertexOf[sg]]] = true
		}
		for b := 0; b < len(s.regions); b++ {
			if b == s.assign[dv] || !span[b] || res.Replicas >= budget {
				continue
			}
			if s.regArea[b]+1 > s.areaCap {
				continue
			}
			moved, kept := splitSinks(s, ni, b)
			if len(moved) == 0 {
				continue
			}
			// Score the replication: the driver net loses its region-b
			// sinks, the replica net is uncut by construction, and
			// every tree-gate fanin net gains a pin in region b.
			oldCut, oldSt := 0, 0.0
			newCut, newSt := 0, 0.0
			c, l := s.netCost(&s.nets[ni], -1, -1)
			if c {
				oldCut++
				oldSt += l
			}
			trial := s.nets[ni]
			trial.sinkGates = kept
			trial.vertices = s.recomputeVertices(&trial)
			c, l = s.netCost(&trial, -1, -1)
			if c {
				newCut++
				newSt += l
			}
			for _, fi := range work.Fanins(driver) {
				fn := s.netOf[fi]
				if fn < 0 {
					continue
				}
				c, l = s.netCost(&s.nets[fn], -1, -1)
				if c {
					oldCut++
					oldSt += l
				}
				// The fanin net gains the replica as a pin in region b.
				c, l = s.netCostWithExtra(&s.nets[fn], b)
				if c {
					newCut++
					newSt += l
				}
			}
			if newCut-oldCut > -1 || newSt-oldSt > -eps {
				continue
			}

			// Accept: clone lazily, create the replica, rewire the
			// region-b sinks, extend the model.
			if !cloned {
				work = d.Clone()
				father = append([]int(nil), f.Father...)
				res.Pos = append([]geom.Point(nil), s.opt.Pos...)
				cloned = true
			}
			rid, err := work.AddReplicaOf(driver)
			if err != nil {
				return fmt.Errorf("partition: replicate gate %d: %w", driver, err)
			}
			for _, sg := range moved {
				if err := work.RewireFanin(int(sg), driver, rid); err != nil {
					return fmt.Errorf("partition: rewire sink %d: %w", sg, err)
				}
			}
			nv := len(s.assign)
			s.assign = append(s.assign, b)
			s.area = append(s.area, 1)
			s.roots = append(s.roots, rid)
			s.regArea[b]++
			s.vertexOf = append(s.vertexOf, nv) // vertexOf[rid]
			father = append(father, -1)
			pts := make([]geom.Point, 0, len(moved))
			for _, sg := range moved {
				pts = append(pts, res.Pos[sg])
			}
			res.Pos = append(res.Pos, geom.CenterOfMass(pts))

			// Driver net drops the moved sinks; replica net is new.
			s.nets[ni].sinkGates = kept
			s.nets[ni].vertices = s.recomputeVertices(&s.nets[ni])
			rn := kNet{driver: rid, sinkGates: moved}
			rn.vertices = append(rn.vertices, int32(nv))
			for _, sg := range moved {
				rn.vertices = append(rn.vertices, int32(s.vertexOf[sg]))
			}
			rn.vertices = dedupInt32(rn.vertices)
			s.netOf = append(s.netOf, -1) // extend for rid
			s.netOf[rid] = int32(len(s.nets))
			s.nets = append(s.nets, rn)
			s.incident = append(s.incident, nil)
			// The replica is a new sink pin on each of its fanin nets.
			for _, fi := range work.Fanins(rid) {
				fn := s.netOf[fi]
				if fn < 0 {
					continue
				}
				s.nets[fn].sinkGates = append(s.nets[fn].sinkGates, int32(rid))
				s.nets[fn].vertices = dedupInt32(append(s.nets[fn].vertices, int32(nv)))
			}
			res.Replicas++
		}
	}

	if cloned {
		res.DAG = work
		res.Forest = finish(work, father)
	}
	return nil
}

// splitSinks partitions net ni's sink gates into those assigned to
// region b (moved, rewired onto the replica) and the rest (kept).
func splitSinks(s *kwayState, ni, b int) (moved, kept []int32) {
	for _, sg := range s.nets[ni].sinkGates {
		if s.assign[s.vertexOf[sg]] == b {
			moved = append(moved, sg)
		} else {
			kept = append(kept, sg)
		}
	}
	return moved, kept
}

// recomputeVertices rebuilds a net's movable pin set from its driver
// and remaining sinks.
func (s *kwayState) recomputeVertices(n *kNet) []int32 {
	vs := []int32{int32(s.vertexOf[n.driver])}
	for _, sg := range n.sinkGates {
		vs = append(vs, int32(s.vertexOf[sg]))
	}
	return dedupInt32(vs)
}

// netCostWithExtra scores a net whose pin set additionally spans
// region extra (used to evaluate a prospective replica pin before the
// vertex exists).
func (s *kwayState) netCostWithExtra(n *kNet, extra int) (bool, float64) {
	span := s.spanBuf[:0]
	add := func(r int32) {
		if !s.seen[r] {
			s.seen[r] = true
			span = append(span, r)
		}
	}
	for _, v := range n.vertices {
		if int(v) < len(s.assign) {
			add(int32(s.assign[v]))
		}
	}
	for _, r := range n.fixed {
		add(r)
	}
	add(int32(extra))
	for _, r := range span {
		s.seen[r] = false
	}
	s.spanBuf = span
	if len(span) < 2 {
		return false, 0
	}
	pts := s.ptsBuf[:0]
	for _, r := range span {
		pts = append(pts, s.centers[r])
	}
	s.ptsBuf = pts
	return true, geom.SteinerLength(pts)
}

// regionOfGates maps every gate of the (possibly replicated) DAG to
// its region via its tree's assignment.
func (s *kwayState) regionOfGates(d *subject.DAG, f *Forest) []int {
	out := make([]int, d.NumGates())
	for g := range out {
		out[g] = -1
	}
	rootOf := f.RootOf(d)
	for g := range out {
		if r := rootOf[g]; r >= 0 {
			out[g] = s.assign[s.vertexOf[r]]
		}
	}
	return out
}

func totalArea(area []int) int {
	t := 0
	for _, a := range area {
		t += a
	}
	return t
}

package partition

import (
	"math/rand"
	"testing"

	"casyn/internal/geom"
	"casyn/internal/subject"
)

// buildDiamond builds a DAG with a shared (multi-fanout) vertex:
//
//	n1 = NAND(a,b)            (multi-fanout)
//	n2 = NAND(n1,c)
//	n3 = NAND(n1,d)
//	n4 = NAND(n2,n3)   → PO
func buildDiamond() (*subject.DAG, [4]int) {
	d := subject.New()
	a := d.AddPI("a")
	b := d.AddPI("b")
	c := d.AddPI("c")
	e := d.AddPI("d")
	n1 := d.AddNand2(a, b)
	n2 := d.AddNand2(n1, c)
	n3 := d.AddNand2(n1, e)
	n4 := d.AddNand2(n2, n3)
	d.AddOutput("o", n4)
	return d, [4]int{n1, n2, n3, n4}
}

func uniformPos(d *subject.DAG) []geom.Point {
	pos := make([]geom.Point, d.NumGates())
	for i := range pos {
		pos[i] = geom.Pt(float64(i), 0)
	}
	return pos
}

func TestDagonCutsMultiFanout(t *testing.T) {
	t.Parallel()
	d, n := buildDiamond()
	f, err := Partition(Input{DAG: d}, Dagon)
	if err != nil {
		t.Fatal(err)
	}
	// n1 is multi-fanout: must be a root. n2, n3 are single-fanout:
	// fathered by n4. n4 drives the PO: root.
	if f.Father[n[0]] != -1 {
		t.Error("multi-fanout vertex must be a DAGON root")
	}
	if f.Father[n[1]] != n[3] || f.Father[n[2]] != n[3] {
		t.Error("single-fanout vertices must join their consumer")
	}
	if f.Father[n[3]] != -1 {
		t.Error("PO driver must be a root")
	}
	if len(f.Roots) != 2 {
		t.Errorf("roots = %v, want 2", f.Roots)
	}
}

func TestConeAssignsByFirstReach(t *testing.T) {
	t.Parallel()
	// Two outputs sharing n1; the first output's cone takes n1.
	d := subject.New()
	a := d.AddPI("a")
	b := d.AddPI("b")
	n1 := d.AddNand2(a, b)
	n2 := d.AddNand2(n1, a)
	n3 := d.AddNand2(n1, b)
	d.AddOutput("o1", n2)
	d.AddOutput("o2", n3)
	f, err := Partition(Input{DAG: d}, Cone)
	if err != nil {
		t.Fatal(err)
	}
	if f.Father[n1] != n2 {
		t.Errorf("n1 fathered by %d, want first cone %d", f.Father[n1], n2)
	}
	if f.Father[n2] != -1 || f.Father[n3] != -1 {
		t.Error("PO drivers must stay roots")
	}
}

func TestPDPNearestFather(t *testing.T) {
	t.Parallel()
	d, n := buildDiamond()
	pos := make([]geom.Point, d.NumGates())
	// Place n1 next to n3 and far from n2.
	pos[n[0]] = geom.Pt(10, 10)
	pos[n[1]] = geom.Pt(50, 50)
	pos[n[2]] = geom.Pt(11, 10)
	pos[n[3]] = geom.Pt(30, 30)
	f, err := Partition(Input{DAG: d, Pos: pos}, PDP)
	if err != nil {
		t.Fatal(err)
	}
	if f.Father[n[0]] != n[2] {
		t.Errorf("n1 fathered by %d, want nearest consumer %d", f.Father[n[0]], n[2])
	}
	// Moving n2 close flips the decision.
	pos[n[1]] = geom.Pt(10, 11)
	pos[n[2]] = geom.Pt(90, 90)
	f, err = Partition(Input{DAG: d, Pos: pos}, PDP)
	if err != nil {
		t.Fatal(err)
	}
	if f.Father[n[0]] != n[1] {
		t.Errorf("n1 fathered by %d after move, want %d", f.Father[n[0]], n[1])
	}
}

func TestPDPPadNearest(t *testing.T) {
	t.Parallel()
	// A gate drives both a PO pad and another gate; when the pad is
	// nearest the gate must stay a root.
	d := subject.New()
	a := d.AddPI("a")
	b := d.AddPI("b")
	g := d.AddNand2(a, b)
	h := d.AddInv(g)
	d.AddOutput("og", g)
	d.AddOutput("oh", h)
	pos := make([]geom.Point, d.NumGates())
	pos[g] = geom.Pt(0, 0)
	pos[h] = geom.Pt(100, 0)
	pads := map[int][]geom.Point{g: {geom.Pt(1, 0)}, h: {geom.Pt(100, 1)}}
	f, err := Partition(Input{DAG: d, Pos: pos, POPads: pads}, PDP)
	if err != nil {
		t.Fatal(err)
	}
	if f.Father[g] != -1 {
		t.Error("pad-nearest gate must stay a root")
	}
	// Now the consumer is nearer than the pad: g joins h's tree.
	pads[g] = []geom.Point{geom.Pt(500, 500)}
	pos[h] = geom.Pt(2, 0)
	f, err = Partition(Input{DAG: d, Pos: pos, POPads: pads}, PDP)
	if err != nil {
		t.Fatal(err)
	}
	if f.Father[g] != h {
		t.Errorf("g fathered by %d, want consumer %d", f.Father[g], h)
	}
}

func TestPDPRequiresPositions(t *testing.T) {
	t.Parallel()
	d, _ := buildDiamond()
	if _, err := Partition(Input{DAG: d}, PDP); err == nil {
		t.Error("PDP without positions must error")
	}
	if _, err := Partition(Input{DAG: nil}, Dagon); err == nil {
		t.Error("nil DAG must error")
	}
	if _, err := Partition(Input{DAG: d}, Method(99)); err == nil {
		t.Error("unknown method must error")
	}
}

// randomDAG builds a random layered DAG for property tests.
func randomDAG(rng *rand.Rand, pis, gates int) *subject.DAG {
	d := subject.New()
	var sigs []int
	for i := 0; i < pis; i++ {
		sigs = append(sigs, d.AddPI(piName(i)))
	}
	for i := 0; i < gates; i++ {
		a := sigs[rng.Intn(len(sigs))]
		b := sigs[rng.Intn(len(sigs))]
		var g int
		if rng.Intn(4) == 0 {
			g = d.AddInv(a)
		} else {
			g = d.AddNand2(a, b)
		}
		sigs = append(sigs, g)
	}
	// A handful of outputs from the last signals.
	for i := 0; i < 4 && i < len(sigs); i++ {
		d.AddOutput(poName(i), sigs[len(sigs)-1-i])
	}
	return d
}

func piName(i int) string { return "pi" + string(rune('a'+i%26)) + string(rune('0'+i/26)) }
func poName(i int) string { return "po" + string(rune('0'+i)) }

// checkForestInvariants validates structural properties every
// partitioner must maintain.
func checkForestInvariants(t *testing.T, d *subject.DAG, f *Forest, method Method) {
	t.Helper()
	live := map[int]bool{}
	for _, g := range d.LiveGates() {
		live[g] = true
	}
	for g, fa := range f.Father {
		if fa < 0 {
			continue
		}
		// The father must be a live consumer of g.
		if !live[fa] || !live[g] {
			t.Fatalf("%v: father link %d->%d involves dead gate", method, g, fa)
		}
		found := false
		for _, fo := range d.Fanouts(g) {
			if fo == fa {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("%v: father %d is not a fanout of %d", method, fa, g)
		}
	}
	// Every live tree gate is in exactly one tree (reachable from
	// exactly one root via father links).
	trees := f.Trees(d)
	seen := map[int]int{}
	for ti, tr := range trees {
		for _, g := range tr.Gates {
			if prev, dup := seen[g]; dup {
				t.Fatalf("%v: gate %d in trees %d and %d", method, g, prev, ti)
			}
			seen[g] = ti
		}
		if tr.Gates[len(tr.Gates)-1] != tr.Root {
			t.Fatalf("%v: root not last in topo order", method)
		}
	}
	for g := range live {
		gt := d.Gate(g).Type
		if gt != subject.Nand2 && gt != subject.Inv {
			continue
		}
		if _, ok := seen[g]; !ok {
			t.Fatalf("%v: live gate %d in no tree", method, g)
		}
	}
}

func TestForestInvariantsAcrossMethods(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		d := randomDAG(rng, 6, 40)
		pos := make([]geom.Point, d.NumGates())
		for i := range pos {
			pos[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		for _, m := range []Method{Dagon, Cone, PDP} {
			f, err := Partition(Input{DAG: d, Pos: pos}, m)
			if err != nil {
				t.Fatal(err)
			}
			checkForestInvariants(t, d, f, m)
		}
	}
}

// TestPDPOrderIndependence verifies the paper's claim: PDP depends
// only on positions, not on output processing order. We emulate order
// change by building the same logic with outputs declared in reverse.
func TestPDPOrderIndependence(t *testing.T) {
	t.Parallel()
	build := func(reverse bool) (*subject.DAG, []geom.Point) {
		d := subject.New()
		a := d.AddPI("a")
		b := d.AddPI("b")
		c := d.AddPI("c")
		n1 := d.AddNand2(a, b)
		n2 := d.AddNand2(n1, c)
		n3 := d.AddNand2(n1, a)
		if reverse {
			d.AddOutput("o2", n3)
			d.AddOutput("o1", n2)
		} else {
			d.AddOutput("o1", n2)
			d.AddOutput("o2", n3)
		}
		pos := uniformPos(d)
		return d, pos
	}
	d1, p1 := build(false)
	d2, p2 := build(true)
	f1, err := Partition(Input{DAG: d1, Pos: p1}, PDP)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Partition(Input{DAG: d2, Pos: p2}, PDP)
	if err != nil {
		t.Fatal(err)
	}
	// Gate IDs are identical across builds (same creation order).
	for g := range f1.Father {
		if f1.Father[g] != f2.Father[g] {
			t.Fatalf("PDP differs with output order: gate %d: %d vs %d", g, f1.Father[g], f2.Father[g])
		}
	}
	// Cone, by contrast, is expected to differ on this example.
	c1, _ := Partition(Input{DAG: d1}, Cone)
	c2, _ := Partition(Input{DAG: d2}, Cone)
	same := true
	for g := range c1.Father {
		if c1.Father[g] != c2.Father[g] {
			same = false
			break
		}
	}
	if same {
		t.Log("cone partition happened to match across orders on this example")
	}
}

// TestPDPNearestInvariant is the paper's stated property: the father
// of every internal vertex is the nearest consumer.
func TestPDPNearestInvariant(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		d := randomDAG(rng, 5, 30)
		pos := make([]geom.Point, d.NumGates())
		for i := range pos {
			pos[i] = geom.Pt(rng.Float64()*50, rng.Float64()*50)
		}
		f, err := Partition(Input{DAG: d, Pos: pos}, PDP)
		if err != nil {
			t.Fatal(err)
		}
		live := map[int]bool{}
		for _, g := range d.LiveGates() {
			live[g] = true
		}
		for g, fa := range f.Father {
			if fa < 0 {
				continue
			}
			dg := pos[g].Manhattan(pos[fa])
			for _, fo := range d.Fanouts(g) {
				if !live[fo] {
					continue
				}
				if pos[g].Manhattan(pos[fo]) < dg-1e-12 {
					t.Fatalf("gate %d: father %d at %g but consumer %d at %g",
						g, fa, dg, fo, pos[g].Manhattan(pos[fo]))
				}
			}
		}
	}
}

func TestTreesTopologicalAndChildren(t *testing.T) {
	t.Parallel()
	d, n := buildDiamond()
	f, err := Partition(Input{DAG: d}, Dagon)
	if err != nil {
		t.Fatal(err)
	}
	trees := f.Trees(d)
	var big *Tree
	for i := range trees {
		if trees[i].Root == n[3] {
			big = &trees[i]
		}
	}
	if big == nil {
		t.Fatal("tree rooted at n4 missing")
	}
	if len(big.Gates) != 3 {
		t.Fatalf("tree gates = %v, want {n2,n3,n4}", big.Gates)
	}
	kids := big.Children[n[3]]
	if len(kids) != 2 {
		t.Errorf("children of root = %v", kids)
	}
	inTree := big.InTree()
	if !inTree(n[1]) || !inTree(n[2]) || inTree(n[0]) {
		t.Error("InTree membership wrong")
	}
	s := f.Stats(d)
	if s.Trees != 2 || s.TreeGates != 4 || s.MaxTreeSize != 3 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestMethodString(t *testing.T) {
	t.Parallel()
	if Dagon.String() != "dagon" || Cone.String() != "cone" || PDP.String() != "pdp" {
		t.Error("Method.String broken")
	}
}

package partition

import (
	"math/rand"
	"testing"

	"casyn/internal/geom"
	"casyn/internal/subject"
)

func TestDieRegions(t *testing.T) {
	t.Parallel()
	die := geom.R(0, 0, 100, 60)
	for _, k := range []int{1, 2, 3, 4, 7, 8} {
		regs := DieRegions(die, k)
		if len(regs) != k {
			t.Fatalf("k=%d: %d regions", k, len(regs))
		}
		total := 0.0
		for i, r := range regs {
			if r.W() <= 0 || r.H() <= 0 {
				t.Fatalf("k=%d: degenerate region %v", k, r)
			}
			total += r.Area()
			for j := i + 1; j < k; j++ {
				o := regs[j]
				// Territory disjointness: regions may share edges but
				// never interior area.
				w := mathMin(r.Max.X, o.Max.X) - mathMax(r.Min.X, o.Min.X)
				h := mathMin(r.Max.Y, o.Max.Y) - mathMax(r.Min.Y, o.Min.Y)
				if w > 1e-9 && h > 1e-9 {
					t.Fatalf("k=%d: regions %d and %d overlap", k, i, j)
				}
			}
		}
		if diff := total - die.Area(); diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("k=%d: region areas sum to %g, die is %g", k, total, die.Area())
		}
	}
	// Determinism.
	a := DieRegions(die, 8)
	b := DieRegions(die, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("DieRegions not deterministic")
		}
	}
}

func mathMin(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func mathMax(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// TestKWayZeroMoveBitIdentical pins the acceptance anchor: a run with
// no move passes and no replication returns the input DAG, forest, and
// placement pointer-identical — today's recursive-bisection behavior.
func TestKWayZeroMoveBitIdentical(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	d := randomDAG(rng, 8, 120)
	pos := make([]geom.Point, d.NumGates())
	for i := range pos {
		pos[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	f, err := Partition(Input{DAG: d, Pos: pos}, PDP)
	if err != nil {
		t.Fatal(err)
	}
	res, err := KWay(d, f, KWayOptions{
		K: 4, Die: geom.R(0, 0, 100, 100), Pos: pos,
		MovePasses: -1, Replicate: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DAG != d || res.Forest != f {
		t.Fatal("zero-move run must return the input DAG and forest unchanged")
	}
	if len(res.Pos) != len(pos) || &res.Pos[0] != &pos[0] {
		t.Fatal("zero-move run must return the input placement unchanged")
	}
	if res.Moves != 0 || res.Replicas != 0 {
		t.Fatalf("zero-move run reports moves=%d replicas=%d", res.Moves, res.Replicas)
	}
	if res.CutNets != res.CutNetsSeed || res.Steiner != res.SteinerSeed {
		t.Fatal("zero-move metrics must equal the seed metrics")
	}
}

// kwayAssignments recounts tree gates per region from RegionOf.
func kwayAssignments(res *KWayResult) []int {
	areas := make([]int, len(res.Regions))
	for _, r := range res.RegionOf {
		if r >= 0 {
			areas[r]++
		}
	}
	return areas
}

// TestKWayInvariants extends the partitioner invariant suite to direct
// k-way runs for k in {2,4,8}, with replication enabled: the result
// forest keeps exactly-once membership, both metrics are monotone
// non-increasing from the seed, every region stays within the balance
// cap it started under, and a replicated DAG is functionally identical
// to the original on every input.
func TestKWayInvariants(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(31))
	die := geom.R(0, 0, 100, 100)
	for trial := 0; trial < 6; trial++ {
		d := randomDAG(rng, 6, 80)
		pos := make([]geom.Point, d.NumGates())
		for i := range pos {
			pos[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		f, err := Partition(Input{DAG: d, Pos: pos}, PDP)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{2, 4, 8} {
			opt := KWayOptions{K: k, Die: die, Pos: pos, Replicate: true}
			res, err := KWay(d, f, opt)
			if err != nil {
				t.Fatal(err)
			}
			checkForestInvariants(t, res.DAG, res.Forest, PDP)
			if res.CutNets > res.CutNetsSeed {
				t.Fatalf("k=%d: cut nets rose %d -> %d", k, res.CutNetsSeed, res.CutNets)
			}
			if res.Steiner > res.SteinerSeed+1e-9 {
				t.Fatalf("k=%d: steiner rose %g -> %g", k, res.SteinerSeed, res.Steiner)
			}
			// Balance: no region may exceed max(seed load, cap).
			seed, err := KWay(d, f, KWayOptions{K: k, Die: die, Pos: pos, MovePasses: -1})
			if err != nil {
				t.Fatal(err)
			}
			after := kwayAssignments(res)
			before := kwayAssignments(seed)
			total := 0
			for _, a := range before {
				total += a
			}
			perRegion := (total + k - 1) / k
			cap := perRegion + int(float64(perRegion)*0.15)
			for r := range after {
				limit := cap
				if before[r] > limit {
					limit = before[r]
				}
				if after[r] > limit {
					t.Fatalf("k=%d: region %d has %d gates, limit %d (seed %d)",
						k, r, after[r], limit, before[r])
				}
			}
			// Region assignment is per tree: every gate of a tree lands
			// in its root's region, and only PIs/consts/dead are -1.
			rootOf := res.Forest.RootOf(res.DAG)
			for g, reg := range res.RegionOf {
				if r := rootOf[g]; r >= 0 {
					if reg < 0 || reg != res.RegionOf[r] {
						t.Fatalf("k=%d: gate %d region %d, root %d region %d",
							k, g, reg, r, res.RegionOf[r])
					}
				} else if reg != -1 {
					t.Fatalf("k=%d: non-tree gate %d has region %d", k, g, reg)
				}
			}
			// Functional equivalence of the replicated DAG (small PI
			// count: exhaustive).
			if res.Replicas > 0 {
				checkSameFunction(t, d, res.DAG)
			}
		}
	}
}

// checkSameFunction exhaustively compares two DAGs with the same PI
// and output interface.
func checkSameFunction(t *testing.T, a, b *subject.DAG) {
	t.Helper()
	n := len(a.PIs())
	if n > 16 {
		t.Fatalf("checkSameFunction: %d PIs too many for exhaustive check", n)
	}
	in := make([]bool, n)
	for m := 0; m < 1<<n; m++ {
		for i := range in {
			in[i] = m&(1<<i) != 0
		}
		oa, err := a.EvalOutputs(in)
		if err != nil {
			t.Fatal(err)
		}
		ob, err := b.EvalOutputs(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("outputs differ on input %b: %v vs %v", m, oa, ob)
			}
		}
	}
}

// TestKWayReplicatesAcrossCut drives the replication path directly: a
// multi-fanout driver anchored on the left die half (by its output
// pad) with every gate sink on the right half. Moving the driver tree
// cannot help (the pad pins it), so only replication removes the cut
// net.
func TestKWayReplicatesAcrossCut(t *testing.T) {
	t.Parallel()
	d := subject.New()
	a := d.AddPI("a")
	b := d.AddPI("b")
	c := d.AddPI("c")
	drv := d.AddNand2(a, b) // multi-fanout driver, left
	s1 := d.AddNand2(drv, c)
	s2 := d.AddInv(drv)
	d.AddOutput("odrv", drv)
	d.AddOutput("o1", s1)
	d.AddOutput("o2", s2)

	pos := make([]geom.Point, d.NumGates())
	pos[drv] = geom.Pt(10, 50)
	pos[s1] = geom.Pt(90, 40)
	pos[s2] = geom.Pt(90, 60)
	pads := map[int][]geom.Point{
		drv: {geom.Pt(0, 50)},
		s1:  {geom.Pt(100, 40)},
		s2:  {geom.Pt(100, 60)},
	}
	f, err := Partition(Input{DAG: d, Pos: pos, POPads: pads}, PDP)
	if err != nil {
		t.Fatal(err)
	}
	res, err := KWay(d, f, KWayOptions{
		K: 2, Die: geom.R(0, 0, 100, 100), Pos: pos, POPads: pads,
		Replicate: true, ReplicaAreaBudget: 1, BalanceTol: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replicas != 1 {
		t.Fatalf("replicas = %d, want 1", res.Replicas)
	}
	if res.DAG == d {
		t.Fatal("replication must clone the DAG, not mutate the input")
	}
	if d.NumReplicas() != 0 {
		t.Fatal("input DAG mutated by replication")
	}
	if res.CutNets >= res.CutNetsSeed {
		t.Fatalf("cut nets %d not reduced from seed %d", res.CutNets, res.CutNetsSeed)
	}
	if res.Steiner >= res.SteinerSeed {
		t.Fatalf("steiner %g not reduced from seed %g", res.Steiner, res.SteinerSeed)
	}
	// The replica is its own single-gate tree in the right region,
	// placed at its sinks' center of mass, and lineage is recorded.
	rid := res.DAG.NumGates() - 1
	if res.DAG.ReplicaOf(rid) != drv {
		t.Fatalf("replica lineage = %d, want %d", res.DAG.ReplicaOf(rid), drv)
	}
	if res.Forest.Father[rid] != -1 {
		t.Fatal("replica must be a forest root")
	}
	if got := res.RegionOf[rid]; got != res.RegionOf[s1] {
		t.Fatalf("replica region %d, sinks in %d", got, res.RegionOf[s1])
	}
	want := geom.CenterOfMass([]geom.Point{pos[s1], pos[s2]})
	if res.Pos[rid] != want {
		t.Fatalf("replica at %v, want sink center %v", res.Pos[rid], want)
	}
	// The original keeps the PO; the sinks read the replica.
	for _, o := range res.DAG.Outputs() {
		if o.Name == "odrv" && o.Gate != drv {
			t.Fatal("PO moved off the original driver")
		}
	}
	for _, s := range []int{s1, s2} {
		found := false
		for _, fi := range res.DAG.Fanins(s) {
			if fi == rid {
				found = true
			}
		}
		if !found {
			t.Fatalf("sink %d not rewired onto replica", s)
		}
	}
	checkForestInvariants(t, res.DAG, res.Forest, PDP)
	checkSameFunction(t, d, res.DAG)
}

// TestDeepChainNoStackOverflow is the satellite-1 regression: the cone
// grower and the tree materializer used to recurse once per gate and
// could blow the stack on million-gate chains. The explicit-stack
// rewrites must handle a 1M-gate chain.
func TestDeepChainNoStackOverflow(t *testing.T) {
	t.Parallel()
	d := subject.New()
	a := d.AddPI("a")
	b := d.AddPI("b")
	prev := d.AddNand2(a, b)
	const depth = 1 << 20
	for i := 0; i < depth; i++ {
		// NAND(prev, b) never folds and never re-shares: a fresh gate
		// per step, one deep chain.
		prev = d.AddNand2(prev, b)
	}
	d.AddOutput("o", prev)
	for _, m := range []Method{Cone, Dagon} {
		f, err := Partition(Input{DAG: d}, m)
		if err != nil {
			t.Fatal(err)
		}
		trees := f.Trees(d)
		if len(trees) != 1 {
			t.Fatalf("%v: %d trees for a single chain", m, len(trees))
		}
		if got := len(trees[0].Gates); got != depth+1 {
			t.Fatalf("%v: chain tree has %d gates, want %d", m, got, depth+1)
		}
		rootOf := f.RootOf(d)
		if rootOf[trees[0].Gates[0]] != prev {
			t.Fatalf("%v: deepest gate not rooted at the chain head", m)
		}
	}
}

// TestStatsCachedMatchesRecomputed is the satellite-3 regression: the
// Forest caches trees, root lookup, and stats at finish() time; the
// cached values must equal a from-scratch recomputation.
func TestStatsCachedMatchesRecomputed(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		d := randomDAG(rng, 6, 60)
		f, err := Partition(Input{DAG: d}, Dagon)
		if err != nil {
			t.Fatal(err)
		}
		if !f.cached {
			t.Fatal("finish() must populate the caches eagerly")
		}
		if got, want := f.Stats(d), statsOf(f.materializeTrees()); got != want {
			t.Fatalf("cached stats %+v != recomputed %+v", got, want)
		}
		fresh := f.computeRootOf(d.NumGates())
		cached := f.RootOf(d)
		for g := range fresh {
			if fresh[g] != cached[g] {
				t.Fatalf("rootOf[%d]: cached %d, recomputed %d", g, cached[g], fresh[g])
			}
		}
	}
}

// TestKWayPressure250k is ROADMAP item 3's promised default-run
// pressure point: a 250k-gate subject through PDP partitioning and a
// replicating k-way run, with the invariant suite over the result.
func TestKWayPressure250k(t *testing.T) {
	if testing.Short() {
		t.Skip("250k-gate pressure point skipped in -short")
	}
	t.Parallel()
	rng := rand.New(rand.NewSource(99))
	d := randomDAG(rng, 64, 250_000)
	pos := make([]geom.Point, d.NumGates())
	for i := range pos {
		pos[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	f, err := Partition(Input{DAG: d, Pos: pos}, PDP)
	if err != nil {
		t.Fatal(err)
	}
	res, err := KWay(d, f, KWayOptions{
		K: 4, Die: geom.R(0, 0, 1000, 1000), Pos: pos,
		MovePasses: 1, Replicate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CutNets > res.CutNetsSeed || res.Steiner > res.SteinerSeed+1e-6 {
		t.Fatalf("metrics rose: cut %d->%d steiner %g->%g",
			res.CutNetsSeed, res.CutNets, res.SteinerSeed, res.Steiner)
	}
	checkForestInvariants(t, res.DAG, res.Forest, PDP)
	t.Logf("250k pressure: cut %d->%d steiner %.0f->%.0f moves=%d replicas=%d",
		res.CutNetsSeed, res.CutNets, res.SteinerSeed, res.Steiner, res.Moves, res.Replicas)
}

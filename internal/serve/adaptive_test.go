package serve

// Daemon-side tests for "k_mode":"adaptive" — the closed-loop
// congestion controller as a job spec. The mode must run end to end,
// report its routed trajectory, share the K-invariant prepared prefix
// with fixed-K jobs, and never share a result-cache entry with them.

import (
	"encoding/json"
	"net/http"
	"strconv"
	"testing"
)

func TestAdaptiveJob(t *testing.T) {
	s, ts := testServer(t, Config{})
	resp, m := postJob(t, ts, `{"pla":`+strconv.Quote(tinyPLA)+`,"k_mode":"adaptive"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%v)", resp.StatusCode, m)
	}
	job := waitTerminal(t, s, m["id"].(string))
	res, jerr := job.Result()
	if jerr != nil {
		t.Fatalf("adaptive job failed: %+v", jerr)
	}
	if res.AdaptiveIterations < 1 || res.AdaptiveIterations > 3 {
		t.Errorf("adaptive_iterations = %d, budget is [1, 3]", res.AdaptiveIterations)
	}
	if len(res.Iterations) != res.AdaptiveIterations {
		t.Errorf("%d iteration rows, want %d", len(res.Iterations), res.AdaptiveIterations)
	}
	if res.BestK != nil {
		t.Errorf("best_k = %v on an adaptive job (K is the fixed baseline)", *res.BestK)
	}
	if res.Report == "" || res.NumCells == 0 {
		t.Fatalf("empty result: %+v", res)
	}
}

// TestAdaptiveSharesPrefixNotResult pins the two cache contracts at
// once: a fixed-K job and an adaptive job on the same circuit share
// the K-invariant prepared prefix (the expensive part), but must not
// serve each other's cached results — the computations differ.
func TestAdaptiveSharesPrefixNotResult(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1})
	spec := `{"pla":` + strconv.Quote(tinyPLA) + `,"k":0.001}`
	_, m1 := postJob(t, ts, spec)
	fixed := waitTerminal(t, s, m1["id"].(string))
	_, m2 := postJob(t, ts, `{"pla":`+strconv.Quote(tinyPLA)+`,"k":0.001,"k_mode":"adaptive"}`)
	adaptive := waitTerminal(t, s, m2["id"].(string))

	if fixed.prepKey != adaptive.prepKey {
		t.Error("fixed and adaptive jobs did not share a prep key")
	}
	if fixed.resultKey == adaptive.resultKey {
		t.Error("fixed and adaptive jobs share a result key")
	}
	fres, jerr := fixed.Result()
	if jerr != nil {
		t.Fatalf("fixed job failed: %+v", jerr)
	}
	ares, jerr := adaptive.Result()
	if jerr != nil {
		t.Fatalf("adaptive job failed: %+v", jerr)
	}
	if fres.AdaptiveIterations != 0 {
		t.Errorf("fixed job reports %d adaptive iterations", fres.AdaptiveIterations)
	}
	if ares.AdaptiveIterations == 0 {
		t.Error("adaptive job reports no adaptive iterations")
	}
	if ares.Cache == "result" {
		t.Errorf("adaptive job served from the result cache (tag %q)", ares.Cache)
	}
	if ares.Cache != "prepared" {
		t.Errorf("adaptive job cache tag %q, want the shared prefix (prepared)", ares.Cache)
	}

	// An exact adaptive repeat is a result-cache hit.
	_, m3 := postJob(t, ts, `{"pla":`+strconv.Quote(tinyPLA)+`,"k":0.001,"k_mode":"adaptive"}`)
	repeat := waitTerminal(t, s, m3["id"].(string))
	rres, jerr := repeat.Result()
	if jerr != nil {
		t.Fatalf("repeat adaptive job failed: %+v", jerr)
	}
	if rres.Cache != "result" {
		t.Errorf("repeat adaptive job cache tag %q, want result", rres.Cache)
	}
	if rres.AdaptiveIterations != ares.AdaptiveIterations {
		t.Errorf("cached repeat reports %d adaptive iterations, original %d",
			rres.AdaptiveIterations, ares.AdaptiveIterations)
	}
}

func TestAdaptiveSpecValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	for _, body := range []string{
		`{"pla":` + strconv.Quote(tinyPLA) + `,"k_mode":"adaptive","k_schedule":[0.1]}`,
		`{"pla":` + strconv.Quote(tinyPLA) + `,"k_mode":"spicy"}`,
	} {
		resp, m := postJob(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400 (%v)", body, resp.StatusCode, m)
		}
	}
}

// TestKModeResultKeys pins the key algebra: "" and "fixed" are the
// same computation and share an entry; "adaptive" never collides with
// either.
func TestKModeResultKeys(t *testing.T) {
	t.Parallel()
	key := func(kmode string) string {
		t.Helper()
		spec := &JobSpec{PLA: tinyPLA, K: 0.001, KMode: kmode}
		if err := spec.Validate(); err != nil {
			t.Fatal(err)
		}
		rk, err := spec.ResultKey()
		if err != nil {
			t.Fatal(err)
		}
		return rk
	}
	if key("") != key("fixed") {
		t.Error(`k_mode "" and "fixed" produce different result keys`)
	}
	if key("") == key("adaptive") {
		t.Error(`k_mode "" and "adaptive" share a result key`)
	}
}

// TestAdaptiveJobJSONShape decodes the HTTP result body, pinning the
// wire names.
func TestAdaptiveJobJSONShape(t *testing.T) {
	s, ts := testServer(t, Config{})
	_, m := postJob(t, ts, `{"pla":`+strconv.Quote(tinyPLA)+`,"k_mode":"adaptive"}`)
	id := m["id"].(string)
	waitTerminal(t, s, id)
	rr, err := http.Get(ts.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	var body struct {
		Result map[string]any `json:"result"`
	}
	if err := json.NewDecoder(rr.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if rr.StatusCode != http.StatusOK || body.Result == nil {
		t.Fatalf("result: %d %+v", rr.StatusCode, body)
	}
	n, ok := body.Result["adaptive_iterations"].(float64)
	if !ok || n < 1 {
		t.Errorf("adaptive_iterations missing or zero in wire result: %v",
			body.Result["adaptive_iterations"])
	}
	if _, ok := body.Result["iterations"].([]any); !ok {
		t.Error("iterations trajectory missing from wire result")
	}
}

package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"casyn/internal/runstage"
)

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// JobError is the structured failure body of a job: the pipeline stage
// and K it died in (when known), with the failure mode flags a client
// routes retries on. A panicked job reports here — the process never
// dies with it.
type JobError struct {
	Stage    string  `json:"stage,omitempty"`
	K        float64 `json:"k,omitempty"`
	Panicked bool    `json:"panicked,omitempty"`
	Timeout  bool    `json:"timeout,omitempty"`
	Canceled bool    `json:"canceled,omitempty"`
	Message  string  `json:"message"`
}

// newJobError condenses a pipeline failure into its structured form.
func newJobError(err error) *JobError {
	je := &JobError{Message: err.Error()}
	if se := runstage.AsStage(err); se != nil {
		je.Stage = string(se.Stage)
		je.K = se.K
		je.Panicked = se.Panicked
		je.Timeout = se.Timeout()
		je.Canceled = se.Canceled()
		return je
	}
	je.Timeout = errors.Is(err, context.DeadlineExceeded)
	je.Canceled = errors.Is(err, context.Canceled)
	return je
}

// IterationSummary is one K rung of a sweep job's result.
type IterationSummary struct {
	K                 float64 `json:"k"`
	NumCells          int     `json:"num_cells,omitempty"`
	CellArea          float64 `json:"cell_area,omitempty"`
	Utilization       float64 `json:"utilization,omitempty"`
	Violations        int     `json:"violations"`
	FailedConnections int     `json:"failed_connections"`
	WireLength        float64 `json:"wire_length,omitempty"`
	Routable          bool    `json:"routable"`
	Skipped           bool    `json:"skipped,omitempty"`
	Err               string  `json:"error,omitempty"`
}

// JobResult is the JSON body of a completed job. Scalar fields mirror
// casyn.Result; Report is the paper-style text the one-shot CLI
// prints, byte-identical for the same spec.
type JobResult struct {
	BaseGates      int     `json:"base_gates"`
	NumCells       int     `json:"num_cells"`
	CellArea       float64 `json:"cell_area"`
	Utilization    float64 `json:"utilization"`
	Violations     int     `json:"violations"`
	Routable       bool    `json:"routable"`
	WireLength     float64 `json:"wire_length"`
	CriticalPathNs float64 `json:"critical_path_ns,omitempty"`
	CriticalPath   string  `json:"critical_path,omitempty"`
	Verified       bool    `json:"verified,omitempty"`
	// Dies, ReplicatedGates, and CrossRegionNets describe a multi-die
	// job ("dies" > 1 in the spec): the region count, the cut drivers
	// cloned across the partition boundary, and the routed nets that
	// cross a region boundary (all zero for single-die jobs).
	Dies            int    `json:"dies,omitempty"`
	ReplicatedGates int    `json:"replicated_gates,omitempty"`
	CrossRegionNets int    `json:"cross_region_nets,omitempty"`
	Report          string `json:"report"`
	// Verilog is the mapped netlist (populated in responses only when
	// the spec asked for it; always carried internally so the result
	// cache can serve either shape).
	Verilog string `json:"verilog,omitempty"`
	// Iterations and BestK describe a sweep job (empty for single-K).
	// An adaptive job ("k_mode":"adaptive") also fills Iterations — one
	// row per routed iteration of the closed loop, K fixed at the
	// baseline — plus AdaptiveIterations.
	Iterations []IterationSummary `json:"iterations,omitempty"`
	BestK      *float64           `json:"best_k,omitempty"`
	// AdaptiveIterations counts the closed loop's routed iterations
	// (zero for fixed-K jobs).
	AdaptiveIterations int `json:"adaptive_iterations,omitempty"`
	// StageWallMS is the measured per-stage wall clock of the run that
	// produced this result (empty on a result-cache hit).
	StageWallMS map[string]float64 `json:"stage_wall_ms,omitempty"`
	// Cache reports how the job was served: "cold" (full compute),
	// "prepared" (shared mapping prefix reused), or "result" (exact
	// repeat, no compute).
	Cache string `json:"cache,omitempty"`
	// ECO describes an incremental job (POST /jobs/{id}/eco); nil for
	// ordinary submissions.
	ECO *ECOInfo `json:"eco,omitempty"`
	// Retries counts transient-failure retries the job survived.
	Retries int `json:"retries,omitempty"`
}

// clone returns a shallow copy whose mutable annotations (Cache,
// Retries, StageWallMS) can be rewritten without touching the cached
// original.
func (r *JobResult) clone() *JobResult {
	cp := *r
	return &cp
}

// Job is one tracked submission.
type Job struct {
	ID   string  `json:"id"`
	Spec JobSpec `json:"-"`
	// prepKey and resultKey are the spec's cache keys, computed once at
	// Submit (hashing an inline PLA is not free) and reused on every
	// attempt by runJob/prepared.
	prepKey   string
	resultKey string
	// eco marks an incremental ECO job (POST /jobs/{id}/eco): the edit
	// set to apply against the parent job's synthesis lineage. Nil for
	// ordinary submissions.
	eco *ecoJob

	mu       sync.Mutex
	status   Status
	result   *JobResult
	jerr     *JobError
	retries  int
	cancel   context.CancelFunc
	submitAt time.Time
	startAt  time.Time
	finishAt time.Time

	// done closes exactly once when the job reaches a terminal state.
	done chan struct{}
}

func newJob(id string, spec JobSpec, prepKey, resultKey string) *Job {
	return &Job{
		ID:        id,
		Spec:      spec,
		prepKey:   prepKey,
		resultKey: resultKey,
		status:    StatusQueued,
		submitAt:  time.Now(),
		done:      make(chan struct{}),
	}
}

// Status returns the job's current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Result returns the terminal outcome (result or structured error);
// both are nil while the job is still queued or running.
func (j *Job) Result() (*JobResult, *JobError) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.jerr
}

// Done exposes the terminal-state signal.
func (j *Job) Done() <-chan struct{} { return j.done }

// start transitions queued → running, returning false when the job was
// canceled while waiting in the queue (the worker must skip it).
func (j *Job) start(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	j.cancel = cancel
	j.startAt = time.Now()
	return true
}

// finish records the terminal state exactly once.
func (j *Job) finish(status Status, res *JobResult, jerr *JobError, retries int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.Terminal() {
		return
	}
	j.status = status
	j.result = res
	j.jerr = jerr
	j.retries = retries
	j.finishAt = time.Now()
	j.cancel = nil
	close(j.done)
}

// Cancel requests cancellation: a queued job terminates immediately
// (the worker will skip it); a running job's context is canceled and
// the pipeline stops cooperatively. Terminal jobs are unaffected.
// It reports whether the call changed anything.
func (j *Job) Cancel() bool {
	j.mu.Lock()
	if j.status == StatusQueued {
		j.status = StatusCanceled
		j.jerr = &JobError{Canceled: true, Message: "canceled while queued"}
		j.finishAt = time.Now()
		close(j.done)
		j.mu.Unlock()
		return true
	}
	if j.status == StatusRunning && j.cancel != nil {
		cancel := j.cancel
		j.mu.Unlock()
		cancel()
		return true
	}
	j.mu.Unlock()
	return false
}

// wall returns the job's run duration (0 until it ran).
func (j *Job) wall() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.startAt.IsZero() || j.finishAt.IsZero() {
		return 0
	}
	return j.finishAt.Sub(j.startAt)
}

// Package serve is the synthesis-as-a-service layer: a fault-tolerant
// daemon wrapping the flow engine behind an HTTP/JSON API with a
// bounded job queue, admission control, per-job deadlines and
// cancellation, per-job panic isolation, cross-request caching of the
// expensive K-invariant mapping prefix, and graceful drain.
//
// # Failure model
//
// The daemon assumes any job can fail in any way the pipeline allows —
// errors, panics, blown budgets, cancellations — and guarantees that
// no job failure terminates the process or corrupts another job. Every
// pipeline stage already runs under runstage.Run (panic recovery,
// budgets); the serve layer adds a recover around the whole job (glue
// code included), bounded retry with backoff for transient failures,
// and structured JobError bodies so clients can route on the failure
// mode. Admission is honest: when the bounded queue is full the server
// says 429 with a Retry-After derived from measured job cost and queue
// depth rather than letting latency grow without bound.
//
// # Caching
//
// Two LRU caches exploit the iterative multi-user workload (see
// "Physically Aware Synthesis Revisited": near-identical requests
// differing only in K or placement): a prepared-prefix cache keyed by
// PrepKey shares the partition + match-enumeration work across K
// variations of one circuit, and a result cache keyed by ResultKey
// serves exact repeats without compute — sound because the whole flow
// is deterministic.
package serve

import (
	"context"
	"fmt"
	"io"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"casyn"
	"casyn/internal/flow"
	"casyn/internal/library"
	"casyn/internal/obs"
	"casyn/internal/place"
	"casyn/internal/runstage"
	"casyn/internal/subject"
)

// StageFrontend tags failures of the serve-side front end (PLA
// parsing, benchmark generation, subject decomposition) — work that
// happens before flow.Prepare and therefore outside the flow's own
// stages.
const StageFrontend = runstage.Stage("frontend")

// StageServe tags failures of the daemon glue itself (a panic outside
// any runstage-managed stage).
const StageServe = runstage.Stage("serve")

// Config parameterizes the daemon.
type Config struct {
	// QueueCap bounds the job queue; submissions beyond it are rejected
	// with ErrQueueFull (HTTP 429). Default 64.
	QueueCap int
	// Workers is the number of concurrent job executors. Default 2.
	Workers int
	// JobWorkers is the default per-job pipeline fan-out (covering and
	// routing goroutines); a spec's workers field overrides it per job.
	// Default 1 — a multi-tenant daemon gets its parallelism across
	// jobs, not inside them.
	JobWorkers int
	// JobTimeout bounds each job's wall clock (0 = none); a spec's
	// timeout_ms overrides it per job. StageTimeout likewise bounds
	// individual pipeline stages.
	JobTimeout   time.Duration
	StageTimeout time.Duration
	// DrainTimeout bounds Drain when its context has no deadline.
	// Default 30s.
	DrainTimeout time.Duration
	// Retries is how many times a transiently-failed job is retried
	// (with exponential backoff starting at RetryBackoff, default
	// 50ms). Cancellations and job-deadline expiries are never
	// retried. Default 0 — opt in.
	Retries      int
	RetryBackoff time.Duration
	// PreparedCacheSize and ResultCacheSize bound the two LRUs in
	// entries; negative disables a cache. Defaults 32 and 256.
	PreparedCacheSize int
	ResultCacheSize   int
	// MaxJobs bounds the in-memory job table; beyond it the oldest
	// *terminal* jobs are forgotten (their results become 404). Jobs
	// that are queued or running are never evicted. Default 4096.
	MaxJobs int
	// Hooks injects faults into every job's pipeline (chaos testing).
	Hooks *runstage.Hooks
	// MetricsSink, when non-nil, receives the final JSONL metrics
	// snapshot exactly once, at drain/close.
	MetricsSink io.Writer
}

func (c *Config) defaults() {
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.JobWorkers == 0 {
		c.JobWorkers = 1
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.PreparedCacheSize == 0 {
		c.PreparedCacheSize = 32
	}
	if c.ResultCacheSize == 0 {
		c.ResultCacheSize = 256
	}
	if c.MaxJobs == 0 {
		c.MaxJobs = 4096
	}
}

// ErrQueueFull rejects a submission when the bounded queue is at
// capacity; RetryAfter estimates when capacity should free up.
type ErrQueueFull struct {
	RetryAfter time.Duration
}

func (e *ErrQueueFull) Error() string {
	return fmt.Sprintf("job queue full; retry after %s", e.RetryAfter)
}

// ErrDraining rejects submissions during graceful shutdown.
var ErrDraining = fmt.Errorf("server is draining; not admitting jobs")

// prepEntry is one prepared-prefix cache entry: the decomposed subject
// DAG, its floorplan, and the flow context carrying the placed
// technology-independent netlist plus the shared mapper.Prepared. All
// of it is immutable after construction and shared read-only across
// concurrent jobs.
type prepEntry struct {
	dag    *subject.DAG
	layout place.Layout
	pc     *flow.Context
}

// Server is the synthesis daemon. Create with New, serve its Handler,
// stop with Drain (graceful) or Close (immediate).
type Server struct {
	cfg Config
	// lib is the single shared cell library: mapper.Prepared guards
	// compatibility by pointer identity, so every job must map against
	// this exact instance for the prepared cache to hit.
	lib *library.Library
	rec *obs.Recorder

	baseCtx    context.Context
	baseCancel context.CancelFunc

	queue chan *Job
	wg    sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for terminal-job eviction
	nextID   int64
	draining bool

	prepCache *lru[*prepEntry]
	resCache  *lru[*JobResult]
	// ecoCache holds per-(prefix, K) baseline synthesis states for the
	// incremental ECO path: the mapping/covering/routing residue an
	// edit set is diffed against. Keyed by prepKey + K, so every ECO
	// against the same parent lineage reuses one baseline.
	ecoCache *lru[*flow.ECOState]

	// ewmaNs tracks the exponentially-weighted moving average of job
	// wall time, the basis of the Retry-After estimate.
	ewmaNs atomic.Int64

	flushOnce sync.Once
	flushErr  error
}

// New builds the daemon and starts its worker pool.
func New(cfg Config) *Server {
	cfg.defaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		lib:        library.Default(),
		rec:        obs.New(),
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *Job, cfg.QueueCap),
		jobs:       make(map[string]*Job),
		prepCache:  newLRU[*prepEntry](cfg.PreparedCacheSize),
		resCache:   newLRU[*JobResult](cfg.ResultCacheSize),
		ecoCache:   newLRU[*flow.ECOState](cfg.PreparedCacheSize),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Metrics snapshots the server's observability state with the
// instantaneous gauges (queue depth, running jobs, cache occupancy)
// refreshed.
func (s *Server) Metrics() obs.Snapshot {
	s.rec.SetGauge("serve.queue_depth", int64(len(s.queue)))
	s.rec.SetGauge("serve.queue_capacity", int64(s.cfg.QueueCap))
	s.rec.SetGauge("serve.jobs_running", s.runningCount())
	s.rec.SetGauge("serve.cache.prepared_entries", int64(s.prepCache.len()))
	s.rec.SetGauge("serve.cache.result_entries", int64(s.resCache.len()))
	s.rec.SetGauge("serve.cache.eco_entries", int64(s.ecoCache.len()))
	return s.rec.Snapshot()
}

func (s *Server) runningCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, j := range s.jobs {
		if j.Status() == StatusRunning {
			n++
		}
	}
	return n
}

// Job looks up a tracked job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Submit validates and admits a job. It returns ErrDraining during
// shutdown, *ErrQueueFull when the bounded queue is at capacity, and a
// validation error for an unacceptable spec; otherwise the job is
// queued and its ID final.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		s.rec.Add("serve.jobs_invalid", 1)
		return nil, err
	}
	prepKey, err := spec.PrepKey()
	if err != nil {
		s.rec.Add("serve.jobs_invalid", 1)
		return nil, err
	}
	resultKey, err := spec.ResultKey()
	if err != nil {
		s.rec.Add("serve.jobs_invalid", 1)
		return nil, err
	}

	return s.admit(spec, prepKey, resultKey, nil)
}

// admit is the shared admission tail of Submit and SubmitECO: drain
// check, bounded-queue enqueue, job-table insert.
func (s *Server) admit(spec JobSpec, prepKey, resultKey string, eco *ecoJob) (*Job, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rec.Add("serve.jobs_rejected_draining", 1)
		return nil, ErrDraining
	}
	s.nextID++
	job := newJob(fmt.Sprintf("j%06d", s.nextID), spec, prepKey, resultKey)
	job.eco = eco
	select {
	case s.queue <- job:
	default:
		s.nextID-- // the ID was never visible
		s.mu.Unlock()
		s.rec.Add("serve.jobs_rejected_full", 1)
		return nil, &ErrQueueFull{RetryAfter: s.retryAfter()}
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.evictTerminalLocked()
	s.mu.Unlock()
	s.rec.Add("serve.jobs_submitted", 1)
	return job, nil
}

// evictTerminalLocked forgets the oldest terminal jobs beyond MaxJobs.
// Queued and running jobs are never evicted — an admitted job's result
// is retrievable until retention pressure from *newer completed* work
// pushes it out.
func (s *Server) evictTerminalLocked() {
	excess := len(s.jobs) - s.cfg.MaxJobs
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && j != nil && j.Status().Terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// retryAfter estimates when queue capacity frees up: the measured
// per-job cost (EWMA of completed job wall time, falling back to the
// configured budgets when nothing has completed yet) times the queue
// depth, divided across the worker pool.
func (s *Server) retryAfter() time.Duration {
	est := time.Duration(s.ewmaNs.Load())
	if est == 0 {
		// No history yet: the runstage budget machinery is the bound we
		// actually enforce, so it is the honest estimate.
		switch {
		case s.cfg.JobTimeout > 0:
			est = s.cfg.JobTimeout
		case s.cfg.StageTimeout > 0:
			est = 6 * s.cfg.StageTimeout // the pipeline has six stages
		default:
			est = time.Second
		}
	}
	depth := len(s.queue)
	d := est * time.Duration(depth+1) / time.Duration(s.cfg.Workers)
	if d < time.Second {
		d = time.Second
	}
	if d > time.Hour {
		d = time.Hour
	}
	return d
}

// worker drains the queue until Drain closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.execute(job)
	}
}

// observeCompletion updates the EWMA after a job ran for d.
func (s *Server) observeCompletion(d time.Duration) {
	const alpha = 0.3
	for {
		old := s.ewmaNs.Load()
		var next int64
		if old == 0 {
			next = int64(d)
		} else {
			next = int64(float64(old)*(1-alpha) + float64(d)*alpha)
		}
		if s.ewmaNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// execute runs one job to a terminal state, with retry for transient
// failures and a final recover so that nothing a job does can take the
// worker (or the process) down.
func (s *Server) execute(job *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	if !job.start(cancel) {
		// Canceled while queued; nothing ran.
		s.rec.Add("serve.jobs_canceled", 1)
		return
	}
	timeout := s.cfg.JobTimeout
	if job.Spec.TimeoutMS > 0 {
		timeout = time.Duration(job.Spec.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, timeout)
		defer tcancel()
	}

	rec := obs.New() // per-job event stream, folded into s.rec at the end
	jctx := obs.WithRecorder(ctx, rec)

	start := time.Now()
	var res *JobResult
	var err error
	retries := 0
	for attempt := 0; ; attempt++ {
		res, err = s.runJobIsolated(jctx, job)
		if err == nil || attempt >= s.cfg.Retries || !retryable(ctx, err) {
			break
		}
		retries++
		s.rec.Add("serve.jobs_retried", 1)
		backoff := s.cfg.RetryBackoff << attempt
		t := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			t.Stop()
			err = &runstage.StageError{Stage: StageServe, Err: ctx.Err()}
		case <-t.C:
			continue
		}
		break
	}
	wall := time.Since(start)

	switch {
	case err == nil:
		res.Retries = retries
		job.finish(StatusDone, res, nil, retries)
		s.rec.Add("serve.jobs_completed", 1)
	case isCanceled(ctx, err):
		job.finish(StatusCanceled, nil, newJobError(err), retries)
		s.rec.Add("serve.jobs_canceled", 1)
	default:
		job.finish(StatusFailed, nil, newJobError(err), retries)
		s.rec.Add("serve.jobs_failed", 1)
	}

	s.foldJobMetrics(rec, res, wall)
	// Result-cache hits cost microseconds; folding them into the EWMA
	// would collapse the Retry-After estimate under a warm-cache
	// workload even when cold jobs take minutes. Only jobs that
	// actually computed (including failures) inform admission.
	if res == nil || res.Cache != "result" {
		s.observeCompletion(wall)
	}
}

// retryable decides whether a failure is worth another attempt: the
// job's own deadline/cancellation is final, as is an invalid spec; a
// stage error (including an injected transient fault or a stage-budget
// timeout) is transient as long as the job context is still live.
func retryable(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	return runstage.AsStage(err) != nil
}

// isCanceled distinguishes "the job was canceled or ran out of its
// deadline" from "the pipeline failed".
func isCanceled(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return true
	}
	if se := runstage.AsStage(err); se != nil {
		return se.Canceled()
	}
	return false
}

// stageWallBoundsMS buckets per-stage and per-job wall latencies.
var stageWallBoundsMS = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000}

// foldJobMetrics merges a job's event stream into the server recorder.
// Counters and histograms fold losslessly; the raw span stream is
// deliberately dropped (a long-running daemon cannot accumulate
// unbounded span lists) — instead each stage.* span lands in a
// per-stage latency histogram, which is what /metrics exports.
func (s *Server) foldJobMetrics(rec *obs.Recorder, res *JobResult, wall time.Duration) {
	snap := rec.Snapshot()
	s.rec.Merge(obs.Snapshot{Counters: snap.Counters, Histograms: snap.Histograms})
	for _, sp := range snap.Spans {
		if stage, ok := cutStagePrefix(sp.Name); ok {
			s.rec.Observe("serve.stage_ms."+stage, stageWallBoundsMS,
				float64(sp.Wall)/float64(time.Millisecond))
		}
	}
	s.rec.Observe("serve.job_ms", stageWallBoundsMS, float64(wall)/float64(time.Millisecond))
	if res != nil && res.Cache != "" {
		s.rec.Add("serve.jobs_cache_"+res.Cache, 1)
	}
}

func cutStagePrefix(name string) (string, bool) {
	const p = "stage."
	if len(name) > len(p) && name[:len(p)] == p {
		return name[len(p):], true
	}
	return "", false
}

// runJobIsolated is runJob behind a recover: a panic anywhere in the
// serve glue (outside the runstage-guarded stages) still comes back as
// a structured StageError instead of unwinding the worker goroutine —
// which would kill the whole process.
func (s *Server) runJobIsolated(ctx context.Context, job *Job) (res *JobResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &runstage.StageError{
				Stage:      StageServe,
				Err:        fmt.Errorf("panic: %v", r),
				Panicked:   true,
				PanicValue: r,
				Stack:      debug.Stack(),
			}
		}
	}()
	return s.runJob(ctx, job)
}

// runJob executes one job: result cache, prepared-prefix cache, then
// the flow. Cache keys were computed once at Submit (hashing an inline
// PLA is not free) and ride on the job.
func (s *Server) runJob(ctx context.Context, job *Job) (*JobResult, error) {
	if job.eco != nil {
		return s.runJobECO(ctx, job)
	}
	spec := &job.Spec
	if !spec.NoResultCache {
		if cached, ok := s.resCache.get(job.resultKey); ok {
			s.rec.Add("serve.cache.result_hits", 1)
			res := cached.clone()
			res.Cache = "result"
			res.StageWallMS = nil // this request did not run those stages
			return res, nil
		}
		s.rec.Add("serve.cache.result_misses", 1)
	}

	entry, cacheTag, err := s.prepared(ctx, spec, job.prepKey)
	if err != nil {
		return nil, err
	}

	opts := spec.options()
	if opts.Workers == 0 {
		opts.Workers = s.cfg.JobWorkers
	}
	if opts.StageTimeout == 0 {
		opts.StageTimeout = s.cfg.StageTimeout
	}
	cfg := casyn.FlowConfig(entry.layout, opts)
	cfg.Lib = s.lib
	cfg.Hooks = s.cfg.Hooks

	var res *JobResult
	switch {
	case spec.adaptive():
		res, err = s.runAdaptive(ctx, entry, cfg, spec)
	case len(spec.KSchedule) > 0:
		res, err = s.runSweep(ctx, entry, cfg, spec)
	default:
		res, err = s.runSingle(ctx, entry, cfg, spec.K)
	}
	if err != nil {
		return nil, err
	}
	res.Cache = cacheTag
	// Cache a private copy: execute annotates the returned result
	// (Retries) after it is published here, and concurrent cache
	// readers clone whatever pointer the LRU holds — sharing one
	// struct would be a write/read race under -race and in fact.
	s.resCache.add(job.resultKey, res.clone())
	return res, nil
}

// prepared returns the job's K-invariant prefix — from cache when a
// near-repeat job already built it, otherwise computed and cached. The
// front end (PLA parse / benchmark generation / decomposition) runs
// under StageFrontend so its panics and budget blowups are isolated
// like any pipeline stage.
func (s *Server) prepared(ctx context.Context, spec *JobSpec, prepKey string) (*prepEntry, string, error) {
	if entry, ok := s.prepCache.get(prepKey); ok {
		s.rec.Add("serve.cache.prepared_hits", 1)
		return entry, "prepared", nil
	}
	s.rec.Add("serve.cache.prepared_misses", 1)

	opts := spec.options()
	if opts.Workers == 0 {
		opts.Workers = s.cfg.JobWorkers
	}
	if opts.StageTimeout == 0 {
		opts.StageTimeout = s.cfg.StageTimeout
	}

	dag, err := runstage.Run(ctx, StageFrontend, 0, opts.StageTimeout, s.cfg.Hooks,
		func(ctx context.Context) (*subject.DAG, error) {
			p, err := spec.subjectPLA()
			if err != nil {
				return nil, err
			}
			return casyn.SubjectFor(ctx, p, opts)
		})
	if err != nil {
		return nil, "", err
	}
	layout, err := casyn.LayoutFor(dag, opts)
	if err != nil {
		return nil, "", &runstage.StageError{Stage: StageFrontend, Err: err}
	}
	cfg := casyn.FlowConfig(layout, opts)
	cfg.Lib = s.lib
	cfg.Hooks = s.cfg.Hooks
	pc, err := flow.Prepare(ctx, dag, cfg)
	if err != nil {
		return nil, "", err
	}
	if err := flow.PrepareMapping(ctx, pc, cfg); err != nil {
		return nil, "", err
	}
	// Concurrent jobs share the DAG read-only; warm the lazy fanout
	// cache so they cannot race on its rebuild.
	dag.PrecomputeFanouts()
	entry := &prepEntry{dag: dag, layout: layout, pc: pc}
	s.prepCache.add(prepKey, entry)
	return entry, "cold", nil
}

// runSingle maps, places, and routes one K rung.
func (s *Server) runSingle(ctx context.Context, entry *prepEntry, cfg flow.Config, k float64) (*JobResult, error) {
	it, err := flow.RunOnce(ctx, entry.pc, k, cfg)
	// Merge before the error check: a failed iteration's events (stage
	// timings, injected-fault counts) still belong in the job's stream.
	flow.MergeMetrics(ctx, it.Metrics)
	if err != nil {
		return nil, err
	}
	return s.buildResult(entry, &it, nil, nil)
}

// runSweep runs the K ladder and reports every rung plus the accepted
// one.
func (s *Server) runSweep(ctx context.Context, entry *prepEntry, cfg flow.Config, spec *JobSpec) (*JobResult, error) {
	cfg.KSchedule = append([]float64(nil), spec.KSchedule...)
	cfg.StopAtFirstRoutable = spec.StopAtFirstRoutable
	if spec.TimeoutMS == 0 && s.cfg.JobTimeout > 0 {
		// The job deadline is already on ctx; per-iteration budgeting
		// keeps one hopeless rung from eating the whole sweep.
		cfg.IterationTimeout = s.cfg.JobTimeout / time.Duration(len(cfg.KSchedule))
	}
	res, err := flow.Run(ctx, entry.pc, cfg)
	if err != nil {
		// flow.Run errors only when the sweep was canceled (possibly
		// with a partial best) or every K failed. A cancellation-
		// truncated ladder must surface as canceled — and must never
		// reach the result cache, which promises byte-identical-to-
		// recompute answers.
		return nil, err
	}
	sums := make([]IterationSummary, 0, len(res.Iterations))
	for i := range res.Iterations {
		it := &res.Iterations[i]
		sum := IterationSummary{
			K:                 it.K,
			NumCells:          it.NumCells,
			CellArea:          it.CellArea,
			Utilization:       it.Utilization,
			Violations:        it.Violations,
			FailedConnections: it.FailedConnections,
			WireLength:        it.WireLength,
			Routable:          it.Routable,
			Skipped:           it.Skipped,
		}
		if it.Err != nil {
			sum.Err = it.Err.Error()
		}
		sums = append(sums, sum)
	}
	best := res.Best()
	return s.buildResult(entry, best, sums, &best.K)
}

// runAdaptive runs the closed-loop congestion controller: one baseline
// iteration at spec.K (0 = the calibrated default) plus up to two
// steered steps, the spatial K-field inflated from each routed
// congestion map. The loop's operating mode is seeded placement — the
// region-local feedback is meaningless if every iteration re-anneals —
// so FreshPlacement is forced off, matching cmd/casyn -adaptive.
func (s *Server) runAdaptive(ctx context.Context, entry *prepEntry, cfg flow.Config, spec *JobSpec) (*JobResult, error) {
	cfg.FreshPlacement = false
	ares, err := flow.RunAdaptive(ctx, entry.pc, cfg, flow.AdaptiveConfig{BaseK: spec.K})
	if err != nil {
		return nil, err
	}
	best := ares.Best()
	if best == nil {
		return nil, &runstage.StageError{Stage: StageServe,
			Err: fmt.Errorf("adaptive loop completed no iterations")}
	}
	sums := make([]IterationSummary, 0, len(ares.Iterations))
	for i := range ares.Iterations {
		it := &ares.Iterations[i].Iteration
		sums = append(sums, IterationSummary{
			K:                 it.K,
			NumCells:          it.NumCells,
			CellArea:          it.CellArea,
			Utilization:       it.Utilization,
			Violations:        it.Violations,
			FailedConnections: it.FailedConnections,
			WireLength:        it.WireLength,
			Routable:          it.Routable,
		})
	}
	res, err := s.buildResult(entry, best, sums, nil)
	if err != nil {
		return nil, err
	}
	res.AdaptiveIterations = ares.RoutedIterations()
	return res, nil
}

// buildResult condenses an accepted iteration into the response shape.
func (s *Server) buildResult(entry *prepEntry, it *flow.Iteration, sums []IterationSummary, bestK *float64) (*JobResult, error) {
	r := casyn.ResultFrom(entry.dag, entry.layout, it)
	if kw := entry.pc.KWay; kw != nil {
		// Multi-die job: fill the k-way facts before Report() renders
		// so the daemon's report stays byte-identical to cmd/casyn.
		r.Dies = len(kw.Regions)
		r.ReplicatedGates = kw.Replicas
		r.CrossRegionNets = it.CrossRegionNets
	}
	res := &JobResult{
		BaseGates:       r.BaseGates,
		NumCells:        r.NumCells,
		CellArea:        r.CellArea,
		Utilization:     r.Utilization,
		Violations:      r.Violations,
		Routable:        r.Routable,
		WireLength:      r.WireLength,
		CriticalPathNs:  r.CriticalPathNs,
		CriticalPath:    r.CriticalPath,
		Verified:        r.Verify != nil && r.Verify.Equivalent,
		Dies:            r.Dies,
		ReplicatedGates: r.ReplicatedGates,
		CrossRegionNets: r.CrossRegionNets,
		Report:          r.Report(),
		Iterations:      sums,
		BestK:           bestK,
	}
	var vb writerBuilder
	if err := r.Mapped.WriteVerilog(&vb, "casyn_top"); err != nil {
		return nil, &runstage.StageError{Stage: StageServe, Err: err}
	}
	res.Verilog = vb.String()
	if m := it.Metrics; m != nil {
		res.StageWallMS = make(map[string]float64, len(m.Stages))
		for _, st := range m.Stages {
			res.StageWallMS[string(st.Stage)] += float64(st.Wall) / float64(time.Millisecond)
		}
	}
	return res, nil
}

// Draining reports whether graceful shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the daemon down: admission stops immediately
// (ErrDraining / HTTP 503), queued and running jobs get until ctx's
// deadline (or Config.DrainTimeout when it has none) to finish, any
// still in flight after that are canceled — recorded as canceled with
// their partial metrics, never silently lost — and the final metrics
// snapshot is flushed to Config.MetricsSink exactly once. Drain is
// idempotent; concurrent calls all wait for completion.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	first := !s.draining
	if first {
		s.draining = true
		// Admission checks s.draining under s.mu before sending, so no
		// send can race this close.
		close(s.queue)
	}
	s.mu.Unlock()

	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.DrainTimeout)
		defer cancel()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = fmt.Errorf("drain deadline: %w", ctx.Err())
		s.cancelAll()
		// Cancellation is cooperative and prompt; the workers observe it
		// within one check interval and finish their jobs as canceled.
		<-done
	}
	s.flushOnce.Do(func() {
		s.rec.Add("serve.metrics_flushes", 1)
		if s.cfg.MetricsSink != nil {
			s.flushErr = obs.WriteJSONL(s.cfg.MetricsSink, s.Metrics())
		}
	})
	s.baseCancel()
	if drainErr != nil {
		return drainErr
	}
	return s.flushErr
}

// cancelAll cancels every non-terminal job (drain deadline expired).
func (s *Server) cancelAll() {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.Cancel()
	}
}

// Close shuts down immediately: drain with an already-expired window,
// so in-flight jobs are canceled right away. The metrics flush still
// happens (exactly once across Drain/Close).
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Drain(ctx)
	if err != nil && s.flushErr != nil {
		return s.flushErr
	}
	return nil
}

// writerBuilder is a strings.Builder that satisfies io.Writer without
// importing strings here.
type writerBuilder struct {
	buf []byte
}

func (w *writerBuilder) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func (w *writerBuilder) String() string { return string(w.buf) }

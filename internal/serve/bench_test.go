package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"
)

// benchJobs is the per-phase job count of the load harness — enough
// for stable p50, small enough for the CI smoke run.
const benchJobs = 12

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

type loadPhase struct {
	P50Ms   float64 `json:"p50_ms"`
	P99Ms   float64 `json:"p99_ms"`
	JobsSec float64 `json:"jobs_per_sec"`
	Jobs    int     `json:"jobs"`
}

func runPhase(b *testing.B, s *Server, specs []JobSpec, wantCache string) loadPhase {
	b.Helper()
	lats := make([]time.Duration, 0, len(specs))
	start := time.Now()
	for _, spec := range specs {
		t0 := time.Now()
		job, err := s.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		select {
		case <-job.Done():
		case <-time.After(120 * time.Second):
			b.Fatalf("job %s stuck", job.ID)
		}
		res, jerr := job.Result()
		if res == nil {
			b.Fatalf("job %s failed: %+v", job.ID, jerr)
		}
		if wantCache != "" && res.Cache != wantCache {
			b.Fatalf("job %s served from %q, want %q", job.ID, res.Cache, wantCache)
		}
		lats = append(lats, time.Since(t0))
	}
	total := time.Since(start)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return loadPhase{
		P50Ms:   float64(percentile(lats, 0.50)) / float64(time.Millisecond),
		P99Ms:   float64(percentile(lats, 0.99)) / float64(time.Millisecond),
		JobsSec: float64(len(specs)) / total.Seconds(),
		Jobs:    len(specs),
	}
}

// BenchmarkServe is the daemon load harness: three phases of benchJobs
// jobs each against one server — cold (every job a distinct circuit
// configuration, full compute), prepared (same circuit, new K each
// time: the cached mapping prefix is reused), and warm (exact repeats
// served from the result cache). Writes BENCH_serve.json at the repo
// root with p50/p99 latency and jobs/sec per phase; the acceptance bar
// is warm p50 at least 3x faster than cold p50.
func BenchmarkServe(b *testing.B) {
	var artifact struct {
		Bench       string    `json:"bench"`
		Scale       float64   `json:"scale"`
		Workers     int       `json:"workers"`
		Cold        loadPhase `json:"cold"`
		Prepared    loadPhase `json:"prepared"`
		Warm        loadPhase `json:"warm"`
		WarmSpeedup float64   `json:"warm_speedup_p50"`
		PrepSpeedup float64   `json:"prepared_speedup_p50"`
	}
	artifact.Bench = "spla-daemon-load"
	artifact.Scale = 0.05
	artifact.Workers = 2

	for i := 0; i < b.N; i++ {
		s := New(Config{Workers: 2, QueueCap: benchJobs * 3})

		// Cold: a distinct placement seed per job gives a distinct
		// PrepKey, so every job pays the full pipeline.
		cold := make([]JobSpec, benchJobs)
		for j := range cold {
			cold[j] = JobSpec{Bench: "spla", Scale: 0.05, K: 0.3, Seed: int64(j + 1)}
		}
		artifact.Cold = runPhase(b, s, cold, "")

		// Prepared: one circuit (seed 1 is already cached from the cold
		// phase), a fresh K per job — only the K-dependent suffix runs.
		prepared := make([]JobSpec, benchJobs)
		for j := range prepared {
			prepared[j] = JobSpec{Bench: "spla", Scale: 0.05, K: 0.01 * float64(j+1), Seed: 1}
		}
		artifact.Prepared = runPhase(b, s, prepared, "prepared")

		// Warm: exact repeats of the prepared specs — result-cache hits,
		// no compute.
		artifact.Warm = runPhase(b, s, prepared, "result")

		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}

	artifact.WarmSpeedup = artifact.Cold.P50Ms / artifact.Warm.P50Ms
	artifact.PrepSpeedup = artifact.Cold.P50Ms / artifact.Prepared.P50Ms
	b.ReportMetric(artifact.Cold.P50Ms, "cold-p50-ms")
	b.ReportMetric(artifact.Prepared.P50Ms, "prep-p50-ms")
	b.ReportMetric(artifact.Warm.P50Ms, "warm-p50-ms")
	b.ReportMetric(artifact.WarmSpeedup, "warm-speedup")

	if artifact.WarmSpeedup < 3 {
		b.Fatalf("warm p50 %.3fms is not >=3x faster than cold p50 %.3fms",
			artifact.Warm.P50Ms, artifact.Cold.P50Ms)
	}

	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(fmt.Sprintf("..%c..%cBENCH_serve.json", os.PathSeparator, os.PathSeparator),
		append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

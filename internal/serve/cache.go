package serve

import (
	"container/list"
	"sync"
)

// lru is a size-bounded, mutex-guarded LRU map. The daemon keeps two:
// prepared mapping prefixes keyed by PrepKey (the expensive K-invariant
// work shared by near-repeat jobs) and complete results keyed by
// ResultKey (exact repeats — the whole flow is deterministic, so a
// cached result is byte-identical to a recomputation).
type lru[V any] struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	l   *list.List // front = most recently used
}

type lruEntry[V any] struct {
	key string
	v   V
}

// newLRU builds a cache holding at most capacity entries; capacity <= 0
// disables the cache (every get misses, every add drops).
func newLRU[V any](capacity int) *lru[V] {
	return &lru[V]{
		cap: capacity,
		m:   make(map[string]*list.Element),
		l:   list.New(),
	}
}

// get returns the cached value and marks it most recently used.
func (c *lru[V]) get(key string) (V, bool) {
	var zero V
	if c.cap <= 0 {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return zero, false
	}
	c.l.MoveToFront(el)
	return el.Value.(*lruEntry[V]).v, true
}

// add inserts (or refreshes) a value, evicting the least recently used
// entry beyond capacity. It reports how many entries were evicted.
func (c *lru[V]) add(key string, v V) (evicted int) {
	if c.cap <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*lruEntry[V]).v = v
		c.l.MoveToFront(el)
		return 0
	}
	c.m[key] = c.l.PushFront(&lruEntry[V]{key: key, v: v})
	for c.l.Len() > c.cap {
		back := c.l.Back()
		c.l.Remove(back)
		delete(c.m, back.Value.(*lruEntry[V]).key)
		evicted++
	}
	return evicted
}

// len returns the current entry count.
func (c *lru[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.l.Len()
}

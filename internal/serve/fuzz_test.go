package serve

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// FuzzJobSpec drives the job-submission decoder with arbitrary bytes:
// any input must either yield a fully-validated spec or an error —
// never panic — and every accepted spec must satisfy the admission
// bounds (so a worker can run it blind) and produce stable cache keys.
func FuzzJobSpec(f *testing.F) {
	// Valid specs.
	f.Add(`{"pla":` + strconv.Quote(tinyPLA) + `,"k":0.5}`)
	f.Add(`{"bench":"spla","scale":0.1,"k":0}`)
	f.Add(`{"bench":"pdc","k_schedule":[0,0.25,0.5,1],"stop_at_first_routable":true}`)
	f.Add(`{"bench":"too_large","timing":true,"verify":true,"verilog":true,"seed":7}`)
	f.Add(`{"pla":` + strconv.Quote(tinyPLA) + `,"die_area":5000,"aspect_ratio":2,"workers":4}`)
	// Malformed JSON.
	f.Add(`{`)
	f.Add(`{"pla":`)
	f.Add(`[1,2,3]`)
	f.Add(`"just a string"`)
	f.Add(``)
	// Structurally valid, semantically hostile.
	f.Add(`{"pla":"not a pla at all"}`)
	f.Add(`{"bench":"spla","pla":"x"}`)
	f.Add(`{"bench":"unknown"}`)
	f.Add(`{"bench":"spla","k":-1}`)
	f.Add(`{"bench":"spla","k":1e309}`)             // overflows to +Inf
	f.Add(`{"bench":"spla","scale":99}`)            // over MaxScale
	f.Add(`{"bench":"spla","timeout_ms":-5}`)       // negative budget
	f.Add(`{"bench":"spla","stage_timeout_ms":-5}`) // negative budget
	f.Add(`{"bench":"spla","workers":100000}`)      // over MaxWorkers
	f.Add(`{"bench":"spla","aspect_ratio":0.0001}`) // degenerate die
	f.Add(`{"bench":"spla","die_area":1e300}`)      // absurd die
	f.Add(`{"bench":"spla","unknown_field":1}`)     // unknown field
	// Huge k_schedule (over MaxKSchedule).
	f.Add(`{"bench":"spla","k_schedule":[` + strings.Repeat("0,", MaxKSchedule*2) + `0]}`)
	// Null and type-confused fields.
	f.Add(`{"pla":null,"bench":null}`)
	f.Add(`{"bench":"spla","k":"high"}`)
	f.Add(`{"bench":"spla","k_schedule":0.5}`)

	f.Fuzz(func(t *testing.T, data string) {
		spec, err := ParseJobSpec(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted specs obey every admission bound.
		if spec.PLA == "" && spec.Bench == "" {
			t.Fatal("accepted spec with no circuit")
		}
		if spec.PLA != "" && spec.Bench != "" {
			t.Fatal("accepted spec with both pla and bench")
		}
		if len(spec.PLA) > MaxPLABytes {
			t.Fatalf("accepted %d-byte pla", len(spec.PLA))
		}
		if spec.K < 0 || spec.K > MaxK {
			t.Fatalf("accepted k %g", spec.K)
		}
		if len(spec.KSchedule) > MaxKSchedule {
			t.Fatalf("accepted %d-rung schedule", len(spec.KSchedule))
		}
		if spec.Workers < 0 || spec.Workers > MaxWorkers {
			t.Fatalf("accepted workers %d", spec.Workers)
		}
		if d := time.Duration(spec.TimeoutMS) * time.Millisecond; d < 0 || d > MaxTimeout {
			t.Fatalf("accepted timeout %d ms", spec.TimeoutMS)
		}
		// Cache keys exist and are deterministic for accepted specs.
		pk1, err := spec.PrepKey()
		if err != nil {
			t.Fatalf("accepted spec has no prep key: %v", err)
		}
		pk2, _ := spec.PrepKey()
		if pk1 != pk2 {
			t.Fatalf("prep key not deterministic: %s vs %s", pk1, pk2)
		}
		rk, err := spec.ResultKey()
		if err != nil {
			t.Fatalf("accepted spec has no result key: %v", err)
		}
		if rk == pk1 {
			t.Fatal("result key degenerate (equals prep key)")
		}
		// An inline PLA must already be parsed and materializable.
		if spec.PLA != "" {
			if _, err := spec.subjectPLA(); err != nil {
				t.Fatalf("accepted inline pla does not materialize: %v", err)
			}
		}
	})
}

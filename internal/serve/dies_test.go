package serve

// Daemon-side tests for multi-die jobs ("dies" > 1 in the spec): the
// field must validate, shape the cache keys, run the k-way partition
// end to end with a report byte-identical to cmd/casyn, and be
// rejected as an ECO lineage. The ECO k_mode annotation regression
// also lives here: an adaptive parent's ECO runs fixed-K, and the
// result must say so instead of silently dropping the mode.

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"casyn"
	"casyn/internal/logic"
)

func TestDiesSpecValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []string{
		`{"bench":"spla","dies":-1}`,                         // negative
		`{"bench":"spla","dies":65}`,                         // over MaxDies
		`{"bench":"spla","dies":2,"k_mode":"adaptive"}`,      // no multi-die model
		`{"bench":"spla","die_pin_budget":8}`,                // budget without dies
		`{"bench":"spla","dies":1,"die_pin_budget":8}`,       // single die is not multi-die
		`{"bench":"spla","dies":2,"die_pin_budget":-2}`,      // below the -1 sentinel
		`{"bench":"spla","dies":2,"die_pin_budget":2000000}`, // over MaxDiePins
	}
	for _, body := range cases {
		resp, m := postJob(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400 (%v)", body, resp.StatusCode, m)
		}
	}
}

// TestDiesCacheKeys pins the key contract: dies and the replication
// proof (verify) shape the prepared prefix, the pin budget only the
// result; single-die keys are byte-stable against the new fields.
func TestDiesCacheKeys(t *testing.T) {
	base := JobSpec{Bench: "spla", Scale: 0.02}
	key := func(s JobSpec) string {
		t.Helper()
		k, err := s.PrepKey()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	rkey := func(s JobSpec) string {
		t.Helper()
		k, err := s.ResultKey()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}

	single, multi := base, base
	multi.Dies = 2
	if key(single) == key(multi) {
		t.Error("dies=2 shares a prep key with single-die")
	}
	verified := multi
	verified.Verify = true
	if key(multi) == key(verified) {
		t.Error("multi-die prep key ignores verify (the replication proof runs at prep)")
	}
	// Single-die: verify stays out of the prefix, as before.
	sv := single
	sv.Verify = true
	if key(single) != key(sv) {
		t.Error("single-die prep key changed with verify")
	}

	budget := multi
	budget.DiePinBudget = 16
	if key(multi) != key(budget) {
		t.Error("pin budget leaked into the prep key (it only gates routing)")
	}
	if rkey(multi) == rkey(budget) {
		t.Error("pin budget does not split the result key")
	}
}

// TestDiesJobEndToEnd runs a multi-die job through the daemon and
// checks the result against the library running the same options: the
// report must be byte-identical and the k-way facts populated.
func TestDiesJobEndToEnd(t *testing.T) {
	s, ts := testServer(t, Config{})
	// tinyPLA's die is a handful of gcells: the derated boundary
	// capacity truncates to an auto budget of 0, which the admission
	// check (correctly) fails. An explicit budget keeps the tiny job
	// routable while still exercising the admission path.
	resp, m := postJob(t, ts, `{"pla":`+strconv.Quote(tinyPLA)+`,"k":0,"dies":2,"die_pin_budget":64,"verify":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%v)", resp.StatusCode, m)
	}
	job := waitTerminal(t, s, m["id"].(string))
	res, jerr := job.Result()
	if jerr != nil {
		t.Fatalf("multi-die job failed: %+v", jerr)
	}
	if res.Dies != 2 {
		t.Errorf("dies = %d, want 2", res.Dies)
	}
	if !strings.Contains(res.Report, "dies:") {
		t.Errorf("report missing the dies line:\n%s", res.Report)
	}

	p, err := logic.ReadPLA(strings.NewReader(tinyPLA))
	if err != nil {
		t.Fatal(err)
	}
	want, err := casyn.SynthesizeContext(context.Background(), p,
		casyn.Options{Dies: 2, InterDiePinBudget: 64, Verify: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report != want.Report() {
		t.Errorf("daemon report differs from the library:\n--- daemon ---\n%s--- library ---\n%s",
			res.Report, want.Report())
	}
	if res.ReplicatedGates != want.ReplicatedGates || res.CrossRegionNets != want.CrossRegionNets {
		t.Errorf("k-way facts (%d replicated, %d cross-region) differ from the library (%d, %d)",
			res.ReplicatedGates, res.CrossRegionNets, want.ReplicatedGates, want.CrossRegionNets)
	}
}

// TestEcoMultiDieParentRejected pins the scope boundary: the ECO
// chain's incremental state is single-die, so a multi-die parent is
// refused at admission.
func TestEcoMultiDieParentRejected(t *testing.T) {
	s, ts := testServer(t, Config{})
	resp, m := postJob(t, ts, `{"pla":`+strconv.Quote(tinyPLA)+`,"k":0,"dies":2,"die_pin_budget":64}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%v)", resp.StatusCode, m)
	}
	parent := m["id"].(string)
	if job := waitTerminal(t, s, parent); job.Status() != StatusDone {
		t.Fatalf("parent finished %s", job.Status())
	}
	edits := fmt.Sprintf(`{"edits":[{"op":"nudge","gate":%d,"dx":5,"dy":0}]}`, tinyEditableGate(t))
	r, em := postEco(t, ts, parent, edits)
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("eco on multi-die parent: %d (%v), want 400", r.StatusCode, em)
	}
	if msg, _ := em["error"].(string); !strings.Contains(msg, "multi-die") {
		t.Errorf("rejection does not name the multi-die parent: %v", em)
	}
}

// TestEcoAnnotatesKMode is the regression for the silent KMode clear:
// an ECO against an adaptive parent runs fixed-K by design, and the
// result annotation must report both the effective mode and the
// parent's. The two lineages must not share a result-cache entry.
func TestEcoAnnotatesKMode(t *testing.T) {
	s, ts := testServer(t, Config{})
	edits := fmt.Sprintf(`{"edits":[{"op":"nudge","gate":%d,"dx":5,"dy":0}]}`, tinyEditableGate(t))

	submit := func(spec string) *Job {
		t.Helper()
		resp, m := postJob(t, ts, spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d (%v)", resp.StatusCode, m)
		}
		job := waitTerminal(t, s, m["id"].(string))
		if job.Status() != StatusDone {
			res, jerr := job.Result()
			t.Fatalf("job finished %s (%+v, %v)", job.Status(), res, jerr)
		}
		return job
	}
	eco := func(parent string) *JobResult {
		t.Helper()
		r, em := postEco(t, ts, parent, edits)
		if r.StatusCode != http.StatusAccepted {
			t.Fatalf("eco submit: %d (%v)", r.StatusCode, em)
		}
		job := waitTerminal(t, s, em["id"].(string))
		if job.Status() != StatusDone {
			res, jerr := job.Result()
			t.Fatalf("eco finished %s (%+v, %v)", job.Status(), res, jerr)
		}
		res, _ := job.Result()
		if res == nil || res.ECO == nil {
			t.Fatalf("eco result missing annotation: %+v", res)
		}
		return res
	}

	adaptive := submit(`{"pla":` + strconv.Quote(tinyPLA) + `,"k":0.001,"k_mode":"adaptive"}`)
	ares := eco(adaptive.ID)
	if ares.ECO.KMode != "fixed" || ares.ECO.ParentKMode != "adaptive" {
		t.Errorf("adaptive-parent eco annotation %+v, want k_mode fixed / parent_k_mode adaptive", ares.ECO)
	}
	if ares.ECO.K != 0.001 {
		t.Errorf("adaptive-parent eco ran at K=%g, want the baseline 0.001", ares.ECO.K)
	}

	fixed := submit(`{"pla":` + strconv.Quote(tinyPLA) + `,"k":0.001}`)
	fres := eco(fixed.ID)
	if fres.ECO.KMode != "fixed" || fres.ECO.ParentKMode != "" {
		t.Errorf("fixed-parent eco annotation %+v, want k_mode fixed and no parent_k_mode", fres.ECO)
	}

	// Same prefix, same K, same edits — but differently-moded parents
	// must not serve each other's cached result (the annotation
	// differs).
	if fres.Cache == "result" && fres.ECO.ParentKMode != "" {
		t.Error("fixed-parent eco served the adaptive-parent cache entry")
	}
}

package serve

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"casyn/internal/obs"
	"casyn/internal/runstage"
)

// countingSink records everything flushed into it; the tests count
// snapshot flushes by counting serve.metrics_flushes lines, which
// appear exactly once per WriteJSONL call.
type countingSink struct {
	mu      sync.Mutex
	content strings.Builder
}

func (c *countingSink) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.content.Write(p)
	return len(p), nil
}

// TestDrainFinishesInFlightJobs: a drain must let running and queued
// jobs finish — nothing admitted is lost — while refusing new work,
// and flush the metrics snapshot exactly once even when Drain and
// Close race.
func TestDrainFinishesInFlightJobs(t *testing.T) {
	sink := &countingSink{}
	hooks := &runstage.Hooks{Faults: []runstage.Fault{
		// Slow every job down enough that the drain demonstrably
		// overlaps them, without making the test slow.
		{Stage: runstage.StageMap, AllK: true, Delay: 150 * time.Millisecond},
	}}
	s := New(Config{Workers: 1, QueueCap: 8, Hooks: hooks, MetricsSink: sink})

	spec := JobSpec{PLA: tinyPLA, K: 0}
	running, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	queuedSpec := spec
	queuedSpec.K = 1
	queued, err := s.Submit(queuedSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, running.ID)

	// Drain concurrently with a second Drain and a Close: the flush
	// must still happen exactly once, and all three must return.
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			errs[i] = s.Drain(ctx)
		}(i)
	}

	// New work is refused as soon as draining begins.
	deadline := time.Now().Add(5 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("draining flag never rose")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(spec); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: %v, want ErrDraining", err)
	}

	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("drain %d: %v", i, err)
		}
	}

	// Both in-flight jobs completed — neither was lost or canceled.
	for _, job := range []*Job{running, queued} {
		if job.Status() != StatusDone {
			_, jerr := job.Result()
			t.Errorf("job %s: %s (%+v), want done", job.ID, job.Status(), jerr)
		}
	}

	// The snapshot flushed exactly once, and records both completions
	// plus its own flush counter.
	text := func() string {
		sink.mu.Lock()
		defer sink.mu.Unlock()
		return sink.content.String()
	}()
	if n := strings.Count(text, `"serve.metrics_flushes"`); n != 1 {
		t.Errorf("metrics flushed %d times, want exactly once:\n%s", n, text)
	}
	snap, err := obs.ReadJSONL(strings.NewReader(text))
	if err != nil {
		t.Fatalf("flushed metrics do not parse: %v", err)
	}
	if got := snap.Counters["serve.jobs_completed"]; got != 2 {
		t.Errorf("flushed jobs_completed = %d, want 2", got)
	}
	if got := snap.Counters["serve.metrics_flushes"]; got != 1 {
		t.Errorf("flushed metrics_flushes = %d, want 1", got)
	}
}

// TestDrainDeadlineCancelsStragglers: when the drain window expires, a
// stuck job is canceled — recorded as canceled, never silently lost —
// and Drain reports the deadline.
func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	sink := &countingSink{}
	hooks := &runstage.Hooks{Faults: []runstage.Fault{
		{Stage: runstage.StageMap, AllK: true, Delay: time.Hour},
	}}
	s := New(Config{Workers: 1, QueueCap: 8, Hooks: hooks, MetricsSink: sink})

	stuck, err := s.Submit(JobSpec{PLA: tinyPLA})
	if err != nil {
		t.Fatal(err)
	}
	q1 := JobSpec{PLA: tinyPLA, K: 2}
	waiting, err := s.Submit(q1)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, stuck.ID)

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("drain returned nil, want deadline error")
	}

	for _, job := range []*Job{stuck, waiting} {
		st := job.Status()
		if !st.Terminal() {
			t.Fatalf("job %s still %s after drain", job.ID, st)
		}
		if st != StatusCanceled {
			t.Errorf("job %s: %s, want canceled", job.ID, st)
		}
		_, jerr := job.Result()
		if jerr == nil {
			t.Errorf("job %s has no structured error", job.ID)
		}
	}
	if n := strings.Count(sink.content.String(), `"serve.metrics_flushes"`); n != 1 {
		t.Errorf("metrics flushed %d times, want exactly once", n)
	}
}

// TestDrainViaHTTP covers the 503 contract.
func TestDrainViaHTTP(t *testing.T) {
	s, ts := testServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, m := postJob(t, ts, `{"pla":`+strconv.Quote(tinyPLA)+`}`)
	if resp.StatusCode != 503 {
		t.Fatalf("submit after drain: %d (%v)", resp.StatusCode, m)
	}
	hres, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, err := io.ReadAll(hres.Body)
	hres.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if hres.StatusCode != 503 || !strings.Contains(string(hbody), "draining") {
		t.Fatalf("healthz after drain: %d %s", hres.StatusCode, hbody)
	}
}

package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"casyn"
	"casyn/internal/bench"
	"casyn/internal/logic"
	"casyn/internal/partition"
)

// Request-size limits. A synthesis service must bound what it accepts:
// an absurd job spec is rejected at admission, never run.
const (
	// MaxPLABytes bounds the inline PLA payload.
	MaxPLABytes = 1 << 20
	// MaxKSchedule bounds the rungs of a sweep job.
	MaxKSchedule = 64
	// MaxK bounds the congestion factor (the paper's ladder tops out
	// at 1; 1e6 leaves generous headroom without admitting NaN-adjacent
	// nonsense).
	MaxK = 1e6
	// MaxTimeout bounds per-job and per-stage wall-clock budgets.
	MaxTimeout = time.Hour
	// MaxScale bounds the benchmark scale factor.
	MaxScale = 4.0
	// MaxDieArea bounds an explicit floorplan (µm²).
	MaxDieArea = 1e12
	// MaxWorkers bounds the per-job fan-out a client may request.
	MaxWorkers = 64
	// MaxDies bounds the multi-die region count.
	MaxDies = 64
	// MaxDiePins bounds an explicit inter-die pin budget.
	MaxDiePins = 1 << 20
)

// JobSpec is the JSON body of a job submission: what to synthesize and
// how. Exactly one of PLA (inline Berkeley PLA text) or Bench (a
// built-in benchmark class) selects the circuit.
type JobSpec struct {
	// PLA is the inline Berkeley-format PLA source.
	PLA string `json:"pla,omitempty"`
	// Bench selects a built-in benchmark class: spla, pdc, too_large.
	Bench string `json:"bench,omitempty"`
	// Scale shrinks or grows the benchmark spec (default 1.0).
	Scale float64 `json:"scale,omitempty"`

	// K is the congestion minimization factor for a single-iteration
	// job (ignored when KSchedule is set).
	K float64 `json:"k,omitempty"`
	// KSchedule, when non-empty, runs a K sweep instead of a single
	// iteration; the result reports every rung and the accepted one.
	KSchedule []float64 `json:"k_schedule,omitempty"`
	// StopAtFirstRoutable ends a sweep at the first clean rung.
	StopAtFirstRoutable bool `json:"stop_at_first_routable,omitempty"`
	// KMode selects how K is chosen: "fixed" (default; single iteration
	// at K, or the KSchedule sweep) or "adaptive" — the closed-loop
	// congestion controller (flow.RunAdaptive), which fixes K as the
	// baseline and steers a spatial K-field from the routed congestion
	// map instead of sweeping. "adaptive" excludes k_schedule.
	KMode string `json:"k_mode,omitempty"`

	// Dies tiles the die into N regions and partitions the subject
	// directly k-way with cut-driver replication; routing enforces the
	// inter-die pin budget on region-crossing nets (0/1 = single die).
	// Excludes adaptive k_mode and the ECO chain.
	Dies int `json:"dies,omitempty"`
	// DiePinBudget overrides the inter-die pin budget with dies > 1
	// (0 = derive from the derated boundary capacity, -1 = unchecked).
	DiePinBudget int `json:"die_pin_budget,omitempty"`

	// DieArea fixes the floorplan in µm² (0 = auto-size at the
	// calibrated 58% utilization); AspectRatio is width/height.
	DieArea     float64 `json:"die_area,omitempty"`
	AspectRatio float64 `json:"aspect_ratio,omitempty"`
	// Seed drives randomized tie-breaking (default 1).
	Seed int64 `json:"seed,omitempty"`
	// SIS runs technology-independent optimization before decomposition.
	SIS bool `json:"sis,omitempty"`
	// Partition selects the DAG partitioning: "pdp" (default),
	// "dagon", or "cone".
	Partition string `json:"partition,omitempty"`
	// Timing enables static timing analysis.
	Timing bool `json:"timing,omitempty"`
	// Verify runs the combinational equivalence checker over the
	// pipeline hand-offs.
	Verify bool `json:"verify,omitempty"`

	// TimeoutMS bounds the job's wall clock; StageTimeoutMS each
	// pipeline stage. Zero inherits the server defaults.
	TimeoutMS      int64 `json:"timeout_ms,omitempty"`
	StageTimeoutMS int64 `json:"stage_timeout_ms,omitempty"`
	// Workers requests a per-job fan-out width (0 inherits the server
	// default; results are identical for every value).
	Workers int `json:"workers,omitempty"`

	// Verilog includes the mapped netlist's structural Verilog in the
	// result body.
	Verilog bool `json:"verilog,omitempty"`
	// NoResultCache forces recomputation even when an identical job's
	// result is cached (the prepared-prefix cache still applies).
	NoResultCache bool `json:"no_result_cache,omitempty"`

	// parsed carries the inline PLA across Validate so the worker does
	// not re-parse it; never serialized.
	parsed *logic.PLA
}

// ParseJobSpec decodes and validates a job submission body. Unknown
// fields are rejected — a misspelled option must fail loudly, not
// silently synthesize with defaults. The returned spec is validated
// (Validate passed) and its PLA, when inline, parsed successfully.
func ParseJobSpec(r io.Reader) (*JobSpec, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxPLABytes*2))
	dec.DisallowUnknownFields()
	spec := &JobSpec{}
	if err := dec.Decode(spec); err != nil {
		return nil, fmt.Errorf("bad job spec: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

func validK(k float64) error {
	if math.IsNaN(k) || math.IsInf(k, 0) {
		return fmt.Errorf("k must be finite")
	}
	if k < 0 {
		return fmt.Errorf("k must be >= 0 (got %g)", k)
	}
	if k > MaxK {
		return fmt.Errorf("k %g exceeds the limit %g", k, MaxK)
	}
	return nil
}

// Validate bounds every field of the spec; a spec that passes is safe
// to admit. It also parses an inline PLA (the parse result is cached
// on the spec for the worker).
func (s *JobSpec) Validate() error {
	switch {
	case s.PLA == "" && s.Bench == "":
		return fmt.Errorf("need exactly one of pla or bench")
	case s.PLA != "" && s.Bench != "":
		return fmt.Errorf("pla and bench are mutually exclusive")
	}
	if len(s.PLA) > MaxPLABytes {
		return fmt.Errorf("pla payload %d bytes exceeds the %d-byte limit", len(s.PLA), MaxPLABytes)
	}
	if s.PLA != "" {
		p, err := logic.ReadPLA(strings.NewReader(s.PLA))
		if err != nil {
			return fmt.Errorf("bad pla payload: %w", err)
		}
		s.parsed = p
	}
	if s.Bench != "" {
		if _, ok := benchClass(s.Bench); !ok {
			return fmt.Errorf("unknown bench %q (want spla, pdc, too_large)", s.Bench)
		}
		if math.IsNaN(s.Scale) || math.IsInf(s.Scale, 0) || s.Scale < 0 || s.Scale > MaxScale {
			return fmt.Errorf("scale must be in (0, %g] (got %g)", MaxScale, s.Scale)
		}
	}
	if err := validK(s.K); err != nil {
		return err
	}
	if len(s.KSchedule) > MaxKSchedule {
		return fmt.Errorf("k_schedule has %d rungs, limit %d", len(s.KSchedule), MaxKSchedule)
	}
	for i, k := range s.KSchedule {
		if err := validK(k); err != nil {
			return fmt.Errorf("k_schedule[%d]: %w", i, err)
		}
	}
	switch s.KMode {
	case "", "fixed":
	case "adaptive":
		if len(s.KSchedule) > 0 {
			return fmt.Errorf("k_mode adaptive and k_schedule are mutually exclusive (the controller steers K itself)")
		}
		if s.Dies > 1 {
			return fmt.Errorf("k_mode adaptive and dies are mutually exclusive (the K-field controller has no multi-die model)")
		}
	default:
		return fmt.Errorf("unknown k_mode %q (want fixed, adaptive)", s.KMode)
	}
	if s.Dies < 0 || s.Dies > MaxDies {
		return fmt.Errorf("dies must be in [0, %d] (got %d)", MaxDies, s.Dies)
	}
	if s.DiePinBudget != 0 {
		if s.Dies <= 1 {
			return fmt.Errorf("die_pin_budget needs dies > 1")
		}
		if s.DiePinBudget < -1 || s.DiePinBudget > MaxDiePins {
			return fmt.Errorf("die_pin_budget must be in [-1, %d] (got %d)", MaxDiePins, s.DiePinBudget)
		}
	}
	if math.IsNaN(s.DieArea) || math.IsInf(s.DieArea, 0) || s.DieArea < 0 || s.DieArea > MaxDieArea {
		return fmt.Errorf("die_area must be in [0, %g] (got %g)", MaxDieArea, s.DieArea)
	}
	if s.AspectRatio != 0 &&
		(math.IsNaN(s.AspectRatio) || s.AspectRatio < 0.1 || s.AspectRatio > 10) {
		return fmt.Errorf("aspect_ratio must be 0 or in [0.1, 10] (got %g)", s.AspectRatio)
	}
	switch s.Partition {
	case "", "pdp", "dagon", "cone":
	default:
		return fmt.Errorf("unknown partition %q (want pdp, dagon, cone)", s.Partition)
	}
	if s.TimeoutMS < 0 || time.Duration(s.TimeoutMS)*time.Millisecond > MaxTimeout {
		return fmt.Errorf("timeout_ms must be in [0, %d]", MaxTimeout.Milliseconds())
	}
	if s.StageTimeoutMS < 0 || time.Duration(s.StageTimeoutMS)*time.Millisecond > MaxTimeout {
		return fmt.Errorf("stage_timeout_ms must be in [0, %d]", MaxTimeout.Milliseconds())
	}
	if s.Workers < 0 || s.Workers > MaxWorkers {
		return fmt.Errorf("workers must be in [0, %d] (got %d)", MaxWorkers, s.Workers)
	}
	return nil
}

// kmode canonicalizes KMode so "" and "fixed" share a result-cache
// entry (they run the identical computation).
func (s *JobSpec) kmode() string {
	if s.KMode == "" {
		return "fixed"
	}
	return s.KMode
}

// adaptive reports the closed-loop mode.
func (s *JobSpec) adaptive() bool { return s.KMode == "adaptive" }

func benchClass(name string) (bench.Class, bool) {
	switch name {
	case "spla":
		return bench.SPLA, true
	case "pdc":
		return bench.PDC, true
	case "too_large":
		return bench.TooLarge, true
	default:
		return 0, false
	}
}

func (s *JobSpec) partitionMethod() partition.Method {
	switch s.Partition {
	case "dagon":
		return partition.Dagon
	case "cone":
		return partition.Cone
	default:
		return partition.PDP
	}
}

// options maps the spec onto the casyn Options the daemon shares with
// the one-shot CLI — the single source of the calibrated operating
// point, so daemon results are byte-identical to cmd/casyn.
func (s *JobSpec) options() casyn.Options {
	return casyn.Options{
		K:                       s.K,
		Dies:                    s.Dies,
		InterDiePinBudget:       s.DiePinBudget,
		DieArea:                 s.DieArea,
		AspectRatio:             s.AspectRatio,
		OptimizeTechIndependent: s.SIS,
		Partition:               s.partitionMethod(),
		Seed:                    s.Seed,
		RunTiming:               s.Timing,
		Verify:                  s.Verify,
		StageTimeout:            time.Duration(s.StageTimeoutMS) * time.Millisecond,
		Workers:                 s.Workers,
	}
}

// subjectPLA materializes the circuit: the parsed inline PLA, or the
// generated benchmark.
func (s *JobSpec) subjectPLA() (*logic.PLA, error) {
	if s.parsed != nil {
		return s.parsed, nil
	}
	if s.PLA != "" {
		return logic.ReadPLA(strings.NewReader(s.PLA))
	}
	class, ok := benchClass(s.Bench)
	if !ok {
		return nil, fmt.Errorf("unknown bench %q", s.Bench)
	}
	spec := class.Spec()
	if s.Scale != 0 && s.Scale != 1.0 {
		spec = class.ScaledSpec(s.Scale)
	}
	return bench.Generate(spec)
}

// PrepKey identifies the K-invariant prefix of the job: everything
// that determines the subject DAG, its technology-independent
// placement, and the match enumeration — circuit bytes (canonicalized
// through the parser, so formatting differences share an entry),
// synthesis style, partition method, placement seed, and floorplan.
// K, budgets, worker counts, and output options are deliberately
// excluded: they do not change the prefix.
func (s *JobSpec) PrepKey() (string, error) {
	h := sha256.New()
	if s.PLA != "" {
		p, err := s.subjectPLA()
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "pla\n")
		if err := p.Write(h); err != nil {
			return "", err
		}
	} else {
		fmt.Fprintf(h, "bench %s scale %g\n", s.Bench, s.Scale)
	}
	fmt.Fprintf(h, "sis %v partition %s seed %d die %g aspect %g\n",
		s.SIS, s.Partition, s.Seed, s.DieArea, s.AspectRatio)
	if s.Dies > 1 {
		// Multi-die prep partitions the forest k-way, replicates cut
		// drivers, and — with verify — proves the replicated subject
		// equivalent; all of that lives in the prepared prefix, so both
		// knobs shape the key. Single-die keys are unchanged.
		fmt.Fprintf(h, "dies %d verify %v\n", s.Dies, s.Verify)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// ResultKey identifies the complete deterministic result: the prefix
// key plus everything K-dependent and report-affecting. Two jobs with
// equal result keys produce byte-identical results, so the result
// cache may serve one for the other.
func (s *JobSpec) ResultKey() (string, error) {
	pk, err := s.PrepKey()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "prep %s k %g sched %v stop %v kmode %s timing %v verify %v\n",
		pk, s.K, s.KSchedule, s.StopAtFirstRoutable, s.kmode(), s.Timing, s.Verify)
	if s.DiePinBudget != 0 {
		// The pin budget gates route admission, not the prefix.
		fmt.Fprintf(h, "diepins %d\n", s.DiePinBudget)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

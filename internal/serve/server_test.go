package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"casyn"
	"casyn/internal/runstage"
)

// tinyPLA is a fast, real circuit for API-level tests.
const tinyPLA = `.i 3
.o 1
.p 3
11- 1
1-1 1
-11 1
.e
`

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	resp.Body.Close()
	return resp, m
}

func waitRunning(t *testing.T, s *Server, id string) {
	t.Helper()
	job, ok := s.Job(id)
	if !ok {
		t.Fatalf("no job %q", id)
	}
	deadline := time.Now().Add(10 * time.Second)
	for job.Status() != StatusRunning {
		if job.Status().Terminal() {
			t.Fatalf("job %s finished (%s) before it was observed running", id, job.Status())
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started", id)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func waitTerminal(t *testing.T, s *Server, id string) *Job {
	t.Helper()
	job, ok := s.Job(id)
	if !ok {
		t.Fatalf("no job %q", id)
	}
	select {
	case <-job.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s stuck in %s", id, job.Status())
	}
	return job
}

func TestSubmitStatusResult(t *testing.T) {
	s, ts := testServer(t, Config{})
	resp, m := postJob(t, ts, `{"pla":`+strconv.Quote(tinyPLA)+`,"k":0}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%v)", resp.StatusCode, m)
	}
	id := m["id"].(string)
	waitTerminal(t, s, id)

	sr, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var view jobView
	if err := json.NewDecoder(sr.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if view.Status != StatusDone || !view.Terminal {
		t.Fatalf("status view: %+v", view)
	}

	rr, err := http.Get(ts.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var body resultBody
	if err := json.NewDecoder(rr.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK || body.Result == nil || body.Error != nil {
		t.Fatalf("result: %d %+v", rr.StatusCode, body)
	}
	if body.Result.Report == "" || body.Result.NumCells == 0 {
		t.Fatalf("empty result: %+v", body.Result)
	}
	if body.Result.Verilog != "" {
		t.Error("verilog included though the spec did not ask for it")
	}
}

func TestBadSpecRejected(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []string{
		`{`,                                  // malformed JSON
		`{}`,                                 // no circuit
		`{"pla":"x","bench":"spla"}`,         // both
		`{"pla":"not a pla"}`,                // unparseable
		`{"bench":"nope"}`,                   // unknown class
		`{"bench":"spla","k":-1}`,            // negative K
		`{"bench":"spla","typo_field":true}`, // unknown field
		`{"bench":"spla","workers":9999}`,    // over the bound
	}
	for _, body := range cases {
		resp, m := postJob(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400 (%v)", body, resp.StatusCode, m)
		}
		if m["error"] == "" {
			t.Errorf("body %q: missing error message", body)
		}
	}
}

func TestUnknownJob404(t *testing.T) {
	_, ts := testServer(t, Config{})
	for _, path := range []string{"/jobs/nope", "/jobs/nope/result"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestAdmissionControl fills the queue past capacity and checks the
// 429 + Retry-After contract.
func TestAdmissionControl(t *testing.T) {
	// One worker held busy by a delay fault; queue of 1.
	hooks := &runstage.Hooks{Faults: []runstage.Fault{
		{Stage: runstage.StagePrepare, AllK: true, Delay: 5 * time.Second},
	}}
	s, ts := testServer(t, Config{QueueCap: 1, Workers: 1, Hooks: hooks})

	// First job occupies the worker (wait until it actually runs, so it
	// has left the queue), second fills the queue.
	spec := `{"pla":` + strconv.Quote(tinyPLA) + `,"k":0}`
	r1, m1 := postJob(t, ts, spec)
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", r1.StatusCode)
	}
	waitRunning(t, s, m1["id"].(string))
	r2, _ := postJob(t, ts, `{"pla":`+strconv.Quote(tinyPLA)+`,"k":1}`)
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d", r2.StatusCode)
	}

	r3, m := postJob(t, ts, `{"pla":`+strconv.Quote(tinyPLA)+`,"k":2}`)
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: %d (%v)", r3.StatusCode, m)
	}
	ra := r3.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want a positive integer", ra)
	}

	// Queue pressure is visible on /healthz.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health healthBody
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if health.Status != "ok" || health.Pressure <= 0 {
		t.Errorf("healthz under load: %+v", health)
	}

	// Rejection is visible on /metrics.
	if got := s.rec.Snapshot().Counters["serve.jobs_rejected_full"]; got != 1 {
		t.Errorf("jobs_rejected_full = %d, want 1", got)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	hooks := &runstage.Hooks{Faults: []runstage.Fault{
		{Stage: runstage.StagePrepare, AllK: true, Delay: 30 * time.Second},
	}}
	s, ts := testServer(t, Config{QueueCap: 4, Workers: 1, Hooks: hooks})

	spec := `{"pla":` + strconv.Quote(tinyPLA) + `,"k":0}`
	_, m1 := postJob(t, ts, spec)
	_, m2 := postJob(t, ts, `{"pla":`+strconv.Quote(tinyPLA)+`,"k":1}`)
	running, queued := m1["id"].(string), m2["id"].(string)
	waitRunning(t, s, running)

	for _, id := range []string{queued, running} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cancel %s: %d", id, resp.StatusCode)
		}
	}
	for _, id := range []string{queued, running} {
		job := waitTerminal(t, s, id)
		if job.Status() != StatusCanceled {
			t.Errorf("job %s: %s, want canceled", id, job.Status())
		}
		_, jerr := job.Result()
		if jerr == nil || !jerr.Canceled {
			t.Errorf("job %s: error %+v, want canceled flag", id, jerr)
		}
	}
}

func TestJobTimeout(t *testing.T) {
	hooks := &runstage.Hooks{Faults: []runstage.Fault{
		{Stage: runstage.StageMap, AllK: true, Delay: 30 * time.Second},
	}}
	s, ts := testServer(t, Config{Workers: 1, Hooks: hooks})
	_, m := postJob(t, ts, `{"pla":`+strconv.Quote(tinyPLA)+`,"k":0,"timeout_ms":100}`)
	job := waitTerminal(t, s, m["id"].(string))
	if job.Status() != StatusCanceled {
		t.Fatalf("status %s, want canceled (deadline)", job.Status())
	}
	_, jerr := job.Result()
	if jerr == nil || !jerr.Timeout {
		t.Fatalf("error %+v, want timeout flag", jerr)
	}
}

// TestCanceledSweepNotCached is a regression test: a sweep whose job
// deadline (or cancellation) truncates the K ladder after a completed
// rung must be recorded as canceled — not done with a truncated
// Iterations list — and must never reach the result cache, where it
// would be served to future identical submissions as an exact repeat.
func TestCanceledSweepNotCached(t *testing.T) {
	hooks := &runstage.Hooks{Faults: []runstage.Fault{
		{Stage: runstage.StageMap, K: 1, Delay: 30 * time.Second},
	}}
	s, ts := testServer(t, Config{Workers: 1, Hooks: hooks})
	// Rung K=0 finishes in milliseconds; rung K=1 stalls on the fault
	// until the job deadline expires with a partial best in hand.
	_, m := postJob(t, ts, `{"pla":`+strconv.Quote(tinyPLA)+`,"k_schedule":[0,1],"timeout_ms":2000}`)
	job := waitTerminal(t, s, m["id"].(string))
	if job.Status() != StatusCanceled {
		t.Fatalf("status %s, want canceled (deadline mid-sweep)", job.Status())
	}
	res, jerr := job.Result()
	if res != nil {
		t.Fatalf("truncated sweep reported a result: %+v", res)
	}
	if jerr == nil || !jerr.Timeout {
		t.Fatalf("error %+v, want timeout flag", jerr)
	}
	if n := s.resCache.len(); n != 0 {
		t.Fatalf("result cache holds %d entries; a canceled sweep must never be cached", n)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, ts := testServer(t, Config{})
	_, m := postJob(t, ts, `{"pla":`+strconv.Quote(tinyPLA)+`,"k":0}`)
	waitTerminal(t, s, m["id"].(string))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"casyn_serve_jobs_submitted_total 1",
		"casyn_serve_jobs_completed_total 1",
		"# TYPE casyn_serve_queue_depth gauge",
		"casyn_serve_job_ms_bucket",
		"casyn_serve_stage_ms_map_bucket",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestRouteMetricsAfterCongestedJob drives a job whose floorplan is
// tight enough that the rip-up/reroute negotiation runs, and asserts
// the parallel-routing telemetry — region and boundary counters plus
// the per-round overflow histogram — reaches /metrics through the
// daemon's fold. The die area pins ~80% utilization for the scaled
// benchmark, which overflows under the calibrated capacity model.
func TestRouteMetricsAfterCongestedJob(t *testing.T) {
	s, ts := testServer(t, Config{})
	_, m := postJob(t, ts, `{"bench":"spla","scale":0.25,"k":0,"die_area":27703}`)
	job := waitTerminal(t, s, m["id"].(string))
	if job.Status() != StatusDone {
		t.Fatalf("status %s, want done", job.Status())
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"casyn_route_regions_total",
		"casyn_route_boundary_nets_total",
		"casyn_route_ripup_iterations_total",
		"# TYPE casyn_route_round_overflow histogram",
		"casyn_route_round_overflow_bucket",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The job congested, so the negotiation must actually have
	// partitioned work: regions strictly positive, not just registered.
	for _, line := range strings.Split(text, "\n") {
		if v, ok := strings.CutPrefix(line, "casyn_route_regions_total "); ok {
			if n, err := strconv.Atoi(strings.TrimSpace(v)); err != nil || n <= 0 {
				t.Errorf("casyn_route_regions_total = %q, want > 0", v)
			}
			return
		}
	}
	t.Error("casyn_route_regions_total sample line not found")
}

// TestResultCacheByteIdentical submits the same job twice and checks
// the repeat is served from the result cache with an identical body.
func TestResultCacheByteIdentical(t *testing.T) {
	s, ts := testServer(t, Config{})
	spec := `{"pla":` + strconv.Quote(tinyPLA) + `,"k":0,"verilog":true}`

	_, m1 := postJob(t, ts, spec)
	j1 := waitTerminal(t, s, m1["id"].(string))
	r1, _ := j1.Result()
	if r1 == nil {
		t.Fatal("first job failed")
	}
	if r1.Cache != "cold" {
		t.Fatalf("first job cache %q, want cold", r1.Cache)
	}

	_, m2 := postJob(t, ts, spec)
	j2 := waitTerminal(t, s, m2["id"].(string))
	r2, _ := j2.Result()
	if r2 == nil {
		t.Fatal("second job failed")
	}
	if r2.Cache != "result" {
		t.Fatalf("second job cache %q, want result", r2.Cache)
	}
	if r1.Report != r2.Report || r1.Verilog != r2.Verilog {
		t.Error("cached result differs from computed result")
	}

	// A K change must miss the result cache but hit the prepared cache.
	_, m3 := postJob(t, ts, `{"pla":`+strconv.Quote(tinyPLA)+`,"k":0.5,"verilog":true}`)
	j3 := waitTerminal(t, s, m3["id"].(string))
	r3, _ := j3.Result()
	if r3 == nil {
		t.Fatal("third job failed")
	}
	if r3.Cache != "prepared" {
		t.Fatalf("third job cache %q, want prepared", r3.Cache)
	}
}

// TestDaemonMatchesCLI is the differential acceptance suite: every
// example circuit × K ∈ {0, 1}, synthesized by the daemon (cold, then
// warm through both caches), must be byte-identical to the one-shot
// casyn.Synthesize path.
func TestDaemonMatchesCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesizes every example circuit twice per K")
	}
	circuits, err := filepath.Glob(filepath.Join("..", "..", "examples", "circuits", "*.pla"))
	if err != nil || len(circuits) == 0 {
		t.Fatalf("no example circuits: %v", err)
	}

	s, ts := testServer(t, Config{Workers: 2})
	var mu sync.Mutex
	refs := make(map[string]*casyn.Result) // path|k → one-shot result

	var wg sync.WaitGroup
	for _, path := range circuits {
		for _, k := range []float64{0, 1} {
			wg.Add(1)
			go func(path string, k float64) {
				defer wg.Done()
				p, err := casyn.ReadPLAFile(path)
				if err != nil {
					t.Errorf("%s: %v", path, err)
					return
				}
				res, err := casyn.Synthesize(p, casyn.Options{K: k})
				if err != nil {
					t.Errorf("%s K=%g: %v", path, k, err)
					return
				}
				mu.Lock()
				refs[fmt.Sprintf("%s|%g", path, k)] = res
				mu.Unlock()
			}(path, k)
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	check := func(pass string, wantCache map[string]bool) {
		for _, path := range circuits {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []float64{0, 1} {
				body := fmt.Sprintf(`{"pla":%s,"k":%g,"verilog":true}`, strconv.Quote(string(raw)), k)
				_, m := postJob(t, ts, body)
				job := waitTerminal(t, s, m["id"].(string))
				got, jerr := job.Result()
				if got == nil {
					t.Fatalf("[%s] %s K=%g failed: %+v", pass, path, k, jerr)
				}
				if !wantCache[got.Cache] {
					t.Errorf("[%s] %s K=%g served from %q cache", pass, path, k, got.Cache)
				}
				ref := refs[fmt.Sprintf("%s|%g", path, k)]
				if got.Report != ref.Report() {
					t.Errorf("[%s] %s K=%g report mismatch:\ndaemon:\n%s\ncli:\n%s",
						pass, path, k, got.Report, ref.Report())
				}
				var vb strings.Builder
				if err := ref.Mapped.WriteVerilog(&vb, "casyn_top"); err != nil {
					t.Fatal(err)
				}
				if got.Verilog != vb.String() {
					t.Errorf("[%s] %s K=%g verilog mismatch", pass, path, k)
				}
			}
		}
	}
	// Cold pass: K=0 builds the prefix, K=1 of the same circuit may
	// already share it. Warm pass: everything repeats exactly.
	check("cold", map[string]bool{"cold": true, "prepared": true})
	check("warm", map[string]bool{"result": true})
}

func TestLRU(t *testing.T) {
	c := newLRU[int](2)
	c.add("a", 1)
	c.add("b", 2)
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	if ev := c.add("c", 3); ev != 1 {
		t.Fatalf("evicted %d, want 1", ev)
	}
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted (a was touched more recently)")
	}
	if v, ok := c.get("a"); !ok || v != 1 {
		t.Error("a lost")
	}
	// Disabled cache.
	d := newLRU[int](0)
	d.add("x", 1)
	if _, ok := d.get("x"); ok {
		t.Error("disabled cache retained an entry")
	}
}

func TestJobTableEviction(t *testing.T) {
	s, ts := testServer(t, Config{MaxJobs: 3, Workers: 1})
	var ids []string
	for i := 0; i < 5; i++ {
		// Distinct K so each job is distinct; tiny circuit so they finish.
		_, m := postJob(t, ts, fmt.Sprintf(`{"pla":%s,"k":%d}`, strconv.Quote(tinyPLA), i))
		id := m["id"].(string)
		ids = append(ids, id)
		waitTerminal(t, s, id)
	}
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	if n > 3 {
		t.Fatalf("job table holds %d, want <= 3", n)
	}
	// The newest job must still be there; the oldest must be gone.
	if _, ok := s.Job(ids[len(ids)-1]); !ok {
		t.Error("newest job evicted")
	}
	if _, ok := s.Job(ids[0]); ok {
		t.Error("oldest terminal job not evicted")
	}
}

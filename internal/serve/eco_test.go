package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"casyn"
	"casyn/internal/logic"
	"casyn/internal/runstage"
	"casyn/internal/subject"
)

func postEco(t *testing.T, ts *httptest.Server, parent, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs/"+parent+"/eco", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	resp.Body.Close()
	return resp, m
}

// tinyEditableGate finds a live base gate of tinyPLA's subject DAG —
// the same DAG the daemon synthesizes for the spec — so the tests can
// submit a semantically valid edit.
func tinyEditableGate(t *testing.T) int {
	t.Helper()
	p, err := logic.ReadPLA(strings.NewReader(tinyPLA))
	if err != nil {
		t.Fatal(err)
	}
	d, err := casyn.SubjectFor(context.Background(), p, casyn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range d.LiveGates() {
		if tp := d.Gate(g).Type; tp == subject.Nand2 || tp == subject.Inv {
			return g
		}
	}
	t.Fatal("tinyPLA has no editable base gate")
	return -1
}

// TestEcoEndpoint drives the incremental path over HTTP: base job,
// then an ECO against it; the result must carry the ECO annotation,
// and an identical resubmission must come back byte-identical from
// the result cache.
func TestEcoEndpoint(t *testing.T) {
	s, ts := testServer(t, Config{})
	resp, m := postJob(t, ts, `{"pla":`+strconv.Quote(tinyPLA)+`,"k":0}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%v)", resp.StatusCode, m)
	}
	parent := m["id"].(string)
	if job := waitTerminal(t, s, parent); job.Status() != StatusDone {
		res, err := job.Result()
		t.Fatalf("parent finished %s (%+v, %v)", job.Status(), res, err)
	}

	edits := fmt.Sprintf(`{"edits":[{"op":"nudge","gate":%d,"dx":5,"dy":0}]}`, tinyEditableGate(t))
	er, em := postEco(t, ts, parent, edits)
	if er.StatusCode != http.StatusAccepted {
		t.Fatalf("eco submit: %d (%v)", er.StatusCode, em)
	}
	eid := em["id"].(string)
	job := waitTerminal(t, s, eid)
	if job.Status() != StatusDone {
		res, err := job.Result()
		t.Fatalf("eco job finished %s (%+v, %v)", job.Status(), res, err)
	}
	res, _ := job.Result()
	if res == nil || res.ECO == nil {
		t.Fatalf("eco result missing annotation: %+v", res)
	}
	if res.ECO.Parent != parent || res.ECO.Edits != 1 || res.ECO.K != 0 || res.ECO.FastRoute {
		t.Fatalf("eco annotation %+v", res.ECO)
	}
	if res.Report == "" || res.NumCells == 0 {
		t.Fatalf("empty eco result: %+v", res)
	}

	// Identical resubmission: served from the result cache, byte-identical.
	er2, em2 := postEco(t, ts, parent, edits)
	if er2.StatusCode != http.StatusAccepted {
		t.Fatalf("eco resubmit: %d (%v)", er2.StatusCode, em2)
	}
	job2 := waitTerminal(t, s, em2["id"].(string))
	res2, _ := job2.Result()
	if res2 == nil || res2.Cache != "result" {
		t.Fatalf("resubmission missed the result cache: %+v", res2)
	}
	if res2.Report != res.Report {
		t.Error("cached eco result differs from the original")
	}

	// Chaining an ECO off an ECO is rejected.
	cr, cm := postEco(t, ts, eid, edits)
	if cr.StatusCode != http.StatusBadRequest {
		t.Errorf("eco-of-eco: %d (%v), want 400", cr.StatusCode, cm)
	}
}

// TestEcoRejections covers the endpoint's error contract: malformed
// bodies 400, unknown parent 404, unfinished parent 409.
func TestEcoRejections(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, Hooks: &runstage.Hooks{Faults: []runstage.Fault{
		{Stage: runstage.StagePrepare, AllK: true, Delay: 3 * time.Second},
	}}})

	if r, m := postEco(t, ts, "nope", `{"edits":[{"op":"nudge","gate":1,"dx":1,"dy":1}]}`); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown parent: %d (%v), want 404", r.StatusCode, m)
	}

	// A slow parent is not done: 409.
	resp, m := postJob(t, ts, `{"pla":`+strconv.Quote(tinyPLA)+`,"k":0}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%v)", resp.StatusCode, m)
	}
	parent := m["id"].(string)
	waitRunning(t, s, parent)
	if r, m := postEco(t, ts, parent, `{"edits":[{"op":"nudge","gate":1,"dx":1,"dy":1}]}`); r.StatusCode != http.StatusConflict {
		t.Errorf("unfinished parent: %d (%v), want 409", r.StatusCode, m)
	}
	if job := waitTerminal(t, s, parent); job.Status() != StatusDone {
		t.Fatalf("parent finished %s", job.Status())
	}

	for _, body := range []string{
		`{`,                              // malformed JSON
		`{}`,                             // no edits
		`{"edits":[]}`,                   // empty set
		`{"edits":[{"op":"warp"}]}`,      // unknown op
		`{"edits":[{"op":"nudge"}]}`,     // missing fields
		`{"edits":[],"typo_field":true}`, // unknown field
		`{"edits":[{"op":"nudge","gate":1,"dx":1,"dy":1}],"k":-1}`, // bad K
	} {
		if r, m := postEco(t, ts, parent, body); r.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: %d (%v), want 400", body, r.StatusCode, m)
		}
	}

	// A semantically invalid edit (out-of-range gate) passes admission
	// and fails in the eco stage.
	r, m := postEco(t, ts, parent, `{"edits":[{"op":"nudge","gate":999999,"dx":1,"dy":1}]}`)
	if r.StatusCode != http.StatusAccepted {
		t.Fatalf("out-of-range gate rejected at admission: %d (%v)", r.StatusCode, m)
	}
	job := waitTerminal(t, s, m["id"].(string))
	if job.Status() != StatusFailed {
		t.Fatalf("out-of-range gate: job %s, want failed", job.Status())
	}
	_, jerr := job.Result()
	if jerr == nil || jerr.Stage != string(runstage.StageECO) {
		t.Errorf("failure did not identify the eco stage: %+v", jerr)
	}
}

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"casyn/internal/obs"
)

// jobView is the JSON shape of a job's status.
type jobView struct {
	ID       string    `json:"id"`
	Status   Status    `json:"status"`
	Error    *JobError `json:"error,omitempty"`
	Retries  int       `json:"retries,omitempty"`
	Submit   string    `json:"submitted_at"`
	WallMS   float64   `json:"wall_ms,omitempty"`
	Terminal bool      `json:"terminal"`
}

func viewOf(j *Job) jobView {
	j.mu.Lock()
	v := jobView{
		ID:       j.ID,
		Status:   j.status,
		Error:    j.jerr,
		Retries:  j.retries,
		Submit:   j.submitAt.UTC().Format(time.RFC3339Nano),
		Terminal: j.status.Terminal(),
	}
	if !j.startAt.IsZero() && !j.finishAt.IsZero() {
		v.WallMS = float64(j.finishAt.Sub(j.startAt)) / float64(time.Millisecond)
	}
	j.mu.Unlock()
	return v
}

// Handler returns the daemon's HTTP API:
//
//	POST   /jobs             submit a JobSpec       → 202 {id,status} | 400 | 429 (+Retry-After) | 503 draining
//	POST   /jobs/{id}/eco    incremental edit job   → 202 {id,status} | 400 | 404 | 409 parent not done | 429 | 503
//	GET    /jobs/{id}        job status             → 200 | 404
//	GET    /jobs/{id}/result terminal outcome       → 200 result | 200 error body | 202 still running | 404
//	DELETE /jobs/{id}        cancel                 → 200 | 404
//	GET    /healthz          liveness + queue pressure (503 while draining)
//	GET    /metrics          Prometheus text exposition
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("POST /jobs/{id}/eco", s.handleEco)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to do on error
}

type errBody struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := ParseJobSpec(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errBody{Error: err.Error()})
		return
	}
	job, err := s.Submit(*spec)
	var full *ErrQueueFull
	switch {
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errBody{Error: err.Error()})
	case errors.As(err, &full):
		secs := int(full.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusTooManyRequests, errBody{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusAccepted, viewOf(job))
	}
}

// handleEco admits an incremental job: the edit set in the body is
// applied against the completed parent job's synthesis lineage.
func (s *Server) handleEco(w http.ResponseWriter, r *http.Request) {
	parent, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	spec, err := ParseEcoSpec(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errBody{Error: err.Error()})
		return
	}
	job, err := s.SubmitECO(parent, spec)
	var full *ErrQueueFull
	switch {
	case errors.Is(err, ErrParentNotDone):
		writeJSON(w, http.StatusConflict, errBody{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errBody{Error: err.Error()})
	case errors.As(err, &full):
		secs := int(full.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusTooManyRequests, errBody{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusAccepted, viewOf(job))
	}
}

func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	job, ok := s.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errBody{Error: fmt.Sprintf("no job %q", id)})
		return nil, false
	}
	return job, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, viewOf(job))
}

// resultBody is the terminal-outcome response: exactly one of Result
// and Error is set.
type resultBody struct {
	ID     string     `json:"id"`
	Status Status     `json:"status"`
	Result *JobResult `json:"result,omitempty"`
	Error  *JobError  `json:"error,omitempty"`
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	if !job.Status().Terminal() {
		writeJSON(w, http.StatusAccepted, viewOf(job))
		return
	}
	res, jerr := job.Result()
	if res != nil && !job.Spec.Verilog {
		// The cache carries the netlist either way; this client did not
		// ask for it.
		res = res.clone()
		res.Verilog = ""
	}
	writeJSON(w, http.StatusOK, resultBody{ID: job.ID, Status: job.Status(), Result: res, Error: jerr})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusOK, viewOf(job))
}

// healthBody reports liveness and queue pressure.
type healthBody struct {
	Status   string  `json:"status"` // "ok" | "draining"
	Queue    int     `json:"queue_depth"`
	QueueCap int     `json:"queue_capacity"`
	Running  int64   `json:"jobs_running"`
	Pressure float64 `json:"pressure"` // depth / capacity
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := healthBody{
		Status:   "ok",
		Queue:    len(s.queue),
		QueueCap: s.cfg.QueueCap,
		Running:  s.runningCount(),
	}
	if body.QueueCap > 0 {
		body.Pressure = float64(body.Queue) / float64(body.QueueCap)
	}
	code := http.StatusOK
	if s.Draining() {
		body.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	// WriteProm writes to an http.ResponseWriter; a late error means a
	// broken connection, which there is no one left to tell.
	_ = obs.WriteProm(w, s.Metrics())
}

package serve

// Incremental ECO jobs: POST /jobs/{id}/eco applies an edit set
// against a completed job's synthesis lineage. The parent job's
// PrepKey locates the shared prepared context in the LRU (the
// decomposed DAG, placed technology-independent netlist, and the
// K-invariant match enumeration); a per-(prefix, K) baseline state —
// the covering and routing residue of the unedited design — is built
// once and cached; flow.RunECO then re-prepares, re-covers, and
// re-routes only what the edits dirtied. The ECO job rides the same
// bounded queue, admission control, retry, and panic isolation as any
// submission.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"casyn"
	"casyn/internal/flow"
	"casyn/internal/mapper"
)

// EcoSpec is the JSON body of an ECO submission.
type EcoSpec struct {
	// Edits is the edit-set array (mapper wire form): gate_func,
	// reconnect, nudge, swap operations.
	Edits json.RawMessage `json:"edits"`
	// K overrides the congestion factor; default is the parent job's K
	// (a sweep parent's accepted rung).
	K *float64 `json:"k,omitempty"`
	// Fast selects the incremental reroute (territory-scoped rip-up
	// against the persisted congestion history) instead of the
	// byte-identical from-scratch route of the edited design.
	Fast bool `json:"fast,omitempty"`
	// Verilog / TimeoutMS / NoResultCache mirror JobSpec.
	Verilog       bool  `json:"verilog,omitempty"`
	TimeoutMS     int64 `json:"timeout_ms,omitempty"`
	NoResultCache bool  `json:"no_result_cache,omitempty"`

	// edits is the decoded set, parsed once at admission.
	edits mapper.EditSet
}

// ParseEcoSpec decodes and validates an ECO submission body. The edit
// set's shape is checked here (unknown ops, missing fields, size); its
// semantic validity against the concrete design is checked by the
// pipeline, where a bad edit fails the job with stage "eco".
func ParseEcoSpec(r io.Reader) (*EcoSpec, error) {
	dec := json.NewDecoder(io.LimitReader(r, mapper.MaxEditSetBytes*2))
	dec.DisallowUnknownFields()
	spec := &EcoSpec{}
	if err := dec.Decode(spec); err != nil {
		return nil, fmt.Errorf("bad eco spec: %w", err)
	}
	if len(spec.Edits) == 0 {
		return nil, fmt.Errorf("bad eco spec: need a non-empty edits array")
	}
	doc, err := json.Marshal(struct {
		Edits json.RawMessage `json:"edits"`
	}{spec.Edits})
	if err != nil {
		return nil, fmt.Errorf("bad eco spec: %w", err)
	}
	spec.edits, err = mapper.ParseEditSet(doc)
	if err != nil {
		return nil, fmt.Errorf("bad eco spec: %w", err)
	}
	if len(spec.edits.Edits) == 0 {
		return nil, fmt.Errorf("bad eco spec: empty edit set")
	}
	if spec.K != nil {
		if err := validK(*spec.K); err != nil {
			return nil, fmt.Errorf("bad eco spec: %w", err)
		}
	}
	if spec.TimeoutMS < 0 || time.Duration(spec.TimeoutMS)*time.Millisecond > MaxTimeout {
		return nil, fmt.Errorf("bad eco spec: timeout_ms must be in [0, %d]", MaxTimeout.Milliseconds())
	}
	return spec, nil
}

// ErrParentNotDone rejects an ECO against a job that has not completed
// successfully — there is no synthesis lineage to edit yet.
var ErrParentNotDone = fmt.Errorf("eco: parent job is not done")

// ErrEcoParent rejects chaining an ECO off another ECO job; edits
// compose into one set against the original job instead.
var ErrEcoParent = fmt.Errorf("eco: parent is itself an eco job; submit the combined edits against the original job")

// ErrEcoMultiDie rejects an ECO against a multi-die parent; the ECO
// chain's incremental state (covering and routing residue) is
// single-die and has no model of the replicated, region-assigned
// forest.
var ErrEcoMultiDie = fmt.Errorf("eco: parent is a multi-die job; the eco chain is single-die")

// ecoJob is the ECO payload riding on a queued Job.
type ecoJob struct {
	parent string
	edits  mapper.EditSet
	k      float64
	fast   bool
	// parentKMode is the parent job's canonical k_mode, carried so the
	// result can state how the effective fixed K relates to the
	// parent's mode (an adaptive parent's edits run at its baseline K).
	parentKMode string
}

// ECOInfo annotates an ECO job's result.
type ECOInfo struct {
	// Parent is the job whose synthesis lineage the edits were applied
	// against.
	Parent string `json:"parent"`
	// Edits is the number of operations in the applied set.
	Edits int `json:"edits"`
	// K is the congestion factor the incremental synthesis ran at.
	K float64 `json:"k"`
	// KMode is the effective K-selection mode of the incremental run.
	// Always "fixed": the ECO chain diffs against a fixed-K residue,
	// whatever mode the parent ran in.
	KMode string `json:"k_mode"`
	// ParentKMode records the parent's mode when it differed from the
	// effective one — an adaptive parent's edits run open-loop at the
	// fixed K above, and the result must say so rather than silently
	// dropping the mode.
	ParentKMode string `json:"parent_k_mode,omitempty"`
	// FastRoute reports the incremental (territory-scoped) reroute.
	FastRoute bool `json:"fast_route,omitempty"`
}

// SubmitECO validates and admits an incremental job against a
// completed parent. The derived job inherits the parent's circuit and
// synthesis options (so its PrepKey — and therefore its prepared
// context — is the parent's), fixes a single K, and carries the edit
// set to the worker.
func (s *Server) SubmitECO(parent *Job, spec *EcoSpec) (*Job, error) {
	if parent.eco != nil {
		s.rec.Add("serve.jobs_invalid", 1)
		return nil, ErrEcoParent
	}
	if parent.Status() != StatusDone {
		s.rec.Add("serve.jobs_invalid", 1)
		return nil, ErrParentNotDone
	}
	if parent.Spec.Dies > 1 {
		s.rec.Add("serve.jobs_invalid", 1)
		return nil, ErrEcoMultiDie
	}
	k := parent.Spec.K
	if res, _ := parent.Result(); res != nil && res.BestK != nil {
		k = *res.BestK
	}
	if spec.K != nil {
		k = *spec.K
	}
	if err := validK(k); err != nil {
		s.rec.Add("serve.jobs_invalid", 1)
		return nil, err
	}

	derived := parent.Spec
	derived.K = k
	derived.KSchedule = nil
	derived.StopAtFirstRoutable = false
	// The ECO chain is fixed-K (the incremental state is a fixed-K
	// residue); an adaptive parent's edits run at its baseline K. The
	// mode change is not silent: the result's ECOInfo reports the
	// effective k_mode and, when it differed, the parent's.
	derived.KMode = ""
	derived.Verilog = spec.Verilog
	derived.NoResultCache = spec.NoResultCache
	if spec.TimeoutMS > 0 {
		derived.TimeoutMS = spec.TimeoutMS
	}

	// The result key hashes the canonical (re-marshaled) edit set, so
	// formatting differences in the submitted JSON share a cache entry.
	canon, err := json.Marshal(spec.edits)
	if err != nil {
		return nil, err
	}
	h := sha256.New()
	// The parent's k_mode rides in the key: it is annotated on the
	// result (ECOInfo.ParentKMode), so two otherwise-identical ECOs
	// off differently-moded parents must not share a cache entry.
	fmt.Fprintf(h, "eco %s k %g fast %v timing %v verify %v kmode %s edits %s\n",
		parent.prepKey, k, spec.Fast, derived.Timing, derived.Verify, parent.Spec.kmode(), canon)
	resultKey := hex.EncodeToString(h.Sum(nil))

	return s.admit(derived, parent.prepKey, resultKey,
		&ecoJob{parent: parent.ID, edits: spec.edits, k: k, fast: spec.Fast,
			parentKMode: parent.Spec.kmode()})
}

// runJobECO executes one incremental job: result cache, prepared
// context by the parent's PrepKey, cached baseline state, then
// flow.RunECO.
func (s *Server) runJobECO(ctx context.Context, job *Job) (*JobResult, error) {
	spec := &job.Spec
	if !spec.NoResultCache {
		if cached, ok := s.resCache.get(job.resultKey); ok {
			s.rec.Add("serve.cache.result_hits", 1)
			res := cached.clone()
			res.Cache = "result"
			res.StageWallMS = nil
			return res, nil
		}
		s.rec.Add("serve.cache.result_misses", 1)
	}

	entry, cacheTag, err := s.prepared(ctx, spec, job.prepKey)
	if err != nil {
		return nil, err
	}
	opts := spec.options()
	if opts.Workers == 0 {
		opts.Workers = s.cfg.JobWorkers
	}
	if opts.StageTimeout == 0 {
		opts.StageTimeout = s.cfg.StageTimeout
	}
	cfg := casyn.FlowConfig(entry.layout, opts)
	cfg.Lib = s.lib
	cfg.Hooks = s.cfg.Hooks
	cfg.FastECORoute = job.eco.fast

	st, err := s.ecoBaseline(ctx, entry, cfg, job.prepKey, job.eco.k)
	if err != nil {
		return nil, err
	}
	it, _, err := flow.RunECO(ctx, entry.pc, st, job.eco.edits, cfg)
	flow.MergeMetrics(ctx, it.Metrics)
	if err != nil {
		return nil, err
	}
	res, err := s.buildResult(entry, &it, nil, nil)
	if err != nil {
		return nil, err
	}
	res.Cache = cacheTag
	info := &ECOInfo{Parent: job.eco.parent, Edits: len(job.eco.edits.Edits),
		K: job.eco.k, KMode: "fixed", FastRoute: job.eco.fast}
	if job.eco.parentKMode != "fixed" {
		info.ParentKMode = job.eco.parentKMode
	}
	res.ECO = info
	s.resCache.add(job.resultKey, res.clone())
	return res, nil
}

// ecoBaseline returns the cached baseline state for (prefix, K) — the
// unedited design's covering and routing residue every ECO against
// this lineage is diffed from — computing and caching it on first use.
// The state is immutable after construction (RunECO never mutates its
// input state), so concurrent ECO jobs share it freely.
func (s *Server) ecoBaseline(ctx context.Context, entry *prepEntry, cfg flow.Config, prepKey string, k float64) (*flow.ECOState, error) {
	key := fmt.Sprintf("%s|k=%g", prepKey, k)
	if st, ok := s.ecoCache.get(key); ok {
		s.rec.Add("serve.cache.eco_hits", 1)
		return st, nil
	}
	s.rec.Add("serve.cache.eco_misses", 1)
	it, st, err := flow.RunStateful(ctx, entry.pc, k, cfg)
	flow.MergeMetrics(ctx, it.Metrics)
	if err != nil {
		return nil, err
	}
	s.ecoCache.add(key, st)
	return st, nil
}

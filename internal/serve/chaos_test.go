package serve

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"testing"
	"time"

	"casyn/internal/runstage"
)

// chaosStages are every pipeline stage the daemon can lose a job in.
var chaosStages = []runstage.Stage{
	StageFrontend,
	runstage.StagePrepare,
	runstage.StageMapPrepare,
	runstage.StageMap,
	runstage.StagePlace,
	runstage.StageRoute,
	runstage.StageSTA,
}

// TestChaosEveryStageEveryMode injects an error, then a panic, then a
// budget-blowing delay into every pipeline stage, across K values, and
// requires: the daemon never crashes or hangs, every job reaches a
// terminal state with a structured error naming the failed stage, and
// the health endpoint keeps answering throughout.
func TestChaosEveryStageEveryMode(t *testing.T) {
	for _, stage := range chaosStages {
		stage := stage
		t.Run(string(stage), func(t *testing.T) {
			modes := []struct {
				name  string
				fault runstage.Fault
				check func(t *testing.T, jerr *JobError)
			}{
				{
					name:  "error",
					fault: runstage.Fault{Stage: stage, AllK: true, Err: errors.New("chaos: injected failure")},
					check: func(t *testing.T, jerr *JobError) {
						if jerr.Panicked || jerr.Timeout {
							t.Errorf("error fault misclassified: %+v", jerr)
						}
					},
				},
				{
					name:  "panic",
					fault: runstage.Fault{Stage: stage, AllK: true, Panic: "chaos: injected panic"},
					check: func(t *testing.T, jerr *JobError) {
						if !jerr.Panicked {
							t.Errorf("panic fault not flagged: %+v", jerr)
						}
					},
				},
				{
					name:  "stall",
					fault: runstage.Fault{Stage: stage, AllK: true, Delay: time.Hour},
					check: func(t *testing.T, jerr *JobError) {
						if !jerr.Timeout && !jerr.Canceled {
							t.Errorf("stalled fault not budget-killed: %+v", jerr)
						}
					},
				},
			}
			for _, mode := range modes {
				mode := mode
				t.Run(mode.name, func(t *testing.T) {
					hooks := &runstage.Hooks{Faults: []runstage.Fault{mode.fault}}
					s, ts := testServer(t, Config{Workers: 2, Hooks: hooks, StageTimeout: 200 * time.Millisecond})
					// STA only runs when timing is on; keep it on so the
					// sta stage actually executes. Two K values.
					for _, k := range []float64{0, 1} {
						body := fmt.Sprintf(`{"pla":%s,"k":%g,"timing":true}`, strconv.Quote(tinyPLA), k)
						resp, m := postJob(t, ts, body)
						if resp.StatusCode != http.StatusAccepted {
							t.Fatalf("submit: %d (%v)", resp.StatusCode, m)
						}
						job := waitTerminal(t, s, m["id"].(string))
						if job.Status() != StatusFailed && job.Status() != StatusCanceled {
							t.Fatalf("K=%g: status %s, want failed/canceled", k, job.Status())
						}
						res, jerr := job.Result()
						if res != nil || jerr == nil {
							t.Fatalf("K=%g: result %v err %v, want structured error only", k, res, jerr)
						}
						if jerr.Message == "" {
							t.Errorf("K=%g: empty error message", k)
						}
						// The structured error names the failed stage (the
						// front-end fault for prepare-adjacent stages may
						// surface under the injected stage itself).
						if jerr.Stage != string(stage) && !jerr.Timeout && !jerr.Canceled {
							t.Errorf("K=%g: failed in %q, injected into %q", k, jerr.Stage, stage)
						}
						mode.check(t, jerr)

						// The daemon is still alive and healthy.
						hr, err := http.Get(ts.URL + "/healthz")
						if err != nil {
							t.Fatalf("healthz after chaos: %v", err)
						}
						hr.Body.Close()
						if hr.StatusCode != http.StatusOK {
							t.Fatalf("healthz after chaos: %d", hr.StatusCode)
						}
					}
				})
			}
		})
	}
}

// TestChaosTransientFaultRetriedToSuccess injects a seeded
// probabilistic fault and gives the daemon a retry budget: the job
// must eventually succeed, the retries must be visible in the result,
// and the injection counter must account for every applied fault.
func TestChaosTransientFaultRetriedToSuccess(t *testing.T) {
	hooks := &runstage.Hooks{
		Seed: 11,
		Faults: []runstage.Fault{
			// Rate 0.6 with seed 11: the first draws apply the fault, a
			// later one spares it — enough retries always get through.
			{Stage: runstage.StageMap, AllK: true, Rate: 0.6, Err: errors.New("chaos: transient")},
		},
	}
	s, ts := testServer(t, Config{
		Workers:      1,
		Hooks:        hooks,
		Retries:      10,
		RetryBackoff: time.Millisecond,
	})
	resp, m := postJob(t, ts, `{"pla":`+strconv.Quote(tinyPLA)+`,"k":0}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	job := waitTerminal(t, s, m["id"].(string))
	if job.Status() != StatusDone {
		_, jerr := job.Result()
		t.Fatalf("status %s (%+v), want done within the retry budget", job.Status(), jerr)
	}
	res, _ := job.Result()
	if res.Retries == 0 {
		t.Error("job reports zero retries though the fault fired")
	}
	snap := s.Metrics()
	if got := snap.Counters[runstage.InjectedCounter]; got < int64(res.Retries) {
		t.Errorf("faults.injected = %d, want >= %d retries", got, res.Retries)
	}
	if got := snap.Counters["serve.jobs_retried"]; got != int64(res.Retries) {
		t.Errorf("serve.jobs_retried = %d, want %d", got, res.Retries)
	}
}

// TestChaosPanicNeverKillsNeighbors runs a poisoned job concurrently
// with healthy ones: the healthy jobs complete normally.
func TestChaosPanicNeverKillsNeighbors(t *testing.T) {
	hooks := &runstage.Hooks{Faults: []runstage.Fault{
		// Only K=3 is poisoned.
		{Stage: runstage.StageRoute, K: 3, Panic: "chaos: poison"},
	}}
	s, ts := testServer(t, Config{Workers: 2, Hooks: hooks})
	var ids []string
	for _, k := range []float64{0, 3, 1} {
		resp, m := postJob(t, ts, fmt.Sprintf(`{"pla":%s,"k":%g}`, strconv.Quote(tinyPLA), k))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit K=%g: %d", k, resp.StatusCode)
		}
		ids = append(ids, m["id"].(string))
	}
	poisoned := waitTerminal(t, s, ids[1])
	if poisoned.Status() != StatusFailed {
		t.Errorf("poisoned job: %s, want failed", poisoned.Status())
	}
	_, jerr := poisoned.Result()
	if jerr == nil || !jerr.Panicked || jerr.Stage != string(runstage.StageRoute) {
		t.Errorf("poisoned job error: %+v", jerr)
	}
	for _, i := range []int{0, 2} {
		job := waitTerminal(t, s, ids[i])
		if job.Status() != StatusDone {
			_, jerr := job.Result()
			t.Errorf("healthy job %s: %s (%+v), want done", job.ID, job.Status(), jerr)
		}
	}
}

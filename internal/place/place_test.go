package place

import (
	"context"

	"math"
	"math/rand"
	"testing"

	"casyn/internal/geom"
)

func TestNewLayout(t *testing.T) {
	t.Parallel()
	l, err := NewLayout(207062, 1.0, 6.656)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Area()-207062) > 207062*0.01 {
		t.Errorf("area = %g, want ~207062", l.Area())
	}
	// Paper: 207062 µm², aspect 1 → 71 rows at 6.656 µm row height
	// is one plausible quantization; ours must land within a row.
	if l.NumRows < 66 || l.NumRows > 70 {
		t.Logf("rows = %d (die %.1f x %.1f)", l.NumRows, l.Die.W(), l.Die.H())
	}
	if _, err := NewLayout(-1, 1, 1); err == nil {
		t.Error("negative area accepted")
	}
	if _, err := LayoutWithRows(0, 10, 1); err == nil {
		t.Error("zero rows accepted")
	}
}

func TestLayoutRows(t *testing.T) {
	t.Parallel()
	l, err := LayoutWithRows(10, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if l.Die.H() != 50 || l.Die.W() != 100 {
		t.Fatalf("die = %v", l.Die)
	}
	if l.RowY(0) != 2.5 || l.RowY(9) != 47.5 {
		t.Errorf("RowY = %g, %g", l.RowY(0), l.RowY(9))
	}
	if l.RowOf(2.5) != 0 || l.RowOf(47.6) != 9 {
		t.Error("RowOf wrong")
	}
	if l.RowOf(-5) != 0 || l.RowOf(500) != 9 {
		t.Error("RowOf must clamp")
	}
	if got := l.Utilization(2500); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Utilization = %g, want 0.5", got)
	}
}

func TestPerimeterPads(t *testing.T) {
	t.Parallel()
	l, _ := LayoutWithRows(10, 100, 5)
	pads := l.PerimeterPads(16)
	if len(pads) != 16 {
		t.Fatalf("got %d pads", len(pads))
	}
	for i, p := range pads {
		onEdge := p.X == l.Die.Min.X || p.X == l.Die.Max.X || p.Y == l.Die.Min.Y || p.Y == l.Die.Max.Y
		if !onEdge {
			t.Errorf("pad %d = %v not on boundary", i, p)
		}
	}
	if l.PerimeterPads(0) != nil {
		t.Error("zero pads must return nil")
	}
}

func TestNetlistValidate(t *testing.T) {
	t.Parallel()
	nl := &Netlist{Widths: []float64{1, 2}, Nets: []Net{{Cells: []int{0, 1}}}}
	if err := nl.Validate(); err != nil {
		t.Errorf("valid netlist rejected: %v", err)
	}
	bad := &Netlist{Widths: []float64{1}, Nets: []Net{{Cells: []int{5}}}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range cell accepted")
	}
	neg := &Netlist{Widths: []float64{-1}}
	if err := neg.Validate(); err == nil {
		t.Error("negative width accepted")
	}
}

func TestHPWL(t *testing.T) {
	t.Parallel()
	nl := &Netlist{
		Widths: []float64{1, 1, 1},
		Nets: []Net{
			{Cells: []int{0, 1}},
			{Cells: []int{2}, Pads: []geom.Point{geom.Pt(10, 10)}},
			{Cells: []int{0}}, // degree 1: zero length
		},
	}
	p := &Placement{Pos: []geom.Point{geom.Pt(0, 0), geom.Pt(3, 4), geom.Pt(10, 0)}, Row: make([]int, 3)}
	if got := nl.NetHPWL(p, 0); got != 7 {
		t.Errorf("net 0 HPWL = %g, want 7", got)
	}
	if got := nl.NetHPWL(p, 1); got != 10 {
		t.Errorf("net 1 HPWL = %g, want 10", got)
	}
	if got := nl.NetHPWL(p, 2); got != 0 {
		t.Errorf("net 2 HPWL = %g, want 0", got)
	}
	if got := nl.HPWL(p); got != 17 {
		t.Errorf("total = %g, want 17", got)
	}
}

// chainNetlist builds n cells in a chain with uniform width.
func chainNetlist(n int, w float64) *Netlist {
	nl := &Netlist{Widths: make([]float64, n)}
	for i := range nl.Widths {
		nl.Widths[i] = w
	}
	for i := 0; i+1 < n; i++ {
		nl.Nets = append(nl.Nets, Net{Cells: []int{i, i + 1}})
	}
	return nl
}

func TestPlaceChainLegality(t *testing.T) {
	t.Parallel()
	nl := chainNetlist(100, 2)
	layout, _ := LayoutWithRows(10, 40, 5)
	p, err := PlaceNetlist(context.Background(), nl, layout, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Every cell inside the die, on a row center.
	for c := 0; c < nl.NumCells(); c++ {
		pt := p.Pos[c]
		if !layout.Die.Expand(1e-6).Contains(pt) {
			t.Fatalf("cell %d at %v outside die %v", c, pt, layout.Die)
		}
		if math.Abs(pt.Y-layout.RowY(p.Row[c])) > 1e-6 {
			t.Fatalf("cell %d not on its row center", c)
		}
	}
	// No overlaps within a row.
	byRow := map[int][]int{}
	for c := range p.Pos {
		byRow[p.Row[c]] = append(byRow[p.Row[c]], c)
	}
	for r, cells := range byRow {
		for i := 0; i < len(cells); i++ {
			for j := i + 1; j < len(cells); j++ {
				a, b := cells[i], cells[j]
				dist := math.Abs(p.Pos[a].X - p.Pos[b].X)
				if dist < (nl.Widths[a]+nl.Widths[b])/2-1e-6 {
					t.Fatalf("row %d: cells %d,%d overlap (dist %g)", r, a, b, dist)
				}
			}
		}
	}
}

func TestPlaceBeatsRandom(t *testing.T) {
	t.Parallel()
	// A clustered netlist: 8 clusters of 16 cells with dense internal
	// nets and sparse external ones. Min-cut placement must beat a
	// random scatter by a wide margin.
	rng := rand.New(rand.NewSource(3))
	const clusters, per = 8, 16
	n := clusters * per
	nl := &Netlist{Widths: make([]float64, n)}
	for i := range nl.Widths {
		nl.Widths[i] = 2
	}
	for c := 0; c < clusters; c++ {
		base := c * per
		for k := 0; k < 24; k++ {
			a, b := base+rng.Intn(per), base+rng.Intn(per)
			if a != b {
				nl.Nets = append(nl.Nets, Net{Cells: []int{a, b}})
			}
		}
	}
	for k := 0; k < 10; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			nl.Nets = append(nl.Nets, Net{Cells: []int{a, b}})
		}
	}
	layout, _ := LayoutWithRows(16, 40, 5)
	p, err := PlaceNetlist(context.Background(), nl, layout, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	placed := nl.HPWL(p)
	// Random baseline with legal rows.
	randPos := &Placement{Pos: make([]geom.Point, n), Row: make([]int, n)}
	for i := range randPos.Pos {
		r := rng.Intn(layout.NumRows)
		randPos.Pos[i] = geom.Pt(layout.Die.Min.X+rng.Float64()*layout.Die.W(), layout.RowY(r))
		randPos.Row[i] = r
	}
	random := nl.HPWL(randPos)
	if placed > random*0.7 {
		t.Errorf("placement HPWL %g not clearly better than random %g", placed, random)
	}
}

func TestPlaceDeterminism(t *testing.T) {
	t.Parallel()
	nl := chainNetlist(60, 1.5)
	layout, _ := LayoutWithRows(6, 30, 5)
	p1, err := PlaceNetlist(context.Background(), nl, layout, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PlaceNetlist(context.Background(), nl, layout, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Pos {
		if p1.Pos[i] != p2.Pos[i] {
			t.Fatalf("cell %d differs between identical runs", i)
		}
	}
}

func TestPlaceWithPads(t *testing.T) {
	t.Parallel()
	// Two cells, each tied to an opposite corner pad; placement must
	// pull them apart toward their pads.
	nl := &Netlist{
		Widths: []float64{2, 2},
		Nets: []Net{
			{Cells: []int{0}, Pads: []geom.Point{geom.Pt(0, 0)}},
			{Cells: []int{1}, Pads: []geom.Point{geom.Pt(100, 50)}},
		},
	}
	// Repeat the pad nets to give them weight against the balance.
	for i := 0; i < 4; i++ {
		nl.Nets = append(nl.Nets, nl.Nets[0], nl.Nets[1])
	}
	layout, _ := LayoutWithRows(10, 100, 5)
	p, err := PlaceNetlist(context.Background(), nl, layout, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	d0 := p.Pos[0].Manhattan(geom.Pt(0, 0))
	d1 := p.Pos[1].Manhattan(geom.Pt(100, 50))
	x0 := p.Pos[0].Manhattan(geom.Pt(100, 50))
	x1 := p.Pos[1].Manhattan(geom.Pt(0, 0))
	if d0+d1 > x0+x1 {
		t.Errorf("cells not attracted to their pads: own=%g cross=%g", d0+d1, x0+x1)
	}
}

func TestPlaceEmptyAndTiny(t *testing.T) {
	t.Parallel()
	layout, _ := LayoutWithRows(2, 10, 5)
	p, err := PlaceNetlist(context.Background(), &Netlist{}, layout, Options{})
	if err != nil || len(p.Pos) != 0 {
		t.Errorf("empty netlist: %v %v", p, err)
	}
	one := &Netlist{Widths: []float64{3}}
	p, err = PlaceNetlist(context.Background(), one, layout, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !layout.Die.Contains(p.Pos[0]) {
		t.Error("single cell placed outside die")
	}
}

func TestRunFMReducesCut(t *testing.T) {
	t.Parallel()
	// Two cliques of 6 cells joined by one edge; a bad initial split
	// must be repaired to the 1-cut partition.
	const n = 12
	prob := &fmProblem{
		cells: make([]int, n),
		width: make([]float64, n),
	}
	for i := range prob.width {
		prob.cells[i] = i
		prob.width[i] = 1
	}
	addNet := func(a, b int) {
		prob.nets = append(prob.nets, fmNet{cells: []int32{int32(a), int32(b)}})
	}
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			addNet(i, j)
			addNet(i+6, j+6)
		}
	}
	addNet(0, 6)
	prob.ofCell = make([][]int32, n)
	for ni := range prob.nets {
		for _, c := range prob.nets[ni].cells {
			prob.ofCell[c] = append(prob.ofCell[c], int32(ni))
		}
	}
	prob.targetLo, prob.targetHi = 5, 7
	// Worst-case interleaved start.
	side := make([]bool, n)
	for i := range side {
		side[i] = i%2 == 1
	}
	res := runFM(prob, side, 10, rand.New(rand.NewSource(1)))
	if res.cutNets != 1 {
		t.Errorf("FM cut = %d, want 1", res.cutNets)
	}
	// Balance respected.
	wA := 0.0
	for i, s := range side {
		if !s {
			wA += prob.width[i]
		}
	}
	if wA < prob.targetLo || wA > prob.targetHi {
		t.Errorf("balance violated: wA = %g", wA)
	}
}

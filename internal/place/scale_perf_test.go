package place

import (
	"context"

	"math/rand"
	"testing"
	"time"
)

// TestScale30k guards placer performance at the paper's circuit scale
// (~30k base gates). It is skipped under -short.
func TestScale30k(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in short mode")
	}
	rng := rand.New(rand.NewSource(1))
	n := 30000
	nl := &Netlist{Widths: make([]float64, n)}
	for i := range nl.Widths {
		nl.Widths[i] = 1.5
	}
	for i := 0; i < 2*n; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			nl.Nets = append(nl.Nets, Net{Cells: []int{a, b}})
		}
	}
	layout, _ := LayoutWithRows(70, 700, 6.656)
	start := time.Now()
	p, err := PlaceNetlist(context.Background(), nl, layout, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	t.Logf("placed %d cells in %v, HPWL=%g", n, elapsed, nl.HPWL(p))
	if elapsed > 60*time.Second {
		t.Errorf("placement took %v, want < 60s", elapsed)
	}
}

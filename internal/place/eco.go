package place

// Incremental placement for ECO synthesis: after a small edit, almost
// every cell's mapper seed (its covered gates' center of mass on the
// companion placement) is unchanged, so the previous legalized
// position is still the right answer. PlaceECO keeps those verbatim
// and snaps only the cells whose seeds moved — no global
// re-legalization, no refinement sweep. The result is deliberately
// NOT byte-identical to PlaceSeeded on the edited netlist (moved
// cells may overlap neighbors until the next full placement); it is
// the placement half of the flow's fast-ECO mode, which trades exact
// identity for a milliseconds-scale re-synthesis.

import (
	"casyn/internal/geom"
)

// PlaceECO incrementally updates a previous legalized placement for an
// edited netlist whose cells are index-aligned with the previous one:
// cell i keeps prev's position when newSeeds[i] == oldSeeds[i], and is
// otherwise snapped to the row nearest its new seed, clamped inside
// the die. Returns the new placement, the number of re-placed cells,
// and whether the fast path applied at all — false (nil placement)
// when the netlists are not index-aligned or the previous placement
// does not cover them, in which case the caller must fall back to a
// full PlaceSeeded.
func PlaceECO(nl *Netlist, layout Layout, prev *Placement, oldSeeds, newSeeds []geom.Point) (*Placement, int, bool) {
	n := nl.NumCells()
	if prev == nil || len(prev.Pos) != n || len(prev.Row) != n ||
		len(oldSeeds) != n || len(newSeeds) != n || layout.NumRows < 1 {
		return nil, 0, false
	}
	p := &Placement{Pos: make([]geom.Point, n), Row: make([]int, n)}
	copy(p.Pos, prev.Pos)
	copy(p.Row, prev.Row)
	moved := 0
	for i := 0; i < n; i++ {
		if newSeeds[i] == oldSeeds[i] {
			continue
		}
		moved++
		r := layout.RowOf(newSeeds[i].Y)
		x := newSeeds[i].X
		if half := nl.Widths[i] / 2; x < layout.Die.Min.X+half {
			x = layout.Die.Min.X + half
		} else if x > layout.Die.Max.X-half {
			x = layout.Die.Max.X - half
		}
		p.Pos[i] = geom.Pt(x, layout.RowY(r))
		p.Row[i] = r
	}
	return p, moved, true
}

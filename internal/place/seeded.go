package place

import (
	"context"
	"fmt"
	"math/rand"

	"casyn/internal/geom"
)

// PlaceSeeded legalizes a netlist whose cells already carry seed
// positions — here, the centers of mass the congestion-aware mapper
// assigned to each match on the companion placement — and then runs
// the greedy swap refinement. This is the incremental-placement path
// of the paper's methodology: the technology-independent placement is
// made once, matches inherit their covered gates' center of mass, and
// the physical-design step only legalizes and locally improves rather
// than placing from scratch.
func PlaceSeeded(ctx context.Context, nl *Netlist, layout Layout, seeds []geom.Point, opts Options) (*Placement, error) {
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	if len(seeds) != nl.NumCells() {
		return nil, fmt.Errorf("place: %d seeds for %d cells", len(seeds), nl.NumCells())
	}
	opts.defaults()
	p := &Placement{Pos: make([]geom.Point, len(seeds)), Row: make([]int, len(seeds))}
	copy(p.Pos, seeds)
	if nl.NumCells() == 0 {
		return p, nil
	}
	if layout.NumRows < 1 {
		return nil, fmt.Errorf("place: layout has no rows")
	}
	legalize(nl, layout, p)
	if opts.RefinePasses > 0 {
		if err := refine(ctx, nl, layout, p, opts.RefinePasses, rand.New(rand.NewSource(opts.Seed))); err != nil {
			return nil, err
		}
	}
	return p, nil
}

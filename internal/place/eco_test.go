package place

import (
	"testing"

	"casyn/internal/geom"
)

func TestPlaceECO(t *testing.T) {
	t.Parallel()
	layout, err := LayoutWithRows(10, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	nl := &Netlist{Widths: []float64{4, 4, 4, 4}}
	oldSeeds := []geom.Point{geom.Pt(10, 2), geom.Pt(20, 12), geom.Pt(30, 22), geom.Pt(40, 32)}
	prev := &Placement{
		Pos: []geom.Point{geom.Pt(11, 2.5), geom.Pt(21, 12.5), geom.Pt(31, 22.5), geom.Pt(41, 32.5)},
		Row: []int{0, 2, 4, 6},
	}

	// Unchanged seeds keep the previous legalized placement verbatim.
	newSeeds := append([]geom.Point(nil), oldSeeds...)
	p, moved, ok := PlaceECO(nl, layout, prev, oldSeeds, newSeeds)
	if !ok || moved != 0 {
		t.Fatalf("ok=%v moved=%d, want true, 0", ok, moved)
	}
	for i := range p.Pos {
		if p.Pos[i] != prev.Pos[i] || p.Row[i] != prev.Row[i] {
			t.Fatalf("cell %d changed: pos %v row %d", i, p.Pos[i], p.Row[i])
		}
	}

	// A moved seed snaps to the nearest row at the seed's x; everything
	// else stays put. The previous placement is never mutated.
	newSeeds[2] = geom.Pt(73, 41)
	p, moved, ok = PlaceECO(nl, layout, prev, oldSeeds, newSeeds)
	if !ok || moved != 1 {
		t.Fatalf("ok=%v moved=%d, want true, 1", ok, moved)
	}
	wantRow := layout.RowOf(41)
	if p.Row[2] != wantRow || p.Pos[2] != geom.Pt(73, layout.RowY(wantRow)) {
		t.Errorf("moved cell: pos %v row %d, want (73, %g) row %d", p.Pos[2], p.Row[2], layout.RowY(wantRow), wantRow)
	}
	for _, i := range []int{0, 1, 3} {
		if p.Pos[i] != prev.Pos[i] || p.Row[i] != prev.Row[i] {
			t.Errorf("unmoved cell %d changed: pos %v", i, p.Pos[i])
		}
	}
	if prev.Pos[2] != geom.Pt(31, 22.5) || prev.Row[2] != 4 {
		t.Error("previous placement was mutated")
	}

	// Seeds outside the die clamp to it (by half the cell width).
	newSeeds[3] = geom.Pt(150, -9)
	p, moved, ok = PlaceECO(nl, layout, prev, oldSeeds, newSeeds)
	if !ok || moved != 2 {
		t.Fatalf("ok=%v moved=%d, want true, 2", ok, moved)
	}
	if p.Pos[3].X != layout.Die.Max.X-2 || p.Row[3] != 0 {
		t.Errorf("clamped cell: pos %v row %d, want x=%g row 0", p.Pos[3], p.Row[3], layout.Die.Max.X-2)
	}

	// Index misalignment (cell count changed) refuses the fast path.
	grown := &Netlist{Widths: []float64{4, 4, 4, 4, 4}}
	if _, _, ok := PlaceECO(grown, layout, prev, oldSeeds, newSeeds); ok {
		t.Error("misaligned netlist accepted")
	}
	if _, _, ok := PlaceECO(nl, layout, nil, oldSeeds, newSeeds); ok {
		t.Error("nil previous placement accepted")
	}
	if _, _, ok := PlaceECO(nl, layout, prev, oldSeeds[:3], newSeeds); ok {
		t.Error("short seed slice accepted")
	}
}

package place

import (
	"math/rand"
)

// fmProblem is one bipartitioning instance handed to the
// Fiduccia–Mattheyses refiner by the recursive bisector: a subset of
// cells, the nets touching them, and per-net external terminal counts
// from terminal propagation.
type fmProblem struct {
	cells  []int     // global cell indices in this region
	width  []float64 // width of each local cell
	nets   []fmNet
	ofCell [][]int32 // local cell -> incident local net indices
	// balance targets: each side's total width must stay within
	// [targetLo, targetHi].
	targetLo, targetHi float64
}

type fmNet struct {
	cells []int32 // local cell indices
	extA  int     // locked external terminals on side A
	extB  int
}

// fmResult is the partition: side[i] is false for A, true for B.
type fmResult struct {
	side    []bool
	cutNets int
}

// runFM refines an initial partition with gain-bucket FM passes.
// The initial side assignment must already satisfy the balance
// window; passes keep it there.
func runFM(p *fmProblem, side []bool, passes int, rng *rand.Rand) fmResult {
	n := len(p.cells)
	if n == 0 {
		return fmResult{side: side}
	}
	// Per-net side counts.
	cntA := make([]int, len(p.nets))
	cntB := make([]int, len(p.nets))
	recount := func() {
		for ni := range p.nets {
			a, b := p.nets[ni].extA, p.nets[ni].extB
			for _, c := range p.nets[ni].cells {
				if side[c] {
					b++
				} else {
					a++
				}
			}
			cntA[ni], cntB[ni] = a, b
		}
	}
	cut := func() int {
		c := 0
		for ni := range p.nets {
			if cntA[ni] > 0 && cntB[ni] > 0 {
				c++
			}
		}
		return c
	}
	widthA := func() float64 {
		w := 0.0
		for i, s := range side {
			if !s {
				w += p.width[i]
			}
		}
		return w
	}

	// Gain of moving local cell i to the other side.
	gainOf := func(i int) int {
		g := 0
		from, to := cntA, cntB
		if side[i] {
			from, to = cntB, cntA
		}
		for _, ni := range p.ofCell[i] {
			if from[ni] == 1 {
				g++
			}
			if to[ni] == 0 {
				g--
			}
		}
		return g
	}

	recount()
	bestCut := cut()
	bestSide := append([]bool(nil), side...)

	// Gain buckets. Max possible |gain| is the max cell degree.
	maxDeg := 1
	for i := range p.ofCell {
		if d := len(p.ofCell[i]); d > maxDeg {
			maxDeg = d
		}
	}

	gain := make([]int, n)
	locked := make([]bool, n)
	// bucket[g+maxDeg] is a stack of cells with gain g.
	nBuckets := 2*maxDeg + 1
	bucket := make([][]int32, nBuckets)
	inBucket := make([]bool, n)

	for pass := 0; pass < passes; pass++ {
		// Initialize pass state.
		for i := range locked {
			locked[i] = false
		}
		for b := range bucket {
			bucket[b] = bucket[b][:0]
		}
		order := rng.Perm(n)
		for _, i := range order {
			gain[i] = gainOf(i)
			bucket[gain[i]+maxDeg] = append(bucket[gain[i]+maxDeg], int32(i))
			inBucket[i] = true
		}
		wA := widthA()
		curCut := cut()
		passBestCut := curCut
		passBestStep := -1
		type move struct{ cell int }
		var moves []move

		// Cells skipped for balance are parked in deferred and
		// re-inserted after the next successful move, when the width
		// split has shifted and they may fit.
		var deferred []int32
		popBest := func() int {
			for b := nBuckets - 1; b >= 0; b-- {
				lst := bucket[b]
				for len(lst) > 0 {
					i := int(lst[len(lst)-1])
					lst = lst[:len(lst)-1]
					bucket[b] = lst
					if locked[i] || !inBucket[i] || gain[i]+maxDeg != b {
						continue
					}
					// Balance check.
					var nwA float64
					if side[i] {
						nwA = wA + p.width[i]
					} else {
						nwA = wA - p.width[i]
					}
					if nwA < p.targetLo || nwA > p.targetHi {
						deferred = append(deferred, int32(i))
						continue
					}
					inBucket[i] = false
					return i
				}
				bucket[b] = lst
			}
			return -1
		}
		// requeue appends a cell under its current gain; stale bucket
		// entries are filtered in popBest by the gain check.
		requeue := func(j int) {
			inBucket[j] = true
			bucket[gain[j]+maxDeg] = append(bucket[gain[j]+maxDeg], int32(j))
		}

		for step := 0; step < n; step++ {
			i := popBest()
			if i < 0 {
				break
			}
			// Apply the move.
			curCut -= gain[i]
			fromB := side[i]
			if fromB {
				wA += p.width[i]
			} else {
				wA -= p.width[i]
			}
			side[i] = !side[i]
			locked[i] = true
			moves = append(moves, move{cell: i})
			// Update net counts and neighbor gains.
			for _, ni := range p.ofCell[i] {
				if fromB {
					cntB[ni]--
					cntA[ni]++
				} else {
					cntA[ni]--
					cntB[ni]++
				}
			}
			for _, ni := range p.ofCell[i] {
				for _, j32 := range p.nets[ni].cells {
					j := int(j32)
					if locked[j] {
						continue
					}
					ng := gainOf(j)
					if ng != gain[j] {
						gain[j] = ng
						requeue(j)
					}
				}
			}
			if curCut < passBestCut {
				passBestCut = curCut
				passBestStep = len(moves) - 1
			}
			// Give balance-deferred cells another chance now that the
			// width split moved.
			for _, j32 := range deferred {
				j := int(j32)
				if !locked[j] {
					requeue(j)
				}
			}
			deferred = deferred[:0]
		}
		// Roll back moves after the best prefix.
		for s := len(moves) - 1; s > passBestStep; s-- {
			i := moves[s].cell
			side[i] = !side[i]
		}
		recount()
		if got := cut(); got < bestCut {
			bestCut = got
			copy(bestSide, side)
		} else {
			// No improvement this pass: restore best and stop.
			copy(side, bestSide)
			recount()
			break
		}
	}
	copy(side, bestSide)
	return fmResult{side: side, cutNets: bestCut}
}

package place

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"casyn/internal/geom"
	"casyn/internal/obs"
)

// Options tunes the placer.
type Options struct {
	// Seed drives all randomized tie-breaking; equal seeds give equal
	// placements.
	Seed int64
	// MinRegionCells stops the recursion; regions at or below this
	// size are placed directly. 0 means the default (8).
	MinRegionCells int
	// FMPasses bounds the refinement passes per bisection. 0 means the
	// default (6).
	FMPasses int
	// BalanceTolerance is the allowed deviation from a perfect width
	// split, as a fraction (default 0.2).
	BalanceTolerance float64
	// RefinePasses bounds the post-legalization greedy swap
	// refinement. 0 means the default (4); negative disables.
	RefinePasses int
	// Analytic selects the quadratic-wirelength global placer with
	// density spreading instead of recursive min-cut bisection.
	Analytic bool
	// AnalyticIters is the solve/spread iteration count (default 12).
	AnalyticIters int
}

func (o *Options) defaults() {
	if o.MinRegionCells == 0 {
		o.MinRegionCells = 8
	}
	if o.FMPasses == 0 {
		o.FMPasses = 6
	}
	if o.BalanceTolerance == 0 {
		o.BalanceTolerance = 0.2
	}
	if o.RefinePasses == 0 {
		o.RefinePasses = 4
	}
	if o.AnalyticIters == 0 {
		o.AnalyticIters = 12
	}
}

// PlaceNetlist places the netlist on the layout image by recursive
// min-cut bisection with FM refinement and terminal propagation,
// followed by row legalization. The returned placement holds each
// cell's center and row.
//
// Cancellation is cooperative: the bisection recursion, the analytic
// solve/spread loop, and the refinement passes all check ctx and
// return a wrapped ctx error promptly when it is canceled or its
// deadline passes.
func PlaceNetlist(ctx context.Context, nl *Netlist, layout Layout, opts Options) (*Placement, error) {
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	opts.defaults()
	n := nl.NumCells()
	p := &Placement{Pos: make([]geom.Point, n), Row: make([]int, n)}
	if n == 0 {
		return p, nil
	}
	if layout.NumRows < 1 {
		return nil, fmt.Errorf("place: layout has no rows")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	if opts.Analytic {
		ap := newAnalyticPlacer(nl, layout, rng)
		global, err := ap.run(ctx, opts.AnalyticIters)
		if err != nil {
			return nil, err
		}
		copy(p.Pos, global)
		legalize(nl, layout, p)
		if opts.RefinePasses > 0 {
			if err := refine(ctx, nl, layout, p, opts.RefinePasses, rng); err != nil {
				return nil, err
			}
		}
		return p, nil
	}
	b := &bisector{
		ctx:    ctx,
		nl:     nl,
		opts:   opts,
		rng:    rng,
		pos:    p.Pos,
		ofCell: nl.cellNets(),
		padBox: padBoxes(nl),
		inside: make([]int32, n),
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	// Seed every cell at the die center so terminal propagation has
	// positions to work with before a region is split.
	c := layout.Die.Center()
	for i := range p.Pos {
		p.Pos[i] = c
	}
	_, span := obs.From(ctx).StartSpan(ctx, "place.bisect")
	b.run(all, layout.Die)
	span.End(b.err)
	if b.err != nil {
		return nil, b.err
	}
	legalize(nl, layout, p)
	if opts.RefinePasses > 0 {
		if err := refine(ctx, nl, layout, p, opts.RefinePasses, rng); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// padBoxes precomputes each net's pad bounding box (if any).
func padBoxes(nl *Netlist) []*geom.Rect {
	out := make([]*geom.Rect, len(nl.Nets))
	for ni := range nl.Nets {
		if len(nl.Nets[ni].Pads) == 0 {
			continue
		}
		bb := geom.BoundingBox(nl.Nets[ni].Pads)
		out[ni] = &bb
	}
	return out
}

type bisector struct {
	ctx    context.Context
	err    error // first ctx error; aborts the recursion
	nl     *Netlist
	opts   Options
	rng    *rand.Rand
	pos    []geom.Point
	ofCell [][]int32
	padBox []*geom.Rect
	// inside[c] is the epoch marker of the region currently being
	// processed (avoids repeated map allocation).
	inside []int32
	epoch  int32
	local  []int32 // scratch: global cell -> local index for this region
}

// run recursively bisects the region and assigns final positions to
// terminal regions. Every recursion step is a cooperative cancellation
// point; once the context errors the whole recursion unwinds.
func (b *bisector) run(cells []int, region geom.Rect) {
	if b.err != nil {
		return
	}
	if cerr := b.ctx.Err(); cerr != nil {
		b.err = fmt.Errorf("place: bisection canceled: %w", cerr)
		return
	}
	if len(cells) == 0 {
		return
	}
	if len(cells) <= b.opts.MinRegionCells || region.W() < 1e-6 || region.H() < 1e-6 {
		b.placeLeaf(cells, region)
		return
	}
	vertical := region.W() >= region.H() // split the wider dimension
	sideOf := b.partition(cells, region, vertical)
	// Split the region in proportion to the width assigned per side so
	// utilization stays uniform.
	var wA, wTot float64
	for i, c := range cells {
		wTot += b.nl.Widths[c] + 1e-9
		if !sideOf[i] {
			wA += b.nl.Widths[c] + 1e-9
		}
	}
	frac := wA / wTot
	const minFrac = 0.1
	if frac < minFrac {
		frac = minFrac
	}
	if frac > 1-minFrac {
		frac = 1 - minFrac
	}
	var regA, regB geom.Rect
	if vertical {
		cut := region.Min.X + region.W()*frac
		regA = geom.R(region.Min.X, region.Min.Y, cut, region.Max.Y)
		regB = geom.R(cut, region.Min.Y, region.Max.X, region.Max.Y)
	} else {
		cut := region.Min.Y + region.H()*frac
		regA = geom.R(region.Min.X, region.Min.Y, region.Max.X, cut)
		regB = geom.R(region.Min.X, cut, region.Max.X, region.Max.Y)
	}
	var cellsA, cellsB []int
	for i, c := range cells {
		if sideOf[i] {
			cellsB = append(cellsB, c)
		} else {
			cellsA = append(cellsA, c)
		}
	}
	// Move cells to their region centers so sibling terminal
	// propagation sees up-to-date positions.
	ca, cb := regA.Center(), regB.Center()
	for _, c := range cellsA {
		b.pos[c] = ca
	}
	for _, c := range cellsB {
		b.pos[c] = cb
	}
	b.run(cellsA, regA)
	b.run(cellsB, regB)
}

// placeLeaf spreads a terminal region's cells in a line along the
// region's wider dimension, ordered to respect neighbor positions.
func (b *bisector) placeLeaf(cells []int, region geom.Rect) {
	// Order cells by the centroid of their external connections so the
	// final micro-ordering keeps wires short.
	type scored struct {
		cell  int
		score float64
	}
	horizontal := region.W() >= region.H()
	sc := make([]scored, len(cells))
	for i, c := range cells {
		pt := b.externalCentroid(c, cells)
		if horizontal {
			sc[i] = scored{c, pt.X}
		} else {
			sc[i] = scored{c, pt.Y}
		}
	}
	sort.SliceStable(sc, func(i, j int) bool { return sc[i].score < sc[j].score })
	step := 1.0 / float64(len(cells)+1)
	for i, s := range sc {
		f := step * float64(i+1)
		if horizontal {
			b.pos[s.cell] = geom.Pt(region.Min.X+region.W()*f, region.Center().Y)
		} else {
			b.pos[s.cell] = geom.Pt(region.Center().X, region.Min.Y+region.H()*f)
		}
	}
}

// externalCentroid returns the average position of everything cell c
// connects to outside the given region cells (other cells' current
// positions and pad boxes); falls back to the cell's own position.
func (b *bisector) externalCentroid(c int, regionCells []int) geom.Point {
	b.epoch++
	for _, rc := range regionCells {
		b.inside[rc] = b.epoch
	}
	var sum geom.Point
	cnt := 0
	for _, ni := range b.ofCell[c] {
		net := &b.nl.Nets[ni]
		for _, oc := range net.Cells {
			if b.inside[oc] == b.epoch {
				continue
			}
			sum = sum.Add(b.pos[oc])
			cnt++
		}
		if pb := b.padBox[ni]; pb != nil {
			sum = sum.Add(pb.Center())
			cnt++
		}
	}
	if cnt == 0 {
		return b.pos[c]
	}
	return sum.Scale(1 / float64(cnt))
}

// partition builds the FM problem for the region (with terminal
// propagation) and returns the side of each cell (parallel to cells).
func (b *bisector) partition(cells []int, region geom.Rect, vertical bool) []bool {
	b.epoch++
	if b.local == nil {
		b.local = make([]int32, len(b.nl.Widths))
	}
	for li, c := range cells {
		b.inside[c] = b.epoch
		b.local[c] = int32(li)
	}
	mid := region.Center()
	prob := &fmProblem{
		cells: cells,
		width: make([]float64, len(cells)),
	}
	var wTot float64
	for i, c := range cells {
		w := b.nl.Widths[c] + 1e-9 // zero-width cells still need balance mass
		prob.width[i] = w
		wTot += w
	}
	half := wTot / 2
	slack := wTot * b.opts.BalanceTolerance / 2
	prob.targetLo, prob.targetHi = half-slack, half+slack

	// Collect nets with >= 2 endpoints in this region or 1 endpoint
	// plus external terminals.
	netSeen := map[int32]bool{}
	sideA := func(pt geom.Point) bool {
		if vertical {
			return pt.X < mid.X
		}
		return pt.Y < mid.Y
	}
	for _, c := range cells {
		for _, ni := range b.ofCell[c] {
			if netSeen[ni] {
				continue
			}
			netSeen[ni] = true
			net := &b.nl.Nets[ni]
			var f fmNet
			for _, oc := range net.Cells {
				if b.inside[oc] == b.epoch {
					f.cells = append(f.cells, b.local[oc])
				} else if sideA(b.pos[oc]) {
					f.extA++
				} else {
					f.extB++
				}
			}
			for _, pad := range net.Pads {
				if sideA(pad) {
					f.extA++
				} else {
					f.extB++
				}
			}
			if len(f.cells) == 0 || (len(f.cells) == 1 && f.extA+f.extB == 0) {
				continue
			}
			// Clamp external terminal influence so one huge net cannot
			// dominate the gain scale.
			if f.extA > 2 {
				f.extA = 2
			}
			if f.extB > 2 {
				f.extB = 2
			}
			prob.nets = append(prob.nets, f)
		}
	}
	prob.ofCell = make([][]int32, len(cells))
	for ni := range prob.nets {
		for _, lc := range prob.nets[ni].cells {
			prob.ofCell[lc] = append(prob.ofCell[lc], int32(ni))
		}
	}

	// Initial partition: sort along the split axis (stable spatial
	// seeding), then split at the balance point.
	order := make([]int, len(cells))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		pi, pj := b.pos[cells[order[i]]], b.pos[cells[order[j]]]
		if vertical {
			if pi.X != pj.X {
				return pi.X < pj.X
			}
		} else {
			if pi.Y != pj.Y {
				return pi.Y < pj.Y
			}
		}
		return cells[order[i]] < cells[order[j]]
	})
	side := make([]bool, len(cells))
	acc := 0.0
	for _, li := range order {
		if acc >= half {
			side[li] = true
		}
		acc += prob.width[li]
	}
	runFM(prob, side, b.opts.FMPasses, b.rng)
	return side
}

// legalize snaps approximate positions to standard-cell rows: cells
// are distributed to rows by y-order with row capacity balancing, then
// packed within each row by x-order with uniform whitespace.
func legalize(nl *Netlist, layout Layout, p *Placement) {
	n := nl.NumCells()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		pi, pj := p.Pos[order[i]], p.Pos[order[j]]
		if pi.Y != pj.Y {
			return pi.Y < pj.Y
		}
		return pi.X < pj.X
	})
	// Assign each cell to the row nearest its target y, spilling
	// upward when a row reaches the die width. A floor of
	// total/NumRows per row keeps very dense designs from cascading
	// everything into the top rows.
	totW := nl.TotalWidth() + float64(n)*1e-9
	capRow := layout.Die.W()
	if perRow := totW / float64(layout.NumRows); perRow > capRow {
		capRow = perRow // infeasible density: fall back to even fill
	}
	rows := make([][]int, layout.NumRows)
	r, acc := 0, 0.0
	for _, c := range order {
		w := nl.Widths[c] + 1e-9
		if ideal := layout.RowOf(p.Pos[c].Y); ideal > r {
			r = ideal
			acc = 0
		}
		if acc+w > capRow && r < layout.NumRows-1 {
			r++
			acc = 0
		}
		rows[r] = append(rows[r], c)
		acc += w
	}
	for r, rowCells := range rows {
		sort.SliceStable(rowCells, func(i, j int) bool {
			return p.Pos[rowCells[i]].X < p.Pos[rowCells[j]].X
		})
		packRow(nl, layout, p, r, rowCells)
	}
}

// packRow places a row's cells as close to their target x as overlap
// and the die boundary allow: a left-to-right greedy pass at
// max(cursor, target), then a right-to-left clamp pass that pushes any
// overflow back inside the die.
func packRow(nl *Netlist, layout Layout, p *Placement, r int, rowCells []int) {
	y := layout.RowY(r)
	cursor := layout.Die.Min.X
	for _, c := range rowCells {
		left := p.Pos[c].X - nl.Widths[c]/2
		if left < cursor {
			left = cursor
		}
		p.Pos[c] = geom.Pt(left+nl.Widths[c]/2, y)
		p.Row[c] = r
		cursor = left + nl.Widths[c]
	}
	// Clamp pass: if the row overflowed the right edge, slide cells
	// back left just enough, preserving order and non-overlap.
	cursor = layout.Die.Max.X
	for i := len(rowCells) - 1; i >= 0; i-- {
		c := rowCells[i]
		right := p.Pos[c].X + nl.Widths[c]/2
		if right > cursor {
			right = cursor
			p.Pos[c] = geom.Pt(right-nl.Widths[c]/2, y)
		}
		cursor = right - nl.Widths[c]
	}
}

package place

import "math/rand"

// NewFMProblemForTest and friends expose the FM core for the tuning
// probe binary; they are not part of the public surface.
type FMProbe struct{ p *fmProblem }

func NewFMProblemForTest(n int) *FMProbe {
	p := &fmProblem{cells: make([]int, n), width: make([]float64, n)}
	for i := range p.width {
		p.cells[i] = i
		p.width[i] = 1
	}
	p.ofCell = make([][]int32, n)
	return &FMProbe{p: p}
}

func (f *FMProbe) AddNet(cells []int) {
	ni := len(f.p.nets)
	var fn fmNet
	for _, c := range cells {
		fn.cells = append(fn.cells, int32(c))
		f.p.ofCell[c] = append(f.p.ofCell[c], int32(ni))
	}
	f.p.nets = append(f.p.nets, fn)
}

func (f *FMProbe) SetBalance(tol float64) {
	tot := 0.0
	for _, w := range f.p.width {
		tot += w
	}
	f.p.targetLo = tot/2 - tot*tol/2
	f.p.targetHi = tot/2 + tot*tol/2
}

func (f *FMProbe) Run(side []bool, passes int, rng *rand.Rand) int {
	return runFM(f.p, side, passes, rng).cutNets
}

package place

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"casyn/internal/geom"
	"casyn/internal/obs"
)

// refine greedily reduces HPWL after legalization with two move
// classes that both preserve legality exactly:
//
//   - equal-width swap: exchange the positions of two cells of the
//     same width (possibly in different rows), chosen by steering each
//     cell toward the median of its connected pins;
//   - adjacent-pair swap: exchange two neighboring cells within a row,
//     re-packing them inside their combined span (works for unequal
//     widths).
//
// Moves are accepted only when the summed HPWL of the affected nets
// decreases, so refinement is monotone.
//
// Refinement checks ctx between passes and periodically inside each
// pass; on cancellation it returns a wrapped ctx error (the placement
// stays legal — every accepted move preserves legality).
func refine(ctx context.Context, nl *Netlist, layout Layout, p *Placement, passes int, rng *rand.Rand) (err error) {
	n := nl.NumCells()
	if n < 2 || passes <= 0 {
		return nil
	}
	rec := obs.From(ctx)
	_, span := rec.StartSpan(ctx, "place.refine")
	defer func() { span.End(err) }()
	// checkEvery bounds the work between cancellation checks.
	const checkEvery = 1024
	cellNets := nl.cellNets()

	// Spatial index of cells by equal width class, bucketed on a
	// coarse grid for nearest-candidate lookup.
	type wclass struct {
		cells []int32
	}
	classes := map[float64]*wclass{}
	for c := 0; c < n; c++ {
		w := nl.Widths[c]
		cl := classes[w]
		if cl == nil {
			cl = &wclass{}
			classes[w] = cl
		}
		cl.cells = append(cl.cells, int32(c))
	}

	affected := func(c int) []int32 { return cellNets[c] }
	hpwlOf := func(nets []int32, extra []int32) float64 {
		t := 0.0
		for _, ni := range nets {
			t += nl.NetHPWL(p, int(ni))
		}
		for _, ni := range extra {
			dup := false
			for _, mi := range nets {
				if mi == ni {
					dup = true
					break
				}
			}
			if !dup {
				t += nl.NetHPWL(p, int(ni))
			}
		}
		return t
	}

	// Row membership for adjacent-pair swaps, kept sorted by x.
	rows := make([][]int32, layout.NumRows)
	for c := 0; c < n; c++ {
		r := p.Row[c]
		if r >= 0 && r < layout.NumRows {
			rows[r] = append(rows[r], int32(c))
		}
	}
	for r := range rows {
		row := rows[r]
		sort.Slice(row, func(i, j int) bool { return p.Pos[row[i]].X < p.Pos[row[j]].X })
	}

	// target returns the median of the other pins of c's nets.
	var xs, ys []float64
	target := func(c int) (geom.Point, bool) {
		xs, ys = xs[:0], ys[:0]
		for _, ni := range cellNets[c] {
			net := &nl.Nets[ni]
			if len(net.Cells)+len(net.Pads) > 64 {
				continue // hub nets barely move with one cell
			}
			for _, oc := range net.Cells {
				if oc != c {
					xs = append(xs, p.Pos[oc].X)
					ys = append(ys, p.Pos[oc].Y)
				}
			}
			for _, pad := range net.Pads {
				xs = append(xs, pad.X)
				ys = append(ys, pad.Y)
			}
		}
		if len(xs) == 0 {
			return geom.Point{}, false
		}
		sort.Float64s(xs)
		sort.Float64s(ys)
		return geom.Pt(xs[len(xs)/2], ys[len(ys)/2]), true
	}

	passesC := rec.Counter("place.refine_passes")
	movesC := rec.Counter("place.refine_moves")
	for pass := 0; pass < passes; pass++ {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("place: refinement canceled: %w", cerr)
		}
		passesC.Add(1)
		improved := 0
		// Equal-width swaps toward targets.
		order := rng.Perm(n)
		for oi, c := range order {
			if oi%checkEvery == checkEvery-1 {
				if cerr := ctx.Err(); cerr != nil {
					return fmt.Errorf("place: refinement canceled: %w", cerr)
				}
			}
			tgt, ok := target(c)
			if !ok {
				continue
			}
			if tgt.Manhattan(p.Pos[c]) < layout.RowHeight {
				continue // already close
			}
			cl := classes[nl.Widths[c]]
			// Find the classmate nearest the target.
			best, bestD := -1, math.Inf(1)
			// Sampled scan keeps this O(1)-ish per cell for huge
			// classes while staying exact for small ones.
			step := 1
			if len(cl.cells) > 512 {
				step = len(cl.cells) / 512
			}
			for i := rng.Intn(step); i < len(cl.cells); i += step {
				d := int(cl.cells[i])
				if d == c {
					continue
				}
				dist := tgt.Manhattan(p.Pos[d])
				if dist < bestD {
					best, bestD = d, dist
				}
			}
			if best < 0 || bestD >= tgt.Manhattan(p.Pos[c]) {
				continue
			}
			d := best
			before := hpwlOf(affected(c), affected(d))
			p.Pos[c], p.Pos[d] = p.Pos[d], p.Pos[c]
			p.Row[c], p.Row[d] = p.Row[d], p.Row[c]
			after := hpwlOf(affected(c), affected(d))
			if after < before-1e-9 {
				improved++
				// Fix row membership lists lazily: rebuild below.
			} else {
				p.Pos[c], p.Pos[d] = p.Pos[d], p.Pos[c]
				p.Row[c], p.Row[d] = p.Row[d], p.Row[c]
			}
		}
		// Rebuild row lists after cross-row swaps.
		for r := range rows {
			rows[r] = rows[r][:0]
		}
		for c := 0; c < n; c++ {
			r := p.Row[c]
			if r >= 0 && r < layout.NumRows {
				rows[r] = append(rows[r], int32(c))
			}
		}
		// Adjacent-pair swaps within rows.
		for r := range rows {
			if cerr := ctx.Err(); cerr != nil {
				return fmt.Errorf("place: refinement canceled: %w", cerr)
			}
			row := rows[r]
			sort.Slice(row, func(i, j int) bool { return p.Pos[row[i]].X < p.Pos[row[j]].X })
			for i := 0; i+1 < len(row); i++ {
				a, b := int(row[i]), int(row[i+1])
				// Combined span: [left edge of a, right edge of b].
				left := p.Pos[a].X - nl.Widths[a]/2
				right := p.Pos[b].X + nl.Widths[b]/2
				if right-left < nl.Widths[a]+nl.Widths[b]-1e-9 {
					continue // overlapping input; skip
				}
				oldA, oldB := p.Pos[a], p.Pos[b]
				before := hpwlOf(affected(a), affected(b))
				// b moves to the left edge, a to the right edge.
				p.Pos[b] = geom.Pt(left+nl.Widths[b]/2, oldB.Y)
				p.Pos[a] = geom.Pt(right-nl.Widths[a]/2, oldA.Y)
				after := hpwlOf(affected(a), affected(b))
				if after < before-1e-9 {
					improved++
					row[i], row[i+1] = row[i+1], row[i]
				} else {
					p.Pos[a], p.Pos[b] = oldA, oldB
				}
			}
		}
		movesC.Add(int64(improved))
		if improved == 0 {
			break
		}
	}
	return nil
}

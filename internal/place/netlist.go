// Package place implements the placement substrate: a standard-cell
// layout image (die, rows, sites), recursive min-cut bisection with
// Fiduccia–Mattheyses refinement and terminal propagation, and row
// legalization.
//
// The paper's methodology places the technology-independent netlist
// once on the chip layout image to give every base gate coordinates
// (Section 3), and places the mapped netlist again for routing and
// congestion evaluation. Both uses go through this package.
package place

import (
	"fmt"
	"math"

	"casyn/internal/geom"
)

// Net is one hyperedge of the placement netlist: the cells it
// connects plus any fixed pad locations (I/O pins from the floorplan
// pin assignment).
type Net struct {
	Cells []int
	Pads  []geom.Point
}

// Degree returns the number of endpoints of the net.
func (n *Net) Degree() int { return len(n.Cells) + len(n.Pads) }

// Netlist is the hypergraph given to the placer.
type Netlist struct {
	// Widths holds each cell's width in µm; cell heights are uniform
	// (one row).
	Widths []float64
	// Nets are the hyperedges.
	Nets []Net
}

// NumCells returns the number of placeable cells.
func (nl *Netlist) NumCells() int { return len(nl.Widths) }

// TotalWidth returns the sum of all cell widths.
func (nl *Netlist) TotalWidth() float64 {
	t := 0.0
	for _, w := range nl.Widths {
		t += w
	}
	return t
}

// Validate checks index ranges and width signs.
func (nl *Netlist) Validate() error {
	for i, w := range nl.Widths {
		if w < 0 {
			return fmt.Errorf("place: cell %d has negative width", i)
		}
	}
	for ni, n := range nl.Nets {
		for _, c := range n.Cells {
			if c < 0 || c >= len(nl.Widths) {
				return fmt.Errorf("place: net %d references cell %d of %d", ni, c, len(nl.Widths))
			}
		}
	}
	return nil
}

// cellNets returns, for each cell, the indices of its incident nets.
func (nl *Netlist) cellNets() [][]int32 {
	out := make([][]int32, len(nl.Widths))
	for ni, n := range nl.Nets {
		for _, c := range n.Cells {
			out[c] = append(out[c], int32(ni))
		}
	}
	return out
}

// Placement assigns a position (cell center) and a row to every cell.
type Placement struct {
	Pos []geom.Point
	Row []int
}

// HPWL returns the total half-perimeter wirelength of the netlist
// under placement p, including pad locations.
func (nl *Netlist) HPWL(p *Placement) float64 {
	total := 0.0
	for i := range nl.Nets {
		total += nl.NetHPWL(p, i)
	}
	return total
}

// NetHPWL returns the half-perimeter wirelength of one net.
func (nl *Netlist) NetHPWL(p *Placement, net int) float64 {
	n := &nl.Nets[net]
	if n.Degree() < 2 {
		return 0
	}
	first := true
	var bb geom.Rect
	add := func(pt geom.Point) {
		if first {
			bb = geom.Rect{Min: pt, Max: pt}
			first = false
			return
		}
		bb = bb.Union(geom.Rect{Min: pt, Max: pt})
	}
	for _, c := range n.Cells {
		add(p.Pos[c])
	}
	for _, pad := range n.Pads {
		add(pad)
	}
	return bb.HalfPerimeter()
}

// Layout is the chip layout image: the die rectangle divided into
// standard-cell rows.
type Layout struct {
	Die       geom.Rect
	RowHeight float64
	NumRows   int
}

// NewLayout builds a layout image with the given die area (µm²),
// aspect ratio (width/height), and row height. The height is rounded
// to a whole number of rows.
func NewLayout(dieArea, aspect, rowHeight float64) (Layout, error) {
	if dieArea <= 0 || aspect <= 0 || rowHeight <= 0 {
		return Layout{}, fmt.Errorf("place: non-positive layout parameter")
	}
	// area = w*h, aspect = w/h → h = sqrt(area/aspect).
	h := math.Sqrt(dieArea / aspect)
	rows := int(h/rowHeight + 0.5)
	if rows < 1 {
		rows = 1
	}
	h = float64(rows) * rowHeight
	w := dieArea / h
	return Layout{
		Die:       geom.R(0, 0, w, h),
		RowHeight: rowHeight,
		NumRows:   rows,
	}, nil
}

// LayoutWithRows builds a layout image with an exact row count and die
// width.
func LayoutWithRows(rows int, width, rowHeight float64) (Layout, error) {
	if rows < 1 || width <= 0 || rowHeight <= 0 {
		return Layout{}, fmt.Errorf("place: non-positive layout parameter")
	}
	return Layout{
		Die:       geom.R(0, 0, width, float64(rows)*rowHeight),
		RowHeight: rowHeight,
		NumRows:   rows,
	}, nil
}

// RowY returns the vertical center of row r.
func (l Layout) RowY(r int) float64 {
	return l.Die.Min.Y + (float64(r)+0.5)*l.RowHeight
}

// RowOf returns the row index containing y, clamped to valid rows.
func (l Layout) RowOf(y float64) int {
	r := int((y - l.Die.Min.Y) / l.RowHeight)
	if r < 0 {
		r = 0
	}
	if r >= l.NumRows {
		r = l.NumRows - 1
	}
	return r
}

// Area returns the die area.
func (l Layout) Area() float64 { return l.Die.Area() }

// Utilization returns total cell area / die area for the given total
// cell area, the paper's "Area Utilization%" metric (as a fraction).
func (l Layout) Utilization(totalCellArea float64) float64 {
	return totalCellArea / l.Area()
}

// PerimeterPads distributes n pad locations evenly around the die
// boundary, the default floorplan pin assignment when none is given.
func (l Layout) PerimeterPads(n int) []geom.Point {
	if n <= 0 {
		return nil
	}
	per := 2 * (l.Die.W() + l.Die.H())
	step := per / float64(n)
	pads := make([]geom.Point, n)
	for i := range pads {
		d := step * (float64(i) + 0.5)
		pads[i] = l.perimeterPoint(d)
	}
	return pads
}

// perimeterPoint maps a distance along the boundary (counterclockwise
// from the lower-left corner) to a point.
func (l Layout) perimeterPoint(d float64) geom.Point {
	w, h := l.Die.W(), l.Die.H()
	switch {
	case d < w:
		return geom.Pt(l.Die.Min.X+d, l.Die.Min.Y)
	case d < w+h:
		return geom.Pt(l.Die.Max.X, l.Die.Min.Y+(d-w))
	case d < 2*w+h:
		return geom.Pt(l.Die.Max.X-(d-w-h), l.Die.Max.Y)
	default:
		return geom.Pt(l.Die.Min.X, l.Die.Max.Y-(d-2*w-h))
	}
}

package place

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"casyn/internal/geom"
)

// analyticPlace computes a global placement by iterating a quadratic
// wirelength solve (star net model, Gauss–Seidel) with grid-based cell
// spreading (FastPlace-style): the solve pulls connected cells
// together and toward fixed pads, the spreading pushes overlapping
// cells apart, and pseudo-anchors at each cell's spread position damp
// oscillation. The result feeds legalization.
type analyticPlacer struct {
	nl     *Netlist
	layout Layout
	rng    *rand.Rand
	// adjacency in CSR-ish form: per cell, (neighbor, weight) pairs
	// plus fixed-point pulls.
	nbr    [][]int32
	nbrW   [][]float64
	fixPt  []geom.Point
	fixW   []float64
	pos    []geom.Point
	anchor []geom.Point
	anchW  float64
}

// maxStarDegree caps the net degree used for the quadratic model; the
// few huge fanout nets would otherwise dominate the system and pull
// everything to one point.
const maxStarDegree = 64

func newAnalyticPlacer(nl *Netlist, layout Layout, rng *rand.Rand) *analyticPlacer {
	n := nl.NumCells()
	a := &analyticPlacer{
		nl:     nl,
		layout: layout,
		rng:    rng,
		nbr:    make([][]int32, n),
		nbrW:   make([][]float64, n),
		fixPt:  make([]geom.Point, n),
		fixW:   make([]float64, n),
		pos:    make([]geom.Point, n),
		anchor: make([]geom.Point, n),
	}
	for ni := range nl.Nets {
		net := &nl.Nets[ni]
		deg := net.Degree()
		if deg < 2 {
			continue
		}
		w := 1.0 / float64(deg-1)
		if deg > maxStarDegree {
			w = w * float64(maxStarDegree) / float64(deg)
		}
		// Clique on small nets, star via the first cell on large ones.
		if deg <= 4 {
			for i := 0; i < len(net.Cells); i++ {
				for j := i + 1; j < len(net.Cells); j++ {
					a.addEdge(net.Cells[i], net.Cells[j], w)
				}
				for _, pad := range net.Pads {
					a.addFix(net.Cells[i], pad, w)
				}
			}
		} else {
			hub := net.Cells[0]
			for _, c := range net.Cells[1:] {
				a.addEdge(hub, c, w)
			}
			for _, pad := range net.Pads {
				a.addFix(hub, pad, w)
			}
		}
	}
	// Start at the die center with a small deterministic jitter so the
	// first solve has gradients.
	c := layout.Die.Center()
	for i := range a.pos {
		a.pos[i] = geom.Pt(
			c.X+(rng.Float64()-0.5)*layout.Die.W()*0.05,
			c.Y+(rng.Float64()-0.5)*layout.Die.H()*0.05,
		)
		a.anchor[i] = a.pos[i]
	}
	return a
}

func (a *analyticPlacer) addEdge(u, v int, w float64) {
	if u == v {
		return
	}
	a.nbr[u] = append(a.nbr[u], int32(v))
	a.nbrW[u] = append(a.nbrW[u], w)
	a.nbr[v] = append(a.nbr[v], int32(u))
	a.nbrW[v] = append(a.nbrW[v], w)
}

func (a *analyticPlacer) addFix(c int, p geom.Point, w float64) {
	// Accumulate the weighted centroid of fixed pulls.
	tw := a.fixW[c] + w
	a.fixPt[c] = geom.Pt(
		(a.fixPt[c].X*a.fixW[c]+p.X*w)/tw,
		(a.fixPt[c].Y*a.fixW[c]+p.Y*w)/tw,
	)
	a.fixW[c] = tw
}

// solve runs Gauss–Seidel sweeps of the quadratic system: each cell
// moves to the weighted average of its neighbors, fixed pulls, and its
// spreading anchor. Each sweep is a cancellation point.
func (a *analyticPlacer) solve(ctx context.Context, sweeps int) error {
	n := len(a.pos)
	for s := 0; s < sweeps; s++ {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("place: analytic solve canceled: %w", cerr)
		}
		for c := 0; c < n; c++ {
			sumW := a.fixW[c] + a.anchW
			sx := a.fixPt[c].X*a.fixW[c] + a.anchor[c].X*a.anchW
			sy := a.fixPt[c].Y*a.fixW[c] + a.anchor[c].Y*a.anchW
			for k, v := range a.nbr[c] {
				w := a.nbrW[c][k]
				sumW += w
				sx += a.pos[v].X * w
				sy += a.pos[v].Y * w
			}
			if sumW <= 0 {
				continue
			}
			a.pos[c] = geom.Pt(sx/sumW, sy/sumW)
		}
	}
	return nil
}

// spread pushes cells out of overloaded bins by stretching each bin
// row/column so occupancy equalizes, then stores the stretched
// positions as the next iteration's anchors.
func (a *analyticPlacer) spread(binTarget float64) {
	nbx := int(math.Sqrt(float64(len(a.pos)))/2) + 4
	nby := nbx
	die := a.layout.Die
	bw := die.W() / float64(nbx)
	bh := die.H() / float64(nby)
	// Occupancy per bin (cell areas).
	occ := make([][]float64, nby)
	for y := range occ {
		occ[y] = make([]float64, nbx)
	}
	binOf := func(p geom.Point) (int, int) {
		x := int((p.X - die.Min.X) / bw)
		y := int((p.Y - die.Min.Y) / bh)
		if x < 0 {
			x = 0
		}
		if x >= nbx {
			x = nbx - 1
		}
		if y < 0 {
			y = 0
		}
		if y >= nby {
			y = nby - 1
		}
		return x, y
	}
	for c := range a.pos {
		x, y := binOf(a.pos[c])
		occ[y][x] += a.nl.Widths[c]*a.layout.RowHeight + 1e-9
	}
	// Horizontal pass: within each bin row, remap x so that cumulative
	// occupancy becomes uniform. Then the same vertically per column.
	newX := a.remapAxis(occ, true, bw, binTarget)
	newY := a.remapAxis(occ, false, bh, binTarget)
	for c := range a.pos {
		bx, by := binOf(a.pos[c])
		fx := (a.pos[c].X - die.Min.X - float64(bx)*bw) / bw
		fy := (a.pos[c].Y - die.Min.Y - float64(by)*bh) / bh
		x := newX[by][bx] + fx*(newX[by][bx+1]-newX[by][bx])
		y := newY[bx][by] + fy*(newY[bx][by+1]-newY[bx][by])
		a.anchor[c] = geom.Pt(x, y)
	}
}

// remapAxis computes, per lane (bin row when horizontal, bin column
// otherwise), the stretched bin boundary coordinates that equalize
// occupancy along the axis. The returned slice is indexed
// [lane][boundary].
func (a *analyticPlacer) remapAxis(occ [][]float64, horizontal bool, binSize, target float64) [][]float64 {
	die := a.layout.Die
	var lanes, bins int
	var lo float64
	if horizontal {
		lanes, bins = len(occ), len(occ[0])
		lo = die.Min.X
	} else {
		lanes, bins = len(occ[0]), len(occ)
		lo = die.Min.Y
	}
	out := make([][]float64, lanes)
	for l := 0; l < lanes; l++ {
		get := func(b int) float64 {
			if horizontal {
				return occ[l][b]
			}
			return occ[b][l]
		}
		total := 0.0
		for b := 0; b < bins; b++ {
			total += get(b) + target*0.25
		}
		bounds := make([]float64, bins+1)
		bounds[0] = lo
		acc := 0.0
		span := binSize * float64(bins)
		for b := 0; b < bins; b++ {
			acc += get(b) + target*0.25
			bounds[b+1] = lo + span*acc/total
		}
		out[l] = bounds
	}
	return out
}

// run executes the solve/spread loop and returns approximate global
// positions; it stops early with a wrapped ctx error on cancellation.
func (a *analyticPlacer) run(ctx context.Context, iters int) ([]geom.Point, error) {
	die := a.layout.Die
	binTarget := a.nl.TotalWidth() * a.layout.RowHeight / float64(len(a.pos)+1)
	a.anchW = 0
	if err := a.solve(ctx, 40); err != nil {
		return nil, err
	}
	for it := 0; it < iters; it++ {
		a.spread(binTarget)
		// Anchor weight ramps up so later iterations respect the
		// spread layout more and more.
		a.anchW = 0.05 * math.Pow(1.8, float64(it))
		if err := a.solve(ctx, 12); err != nil {
			return nil, err
		}
	}
	// Final positions: blend toward anchors fully to avoid residual
	// clumping, clamped into the die.
	for c := range a.pos {
		p := a.anchor[c]
		p.X = math.Min(math.Max(p.X, die.Min.X), die.Max.X)
		p.Y = math.Min(math.Max(p.Y, die.Min.Y), die.Max.Y)
		a.pos[c] = p
	}
	return a.pos, nil
}

package sta

import (
	"math"
	"strings"
	"testing"

	"casyn/internal/geom"
	"casyn/internal/library"
	"casyn/internal/netlist"
)

// chain builds PI -> INV -> INV -> ... -> PO with n inverters.
func chain(n int) *netlist.Netlist {
	lib := library.Default()
	nl := netlist.New()
	s := nl.AddSignal("a", netlist.SigPI)
	for i := 0; i < n; i++ {
		_, s = nl.AddInstance("u", lib.Inv(), 0, []netlist.SigID{s}, geom.Point{})
		// Names must be unique only for humans; reuse is fine here.
	}
	nl.AddPO("out", s)
	return nl
}

func TestChainDelayScalesWithDepth(t *testing.T) {
	t.Parallel()
	r2, err := Analyze(chain(2), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Analyze(chain(8), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r8.MaxArrival <= r2.MaxArrival {
		t.Errorf("deeper chain not slower: %g vs %g", r2.MaxArrival, r8.MaxArrival)
	}
	// Rough linearity: each stage adds the same delay.
	perStage2 := r2.MaxArrival / 2
	perStage8 := r8.MaxArrival / 8
	if math.Abs(perStage2-perStage8) > perStage2 {
		t.Errorf("per-stage delay wildly nonlinear: %g vs %g", perStage2, perStage8)
	}
}

func TestWireLengthIncreasesDelay(t *testing.T) {
	t.Parallel()
	nl := chain(3)
	short, err := Analyze(nl, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Give every signal 500 µm of wire.
	lens := make([]float64, len(nl.Signals))
	for i := range lens {
		lens[i] = 500
	}
	long, err := Analyze(nl, lens, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if long.MaxArrival <= short.MaxArrival {
		t.Errorf("wire load did not slow the path: %g vs %g", short.MaxArrival, long.MaxArrival)
	}
	if long.TotalNetSwitchingCap <= short.TotalNetSwitchingCap {
		t.Error("switching cap did not grow with wirelength")
	}
}

func TestCriticalPathEndpoints(t *testing.T) {
	t.Parallel()
	// Two paths: a deep one from a, a shallow one from b.
	lib := library.Default()
	nl := netlist.New()
	a := nl.AddSignal("a", netlist.SigPI)
	b := nl.AddSignal("b", netlist.SigPI)
	s := a
	for i := 0; i < 6; i++ {
		_, s = nl.AddInstance("u", lib.Inv(), 0, []netlist.SigID{s}, geom.Point{})
	}
	_, slow := nl.AddInstance("m", lib.Cell("NAND2"), 0, []netlist.SigID{s, b}, geom.Point{})
	nl.AddPO("out", slow)
	_, fast := nl.AddInstance("f", lib.Inv(), 0, []netlist.SigID{b}, geom.Point{})
	nl.AddPO("aux", fast)
	res, err := Analyze(nl, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CriticalPO != "out" {
		t.Errorf("critical PO = %s, want out", res.CriticalPO)
	}
	if res.CriticalPI != "a" {
		t.Errorf("critical PI = %s, want a", res.CriticalPI)
	}
	if len(res.Path) < 7 {
		t.Errorf("path too short: %d points", len(res.Path))
	}
	if res.Path[0].Name != "a" {
		t.Errorf("path starts at %s", res.Path[0].Name)
	}
	// Arrivals along the path are monotonic.
	for i := 1; i < len(res.Path); i++ {
		if res.Path[i].Arrival < res.Path[i-1].Arrival {
			t.Errorf("non-monotonic arrival at point %d", i)
		}
	}
	if res.ArrivalByPO["aux"] >= res.ArrivalByPO["out"] {
		t.Error("shallow path must be faster")
	}
	if !strings.Contains(res.String(), "a (in)") || !strings.Contains(res.String(), "out (out)") {
		t.Errorf("String = %q", res.String())
	}
}

func TestFanoutLoadSlowsDriver(t *testing.T) {
	t.Parallel()
	// One inverter driving 1 vs 8 sinks.
	build := func(fan int) *netlist.Netlist {
		lib := library.Default()
		nl := netlist.New()
		a := nl.AddSignal("a", netlist.SigPI)
		_, drv := nl.AddInstance("d", lib.Inv(), 0, []netlist.SigID{a}, geom.Point{})
		for i := 0; i < fan; i++ {
			_, s := nl.AddInstance("s", lib.Inv(), 0, []netlist.SigID{drv}, geom.Point{})
			nl.AddPO("o"+string(rune('0'+i)), s)
		}
		return nl
	}
	lo, err := Analyze(build(1), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Analyze(build(8), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hi.MaxArrival <= lo.MaxArrival {
		t.Errorf("fanout load did not slow path: %g vs %g", lo.MaxArrival, hi.MaxArrival)
	}
}

func TestConstSignalTiming(t *testing.T) {
	t.Parallel()
	lib := library.Default()
	nl := netlist.New()
	c1 := nl.AddSignal("one", netlist.SigConst1)
	a := nl.AddSignal("a", netlist.SigPI)
	_, out := nl.AddInstance("u", lib.Cell("NAND2"), 0, []netlist.SigID{c1, a}, geom.Point{})
	nl.AddPO("o", out)
	res, err := Analyze(nl, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CriticalPI != "a" {
		t.Errorf("critical PI = %q, want a (constants have zero arrival)", res.CriticalPI)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	t.Parallel()
	nl := netlist.New()
	nl.AddSignal("a", netlist.SigPI)
	if _, err := Analyze(nl, nil, Options{}); err == nil {
		t.Error("netlist without POs accepted")
	}
}

func TestNetLengths(t *testing.T) {
	t.Parallel()
	sigNet := []int{-1, 0, 1, 0}
	netLength := []float64{10, 20}
	got := NetLengths(sigNet, netLength)
	want := []float64{0, 10, 20, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("NetLengths[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestSlackReport(t *testing.T) {
	t.Parallel()
	lib := library.Default()
	nl := netlist.New()
	a := nl.AddSignal("a", netlist.SigPI)
	s := a
	for i := 0; i < 4; i++ {
		_, s = nl.AddInstance("u", lib.Inv(), 0, []netlist.SigID{s}, geom.Point{})
	}
	nl.AddPO("slow", s)
	_, fast := nl.AddInstance("f", lib.Inv(), 0, []netlist.SigID{a}, geom.Point{})
	nl.AddPO("fast", fast)
	res, err := Analyze(nl, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Required halfway between the two arrivals: one endpoint fails.
	req := (res.ArrivalByPO["slow"] + res.ArrivalByPO["fast"]) / 2
	rep := res.Slacks(req)
	if rep.Met() {
		t.Error("report claims met with a failing endpoint")
	}
	if rep.FailingEndpoints != 1 {
		t.Errorf("failing = %d, want 1", rep.FailingEndpoints)
	}
	if rep.Endpoints[0].PO != "slow" || rep.Endpoints[0].Slack >= 0 {
		t.Errorf("worst endpoint = %+v", rep.Endpoints[0])
	}
	if rep.WorstSlack != rep.Endpoints[0].Slack {
		t.Error("WorstSlack inconsistent")
	}
	if rep.TotalNegativeSlack >= 0 {
		t.Error("TNS must be negative")
	}
	// Generous required time: everything met.
	if !res.Slacks(1e9).Met() {
		t.Error("huge required time must be met")
	}
	var buf strings.Builder
	if err := rep.Write(&buf, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "VIOLATED") || !strings.Contains(out, "slow") {
		t.Errorf("report output malformed:\n%s", out)
	}
	buf.Reset()
	if err := res.WritePath(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "critical path") {
		t.Error("WritePath output malformed")
	}
}

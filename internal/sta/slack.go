package sta

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// SlackReport is a per-endpoint timing summary against a required
// time: the sign-off view of an Analyze result.
type SlackReport struct {
	RequiredNs float64
	// Endpoints are sorted by ascending slack (most critical first).
	Endpoints []EndpointSlack
	// WorstSlack and TotalNegativeSlack are the standard QoR numbers.
	WorstSlack         float64
	TotalNegativeSlack float64
	FailingEndpoints   int
}

// EndpointSlack is one primary output's arrival and slack.
type EndpointSlack struct {
	PO      string
	Arrival float64
	Slack   float64
}

// Slacks evaluates the analysis against a required arrival time.
func (r *Result) Slacks(requiredNs float64) *SlackReport {
	rep := &SlackReport{RequiredNs: requiredNs}
	for po, arr := range r.ArrivalByPO {
		s := requiredNs - arr
		rep.Endpoints = append(rep.Endpoints, EndpointSlack{PO: po, Arrival: arr, Slack: s})
		if s < 0 {
			rep.TotalNegativeSlack += s
			rep.FailingEndpoints++
		}
	}
	sort.Slice(rep.Endpoints, func(i, j int) bool {
		if rep.Endpoints[i].Slack != rep.Endpoints[j].Slack {
			return rep.Endpoints[i].Slack < rep.Endpoints[j].Slack
		}
		return rep.Endpoints[i].PO < rep.Endpoints[j].PO
	})
	if len(rep.Endpoints) > 0 {
		rep.WorstSlack = rep.Endpoints[0].Slack
	}
	return rep
}

// Met reports whether every endpoint meets the required time.
func (s *SlackReport) Met() bool { return s.FailingEndpoints == 0 }

// Write emits the report, PrimeTime-style: worst paths first, capped
// at maxEndpoints rows (0 = all).
func (s *SlackReport) Write(w io.Writer, maxEndpoints int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "required: %.3f ns   worst slack: %+.3f ns   TNS: %+.3f ns   failing: %d/%d\n",
		s.RequiredNs, s.WorstSlack, s.TotalNegativeSlack, s.FailingEndpoints, len(s.Endpoints))
	n := len(s.Endpoints)
	if maxEndpoints > 0 && maxEndpoints < n {
		n = maxEndpoints
	}
	for _, e := range s.Endpoints[:n] {
		status := "MET"
		if e.Slack < 0 {
			status = "VIOLATED"
		}
		fmt.Fprintf(bw, "  %-20s arrival %8.3f ns   slack %+8.3f ns   %s\n", e.PO, e.Arrival, e.Slack, status)
	}
	return bw.Flush()
}

// WritePath emits the critical path, one stage per line.
func (r *Result) WritePath(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "critical path: %s\n", r)
	prev := 0.0
	for i, p := range r.Path {
		kind := "net"
		if p.Through != "" {
			kind = p.Through
		} else if i == 0 {
			kind = "input"
		}
		fmt.Fprintf(bw, "  %-20s %-8s arrival %8.3f ns  (+%.3f)\n", p.Name, kind, p.Arrival, p.Arrival-prev)
		prev = p.Arrival
	}
	return bw.Flush()
}

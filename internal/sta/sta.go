// Package sta implements static timing analysis over a mapped netlist
// and its routed wirelengths: topological arrival-time propagation
// with a linear cell delay model (intrinsic + drive·load) and lumped
// Elmore wire delay, plus critical-path extraction.
//
// It stands in for the PrimeTime runs of the paper's Tables 3 and 5:
// the absolute numbers differ from a sign-off engine, but the relative
// comparison across mapping styles — which is what the tables show —
// is preserved because all netlists are measured with the same model.
package sta

import (
	"fmt"
	"math"

	"casyn/internal/netlist"
)

// Options sets the interconnect and boundary parameters.
type Options struct {
	// WireCapPerUm is wire capacitance in pF/µm (default 0.00025,
	// a 0.18 µm-class value where wire cap dominates gate cap).
	WireCapPerUm float64
	// WireResPerUm is wire resistance in kΩ/µm (default 0.0001).
	WireResPerUm float64
	// POLoadCap is the load on each primary output in pF (default
	// 0.03).
	POLoadCap float64
	// PIDrive is the resistance of the input drivers in kΩ (default
	// 1.5).
	PIDrive float64
	// PIDelay is the arrival time at the primary inputs in ns.
	PIDelay float64
}

func (o *Options) defaults() {
	if o.WireCapPerUm == 0 {
		o.WireCapPerUm = 0.00025
	}
	if o.WireResPerUm == 0 {
		o.WireResPerUm = 0.0001
	}
	if o.POLoadCap == 0 {
		o.POLoadCap = 0.03
	}
	if o.PIDrive == 0 {
		o.PIDrive = 1.5
	}
}

// PathPoint is one element of a reported timing path.
type PathPoint struct {
	// Name is the signal or port name.
	Name string
	// Through is the cell name of the driving instance ("" at a PI).
	Through string
	// Arrival is the arrival time at this point in ns.
	Arrival float64
}

// Result is a completed timing analysis.
type Result struct {
	// MaxArrival is the worst primary-output arrival time in ns (the
	// "Critical Path Arrival Time" of Tables 3/5).
	MaxArrival float64
	// CriticalPO and CriticalPI name the endpoints of the critical
	// path.
	CriticalPO string
	CriticalPI string
	// Path lists the critical path from PI to PO.
	Path []PathPoint
	// ArrivalByPO maps each primary output to its arrival time; used
	// for the paper's "same path as the K=0 critical path" columns.
	ArrivalByPO map[string]float64
	// TotalNetSwitchingCap is the summed wire load in pF (reported for
	// the congestion/wirelength correlation analysis).
	TotalNetSwitchingCap float64
}

// String formats the critical path in the tables' style.
func (r *Result) String() string {
	return fmt.Sprintf("%s (in) -> %s (out)  %.2f ns", r.CriticalPI, r.CriticalPO, r.MaxArrival)
}

// Analyze runs STA on the netlist. netLenOfSig gives the routed length
// in µm of each signal's net (indexed by SigID); nil entries or a nil
// slice fall back to zero wirelength (pre-route timing).
func Analyze(nl *netlist.Netlist, netLenOfSig []float64, opts Options) (*Result, error) {
	opts.defaults()
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	nSig := len(nl.Signals)
	wireLen := func(s netlist.SigID) float64 {
		if netLenOfSig == nil || int(s) >= len(netLenOfSig) {
			return 0
		}
		return netLenOfSig[s]
	}

	// Pin loads per signal.
	pinCap := make([]float64, nSig)
	for i := range nl.Instances {
		inst := &nl.Instances[i]
		for _, s := range inst.Inputs {
			pinCap[s] += inst.Cell.InputCap
		}
	}
	for _, po := range nl.POs {
		pinCap[po.Sig] += opts.POLoadCap
	}

	res := &Result{ArrivalByPO: make(map[string]float64, len(nl.POs))}

	// loadOf is the total capacitance a driver of signal s sees.
	loadOf := func(s netlist.SigID) float64 {
		return wireLen(s)*opts.WireCapPerUm + pinCap[s]
	}
	// wireDelay is the lumped Elmore delay across signal s's net.
	wireDelay := func(s netlist.SigID) float64 {
		l := wireLen(s)
		rw := l * opts.WireResPerUm
		return rw * (l*opts.WireCapPerUm/2 + pinCap[s])
	}

	arrival := make([]float64, nSig) // at the driver output
	atSink := make([]float64, nSig)  // after the wire
	critPred := make([]int, nSig)    // critical input signal per gate signal
	for i := range critPred {
		critPred[i] = -1
	}

	// Primary inputs and constants.
	for _, s := range nl.PIs {
		arrival[s] = opts.PIDelay + opts.PIDrive*loadOf(s)
		atSink[s] = arrival[s] + wireDelay(s)
	}
	for si := range nl.Signals {
		if k := nl.Signals[si].Kind; k == netlist.SigConst0 || k == netlist.SigConst1 {
			arrival[si] = 0
			atSink[si] = 0
		}
	}
	// Instances in topological order.
	for _, ii := range order {
		inst := &nl.Instances[ii]
		worst := 0.0
		pred := -1
		for _, s := range inst.Inputs {
			if atSink[s] > worst {
				worst = atSink[s]
				pred = int(s)
			}
		}
		out := inst.Output
		gate := inst.Cell.Intrinsic + inst.Cell.Drive*loadOf(out)
		arrival[out] = worst + gate
		atSink[out] = arrival[out] + wireDelay(out)
		critPred[out] = pred
	}
	// Accumulate total switching cap once per signal.
	for si := range nl.Signals {
		res.TotalNetSwitchingCap += wireLen(netlist.SigID(si)) * opts.WireCapPerUm
	}

	// Worst PO.
	res.MaxArrival = math.Inf(-1)
	var critSig netlist.SigID = -1
	for _, po := range nl.POs {
		a := atSink[po.Sig]
		res.ArrivalByPO[po.Name] = a
		if a > res.MaxArrival {
			res.MaxArrival = a
			res.CriticalPO = po.Name
			critSig = po.Sig
		}
	}
	if len(nl.POs) == 0 {
		return nil, fmt.Errorf("sta: netlist has no primary outputs")
	}

	// Walk the critical path back to a PI.
	var rev []PathPoint
	s := critSig
	for s >= 0 {
		sig := &nl.Signals[s]
		through := ""
		if sig.Kind == netlist.SigGate {
			through = nl.Instances[sig.Driver].Cell.Name
		}
		rev = append(rev, PathPoint{Name: sig.Name, Through: through, Arrival: arrival[s]})
		if sig.Kind == netlist.SigPI {
			res.CriticalPI = sig.Name
			break
		}
		if sig.Kind != netlist.SigGate {
			break // constant source
		}
		s = netlist.SigID(critPred[s])
	}
	res.Path = make([]PathPoint, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		res.Path = append(res.Path, rev[i])
	}
	return res, nil
}

// NetLengths maps a routed result back onto signals: given the
// signal-to-net mapping from netlist.ToPlacement and the router's
// per-net lengths, it returns per-signal lengths for Analyze.
func NetLengths(sigNet []int, netLength []float64) []float64 {
	out := make([]float64, len(sigNet))
	for s, n := range sigNet {
		if n >= 0 && n < len(netLength) {
			out[s] = netLength[n]
		}
	}
	return out
}

// Package golden builds the iteration fingerprints of the golden-file
// regression suite: for one circuit and one K it runs the standard
// flow configuration (the diffharness/casyn operating point — seed 1,
// 58% utilization, calibrated router) and condenses the result into a
// Fingerprint holding only deterministic fields: the netlist SHA-256,
// fixed-precision scalar metrics, the congestion histogram's bucket
// counts, and the span/counter totals of the observability layer.
//
// The suite's files live in testdata/golden/, one JSON per
// (circuit, K); regenerate them with
//
//	go test ./internal/golden -update
//
// after any intentional result change. Because the fingerprint is
// computed twice per case — once with metrics enabled and once without
// — the suite also proves that enabling observability changes no
// synthesis result.
package golden

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"casyn/internal/bench"
	"casyn/internal/flow"
	"casyn/internal/library"
	"casyn/internal/logic"
	"casyn/internal/obs"
	"casyn/internal/place"
	"casyn/internal/route"
)

// Fingerprint is the deterministic condensation of one flow iteration.
// Float scalars are stored pre-formatted at fixed precision so the JSON
// encoding is byte-stable.
type Fingerprint struct {
	Circuit string  `json:"circuit"`
	K       float64 `json:"k"`
	// NetlistSHA256 hashes the mapped netlist's structural Verilog —
	// the functional identity of the result.
	NetlistSHA256     string `json:"netlist_sha256"`
	NumCells          int    `json:"num_cells"`
	CellArea          string `json:"cell_area_um2"`
	Utilization       string `json:"utilization"`
	WireLength        string `json:"wire_length_um"`
	FailedConnections int    `json:"failed_connections"`
	Violations        int    `json:"violations"`
	Routable          bool   `json:"routable"`
	// CongestionBounds/Counts are the route.congestion histogram's
	// bucket layout and deterministic bucket counts (the float sum is
	// deliberately excluded).
	CongestionBounds []float64 `json:"congestion_bounds,omitempty"`
	CongestionCounts []int64   `json:"congestion_counts,omitempty"`
	// SpanCounts and Counters are the iteration's event totals: how
	// many spans completed per name, and every pipeline counter.
	SpanCounts map[string]int64 `json:"span_counts,omitempty"`
	Counters   map[string]int64 `json:"counters,omitempty"`
}

// Config pins the flow operating point of the suite — the same
// calibrated configuration casyn and the diffharness use.
func Config(layout place.Layout) flow.Config {
	return flow.Config{
		Layout:         layout,
		PlaceOpts:      place.Options{Seed: 1, RefinePasses: 8},
		RouteOpts:      route.Options{GCellSize: 26.6, RipupIterations: 6, CapacityScale: 1.98},
		FreshPlacement: true,
	}
}

// Compute synthesizes the PLA at plaPath for one K and returns its
// fingerprint. withMetrics attaches an obs.Recorder for the iteration
// (filling the histogram/span/counter fields); without it those fields
// stay empty, which is how the suite proves observability is inert.
func Compute(ctx context.Context, circuit, plaPath string, k float64, withMetrics bool) (*Fingerprint, error) {
	f, err := os.Open(plaPath)
	if err != nil {
		return nil, err
	}
	p, err := logic.ReadPLA(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("golden: %s: %w", circuit, err)
	}
	d, err := bench.BuildSubject(p, bench.Direct, 0)
	if err != nil {
		return nil, fmt.Errorf("golden: %s: %w", circuit, err)
	}
	area := float64(d.BaseGateCount()) * 4.6 / 0.58
	layout, err := place.NewLayout(area, 1.0, library.RowHeight)
	if err != nil {
		return nil, fmt.Errorf("golden: %s: %w", circuit, err)
	}
	cfg := Config(layout)
	pc, err := flow.Prepare(ctx, d, cfg)
	if err != nil {
		return nil, fmt.Errorf("golden: %s: %w", circuit, err)
	}
	if withMetrics {
		ctx = obs.WithRecorder(ctx, obs.New())
	}
	it, err := flow.RunOnce(ctx, pc, k, cfg)
	if err != nil {
		return nil, fmt.Errorf("golden: %s K=%g: %w", circuit, k, err)
	}
	return FromIteration(circuit, &it)
}

// FromIteration condenses a completed iteration into its fingerprint.
func FromIteration(circuit string, it *flow.Iteration) (*Fingerprint, error) {
	var sb strings.Builder
	if err := it.Netlist.WriteVerilog(&sb, "dut"); err != nil {
		return nil, err
	}
	sum := sha256.Sum256([]byte(sb.String()))
	fp := &Fingerprint{
		Circuit:           circuit,
		K:                 it.K,
		NetlistSHA256:     hex.EncodeToString(sum[:]),
		NumCells:          it.NumCells,
		CellArea:          fmt.Sprintf("%.6f", it.CellArea),
		Utilization:       fmt.Sprintf("%.6f", it.Utilization),
		WireLength:        fmt.Sprintf("%.6f", it.WireLength),
		FailedConnections: it.FailedConnections,
		Violations:        it.Violations,
		Routable:          it.Routable,
	}
	if m := it.Metrics; m != nil {
		if h, ok := m.Events.Histograms["route.congestion"]; ok {
			fp.CongestionBounds = h.Bounds
			fp.CongestionCounts = h.Counts
		}
		fp.SpanCounts = m.Events.SpanCounts()
		fp.Counters = m.Events.Counters
	}
	return fp, nil
}

// Encode renders the fingerprint as stable, indented JSON with a
// trailing newline (the on-disk golden format). encoding/json sorts
// map keys, so the bytes are reproducible.
func (fp *Fingerprint) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(fp, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Load reads a golden file back.
func Load(path string) (*Fingerprint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	fp := &Fingerprint{}
	if err := json.Unmarshal(b, fp); err != nil {
		return nil, fmt.Errorf("golden: %s: %w", path, err)
	}
	return fp, nil
}

package golden

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from the current results")

// circuits returns every example circuit, sorted for stable subtest
// ordering.
func circuits(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "circuits", "*.pla"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example circuits found")
	}
	sort.Strings(paths)
	return paths
}

func goldenPath(circuit string, k float64) string {
	return filepath.Join("testdata", "golden", fmt.Sprintf("%s_k%g.json", circuit, k))
}

// TestGolden regression-checks every circuit × K against its committed
// fingerprint, and — in the same pass — proves that enabling metrics
// changes no synthesis result: the fingerprint is computed with and
// without a recorder and the two must agree on every result field.
func TestGolden(t *testing.T) {
	for _, path := range circuits(t) {
		circuit := strings.TrimSuffix(filepath.Base(path), ".pla")
		for _, k := range []float64{0, 1} {
			t.Run(fmt.Sprintf("%s/K=%g", circuit, k), func(t *testing.T) {
				t.Parallel()
				ctx := context.Background()
				withObs, err := Compute(ctx, circuit, path, k, true)
				if err != nil {
					t.Fatal(err)
				}
				plain, err := Compute(ctx, circuit, path, k, false)
				if err != nil {
					t.Fatal(err)
				}

				// Observability must be inert: every result field equal,
				// starting with the netlist's functional identity.
				if withObs.NetlistSHA256 != plain.NetlistSHA256 {
					t.Errorf("enabling metrics changed the netlist: %s vs %s",
						withObs.NetlistSHA256, plain.NetlistSHA256)
				}
				if withObs.NumCells != plain.NumCells ||
					withObs.CellArea != plain.CellArea ||
					withObs.Utilization != plain.Utilization ||
					withObs.WireLength != plain.WireLength ||
					withObs.FailedConnections != plain.FailedConnections ||
					withObs.Violations != plain.Violations ||
					withObs.Routable != plain.Routable {
					t.Errorf("enabling metrics perturbed results:\nwith:    %+v\nwithout: %+v",
						withObs, plain)
				}
				if len(withObs.SpanCounts) == 0 || len(withObs.Counters) == 0 {
					t.Error("metrics-enabled fingerprint carries no events")
				}
				if len(withObs.CongestionCounts) == 0 {
					t.Error("metrics-enabled fingerprint has no congestion histogram")
				}

				got, err := withObs.Encode()
				if err != nil {
					t.Fatal(err)
				}
				gp := goldenPath(circuit, k)
				if *update {
					if err := os.MkdirAll(filepath.Dir(gp), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(gp, got, 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(gp)
				if err != nil {
					t.Fatalf("%v (run `go test ./internal/golden -update` to generate)", err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("fingerprint drifted from %s:\n--- got\n%s--- want\n%s", gp, got, want)
				}
			})
		}
	}
}

// TestGoldenFilesComplete fails when a golden file exists for a
// circuit that disappeared, or is missing for one that exists — the
// suite and the examples directory move together.
func TestGoldenFilesComplete(t *testing.T) {
	if *update {
		t.Skip("updating")
	}
	want := map[string]bool{}
	for _, path := range circuits(t) {
		circuit := strings.TrimSuffix(filepath.Base(path), ".pla")
		for _, k := range []float64{0, 1} {
			want[filepath.Base(goldenPath(circuit, k))] = true
		}
	}
	haveFiles, err := filepath.Glob(filepath.Join("testdata", "golden", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	have := map[string]bool{}
	for _, f := range haveFiles {
		have[filepath.Base(f)] = true
	}
	for f := range want {
		if !have[f] {
			t.Errorf("missing golden file %s (run `go test ./internal/golden -update`)", f)
		}
	}
	for f := range have {
		if !want[f] {
			t.Errorf("stale golden file %s has no matching circuit", f)
		}
	}
}

// TestLoadRoundTrip checks the on-disk format parses back to the same
// fingerprint it encodes.
func TestLoadRoundTrip(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "golden", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Skip("no golden files yet")
	}
	for _, p := range paths {
		fp, err := Load(p)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := fp.Encode()
		if err != nil {
			t.Fatal(err)
		}
		disk, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, disk) {
			t.Errorf("%s does not round-trip through Load/Encode", p)
		}
	}
}

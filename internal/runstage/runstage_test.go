package runstage

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestRunPassesThroughResult(t *testing.T) {
	got, err := Run(context.Background(), StageMap, 0.001, 0, nil, func(context.Context) (int, error) {
		return 42, nil
	})
	if err != nil || got != 42 {
		t.Fatalf("Run = %d, %v", got, err)
	}
}

func TestRunTagsErrors(t *testing.T) {
	cause := errors.New("no match at gate 7")
	_, err := Run(context.Background(), StageMap, 0.5, 0, nil, func(context.Context) (int, error) {
		return 0, cause
	})
	se := AsStage(err)
	if se == nil {
		t.Fatalf("error %v is not a StageError", err)
	}
	if se.Stage != StageMap || se.K != 0.5 || se.Panicked {
		t.Errorf("StageError = %+v", se)
	}
	if !errors.Is(err, cause) {
		t.Error("cause not reachable through Unwrap")
	}
	if want := "map stage (K=0.5): no match at gate 7"; err.Error() != want {
		t.Errorf("Error() = %q, want %q", err.Error(), want)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	_, err := Run(context.Background(), StageRoute, 0.01, 0, nil, func(context.Context) (int, error) {
		panic("index out of range [12] with length 4")
	})
	se := AsStage(err)
	if se == nil {
		t.Fatalf("panic not converted to StageError: %v", err)
	}
	if !se.Panicked || se.PanicValue != "index out of range [12] with length 4" {
		t.Errorf("StageError = %+v", se)
	}
	if len(se.Stack) == 0 {
		t.Error("no stack captured")
	}
	if !strings.Contains(err.Error(), "panic:") {
		t.Errorf("Error() = %q does not mention the panic", err.Error())
	}
}

func TestRunEnforcesBudget(t *testing.T) {
	start := time.Now()
	_, err := Run(context.Background(), StagePlace, 0, 20*time.Millisecond, nil, func(ctx context.Context) (int, error) {
		<-ctx.Done()
		return 0, fmt.Errorf("place: %w", ctx.Err())
	})
	if time.Since(start) > 5*time.Second {
		t.Fatal("budget not enforced")
	}
	se := AsStage(err)
	if se == nil || !se.Timeout() {
		t.Fatalf("expected timeout StageError, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("DeadlineExceeded not reachable through wrapping")
	}
}

func TestRunMarksLooselyWrappedTimeout(t *testing.T) {
	// A stage that notices the deadline but returns its own error must
	// still report as a timeout.
	_, err := Run(context.Background(), StageRoute, 0, 10*time.Millisecond, nil, func(ctx context.Context) (int, error) {
		<-ctx.Done()
		return 0, errors.New("router gave up")
	})
	se := AsStage(err)
	if se == nil || !se.Timeout() {
		t.Fatalf("expected timeout StageError, got %v", err)
	}
}

func TestHooksInjectError(t *testing.T) {
	injected := errors.New("injected router failure")
	h := &Hooks{Faults: []Fault{{Stage: StageRoute, K: 0.001, Err: injected}}}
	// Non-matching K runs normally.
	got, err := Run(context.Background(), StageRoute, 0.5, 0, h, func(context.Context) (int, error) { return 1, nil })
	if err != nil || got != 1 {
		t.Fatalf("non-matching fault fired: %d, %v", got, err)
	}
	// Matching K fails with the injected cause.
	_, err = Run(context.Background(), StageRoute, 0.001, 0, h, func(context.Context) (int, error) { return 1, nil })
	if !errors.Is(err, injected) {
		t.Fatalf("injected fault missing: %v", err)
	}
	if se := AsStage(err); se == nil || se.Stage != StageRoute {
		t.Errorf("injected fault not stage-tagged: %v", err)
	}
}

func TestHooksInjectPanic(t *testing.T) {
	h := &Hooks{Faults: []Fault{{Stage: StageMap, AllK: true, Panic: "boom"}}}
	_, err := Run(context.Background(), StageMap, 0.25, 0, h, func(context.Context) (int, error) { return 1, nil })
	se := AsStage(err)
	if se == nil || !se.Panicked || se.PanicValue != "boom" {
		t.Fatalf("injected panic not recovered: %v", err)
	}
}

func TestHooksDelayHonorsCancellation(t *testing.T) {
	h := &Hooks{Faults: []Fault{{Stage: StagePlace, AllK: true, Delay: time.Hour}}}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Run(ctx, StagePlace, 0, 0, h, func(context.Context) (int, error) { return 1, nil })
	if time.Since(start) > 5*time.Second {
		t.Fatal("delay ignored cancellation")
	}
	if se := AsStage(err); se == nil || !se.Timeout() {
		t.Fatalf("expected timeout, got %v", err)
	}
}

func TestNilHooksAndAsStageMisses(t *testing.T) {
	var h *Hooks
	if err := h.fire(context.Background(), StageMap, 0); err != nil {
		t.Fatal(err)
	}
	if AsStage(errors.New("plain")) != nil {
		t.Error("AsStage invented a StageError")
	}
	if AsStage(nil) != nil {
		t.Error("AsStage(nil) != nil")
	}
}

package runstage

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"casyn/internal/obs"
)

func TestRunPassesThroughResult(t *testing.T) {
	got, err := Run(context.Background(), StageMap, 0.001, 0, nil, func(context.Context) (int, error) {
		return 42, nil
	})
	if err != nil || got != 42 {
		t.Fatalf("Run = %d, %v", got, err)
	}
}

func TestRunTagsErrors(t *testing.T) {
	cause := errors.New("no match at gate 7")
	_, err := Run(context.Background(), StageMap, 0.5, 0, nil, func(context.Context) (int, error) {
		return 0, cause
	})
	se := AsStage(err)
	if se == nil {
		t.Fatalf("error %v is not a StageError", err)
	}
	if se.Stage != StageMap || se.K != 0.5 || se.Panicked {
		t.Errorf("StageError = %+v", se)
	}
	if !errors.Is(err, cause) {
		t.Error("cause not reachable through Unwrap")
	}
	if want := "map stage (K=0.5): no match at gate 7"; err.Error() != want {
		t.Errorf("Error() = %q, want %q", err.Error(), want)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	_, err := Run(context.Background(), StageRoute, 0.01, 0, nil, func(context.Context) (int, error) {
		panic("index out of range [12] with length 4")
	})
	se := AsStage(err)
	if se == nil {
		t.Fatalf("panic not converted to StageError: %v", err)
	}
	if !se.Panicked || se.PanicValue != "index out of range [12] with length 4" {
		t.Errorf("StageError = %+v", se)
	}
	if len(se.Stack) == 0 {
		t.Error("no stack captured")
	}
	if !strings.Contains(err.Error(), "panic:") {
		t.Errorf("Error() = %q does not mention the panic", err.Error())
	}
}

func TestRunEnforcesBudget(t *testing.T) {
	start := time.Now()
	_, err := Run(context.Background(), StagePlace, 0, 20*time.Millisecond, nil, func(ctx context.Context) (int, error) {
		<-ctx.Done()
		return 0, fmt.Errorf("place: %w", ctx.Err())
	})
	if time.Since(start) > 5*time.Second {
		t.Fatal("budget not enforced")
	}
	se := AsStage(err)
	if se == nil || !se.Timeout() {
		t.Fatalf("expected timeout StageError, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("DeadlineExceeded not reachable through wrapping")
	}
}

func TestRunMarksLooselyWrappedTimeout(t *testing.T) {
	// A stage that notices the deadline but returns its own error must
	// still report as a timeout.
	_, err := Run(context.Background(), StageRoute, 0, 10*time.Millisecond, nil, func(ctx context.Context) (int, error) {
		<-ctx.Done()
		return 0, errors.New("router gave up")
	})
	se := AsStage(err)
	if se == nil || !se.Timeout() {
		t.Fatalf("expected timeout StageError, got %v", err)
	}
}

func TestHooksInjectError(t *testing.T) {
	injected := errors.New("injected router failure")
	h := &Hooks{Faults: []Fault{{Stage: StageRoute, K: 0.001, Err: injected}}}
	// Non-matching K runs normally.
	got, err := Run(context.Background(), StageRoute, 0.5, 0, h, func(context.Context) (int, error) { return 1, nil })
	if err != nil || got != 1 {
		t.Fatalf("non-matching fault fired: %d, %v", got, err)
	}
	// Matching K fails with the injected cause.
	_, err = Run(context.Background(), StageRoute, 0.001, 0, h, func(context.Context) (int, error) { return 1, nil })
	if !errors.Is(err, injected) {
		t.Fatalf("injected fault missing: %v", err)
	}
	if se := AsStage(err); se == nil || se.Stage != StageRoute {
		t.Errorf("injected fault not stage-tagged: %v", err)
	}
}

func TestHooksInjectPanic(t *testing.T) {
	h := &Hooks{Faults: []Fault{{Stage: StageMap, AllK: true, Panic: "boom"}}}
	_, err := Run(context.Background(), StageMap, 0.25, 0, h, func(context.Context) (int, error) { return 1, nil })
	se := AsStage(err)
	if se == nil || !se.Panicked || se.PanicValue != "boom" {
		t.Fatalf("injected panic not recovered: %v", err)
	}
}

func TestHooksDelayHonorsCancellation(t *testing.T) {
	h := &Hooks{Faults: []Fault{{Stage: StagePlace, AllK: true, Delay: time.Hour}}}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Run(ctx, StagePlace, 0, 0, h, func(context.Context) (int, error) { return 1, nil })
	if time.Since(start) > 5*time.Second {
		t.Fatal("delay ignored cancellation")
	}
	if se := AsStage(err); se == nil || !se.Timeout() {
		t.Fatalf("expected timeout, got %v", err)
	}
}

func TestRateFaultIsProbabilisticAndSeeded(t *testing.T) {
	injected := errors.New("transient blip")
	count := func(seed int64) (failures int, pattern []bool) {
		h := &Hooks{
			Seed:   seed,
			Faults: []Fault{{Stage: StageRoute, AllK: true, Err: injected, Rate: 0.4}},
		}
		for i := 0; i < 200; i++ {
			_, err := Run(context.Background(), StageRoute, 0.5, 0, h, func(context.Context) (int, error) { return 1, nil })
			if err != nil {
				if !errors.Is(err, injected) {
					t.Fatalf("unexpected error: %v", err)
				}
				failures++
			}
			pattern = append(pattern, err != nil)
		}
		return failures, pattern
	}
	n1, p1 := count(7)
	if n1 == 0 || n1 == 200 {
		t.Fatalf("Rate=0.4 fired %d/200 times — not probabilistic", n1)
	}
	// Loose statistical sanity: 200 draws at 0.4 land in [40, 120]
	// except with negligible probability.
	if n1 < 40 || n1 > 120 {
		t.Errorf("Rate=0.4 fired %d/200 times — far off the rate", n1)
	}
	// Same seed → identical fire pattern; different seed → (almost
	// surely) a different one.
	_, p1again := count(7)
	for i := range p1 {
		if p1[i] != p1again[i] {
			t.Fatalf("seed 7 not deterministic at draw %d", i)
		}
	}
	_, p2 := count(8)
	same := true
	for i := range p1 {
		if p1[i] != p2[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical fire patterns")
	}
}

func TestRateZeroAlwaysFires(t *testing.T) {
	injected := errors.New("hard fault")
	h := &Hooks{Faults: []Fault{{Stage: StageMap, AllK: true, Err: injected}}}
	for i := 0; i < 10; i++ {
		if _, err := Run(context.Background(), StageMap, 0, 0, h, func(context.Context) (int, error) { return 1, nil }); !errors.Is(err, injected) {
			t.Fatalf("always-on fault skipped on run %d: %v", i, err)
		}
	}
}

func TestSparedRateFaultFallsThroughToLaterFaults(t *testing.T) {
	// When the transient fault spares an execution, a later always-on
	// fault for the same stage must still apply.
	transient := errors.New("transient")
	hard := errors.New("hard")
	h := &Hooks{
		Seed: 3,
		Faults: []Fault{
			{Stage: StageMap, AllK: true, Err: transient, Rate: 0.5},
			{Stage: StageMap, AllK: true, Err: hard},
		},
	}
	sawHard := false
	for i := 0; i < 100 && !sawHard; i++ {
		_, err := Run(context.Background(), StageMap, 0, 0, h, func(context.Context) (int, error) { return 1, nil })
		if err == nil {
			t.Fatal("both faults skipped")
		}
		if errors.Is(err, hard) {
			sawHard = true
		}
	}
	if !sawHard {
		t.Error("spared Rate fault never fell through to the hard fault")
	}
}

func TestFaultsInjectedCounter(t *testing.T) {
	injected := errors.New("counted")
	h := &Hooks{Faults: []Fault{{Stage: StageRoute, AllK: true, Err: injected}}}
	rec := obs.New()
	ctx := obs.WithRecorder(context.Background(), rec)
	for i := 0; i < 3; i++ {
		if _, err := Run(ctx, StageRoute, 0, 0, h, func(context.Context) (int, error) { return 1, nil }); !errors.Is(err, injected) {
			t.Fatal(err)
		}
	}
	// A run with no matching fault must not count.
	if _, err := Run(ctx, StageMap, 0, 0, h, func(context.Context) (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if got := rec.Snapshot().Counters[InjectedCounter]; got != 3 {
		t.Errorf("%s = %d, want 3", InjectedCounter, got)
	}
}

func TestNilHooksAndAsStageMisses(t *testing.T) {
	var h *Hooks
	if err := h.fire(context.Background(), StageMap, 0); err != nil {
		t.Fatal(err)
	}
	if AsStage(errors.New("plain")) != nil {
		t.Error("AsStage invented a StageError")
	}
	if AsStage(nil) != nil {
		t.Error("AsStage(nil) != nil")
	}
}

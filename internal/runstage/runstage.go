// Package runstage is the fault-isolation layer of the flow engine:
// stage-tagged error types, panic recovery, per-stage wall-clock
// budgets, and injectable fault points for testing.
//
// The paper's methodology (Figure 3) is an iterative sweep over the
// congestion factor K; a production flow engine must survive a bad
// iteration — a mapper panic on a pathological tree, a router that
// blows its time budget on a hopeless floorplan — without losing the
// whole sweep. Every pipeline stage therefore executes through Run,
// which converts panics into typed *StageError values, enforces an
// optional wall-clock budget via context deadlines, and gives tests a
// per-stage point to inject failures, panics, and delays.
package runstage

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"
	"time"

	"casyn/internal/obs"
)

// Stage names one phase of the synthesis pipeline.
type Stage string

// The pipeline stages, in flow order.
const (
	StagePrepare Stage = "prepare"
	// StageMapPrepare is the once-per-sweep K-invariant mapping prefix
	// (partition + match enumeration, flow.PrepareMapping); it runs
	// before the K ladder, not inside an iteration.
	StageMapPrepare Stage = "map_prepare"
	StageMap Stage = "map"
	// StageECO is the edit-scoped invalidation of a prepared mapping
	// context (flow.RunECO): applying an EditSet and recomputing only
	// the dirtied partition trees' enumerations.
	StageECO    Stage = "eco"
	StageVerify Stage = "verify"
	StagePlace      Stage = "place"
	StageRoute      Stage = "route"
	StageSTA        Stage = "sta"
)

// StageError tags a stage failure with the pipeline stage and the
// congestion factor K of the iteration it happened in. It wraps the
// cause, so errors.Is(err, context.DeadlineExceeded) sees through it.
type StageError struct {
	Stage Stage
	// K is the congestion factor of the failing iteration; for
	// per-design work (StagePrepare) it is 0 and meaningless.
	K float64
	// Err is the wrapped cause. For a recovered panic it is a
	// synthesized error carrying the panic value's formatting.
	Err error
	// Panicked reports that the stage panicked rather than returning an
	// error; PanicValue and Stack preserve the recovered value and the
	// goroutine stack for diagnosis.
	Panicked   bool
	PanicValue any
	Stack      []byte
}

// Error implements the error interface.
func (e *StageError) Error() string {
	if e.Panicked {
		return fmt.Sprintf("%s stage (K=%g): panic: %v", e.Stage, e.K, e.PanicValue)
	}
	return fmt.Sprintf("%s stage (K=%g): %v", e.Stage, e.K, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *StageError) Unwrap() error { return e.Err }

// Timeout reports whether the stage failed by exceeding a deadline
// (its own budget or an enclosing one).
func (e *StageError) Timeout() bool { return errors.Is(e.Err, context.DeadlineExceeded) }

// Canceled reports whether the stage failed because the run was
// canceled.
func (e *StageError) Canceled() bool { return errors.Is(e.Err, context.Canceled) }

// AsStage extracts the *StageError from an error chain, or nil.
func AsStage(err error) *StageError {
	var se *StageError
	if errors.As(err, &se) {
		return se
	}
	return nil
}

// Fault is one injectable failure point, matched by stage and K.
// Exactly one of Err/Panic should be set (Delay may accompany either,
// or stand alone). Faults exist for tests: they let a flow test make
// one iteration of a K-sweep fail, panic, or stall without reaching
// into the stage implementations.
type Fault struct {
	Stage Stage
	// K selects the iteration to fault; AllK faults every iteration.
	K    float64
	AllK bool
	// Err, when non-nil, is returned as the stage's failure.
	Err error
	// Panic, when non-nil, is raised as a panic inside the stage
	// (exercising the recovery path).
	Panic any
	// Delay stalls the stage before it starts, honoring context
	// cancellation (exercising budget enforcement).
	Delay time.Duration
	// Rate, when in (0,1), makes the fault probabilistic: each matching
	// stage execution draws from the hooks' seeded RNG and the fault
	// applies only when the draw lands below Rate — a transient failure
	// a retrying caller should eventually get past. The draw sequence
	// is deterministic per Hooks.Seed (under concurrency the draws are
	// serialized but their assignment to stages follows scheduling
	// order, so per-seed determinism is exact only for serial
	// execution). Zero or ≥1 means the fault always applies.
	Rate float64
}

// Hooks carries the fault injection points threaded through the flow
// configuration. A nil *Hooks injects nothing.
type Hooks struct {
	Faults []Fault
	// Seed seeds the RNG behind probabilistic (Rate) faults; 0 means 1.
	Seed int64

	mu  sync.Mutex
	rng *rand.Rand
}

// roll draws one uniform [0,1) variate from the hooks' seeded RNG,
// initializing it from Seed on first use.
func (h *Hooks) roll() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.rng == nil {
		seed := h.Seed
		if seed == 0 {
			seed = 1
		}
		h.rng = rand.New(rand.NewSource(seed))
	}
	return h.rng.Float64()
}

// InjectedCounter is the obs counter bumped every time a fault
// actually applies (Prometheus: casyn_faults_injected_total) — the
// chaos suite's ground truth for how much failure it really injected.
const InjectedCounter = "faults.injected"

// fire applies the first matching fault. It may sleep, panic, or
// return an error to be treated as the stage's failure.
func (h *Hooks) fire(ctx context.Context, stage Stage, k float64) error {
	if h == nil {
		return nil
	}
	for i := range h.Faults {
		f := &h.Faults[i]
		if f.Stage != stage || (!f.AllK && f.K != k) {
			continue
		}
		if f.Rate > 0 && f.Rate < 1 && h.roll() >= f.Rate {
			// The transient fault spared this execution; later faults in
			// the list still get their chance.
			continue
		}
		obs.From(ctx).Add(InjectedCounter, 1)
		if f.Delay > 0 {
			t := time.NewTimer(f.Delay)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		}
		if f.Panic != nil {
			panic(f.Panic)
		}
		if f.Err != nil {
			return f.Err
		}
		return nil
	}
	return nil
}

// SpanName is the observability span a stage records under
// ("stage.<name>"); flow.Metrics and the golden fingerprints key stage
// timings by it.
func SpanName(stage Stage) string { return "stage." + string(stage) }

// Run executes one pipeline stage with fault isolation: an optional
// wall-clock budget (0 means none) is applied as a context deadline, a
// panic inside fn is recovered into a typed *StageError, and any error
// out of fn is tagged with the stage and K. The context passed to fn
// carries the budget; fn is expected to check it cooperatively.
//
// Run is also where stage wall time is measured, exactly once: when
// the context carries an *obs.Recorder, the stage runs inside a span
// named SpanName(stage) tagged with K. The span ends even when fn
// fails, times out, or panics, so a budget-blown iteration still
// reports how long each stage actually ran — consumers (flow.Metrics)
// read these spans instead of re-measuring around Run.
func Run[T any](ctx context.Context, stage Stage, k float64, budget time.Duration, hooks *Hooks, fn func(context.Context) (T, error)) (out T, err error) {
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	ctx, span := obs.From(ctx).StartSpan(ctx, SpanName(stage))
	span.SetK(k)
	// Registered before the recover defer so it runs after it (LIFO)
	// and sees the final err, panics included.
	defer func() { span.End(err) }()
	defer func() {
		if r := recover(); r != nil {
			err = &StageError{
				Stage:      stage,
				K:          k,
				Err:        fmt.Errorf("panic: %v", r),
				Panicked:   true,
				PanicValue: r,
				Stack:      debug.Stack(),
			}
		}
	}()
	if herr := hooks.fire(ctx, stage, k); herr != nil {
		return out, &StageError{Stage: stage, K: k, Err: herr}
	}
	out, ferr := fn(ctx)
	if ferr != nil {
		// A stage that aborted on its budget often surfaces the bare
		// wrapped ctx error; prefer the deadline cause when present so
		// Timeout() answers correctly even if fn wrapped loosely.
		if ctx.Err() != nil && !errors.Is(ferr, ctx.Err()) {
			ferr = fmt.Errorf("%w (%v)", ctx.Err(), ferr)
		}
		return out, &StageError{Stage: stage, K: k, Err: ferr}
	}
	return out, nil
}

package experiments

import (
	"context"
	"fmt"

	"casyn/internal/bench"
	"casyn/internal/cover"
	"casyn/internal/flow"
	"casyn/internal/geom"
	"casyn/internal/mapper"
	"casyn/internal/partition"
	"casyn/internal/place"
	"casyn/internal/subject"
)

// Figure1Mapping describes one of Figure 1's two mappings.
type Figure1Mapping struct {
	Label    string
	Cells    []string
	CellArea float64
	// Wire is the covering wire estimate (µm) — the total fanin
	// interconnection length of the selected matches.
	Wire float64
}

// Figure1 reproduces the paper's Figure 1 example: a small unbound
// netlist whose minimum-area cover (NAND3 + AOI21 + INV — the paper's
// cell mix) connects fanins placed far from their fanout, while the
// congestion-aware cover pays cell area to keep every cell next to its
// fanins and cuts the interconnection length by about a third.
func Figure1() (minArea, congestion Figure1Mapping, err error) {
	d := subject.New()
	a := d.AddPI("a")
	b := d.AddPI("b")
	c := d.AddPI("c")
	e := d.AddPI("d")
	f := d.AddPI("e")
	// AOI21 cone: p = (ab + c)'.
	n1 := d.AddNand2(a, b)
	i1 := d.AddInv(c)
	n2 := d.AddNand2(n1, i1)
	i2 := d.AddInv(n2)
	// NAND3 cone over (p, d', e). The minimum-area cover of this
	// netlist is NAND3 + AOI21 + INV — the paper's Figure 1 cell mix
	// (its second inverter belongs to surrounding logic the figure
	// crops away).
	id := d.AddInv(e)
	n3 := d.AddNand2(id, f)
	i5 := d.AddInv(n3)
	out := d.AddNand2(i2, i5)
	d.AddOutput("out", out)

	// Placement: the AOI21 cluster on the left, d/e and their gates
	// far right — so the min-area NAND3 stretches across the image
	// while smaller cells could sit next to their fanins.
	pos := make([]geom.Point, d.NumGates())
	left := geom.Pt(10, 20)
	for _, g := range []int{a, b, c, n1, i1, n2, i2} {
		pos[g] = left
		left = left.Add(geom.Pt(4, 0))
	}
	right := geom.Pt(150, 20)
	for _, g := range []int{e, f, id, n3, i5} {
		pos[g] = right
		right = right.Add(geom.Pt(4, 0))
	}
	pos[out] = geom.Pt(40, 20)

	runOnce := func(k float64, label string) (Figure1Mapping, error) {
		res, err := mapper.Map(context.Background(), d, mapper.Input{Pos: pos}, mapper.Options{K: k})
		if err != nil {
			return Figure1Mapping{}, err
		}
		m := Figure1Mapping{Label: label, CellArea: res.CellArea, Wire: res.WireEstimate}
		for i := range res.Netlist.Instances {
			m.Cells = append(m.Cells, res.Netlist.Instances[i].Cell.Name)
		}
		return m, nil
	}
	minArea, err = runOnce(0, "minimum area")
	if err != nil {
		return
	}
	congestion, err = runOnce(5, "congestion minimization")
	return
}

// Figure3Result is the outcome of the modified design-flow demo.
type Figure3Result struct {
	Iterations []flow.Iteration
	AcceptedK  float64
	Routable   bool
}

// Figure3 demonstrates the paper's modified ASIC design flow: the
// technology-independent netlist is placed once, then K is increased
// until the congestion map is acceptable (the flow stops at the first
// routable mapping). scale shrinks the circuit for tests/benchmarks;
// tighten > 1 shrinks the die by that factor so the early iterations
// are congested (pass 1 for the standard floorplan).
func Figure3(ctx context.Context, class bench.Class, scale, tighten float64) (*Figure3Result, error) {
	d, err := buildSubject(class, scale, bench.Direct)
	if err != nil {
		return nil, err
	}
	layout, err := sweepLayout(ctx, class, scale, d)
	if err != nil {
		return nil, err
	}
	if tighten > 1 {
		layout, err = place.NewLayout(layout.Area()/tighten, 1.0, layout.RowHeight)
		if err != nil {
			return nil, err
		}
	}
	cfg := flow.Config{
		Layout:              layout,
		PlaceOpts:           PlaceOpts(),
		RouteOpts:           RouteOpts(),
		FreshPlacement:      true,
		KSchedule:           KSchedule(),
		StopAtFirstRoutable: true,
	}
	pc, err := flow.Prepare(ctx, d, cfg)
	if err != nil {
		return nil, err
	}
	res, err := flow.Run(ctx, pc, cfg)
	if err != nil {
		return nil, err
	}
	out := &Figure3Result{Iterations: res.Iterations}
	if best := res.Best(); best != nil {
		out.AcceptedK = best.K
		out.Routable = best.FailedConnections == 0
	}
	return out, nil
}

// Ablations (DESIGN.md): partitioning scheme, WIRE2 scope, and the
// transitive-fanin cost the paper criticizes, all at a mid-ladder K.

// AblationRow reports one ablation variant.
type AblationRow struct {
	Variant      string
	CellArea     float64
	NumCells     int
	WireEstimate float64
	Violations   int
}

// PartitionAblation maps the class circuit at the given K under each
// partitioning scheme.
func PartitionAblation(ctx context.Context, class bench.Class, scale, k float64) ([]AblationRow, error) {
	d, err := buildSubject(class, scale, bench.Direct)
	if err != nil {
		return nil, err
	}
	layout, err := sweepLayout(ctx, class, scale, d)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, m := range []struct {
		label  string
		method partition.Method
	}{
		{"pdp", partition.PDP},
		{"dagon", partition.Dagon},
		{"cone", partition.Cone},
	} {
		cfg := flow.Config{
			Layout:         layout,
			PlaceOpts:      PlaceOpts(),
			RouteOpts:      RouteOpts(),
			FreshPlacement: true,
			Method:         m.method,
		}
		pc, err := flow.Prepare(ctx, d, cfg)
		if err != nil {
			return nil, err
		}
		it, err := flow.RunOnce(ctx, pc, k, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s: %w", m.label, err)
		}
		rows = append(rows, AblationRow{
			Variant:    m.label,
			CellArea:   it.CellArea,
			NumCells:   it.NumCells,
			Violations: it.FailedConnections,
		})
	}
	return rows, nil
}

// WireCostAblation compares the paper's two-level WIRE scope against
// WIRE1-only and the transitive accumulation of Pedram–Bhat [9].
func WireCostAblation(ctx context.Context, class bench.Class, scale, k float64) ([]AblationRow, error) {
	d, err := buildSubject(class, scale, bench.Direct)
	if err != nil {
		return nil, err
	}
	layout, err := sweepLayout(ctx, class, scale, d)
	if err != nil {
		return nil, err
	}
	pos, poPads, _, _, err := mapper.SubjectPlacement(ctx, d, layout, PlaceOpts())
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, v := range []struct {
		label string
		opts  cover.Options
	}{
		{"two-level (paper)", cover.Options{K: k}},
		{"wire1-only", cover.Options{K: k, NoWire2: true}},
		{"transitive [9]", cover.Options{K: k, TransitiveWire: true}},
	} {
		res, err := mapper.Map(ctx, d, mapper.Input{Pos: pos, POPads: poPads}, mapper.Options{
			K:              v.opts.K,
			TransitiveWire: v.opts.TransitiveWire,
			NoWire2:        v.opts.NoWire2,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Variant:      v.label,
			CellArea:     res.CellArea,
			NumCells:     res.NumCells,
			WireEstimate: res.WireEstimate,
		})
	}
	return rows, nil
}

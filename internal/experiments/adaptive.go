package experiments

// Adaptive-vs-ladder comparison: the closed-loop congestion controller
// (flow.RunAdaptive) against the paper's open-loop 14-rung K ladder on
// the same congested operating point. The ladder spends one full
// map/place/route iteration per rung and picks the best; the
// controller spends one baseline iteration plus at most two steered
// steps. The comparison runs with seeded placement — the controller's
// operating mode, where its region-local feedback is meaningful — and
// both arms share the identical prepared context.

import (
	"context"
	"fmt"
	"io"

	"casyn/internal/bench"
	"casyn/internal/flow"
	"casyn/internal/library"
	"casyn/internal/place"
)

// AdaptiveRow is one routed iteration of the closed loop.
type AdaptiveRow struct {
	Iteration   int
	CellArea    float64 // µm²
	NumCells    int
	Utilization float64 // fraction
	Violations  int     // failed connections (detailed-router analogue)
	Overflow    int     // raw track overflow
	Routable    bool
	// Controller state that produced this iteration (zero for the
	// baseline): cells inflated this step / in total, the field's
	// largest multiplier, and the re-cover's dirty/reused tree split.
	ChangedCells  int
	InflatedCells int
	MaxMult       float64
	DirtyTrees    int
	ReusedTrees   int
}

// AdaptiveVsLadderResult is the full comparison on one operating
// point.
type AdaptiveVsLadderResult struct {
	Class  bench.Class
	Layout place.Layout
	// Ladder is the open-loop table (one row per K rung) and
	// LadderBest the index of its accepted rung.
	Ladder     []KRow
	LadderBest int
	// Adaptive is the closed-loop trajectory and AdaptiveBest the index
	// of its accepted iteration.
	Adaptive     []AdaptiveRow
	AdaptiveBest int
	Converged    bool
}

// CoveringIterationsSaved reports the headline ratio: full
// map/place/route iterations the ladder spent per iteration the
// closed loop spent.
func (r *AdaptiveVsLadderResult) CoveringIterationsSaved() float64 {
	if len(r.Adaptive) == 0 {
		return 0
	}
	return float64(len(r.Ladder)) / float64(len(r.Adaptive))
}

// AdaptiveVsLadder runs both arms on one congested operating point:
// the class circuit at the given scale, die sized so the mapped cells
// sit at ~tightness utilization, and router capacity scaled by
// capacityScale (the congestion knob — below the calibrated 1.98 the
// die congests and K begins to matter). Both arms run with seeded
// placement from one shared prepared context, so every difference in
// the tables is attributable to how K is chosen, not to placement
// noise.
func AdaptiveVsLadder(ctx context.Context, class bench.Class, scale, tightness, capacityScale float64, workers int) (*AdaptiveVsLadderResult, error) {
	if tightness <= 0 || tightness >= 1 {
		return nil, fmt.Errorf("experiments: tightness %g outside (0,1)", tightness)
	}
	d, err := buildSubject(class, scale, bench.Direct)
	if err != nil {
		return nil, err
	}
	area := float64(d.BaseGateCount()) * 4.6 / tightness
	layout, err := place.NewLayout(area, 1.0, library.RowHeight)
	if err != nil {
		return nil, err
	}
	ropts := RouteOpts()
	if capacityScale > 0 {
		ropts.CapacityScale = capacityScale
	}
	cfg := flow.Config{
		Layout:         layout,
		Lib:            library.Default(),
		PlaceOpts:      PlaceOpts(),
		RouteOpts:      ropts,
		FreshPlacement: false,
		KSchedule:      KSchedule(),
		Workers:        workers,
	}
	pc, err := flow.Prepare(ctx, d, cfg)
	if err != nil {
		return nil, err
	}
	if err := flow.PrepareMapping(ctx, pc, cfg); err != nil {
		return nil, fmt.Errorf("experiments: %s adaptive-vs-ladder: %w", class, err)
	}
	res := &AdaptiveVsLadderResult{Class: class, Layout: layout}

	fres, err := flow.Run(ctx, pc, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s ladder arm: %w", class, err)
	}
	res.LadderBest = fres.BestIndex
	for _, it := range fres.Iterations {
		res.Ladder = append(res.Ladder, KRow{
			K:           it.K,
			CellArea:    it.CellArea,
			NumCells:    it.NumCells,
			Utilization: it.Utilization,
			Violations:  it.FailedConnections,
			Overflow:    it.Violations,
			Routable:    it.Routable,
			Failed:      it.Skipped,
			Err:         it.Err,
		})
	}

	ares, err := flow.RunAdaptive(ctx, pc, cfg, flow.AdaptiveConfig{})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s adaptive arm: %w", class, err)
	}
	res.AdaptiveBest = ares.BestIndex
	res.Converged = ares.Converged
	for i, ai := range ares.Iterations {
		res.Adaptive = append(res.Adaptive, AdaptiveRow{
			Iteration:     i,
			CellArea:      ai.CellArea,
			NumCells:      ai.NumCells,
			Utilization:   ai.Utilization,
			Violations:    ai.FailedConnections,
			Overflow:      ai.Violations,
			Routable:      ai.Routable,
			ChangedCells:  ai.ChangedCells,
			InflatedCells: ai.InflatedCells,
			MaxMult:       ai.MaxMult,
			DirtyTrees:    ai.DirtyTrees,
			ReusedTrees:   ai.ReusedTrees,
		})
	}
	return res, nil
}

// WriteTable renders the comparison in the style of the paper's
// tables: the full open-loop ladder, then the closed-loop trajectory
// with its controller columns, then the verdict line.
func (r *AdaptiveVsLadderResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "%s adaptive vs ladder — die %.0f µm², %d rows\n\n", r.Class, r.Layout.Area(), r.Layout.NumRows)
	fmt.Fprintf(w, "open-loop ladder (%d rungs):\n", len(r.Ladder))
	fmt.Fprintf(w, "  %-9s %-12s %-9s %-8s %-10s\n", "K", "Cell Area", "Cells", "Util%", "Violations")
	for i, row := range r.Ladder {
		mark := " "
		if i == r.LadderBest {
			mark = "*"
		}
		if row.Failed {
			fmt.Fprintf(w, " %s%-9g FAILED: %v\n", mark, row.K, row.Err)
			continue
		}
		fmt.Fprintf(w, " %s%-9g %-12.0f %-9d %-8.2f %-10d\n",
			mark, row.K, row.CellArea, row.NumCells, row.Utilization*100, row.Violations)
	}
	fmt.Fprintf(w, "\nclosed loop (%d routed iterations, converged=%v):\n", len(r.Adaptive), r.Converged)
	fmt.Fprintf(w, "  %-4s %-12s %-9s %-8s %-10s %-8s %-9s %-12s\n",
		"it", "Cell Area", "Cells", "Util%", "Violations", "MaxMult", "Inflated", "Dirty/Reused")
	for i, row := range r.Adaptive {
		mark := " "
		if i == r.AdaptiveBest {
			mark = "*"
		}
		fmt.Fprintf(w, " %s%-4d %-12.0f %-9d %-8.2f %-10d %-8.1f %-9d %d/%d\n",
			mark, row.Iteration, row.CellArea, row.NumCells, row.Utilization*100,
			row.Violations, row.MaxMult, row.InflatedCells, row.DirtyTrees, row.ReusedTrees)
	}
	fmt.Fprintf(w, "\ncovering iterations: ladder %d, adaptive %d (%.1fx fewer)\n",
		len(r.Ladder), len(r.Adaptive), r.CoveringIterationsSaved())
}

package experiments

import (
	"testing"
)

// Probe: run KWayPressure across several seeds to see whether chained
// replication ever aborts the run.
func TestKWayChainProbe(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		row, err := KWayPressure(20_000, 64, 4, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		t.Logf("seed %d: replicas=%d moves=%d cut %d->%d", seed, row.Replicas, row.Moves, row.CutNetsBisect, row.CutNetsKWay)
	}
}

package experiments

import (
	"context"
	"strings"
	"testing"

	"casyn/internal/bench"
)

// TestKWayVsBisect pins the PR's acceptance criterion: on at least
// two bench circuits, direct k-way moves with replication strictly
// reduce both the cut-net count and the Steiner cost relative to the
// recursive-bisection seed, with the replicated subject proven
// equivalent (KWayVsBisect runs the flow with Verify on, so an
// inequivalent replication fails the call outright).
func TestKWayVsBisect(t *testing.T) {
	if testing.Short() {
		t.Skip("full flow per circuit; skipped in -short")
	}
	for _, tc := range []struct {
		class bench.Class
		dies  int
	}{
		{bench.SPLA, 2},
		{bench.PDC, 2},
	} {
		row, err := KWayVsBisect(context.Background(), tc.class, 0.05, tc.dies, 1)
		if err != nil {
			t.Fatalf("%v: %v", tc.class, err)
		}
		t.Logf("%v: %+v", tc.class, *row)
		if row.CutNetsKWay >= row.CutNetsBisect {
			t.Errorf("%v: cut nets %d not strictly below the bisection seed %d",
				tc.class, row.CutNetsKWay, row.CutNetsBisect)
		}
		if row.SteinerKWay >= row.SteinerBisect {
			t.Errorf("%v: Steiner cost %.1f not strictly below the bisection seed %.1f",
				tc.class, row.SteinerKWay, row.SteinerBisect)
		}
		if row.Replicas > 0 && !row.Verified {
			t.Errorf("%v: %d replicas but no equivalence proof recorded", tc.class, row.Replicas)
		}
		if !row.Routed {
			t.Errorf("%v: end-to-end row not routed", tc.class)
		}
	}
}

// TestKWayPressure smoke-checks the synthetic scaling row: the
// partitioner must complete and never score worse than its seed.
func TestKWayPressure(t *testing.T) {
	row, err := KWayPressure(20_000, 64, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if row.CutNetsKWay > row.CutNetsBisect || row.SteinerKWay > row.SteinerBisect {
		t.Errorf("k-way scored worse than its seed: %+v", *row)
	}
	if !strings.HasPrefix(row.Circuit, "synthetic-") {
		t.Errorf("circuit label %q", row.Circuit)
	}
}

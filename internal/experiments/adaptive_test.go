package experiments

import (
	"context"
	"strings"
	"testing"

	"casyn/internal/bench"
)

// TestAdaptiveVsLadderScaled runs the comparison on the calibrated
// congested operating point (SPLA, 55% target utilization, capacity
// 1.3) at test scale: both arms must complete, the closed loop must
// stay within its routed budget, and its accepted iteration must be
// no worse than the ladder's accepted rung.
func TestAdaptiveVsLadderScaled(t *testing.T) {
	t.Parallel()
	res, err := AdaptiveVsLadder(context.Background(), bench.SPLA, 0.05, 0.55, 1.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ladder) != len(KSchedule()) {
		t.Fatalf("%d ladder rows, want %d", len(res.Ladder), len(KSchedule()))
	}
	if len(res.Adaptive) == 0 || len(res.Adaptive) > 3 {
		t.Fatalf("%d adaptive iterations, budget is 3", len(res.Adaptive))
	}
	if !res.Converged {
		t.Error("closed loop did not converge")
	}
	lbest, abest := res.Ladder[res.LadderBest], res.Adaptive[res.AdaptiveBest]
	if lbest.Routable && !abest.Routable {
		t.Errorf("ladder routed but adaptive did not (viol=%d)", abest.Violations)
	}
	if !abest.Routable && abest.Violations > lbest.Violations {
		t.Errorf("adaptive best %d violations, ladder best %d", abest.Violations, lbest.Violations)
	}
	if saved := res.CoveringIterationsSaved(); saved < 3 {
		t.Errorf("covering-iteration saving %.1fx, want >= 3x", saved)
	}

	var sb strings.Builder
	res.WriteTable(&sb)
	out := sb.String()
	for _, want := range []string{"open-loop ladder", "closed loop", "covering iterations"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	t.Logf("\n%s", out)
}

// TestAdaptiveVsLadderRejectsBadTightness pins the parameter contract.
func TestAdaptiveVsLadderRejectsBadTightness(t *testing.T) {
	t.Parallel()
	if _, err := AdaptiveVsLadder(context.Background(), bench.SPLA, 0.05, 0, 1.3, 1); err == nil {
		t.Error("tightness 0 did not error")
	}
	if _, err := AdaptiveVsLadder(context.Background(), bench.SPLA, 0.05, 1.5, 1.3, 1); err == nil {
		t.Error("tightness 1.5 did not error")
	}
}

package experiments

import (
	"context"

	"testing"

	"casyn/internal/bench"
)

// Scaled-down experiment runs keep the suite fast; the full-size runs
// live in the cmd tools and the repository benchmarks.
const testScale = 0.08

func TestKSweepScaledShape(t *testing.T) {
	t.Parallel()
	res, err := KSweep(context.Background(), bench.SPLA, testScale, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(KSchedule()) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(KSchedule()))
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	// Cell area and count grow substantially across the ladder.
	if last.CellArea <= first.CellArea*1.1 {
		t.Errorf("area did not grow across ladder: %.0f -> %.0f", first.CellArea, last.CellArea)
	}
	if last.NumCells <= first.NumCells {
		t.Errorf("cell count did not grow: %d -> %d", first.NumCells, last.NumCells)
	}
	// Utilization tracks area on the fixed die.
	if last.Utilization <= first.Utilization {
		t.Error("utilization did not grow")
	}
	for _, r := range res.Rows {
		if r.Routable != (r.Violations == 0) {
			t.Errorf("K=%g: Routable flag inconsistent", r.K)
		}
	}
}

func TestTable1Scaled(t *testing.T) {
	t.Parallel()
	rows, layout, err := Table1(context.Background(), testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Label != "SIS" || rows[1].Label != "DAGON" {
		t.Fatalf("rows = %+v", rows)
	}
	// The paper's area relation: SIS cell area below DAGON's.
	if rows[0].CellArea >= rows[1].CellArea {
		t.Errorf("SIS area %.0f not below DAGON %.0f", rows[0].CellArea, rows[1].CellArea)
	}
	if layout.NumRows == 0 {
		t.Error("degenerate layout")
	}
	for _, r := range rows {
		if r.Utilization <= 0 || r.Utilization > 1.1 {
			t.Errorf("%s utilization %.3f out of range", r.Label, r.Utilization)
		}
	}
}

func TestFigure1Invariants(t *testing.T) {
	t.Parallel()
	minArea, congestion, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if congestion.CellArea <= minArea.CellArea {
		t.Errorf("congestion cover area %.3f not above min area %.3f",
			congestion.CellArea, minArea.CellArea)
	}
	if congestion.Wire >= minArea.Wire {
		t.Errorf("congestion cover wire %.1f not below min-area wire %.1f",
			congestion.Wire, minArea.Wire)
	}
	// The min-area cover is the paper's cell mix.
	counts := map[string]int{}
	for _, c := range minArea.Cells {
		counts[c]++
	}
	if counts["NAND3"] != 1 || counts["AOI21"] != 1 || counts["INV"] != 1 {
		t.Errorf("min-area cells = %v, want NAND3+AOI21+INV", minArea.Cells)
	}
}

func TestFigure3Scaled(t *testing.T) {
	t.Parallel()
	res, err := Figure3(context.Background(), bench.SPLA, testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) == 0 {
		t.Fatal("no iterations")
	}
	// With the standard floorplan the flow accepts an early K.
	if res.Routable && res.AcceptedK > 0.01 {
		t.Errorf("accepted K unexpectedly large: %g", res.AcceptedK)
	}
}

func TestSTATableScaled(t *testing.T) {
	t.Parallel()
	rows, err := STATable(context.Background(), bench.SPLA, testScale, 0.001, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	labels := []string{"K=0", "K=0.001", "SIS"}
	for i, r := range rows {
		if r.Label != labels[i] {
			t.Errorf("row %d label %q", i, r.Label)
		}
		if r.Arrival <= 0 {
			t.Errorf("%s arrival %.3f", r.Label, r.Arrival)
		}
		if r.SameK0PathArrival <= 0 {
			t.Errorf("%s same-path arrival missing", r.Label)
		}
		if r.NumRows == 0 || r.ChipArea <= 0 {
			t.Errorf("%s floorplan missing", r.Label)
		}
	}
	// The same-path column of the K=0 row is its own critical path.
	if rows[0].SameK0PathArrival != rows[0].Arrival {
		t.Errorf("K=0 same-path %.3f != arrival %.3f", rows[0].SameK0PathArrival, rows[0].Arrival)
	}
}

func TestPartitionAblationScaled(t *testing.T) {
	t.Parallel()
	rows, err := PartitionAblation(context.Background(), bench.SPLA, testScale, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.NumCells == 0 || r.CellArea <= 0 {
			t.Errorf("%s degenerate: %+v", r.Variant, r)
		}
	}
}

func TestWireCostAblationScaled(t *testing.T) {
	t.Parallel()
	rows, err := WireCostAblation(context.Background(), bench.SPLA, testScale, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Scope monotonicity: wire1-only <= two-level <= transitive on the
	// reported estimate.
	if rows[1].WireEstimate > rows[0].WireEstimate+1e-6 {
		t.Errorf("wire1-only estimate %.1f above two-level %.1f",
			rows[1].WireEstimate, rows[0].WireEstimate)
	}
	if rows[0].WireEstimate > rows[2].WireEstimate+1e-6 {
		t.Errorf("two-level estimate %.1f above transitive %.1f",
			rows[0].WireEstimate, rows[2].WireEstimate)
	}
}

func TestCalibrationConstants(t *testing.T) {
	t.Parallel()
	ro := RouteOpts()
	if ro.CapacityScale != CapacityScale || ro.GCellSize != GCellSize {
		t.Error("RouteOpts does not carry the calibration")
	}
	po := PlaceOpts()
	if po.Seed != PlacementSeed || po.RefinePasses != RefinePasses {
		t.Error("PlaceOpts does not carry the calibration")
	}
}

package experiments

// The k-way partitioning experiment: direct k-way FM moves plus
// cut-driver replication versus the recursive-bisection seed, on the
// Steiner-tree cut metric the router actually pays (see "A Direct
// k-Way Hypergraph Partitioning Algorithm for Optimizing the Steiner
// Tree Metric" and RePart in PAPERS.md). Two kinds of rows:
//
//   - End-to-end rows (KWayVsBisect): a bench circuit through the real
//     flow twice over the same die regions — once mapped from the
//     bisection-seed assignment (a zero-move k-way run, bit-identical
//     to today's forest), once from the moved + replicated partition —
//     comparing cut nets, Steiner cost, and routed overflow.
//   - Pressure rows (KWayPressure): synthetic 100k/250k-gate subjects,
//     partition metrics only, pinning the scaling behavior promised in
//     ROADMAP item 3's spirit for the partitioner itself.

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"casyn/internal/bench"
	"casyn/internal/flow"
	"casyn/internal/geom"
	"casyn/internal/library"
	"casyn/internal/mapper"
	"casyn/internal/partition"
	"casyn/internal/place"
	"casyn/internal/subject"
)

// KWayRow is one circuit's bisection-versus-k-way comparison.
type KWayRow struct {
	// Circuit names the subject ("SPLA", "PDC", "synthetic-100000").
	Circuit string `json:"circuit"`
	// Gates is the live base-gate count; Trees the forest size.
	Gates int `json:"gates"`
	Trees int `json:"trees"`
	// K is the region (die) count.
	K int `json:"k"`
	// CutNetsBisect/SteinerBisect score the recursive-bisection seed
	// assignment; CutNetsKWay/SteinerKWay the moved + replicated one.
	CutNetsBisect int     `json:"cut_nets_bisect"`
	SteinerBisect float64 `json:"steiner_bisect"`
	CutNetsKWay   int     `json:"cut_nets_kway"`
	SteinerKWay   float64 `json:"steiner_kway"`
	// Moves counts accepted FM moves; Replicas the cut drivers cloned
	// across the boundary.
	Moves    int `json:"moves"`
	Replicas int `json:"replicas"`
	// Verified reports that the replicated subject was proven
	// equivalent to the original (always attempted on end-to-end rows
	// with replicas; skipped on pressure rows).
	Verified bool `json:"verified,omitempty"`
	// Routed marks end-to-end rows; the overflow fields compare the
	// routed failed connections of the two arms over identical die
	// regions (boundary-derated, pin budget unchecked).
	Routed          bool `json:"routed,omitempty"`
	OverflowBisect  int  `json:"overflow_bisect,omitempty"`
	OverflowKWay    int  `json:"overflow_kway,omitempty"`
	CrossNetsBisect int  `json:"cross_nets_bisect,omitempty"`
	CrossNetsKWay   int  `json:"cross_nets_kway,omitempty"`
}

// KWayVsBisect runs one bench circuit end to end through both arms on
// identical die regions and returns the comparison row. The bisection
// arm maps the seed forest unchanged (the zero-move k-way identity)
// and routes it with the same boundary derate as the k-way arm, so
// the overflow delta isolates the partitioning change.
func KWayVsBisect(ctx context.Context, class bench.Class, scale float64, dies, workers int) (*KWayRow, error) {
	if dies < 2 {
		return nil, fmt.Errorf("experiments: KWayVsBisect needs dies >= 2 (got %d)", dies)
	}
	d, err := buildSubject(class, scale, bench.Direct)
	if err != nil {
		return nil, err
	}
	lib := library.Default()
	layout, err := place.NewLayout(float64(d.BaseGateCount())*4.6/0.58, 1.0, library.RowHeight)
	if err != nil {
		return nil, err
	}
	cfg := flow.Config{
		Layout:            layout,
		Lib:               lib,
		Dies:              dies,
		InterDiePinBudget: -1, // measure overflow, not admission
		PlaceOpts:         PlaceOpts(),
		RouteOpts:         RouteOpts(),
		FreshPlacement:    true,
		KSchedule:         []float64{0},
		Workers:           workers,
		Verify:            true, // prove the replicated subject equivalent
	}
	pc, err := flow.Prepare(ctx, d, cfg)
	if err != nil {
		return nil, err
	}

	// Shared seed forest; the k-way arm is the production PrepareMapping
	// path (moves + replication + equivalence proof).
	forest, err := partition.Partition(partition.Input{
		DAG: pc.DAG, Pos: pc.Pos, POPads: pc.POPads,
	}, cfg.Method)
	if err != nil {
		return nil, err
	}
	pcK := *pc
	if err := flow.PrepareMapping(ctx, &pcK, cfg); err != nil {
		return nil, err
	}
	kres := pcK.KWay
	if kres == nil {
		return nil, fmt.Errorf("experiments: multi-die prepare produced no k-way result")
	}

	// Bisection arm: zero-move k-way (bit-identical forest) mapped and
	// routed over the same regions.
	seed, err := partition.KWay(pc.DAG, forest, partition.KWayOptions{
		K: dies, Die: layout.Die, Pos: pc.Pos, POPads: pc.POPads, MovePasses: -1,
	})
	if err != nil {
		return nil, err
	}
	prepB, err := mapper.PrepareForest(ctx, pc.DAG, forest,
		mapper.Input{Pos: pc.Pos, POPads: pc.POPads},
		mapper.Options{Method: cfg.Method, Lib: lib, Workers: workers})
	if err != nil {
		return nil, err
	}
	pcB := *pc
	pcB.Prep = prepB
	pcB.Regions = seed.Regions
	pcB.KWay = seed

	itB, err := flow.RunOnce(ctx, &pcB, 0, cfg)
	flow.MergeMetrics(ctx, itB.Metrics)
	if err != nil {
		return nil, fmt.Errorf("experiments: bisection arm: %w", err)
	}
	itK, err := flow.RunOnce(ctx, &pcK, 0, cfg)
	flow.MergeMetrics(ctx, itK.Metrics)
	if err != nil {
		return nil, fmt.Errorf("experiments: k-way arm: %w", err)
	}

	stats := forest.Stats(pc.DAG)
	return &KWayRow{
		Circuit:         class.String(),
		Gates:           stats.TreeGates,
		Trees:           len(forest.Roots),
		K:               dies,
		CutNetsBisect:   kres.CutNetsSeed,
		SteinerBisect:   kres.SteinerSeed,
		CutNetsKWay:     kres.CutNets,
		SteinerKWay:     kres.Steiner,
		Moves:           kres.Moves,
		Replicas:        kres.Replicas,
		Verified:        kres.Replicas > 0, // PrepareMapping proved it (cfg.Verify)
		Routed:          true,
		OverflowBisect:  itB.FailedConnections,
		OverflowKWay:    itK.FailedConnections,
		CrossNetsBisect: itB.CrossRegionNets,
		CrossNetsKWay:   itK.CrossRegionNets,
	}, nil
}

// KWayPressure partitions a synthetic subject of the given size —
// partition metrics only, no covering or routing — so the benchmark
// tracks the partitioner's behavior at 100k/250k gates without paying
// a full flow at that scale. MovePasses is capped at 1 to bound the
// benchmark's wall clock; the metrics are monotone in passes, so this
// is a conservative reading of the k-way gain.
func KWayPressure(gates, pis, dies int, seed int64) (*KWayRow, error) {
	if dies < 2 {
		return nil, fmt.Errorf("experiments: KWayPressure needs dies >= 2 (got %d)", dies)
	}
	d, pos, die, err := syntheticSubject(gates, pis, seed)
	if err != nil {
		return nil, err
	}
	forest, err := partition.Partition(partition.Input{DAG: d, Pos: pos}, partition.PDP)
	if err != nil {
		return nil, err
	}
	kres, err := partition.KWay(d, forest, partition.KWayOptions{
		K: dies, Die: die, Pos: pos, MovePasses: 1, Replicate: true,
	})
	if err != nil {
		return nil, err
	}
	stats := forest.Stats(d)
	return &KWayRow{
		Circuit:       fmt.Sprintf("synthetic-%d", gates),
		Gates:         stats.TreeGates,
		Trees:         len(forest.Roots),
		K:             dies,
		CutNetsBisect: kres.CutNetsSeed,
		SteinerBisect: kres.SteinerSeed,
		CutNetsKWay:   kres.CutNets,
		SteinerKWay:   kres.Steiner,
		Moves:         kres.Moves,
		Replicas:      kres.Replicas,
	}, nil
}

// syntheticSubject builds a deterministic random NAND/INV DAG with
// scattered positions on a die sized for 58% utilization — the same
// shape the partitioner's pressure tests use, as a library function so
// the benchmark can reach it.
func syntheticSubject(gates, pis int, seed int64) (*subject.DAG, []geom.Point, geom.Rect, error) {
	rng := rand.New(rand.NewSource(seed))
	d := subject.New()
	ids := make([]int, 0, pis+gates)
	for i := 0; i < pis; i++ {
		ids = append(ids, d.AddPI(fmt.Sprintf("pi%d", i)))
	}
	pick := func() int {
		// Bias toward recent gates so the DAG has depth as well as
		// multi-fanout reconvergence.
		w := len(ids)
		if w > 64 && rng.Intn(4) != 0 {
			return ids[w-64+rng.Intn(64)]
		}
		return ids[rng.Intn(w)]
	}
	for i := 0; i < gates; i++ {
		a, b := pick(), pick()
		var g int
		if a != b && rng.Intn(8) == 0 {
			g = d.AddInv(a)
		} else {
			g = d.AddNand2(a, b)
		}
		ids = append(ids, g)
	}
	// A handful of outputs keeps most of the DAG live.
	for i := 0; i < 8 && i < len(ids); i++ {
		d.AddOutput(fmt.Sprintf("po%d", i), ids[len(ids)-1-i])
	}
	layout, err := place.NewLayout(float64(d.BaseGateCount())*4.6/0.58, 1.0, library.RowHeight)
	if err != nil {
		return nil, nil, geom.Rect{}, err
	}
	die := layout.Die
	pos := make([]geom.Point, d.NumGates())
	for i := range pos {
		pos[i] = geom.Pt(die.Min.X+rng.Float64()*die.W(), die.Min.Y+rng.Float64()*die.H())
	}
	return d, pos, die, nil
}

// WriteKWayTable prints the comparison in the experiments' table
// style.
func WriteKWayTable(w io.Writer, rows []KWayRow) {
	fmt.Fprintf(w, "%-16s %8s %6s %3s | %9s %9s %12s %12s | %6s %8s | %9s %9s\n",
		"circuit", "gates", "trees", "k",
		"cut(bis)", "cut(kway)", "st(bis)", "st(kway)",
		"moves", "replicas", "ovfl(bis)", "ovfl(kway)")
	for _, r := range rows {
		ovB, ovK := "-", "-"
		if r.Routed {
			ovB = fmt.Sprintf("%d", r.OverflowBisect)
			ovK = fmt.Sprintf("%d", r.OverflowKWay)
		}
		fmt.Fprintf(w, "%-16s %8d %6d %3d | %9d %9d %12.1f %12.1f | %6d %8d | %9s %9s\n",
			r.Circuit, r.Gates, r.Trees, r.K,
			r.CutNetsBisect, r.CutNetsKWay, r.SteinerBisect, r.SteinerKWay,
			r.Moves, r.Replicas, ovB, ovK)
	}
}

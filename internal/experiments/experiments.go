// Package experiments encodes the paper's evaluation section: one
// entry point per table and figure, each returning structured rows
// that the cmd tools and benchmarks print in the paper's format.
//
// Calibration. Absolute numbers cannot match the paper's (its
// substrate was Silicon Ensemble, PrimeTime, CORELIB8DHS and the real
// IWLS93 netlists; ours is a self-contained simulator stack), so the
// experiments pin down the *shape*: who wins, the three routability
// regions of the K sweep, and where the crossovers fall. Three
// constants calibrate the substrate against the paper's operating
// point and are shared by every experiment:
//
//   - CapacityScale 1.98: compensates the weaker placement/routing of
//     this substrate relative to the commercial flow, positioning the
//     K = 0 netlists at the same marginally-unroutable point the paper
//     reports at ~61% utilization.
//   - WireUnit 0.5 µm (the coverer default): expresses WIRE in routing
//     half-pitches so the paper's K ladder hits the same regions.
//   - Die areas derive from the measured K = 0 cell area and the
//     paper's reported utilization for each circuit, mirroring how the
//     paper fixes floorplans.
package experiments

import (
	"context"
	"fmt"

	"casyn/internal/bench"
	"casyn/internal/flow"
	"casyn/internal/library"
	"casyn/internal/place"
	"casyn/internal/route"
	"casyn/internal/sta"
	"casyn/internal/subject"
)

// Substrate calibration shared by all experiments.
const (
	// GCellSize is the routing grid pitch in µm.
	GCellSize = 26.6
	// CapacityScale calibrates grid capacity to the paper's flow.
	CapacityScale = 1.98
	// RipupIterations is the router's rip-up and reroute budget.
	RipupIterations = 6
	// RefinePasses is the placer's greedy refinement budget.
	RefinePasses = 8
	// PlacementSeed makes every experiment deterministic.
	PlacementSeed = 1
)

// Fixed full-size floorplans, like the paper's ("the die size was
// fixed to 207062 µm²..."). Our die areas are ≈0.66× the paper's
// because the synthetic library's cells are proportionally smaller;
// the K = 0 utilizations land within a few percent of the paper's
// (SPLA 57.9% vs 61.1%, PDC 56.7% vs 55.9%). Scaled-down runs derive
// their dies from the same utilization fractions instead.
const (
	splaDieArea = 136500 // µm², paper: 207062
	pdcDieArea  = 141500 // µm², paper: 229786
	// tooLargeDieFraction sizes the TOO_LARGE die from the DAGON
	// mapping's area at the paper's 84.37% utilization.
	tooLargeDieFraction = 0.8437
	// splaDieFraction/pdcDieFraction size scaled-down dies.
	splaDieFraction = 0.578
	pdcDieFraction  = 0.567
)

// RouteOpts returns the calibrated router options.
func RouteOpts() route.Options {
	return route.Options{
		GCellSize:       GCellSize,
		RipupIterations: RipupIterations,
		CapacityScale:   CapacityScale,
	}
}

// PlaceOpts returns the calibrated placer options.
func PlaceOpts() place.Options {
	return place.Options{Seed: PlacementSeed, RefinePasses: RefinePasses}
}

// KSchedule is the paper's Table 2/4 K ladder.
func KSchedule() []float64 { return flow.DefaultKSchedule() }

// buildSubject generates the class circuit at the given scale and
// lowers it to a subject DAG under the chosen synthesis style.
func buildSubject(class bench.Class, scale float64, style bench.SynthesisStyle) (*subject.DAG, error) {
	spec := class.Spec()
	if scale != 1.0 {
		spec = class.ScaledSpec(scale)
	}
	p, err := bench.Generate(spec)
	if err != nil {
		return nil, err
	}
	return bench.BuildSubject(p, style, 0)
}

// dieFor sizes a floorplan so the given cell area sits at the target
// utilization, like the paper's fixed die constraints.
func dieFor(cellArea, utilization float64) (place.Layout, error) {
	return place.NewLayout(cellArea/utilization, 1.0, library.RowHeight)
}

// minAreaCellArea maps the subject at K = 0 on a self-sized floorplan
// and returns the mapped cell area — the anchor the experiment dies
// are derived from. The provisional layout assumes 50% utilization of
// a base-gate-count area estimate; the K = 0 cell area is insensitive
// to the provisional die (placement only affects tie-breaks).
func minAreaCellArea(ctx context.Context, d *subject.DAG) (float64, error) {
	baseEstimate := float64(d.BaseGateCount()) * 4.6 // µm² per base gate, mapped
	layout, err := place.NewLayout(baseEstimate/0.5, 1.0, library.RowHeight)
	if err != nil {
		return 0, err
	}
	cfg := flow.Config{
		Layout:         layout,
		PlaceOpts:      PlaceOpts(),
		RouteOpts:      RouteOpts(),
		FreshPlacement: true,
		KSchedule:      []float64{0},
	}
	pc, err := flow.Prepare(ctx, d, cfg)
	if err != nil {
		return 0, err
	}
	it, err := flow.RunOnce(ctx, pc, 0, cfg)
	if err != nil {
		return 0, err
	}
	flow.MergeMetrics(ctx, it.Metrics)
	return it.CellArea, nil
}

// sweepLayout returns the fixed floorplan at full scale, or a
// utilization-derived one for scaled runs.
func sweepLayout(ctx context.Context, class bench.Class, scale float64, d *subject.DAG) (place.Layout, error) {
	if scale == 1.0 {
		area := splaDieArea
		if class == bench.PDC {
			area = pdcDieArea
		}
		return place.NewLayout(float64(area), 1.0, library.RowHeight)
	}
	a0, err := minAreaCellArea(ctx, d)
	if err != nil {
		return place.Layout{}, err
	}
	frac := splaDieFraction
	if class == bench.PDC {
		frac = pdcDieFraction
	}
	return dieFor(a0, frac)
}

// KRow is one row of Tables 2 and 4.
type KRow struct {
	K           float64
	CellArea    float64 // µm²
	NumCells    int
	Utilization float64 // fraction
	Violations  int     // failed connections (detailed-router analogue)
	Overflow    int     // raw track overflow
	Routable    bool
	// Failed marks a row whose iteration errored out (stage failure,
	// panic, or timeout); its metric columns are invalid and Err holds
	// the cause. The sweep degrades: later K rows still run.
	Failed bool
	Err    error
}

// KSweepResult carries a whole K-sweep table plus its floorplan.
type KSweepResult struct {
	Class  bench.Class
	Layout place.Layout
	Rows   []KRow
	// Context is retained so the STA experiments can reuse the
	// prepared subject placement and mapped netlists.
	Context *flow.Context
	Config  flow.Config
}

// KSweep reproduces Table 2 (SPLA) or Table 4 (PDC): the full K ladder
// against a fixed die sized from the paper's K = 0 utilization.
// scale = 1.0 runs the full circuit; smaller scales shrink it for unit
// tests and Go benchmarks.
//
// The sweep runs through flow.Run and inherits its degrade-don't-abort
// semantics: a K iteration that fails produces a KRow with Failed set
// (and Err holding the cause) while the remaining ladder still runs.
// KSweep itself errors only when preparation fails, the ctx is
// canceled, or every K fails.
// workers bounds the goroutines of the K sweep and the per-iteration
// covering/routing fan-outs (0 = runtime.GOMAXPROCS, 1 = serial); the
// table is identical for every value.
func KSweep(ctx context.Context, class bench.Class, scale float64, workers int) (*KSweepResult, error) {
	d, err := buildSubject(class, scale, bench.Direct)
	if err != nil {
		return nil, err
	}
	layout, err := sweepLayout(ctx, class, scale, d)
	if err != nil {
		return nil, err
	}
	cfg := flow.Config{
		Layout: layout,
		// The library is pinned explicitly so the shared mapping prefix
		// below stays compatible (library compatibility is pointer
		// identity) with every later Run against the retained Context.
		Lib:            library.Default(),
		PlaceOpts:      PlaceOpts(),
		RouteOpts:      RouteOpts(),
		FreshPlacement: true,
		KSchedule:      KSchedule(),
		Workers:        workers,
	}
	pc, err := flow.Prepare(ctx, d, cfg)
	if err != nil {
		return nil, err
	}
	// One K-invariant mapping prefix (partition + match enumeration)
	// serves all 14 rungs of the ladder; storing it on the retained
	// Context lets callers rerun the sweep without re-preparing.
	if err := flow.PrepareMapping(ctx, pc, cfg); err != nil {
		return nil, fmt.Errorf("experiments: %s sweep: %w", class, err)
	}
	res := &KSweepResult{Class: class, Layout: layout, Context: pc, Config: cfg}
	fres, err := flow.Run(ctx, pc, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s sweep: %w", class, err)
	}
	for _, it := range fres.Iterations {
		res.Rows = append(res.Rows, KRow{
			K:           it.K,
			CellArea:    it.CellArea,
			NumCells:    it.NumCells,
			Utilization: it.Utilization,
			Violations:  it.FailedConnections,
			Overflow:    it.Violations,
			Routable:    it.Routable,
			Failed:      it.Skipped,
			Err:         it.Err,
		})
	}
	return res, nil
}

// Table1Row is one row of Table 1 (TOO_LARGE routing results).
type Table1Row struct {
	Label       string
	CellArea    float64
	NumRows     int
	Utilization float64
	Violations  int
	Overflow    int
}

// Table1 reproduces the TOO_LARGE comparison: the SIS-optimized
// netlist (smaller cell area, aggressive sharing) against the
// structure-preserving DAGON mapping, both placed and routed in the
// same fixed die. The paper's point: the lower-utilization SIS netlist
// is unroutable where DAGON's routes cleanly. (In this substrate the
// area relation reproduces but the routability inversion does not —
// see EXPERIMENTS.md for the analysis.)
func Table1(ctx context.Context, scale float64) ([]Table1Row, place.Layout, error) {
	spec := bench.TooLargeLayered()
	if scale != 1.0 {
		spec = spec.Scaled(scale)
	}
	dagonDAG, err := bench.BuildLayeredSubject(spec, bench.Direct)
	if err != nil {
		return nil, place.Layout{}, err
	}
	sisDAG, err := bench.BuildLayeredSubject(spec, bench.SISOptimized)
	if err != nil {
		return nil, place.Layout{}, err
	}
	aDagon, err := minAreaCellArea(ctx, dagonDAG)
	if err != nil {
		return nil, place.Layout{}, err
	}
	layout, err := dieFor(aDagon, tooLargeDieFraction)
	if err != nil {
		return nil, place.Layout{}, err
	}
	var rows []Table1Row
	for _, tc := range []struct {
		label string
		dag   *subject.DAG
	}{
		{"SIS", sisDAG},
		{"DAGON", dagonDAG},
	} {
		cfg := flow.Config{
			Layout:         layout,
			PlaceOpts:      PlaceOpts(),
			RouteOpts:      RouteOpts(),
			FreshPlacement: true,
			KSchedule:      []float64{0},
		}
		pc, err := flow.Prepare(ctx, tc.dag, cfg)
		if err != nil {
			return nil, layout, err
		}
		it, err := flow.RunOnce(ctx, pc, 0, cfg)
		if err != nil {
			return nil, layout, err
		}
		flow.MergeMetrics(ctx, it.Metrics)
		rows = append(rows, Table1Row{
			Label:       tc.label,
			CellArea:    it.CellArea,
			NumRows:     layout.NumRows,
			Utilization: it.Utilization,
			Violations:  it.FailedConnections,
			Overflow:    it.Violations,
		})
	}
	return rows, layout, nil
}

// STARow is one row of Tables 3 and 5.
type STARow struct {
	Label string
	// CriticalPath is the endpoint description, arrival in ns.
	CriticalPI string
	CriticalPO string
	Arrival    float64
	// SameK0PathArrival is the arrival, in this netlist, at the
	// primary output that was critical in the K = 0 netlist — the
	// "Comparison with critical path K = 0.0" column.
	SameK0PathArrival float64
	// ChipArea/NumRows describe the smallest floorplan that routed the
	// netlist without violations.
	ChipArea float64
	NumRows  int
	Routable bool

	// timing backs the same-path column lookup.
	timing *sta.Result
}

// STATable reproduces Table 3 (SPLA) or Table 5 (PDC): static timing
// of the K = 0 mapping, a routable mid-K mapping, and the SIS
// baseline, each placed and routed in the smallest die (row count)
// that routes it cleanly, starting from the K-sweep floorplan.
// workers parallelizes each variant's covering and routing
// (0 = runtime.GOMAXPROCS, 1 = serial) without changing the rows.
func STATable(ctx context.Context, class bench.Class, scale float64, midK float64, workers int) ([]STARow, error) {
	d, err := buildSubject(class, scale, bench.Direct)
	if err != nil {
		return nil, err
	}
	sisDAG, err := buildSubject(class, scale, bench.SISOptimized)
	if err != nil {
		return nil, err
	}
	baseLayout, err := sweepLayout(ctx, class, scale, d)
	if err != nil {
		return nil, err
	}

	type variant struct {
		label string
		dag   *subject.DAG
		k     float64
	}
	variants := []variant{
		{"K=0", d, 0},
		{fmt.Sprintf("K=%g", midK), d, midK},
		{"SIS", sisDAG, 0},
	}
	// The K=0 and mid-K variants share the DAG and walk the same die
	// progression, so their per-(DAG, row-count) flow contexts — the
	// subject placement and the K-invariant mapping prefix — are
	// prepared once and reused. The library is pinned so the prefix's
	// pointer-identity compatibility check holds across variants.
	lib := library.Default()
	ctxCache := map[*subject.DAG]map[int]*flow.Context{}
	var rows []STARow
	var k0PO string
	for vi, v := range variants {
		row, err := staAtMinimalDie(ctx, v.dag, v.k, baseLayout, workers, lib, ctxCache)
		if err != nil {
			return nil, fmt.Errorf("experiments: STA %s: %w", v.label, err)
		}
		row.Label = v.label
		if vi == 0 {
			k0PO = row.CriticalPO
		}
		rows = append(rows, row)
	}
	// Fill the same-path column now that the K=0 critical PO is known.
	for i := range rows {
		if rows[i].timing != nil {
			rows[i].SameK0PathArrival = rows[i].timing.ArrivalByPO[k0PO]
		}
	}
	return rows, nil
}

// staAtMinimalDie maps the DAG at k, then grows the floorplan one row
// at a time from the base layout until routing is clean (bounded), and
// runs STA on the routed result. ctxCache shares the prepared flow
// contexts — subject placement plus the K-invariant mapping prefix —
// across variants keyed by (DAG, row count); lib must be the library
// every caller maps with, so the cached prefix stays compatible.
func staAtMinimalDie(ctx context.Context, d *subject.DAG, k float64, base place.Layout, workers int, lib *library.Library, ctxCache map[*subject.DAG]map[int]*flow.Context) (STARow, error) {
	const maxExtraRows = 10
	row := STARow{}
	for extra := 0; extra <= maxExtraRows; extra++ {
		rowsN := base.NumRows + extra
		layout, err := place.LayoutWithRows(rowsN, base.Die.W(), base.RowHeight)
		if err != nil {
			return row, err
		}
		cfg := flow.Config{
			Layout:         layout,
			Lib:            lib,
			PlaceOpts:      PlaceOpts(),
			RouteOpts:      RouteOpts(),
			FreshPlacement: true,
			RunSTA:         true,
			KSchedule:      []float64{k},
			Workers:        workers,
		}
		byRows := ctxCache[d]
		if byRows == nil {
			byRows = map[int]*flow.Context{}
			ctxCache[d] = byRows
		}
		pc := byRows[rowsN]
		if pc == nil {
			pc, err = flow.Prepare(ctx, d, cfg)
			if err != nil {
				return row, err
			}
			if err := flow.PrepareMapping(ctx, pc, cfg); err != nil {
				return row, err
			}
			byRows[rowsN] = pc
		}
		it, err := flow.RunOnce(ctx, pc, k, cfg)
		if err != nil {
			return row, err
		}
		flow.MergeMetrics(ctx, it.Metrics)
		routable := it.FailedConnections == 0
		if routable || extra == maxExtraRows {
			row.CriticalPI = it.Timing.CriticalPI
			row.CriticalPO = it.Timing.CriticalPO
			row.Arrival = it.Timing.MaxArrival
			row.ChipArea = layout.Area()
			row.NumRows = layout.NumRows
			row.Routable = routable
			row.timing = it.Timing
			return row, nil
		}
	}
	return row, fmt.Errorf("experiments: no routable die found")
}

package subject

// Gate replication for the k-way partitioner: duplicating a cheap
// multi-fanout driver into a second placement region removes its cut
// net outright (the RePart idea). A replica is a verbatim copy of a
// base gate — same type, same fanins — appended to the DAG with
// ReplicaOf lineage, deliberately bypassing structural hashing (the
// duplicate shape is the point). Sinks are then moved onto the replica
// with RewireFanin.
//
// Replicas break the ID-order invariant the rest of the package leans
// on: a replica's ID is larger than the sinks that read it. Eval and
// TopoOrder therefore switch to a genuine DFS topological order as
// soon as the first replica exists (Replicated reports this), and
// consumers that iterate gates by ascending ID must use TopoOrder
// instead.

import "fmt"

// AddReplicaOf appends a copy of base gate id (same type, same fanins)
// and records the replication lineage. Structural hashing is bypassed:
// the replica is an intentional duplicate of existing structure, and
// later Add* calls must keep resolving to the original. Only NAND2 and
// INV gates are replicable.
func (d *DAG) AddReplicaOf(id int) (int, error) {
	if id < 0 || id >= len(d.gates) {
		return -1, fmt.Errorf("subject: AddReplicaOf id %d out of range [0,%d)", id, len(d.gates))
	}
	orig := d.gates[id]
	switch orig.Type {
	case Nand2, Inv:
	default:
		return -1, fmt.Errorf("subject: AddReplicaOf target %d is a %s, not a base gate", id, orig.Type)
	}
	rid := len(d.gates)
	d.gates = append(d.gates, Gate{ID: rid, Type: orig.Type, In: orig.In})
	if d.replicaOf == nil {
		d.replicaOf = make(map[int]int)
	}
	// Chains of replicas resolve to the ultimate original.
	src := id
	if o, ok := d.replicaOf[id]; ok {
		src = o
	}
	d.replicaOf[rid] = src
	d.fanouts = nil
	return rid, nil
}

// ReplicaOf returns the original gate a replica was cloned from, or -1
// when id is not a replica.
func (d *DAG) ReplicaOf(id int) int {
	if o, ok := d.replicaOf[id]; ok {
		return o
	}
	return -1
}

// NumReplicas returns the number of replica gates in the DAG.
func (d *DAG) NumReplicas() int { return len(d.replicaOf) }

// Replicated reports whether any replica exists — and therefore
// whether ascending gate IDs are still a topological order (they are
// not once a sink's fanin points at a larger-ID replica).
func (d *DAG) Replicated() bool { return len(d.replicaOf) > 0 }

// RewireFanin replaces every occurrence of gate `from` among sink's
// fanins with gate `to`. It is the replication primitive: unlike
// SetGate it permits to > sink (a replica's ID exceeds its sinks'),
// and it validates that the rewire cannot create a cycle by requiring
// `to` to be a replica whose fanins predate the sink.
func (d *DAG) RewireFanin(sink, from, to int) error {
	if sink < 0 || sink >= len(d.gates) {
		return fmt.Errorf("subject: RewireFanin sink %d out of range [0,%d)", sink, len(d.gates))
	}
	if to < 0 || to >= len(d.gates) {
		return fmt.Errorf("subject: RewireFanin target %d out of range [0,%d)", to, len(d.gates))
	}
	g := &d.gates[sink]
	switch g.Type {
	case Nand2, Inv:
	default:
		return fmt.Errorf("subject: RewireFanin sink %d is a %s, not a base gate", sink, g.Type)
	}
	if to >= sink {
		// The only legal forward reference is a replica whose own
		// fanins all predate the sink — then no path from sink can
		// reach back through it, so acyclicity is preserved.
		if _, isReplica := d.replicaOf[to]; !isReplica {
			return fmt.Errorf("subject: RewireFanin target %d is not a replica and does not predate sink %d", to, sink)
		}
		for i := 0; i < d.gates[to].Type.NumInputs(); i++ {
			if fi := d.gates[to].In[i]; fi >= sink {
				return fmt.Errorf("subject: RewireFanin replica %d fanin %d does not predate sink %d", to, fi, sink)
			}
		}
	}
	n := g.Type.NumInputs()
	found := false
	for i := 0; i < n; i++ {
		if g.In[i] == from {
			g.In[i] = to
			found = true
		}
	}
	if !found {
		return fmt.Errorf("subject: RewireFanin sink %d has no fanin %d", sink, from)
	}
	d.fanouts = nil
	return nil
}

// topoDFS returns a genuine topological order (fanins before readers)
// by iterative post-order DFS over all gates in ascending-ID seed
// order. Only needed once replicas exist; without them ascending IDs
// are already topological and the cheaper identity order is used.
func (d *DAG) topoDFS() []int {
	order := make([]int, 0, len(d.gates))
	visited := make([]bool, len(d.gates))
	type frame struct {
		g, next int
	}
	var stack []frame
	for seed := 0; seed < len(d.gates); seed++ {
		if visited[seed] {
			continue
		}
		visited[seed] = true
		stack = append(stack[:0], frame{g: seed})
		for len(stack) > 0 {
			fr := &stack[len(stack)-1]
			fis := d.Fanins(fr.g)
			if fr.next < len(fis) {
				fi := fis[fr.next]
				fr.next++
				if !visited[fi] {
					visited[fi] = true
					stack = append(stack, frame{g: fi})
				}
				continue
			}
			order = append(order, fr.g)
			stack = stack[:len(stack)-1]
		}
	}
	return order
}

package subject

import "fmt"

// Clone returns an independent deep copy of the DAG. The copy shares
// no mutable state with the original: gates, PI and output lists, and
// the structural-hash table are all duplicated, and the fanout cache
// starts stale. ECO edits mutate a clone so the original can keep
// serving concurrent readers.
func (d *DAG) Clone() *DAG {
	cp := &DAG{
		gates:   append([]Gate(nil), d.gates...),
		pis:     append([]int(nil), d.pis...),
		outputs: append([]Output(nil), d.outputs...),
		hash:    make(map[[3]int]int, len(d.hash)),
	}
	for k, v := range d.hash {
		cp.hash[k] = v
	}
	if len(d.replicaOf) > 0 {
		cp.replicaOf = make(map[int]int, len(d.replicaOf))
		for k, v := range d.replicaOf {
			cp.replicaOf[k] = v
		}
	}
	return cp
}

// SetGate rewrites gate id in place to the given base-gate type and
// fanins. It is the primitive under ECO edits (function changes and
// net reconnects), and deliberately bypasses structural hashing: an
// edit may duplicate existing structure, so the whole hash table is
// dropped rather than left pointing at stale shapes (later Add* calls
// stay correct, they just may not re-share).
//
// Only Nand2 and Inv targets are legal — PIs, constants, and output
// markers are not rewritable vertices. Every fanin must be an existing
// gate with ID < id, which preserves the DAG-wide invariant that IDs
// are topologically ordered (Eval and TopoOrder iterate by ID).
func (d *DAG) SetGate(id int, t GateType, in [2]int) error {
	if id < 0 || id >= len(d.gates) {
		return fmt.Errorf("subject: SetGate id %d out of range [0,%d)", id, len(d.gates))
	}
	switch d.gates[id].Type {
	case Nand2, Inv:
	default:
		return fmt.Errorf("subject: SetGate target %d is a %s, not a base gate", id, d.gates[id].Type)
	}
	switch t {
	case Nand2, Inv:
	default:
		return fmt.Errorf("subject: SetGate new type %s is not a base gate", t)
	}
	n := t.NumInputs()
	for i := 0; i < n; i++ {
		if in[i] < 0 || in[i] >= len(d.gates) {
			return fmt.Errorf("subject: SetGate fanin %d out of range [0,%d)", in[i], len(d.gates))
		}
		if in[i] >= id {
			return fmt.Errorf("subject: SetGate fanin %d not before gate %d (IDs must stay topological)", in[i], id)
		}
	}
	if t == Nand2 && in[0] == in[1] {
		return fmt.Errorf("subject: SetGate NAND2 %d with identical fanins %d (fold to INV instead)", id, in[0])
	}
	g := Gate{ID: id, Type: t, In: [2]int{-1, -1}}
	copy(g.In[:n], in[:n])
	d.gates[id] = g
	d.hash = make(map[[3]int]int)
	d.fanouts = nil
	return nil
}
